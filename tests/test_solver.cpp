// IncrementalSparsify, chain construction, recursive solver, SddSolver.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/dense_ldlt.h"
#include "linalg/eig.h"
#include "linalg/laplacian.h"
#include "solver/chain.h"
#include "solver/incremental_sparsify.h"
#include "solver/recursive_solver.h"
#include "solver/sdd_solver.h"

namespace parsdd {
namespace {

TEST(IncrementalSparsify, OutputConnectedAndBounded) {
  GeneratedGraph g = grid2d(18, 18);
  SparsifyOptions opts;
  opts.kappa = 100.0;
  SparsifyResult r = incremental_sparsify(g.n, g.edges, opts);
  EXPECT_TRUE(is_connected(g.n, r.h_edges));
  EXPECT_LE(r.h_edges.size(), g.edges.size());
  EXPECT_EQ(r.h_edges.size(), r.subgraph_count + r.sampled_count);
  EXPECT_GT(r.total_stretch, 0.0);
}

TEST(IncrementalSparsify, LargerKappaSparsifiesMore) {
  GeneratedGraph g = grid2d(20, 20);
  SparsifyOptions lo, hi;
  lo.kappa = 16.0;
  hi.kappa = 4096.0;
  lo.p_floor = hi.p_floor = 0.0;
  auto rl = incremental_sparsify(g.n, g.edges, lo);
  auto rh = incremental_sparsify(g.n, g.edges, hi);
  EXPECT_GE(rl.sampled_count, rh.sampled_count);
}

TEST(IncrementalSparsify, SpectralSandwichOnSmallGraph) {
  // Measure the pencil (A, H) extremes with dense solves; Lemma 6.1 says
  // G ≼ H ≼ κG up to sampling constants.
  GeneratedGraph g = grid2d(8, 8);
  SparsifyOptions opts;
  opts.kappa = 32.0;
  opts.p_floor = 0.2;
  SparsifyResult r = incremental_sparsify(g.n, g.edges, opts);
  CsrMatrix la = laplacian_from_edges(g.n, g.edges);
  CsrMatrix lh = laplacian_from_edges(g.n, r.h_edges);
  DenseLdlt fh = DenseLdlt::factor_laplacian(lh);
  LinOp aop = [&](const Vec& in, Vec& out) { out.resize(in.size()); la.multiply(in, out); };
  LinOp hop = [&](const Vec& in, Vec& out) { out.resize(in.size()); lh.multiply(in, out); };
  LinOp hsolve = [&](const Vec& in, Vec& out) {
    Vec t = in;
    kernels::project_out_constant(t);
    out = fh.solve(t);
  };
  double lmax = pencil_max_eig(aop, hop, hsolve, g.n, 150, 5);
  // A ≼ c·H: the preconditioned spectrum is bounded well below κ.
  EXPECT_LE(lmax, 2.0 * opts.kappa);
  EXPECT_GT(lmax, 0.1);
}

TEST(IncrementalSparsify, MstComparisonPicksLowerStretchTree) {
  // Two-level contrast: the MST (stretch ~1.5) must beat the AKPW subgraph
  // (stretch ~100+), so total_stretch reported is the MST's.
  GeneratedGraph g = grid2d(20, 20);
  randomize_weights_two_level(g.edges, 1e4, 21);
  SparsifyOptions with, without;
  with.kappa = without.kappa = 1e300;
  with.p_floor = without.p_floor = 0.0;
  without.include_mst = false;
  auto r_with = incremental_sparsify(g.n, g.edges, with);
  auto r_without = incremental_sparsify(g.n, g.edges, without);
  EXPECT_LE(r_with.total_stretch, r_without.total_stretch);
  EXPECT_LT(r_with.total_stretch / g.edges.size(), 10.0);
}

TEST(IncrementalSparsify, MstComparisonKeepsAkpwOnUnitGrids) {
  // On unit grids AKPW wins (MST stretch grows with the side); the
  // ultrasparse subgraph keeps its extra edges.
  GeneratedGraph g = grid2d(30, 30);
  SparsifyOptions opts;
  opts.kappa = 1e300;
  opts.p_floor = 0.0;
  auto r = incremental_sparsify(g.n, g.edges, opts);
  EXPECT_GE(r.subgraph_count, static_cast<std::size_t>(g.n));  // tree+extras
}

TEST(IncrementalSparsify, RejectsBadKappaAndDisconnected) {
  GeneratedGraph g = grid2d(4, 4);
  SparsifyOptions opts;
  opts.kappa = 0.5;
  EXPECT_THROW(incremental_sparsify(g.n, g.edges, opts),
               std::invalid_argument);
  EdgeList disc = {{0, 1, 1.0}, {2, 3, 1.0}};
  EXPECT_THROW(incremental_sparsify(4, disc, {}), std::invalid_argument);
}

TEST(Chain, ShrinksGeometrically) {
  GeneratedGraph g = grid2d(40, 40);
  SolverChain chain = build_chain(g.n, g.edges);
  ASSERT_GE(chain.depth(), 2u);
  for (std::size_t i = 1; i < chain.levels.size(); ++i) {
    EXPECT_LT(chain.levels[i].n, chain.levels[i - 1].n);
  }
  EXPECT_LE(chain.total_edges(), 3 * g.edges.size());
}

TEST(Chain, BottomSizeRespected) {
  GeneratedGraph g = grid2d(30, 30);
  ChainOptions opts;
  opts.bottom_size = 100;
  SolverChain chain = build_chain(g.n, g.edges, opts);
  const ChainLevel& last = chain.levels.back();
  if (!last.has_preconditioner) {
    EXPECT_LE(last.n, 100u);
  }
}

TEST(Chain, TreeInputCollapsesWithoutDenseBottom) {
  GeneratedGraph g = path(500);
  SolverChain chain = build_chain(g.n, g.edges);
  EXPECT_FALSE(chain.bottom.has_value());
  const ChainLevel& top = chain.levels.front();
  EXPECT_TRUE(top.has_preconditioner);
  EXPECT_EQ(top.elimination.reduced_n, 0u);
}

TEST(Chain, SampledModeBuilds) {
  GeneratedGraph g = grid2d(20, 20);
  ChainOptions opts;
  opts.mode = ChainMode::kSampled;
  SolverChain chain = build_chain(g.n, g.edges, opts);
  EXPECT_GE(chain.depth(), 2u);
  EXPECT_GT(chain.levels.front().kappa, 1.0);
}

class RecursiveSolverFamily
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RecursiveSolverFamily, SolvesToTolerance) {
  auto [family, method] = GetParam();
  GeneratedGraph g;
  switch (family) {
    case 0:
      g = grid2d(20, 20);
      break;
    case 1:
      g = erdos_renyi(350, 1200, 3);
      break;
    case 2:
      g = preferential_attachment(350, 3, 3);
      break;
    default:
      g = grid2d(16, 16);
      randomize_weights_two_level(g.edges, 1e4, 3);
      break;
  }
  SolverChain chain = build_chain(g.n, g.edges);
  RecursiveSolverOptions ro;
  ro.inner = method == 0 ? InnerMethod::kFlexibleCg : InnerMethod::kChebyshev;
  RecursiveSolver rs(chain, ro);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec b = random_unit_like(g.n, 11);
  Vec x(g.n, 0.0);
  IterStats st = rs.solve(b, x, 1e-8, 3000);
  EXPECT_TRUE(st.converged) << "family=" << family;
  EXPECT_LT(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndInner, RecursiveSolverFamily,
    ::testing::Combine(::testing::Values(0, 1, 2, 3), ::testing::Values(0, 1)));

TEST(RecursiveSolver, OnePassReducesResidual) {
  GeneratedGraph g = grid2d(24, 24);
  SolverChain chain = build_chain(g.n, g.edges);
  RecursiveSolver rs(chain);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec b = random_unit_like(g.n, 12);
  Vec x;
  rs.apply(b, x);
  double rel = kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b);
  EXPECT_LT(rel, 0.9);
  // bottom_visits is 0 when the chain's B collapses to a tree (fully
  // eliminated, no dense level) — both shapes are valid.
}

TEST(RecursiveSolver, RpchConvergesLinearlyInPasses) {
  GeneratedGraph g = grid2d(20, 20);
  SolverChain chain = build_chain(g.n, g.edges);
  RecursiveSolver rs(chain);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec b = random_unit_like(g.n, 13);
  Vec x(g.n, 0.0);
  IterStats st = rs.solve_rpch(b, x, 1e-8, 400);
  EXPECT_TRUE(st.converged);
  // log(1/eps) dependence: doubling the digits should not explode passes.
  Vec x2(g.n, 0.0);
  IterStats st2 = rs.solve_rpch(b, x2, 1e-4, 400);
  EXPECT_LE(st2.iterations, st.iterations);
}

TEST(SddSolver, LaplacianGridMatchesDenseReference) {
  GeneratedGraph g = grid2d(12, 12);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt ref = DenseLdlt::factor_laplacian(lap);
  Vec b = random_unit_like(g.n, 14);
  Vec x_ref = ref.solve(b);
  SddSolverOptions opts;
  opts.tolerance = 1e-10;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec x = solver.solve(b).value();
  // A-norm error (Theorem 1.1's metric).
  Vec diff = kernels::subtract(x, x_ref);
  double err = a_norm(lap, diff) / std::max(a_norm(lap, x_ref), 1e-30);
  EXPECT_LT(err, 1e-6);
}

TEST(SddSolver, DisconnectedComponentsSolvedIndependently) {
  // Two disjoint paths + one isolated vertex.
  EdgeList e;
  for (std::uint32_t i = 0; i + 1 < 10; ++i) e.push_back(Edge{i, i + 1, 1.0});
  for (std::uint32_t i = 10; i + 1 < 20; ++i)
    e.push_back(Edge{i, i + 1, 2.0});
  std::uint32_t n = 21;
  SddSolver solver = SddSolver::for_laplacian(n, e);
  Vec b(n, 0.0);
  b[0] = 1.0;
  b[9] = -1.0;
  b[10] = 2.0;
  b[19] = -2.0;
  SddSolveReport report;
  Vec x = solver.solve(b, &report).value();
  EXPECT_EQ(report.components, 3u);
  EXPECT_DOUBLE_EQ(x[20], 0.0);
  CsrMatrix lap = laplacian_from_edges(n, e);
  EXPECT_LT(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 1e-6);
}

TEST(SddSolver, GrembanSddSolve) {
  // SDD system with positive off-diagonals and excess diagonal.
  std::vector<Triplet> ts = {
      {0, 0, 3.0},  {0, 1, 1.0},  {1, 0, 1.0},  {1, 1, 4.0},
      {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 3.0},
  };
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  ASSERT_TRUE(a.is_sdd());
  SddSolverOptions opts;
  opts.tolerance = 1e-10;
  SddSolver solver = SddSolver::for_sdd(a, opts);
  Vec b = {1.0, 0.0, -1.0};
  Vec x = solver.solve(b).value();
  Vec ax = a.apply(x);
  EXPECT_LT(kernels::norm2(kernels::subtract(ax, b)) / kernels::norm2(b), 1e-7);
}

TEST(SddSolver, SddLaplacianInputSkipsGremban) {
  GeneratedGraph g = grid2d(8, 8);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  SddSolver solver = SddSolver::for_sdd(lap);
  Vec b = random_unit_like(g.n, 15);
  Vec x = solver.solve(b).value();
  EXPECT_LT(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 1e-6);
}

class SddMethods : public ::testing::TestWithParam<SolveMethod> {};

TEST_P(SddMethods, AllMethodsConvergeOnWeightedGrid) {
  GeneratedGraph g = grid2d(14, 14);
  randomize_weights_log_uniform(g.edges, 100.0, 4);
  SddSolverOptions opts;
  opts.method = GetParam();
  opts.tolerance = 1e-8;
  opts.max_iterations = 20000;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec b = random_unit_like(g.n, 16);
  SddSolveReport report;
  Vec x = solver.solve(b, &report).value();
  EXPECT_TRUE(report.stats.converged);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EXPECT_LT(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Methods, SddMethods,
                         ::testing::Values(SolveMethod::kChainPcg,
                                           SolveMethod::kChainRpch,
                                           SolveMethod::kCg,
                                           SolveMethod::kJacobiPcg));

TEST(SddSolver, ReportFieldsPopulated) {
  GeneratedGraph g = grid2d(16, 16);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  Vec b = random_unit_like(g.n, 17);
  SddSolveReport report;
  ASSERT_TRUE(solver.solve(b, &report).ok());
  EXPECT_GE(report.chain_levels, 2u);
  EXPECT_GT(report.chain_edges, 0u);
  EXPECT_EQ(report.components, 1u);
}

TEST(SddSolver, DimensionMismatchThrows) {
  GeneratedGraph g = grid2d(4, 4);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  Vec b(5, 1.0);
  StatusOr<Vec> x = solver.solve(b);
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace parsdd
