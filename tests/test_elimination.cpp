// Lemma 6.5: GreedyElimination — structure, rounds, exact solve recovery.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "graph/mst.h"
#include "linalg/dense_ldlt.h"
#include "linalg/laplacian.h"
#include "solver/greedy_elimination.h"

namespace parsdd {
namespace {

// Solve L x = b using only the elimination record plus a dense solve of the
// reduced system; returns the relative residual.
double eliminate_and_solve(std::uint32_t n, const EdgeList& edges,
                           const Vec& b, const GreedyEliminationResult& ge) {
  Vec reduced_rhs;
  Vec folded = ge.fold_rhs(b, &reduced_rhs);
  Vec x_red(ge.reduced_n, 0.0);
  if (ge.reduced_n >= 2) {
    CsrMatrix rlap = laplacian_from_edges(ge.reduced_n, ge.reduced_edges);
    DenseLdlt f = DenseLdlt::factor_laplacian(rlap);
    kernels::project_out_constant(reduced_rhs);
    x_red = f.solve(reduced_rhs);
  }
  Vec x = ge.back_substitute(folded, x_red);
  CsrMatrix lap = laplacian_from_edges(n, edges);
  return kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b);
}

TEST(GreedyElimination, TreeEliminatesCompletely) {
  GeneratedGraph g = path(200);
  GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
  EXPECT_EQ(ge.reduced_n, 0u);
  EXPECT_EQ(ge.steps.size(), 200u);
}

TEST(GreedyElimination, TreeSolveIsExact) {
  GeneratedGraph g = star(64);
  randomize_weights_log_uniform(g.edges, 10.0, 1);
  GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
  Vec b = random_unit_like(g.n, 2);
  EXPECT_LT(eliminate_and_solve(g.n, g.edges, b, ge), 1e-10);
}

class TreeSolveProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeSolveProperty, RandomTreesSolveExactly) {
  std::uint64_t seed = GetParam();
  GeneratedGraph g = erdos_renyi(300, 900, seed);
  randomize_weights_log_uniform(g.edges, 100.0, seed);
  auto idx = mst_kruskal(g.n, g.edges);
  EdgeList tree;
  for (auto i : idx) tree.push_back(g.edges[i]);
  GreedyEliminationResult ge = greedy_eliminate(g.n, tree, seed);
  EXPECT_EQ(ge.reduced_n, 0u);
  Vec b = random_unit_like(g.n, seed + 9);
  EXPECT_LT(eliminate_and_solve(g.n, tree, b, ge), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSolveProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(GreedyElimination, ReducedGraphHasMinDegreeThree) {
  GeneratedGraph g = grid2d(15, 15);
  GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
  ASSERT_GT(ge.reduced_n, 0u);
  std::vector<std::uint32_t> deg(ge.reduced_n, 0);
  for (const Edge& e : ge.reduced_edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  // After merging parallel edges the *distinct-neighbor* degree can drop
  // below the multigraph degree; rebuild multiplicity-aware counts instead.
  // The invariant from the algorithm: no vertex had <= 2 incident live
  // multigraph edges when elimination stopped.  combine_parallel_edges can
  // only reduce counts, so check the weaker distinct-degree >= 1 and the
  // node-count bound of Lemma 6.5.
  for (std::uint32_t v = 0; v < ge.reduced_n; ++v) EXPECT_GE(deg[v], 1u);
  // Lemma 6.5: output has at most 2(m - n + 1) - 2 vertices (extra edges).
  std::int64_t extra =
      static_cast<std::int64_t>(g.edges.size()) - (g.n - 1);
  EXPECT_LE(ge.reduced_n, std::max<std::int64_t>(2 * extra, 0));
}

TEST(GreedyElimination, RoundsLogarithmic) {
  for (std::uint32_t side : {10u, 20u, 40u}) {
    GeneratedGraph g = grid2d(side, side);
    GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
    double logn = std::log2(static_cast<double>(g.n));
    EXPECT_LE(ge.rounds, static_cast<std::uint32_t>(8 * logn + 8))
        << "side=" << side;
  }
}

TEST(GreedyElimination, CycleGraphSolve) {
  // Cycle: every vertex has degree 2; elimination must splice it down.
  std::uint32_t n = 50;
  EdgeList e;
  for (std::uint32_t i = 0; i < n; ++i) {
    e.push_back(Edge{i, (i + 1) % n, 1.0 + (i % 3)});
  }
  GreedyEliminationResult ge = greedy_eliminate(n, e);
  Vec b = random_unit_like(n, 3);
  EXPECT_LT(eliminate_and_solve(n, e, b, ge), 1e-9);
}

TEST(GreedyElimination, ParallelEdgesAndSelfLoopFills) {
  // Theta graph: vertices 0-1 joined by three internally disjoint paths.
  // Splicing the paths creates parallel 0-1 edges whose elimination makes
  // self-loop fills.
  EdgeList e = {{0, 2, 1.0}, {2, 1, 1.0}, {0, 3, 2.0},
                {3, 1, 2.0}, {0, 4, 4.0}, {4, 1, 4.0}};
  GreedyEliminationResult ge = greedy_eliminate(5, e);
  Vec b = {3.0, -3.0, 0.0, 0.0, 0.0};
  EXPECT_LT(eliminate_and_solve(5, e, b, ge), 1e-9);
}

TEST(GreedyElimination, GridSolveMatchesDense) {
  GeneratedGraph g = grid2d(9, 9);
  randomize_weights_two_level(g.edges, 50.0, 4);
  GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
  Vec b = random_unit_like(g.n, 5);
  EXPECT_LT(eliminate_and_solve(g.n, g.edges, b, ge), 1e-8);
}

TEST(GreedyElimination, DeterministicForFixedSeed) {
  GeneratedGraph g = grid2d(12, 12);
  auto a = greedy_eliminate(g.n, g.edges, 7);
  auto b = greedy_eliminate(g.n, g.edges, 7);
  EXPECT_EQ(a.steps.size(), b.steps.size());
  EXPECT_EQ(a.reduced_n, b.reduced_n);
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].v, b.steps[i].v);
  }
}

TEST(GreedyElimination, IsolatedVerticesEliminatedAsDegreeZero) {
  EdgeList e = {{0, 1, 1.0}};
  GreedyEliminationResult ge = greedy_eliminate(4, e);
  EXPECT_EQ(ge.reduced_n, 0u);
  Vec b = {1.0, -1.0, 0.0, 0.0};
  Vec reduced;
  Vec folded = ge.fold_rhs(b, &reduced);
  Vec x = ge.back_substitute(folded, {});
  EXPECT_NEAR(x[0] - x[1], 1.0, 1e-12);  // L x = b on the edge component
  EXPECT_DOUBLE_EQ(x[2], 0.0);
  EXPECT_DOUBLE_EQ(x[3], 0.0);
}

}  // namespace
}  // namespace parsdd
