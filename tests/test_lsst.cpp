// AKPW trees, SparseAKPW subgraphs, well-spacing, LSSubgraph (Section 5).
#include <gtest/gtest.h>

#include <set>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/stretch.h"
#include "graph/tree.h"
#include "graph/union_find.h"
#include "lsst/akpw.h"
#include "lsst/ls_subgraph.h"
#include "lsst/sparse_akpw.h"
#include "lsst/well_spaced.h"

namespace parsdd {
namespace {

// Verifies the chosen indices form a spanning tree of the connected graph.
void check_spanning_tree(std::uint32_t n, const EdgeList& edges,
                         const std::vector<std::uint32_t>& chosen) {
  ASSERT_EQ(chosen.size(), n - 1u);
  UnionFind uf(n);
  std::set<std::uint32_t> seen;
  for (std::uint32_t idx : chosen) {
    ASSERT_LT(idx, edges.size());
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate tree edge";
    EXPECT_TRUE(uf.unite(edges[idx].u, edges[idx].v)) << "cycle";
  }
  EXPECT_EQ(uf.num_sets(), 1u);
}

TEST(WeightClasses, BucketsByGeometricRanges) {
  EdgeList e = {{0, 1, 1.0}, {0, 1, 3.9}, {0, 1, 4.0}, {0, 1, 17.0}};
  std::uint32_t k = 0;
  auto cls = weight_classes(e, 4.0, &k);
  EXPECT_EQ(cls[0], 0u);
  EXPECT_EQ(cls[1], 0u);
  EXPECT_EQ(cls[2], 1u);
  EXPECT_EQ(cls[3], 2u);
  EXPECT_EQ(k, 3u);
}

TEST(WeightClasses, NormalizesMinimumWeight) {
  EdgeList e = {{0, 1, 10.0}, {0, 1, 39.0}, {0, 1, 45.0}};
  std::uint32_t k = 0;
  auto cls = weight_classes(e, 4.0, &k);
  EXPECT_EQ(cls[0], 0u);
  EXPECT_EQ(cls[1], 0u);
  EXPECT_EQ(cls[2], 1u);
}

TEST(WeightClasses, RejectsNonPositive) {
  EdgeList e = {{0, 1, 0.0}};
  EXPECT_THROW(weight_classes(e, 4.0, nullptr), std::invalid_argument);
}

TEST(AkpwParameters, TheoryValuesMatchFormulas) {
  double y = 0, z = 0;
  akpw_theory_parameters(1 << 16, &y, &z);
  EXPECT_GT(y, 100.0);  // 2^sqrt(6*16*4) = 2^19.6
  EXPECT_GT(z, y);
  akpw_practical_parameters(1 << 16, &y, &z);
  EXPECT_DOUBLE_EQ(y, 4.0);
  EXPECT_GT(z, 16.0);
}

class AkpwFamily
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

GeneratedGraph akpw_case(int family, std::uint64_t seed) {
  GeneratedGraph g;
  switch (family) {
    case 0:
      g = grid2d(16, 16);
      break;
    case 1:
      g = erdos_renyi(250, 800, seed);
      break;
    case 2:
      g = preferential_attachment(250, 3, seed);
      randomize_weights_log_uniform(g.edges, 1000.0, seed);
      break;
    default:
      g = grid2d(16, 16);
      randomize_weights_two_level(g.edges, 100.0, seed);
      break;
  }
  return g;
}

TEST_P(AkpwFamily, ProducesSpanningTree) {
  auto [family, seed] = GetParam();
  GeneratedGraph g = akpw_case(family, seed);
  AkpwOptions opts;
  opts.seed = seed;
  AkpwResult r = akpw_tree(g.n, g.edges, opts);
  check_spanning_tree(g.n, g.edges, r.tree_edges);
  EXPECT_GE(r.iterations, 1u);
}

TEST_P(AkpwFamily, StretchIsFiniteAndModest) {
  auto [family, seed] = GetParam();
  GeneratedGraph g = akpw_case(family, seed);
  AkpwOptions opts;
  opts.seed = seed;
  AkpwResult r = akpw_tree(g.n, g.edges, opts);
  EdgeList tree;
  for (auto i : r.tree_edges) tree.push_back(g.edges[i]);
  RootedTree t = RootedTree::from_edges(g.n, tree, 0);
  StretchStats s = stretch_wrt_tree(g.edges, t);
  EXPECT_GE(s.average(), 1.0 - 1e-9);
  // Loose sanity ceiling: average stretch far below worst-case O(n).
  EXPECT_LT(s.average(), 250.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, AkpwFamily,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u)));

TEST(Akpw, DeterministicForFixedSeed) {
  GeneratedGraph g = erdos_renyi(150, 450, 3);
  AkpwOptions opts;
  opts.seed = 5;
  AkpwResult a = akpw_tree(g.n, g.edges, opts);
  AkpwResult b = akpw_tree(g.n, g.edges, opts);
  EXPECT_EQ(a.tree_edges, b.tree_edges);
}

TEST(Akpw, EmptyAndTinyInputs) {
  AkpwResult r = akpw_tree(0, {});
  EXPECT_TRUE(r.tree_edges.empty());
  EdgeList one = {{0, 1, 1.0}};
  AkpwResult r1 = akpw_tree(2, one);
  ASSERT_EQ(r1.tree_edges.size(), 1u);
}

TEST(Akpw, MultipleWeightClassesIterations) {
  GeneratedGraph g = grid2d(12, 12);
  randomize_weights_log_uniform(g.edges, 1e6, 3);  // large spread Delta
  AkpwResult r = akpw_tree(g.n, g.edges);
  check_spanning_tree(g.n, g.edges, r.tree_edges);
  EXPECT_GT(r.num_classes, 1u);  // spread forces several buckets
}

TEST(SparseAkpw, SubgraphSpansWithDisjointParts) {
  GeneratedGraph g = grid2d(16, 16);
  SparseAkpwOptions opts;
  opts.lambda = 2;
  SparseAkpwResult r = sparse_akpw(g.n, g.edges, opts);
  // The tree part alone may omit BFS parents that were already promoted,
  // but the union must span and the parts must be disjoint.
  std::set<std::uint32_t> tree_set(r.tree_edges.begin(), r.tree_edges.end());
  for (std::uint32_t idx : r.extra_edges) {
    EXPECT_EQ(tree_set.count(idx), 0u);
  }
  EdgeList sub;
  for (std::uint32_t idx : r.all_edges()) sub.push_back(g.edges[idx]);
  EXPECT_TRUE(is_connected(g.n, sub));
  EXPECT_GE(sub.size(), static_cast<std::size_t>(g.n) - 1);
  // The tree part is acyclic.
  UnionFind uf(g.n);
  for (std::uint32_t idx : r.tree_edges) {
    EXPECT_TRUE(uf.unite(g.edges[idx].u, g.edges[idx].v));
  }
}

TEST(SparseAkpw, LargerLambdaGivesFewerExtras) {
  GeneratedGraph g = grid2d(20, 20);
  SparseAkpwOptions o1, o3;
  o1.lambda = 1;
  o3.lambda = 3;
  auto r1 = sparse_akpw(g.n, g.edges, o1);
  auto r3 = sparse_akpw(g.n, g.edges, o3);
  EXPECT_GE(r1.extra_edges.size(), r3.extra_edges.size());
}

TEST(WellSpaced, RemovesAtMostThetaFraction) {
  // 20 classes with 10 edges each.
  std::vector<std::uint32_t> cls;
  for (std::uint32_t c = 0; c < 20; ++c) {
    for (int i = 0; i < 10; ++i) cls.push_back(c);
  }
  WellSpacedResult r = well_space(cls, 20, 2, 0.25);
  EXPECT_LE(r.removed_edges.size(),
            static_cast<std::size_t>(0.25 * cls.size() + 1e-9));
  // Removed classes come in consecutive tau-windows.
  std::set<std::uint32_t> removed_cls;
  for (auto i : r.removed_edges) removed_cls.insert(cls[i]);
  for (std::uint32_t c : removed_cls) {
    bool pair_ok = removed_cls.count(c + 1) || removed_cls.count(c - 1);
    EXPECT_TRUE(pair_ok);
  }
}

TEST(WellSpaced, PrefersLightWindows) {
  // Classes 0..5; class 2 and 3 empty -> the empty window must be chosen.
  std::vector<std::uint32_t> cls = {0, 0, 1, 1, 4, 4, 5, 5};
  WellSpacedResult r = well_space(cls, 6, 2, 0.4);
  EXPECT_TRUE(r.removed_edges.empty());
}

TEST(WellSpaced, SpecialClassesFollowEmptiedWindows) {
  std::vector<std::uint32_t> cls;
  for (std::uint32_t c = 0; c < 12; ++c) cls.push_back(c);
  WellSpacedResult r = well_space(cls, 12, 2, 0.5);
  for (std::uint32_t s : r.special_classes) {
    ASSERT_GE(s, 2u);
    // The tau classes before s were emptied.
    std::set<std::uint32_t> removed;
    for (auto i : r.removed_edges) removed.insert(cls[i]);
    EXPECT_TRUE(removed.count(s - 1));
    EXPECT_TRUE(removed.count(s - 2));
  }
}

TEST(WellSpaced, RejectsBadParameters) {
  std::vector<std::uint32_t> cls = {0};
  EXPECT_THROW(well_space(cls, 1, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(well_space(cls, 1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(well_space(cls, 1, 1, 1.5), std::invalid_argument);
}

class LsSubgraphFamily
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(LsSubgraphFamily, SubgraphSpansAndBoundsEdges) {
  auto [family, lambda] = GetParam();
  GeneratedGraph g;
  switch (family) {
    case 0:
      g = grid2d(16, 16);
      break;
    case 1:
      g = erdos_renyi(250, 900, 4);
      break;
    default:
      g = grid2d(14, 14);
      randomize_weights_log_uniform(g.edges, 1e5, 7);
      break;
  }
  LsSubgraphOptions opts;
  opts.lambda = lambda;
  LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
  // Spanning: the subgraph connects the (connected) input.
  EdgeList sub;
  std::set<std::uint32_t> uniq;
  for (auto i : r.subgraph_edges) {
    ASSERT_LT(i, g.edges.size());
    EXPECT_TRUE(uniq.insert(i).second) << "duplicate subgraph edge";
    sub.push_back(g.edges[i]);
  }
  EXPECT_TRUE(is_connected(g.n, sub));
  EXPECT_LT(sub.size(), g.edges.size() + 1);
  EXPECT_GE(sub.size(), static_cast<std::size_t>(g.n) - 1);
  // Stretch of every input edge w.r.t. the subgraph is finite, >= ~1.
  StretchStats s = stretch_wrt_subgraph(g.n, sub, g.edges);
  EXPECT_GE(s.average(), 0.99);
  EXPECT_LT(s.average(), 200.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, LsSubgraphFamily,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 3u)));

TEST(LsSubgraph, WellSpacingRemovedEdgesAreInOutput) {
  GeneratedGraph g = grid2d(12, 12);
  randomize_weights_log_uniform(g.edges, 1e8, 2);  // many weight classes
  LsSubgraphOptions opts;
  opts.theta = 0.2;
  LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
  EXPECT_EQ(r.subgraph_edges.size(),
            r.tree_count + r.extra_count + r.removed_count);
}

class SegmentedMode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentedMode, Lemma58SegmentedRunSpans) {
  std::uint64_t seed = GetParam();
  GeneratedGraph g = grid2d(14, 14);
  randomize_weights_log_uniform(g.edges, 1e9, seed);  // many classes
  LsSubgraphOptions opts;
  opts.seed = seed;
  opts.theta = 0.2;
  opts.segmented = true;
  LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
  std::set<std::uint32_t> uniq;
  EdgeList sub;
  for (auto i : r.subgraph_edges) {
    ASSERT_LT(i, g.edges.size());
    EXPECT_TRUE(uniq.insert(i).second);
    sub.push_back(g.edges[i]);
  }
  EXPECT_TRUE(is_connected(g.n, sub));
  StretchStats s = stretch_wrt_subgraph(g.n, sub, g.edges);
  EXPECT_GE(s.average(), 0.99);
  // Segmented and sequential runs both produce valid subgraphs of similar
  // size (they need not be identical).
  opts.segmented = false;
  LsSubgraphResult seq = ls_subgraph(g.n, g.edges, opts);
  EXPECT_LT(r.subgraph_edges.size(), 2 * seq.subgraph_edges.size() + 16);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentedMode, ::testing::Values(1u, 2u, 3u));

TEST(LsSubgraph, AblationWithoutWellSpacing) {
  GeneratedGraph g = grid2d(12, 12);
  randomize_weights_log_uniform(g.edges, 1e8, 2);
  LsSubgraphOptions opts;
  opts.apply_well_spacing = false;
  LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
  EXPECT_EQ(r.removed_count, 0u);
  EdgeList sub;
  for (auto i : r.subgraph_edges) sub.push_back(g.edges[i]);
  EXPECT_TRUE(is_connected(g.n, sub));
}

}  // namespace
}  // namespace parsdd
