// RootedTree: depths, LCA, distances (brute-force cross-check).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/tree.h"
#include "parallel/rng.h"

namespace parsdd {
namespace {

// Brute-force LCA by walking parents.
std::uint32_t lca_brute(const RootedTree& t, std::uint32_t u,
                        std::uint32_t v) {
  while (t.depth(u) > t.depth(v)) u = t.parent(u);
  while (t.depth(v) > t.depth(u)) v = t.parent(v);
  while (u != v) {
    u = t.parent(u);
    v = t.parent(v);
  }
  return u;
}

TEST(RootedTree, PathTree) {
  GeneratedGraph g = path(64);
  RootedTree t = RootedTree::from_edges(g.n, g.edges, 0);
  EXPECT_EQ(t.depth(63), 63u);
  EXPECT_EQ(t.lca(10, 50), 10u);
  EXPECT_DOUBLE_EQ(t.distance(10, 50), 40.0);
  EXPECT_EQ(t.hop_distance(3, 7), 4u);
}

TEST(RootedTree, StarTree) {
  GeneratedGraph g = star(20);
  RootedTree t = RootedTree::from_edges(g.n, g.edges, 0);
  EXPECT_EQ(t.lca(3, 7), 0u);
  EXPECT_DOUBLE_EQ(t.distance(3, 7), 2.0);
  EXPECT_EQ(t.lca(0, 9), 0u);
  EXPECT_DOUBLE_EQ(t.distance(0, 9), 1.0);
}

TEST(RootedTree, RootedAwayFromZero) {
  GeneratedGraph g = path(10);
  RootedTree t = RootedTree::from_edges(g.n, g.edges, 9);
  EXPECT_EQ(t.root(), 9u);
  EXPECT_EQ(t.depth(0), 9u);
  EXPECT_EQ(t.lca(0, 5), 5u);
}

TEST(RootedTree, WeightedDistances) {
  EdgeList e = {{0, 1, 2.5}, {1, 2, 4.0}, {1, 3, 1.0}};
  RootedTree t = RootedTree::from_edges(4, e, 0);
  EXPECT_DOUBLE_EQ(t.weighted_depth(2), 6.5);
  EXPECT_DOUBLE_EQ(t.distance(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 3), 3.5);
}

TEST(RootedTree, ThrowsOnWrongEdgeCount) {
  EdgeList e = {{0, 1, 1.0}};
  EXPECT_THROW(RootedTree::from_edges(3, e, 0), std::invalid_argument);
}

TEST(RootedTree, ThrowsOnDisconnected) {
  EdgeList e = {{0, 1, 1.0}, {0, 1, 1.0}};  // parallel pair, vertex 2 isolated
  EXPECT_THROW(RootedTree::from_edges(3, e, 0), std::invalid_argument);
}

class RandomTreeLca : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeLca, MatchesBruteForce) {
  std::uint64_t seed = GetParam();
  // Random spanning tree via MST of a random graph with random weights.
  GeneratedGraph g = erdos_renyi(200, 800, seed);
  randomize_weights_log_uniform(g.edges, 10.0, seed);
  auto idx = mst_kruskal(g.n, g.edges);
  EdgeList tree;
  for (auto i : idx) tree.push_back(g.edges[i]);
  RootedTree t = RootedTree::from_edges(g.n, tree, 0);
  Rng rng(seed + 100);
  for (std::uint64_t q = 0; q < 200; ++q) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.below(2 * q, g.n));
    std::uint32_t v = static_cast<std::uint32_t>(rng.below(2 * q + 1, g.n));
    EXPECT_EQ(t.lca(u, v), lca_brute(t, u, v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeLca, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace parsdd
