// End-to-end smoke test: the full pipeline on a small grid.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

namespace parsdd {
namespace {

TEST(Smoke, GridSolve) {
  GeneratedGraph g = grid2d(20, 20);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  Vec b = random_unit_like(g.n, 42);
  SddSolveReport report;
  Vec x = solver.solve(b, &report).value();
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec ax = lap.apply(x);
  double err = kernels::norm2(kernels::subtract(ax, b)) / kernels::norm2(b);
  EXPECT_LT(err, 1e-6);
  EXPECT_TRUE(report.stats.converged);
}

}  // namespace
}  // namespace parsdd
