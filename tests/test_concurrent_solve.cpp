// Concurrency stress for the serving path, meant to run under the ASan and
// TSan configurations (-DPARSDD_SANITIZE=ON / -DPARSDD_SANITIZE_THREAD=ON).
//
// Shape: N client threads x M submits each, all against ONE registered
// setup, racing the dispatcher's coalescing and the executor pool.  Every
// returned column must match the reference serial solve of the same
// right-hand side bitwise — the determinism contract means data races or
// cross-column contamination show up as hard mismatches, not tolerance
// noise.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "service/solver_service.h"
#include "solver/sdd_solver.h"

namespace parsdd {
namespace {

constexpr int kThreads = 4;
constexpr int kSubmitsPerThread = 6;

bool bitwise_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Deterministic per-(thread, submit) right-hand side.
Vec rhs_for(std::uint32_t n, int t, int i) {
  return random_unit_like(n, 10000 + 100 * t + i);
}

TEST(ConcurrentSolve, ServiceStressMatchesSerialReference) {
  GeneratedGraph g = grid2d(14, 14);

  // Reference answers, computed serially before any concurrency starts.
  SddSolver reference = SddSolver::for_laplacian(g.n, g.edges);
  std::vector<std::vector<Vec>> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kSubmitsPerThread; ++i) {
      expected[t].push_back(reference.solve(rhs_for(g.n, t, i)).value());
    }
  }

  ServiceOptions opts;
  opts.max_batch = 8;
  opts.max_linger_us = 500;
  opts.workers = 2;
  SolverService service(opts);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      // Keep several requests in flight per client to force interleaving.
      std::vector<std::future<StatusOr<SolveResult>>> futures;
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        futures.push_back(service.submit(h, rhs_for(g.n, t, i)));
      }
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        StatusOr<SolveResult> res = futures[i].get();
        if (!res.ok()) {
          ++failures;
          continue;
        }
        if (!bitwise_equal(res->x, expected[t][i])) ++mismatches;
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Futures resolve before the accounting is final; drain() waits for it.
  service.drain();
  ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads) *
                              kSubmitsPerThread);
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.dispatched_cols, st.submitted);
}

TEST(ConcurrentSolve, MixedSinglesAndBatchesOneHandle) {
  GeneratedGraph g = grid2d(12, 12);
  SddSolver reference = SddSolver::for_laplacian(g.n, g.edges);

  ServiceOptions opts;
  opts.max_batch = 4;
  opts.max_linger_us = 200;
  opts.workers = 2;
  SolverService service(opts);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      if (t % 2 == 0) {
        for (int i = 0; i < kSubmitsPerThread; ++i) {
          Vec b = rhs_for(g.n, t, i);
          StatusOr<SolveResult> res = service.submit(h, b).get();
          if (!res.ok() || !bitwise_equal(res->x, reference.solve(b).value()))
            ++bad;
        }
      } else {
        std::vector<Vec> cols;
        for (int i = 0; i < 3; ++i) cols.push_back(rhs_for(g.n, t, i));
        StatusOr<BatchSolveResult> res =
            service.submit_batch(h, MultiVec::from_columns(cols)).get();
        if (!res.ok()) {
          ++bad;
          return;
        }
        for (int i = 0; i < 3; ++i) {
          if (!bitwise_equal(res->x.column(i),
                             reference.solve(cols[i]).value()))
            ++bad;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ConcurrentSolve, RegistrationRacesSubmissions) {
  // Clients hammering one handle while another thread registers and
  // unregisters fresh setups: the registry lock must keep handles
  // coherent, and unregister must never strand an accepted request.
  GeneratedGraph g = grid2d(10, 10);
  SolverService service;
  SetupHandle stable = service.register_laplacian(g.n, g.edges).value();
  SddSolver reference = SddSolver::for_laplacian(g.n, g.edges);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread churn([&] {
    GeneratedGraph small = grid2d(4, 4);
    while (!stop.load()) {
      StatusOr<SetupHandle> h = service.register_laplacian(small.n, small.edges);
      if (!h.ok() || !service.unregister(*h).ok()) {
        ++bad;
        return;
      }
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        Vec b = rhs_for(g.n, t, i);
        StatusOr<SolveResult> res = service.submit(stable, b).get();
        if (!res.ok() || !bitwise_equal(res->x, reference.solve(b).value()))
          ++bad;
      }
    });
  }
  for (auto& c : clients) c.join();
  stop = true;
  churn.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace parsdd
