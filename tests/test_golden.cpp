// Golden regression vector: loads the committed grid16 snapshot +
// expected-solution file and memcmp-verifies that today's build reproduces
// yesterday's bits exactly.
//
// This is the drift tripwire the persistence contract needs: round-trip
// tests compare a build against itself, so a refactor that changes solver
// arithmetic everywhere still passes them — but it cannot reproduce the
// committed bytes.  The library builds with -ffp-contract=off precisely so
// this comparison is meaningful across compilers (see DESIGN.md).
//
// Regenerate after an INTENTIONAL numeric change with the checked-in tool:
//   ./make_golden tests/data/golden_grid16.bin
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "solver/solver_setup.h"
#include "util/serialize.h"

#ifndef PARSDD_TEST_DATA_DIR
#define PARSDD_TEST_DATA_DIR "tests/data"
#endif

namespace parsdd {
namespace {

TEST(Golden, Grid16SnapshotReproducesCommittedSolutionBitwise) {
  const std::string path =
      std::string(PARSDD_TEST_DATA_DIR) + "/golden_grid16.bin";
  StatusOr<serialize::Reader> r = serialize::Reader::from_file(path);
  ASSERT_TRUE(r.ok()) << r.status().to_string()
                      << "\n  (regenerate with ./make_golden " << path << ")";
  ASSERT_TRUE(r->check_header().ok()) << r->status().to_string();

  StatusOr<SolverSetup> setup = SolverSetup::load_from(*r);
  ASSERT_TRUE(setup.ok()) << setup.status().to_string();
  Vec b = r->pod_vec<double>();
  Vec expected = r->pod_vec<double>();
  ASSERT_TRUE(r->status().ok()) << r->status().to_string();
  ASSERT_TRUE(r->exhausted());
  ASSERT_EQ(b.size(), setup->dimension());
  ASSERT_EQ(expected.size(), setup->dimension());

  StatusOr<Vec> x = setup->solve(b);
  ASSERT_TRUE(x.ok()) << x.status().to_string();
  ASSERT_EQ(x->size(), expected.size());
  EXPECT_EQ(0, std::memcmp(x->data(), expected.data(),
                           expected.size() * sizeof(double)))
      << "solver arithmetic drifted from the committed golden vector; if "
         "the change is intentional, regenerate with ./make_golden and "
         "explain the drift in the PR";

  // The committed solution must also still be a genuine solution.
  GeneratedGraph g = grid2d(16, 16);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel = kernels::norm2(kernels::subtract(lap.apply(expected), b)) / kernels::norm2(b);
  EXPECT_LE(rel, 1e-6);
}

}  // namespace
}  // namespace parsdd
