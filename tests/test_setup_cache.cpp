// SetupCache + build-input fingerprints: the in-process half of setup
// amortization (the cross-process half is snapshots, test_persistence).
//
// Contracts under test:
//   * fingerprints separate every input that feeds the deterministic chain
//     build — graph content, option fields, laplacian-vs-sdd registration —
//     and agree for identical inputs;
//   * SetupCache is an LRU: get refreshes recency, put evicts the least
//     recently used entry beyond capacity, capacity 0 disables caching;
//   * through SolverService, a repeat registration of the same graph is a
//     cache hit (stats().setup_cache_hits) that shares the built setup,
//     answers bitwise-identically, and survives unregister of the first
//     handle; different options miss.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "service/setup_cache.h"
#include "service/solver_service.h"
#include "util/thread_annotations.h"

namespace parsdd {
namespace {

// Distinct synthetic fingerprints for the LRU tests (both lanes differ).
SetupFingerprint fp(std::uint64_t k) { return SetupFingerprint{k, ~k}; }

TEST(Fingerprint, IdenticalInputsAgree) {
  GeneratedGraph g = grid2d(5, 5);
  SddSolverOptions opts;
  EXPECT_EQ(fingerprint_laplacian_setup(g.n, g.edges, opts),
            fingerprint_laplacian_setup(g.n, g.edges, opts));
}

TEST(Fingerprint, GraphContentSeparates) {
  GeneratedGraph g = grid2d(5, 5);
  SddSolverOptions opts;
  SetupFingerprint base = fingerprint_laplacian_setup(g.n, g.edges, opts);

  EdgeList reweighted = g.edges;
  reweighted[0].w *= 2.0;
  EXPECT_NE(base, fingerprint_laplacian_setup(g.n, reweighted, opts));

  EdgeList fewer(g.edges.begin(), g.edges.end() - 1);
  EXPECT_NE(base, fingerprint_laplacian_setup(g.n, fewer, opts));

  EXPECT_NE(base, fingerprint_laplacian_setup(g.n + 1, g.edges, opts));
}

TEST(Fingerprint, OptionFieldsSeparate) {
  GeneratedGraph g = grid2d(5, 5);
  SddSolverOptions opts;
  SetupFingerprint base = fingerprint_laplacian_setup(g.n, g.edges, opts);

  SddSolverOptions tol = opts;
  tol.tolerance *= 0.5;
  EXPECT_NE(base, fingerprint_laplacian_setup(g.n, g.edges, tol));

  SddSolverOptions seeded = opts;
  seeded.chain.seed += 1;
  EXPECT_NE(base, fingerprint_laplacian_setup(g.n, g.edges, seeded));
}

TEST(Fingerprint, LaplacianAndSddNeverAlias) {
  // An SDD registration of the Laplacian matrix itself must not collide
  // with the Laplacian registration of the generating graph: the builds
  // differ (Gremban lift vs direct).
  GeneratedGraph g = grid2d(5, 5);
  SddSolverOptions opts;
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EXPECT_NE(fingerprint_laplacian_setup(g.n, g.edges, opts),
            fingerprint_sdd_setup(lap, opts));
}

std::shared_ptr<const SolverSetup> make_setup(std::uint32_t side) {
  GeneratedGraph g = grid2d(side, side);
  return std::make_shared<const SolverSetup>(
      SolverSetup::for_laplacian(g.n, g.edges));
}

TEST(SetupCache, GetReturnsCachedPointer) {
  SetupCache cache(2);
  auto a = make_setup(3);
  cache.put(fp(1), a);
  EXPECT_EQ(cache.get(fp(1)), a);
  EXPECT_EQ(cache.get(fp(2)), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SetupCache, EvictsLeastRecentlyUsed) {
  SetupCache cache(2);
  auto a = make_setup(3), b = make_setup(4), c = make_setup(5);
  cache.put(fp(1), a);
  cache.put(fp(2), b);
  EXPECT_EQ(cache.get(fp(1)), a);  // refresh 1: now 2 is least recent
  cache.put(fp(3), c);
  EXPECT_EQ(cache.get(fp(2)), nullptr);
  EXPECT_EQ(cache.get(fp(1)), a);
  EXPECT_EQ(cache.get(fp(3)), c);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SetupCache, PutExistingKeyRefreshesValueAndRecency) {
  SetupCache cache(2);
  auto a = make_setup(3), b = make_setup(4), c = make_setup(5);
  cache.put(fp(1), a);
  cache.put(fp(2), b);
  cache.put(fp(1), c);  // overwrite key 1, making it most recent
  EXPECT_EQ(cache.get(fp(1)), c);
  cache.put(fp(3), a);  // evicts 2, not 1
  EXPECT_EQ(cache.get(fp(2)), nullptr);
  EXPECT_EQ(cache.get(fp(1)), c);
}

TEST(SetupCache, PartialFingerprintMatchIsAMiss) {
  // Both lanes must match: a key agreeing in one 64-bit half only (the
  // collision case the 128-bit fingerprint exists to rule out) never
  // serves the cached setup.
  SetupCache cache(2);
  auto a = make_setup(3);
  cache.put(SetupFingerprint{7, 11}, a);
  EXPECT_EQ(cache.get(SetupFingerprint{7, 12}), nullptr);
  EXPECT_EQ(cache.get(SetupFingerprint{8, 11}), nullptr);
  EXPECT_EQ(cache.get(SetupFingerprint{7, 11}), a);
}

TEST(SetupCache, CapacityZeroDisables) {
  SetupCache cache(0);
  cache.put(fp(1), make_setup(3));
  EXPECT_EQ(cache.get(fp(1)), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// SetupCache is *externally synchronized* (the service embeds it
// GUARDED_BY its mutex): get() mutates LRU recency, so even two
// concurrent get()s of the same key need the caller's lock.  This hammer
// drives put / get / eviction of ONE hot key plus churn keys from many
// threads under that documented discipline; the TSan lane proves the
// discipline is sufficient (no hidden shared state beyond the lock), and
// the assertions prove the LRU invariants hold under heavy interleaving —
// in particular put()'s in-place same-key replace keeps at most one entry
// per fingerprint, so a get() observes either a current value or a miss,
// never a stale duplicate.
TEST(SetupCacheHammer, PutGetEvictOneKeyUnderExternalLock) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  SetupCache cache(2);  // tiny: every churn put evicts
  Mutex mu;
  auto hot_a = make_setup(3);
  auto hot_b = make_setup(4);
  auto churn = make_setup(5);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        switch ((t + i) % 4) {
          case 0:
            cache.put(fp(1), (i & 1) != 0 ? hot_a : hot_b);
            break;
          case 1: {
            std::shared_ptr<const SolverSetup> got = cache.get(fp(1));
            // The hot key only ever maps to hot_a or hot_b; a stale or
            // half-replaced entry would surface here.  nullptr (evicted by
            // a churn put) is a legitimate outcome.
            EXPECT_TRUE(got == nullptr || got == hot_a || got == hot_b);
            break;
          }
          case 2:
            // Churn keys distinct per thread: drives eviction of fp(1).
            cache.put(fp(100 + t), churn);
            break;
          default:
            (void)cache.get(fp(100 + ((t + 1) % kThreads)));
            break;
        }
        EXPECT_LE(cache.size(), 2u);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Deterministic evict-path coverage (whether the concurrent phase
  // displaced the hot key is scheduling-dependent): two churn puts after a
  // hot-key touch must evict it, and a later put must restore exactly one
  // current entry.
  MutexLock lock(mu);
  cache.put(fp(1), hot_a);
  cache.put(fp(300), churn);
  cache.put(fp(301), churn);
  EXPECT_EQ(cache.get(fp(1)), nullptr);
  cache.put(fp(1), hot_b);
  EXPECT_EQ(cache.get(fp(1)), hot_b);
  EXPECT_LE(cache.size(), 2u);
}

TEST(ExtendFingerprint, DeterministicAndNeverAliasesBase) {
  SetupFingerprint base = fp(42);
  std::vector<EdgeDelta> deltas = {{0, 1, 2.0}, {1, 2, 0.0}};
  SetupFingerprint ext = extend_fingerprint(base, deltas);
  EXPECT_EQ(ext, extend_fingerprint(base, deltas));  // deterministic
  EXPECT_NE(ext, base);  // an updated setup never aliases its pre-update key
}

TEST(ExtendFingerprint, SeparatesBatchesAndChains) {
  SetupFingerprint base = fp(42);
  std::vector<EdgeDelta> a = {{0, 1, 2.0}};
  std::vector<EdgeDelta> b = {{0, 1, 3.0}};
  EXPECT_NE(extend_fingerprint(base, a), extend_fingerprint(base, b));
  // Order of application matters (sequential semantics), so chained
  // extensions in different orders must differ.
  EXPECT_NE(extend_fingerprint(extend_fingerprint(base, a), b),
            extend_fingerprint(extend_fingerprint(base, b), a));
  // Different bases never collide under the same batch.
  EXPECT_NE(extend_fingerprint(base, a), extend_fingerprint(fp(43), a));
}

TEST(ServiceCache, RepeatRegistrationHitsAndSharesSolves) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h1 = service.register_laplacian(g.n, g.edges).value();
  SetupHandle h2 = service.register_laplacian(g.n, g.edges).value();
  EXPECT_NE(h1.id, h2.id);  // handles stay per-registration

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.setup_cache_misses, 1u);
  EXPECT_EQ(stats.setup_cache_hits, 1u);

  Vec b = random_unit_like(g.n, 7);
  Vec x1 = service.submit(h1, b).get().value().x;
  Vec x2 = service.submit(h2, b).get().value().x;
  ASSERT_EQ(x1.size(), x2.size());
  EXPECT_EQ(std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(double)), 0);
}

TEST(ServiceCache, DifferentOptionsMiss) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SddSolverOptions tighter;
  tighter.tolerance = 1e-10;
  ASSERT_TRUE(service.register_laplacian(g.n, g.edges).ok());
  ASSERT_TRUE(service.register_laplacian(g.n, g.edges, tighter).ok());
  EXPECT_EQ(service.stats().setup_cache_hits, 0u);
  EXPECT_EQ(service.stats().setup_cache_misses, 2u);
}

TEST(ServiceCache, HitSurvivesUnregisterOfFirstHandle) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h1 = service.register_laplacian(g.n, g.edges).value();
  ASSERT_TRUE(service.unregister(h1).ok());
  SetupHandle h2 = service.register_laplacian(g.n, g.edges).value();
  EXPECT_EQ(service.stats().setup_cache_hits, 1u);
  Vec b = random_unit_like(g.n, 7);
  EXPECT_TRUE(service.submit(h2, b).get().ok());
}

TEST(ServiceCache, CapacityZeroAlwaysRebuilds) {
  ServiceOptions opts;
  opts.setup_cache_capacity = 0;
  SolverService service(opts);
  GeneratedGraph g = grid2d(8, 8);
  ASSERT_TRUE(service.register_laplacian(g.n, g.edges).ok());
  ASSERT_TRUE(service.register_laplacian(g.n, g.edges).ok());
  EXPECT_EQ(service.stats().setup_cache_hits, 0u);
  EXPECT_EQ(service.stats().setup_cache_misses, 2u);
}

}  // namespace
}  // namespace parsdd
