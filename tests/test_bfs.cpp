// Parallel BFS: exact distances, parents, rounds, truncation.
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"

namespace parsdd {
namespace {

TEST(Bfs, PathDistances) {
  GeneratedGraph g = path(100);
  Graph csr = Graph::from_edges(g.n, g.edges);
  BfsResult r = bfs(csr, 0);
  for (std::uint32_t v = 0; v < g.n; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[0], 0u);
  for (std::uint32_t v = 1; v < g.n; ++v) EXPECT_EQ(r.parent[v], v - 1);
}

TEST(Bfs, StarDistances) {
  GeneratedGraph g = star(50);
  Graph csr = Graph::from_edges(g.n, g.edges);
  BfsResult r = bfs(csr, 0);
  EXPECT_EQ(r.dist[0], 0u);
  for (std::uint32_t v = 1; v < g.n; ++v) EXPECT_EQ(r.dist[v], 1u);
  BfsResult leaf = bfs(csr, 3);
  EXPECT_EQ(leaf.dist[0], 1u);
  EXPECT_EQ(leaf.dist[7], 2u);
}

TEST(Bfs, GridManhattanDistanceFromCorner) {
  GeneratedGraph g = grid2d(17, 13);
  Graph csr = Graph::from_edges(g.n, g.edges);
  BfsResult r = bfs(csr, 0);
  for (std::uint32_t y = 0; y < 13; ++y) {
    for (std::uint32_t x = 0; x < 17; ++x) {
      EXPECT_EQ(r.dist[y * 17 + x], x + y);
    }
  }
}

TEST(Bfs, ParentsFormValidBfsTree) {
  GeneratedGraph g = erdos_renyi(300, 900, 7);
  Graph csr = Graph::from_edges(g.n, g.edges);
  BfsResult r = bfs(csr, 5);
  for (std::uint32_t v = 0; v < g.n; ++v) {
    ASSERT_NE(r.dist[v], kUnreached);
    if (v == 5) continue;
    EXPECT_EQ(r.dist[v], r.dist[r.parent[v]] + 1);
    // parent_eid names an edge incident to both v and parent.
    const Edge& e = g.edges[r.parent_eid[v]];
    bool ok = (e.u == v && e.v == r.parent[v]) ||
              (e.v == v && e.u == r.parent[v]);
    EXPECT_TRUE(ok);
  }
}

TEST(Bfs, UnreachedVerticesMarked) {
  EdgeList e = {{0, 1, 1.0}, {2, 3, 1.0}};
  Graph csr = Graph::from_edges(4, e);
  BfsResult r = bfs(csr, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], kUnreached);
  EXPECT_EQ(r.parent[3], kUnreached);
}

TEST(Bfs, MultiSourceTakesNearest) {
  GeneratedGraph g = path(100);
  Graph csr = Graph::from_edges(g.n, g.edges);
  std::vector<std::uint32_t> sources = {0, 99};
  BfsResult r = bfs_multi(csr, sources);
  EXPECT_EQ(r.dist[50], 49u);
  EXPECT_EQ(r.dist[10], 10u);
  EXPECT_EQ(r.dist[95], 4u);
}

TEST(Bfs, MaxRoundsTruncates) {
  GeneratedGraph g = path(100);
  Graph csr = Graph::from_edges(g.n, g.edges);
  std::vector<std::uint32_t> src = {0};
  BfsResult r = bfs_multi(csr, src, 5);
  EXPECT_EQ(r.dist[5], 5u);
  EXPECT_EQ(r.dist[6], kUnreached);
  EXPECT_EQ(r.rounds, 5u);
}

TEST(Bfs, RoundsReflectEccentricity) {
  GeneratedGraph g = path(10);
  Graph csr = Graph::from_edges(g.n, g.edges);
  BfsResult r = bfs(csr, 0);
  // 9 productive expansions plus the final empty one.
  EXPECT_EQ(r.rounds, 10u);
}

TEST(Bfs, DuplicateSourcesHandled) {
  GeneratedGraph g = path(10);
  Graph csr = Graph::from_edges(g.n, g.edges);
  std::vector<std::uint32_t> sources = {3, 3, 3};
  BfsResult r = bfs_multi(csr, sources);
  EXPECT_EQ(r.dist[0], 3u);
  EXPECT_EQ(r.dist[9], 6u);
}

}  // namespace
}  // namespace parsdd
