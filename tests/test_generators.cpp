// Generator invariants: sizes, connectivity, weight ranges.
#include <gtest/gtest.h>

#include <functional>

#include "graph/edge_list.h"
#include "graph/generators.h"

namespace parsdd {
namespace {

TEST(Generators, Grid2dCounts) {
  GeneratedGraph g = grid2d(4, 3);
  EXPECT_EQ(g.n, 12u);
  // (nx-1)*ny + nx*(ny-1)
  EXPECT_EQ(g.edges.size(), 3u * 3 + 4 * 2);
  EXPECT_TRUE(is_connected(g.n, g.edges));
}

TEST(Generators, Grid3dCounts) {
  GeneratedGraph g = grid3d(3, 3, 3);
  EXPECT_EQ(g.n, 27u);
  EXPECT_EQ(g.edges.size(), 3u * (2 * 3 * 3));
  EXPECT_TRUE(is_connected(g.n, g.edges));
}

TEST(Generators, Torus2dIsFourRegular) {
  GeneratedGraph g = torus2d(4, 5);
  EXPECT_EQ(g.n, 20u);
  EXPECT_EQ(g.edges.size(), 2u * g.n);
  std::vector<int> deg(g.n, 0);
  for (const Edge& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (int d : deg) EXPECT_EQ(d, 4);
}

TEST(Generators, PathAndStar) {
  EXPECT_EQ(path(10).edges.size(), 9u);
  EXPECT_EQ(star(10).edges.size(), 9u);
  EXPECT_TRUE(is_connected(10, path(10).edges));
  EXPECT_TRUE(is_connected(10, star(10).edges));
}

TEST(Generators, CompleteGraph) {
  GeneratedGraph g = complete(7);
  EXPECT_EQ(g.edges.size(), 21u);
}

// Parameterized connectivity/validity sweep across random families & seeds.
struct FamilyCase {
  const char* name;
  std::function<GeneratedGraph(std::uint64_t)> make;
};

class RandomFamilyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

GeneratedGraph make_family(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return erdos_renyi(200, 600, seed);
    case 1:
      return rmat(8, 800, seed);
    default:
      return preferential_attachment(200, 3, seed);
  }
}

TEST_P(RandomFamilyTest, ConnectedNoSelfLoopsInRange) {
  auto [family, seed] = GetParam();
  GeneratedGraph g = make_family(family, seed);
  EXPECT_TRUE(is_connected(g.n, g.edges));
  for (const Edge& e : g.edges) {
    EXPECT_NE(e.u, e.v);
    EXPECT_LT(e.u, g.n);
    EXPECT_LT(e.v, g.n);
    EXPECT_GT(e.w, 0.0);
  }
}

TEST_P(RandomFamilyTest, DeterministicForFixedSeed) {
  auto [family, seed] = GetParam();
  GeneratedGraph a = make_family(family, seed);
  GeneratedGraph b = make_family(family, seed);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, RandomFamilyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Generators, LogUniformWeightsWithinSpread) {
  GeneratedGraph g = grid2d(10, 10);
  randomize_weights_log_uniform(g.edges, 100.0, 5);
  for (const Edge& e : g.edges) {
    EXPECT_GE(e.w, 1.0);
    EXPECT_LE(e.w, 100.0 * (1 + 1e-9));
  }
}

TEST(Generators, TwoLevelWeights) {
  GeneratedGraph g = grid2d(10, 10);
  randomize_weights_two_level(g.edges, 1000.0, 5);
  std::size_t high = 0;
  for (const Edge& e : g.edges) {
    EXPECT_TRUE(e.w == 1.0 || e.w == 1000.0);
    if (e.w == 1000.0) ++high;
  }
  EXPECT_GT(high, g.edges.size() / 4);
  EXPECT_LT(high, 3 * g.edges.size() / 4);
}

}  // namespace
}  // namespace parsdd
