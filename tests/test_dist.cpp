// Sharded multi-process serving (dist/coordinator.h + parsdd_worker).
//
// Contracts under test:
//   * a Coordinator solve is bitwise identical to an in-process solve of
//     the same snapshot — process boundaries are invisible to answers;
//   * snapshot shipping fails typed: NotFound for a missing path,
//     InvalidArgument for a truncated file or a fingerprint collision, and
//     a snapshot deleted after registration surfaces cleanly at the next
//     ship (rebalance) while the original placement keeps serving;
//   * killing a worker mid-load loses no accepted request silently — every
//     future resolves OK or Unavailable — and with respawn enabled the
//     shard recovers (handles re-registered from snapshots, answers again
//     bitwise identical, recovery < 500 ms);
//   * destroying the coordinator with requests pending answers everything
//     (the multiprocess analogue of the service drain test; TSan lane);
//   * the submit-side error contract (NotFound / InvalidArgument /
//     ResourceExhausted / Unavailable) mirrors the in-process service.
//
// The worker binary comes from the PARSDD_WORKER_BIN compile definition
// (tests/CMakeLists.txt points it at the parsdd_worker target), overridable
// by the environment variable of the same name.
#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "graph/generators.h"
#include "solver/solver_setup.h"

namespace parsdd::dist {
namespace {

bool bitwise_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

std::string worker_binary() {
  const char* env = std::getenv("PARSDD_WORKER_BIN");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef PARSDD_WORKER_BIN
  return PARSDD_WORKER_BIN;
#else
  return std::string();
#endif
}

// A per-test scratch directory for snapshots (removed with its contents).
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "parsdd_dist_" + tag + "_" +
              std::to_string(::getpid())) {
    mkdir(path_.c_str(), 0755);
  }
  ~TempDir() {
    // The directory holds only snapshot files this test created
    // (directly or via the coordinator's register_*); remove them all.
    if (DIR* d = opendir(path_.c_str())) {
      while (dirent* e = readdir(d)) {
        if (e->d_name[0] == '.') continue;
        std::remove((path_ + "/" + e->d_name).c_str());
      }
      closedir(d);
    }
    rmdir(path_.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CoordinatorOptions base_options(const TempDir& dir, std::uint32_t workers) {
  CoordinatorOptions opts;
  opts.workers = workers;
  opts.worker_binary = worker_binary();
  opts.snapshot_dir = dir.path();
  return opts;
}

// Builds a setup, saves its snapshot at dir/setup.snap, and returns it for
// computing expected answers in-process.
SolverSetup saved_setup(const TempDir& dir, std::uint32_t nx,
                        std::uint32_t ny) {
  GeneratedGraph g = grid2d(nx, ny);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  EXPECT_TRUE(setup.Save(dir.path() + "/setup.snap").ok());
  return setup;
}

// Polls until a submit against the handle succeeds (the shard finished
// recovering) or the deadline passes; returns the final result.
StatusOr<SolveResult> await_recovery(Coordinator& c, SetupHandle h,
                                     const Vec& b) {
  StatusOr<SolveResult> res = UnavailableError("never submitted");
  for (int tries = 0; tries < 500; ++tries) {
    res = c.submit(h, b).get();
    if (res.ok()) return res;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return res;
}

TEST(DistCoordinator, StartRequiresWorkerBinary) {
  TempDir dir("nobin");
  CoordinatorOptions opts = base_options(dir, 1);
  opts.worker_binary = "/nonexistent/not_a_worker";
  StatusOr<std::unique_ptr<Coordinator>> c = Coordinator::Start(opts);
  // exec fails after fork; the coordinator sees no hello and reports it
  // instead of hanging or leaking a half-started instance.
  EXPECT_FALSE(c.ok());
}

TEST(DistCoordinator, SolveMatchesInProcessBitwise) {
  TempDir dir("bitwise");
  SolverSetup setup = saved_setup(dir, 10, 10);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  EXPECT_EQ((*c)->info(h).value().dimension, setup.dimension());

  for (std::size_t i = 0; i < 4; ++i) {
    Vec b = random_unit_like(setup.dimension(), 100 + i);
    StatusOr<SolveResult> res = (*c)->submit(h, b).get();
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    EXPECT_TRUE(res->stats.converged);
    EXPECT_TRUE(bitwise_equal(res->x, setup.solve(b).value()))
        << "request " << i;
  }
}

TEST(DistCoordinator, BatchRoundTripsBitwise) {
  TempDir dir("batch");
  SolverSetup setup = saved_setup(dir, 8, 8);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();

  std::vector<Vec> cols;
  for (std::size_t i = 0; i < 3; ++i) {
    cols.push_back(random_unit_like(setup.dimension(), 300 + i));
  }
  MultiVec b = MultiVec::from_columns(cols);
  StatusOr<BatchSolveResult> res = (*c)->submit_batch(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  ASSERT_EQ(res->x.cols(), cols.size());
  ASSERT_EQ(res->report.column_stats.size(), cols.size());
  MultiVec expected = setup.solve_batch(b).value();
  for (std::size_t col = 0; col < cols.size(); ++col) {
    EXPECT_TRUE(res->report.column_stats[col].converged);
    EXPECT_TRUE(bitwise_equal(res->x.column(col), expected.column(col)))
        << "column " << col;
  }
}

TEST(DistCoordinator, RequiredPrecisionTravelsTheWire) {
  // The wire-v2 required-precision byte: the worker's refusal (typed
  // InvalidArgument) and the RegisterAck's precision field both cross the
  // process boundary intact.
  TempDir dir("precision");
  GeneratedGraph g = grid2d(8, 8);
  SddSolverOptions f32_opts;
  f32_opts.precision = Precision::kF32Refined;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, f32_opts);
  ASSERT_TRUE(setup.Save(dir.path() + "/setup.snap").ok());

  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  // info() is served from the RegisterAck the worker sent back.
  EXPECT_EQ((*c)->info(h).value().precision, Precision::kF32Refined);

  Vec b = random_unit_like(setup.dimension(), 42);
  EXPECT_EQ((*c)->submit(h, b, Precision::kF64Bitwise).get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*c)
                ->submit_batch(h, MultiVec(setup.dimension(), 2),
                               Precision::kF64Bitwise)
                .get()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  StatusOr<SolveResult> ok = (*c)->submit(h, b, Precision::kF32Refined).get();
  ASSERT_TRUE(ok.ok()) << ok.status().to_string();
  EXPECT_TRUE(ok->stats.converged);
  // And the worker's answer still matches the in-process f32 solve bitwise
  // (same backend, same process-independent arithmetic).
  EXPECT_TRUE(bitwise_equal(ok->x, setup.solve(b).value()));
}

TEST(DistCoordinator, RegisterBuildsSaveAndCollide) {
  TempDir dir("build");
  GeneratedGraph g = grid2d(6, 6);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h = (*c)->register_laplacian(g.n, g.edges).value();
  EXPECT_EQ((*c)->info(h).value().dimension, g.n);
  Vec b = random_unit_like(g.n, 7);
  StatusOr<SolveResult> res = (*c)->submit(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();

  // Same graph -> same snapshot digest -> fingerprint collision, typed.
  StatusOr<SetupHandle> dup = (*c)->register_laplacian(g.n, g.edges);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  // After unregister the digest is free again.
  EXPECT_TRUE((*c)->unregister(h).ok());
  EXPECT_EQ((*c)->unregister(h).code(), StatusCode::kNotFound);
  EXPECT_TRUE((*c)->register_laplacian(g.n, g.edges).ok());
}

TEST(DistCoordinator, MissingSnapshotIsNotFound) {
  TempDir dir("missing");
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  StatusOr<SetupHandle> h =
      (*c)->register_from_snapshot(dir.path() + "/never_saved.snap");
  EXPECT_EQ(h.status().code(), StatusCode::kNotFound);
}

TEST(DistCoordinator, TruncatedSnapshotIsInvalidArgument) {
  TempDir dir("truncated");
  saved_setup(dir, 6, 6);
  std::string path = dir.path() + "/setup.snap";

  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();

  // Cut the file mid-payload: the worker's checksum validation refuses it
  // and the typed error ships back unchanged.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long full = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(full, 16);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  StatusOr<SetupHandle> h = (*c)->register_from_snapshot(path);
  EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);

  // Shorter than even the checksum trailer: refused before shipping.
  ASSERT_EQ(truncate(path.c_str(), 4), 0);
  h = (*c)->register_from_snapshot(path);
  EXPECT_EQ(h.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistCoordinator, SnapshotCollisionAcrossPathsRejected) {
  TempDir dir("collide");
  saved_setup(dir, 6, 6);
  std::string path = dir.path() + "/setup.snap";
  std::string copy = dir.path() + "/copy.snap";
  // Byte-identical copy under another name: same digest, still a collision.
  {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::FILE* out = std::fopen(copy.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
      std::fwrite(buf, 1, n, out);
    }
    std::fclose(in);
    std::fclose(out);
  }
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  ASSERT_TRUE((*c)->register_from_snapshot(path).ok());
  StatusOr<SetupHandle> dup = (*c)->register_from_snapshot(copy);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  std::remove(copy.c_str());
}

TEST(DistCoordinator, RebalanceMovesHandleAndSurvivesDeletedSnapshot) {
  TempDir dir("rebalance");
  SolverSetup setup = saved_setup(dir, 8, 8);
  std::string path = dir.path() + "/setup.snap";
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h = (*c)->register_from_snapshot(path).value();
  std::uint32_t home = (*c)->worker_of(h).value();
  std::uint32_t away = 1 - home;
  Vec b = random_unit_like(setup.dimension(), 11);
  Vec expected = setup.solve(b).value();

  EXPECT_EQ((*c)->rebalance(h, 99).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE((*c)->rebalance(h, away).ok());
  EXPECT_EQ((*c)->worker_of(h).value(), away);
  StatusOr<SolveResult> res = (*c)->submit(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(bitwise_equal(res->x, expected));

  // Delete the snapshot underneath the registration, then try to ship it
  // again: the migration fails typed (the worker's open fails), placement
  // stays where it was, and the live registration keeps serving.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  Status moved = (*c)->rebalance(h, home);
  EXPECT_EQ(moved.code(), StatusCode::kNotFound) << moved.to_string();
  EXPECT_EQ((*c)->worker_of(h).value(), away);
  res = (*c)->submit(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(bitwise_equal(res->x, expected));
}

TEST(DistCoordinator, KillMidLoadLosesNoRequestSilently) {
  TempDir dir("kill");
  SolverSetup setup = saved_setup(dir, 10, 10);
  CoordinatorOptions opts = base_options(dir, 2);
  opts.worker_linger_us = 20000;  // hold requests open so the kill lands
  StatusOr<std::unique_ptr<Coordinator>> c = Coordinator::Start(opts);
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  Vec b = random_unit_like(setup.dimension(), 42);
  Vec expected = setup.solve(b).value();

  constexpr std::size_t kReqs = 24;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  futures.reserve(kReqs);
  for (std::size_t i = 0; i < kReqs; ++i) {
    futures.push_back((*c)->submit(h, b));
  }
  ASSERT_TRUE((*c)->kill_worker((*c)->worker_of(h).value()).ok());

  // Every accepted request resolves: either a correct answer (completed
  // before the kill) or a clean Unavailable.  Nothing hangs, nothing is
  // silently dropped, nothing crashes.
  std::size_t answered = 0, unavailable = 0;
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();
    if (res.ok()) {
      EXPECT_TRUE(bitwise_equal(res->x, expected));
      ++answered;
    } else {
      EXPECT_EQ(res.status().code(), StatusCode::kUnavailable)
          << res.status().to_string();
      ++unavailable;
    }
  }
  EXPECT_EQ(answered + unavailable, kReqs);

  // Respawn + re-registration from the snapshot directory: the same handle
  // answers again, bitwise identically, within the recovery budget.
  StatusOr<SolveResult> res = await_recovery(**c, h, b);
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(bitwise_equal(res->x, expected));
  DistStats st = (*c)->stats();
  EXPECT_GE(st.worker_deaths, 1u);
  EXPECT_GE(st.respawns, 1u);
  EXPECT_GT(st.last_recovery_ms, 0.0);
  EXPECT_LT(st.last_recovery_ms, 500.0);
}

TEST(DistCoordinator, RecoveryReregistersEveryHandleOnTheShard) {
  TempDir dir("multi");
  GeneratedGraph g1 = grid2d(6, 6);
  GeneratedGraph g2 = grid2d(5, 7);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h1 = (*c)->register_laplacian(g1.n, g1.edges).value();
  SetupHandle h2 = (*c)->register_laplacian(g2.n, g2.edges).value();
  // Co-locate both handles so one kill covers both re-registrations.
  ASSERT_TRUE((*c)->rebalance(h1, 0).ok());
  ASSERT_TRUE((*c)->rebalance(h2, 0).ok());
  Vec b1 = random_unit_like(g1.n, 1);
  Vec b2 = random_unit_like(g2.n, 2);
  Vec x1 = (*c)->submit(h1, b1).get().value().x;
  Vec x2 = (*c)->submit(h2, b2).get().value().x;

  ASSERT_TRUE((*c)->kill_worker(0).ok());
  StatusOr<SolveResult> r1 = await_recovery(**c, h1, b1);
  ASSERT_TRUE(r1.ok()) << r1.status().to_string();
  EXPECT_TRUE(bitwise_equal(r1->x, x1));
  StatusOr<SolveResult> r2 = (*c)->submit(h2, b2).get();
  ASSERT_TRUE(r2.ok()) << r2.status().to_string();
  EXPECT_TRUE(bitwise_equal(r2->x, x2));
}

TEST(DistCoordinator, RespawnDisabledShardStaysDown) {
  TempDir dir("norespawn");
  SolverSetup setup = saved_setup(dir, 6, 6);
  CoordinatorOptions opts = base_options(dir, 1);
  opts.respawn = false;
  StatusOr<std::unique_ptr<Coordinator>> c = Coordinator::Start(opts);
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  ASSERT_TRUE((*c)->kill_worker(0).ok());

  // The shard never comes back; submits fail Unavailable, typed, forever.
  Vec b(setup.dimension(), 1.0);
  StatusOr<SolveResult> res = await_recovery(**c, h, b);
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable);
  DistStats st = (*c)->stats();
  EXPECT_EQ(st.respawns, 0u);
  ASSERT_EQ(st.workers.size(), 1u);
  EXPECT_FALSE(st.workers[0].up);
}

TEST(DistCoordinator, DestructionAnswersEverythingAccepted) {
  TempDir dir("dtor");
  SolverSetup setup = saved_setup(dir, 8, 8);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  {
    CoordinatorOptions opts = base_options(dir, 2);
    opts.worker_linger_us = 10000;
    StatusOr<std::unique_ptr<Coordinator>> c = Coordinator::Start(opts);
    ASSERT_TRUE(c.ok()) << c.status().to_string();
    SetupHandle h =
        (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
    for (std::size_t i = 0; i < 16; ++i) {
      futures.push_back((*c)->submit(h, random_unit_like(setup.dimension(),
                                                         600 + i)));
    }
    // Coordinator destroyed here with requests still lingering at workers.
  }
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();  // must not hang or drop
    if (res.ok()) {
      EXPECT_TRUE(res->stats.converged);
    } else {
      EXPECT_EQ(res.status().code(), StatusCode::kUnavailable)
          << res.status().to_string();
    }
  }
}

TEST(DistCoordinator, SubmitErrorContractMirrorsInProcessService) {
  TempDir dir("errors");
  SolverSetup setup = saved_setup(dir, 6, 6);
  CoordinatorOptions opts = base_options(dir, 1);
  opts.max_pending = 4;
  opts.worker_linger_us = 50000;  // hold the worker so the window fills
  StatusOr<std::unique_ptr<Coordinator>> c = Coordinator::Start(opts);
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();

  EXPECT_EQ((*c)->submit(SetupHandle{9999}, Vec(setup.dimension(), 0.0))
                .get()
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*c)->info(SetupHandle{9999}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*c)->submit(h, Vec(setup.dimension() + 1, 0.0))
                .get()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*c)->submit_batch(h, MultiVec(setup.dimension(), 0))
                .get()
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  std::vector<std::future<StatusOr<SolveResult>>> futures;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back((*c)->submit(h, Vec(setup.dimension(), 1.0)));
  }
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();
    if (!res.ok()) {
      EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // 64 submits against a 4-deep coordinator window faster than the worker
  // answers: some must be shed at the door, typed, before any socket I/O.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ((*c)->stats().rejected, rejected);
}

TEST(DistCoordinator, WorkerStatsShipGaugesOverTheWire) {
  TempDir dir("stats");
  SolverSetup setup = saved_setup(dir, 6, 6);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  Vec b = random_unit_like(setup.dimension(), 5);
  ASSERT_TRUE((*c)->submit(h, b).get().ok());
  (*c)->drain();

  StatusOr<ServiceStats> ws = (*c)->worker_stats(0);
  ASSERT_TRUE(ws.ok()) << ws.status().to_string();
  EXPECT_EQ(ws->submitted, 1u);
  EXPECT_EQ(ws->completed, 1u);
  EXPECT_EQ(ws->queue_depth, 0u);
  EXPECT_EQ(ws->in_flight_cols, 0u);
  EXPECT_EQ(ws->per_handle_pending.size(), 0u);
  EXPECT_EQ((*c)->worker_stats(7).status().code(),
            StatusCode::kInvalidArgument);

  DistStats ds = (*c)->stats();
  EXPECT_GE(ds.submitted, 2u);  // the solve + this stats RPC
  EXPECT_EQ(ds.in_flight, 0u);
  ASSERT_EQ(ds.workers.size(), 1u);
  EXPECT_TRUE(ds.workers[0].up);
  EXPECT_EQ(ds.workers[0].handles, 1u);
}

TEST(DistUpdate, UpdateTravelsTheWireAndReplaysOnRespawn) {
  TempDir dir("update");
  SolverSetup setup = saved_setup(dir, 10, 10);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  EXPECT_EQ((*c)->info(h).value().update_seq, 0u);

  // Weight-only delta: applied synchronously on the worker, acknowledged
  // over the wire with the typed tier.
  std::vector<EdgeDelta> deltas = {{0, 1, 4.0}};
  StatusOr<UpdateAck> ack = (*c)->update(h, deltas);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_EQ(ack->tier, UpdateTier::kStaleChain);
  EXPECT_FALSE(ack->deferred);
  EXPECT_EQ(ack->update_seq, 1u);
  EXPECT_EQ((*c)->info(h).value().update_seq, 1u);

  // The worker's post-update answer is bitwise the in-process one: the
  // snapshot-loaded state and the delta stream are both deterministic.
  SolverSetup updated = setup.update(deltas).value();
  Vec b = random_unit_like(setup.dimension(), 21);
  Vec expected = updated.solve(b).value();
  StatusOr<SolveResult> res = (*c)->submit(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(bitwise_equal(res->x, expected));

  // Kill the owning worker: recovery re-registers the (PRE-update)
  // snapshot and replays the update log, so the respawned shard serves
  // the updated graph — bitwise — never the stale snapshot.
  ASSERT_TRUE((*c)->kill_worker((*c)->worker_of(h).value()).ok());
  StatusOr<SolveResult> after = await_recovery(**c, h, b);
  ASSERT_TRUE(after.ok()) << after.status().to_string();
  EXPECT_TRUE(bitwise_equal(after->x, expected));
  EXPECT_TRUE((*c)->stats().lost_handles.empty());

  // Malformed deltas come back as the worker's typed InvalidArgument.
  EXPECT_EQ((*c)->update(h, {{0, setup.dimension(), 1.0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*c)->update(SetupHandle{9999}, deltas).status().code(),
            StatusCode::kNotFound);
  // A refused batch never enters the log: the answer is still the updated
  // one, not a double-applied one.
  EXPECT_EQ((*c)->info(h).value().update_seq, 1u);
}

TEST(DistUpdate, StructuralUpdateSwapsInOverTheWire) {
  TempDir dir("structural");
  SolverSetup setup = saved_setup(dir, 8, 8);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();

  // Intra-component insertion: the ack reports the scheduled async
  // rebuild; the shard keeps answering while it runs.
  std::vector<EdgeDelta> deltas = {{0, 9, 2.0}};
  StatusOr<UpdateAck> ack = (*c)->update(h, deltas);
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_EQ(ack->tier, UpdateTier::kComponentRebuild);
  EXPECT_TRUE(ack->rebuild_scheduled);

  SolverSetup updated = setup.update(deltas).value();
  Vec b = random_unit_like(setup.dimension(), 22);
  Vec expected = updated.solve(b).value();
  // Every in-flight answer is valid (old or new setup); once the rebuild
  // swaps in, answers match the updated setup bitwise.
  bool swapped = false;
  for (int tries = 0; tries < 500 && !swapped; ++tries) {
    StatusOr<SolveResult> res = (*c)->submit(h, b).get();
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    swapped = bitwise_equal(res->x, expected);
    if (!swapped) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(swapped) << "rebuilt setup never swapped in";
}

TEST(DistUpdate, UpdateLogReplaysOnRebalance) {
  TempDir dir("updmove");
  SolverSetup setup = saved_setup(dir, 8, 8);
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 2));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h =
      (*c)->register_from_snapshot(dir.path() + "/setup.snap").value();
  std::vector<EdgeDelta> deltas = {{0, 1, 3.0}, {1, 2, 5.0}};
  ASSERT_TRUE((*c)->update(h, deltas).ok());

  SolverSetup updated = setup.update(deltas).value();
  Vec b = random_unit_like(setup.dimension(), 23);
  Vec expected = updated.solve(b).value();

  // Migrate: the target registers the pre-update snapshot, then the
  // coordinator replays the log before committing — the moved handle
  // serves the updated graph from its first answer.
  std::uint32_t away = 1 - (*c)->worker_of(h).value();
  ASSERT_TRUE((*c)->rebalance(h, away).ok());
  EXPECT_EQ((*c)->worker_of(h).value(), away);
  StatusOr<SolveResult> res = (*c)->submit(h, b).get();
  ASSERT_TRUE(res.ok()) << res.status().to_string();
  EXPECT_TRUE(bitwise_equal(res->x, expected));
}

TEST(DistRecovery, DeletedSnapshotSurfacesTypedLostHandle) {
  // The respawn-replay gap (DESIGN.md §8): a registration whose snapshot
  // file was deleted cannot be restored.  The handle must NOT silently
  // vanish — submits fail Unavailable (never NotFound: the handle is still
  // registered) and stats() names the handle with the typed reason.
  TempDir dir("lost");
  SolverSetup setup = saved_setup(dir, 6, 6);
  std::string path = dir.path() + "/setup.snap";
  StatusOr<std::unique_ptr<Coordinator>> c =
      Coordinator::Start(base_options(dir, 1));
  ASSERT_TRUE(c.ok()) << c.status().to_string();
  SetupHandle h = (*c)->register_from_snapshot(path).value();
  Vec b = random_unit_like(setup.dimension(), 24);
  ASSERT_TRUE((*c)->submit(h, b).get().ok());

  ASSERT_EQ(std::remove(path.c_str()), 0);
  ASSERT_TRUE((*c)->kill_worker(0).ok());
  // Wait for the respawn to complete (the shard reopens; the handle does
  // not come back with it).
  for (int tries = 0; tries < 500 && (*c)->stats().respawns == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  DistStats st = (*c)->stats();
  ASSERT_GE(st.respawns, 1u);
  ASSERT_EQ(st.lost_handles.size(), 1u);
  EXPECT_EQ(st.lost_handles[0].first, h.id);
  EXPECT_FALSE(st.lost_handles[0].second.empty());

  StatusOr<SolveResult> res = (*c)->submit(h, b).get();
  EXPECT_EQ(res.status().code(), StatusCode::kUnavailable)
      << res.status().to_string();
  // Updates against a lost handle are refused the same way.
  EXPECT_EQ((*c)->update(h, {{0, 1, 2.0}}).status().code(),
            StatusCode::kUnavailable);
  // Unregistering clears the lost entry; the id is then genuinely unknown.
  ASSERT_TRUE((*c)->unregister(h).ok());
  EXPECT_TRUE((*c)->stats().lost_handles.empty());
  EXPECT_EQ((*c)->submit(h, b).get().status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace parsdd::dist
