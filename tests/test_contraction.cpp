// Minor contraction used by the AKPW pipeline.
#include <gtest/gtest.h>

#include "graph/contraction.h"

namespace parsdd {
namespace {

TEST(Contraction, DropsSelfLoopsKeepsParallel) {
  // Components: {0,1} -> 0, {2,3} -> 1.
  std::vector<ClassedEdge> e = {
      {0, 1, 0, 0},  // becomes self-loop, dropped
      {1, 2, 0, 1},  // becomes (0,1)
      {0, 3, 1, 2},  // becomes (0,1) — parallel, kept
      {2, 3, 1, 3},  // self-loop, dropped
  };
  std::vector<std::uint32_t> label = {0, 0, 1, 1};
  auto out = contract_edges(e, label);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].u, 0u);
  EXPECT_EQ(out[0].v, 1u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
  EXPECT_EQ(out[1].cls, 1u);
}

TEST(Contraction, WeightedMergeParallel) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 3, 3.0}};
  std::vector<std::uint32_t> label = {0, 0, 1, 1};
  EdgeList merged = contract_edges(e, label, /*merge_parallel=*/true);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged[0].w, 5.0);
  EdgeList kept = contract_edges(e, label, /*merge_parallel=*/false);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Contraction, IdentityLabelsOnlyDropSelfLoops) {
  std::vector<ClassedEdge> e = {{0, 1, 0, 0}, {1, 2, 0, 1}};
  std::vector<std::uint32_t> label = {0, 1, 2};
  auto out = contract_edges(e, label);
  EXPECT_EQ(out.size(), 2u);
}

TEST(Contraction, EmptyInput) {
  std::vector<ClassedEdge> e;
  std::vector<std::uint32_t> label;
  EXPECT_TRUE(contract_edges(e, label).empty());
}

}  // namespace
}  // namespace parsdd
