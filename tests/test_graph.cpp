// Unit tests for edge lists, CSR graphs, union-find, and connectivity.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/connectivity.h"
#include "graph/edge_list.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/union_find.h"

namespace parsdd {
namespace {

TEST(EdgeList, MaxVertexPlusOne) {
  EdgeList e = {{0, 5, 1.0}, {2, 3, 1.0}};
  EXPECT_EQ(max_vertex_plus_one(e), 6u);
  EXPECT_EQ(max_vertex_plus_one({}), 0u);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList e = {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}, {1, 2, 4.0}};
  EdgeList out = remove_self_loops(e);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].v, 1u);
  EXPECT_EQ(out[1].w, 4.0);
}

TEST(EdgeList, CombineParallelEdgesSumsWeights) {
  EdgeList e = {{1, 0, 1.0}, {0, 1, 2.0}, {2, 1, 5.0}, {0, 0, 9.0}};
  EdgeList out = combine_parallel_edges(e);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].u, 0u);
  EXPECT_EQ(out[0].v, 1u);
  EXPECT_DOUBLE_EQ(out[0].w, 3.0);
  EXPECT_DOUBLE_EQ(out[1].w, 5.0);
}

TEST(EdgeList, TotalWeight) {
  EdgeList e = {{0, 1, 1.5}, {1, 2, 2.5}};
  EXPECT_DOUBLE_EQ(total_weight(e), 4.0);
}

TEST(EdgeList, IsConnected) {
  EXPECT_TRUE(is_connected(3, {{0, 1, 1}, {1, 2, 1}}));
  EXPECT_FALSE(is_connected(4, {{0, 1, 1}, {2, 3, 1}}));
  EXPECT_TRUE(is_connected(1, {}));
  EXPECT_FALSE(is_connected(2, {}));
}

TEST(EdgeList, EnsureConnectedPatchesComponents) {
  EdgeList e = {{0, 1, 1}, {2, 3, 1}, {4, 5, 1}};
  std::size_t added = ensure_connected(6, e, 1);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(is_connected(6, e));
  EXPECT_EQ(ensure_connected(6, e, 1), 0u);
}

TEST(UnionFind, BasicOperations) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
}

TEST(UnionFind, DenseLabelsAreDenseAndConsistent) {
  UnionFind uf(6);
  uf.unite(0, 3);
  uf.unite(4, 5);
  auto labels = uf.dense_labels();
  EXPECT_EQ(labels[0], labels[3]);
  EXPECT_EQ(labels[4], labels[5]);
  std::set<std::uint32_t> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), 4u);
  for (std::uint32_t l : distinct) EXPECT_LT(l, 4u);
}

TEST(Graph, CsrDegreesAndSymmetry) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  Graph g = Graph::from_edges(3, e);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  // Every arc has its reverse.
  for (std::uint32_t u = 0; u < 3; ++u) {
    auto nb = g.neighbors(u);
    for (std::uint32_t v : nb) {
      auto nv = g.neighbors(v);
      EXPECT_NE(std::find(nv.begin(), nv.end(), u), nv.end());
    }
  }
}

TEST(Graph, ParallelEdgesPreserved) {
  EdgeList e = {{0, 1, 1.0}, {0, 1, 2.0}};
  Graph g = Graph::from_edges(2, e);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 3.0);
}

TEST(Graph, EdgeIdsMapBackToInput) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 2.0}};
  Graph g = Graph::from_edges(3, e);
  ASSERT_TRUE(g.has_edge_ids());
  auto nb = g.neighbors(1);
  auto ids = g.edge_ids(1);
  for (std::size_t k = 0; k < nb.size(); ++k) {
    const Edge& orig = e[ids[k]];
    bool matches = (orig.u == 1 && orig.v == nb[k]) ||
                   (orig.v == 1 && orig.u == nb[k]);
    EXPECT_TRUE(matches);
  }
}

TEST(Graph, ToEdgesRoundTrip) {
  GeneratedGraph g = erdos_renyi(50, 120, 3);
  Graph csr = Graph::from_edges(g.n, g.edges);
  EdgeList back = csr.to_edges();
  EXPECT_EQ(back.size(), g.edges.size());
  EXPECT_NEAR(total_weight(back), total_weight(g.edges), 1e-9);
}

TEST(Graph, FromClassedEdgesUnitWeights) {
  std::vector<ClassedEdge> ce = {{0, 1, 0, 7}, {1, 2, 1, 9}};
  Graph g = Graph::from_classed_edges(3, ce);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.weights(0)[0], 1.0);
  // eid refers to the index in the classed edge vector.
  EXPECT_EQ(g.edge_ids(0)[0], 0u);
}

TEST(Connectivity, CountsComponents) {
  EdgeList e = {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}};
  Components c = connected_components(6, e);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[0]);
}

TEST(Connectivity, ClassedEdgesOverload) {
  std::vector<ClassedEdge> e = {{0, 1, 0, 0}, {2, 3, 0, 1}};
  Components c = connected_components(4, e);
  EXPECT_EQ(c.count, 2u);
}

}  // namespace
}  // namespace parsdd
