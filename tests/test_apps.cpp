// Applications: effective resistance, spectral sparsify, maxflow, harmonic.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/effective_resistance.h"
#include "apps/harmonic.h"
#include "apps/maxflow.h"
#include "apps/sparsify.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

namespace parsdd {
namespace {

SddSolverOptions tight_solver() {
  SddSolverOptions o;
  o.tolerance = 1e-10;
  return o;
}

TEST(EffectiveResistance, SeriesResistors) {
  // Path of k unit edges: R(0, k) = k.
  GeneratedGraph g = path(11);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, tight_solver());
  EXPECT_NEAR(effective_resistance(solver, 0, 10, g.n).value(), 10.0, 1e-6);
  EXPECT_NEAR(effective_resistance(solver, 2, 5, g.n).value(), 3.0, 1e-6);
}

TEST(EffectiveResistance, ParallelResistors) {
  // Two parallel unit edges: R = 1/2 (conductances add).
  EdgeList e = {{0, 1, 1.0}, {0, 1, 1.0}};
  SddSolver solver = SddSolver::for_laplacian(2, e, tight_solver());
  EXPECT_NEAR(effective_resistance(solver, 0, 1, 2).value(), 0.5, 1e-8);
}

TEST(EffectiveResistance, WeightedSeriesParallel) {
  // 0-1 with w=2 (R=1/2) in series with 1-2 with w=1 (R=1): total 1.5.
  EdgeList e = {{0, 1, 2.0}, {1, 2, 1.0}};
  SddSolver solver = SddSolver::for_laplacian(3, e, tight_solver());
  EXPECT_NEAR(effective_resistance(solver, 0, 2, 3).value(), 1.5, 1e-8);
}

TEST(EffectiveResistance, SketchApproximatesExact) {
  GeneratedGraph g = grid2d(8, 8);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, tight_solver());
  ResistanceSketchOptions opts;
  opts.probes = 400;  // generous for a tight tolerance
  std::vector<double> approx =
      approx_edge_resistances(solver, g.n, g.edges, opts).value();
  // Spot-check a few edges against one-solve exact values.
  for (std::size_t i = 0; i < g.edges.size(); i += 17) {
    double exact =
        effective_resistance(solver, g.edges[i].u, g.edges[i].v, g.n)
            .value();
    EXPECT_NEAR(approx[i], exact, 0.35 * exact + 0.02);
  }
}

TEST(SpectralSparsify, PreservesQuadraticForm) {
  // Dense-ish graph so that leverage scores are genuinely small and the
  // sampler actually drops edges.
  GeneratedGraph g = erdos_renyi(100, 3000, 5);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, tight_solver());
  SpectralSparsifyOptions opts;
  opts.epsilon = 0.5;
  opts.constant = 0.5;
  opts.probes = 96;
  SpectralSparsifyResult r =
      spectral_sparsify(g.n, g.edges, solver, opts).value();
  EXPECT_LT(r.sparsifier.size(), g.edges.size());
  EXPECT_TRUE(is_connected(g.n, r.sparsifier));
  // Quadratic forms close on random test vectors.
  for (std::uint64_t s = 0; s < 5; ++s) {
    Vec x = random_unit_like(g.n, 100 + s);
    double qa = laplacian_quadratic_form(g.edges, x);
    double qh = laplacian_quadratic_form(r.sparsifier, x);
    EXPECT_NEAR(qh / qa, 1.0, 0.6);
  }
}

TEST(ExactMaxflow, HandComputedValues) {
  // Two disjoint unit paths from 0 to 3 => flow 2.
  EdgeList e = {{0, 1, 1.0}, {1, 3, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}};
  EXPECT_DOUBLE_EQ(exact_max_flow(4, e, 0, 3), 2.0);
  // Bottleneck in series.
  EdgeList e2 = {{0, 1, 5.0}, {1, 2, 2.0}, {2, 3, 5.0}};
  EXPECT_DOUBLE_EQ(exact_max_flow(4, e2, 0, 3), 2.0);
  // Undirected cycle: both directions usable.
  EdgeList e3 = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  EXPECT_DOUBLE_EQ(exact_max_flow(3, e3, 0, 2), 2.0);
}

TEST(ExactMaxflow, GridCutValue) {
  // 3-wide grid: min cut from left column to right column is 3.
  GeneratedGraph g = grid2d(5, 3);
  // Connect a supersource to the left column and supersink to the right.
  std::uint32_t s = g.n, t = g.n + 1;
  EdgeList e = g.edges;
  for (std::uint32_t y = 0; y < 3; ++y) {
    e.push_back(Edge{s, y * 5 + 0, 100.0});
    e.push_back(Edge{y * 5 + 4, t, 100.0});
  }
  EXPECT_DOUBLE_EQ(exact_max_flow(g.n + 2, e, s, t), 3.0);
}

TEST(ApproxMaxflow, WithinEpsilonOfExactOnSmallGraphs) {
  GeneratedGraph g = erdos_renyi(40, 120, 9);
  std::uint32_t s = 0, t = 20;
  double exact = exact_max_flow(g.n, g.edges, s, t);
  ASSERT_GT(exact, 0.0);
  MaxflowOptions opts;
  opts.epsilon = 0.2;
  opts.max_iterations = 60;
  opts.solver.tolerance = 1e-8;
  MaxflowResult r = approx_max_flow(g.n, g.edges, s, t, opts).value();
  EXPECT_LE(r.flow_value, exact * (1.0 + 1e-6));  // feasible: never exceeds
  EXPECT_GE(r.flow_value, 0.5 * exact);           // reasonably close
  // Flow conservation at a non-terminal vertex.
  Vec net(g.n, 0.0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    net[g.edges[i].u] -= r.flow[i];
    net[g.edges[i].v] += r.flow[i];
  }
  for (std::uint32_t v = 0; v < g.n; ++v) {
    if (v == s || v == t) continue;
    EXPECT_NEAR(net[v], 0.0, 1e-6 * (1.0 + r.flow_value));
  }
  EXPECT_NEAR(net[t], r.flow_value, 1e-6 * (1.0 + r.flow_value));
}

TEST(ApproxMaxflow, RejectsEqualTerminals) {
  EdgeList e = {{0, 1, 1.0}};
  EXPECT_EQ(approx_max_flow(2, e, 0, 0, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_THROW(exact_max_flow(2, e, 1, 1), std::invalid_argument);
}

TEST(Harmonic, LinearFunctionIsHarmonicOnPath) {
  GeneratedGraph g = path(20);
  // Fix endpoints to 0 and 19; harmonic extension on a unit path is linear.
  Vec x = harmonic_extension(g.n, g.edges, {0, 19}, {0.0, 19.0},
                             tight_solver())
              .value();
  for (std::uint32_t v = 0; v < g.n; ++v) {
    EXPECT_NEAR(x[v], static_cast<double>(v), 1e-6);
  }
}

TEST(Harmonic, MaximumPrinciple) {
  GeneratedGraph g = grid2d(10, 10);
  std::vector<std::uint32_t> boundary;
  std::vector<double> values;
  for (std::uint32_t i = 0; i < 10; ++i) {
    boundary.push_back(i);          // bottom row = 1
    values.push_back(1.0);
    boundary.push_back(90 + i);     // top row = -1
    values.push_back(-1.0);
  }
  Vec x =
      harmonic_extension(g.n, g.edges, boundary, values, tight_solver())
          .value();
  for (std::uint32_t v = 0; v < g.n; ++v) {
    EXPECT_LE(x[v], 1.0 + 1e-7);
    EXPECT_GE(x[v], -1.0 - 1e-7);
  }
  // Middle rows interpolate monotonically on average.
  double row2 = 0, row7 = 0;
  for (std::uint32_t i = 0; i < 10; ++i) {
    row2 += x[20 + i];
    row7 += x[70 + i];
  }
  EXPECT_GT(row2, row7);
}

TEST(Harmonic, InteriorComponentWithoutBoundaryGetsZero) {
  // Edge 2-3 is a separate component with no boundary vertex.
  EdgeList e = {{0, 1, 1.0}, {2, 3, 1.0}};
  Vec x = harmonic_extension(4, e, {0}, {5.0}).value();
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_NEAR(x[1], 5.0, 1e-8);  // leaf hanging off the boundary
  EXPECT_NEAR(x[2], 0.0, 1e-9);
  EXPECT_NEAR(x[3], 0.0, 1e-9);
}

TEST(Harmonic, AllBoundary) {
  EdgeList e = {{0, 1, 1.0}};
  Vec x = harmonic_extension(2, e, {0, 1}, {3.0, 4.0}).value();
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(Harmonic, SizeMismatchRejected) {
  EdgeList e = {{0, 1, 1.0}};
  EXPECT_EQ(harmonic_extension(2, e, {0}, {1.0, 2.0}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace parsdd
