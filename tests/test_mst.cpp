// MST: Kruskal vs Borůvka equivalence, spanning/forest structure.
#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/union_find.h"

namespace parsdd {
namespace {

void check_spanning_forest(std::uint32_t n, const EdgeList& edges,
                           const std::vector<std::uint32_t>& chosen) {
  Components c = connected_components(n, edges);
  EXPECT_EQ(chosen.size(), n - c.count);
  UnionFind uf(n);
  for (std::uint32_t idx : chosen) {
    ASSERT_LT(idx, edges.size());
    EXPECT_TRUE(uf.unite(edges[idx].u, edges[idx].v)) << "cycle in forest";
  }
  EXPECT_EQ(uf.num_sets(), c.count);
}

TEST(Mst, KruskalOnTriangle) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  auto chosen = mst_kruskal(3, e);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(forest_weight(e, chosen), 3.0);
}

TEST(Mst, BoruvkaOnTriangle) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 2.0}, {0, 2, 3.0}};
  auto chosen = mst_boruvka(3, e);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(forest_weight(e, chosen), 3.0);
}

TEST(Mst, HandlesDisconnectedForest) {
  EdgeList e = {{0, 1, 1.0}, {2, 3, 2.0}, {3, 4, 1.0}, {2, 4, 5.0}};
  auto k = mst_kruskal(6, e);
  auto b = mst_boruvka(6, e);
  check_spanning_forest(6, e, k);
  check_spanning_forest(6, e, b);
  EXPECT_DOUBLE_EQ(forest_weight(e, k), forest_weight(e, b));
}

TEST(Mst, TieBreakingDeterministic) {
  EdgeList e = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  auto k1 = mst_kruskal(3, e);
  auto k2 = mst_kruskal(3, e);
  EXPECT_EQ(k1, k2);
  auto b1 = mst_boruvka(3, e);
  auto b2 = mst_boruvka(3, e);
  EXPECT_EQ(b1, b2);
}

class MstEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MstEquivalence, KruskalAndBoruvkaAgreeOnWeight) {
  auto [family, seed] = GetParam();
  GeneratedGraph g;
  switch (family) {
    case 0:
      g = erdos_renyi(150, 500, seed);
      break;
    case 1:
      g = grid2d(12, 12);
      break;
    default:
      g = preferential_attachment(150, 2, seed);
      break;
  }
  randomize_weights_log_uniform(g.edges, 50.0, seed + 10);
  auto k = mst_kruskal(g.n, g.edges);
  auto b = mst_boruvka(g.n, g.edges);
  check_spanning_forest(g.n, g.edges, k);
  check_spanning_forest(g.n, g.edges, b);
  // Distinct weights (log-uniform doubles) => unique MST => same edge set
  // (Kruskal emits in weight order, Borůvka in index order).
  EXPECT_NEAR(forest_weight(g.edges, k), forest_weight(g.edges, b), 1e-9);
  std::sort(k.begin(), k.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(k, b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MstEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(11u, 22u, 33u)));

TEST(Mst, ParallelEdgesPickCheapest) {
  EdgeList e = {{0, 1, 5.0}, {0, 1, 1.0}};
  auto k = mst_kruskal(2, e);
  ASSERT_EQ(k.size(), 1u);
  EXPECT_EQ(k[0], 1u);
  auto b = mst_boruvka(2, e);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 1u);
}

}  // namespace
}  // namespace parsdd
