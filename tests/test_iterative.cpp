// CG, flexible PCG, Chebyshev, Jacobi, and pencil eigenvalue estimation.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/dense_ldlt.h"
#include "linalg/eig.h"
#include "linalg/jacobi.h"
#include "linalg/laplacian.h"

namespace parsdd {
namespace {

LinOp op_of(const CsrMatrix& a) {
  return [&a](const Vec& in, Vec& out) {
    out.resize(in.size());
    a.multiply(in, out);
  };
}

TEST(Cg, SolvesDiagonalSystem) {
  std::vector<Triplet> ts = {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 4.0}};
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  Vec b = {1.0, 1.0, 1.0};
  Vec x(3, 0.0);
  CgOptions o;
  o.tolerance = 1e-12;
  LinOp aop = op_of(a);
  IterStats st = conjugate_gradient(aop, b, x, o);
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 0.5, 1e-9);
  EXPECT_NEAR(x[2], 0.25, 1e-9);
}

TEST(Cg, ZeroRhsGivesZero) {
  CsrMatrix a = laplacian_from_edges(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  Vec b(3, 0.0);
  Vec x = {5.0, 5.0, 5.0};
  LinOp aop = op_of(a);
  CgOptions o;
  IterStats st = conjugate_gradient(aop, b, x, o);
  EXPECT_TRUE(st.converged);
  EXPECT_DOUBLE_EQ(kernels::norm2(x), 0.0);
}

TEST(Cg, LaplacianWithProjection) {
  GeneratedGraph g = grid2d(10, 10);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec b = random_unit_like(g.n, 3);
  Vec x(g.n, 0.0);
  CgOptions o;
  o.tolerance = 1e-10;
  o.project_constant = true;
  LinOp aop = op_of(lap);
  IterStats st = conjugate_gradient(aop, b, x, o);
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 0.0, 1e-8);
}

TEST(Cg, ExactPreconditionerConvergesInFewIterations) {
  GeneratedGraph g = grid2d(8, 8);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt f = DenseLdlt::factor_laplacian(lap);
  LinOp pre = [&f](const Vec& in, Vec& out) {
    Vec t = in;
    kernels::project_out_constant(t);
    out = f.solve(t);
  };
  Vec b = random_unit_like(g.n, 4);
  Vec x(g.n, 0.0);
  CgOptions o;
  o.tolerance = 1e-10;
  o.project_constant = true;
  LinOp aop = op_of(lap);
  IterStats st = conjugate_gradient(aop, b, x, o, &pre);
  EXPECT_TRUE(st.converged);
  EXPECT_LE(st.iterations, 3u);
}

TEST(Cg, FlexibleModeHandlesVariablePreconditioner) {
  GeneratedGraph g = grid2d(12, 12);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec d = lap.diagonal();
  int call_count = 0;
  // Preconditioner whose scaling drifts between calls.
  LinOp pre = [&](const Vec& in, Vec& out) {
    out.resize(in.size());
    double s = 1.0 + 0.05 * ((call_count++) % 3);
    for (std::size_t i = 0; i < in.size(); ++i) out[i] = s * in[i] / d[i];
  };
  Vec b = random_unit_like(g.n, 5);
  Vec x(g.n, 0.0);
  CgOptions o;
  o.tolerance = 1e-8;
  o.project_constant = true;
  o.flexible = true;
  o.max_iterations = 2000;
  LinOp aop = op_of(lap);
  IterStats st = conjugate_gradient(aop, b, x, o, &pre);
  EXPECT_TRUE(st.converged);
}

TEST(Chebyshev, ConvergesWithTrueBoundsOnDiagonal) {
  // Diagonal system: spectrum known exactly.
  std::vector<Triplet> ts = {{0, 0, 1.0}, {1, 1, 2.0}, {2, 2, 3.0}};
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  Vec b = {1.0, 2.0, 3.0};
  Vec x(3, 0.0);
  ChebyshevOptions o;
  o.lambda_min = 1.0;
  o.lambda_max = 3.0;
  o.iterations = 40;
  LinOp aop = op_of(a);
  IterStats st = chebyshev(aop, b, x, o);
  EXPECT_LT(st.relative_residual, 1e-8);
  EXPECT_NEAR(x[0], 1.0, 1e-7);
}

TEST(Chebyshev, PreconditionedLaplacian) {
  GeneratedGraph g = grid2d(9, 9);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt f = DenseLdlt::factor_laplacian(lap);
  LinOp pre = [&f](const Vec& in, Vec& out) {
    Vec t = in;
    kernels::project_out_constant(t);
    out = f.solve(t);
  };
  Vec b = random_unit_like(g.n, 6);
  Vec x(g.n, 0.0);
  ChebyshevOptions o;
  o.lambda_min = 0.9;
  o.lambda_max = 1.1;  // exact preconditioner: spectrum is {1}
  o.iterations = 12;
  o.project_constant = true;
  LinOp aop = op_of(lap);
  IterStats st = chebyshev(aop, b, x, o, &pre);
  EXPECT_LT(st.relative_residual, 1e-8);
}

TEST(Chebyshev, RejectsBadBounds) {
  CsrMatrix a = laplacian_from_edges(2, {{0, 1, 1.0}});
  Vec b = {1.0, -1.0};
  Vec x(2, 0.0);
  ChebyshevOptions o;
  o.lambda_min = 2.0;
  o.lambda_max = 1.0;
  LinOp aop = op_of(a);
  EXPECT_THROW(chebyshev(aop, b, x, o), std::invalid_argument);
}

TEST(Chebyshev, IterationEstimateMonotone) {
  EXPECT_GE(chebyshev_iterations_for(100.0, 1e-6),
            chebyshev_iterations_for(100.0, 1e-2));
  EXPECT_GE(chebyshev_iterations_for(400.0, 1e-4),
            chebyshev_iterations_for(100.0, 1e-4));
  EXPECT_GE(chebyshev_iterations_for(1.0, 0.5), 1u);
}

TEST(Jacobi, ConvergesOnStrictlyDominantSystem) {
  // Laplacian + identity: strictly diagonally dominant, Jacobi converges.
  GeneratedGraph g = grid2d(6, 6);
  std::vector<Triplet> ts;
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  for (std::uint32_t i = 0; i < g.n; ++i) {
    auto cols = lap.row_cols(i);
    auto vals = lap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      ts.push_back({i, cols[k], vals[k]});
    }
    ts.push_back({i, i, 1.0});
  }
  CsrMatrix a = CsrMatrix::from_triplets(g.n, std::move(ts));
  Vec b = random_unit_like(g.n, 7);
  Vec x(g.n, 0.0);
  JacobiOptions o;
  o.tolerance = 1e-8;
  IterStats st = jacobi(a, b, x, o);
  EXPECT_TRUE(st.converged);
  EXPECT_NEAR(kernels::norm2(kernels::subtract(a.apply(x), b)) / kernels::norm2(b), 0.0, 1e-7);
}

TEST(Jacobi, PreconditionerDividesByDiagonal) {
  std::vector<Triplet> ts = {{0, 0, 2.0}, {1, 1, 4.0}};
  CsrMatrix a = CsrMatrix::from_triplets(2, std::move(ts));
  LinOp pre = jacobi_preconditioner(a);
  Vec out;
  pre({2.0, 4.0}, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(Eig, PencilOfScaledMatricesIsTheScale) {
  GeneratedGraph g = grid2d(7, 7);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EdgeList scaled = g.edges;
  for (Edge& e : scaled) e.w *= 2.0;
  CsrMatrix lap2 = laplacian_from_edges(g.n, scaled);
  DenseLdlt f2 = DenseLdlt::factor_laplacian(lap2);
  LinOp a = op_of(lap2), bop = op_of(lap);
  LinOp solve_b = [&](const Vec& in, Vec& out) {
    // solve lap (= lap2 / 2): x = 2 * lap2^+ in
    Vec t = in;
    kernels::project_out_constant(t);
    out = f2.solve(t);
    kernels::scale(2.0, out);
  };
  // pencil (2L, L): all eigenvalues are 2.
  double mx = pencil_max_eig(a, bop, solve_b, g.n, 50, 1);
  EXPECT_NEAR(mx, 2.0, 1e-6);
}

TEST(Eig, MinEigOfSandwich) {
  // A = L, B = L + 0.5*L' where L' adds extra edges: x'Bx >= x'Ax, so
  // lambda_max(B^+A) <= 1 and pencil_min of (B, A) >= 1.
  GeneratedGraph g = grid2d(6, 6);
  CsrMatrix la = laplacian_from_edges(g.n, g.edges);
  EdgeList be = g.edges;
  be.push_back(Edge{0, g.n - 1, 0.5});
  CsrMatrix lb = laplacian_from_edges(g.n, be);
  DenseLdlt fb = DenseLdlt::factor_laplacian(lb);
  LinOp aop = op_of(la), bop = op_of(lb);
  LinOp solve_b = [&](const Vec& in, Vec& out) {
    Vec t = in;
    kernels::project_out_constant(t);
    out = fb.solve(t);
  };
  double mx = pencil_max_eig(aop, bop, solve_b, g.n, 100, 3);
  EXPECT_LE(mx, 1.0 + 1e-6);
  EXPECT_GT(mx, 0.5);
}

}  // namespace
}  // namespace parsdd
