// Determinism across thread counts: setup + solve on a fixed seed must be
// bitwise identical for pool sizes 1, 2, 8, and 16.
//
// The claim everything downstream leans on (batch == single, service
// coalescing invisibility, snapshot bitwise fidelity, the golden vector) is
// that parallelism never changes arithmetic: every parallel kernel reduces
// in a fixed order regardless of how blocks land on workers.  The pool size
// is fixed at first use (PARSDD_THREADS is read once), so each pool size
// gets a fresh subprocess: the parent re-executes this binary with
// PARSDD_THREADS set, the child runs the pipeline and writes the raw
// solution bytes, and the parent compares the files byte for byte.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "file_test_util.h"
#include "kernels/kernels.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "solver/solver_setup.h"

namespace parsdd {
namespace {

// The fixed workload: one mesh and one expander, weighted, solved as a
// 3-column batch through the full chain pipeline.  Sized above the
// canonical grain (2048) so the parallel paths of the reductions, scans,
// and sorts actually engage — a smaller graph would exercise only the
// single-block inline code whatever the pool size.
MultiVec child_solve() {
  GeneratedGraph g = grid2d(64, 40);
  GeneratedGraph h = random_regular(200, 4, 7);
  std::uint32_t base = g.n;
  for (const Edge& e : h.edges) {
    g.edges.push_back(Edge{base + e.u, base + e.v, e.w});
  }
  g.n = base + h.n;
  randomize_weights_log_uniform(g.edges, 1e3, 11);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  MultiVec b(g.n, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    Vec col = random_unit_like(g.n, 13 + c);
    kernels::project_out_constant(col);
    b.set_column(c, col);
  }
  return setup.solve_batch(b).value();
}

std::string self_exe() {
  char buf[4096];
  ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(len, 0);
  buf[len > 0 ? len : 0] = '\0';
  return buf;
}

using test_util::file_bytes;

// Child mode: invoked by the parent test below with PARSDD_DET_OUT set.
// Under a plain ctest run (no PARSDD_DET_OUT) it still executes the
// workload once as a smoke test of the current pool size.
TEST(DeterminismChild, SolveAndDump) {
  MultiVec x = child_solve();
  ASSERT_GT(x.rows(), 0u);
  const char* out = std::getenv("PARSDD_DET_OUT");
  if (!out) return;
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << out;
  ASSERT_EQ(std::fwrite(x.data().data(), sizeof(double), x.data().size(), f),
            x.data().size());
  std::fclose(f);
}

TEST(Determinism, BitwiseIdenticalAcrossPoolSizes) {
  std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  std::string dir = ::testing::TempDir();
  std::vector<std::vector<std::uint8_t>> results;
  std::vector<std::string> paths;
  const int pool_sizes[] = {1, 2, 8, 16};
  for (int threads : pool_sizes) {
    std::string out = dir + "parsdd_det_" + std::to_string(::getpid()) + "_" +
                      std::to_string(threads) + ".bin";
    paths.push_back(out);
    std::string cmd = "PARSDD_THREADS=" + std::to_string(threads) +
                      " PARSDD_DET_OUT='" + out + "' '" + exe +
                      "' --gtest_filter=DeterminismChild.SolveAndDump"
                      " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << "child with PARSDD_THREADS=" << threads << " failed";
    results.push_back(file_bytes(out));
    ASSERT_FALSE(results.back().empty());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << "pool size " << pool_sizes[i]
        << " diverged bitwise from pool size 1";
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

}  // namespace
}  // namespace parsdd
