// Granularity controller + pool stress: estimator math, spawn decisions,
// nested spawns, tiny-vs-huge mixed workloads, and the bitwise contract
// under forced scheduling modes.
//
// PARSDD_PARALLEL / PARSDD_THREADS are read once per process, so the
// forced-mode bitwise comparison re-executes this binary per configuration
// (the same subprocess pattern as test_determinism): the child runs every
// order-sensitive primitive on a fixed input and dumps the raw bytes; the
// parent demands byte equality across {never x1, always x2, always x8,
// auto x8}.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "file_test_util.h"
#include "parallel/granularity.h"
#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {
namespace {

TEST(CanonicalBlocks, PureCeilDivision) {
  EXPECT_EQ(canonical_blocks(0, 0), 1u);  // floor: callers skip empty loops
  EXPECT_EQ(canonical_blocks(1, 0), 1u);
  EXPECT_EQ(canonical_blocks(kDefaultGrain, 0), 1u);
  EXPECT_EQ(canonical_blocks(kDefaultGrain + 1, 0), 2u);
  EXPECT_EQ(canonical_blocks(10 * kDefaultGrain, 0), 10u);
  EXPECT_EQ(canonical_blocks(100, 10), 10u);
  EXPECT_EQ(canonical_blocks(101, 10), 11u);
  // Every index is covered: nb * grain >= n.
  for (std::size_t n : {1u, 7u, 4096u, 99999u}) {
    for (std::size_t g : {std::size_t{0}, std::size_t{64}, kDefaultGrain}) {
      std::size_t eff = g ? g : kDefaultGrain;
      EXPECT_GE(canonical_blocks(n, g) * eff, n) << n << "/" << g;
    }
  }
}

TEST(GranularitySite, FirstSampleReplacesSeed) {
  GranularitySite site("test.replace", /*init_ns_per_unit=*/5.0);
  EXPECT_DOUBLE_EQ(site.ns_per_unit(), 5.0);
  EXPECT_EQ(site.samples(), 0u);
  site.record_sequential(1000, 16000.0);
  EXPECT_DOUBLE_EQ(site.ns_per_unit(), 16.0);
  EXPECT_EQ(site.samples(), 1u);
}

TEST(GranularitySite, EwmaStepAndConvergence) {
  GranularitySite site("test.ewma");
  site.record_sequential(1000, 16000.0);  // replaces seed: 16
  site.record_sequential(1000, 8000.0);   // 16 + (8-16)/4 = 14
  EXPECT_DOUBLE_EQ(site.ns_per_unit(), 14.0);
  // A long run of consistent measurements converges to the true constant.
  for (int i = 0; i < 100; ++i) site.record_sequential(500, 1000.0);
  EXPECT_NEAR(site.ns_per_unit(), 2.0, 0.02);
  EXPECT_EQ(site.samples(), 102u);
}

TEST(GranularitySite, TinyWorkNeverSpawns) {
  if (GranularitySite::mode() == GranularitySite::Mode::kAlways) {
    GTEST_SKIP() << "PARSDD_PARALLEL=always overrides the prediction";
  }
  GranularitySite site("test.tiny");
  // 1 work unit at any sane ns/unit predicts far below the spawn threshold.
  EXPECT_FALSE(site.should_parallelize(1));
  EXPECT_FALSE(site.should_parallelize(16));
}

TEST(GranularitySite, ExpensiveWorkSpawnsWhenPoolAvailable) {
  if (GranularitySite::mode() != GranularitySite::Mode::kAuto) {
    GTEST_SKIP() << "PARSDD_PARALLEL overrides the prediction";
  }
  if (ThreadPool::instance().concurrency() <= 1) {
    GTEST_SKIP() << "single-lane pool never spawns";
  }
  GranularitySite site("test.huge");
  site.record_sequential(1000, 100000.0);  // 100 ns/unit, measured
  // Predicted 100ms >> any sane threshold.
  EXPECT_TRUE(site.should_parallelize(1000000));
}

TEST(GranularitySite, ConcurrentRecordingIsSafe) {
  // Relaxed-atomic estimator state: concurrent updates may lose samples but
  // must not tear or crash (the TSan lane checks the data-race claim).
  GranularitySite site("test.race");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&site] {
      for (int i = 0; i < 1000; ++i) {
        site.record_sequential(256, 512.0);
        site.should_parallelize(1024);
        site.should_measure();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_DOUBLE_EQ(site.ns_per_unit(), 2.0);  // every sample says 2 ns/unit
  EXPECT_GT(site.samples(), 0u);
}

TEST(PoolStress, NestedSpawnsSerializeCorrectly) {
  // A parallel_for body that itself issues parallel primitives must run
  // those inner calls inline (non-reentrant pool) and still be correct.
  const std::size_t outer = 3 * kDefaultGrain;
  std::vector<std::uint64_t> out(outer);
  static GranularitySite site("test.nested");
  parallel_for(
      site, 0, outer,
      [&](std::size_t i) {
        std::uint64_t s = parallel_reduce(
            0, i % 97 + 40, std::uint64_t{0},
            [&](std::size_t j) { return static_cast<std::uint64_t>(j); },
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        out[i] = s;
      },
      /*grain=*/0, /*work=*/outer * 64);
  for (std::size_t i = 0; i < outer; ++i) {
    std::uint64_t m = i % 97 + 40;
    ASSERT_EQ(out[i], m * (m - 1) / 2) << i;
  }
}

TEST(PoolStress, TinyAndHugeSubproblemsInterleaved) {
  // Alternating far-below-cutoff and far-above-cutoff loops through shared
  // sites: decisions flip per call, results must not.
  static GranularitySite site("test.mixed");
  const std::size_t huge = 4 * kDefaultGrain + 123;
  std::vector<double> acc(huge, 0.0);
  for (int round = 0; round < 20; ++round) {
    std::size_t n = (round % 2 == 0) ? std::size_t{8} : huge;
    parallel_for(
        site, 0, n, [&](std::size_t i) { acc[i] += 1.0; }, 0, n);
  }
  for (std::size_t i = 0; i < huge; ++i) {
    double expect = (i < 8) ? 20.0 : 10.0;
    ASSERT_EQ(acc[i], expect) << i;
  }
  // The sequential executions of the big rounds fed the estimator (the
  // throttle passes at least once in 10 tries when running inline).
  if (GranularitySite::mode() == GranularitySite::Mode::kNever) {
    EXPECT_GT(site.samples(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Forced-mode bitwise contract, via subprocess re-execution.

constexpr std::size_t kN = 100000;  // above kSeqCutoff and kSortGrain

// Child mode: run every order-sensitive primitive on a fixed pseudo-random
// input and dump the raw doubles.  Also a smoke test under plain ctest.
TEST(GranularityChild, ComputeAndDump) {
  Rng rng(0x5eed);
  std::vector<double> v(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    v[i] = rng.uniform(i) - 0.5;  // mixed signs: addition order shows up
  }
  double sum = parallel_reduce(
      0, kN, 0.0, [&](std::size_t i) { return v[i]; },
      [](double a, double b) { return a + b; });
  std::vector<double> scanned = v;
  double total = scan_exclusive(scanned);
  std::vector<double> sorted = v;
  parallel_sort(sorted);
  std::vector<std::uint32_t> packed =
      pack_index(kN, [&](std::size_t i) { return v[i] > 0.25; });
  ASSERT_FALSE(packed.empty());
  ASSERT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

  const char* out = std::getenv("PARSDD_GRAN_OUT");
  if (!out) return;
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << out;
  ASSERT_EQ(std::fwrite(&sum, sizeof sum, 1, f), 1u);
  ASSERT_EQ(std::fwrite(&total, sizeof total, 1, f), 1u);
  ASSERT_EQ(std::fwrite(scanned.data(), sizeof(double), kN, f), kN);
  ASSERT_EQ(std::fwrite(sorted.data(), sizeof(double), kN, f), kN);
  ASSERT_EQ(std::fwrite(packed.data(), sizeof(std::uint32_t), packed.size(),
                        f),
            packed.size());
  std::fclose(f);
}

std::string self_exe() {
  char buf[4096];
  ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(len, 0);
  buf[len > 0 ? len : 0] = '\0';
  return buf;
}

using test_util::file_bytes;

TEST(Granularity, ForcedModesBitwiseIdentical) {
  std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  std::string dir = ::testing::TempDir();
  struct Config {
    const char* parallel;
    int threads;
  };
  const Config configs[] = {
      {"never", 1}, {"always", 2}, {"always", 8}, {"auto", 8}};
  std::vector<std::vector<std::uint8_t>> results;
  std::vector<std::string> paths;
  for (const Config& c : configs) {
    std::string out = dir + "parsdd_gran_" + std::to_string(::getpid()) +
                      "_" + c.parallel + std::to_string(c.threads) + ".bin";
    paths.push_back(out);
    std::string cmd = std::string("PARSDD_PARALLEL=") + c.parallel +
                      " PARSDD_THREADS=" + std::to_string(c.threads) +
                      " PARSDD_GRAN_OUT='" + out + "' '" + exe +
                      "' --gtest_filter=GranularityChild.ComputeAndDump"
                      " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << "child " << c.parallel << " x" << c.threads
                     << " failed";
    results.push_back(file_bytes(out));
    ASSERT_FALSE(results.back().empty());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << configs[i].parallel << " x" << configs[i].threads
        << " diverged bitwise from never x1";
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

}  // namespace
}  // namespace parsdd
