// Setup persistence: round-trips for every serialized type, the bitwise
// saved-vs-loaded solve contract, service warm-start, and clean typed
// failures on truncated / corrupt / version-mismatched snapshots.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "file_test_util.h"
#include "graph/generators.h"
#include "graph/tree.h"
#include "linalg/dense_ldlt.h"
#include "linalg/gremban.h"
#include "linalg/laplacian.h"
#include "service/solver_service.h"
#include "solver/chain.h"
#include "solver/greedy_elimination.h"
#include "solver/solver_setup.h"
#include "util/serialize.h"

namespace parsdd {
namespace {

using test_util::TempFile;
using test_util::file_bytes;
using test_util::write_bytes;

// Rewrites `data` (a whole snapshot image) with a freshly computed checksum
// trailer, so tests can tamper with payload fields and still get past the
// integrity check to the targeted validation they want to exercise.
void reseal_checksum(std::vector<std::uint8_t>& data) {
  ASSERT_GE(data.size(), sizeof(std::uint64_t));
  std::size_t payload = data.size() - sizeof(std::uint64_t);
  std::uint64_t checksum = serialize::fnv1a64(data.data(), payload);
  std::memcpy(data.data() + payload, &checksum, sizeof(checksum));
}

TEST(Serialize, PrimitivesRoundTrip) {
  serialize::Writer w;
  w.u8(7);
  w.u16(65535);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-0.1);
  w.boolean(true);
  w.boolean(false);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(0xffffffffffffffffull);
  std::vector<std::uint32_t> ids = {3, 1, 4, 1, 5};
  std::vector<double> vals = {2.71828, -1.0};
  std::vector<std::size_t> sizes = {0, 9, 1u << 20};
  w.pod_vec(ids);
  w.pod_vec(vals);
  w.size_vec(sizes);

  serialize::Reader r(w.take());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_EQ(r.varint(), 127u);
  EXPECT_EQ(r.varint(), 128u);
  EXPECT_EQ(r.varint(), 0xffffffffffffffffull);
  EXPECT_EQ(r.pod_vec<std::uint32_t>(), ids);
  EXPECT_EQ(r.pod_vec<double>(), vals);
  EXPECT_EQ(r.size_vec(), sizes);
  EXPECT_TRUE(r.status().ok()) << r.status().to_string();
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, ReadPastEndIsStickyNotFatal) {
  serialize::Writer w;
  w.u32(42);
  serialize::Reader r(w.take());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.u64(), 0u);  // past end: zero, not a crash
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.u32(), 0u);  // sticky
  EXPECT_TRUE(r.pod_vec<double>().empty());
}

TEST(Serialize, HugeClaimedCountRejectedBeforeAllocation) {
  serialize::Writer w;
  w.varint(0x7fffffffffffffffull);  // element count far beyond the buffer
  serialize::Reader r(w.take());
  EXPECT_TRUE(r.pod_vec<double>().empty());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Persistence, EdgeListRoundTrip) {
  GeneratedGraph g = grid2d(5, 7);
  randomize_weights_log_uniform(g.edges, 100.0, 3);
  serialize::Writer w;
  save_edges(w, g.edges);
  serialize::Reader r(w.take());
  EdgeList loaded = load_edges(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(loaded.size(), g.edges.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].u, g.edges[i].u);
    EXPECT_EQ(loaded[i].v, g.edges[i].v);
    EXPECT_EQ(loaded[i].w, g.edges[i].w);
  }
}

TEST(Persistence, CsrMatrixRoundTripBitwise) {
  GeneratedGraph g = erdos_renyi(60, 200, 11);
  randomize_weights_log_uniform(g.edges, 1e4, 5);
  CsrMatrix a = laplacian_from_edges(g.n, g.edges);
  serialize::Writer w;
  a.save(w);
  serialize::Reader r(w.take());
  CsrMatrix b = CsrMatrix::load(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(b.dimension(), a.dimension());
  ASSERT_EQ(b.num_nonzeros(), a.num_nonzeros());
  Vec x = random_unit_like(g.n, 17);
  Vec ya = a.apply(x);
  Vec yb = b.apply(x);
  EXPECT_EQ(0, std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(double)));
}

TEST(Persistence, DefaultCsrMatrixRoundTrip) {
  serialize::Writer w;
  CsrMatrix().save(w);
  serialize::Reader r(w.take());
  CsrMatrix m = CsrMatrix::load(r);
  EXPECT_TRUE(r.status().ok()) << r.status().to_string();
  EXPECT_EQ(m.dimension(), 0u);
}

TEST(Persistence, DenseLdltRoundTripBitwise) {
  GeneratedGraph g = grid2d(6, 6);
  DenseLdlt f = DenseLdlt::factor_laplacian(laplacian_from_edges(g.n, g.edges));
  serialize::Writer w;
  f.save(w);
  serialize::Reader r(w.take());
  DenseLdlt loaded = DenseLdlt::load(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(loaded.dimension(), f.dimension());
  Vec b = random_unit_like(g.n, 23);
  Vec xa = f.solve(b);
  Vec xb = loaded.solve(b);
  EXPECT_EQ(0, std::memcmp(xa.data(), xb.data(), xa.size() * sizeof(double)));
}

TEST(Persistence, EliminationRoundTripBitwise) {
  GeneratedGraph g = grid2d(9, 4);
  GreedyEliminationResult e = greedy_eliminate(g.n, g.edges, 5);
  serialize::Writer w;
  e.save(w);
  serialize::Reader r(w.take());
  GreedyEliminationResult loaded = GreedyEliminationResult::load(r, g.n);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(loaded.steps.size(), e.steps.size());
  EXPECT_EQ(loaded.rounds, e.rounds);
  EXPECT_EQ(loaded.reduced_n, e.reduced_n);
  EXPECT_EQ(loaded.orig_of_reduced, e.orig_of_reduced);
  EXPECT_EQ(loaded.reduced_of_orig, e.reduced_of_orig);
  Vec b = random_unit_like(g.n, 29);
  Vec ra, rb;
  Vec fa = e.fold_rhs(b, &ra);
  Vec fb = loaded.fold_rhs(b, &rb);
  EXPECT_EQ(0, std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)));
}

TEST(Persistence, GrembanRoundTrip) {
  // An SDD matrix with positive off-diagonals and diagonal excess, so the
  // reduction actually carries a double cover.
  std::vector<Triplet> ts = {{0, 0, 4.0}, {1, 1, 4.0}, {2, 2, 5.0},
                             {0, 1, 1.5}, {1, 0, 1.5}, {1, 2, -2.0},
                             {2, 1, -2.0}};
  GrembanReduction red = gremban_reduce(CsrMatrix::from_triplets(3, ts));
  ASSERT_FALSE(red.was_laplacian);
  serialize::Writer w;
  red.save(w);
  serialize::Reader r(w.take());
  GrembanReduction loaded = GrembanReduction::load(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  EXPECT_EQ(loaded.n, red.n);
  EXPECT_EQ(loaded.was_laplacian, red.was_laplacian);
  ASSERT_EQ(loaded.edges.size(), red.edges.size());
  Vec b = random_unit_like(red.n, 31);
  Vec la = red.lift_rhs(b);
  Vec lb = loaded.lift_rhs(b);
  EXPECT_EQ(0, std::memcmp(la.data(), lb.data(), la.size() * sizeof(double)));
}

TEST(Persistence, RootedTreeRoundTrip) {
  GeneratedGraph g = path(40);
  randomize_weights_log_uniform(g.edges, 50.0, 7);
  RootedTree t = RootedTree::from_edges(g.n, g.edges, 3);
  serialize::Writer w;
  t.save(w);
  serialize::Reader r(w.take());
  RootedTree loaded = RootedTree::load(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(loaded.num_vertices(), t.num_vertices());
  EXPECT_EQ(loaded.root(), t.root());
  for (std::uint32_t v = 0; v < g.n; ++v) {
    EXPECT_EQ(loaded.parent(v), t.parent(v));
    EXPECT_EQ(loaded.depth(v), t.depth(v));
    EXPECT_EQ(loaded.weighted_depth(v), t.weighted_depth(v));
  }
  EXPECT_EQ(loaded.lca(0, 39), t.lca(0, 39));
  EXPECT_EQ(loaded.distance(5, 31), t.distance(5, 31));
}

TEST(Persistence, ChainRoundTrip) {
  GeneratedGraph g = grid2d(12, 12);
  randomize_weights_two_level(g.edges, 100.0, 13);
  SolverChain chain = build_chain(g.n, g.edges);
  serialize::Writer w;
  save_chain(w, chain);
  serialize::Reader r(w.take());
  SolverChain loaded = load_chain(r);
  ASSERT_TRUE(r.status().ok()) << r.status().to_string();
  ASSERT_EQ(loaded.depth(), chain.depth());
  EXPECT_EQ(loaded.total_edges(), chain.total_edges());
  EXPECT_EQ(loaded.bottom.has_value(), chain.bottom.has_value());
  for (std::uint32_t i = 0; i < chain.depth(); ++i) {
    EXPECT_EQ(loaded.levels[i].n, chain.levels[i].n);
    EXPECT_EQ(loaded.levels[i].edges.size(), chain.levels[i].edges.size());
    EXPECT_EQ(loaded.levels[i].has_preconditioner,
              chain.levels[i].has_preconditioner);
    EXPECT_EQ(loaded.levels[i].kappa, chain.levels[i].kappa);
    EXPECT_EQ(loaded.levels[i].elimination.steps.size(),
              chain.levels[i].elimination.steps.size());
  }
}

// The tentpole contract: a loaded setup answers bitwise-identically, for
// single and batched RHS, across a disconnected weighted graph.
TEST(Persistence, SetupSaveLoadSolveBitwise) {
  GeneratedGraph g = grid2d(14, 11);
  randomize_weights_log_uniform(g.edges, 1e3, 41);
  // Second component + an isolated vertex to exercise the component maps.
  GeneratedGraph h = path(9);
  std::uint32_t base = g.n;
  for (const Edge& e : h.edges) {
    g.edges.push_back(Edge{base + e.u, base + e.v, 2.5});
  }
  std::uint32_t n = base + h.n + 1;

  SolverSetup setup = SolverSetup::for_laplacian(n, g.edges);
  TempFile file("setup_bitwise");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();

  EXPECT_EQ(loaded->dimension(), setup.dimension());
  EXPECT_EQ(loaded->num_components(), setup.num_components());
  EXPECT_EQ(loaded->chain_levels(), setup.chain_levels());
  EXPECT_EQ(loaded->chain_edges(), setup.chain_edges());

  Vec b = random_unit_like(n, 43);
  StatusOr<Vec> xa = setup.solve(b);
  StatusOr<Vec> xb = loaded->solve(b);
  ASSERT_TRUE(xa.ok() && xb.ok());
  ASSERT_EQ(xa->size(), xb->size());
  EXPECT_EQ(0,
            std::memcmp(xa->data(), xb->data(), xa->size() * sizeof(double)));

  MultiVec block(n, 5);
  for (std::size_t c = 0; c < 5; ++c) {
    block.set_column(c, random_unit_like(n, 100 + c));
  }
  StatusOr<MultiVec> ya = setup.solve_batch(block);
  StatusOr<MultiVec> yb = loaded->solve_batch(block);
  ASSERT_TRUE(ya.ok() && yb.ok());
  EXPECT_EQ(0, std::memcmp(ya->data().data(), yb->data().data(),
                           ya->data().size() * sizeof(double)));
}

TEST(Persistence, SetupSaveLoadSddGrembanBitwise) {
  // Non-Laplacian SDD input: the snapshot must carry the Gremban lift.
  std::vector<Triplet> ts;
  std::uint32_t n = 12;
  for (std::uint32_t i = 0; i < n; ++i) ts.push_back({i, i, 5.0});
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    double w = (i % 3 == 0) ? 1.0 : -1.5;  // mixed-sign off-diagonals
    ts.push_back({i, i + 1, w});
    ts.push_back({i + 1, i, w});
  }
  CsrMatrix a = CsrMatrix::from_triplets(n, ts);
  ASSERT_TRUE(a.is_sdd());
  SolverSetup setup = SolverSetup::for_sdd(a);
  TempFile file("setup_sdd");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->dimension(), n);
  Vec b = random_unit_like(n, 47);
  StatusOr<Vec> xa = setup.solve(b);
  StatusOr<Vec> xb = loaded->solve(b);
  ASSERT_TRUE(xa.ok() && xb.ok());
  EXPECT_EQ(0,
            std::memcmp(xa->data(), xb->data(), xa->size() * sizeof(double)));
}

TEST(Persistence, ChebyshevBoundsSurviveRoundTrip) {
  // rPCh mode measures per-level spectral bounds at build time; the
  // snapshot must restore them without re-measuring (bitwise solves).
  GeneratedGraph g = grid2d(10, 10);
  SddSolverOptions opts;
  opts.method = SolveMethod::kChainRpch;
  opts.recursion.inner = InnerMethod::kChebyshev;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, opts);
  TempFile file("setup_cheb");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  Vec b = random_unit_like(g.n, 53);
  StatusOr<Vec> xa = setup.solve(b);
  StatusOr<Vec> xb = loaded->solve(b);
  ASSERT_TRUE(xa.ok() && xb.ok());
  EXPECT_EQ(0,
            std::memcmp(xa->data(), xb->data(), xa->size() * sizeof(double)));
}

TEST(Persistence, SaveLoadSaveBytesIdentical) {
  GeneratedGraph g = torus2d(8, 9);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  TempFile first("resave_a"), second("resave_b");
  ASSERT_TRUE(setup.Save(first.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(first.path());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->Save(second.path()).ok());
  EXPECT_EQ(file_bytes(first.path()), file_bytes(second.path()));
}

TEST(Persistence, MissingFileIsNotFound) {
  StatusOr<SolverSetup> loaded =
      SolverSetup::Load("/nonexistent/dir/parsdd.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(Persistence, TruncatedFilesFailCleanly) {
  GeneratedGraph g = grid2d(7, 7);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  TempFile file("truncate");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  std::vector<std::uint8_t> full = file_bytes(file.path());
  ASSERT_GT(full.size(), 64u);
  // Every prefix must fail with a typed status, never crash: below the
  // trailer size, mid-header, mid-payload, and one byte short.
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{5}, std::size_t{17}, full.size() / 3,
        full.size() / 2, full.size() - 1}) {
    std::vector<std::uint8_t> cut(full.begin(), full.begin() + keep);
    write_bytes(file.path(), cut);
    StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kInvalidArgument ||
                loaded.status().code() == StatusCode::kInternal)
        << loaded.status().to_string();
  }
}

TEST(Persistence, CorruptBytesFailCleanly) {
  GeneratedGraph g = grid2d(7, 6);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  TempFile file("corrupt");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  std::vector<std::uint8_t> full = file_bytes(file.path());
  for (std::size_t pos : {std::size_t{0}, std::size_t{9}, full.size() / 2,
                          full.size() - 9, full.size() - 1}) {
    std::vector<std::uint8_t> bad = full;
    bad[pos] ^= 0x40;
    write_bytes(file.path(), bad);
    StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
    ASSERT_FALSE(loaded.ok()) << "flip at byte " << pos;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << loaded.status().to_string();
  }
}

TEST(Persistence, ForgedPayloadNeverCrashes) {
  // Checksum-valid but malicious snapshots: mutate every payload byte (two
  // mutants per position — a bit flip and a saturating 0xff, the latter
  // forging huge vertex ids/counts), reseal the trailer, and Load.  Every
  // mutant must either fail with a typed Status or produce a setup whose
  // solve stays in bounds (the ASan CI job turns any violation into a
  // failure here) — results may be garbage, memory safety may not.
  GeneratedGraph g = grid2d(5, 4);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  TempFile file("forge");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  const std::vector<std::uint8_t> full = file_bytes(file.path());
  ASSERT_GT(full.size(), sizeof(std::uint64_t));
  const std::size_t payload = full.size() - sizeof(std::uint64_t);
  Vec b = random_unit_like(g.n, 11);
  std::size_t loads_ok = 0;
  for (std::size_t pos = 0; pos < payload; ++pos) {
    // Four mutants per position: a bit flip, a saturating 0xff (forged huge
    // ids/counts), a zero, and a low-bit flip — the last two turn stored
    // 0x01 booleans into *valid* 0x00 ones (chain-present, gremban-present,
    // has_preconditioner), which the other mutants can never produce.
    for (std::uint8_t mutant :
         {static_cast<std::uint8_t>(full[pos] ^ 0x40), std::uint8_t{0xff},
          std::uint8_t{0x00}, static_cast<std::uint8_t>(full[pos] ^ 0x01)}) {
      if (mutant == full[pos]) continue;
      std::vector<std::uint8_t> bad = full;
      bad[pos] = mutant;
      reseal_checksum(bad);
      write_bytes(file.path(), bad);
      StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
      if (!loaded.ok()) continue;
      ++loads_ok;
      (void)loaded->solve(b);
    }
  }
  // Plenty of mutations only touch weights/κ/bounds and legitimately load;
  // the scan is meaningful only if some of them did.
  EXPECT_GT(loads_ok, 0u);
}

TEST(Persistence, VersionMismatchFailsCleanly) {
  // A well-formed file from a "future" format version: valid checksum,
  // valid magic — only the version differs.  The header check must name it.
  serialize::Writer w;
  w.header(serialize::kFormatVersion + 1);
  GeneratedGraph g = grid2d(4, 4);
  SolverSetup::for_laplacian(g.n, g.edges).save_to(w);
  TempFile file("version");
  ASSERT_TRUE(w.to_file(file.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().to_string();
}

TEST(Persistence, ForeignEndiannessFailsCleanly) {
  GeneratedGraph g = grid2d(4, 4);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  TempFile file("endian");
  ASSERT_TRUE(setup.Save(file.path()).ok());
  std::vector<std::uint8_t> bytes = file_bytes(file.path());
  std::swap(bytes[4 + 2], bytes[4 + 3]);  // byte-swap the endian mark
  reseal_checksum(bytes);
  write_bytes(file.path(), bytes);
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("endian"), std::string::npos)
      << loaded.status().to_string();
}

TEST(Persistence, WrongPayloadTagFailsCleanly) {
  serialize::Writer w;
  w.header();
  w.u8(0xEE);  // not a SolverSetup tag
  w.u32(123);
  TempFile file("tag");
  ASSERT_TRUE(w.to_file(file.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// Warm-start through the service: snapshot a registered setup, load it
// into a second service (a "restarted process"), and get bitwise-identical
// answers.
TEST(Persistence, ServiceSnapshotWarmStartBitwise) {
  GeneratedGraph g = grid2d(13, 9);
  randomize_weights_log_uniform(g.edges, 10.0, 61);
  Vec b = random_unit_like(g.n, 67);
  TempFile file("warmstart");
  Vec x_cold;
  {
    SolverService service;
    StatusOr<SetupHandle> handle = service.register_laplacian(g.n, g.edges);
    ASSERT_TRUE(handle.ok());
    StatusOr<SolveResult> res = service.submit(*handle, b).get();
    ASSERT_TRUE(res.ok());
    x_cold = res->x;
    ASSERT_TRUE(service.snapshot(*handle, file.path()).ok());
    EXPECT_EQ(service.snapshot(SetupHandle{999}, file.path()).code(),
              StatusCode::kNotFound);
  }
  {
    SolverService warm;
    StatusOr<SetupHandle> handle = warm.register_from_snapshot(file.path());
    ASSERT_TRUE(handle.ok()) << handle.status().to_string();
    StatusOr<SetupInfo> info = warm.info(*handle);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->dimension, g.n);
    StatusOr<SolveResult> res = warm.submit(*handle, b).get();
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res->x.size(), x_cold.size());
    EXPECT_EQ(0, std::memcmp(res->x.data(), x_cold.data(),
                             x_cold.size() * sizeof(double)));
  }
}

TEST(Persistence, ServiceSnapshotLoadRejectsGarbage) {
  SolverService service;
  EXPECT_EQ(service.register_from_snapshot("/no/such/file.snap")
                .status()
                .code(),
            StatusCode::kNotFound);
  TempFile file("garbage");
  write_bytes(file.path(), std::vector<std::uint8_t>(64, 0xAB));
  EXPECT_EQ(service.register_from_snapshot(file.path()).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace parsdd
