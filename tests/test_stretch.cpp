// Stretch computation against trees and subgraphs.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/stretch.h"

namespace parsdd {
namespace {

TEST(Stretch, TreeEdgesHaveStretchOne) {
  GeneratedGraph g = path(30);
  RootedTree t = RootedTree::from_edges(g.n, g.edges, 0);
  StretchStats s = stretch_wrt_tree(g.edges, t);
  for (double v : s.per_edge) EXPECT_DOUBLE_EQ(v, 1.0);
  EXPECT_DOUBLE_EQ(s.total, 29.0);
  EXPECT_DOUBLE_EQ(s.average(), 1.0);
}

TEST(Stretch, CycleClosingEdge) {
  // Cycle 0-1-2-3-0 with unit weights; tree = path 0-1-2-3.
  EdgeList tree = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  EdgeList all = tree;
  all.push_back(Edge{0, 3, 1.0});
  RootedTree t = RootedTree::from_edges(4, tree, 0);
  StretchStats s = stretch_wrt_tree(all, t);
  EXPECT_DOUBLE_EQ(s.per_edge[3], 3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Stretch, WeightedStretch) {
  EdgeList tree = {{0, 1, 2.0}, {1, 2, 2.0}};
  EdgeList all = tree;
  all.push_back(Edge{0, 2, 1.0});  // d_T = 4, w = 1 -> stretch 4
  RootedTree t = RootedTree::from_edges(3, tree, 0);
  StretchStats s = stretch_wrt_tree(all, t);
  EXPECT_DOUBLE_EQ(s.per_edge[2], 4.0);
}

TEST(Stretch, SubgraphMatchesTreeWhenSubgraphIsTree) {
  GeneratedGraph g = erdos_renyi(80, 240, 5);
  auto idx = mst_kruskal(g.n, g.edges);
  EdgeList tree;
  for (auto i : idx) tree.push_back(g.edges[i]);
  RootedTree t = RootedTree::from_edges(g.n, tree, 0);
  StretchStats st = stretch_wrt_tree(g.edges, t);
  StretchStats ss = stretch_wrt_subgraph(g.n, tree, g.edges);
  ASSERT_EQ(st.per_edge.size(), ss.per_edge.size());
  for (std::size_t i = 0; i < st.per_edge.size(); ++i) {
    EXPECT_NEAR(st.per_edge[i], ss.per_edge[i], 1e-9);
  }
}

TEST(Stretch, SubgraphNeverWorseThanSpanningTreeInsideIt) {
  GeneratedGraph g = erdos_renyi(80, 240, 9);
  randomize_weights_log_uniform(g.edges, 8.0, 2);
  auto idx = mst_kruskal(g.n, g.edges);
  EdgeList sub;
  for (auto i : idx) sub.push_back(g.edges[i]);
  // Enrich the subgraph with every 10th edge.
  for (std::size_t i = 0; i < g.edges.size(); i += 10) sub.push_back(g.edges[i]);
  RootedTree t = RootedTree::from_edges(
      g.n, EdgeList(sub.begin(), sub.begin() + (g.n - 1)), 0);
  StretchStats st = stretch_wrt_tree(g.edges, t);
  StretchStats ss = stretch_wrt_subgraph(g.n, sub, g.edges);
  EXPECT_LE(ss.total, st.total + 1e-9);
  for (std::size_t i = 0; i < ss.per_edge.size(); ++i) {
    EXPECT_LE(ss.per_edge[i], st.per_edge[i] + 1e-9);
  }
}

TEST(Stretch, SubgraphEdgesInSubgraphHaveStretchAtMostOne) {
  GeneratedGraph g = grid2d(8, 8);
  StretchStats s = stretch_wrt_subgraph(g.n, g.edges, g.edges);
  for (double v : s.per_edge) EXPECT_LE(v, 1.0 + 1e-12);
}

TEST(Stretch, ThrowsWhenSubgraphDisconnectsEndpoints) {
  EdgeList sub = {{0, 1, 1.0}};
  EdgeList query = {{2, 3, 1.0}};
  EXPECT_THROW(stretch_wrt_subgraph(4, sub, query), std::runtime_error);
}

}  // namespace
}  // namespace parsdd
