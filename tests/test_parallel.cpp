// Unit tests for the parallel substrate: thread pool, primitives, RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/primitives.h"
#include "parallel/rng.h"
#include "parallel/thread_pool.h"

namespace parsdd {
namespace {

TEST(ThreadPool, ConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::instance().concurrency(), 1);
}

TEST(ThreadPool, RunBlocksExecutesEveryBlockExactlyOnce) {
  constexpr std::size_t kBlocks = 1000;
  std::vector<std::atomic<int>> hits(kBlocks);
  for (auto& h : hits) h.store(0);
  ThreadPool::instance().run_blocks(kBlocks, [&](std::size_t b) {
    hits[b].fetch_add(1);
  });
  for (std::size_t b = 0; b < kBlocks; ++b) EXPECT_EQ(hits[b].load(), 1);
}

TEST(ThreadPool, NestedParallelRunsSequentially) {
  std::atomic<int> outer{0};
  ThreadPool::instance().run_blocks(8, [&](std::size_t) {
    // A nested region must not deadlock; it runs inline.
    parallel_for(0, 10000, [&](std::size_t) {});
    outer.fetch_add(1);
  });
  EXPECT_EQ(outer.load(), 8);
}

TEST(ParallelFor, CoversRangeOnce) {
  constexpr std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelReduce, MatchesSequentialSum) {
  constexpr std::size_t n = 123457;
  std::uint64_t expect = n * (n - 1) / 2;
  std::uint64_t got = parallel_reduce(
      0, n, std::uint64_t{0}, [](std::size_t i) { return std::uint64_t(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(got, expect);
}

TEST(ParallelReduce, MaxAndEmptyIdentity) {
  double mx = parallel_reduce(
      0, 0, -1.0, [](std::size_t) { return 5.0; },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(mx, -1.0);
}

class ScanTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanTest, MatchesSequentialExclusiveScan) {
  std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n);
  Rng rng(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.below(i, 100);
  std::vector<std::uint64_t> expect(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc += v[i];
  }
  std::uint64_t total = scan_exclusive(v);
  EXPECT_EQ(total, acc);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanTest,
                         ::testing::Values(0, 1, 2, 100, 2048, 4097, 100000));

TEST(Pack, PackIndexSelectsPredicatedIndices) {
  auto idx = pack_index(100000, [](std::size_t i) { return i % 7 == 0; });
  ASSERT_EQ(idx.size(), (100000 + 6) / 7);
  for (std::size_t k = 0; k < idx.size(); ++k) EXPECT_EQ(idx[k], 7 * k);
}

TEST(Pack, PackPreservesOrder) {
  std::vector<int> items(50000);
  std::iota(items.begin(), items.end(), 0);
  auto out = pack(items, [&](std::size_t i) { return items[i] % 2 == 1; });
  ASSERT_EQ(out.size(), 25000u);
  for (std::size_t k = 0; k < out.size(); ++k) {
    EXPECT_EQ(out[k], static_cast<int>(2 * k + 1));
  }
}

class SortTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortTest, SortsRandomInput) {
  std::size_t n = GetParam();
  std::vector<std::uint64_t> v(n);
  Rng rng(7 * n + 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.u64(i) % 1000;
  std::vector<std::uint64_t> expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v);
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortTest,
                         ::testing::Values(0, 1, 2, 1000, 8192, 100001));

TEST(Sort, AlreadySortedAndReverse) {
  std::vector<int> v(50000);
  std::iota(v.begin(), v.end(), 0);
  auto expect = v;
  parallel_sort(v);
  EXPECT_EQ(v, expect);
  std::reverse(v.begin(), v.end());
  parallel_sort(v);
  EXPECT_EQ(v, expect);
}

TEST(Sort, CustomComparator) {
  std::vector<int> v = {3, 1, 4, 1, 5, 9, 2, 6};
  parallel_sort(v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(Tabulate, FillsValues) {
  auto v = tabulate<std::size_t>(5000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(v.size(), 5000u);
  EXPECT_EQ(v[70], 4900u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(a.u64(i), b.u64(i));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) same += (a.u64(i) == b.u64(i));
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    double u = r.uniform(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BelowIsInRangeAndRoughlyUniform) {
  Rng r(5);
  std::vector<int> counts(10, 0);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    std::uint64_t v = r.below(i, 10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Rng, ChildStreamsIndependent) {
  Rng r(42);
  Rng c1 = r.child(1), c2 = r.child(2);
  int same = 0;
  for (std::uint64_t i = 0; i < 64; ++i) same += (c1.u64(i) == c2.u64(i));
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace parsdd
