// Regenerates the golden regression vector tests/data/golden_grid16.bin:
// a snapshot of the default-options SolverSetup for the 16x16 unit grid,
// the fixed RHS, and the solution the current build produces for it.
//
//   $ ./make_golden [output-path]
//
// test_golden loads the file, re-solves with the embedded setup, and
// memcmp-verifies against the stored solution — so ANY change to solver
// arithmetic (kernel reordering, FP contraction, a chain tweak that leaks
// into the solve path) fails loudly instead of drifting silently.  After an
// INTENTIONAL numeric change, rerun this tool and commit the new file with
// a line in the PR explaining the drift (see DESIGN.md, "Golden vectors").
#include <cstdio>
#include <string>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "solver/solver_setup.h"
#include "util/serialize.h"

int main(int argc, char** argv) {
  using namespace parsdd;
  std::string path = argc > 1 ? argv[1] : "golden_grid16.bin";

  GeneratedGraph g = grid2d(16, 16);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  Vec b = random_unit_like(g.n, 2024);
  kernels::project_out_constant(b);
  StatusOr<Vec> x = setup.solve(b);
  if (!x.ok()) {
    std::fprintf(stderr, "make_golden: solve failed: %s\n",
                 x.status().to_string().c_str());
    return 1;
  }

  serialize::Writer w;
  w.header();
  setup.save_to(w);
  w.pod_vec(b);
  w.pod_vec(*x);
  Status st = w.to_file(path);
  if (!st.ok()) {
    std::fprintf(stderr, "make_golden: %s\n", st.to_string().c_str());
    return 1;
  }
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel = kernels::norm2(kernels::subtract(lap.apply(*x), b)) / kernels::norm2(b);
  std::printf("wrote %s (n=%u, residual %.3e, %zu bytes)\n", path.c_str(),
              g.n, rel, w.buffer().size() + 8);
  return 0;
}
