// Dynamic graph updates (ROADMAP item 4; DESIGN.md §10).
//
// Contracts under test:
//   * plan_update classifies a delta batch into the documented tiers
//     (weight-only -> stale chain, intra-component insertion -> component
//     rebuild, removal / bridging insertion -> full rebuild) and rejects
//     malformed batches with typed InvalidArgument;
//   * update() returns a NEW setup whose solves meet the residual contract
//     against the UPDATED Laplacian on every tier, across all five fuzzer
//     graph families, while the pre-update setup stays valid;
//   * a batch applies sequentially (insert-then-reweight-then-remove);
//   * update_seq accumulates, rebuild() clears staleness and the quality
//     baseline while keeping the sequence number;
//   * a snapshot taken after updates reloads bitwise (format v3 carries
//     update_seq, the quality counters, and chain staleness);
//   * through SolverService: weight-only updates apply synchronously with
//     no rebuild, structural updates swap in asynchronously with zero
//     failed in-flight solves, the quality monitor schedules a rebuild
//     when stale-chain drift crosses the threshold, and an updated handle
//     never aliases its pre-update setup-cache entry (the fingerprint
//     extension contract);
//   * post-update solves stay bitwise deterministic across pool sizes and
//     SIMD backends (subprocess matrix, same idiom as test_determinism).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "file_test_util.h"
#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "service/solver_service.h"
#include "solver/solver_setup.h"

namespace parsdd {
namespace {

constexpr double kTol = 1e-8;
// Convergence is measured in the preconditioned norm, so the Euclidean
// residual can sit a small factor above the target (same headroom as
// test_property_solve).
constexpr double kResidualHeadroom = 100 * kTol;

Vec consistent_rhs(std::uint32_t n, std::uint64_t seed) {
  Vec b = random_unit_like(n, seed);
  kernels::project_out_constant(b);
  return b;
}

double rel_residual(std::uint32_t n, const EdgeList& edges, const Vec& x,
                    const Vec& b) {
  CsrMatrix lap = laplacian_from_edges(n, edges);
  return kernels::norm2(kernels::subtract(lap.apply(x), b)) /
         std::max(kernels::norm2(b), 1e-300);
}

// Mirrors update()'s sequential delta semantics on a plain edge list, for
// building the from-scratch reference setup: a weight-set rewrites the
// first matching edge and drops parallel duplicates, w == 0 removes every
// copy, an unmatched positive weight appends.
EdgeList apply_deltas_reference(EdgeList edges,
                                const std::vector<EdgeDelta>& deltas) {
  auto matches = [](const Edge& e, const EdgeDelta& d) {
    return (e.u == d.u && e.v == d.v) || (e.u == d.v && e.v == d.u);
  };
  for (const EdgeDelta& d : deltas) {
    bool found = false;
    EdgeList next;
    next.reserve(edges.size() + 1);
    for (const Edge& e : edges) {
      if (!matches(e, d)) {
        next.push_back(e);
      } else if (d.w > 0.0 && !found) {
        next.push_back(Edge{e.u, e.v, d.w});
        found = true;
      }  // removal, or a parallel duplicate of a weight-set: drop
    }
    if (d.w > 0.0 && !found) next.push_back(Edge{d.u, d.v, d.w});
    edges = std::move(next);
  }
  return edges;
}

struct Family {
  std::string name;
  GeneratedGraph graph;
};

// The five fuzzer families of test_property_solve, at fixed sizes.  Each
// gets an extra cycle-closing edge so single-edge removals in the tests
// below can never disconnect the graph (a disconnected reference residual
// would need per-component RHS projection and test nothing extra).
std::vector<Family> families() {
  std::vector<Family> out;
  out.push_back({"grid2d(8,8)", grid2d(8, 8)});
  out.push_back({"random_regular(48,3)", random_regular(48, 3, 7)});
  out.push_back({"barbell(5,6)", barbell(5, 6)});
  out.push_back({"star(40)", star(40)});
  out.push_back({"path(60)", path(60)});
  for (Family& f : out) {
    f.graph.edges.push_back(Edge{1, f.graph.n - 1, 1.0});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tier classification.

TEST(PlanUpdate, ClassifiesTiers) {
  GeneratedGraph g = grid2d(6, 6);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);

  // Weight perturbation of an existing edge: cheapest tier.
  Edge e0 = g.edges.front();
  EXPECT_EQ(setup.plan_update({{e0.u, e0.v, e0.w * 2}}).value(),
            UpdateTier::kStaleChain);
  // Insertion inside the (single) component: component rebuild.
  EXPECT_EQ(setup.plan_update({{0, 7, 1.0}}).value(),
            UpdateTier::kComponentRebuild);
  // Removal: the partition may change, full rebuild.
  EXPECT_EQ(setup.plan_update({{e0.u, e0.v, 0.0}}).value(),
            UpdateTier::kFullRebuild);
  // A mixed batch classifies as its costliest member.
  EXPECT_EQ(setup
                .plan_update({{e0.u, e0.v, e0.w * 2}, {0, 7, 1.0}})
                .value(),
            UpdateTier::kComponentRebuild);
}

TEST(PlanUpdate, BridgingInsertionIsFullRebuild) {
  // Two disjoint grids in one vertex set.
  GeneratedGraph g = grid2d(4, 4);
  GeneratedGraph h = grid2d(3, 3);
  std::uint32_t base = g.n;
  for (const Edge& e : h.edges) {
    g.edges.push_back(Edge{base + e.u, base + e.v, e.w});
  }
  g.n += h.n;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  ASSERT_EQ(setup.num_components(), 2u);
  EXPECT_EQ(setup.plan_update({{0, base, 1.0}}).value(),
            UpdateTier::kFullRebuild);
}

TEST(PlanUpdate, RejectsMalformedBatches) {
  GeneratedGraph g = grid2d(4, 4);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  // Every rejection is a typed InvalidArgument naming the offending delta.
  EXPECT_EQ(setup.plan_update({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(setup.plan_update({{0, g.n, 1.0}}).status().code(),
            StatusCode::kInvalidArgument);  // endpoint out of range
  EXPECT_EQ(setup.plan_update({{3, 3, 1.0}}).status().code(),
            StatusCode::kInvalidArgument);  // self loop
  EXPECT_EQ(setup.plan_update({{0, 1, -1.0}}).status().code(),
            StatusCode::kInvalidArgument);  // negative weight
  EXPECT_EQ(setup.plan_update({{0, 1, std::nan("")}}).status().code(),
            StatusCode::kInvalidArgument);  // non-finite weight
  EXPECT_EQ(setup.plan_update({{0, 15, 0.0}}).status().code(),
            StatusCode::kInvalidArgument);  // removing a nonexistent edge
}

TEST(PlanUpdate, GrembanLiftedSetupRefuses) {
  // Positive off-diagonals force the Gremban double cover; the lifted
  // internal graph has no 1:1 edge mapping to the user's matrix, so update
  // is refused (rebuild from the updated matrix instead).
  std::vector<Triplet> ts = {
      {0, 0, 3.0},  {0, 1, 1.0},  {1, 0, 1.0},  {1, 1, 4.0},
      {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 3.0},
  };
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  SolverSetup setup = SolverSetup::for_sdd(a);
  EXPECT_EQ(setup.plan_update({{0, 1, 2.0}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(setup.update({{0, 1, 2.0}}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Residual contract per tier, across all five graph families.  Every case
// also builds the from-scratch setup of the updated edge list as the
// reference: both must meet the residual contract against the updated
// Laplacian (the stale-chain tier is allowed extra iterations, never extra
// residual).

TEST(Update, StaleChainMeetsResidualAcrossFamilies) {
  for (Family& f : families()) {
    SddSolverOptions opts;
    opts.tolerance = kTol;
    SolverSetup setup =
        SolverSetup::for_laplacian(f.graph.n, f.graph.edges, opts);
    // Perturb three existing edge weights (x16, x0.25, x9).
    const double factors[] = {16.0, 0.25, 9.0};
    std::vector<EdgeDelta> deltas;
    for (int i = 0; i < 3; ++i) {
      const Edge& e = f.graph.edges[static_cast<std::size_t>(i) * 2];
      deltas.push_back({e.u, e.v, e.w * factors[i]});
    }
    UpdateReport report;
    StatusOr<SolverSetup> updated = setup.update(deltas, &report);
    ASSERT_TRUE(updated.ok()) << f.name << ": " << updated.status().to_string();
    EXPECT_EQ(report.tier, UpdateTier::kStaleChain) << f.name;
    EXPECT_EQ(report.weight_updates, 3u) << f.name;
    EXPECT_EQ(report.components_rebuilt, 0u) << f.name;
    EXPECT_GT(updated->quality().stale_components, 0u) << f.name;

    EdgeList ref_edges = apply_deltas_reference(f.graph.edges, deltas);
    Vec b = consistent_rhs(f.graph.n, 42);
    Vec x = updated->solve(b).value();
    EXPECT_LE(rel_residual(f.graph.n, ref_edges, x, b), kResidualHeadroom)
        << f.name << ": stale-chain solve misses the updated-matrix contract";
    // From-scratch reference converges too — and the pre-update setup still
    // answers for the OLD matrix (it was never touched).
    SolverSetup fresh =
        SolverSetup::for_laplacian(f.graph.n, ref_edges, opts);
    Vec xf = fresh.solve(b).value();
    EXPECT_LE(rel_residual(f.graph.n, ref_edges, xf, b), kResidualHeadroom)
        << f.name;
    Vec x_old = setup.solve(b).value();
    EXPECT_LE(rel_residual(f.graph.n, f.graph.edges, x_old, b),
              kResidualHeadroom)
        << f.name << ": pre-update setup was disturbed by update()";
  }
}

TEST(Update, ComponentRebuildMeetsResidualAcrossFamilies) {
  for (Family& f : families()) {
    SddSolverOptions opts;
    opts.tolerance = kTol;
    SolverSetup setup =
        SolverSetup::for_laplacian(f.graph.n, f.graph.edges, opts);
    ASSERT_EQ(setup.num_components(), 1u) << f.name;
    // Insert a fresh chord inside the single component.
    std::vector<EdgeDelta> deltas = {{2, f.graph.n - 2, 3.0}};
    UpdateReport report;
    StatusOr<SolverSetup> updated = setup.update(deltas, &report);
    ASSERT_TRUE(updated.ok()) << f.name << ": " << updated.status().to_string();
    EXPECT_EQ(report.tier, UpdateTier::kComponentRebuild) << f.name;
    EXPECT_EQ(report.edges_added, 1u) << f.name;
    EXPECT_EQ(report.components_rebuilt, 1u) << f.name;
    EXPECT_EQ(updated->quality().stale_components, 0u)
        << f.name << ": a rebuilt chain is fresh, not stale";

    EdgeList ref_edges = apply_deltas_reference(f.graph.edges, deltas);
    Vec b = consistent_rhs(f.graph.n, 43);
    Vec x = updated->solve(b).value();
    EXPECT_LE(rel_residual(f.graph.n, ref_edges, x, b), kResidualHeadroom)
        << f.name;
  }
}

TEST(Update, FullRebuildOnRemovalMeetsResidualAcrossFamilies) {
  for (Family& f : families()) {
    SddSolverOptions opts;
    opts.tolerance = kTol;
    SolverSetup setup =
        SolverSetup::for_laplacian(f.graph.n, f.graph.edges, opts);
    // Remove the cycle-closing edge families() appended: connectivity is
    // preserved, the tier is still a full rebuild (removal may split
    // components in general; the planner does not prove otherwise).
    std::vector<EdgeDelta> deltas = {{1, f.graph.n - 1, 0.0}};
    UpdateReport report;
    StatusOr<SolverSetup> updated = setup.update(deltas, &report);
    ASSERT_TRUE(updated.ok()) << f.name << ": " << updated.status().to_string();
    EXPECT_EQ(report.tier, UpdateTier::kFullRebuild) << f.name;
    EXPECT_EQ(report.edges_removed, 1u) << f.name;
    EXPECT_EQ(updated->quality().stale_components, 0u) << f.name;

    EdgeList ref_edges = apply_deltas_reference(f.graph.edges, deltas);
    Vec b = consistent_rhs(f.graph.n, 44);
    Vec x = updated->solve(b).value();
    EXPECT_LE(rel_residual(f.graph.n, ref_edges, x, b), kResidualHeadroom)
        << f.name;
  }
}

TEST(Update, BridgingInsertionJoinsComponents) {
  GeneratedGraph g = grid2d(5, 5);
  GeneratedGraph h = path(12);
  std::uint32_t base = g.n;
  for (const Edge& e : h.edges) {
    g.edges.push_back(Edge{base + e.u, base + e.v, e.w});
  }
  g.n += h.n;
  SddSolverOptions opts;
  opts.tolerance = kTol;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, opts);
  ASSERT_EQ(setup.num_components(), 2u);
  std::vector<EdgeDelta> deltas = {{3, base + 4, 2.0}};
  UpdateReport report;
  SolverSetup updated = setup.update(deltas, &report).value();
  EXPECT_EQ(report.tier, UpdateTier::kFullRebuild);
  EXPECT_EQ(updated.num_components(), 1u);
  // Now connected: one globally consistent RHS solves across the bridge.
  EdgeList ref_edges = apply_deltas_reference(g.edges, deltas);
  Vec b = consistent_rhs(g.n, 45);
  Vec x = updated.solve(b).value();
  EXPECT_LE(rel_residual(g.n, ref_edges, x, b), kResidualHeadroom);
}

TEST(Update, BatchAppliesSequentially) {
  GeneratedGraph g = grid2d(6, 6);
  SddSolverOptions opts;
  opts.tolerance = kTol;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, opts);
  // Insert an edge, re-weight it, remove it: net structural no-op.  A
  // batch that validated against the ORIGINAL edge list (instead of
  // applying sequentially) would refuse the re-weight and the removal.
  std::vector<EdgeDelta> deltas = {{0, 14, 1.0}, {0, 14, 5.0}, {0, 14, 0.0}};
  UpdateReport report;
  SolverSetup updated = setup.update(deltas, &report).value();
  EXPECT_EQ(report.tier, UpdateTier::kFullRebuild);  // batch contains removal
  EXPECT_EQ(report.edges_added, 1u);
  EXPECT_EQ(report.weight_updates, 1u);
  EXPECT_EQ(report.edges_removed, 1u);
  EXPECT_EQ(report.update_seq, 3u);
  Vec b = consistent_rhs(g.n, 46);
  Vec x = updated.solve(b).value();
  // Net no-op: the updated setup answers for the original Laplacian.
  EXPECT_LE(rel_residual(g.n, g.edges, x, b), kResidualHeadroom);
}

TEST(Update, UpdateSeqAccumulatesAndRebuildClearsStaleness) {
  GeneratedGraph g = grid2d(6, 6);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  EXPECT_EQ(setup.update_seq(), 0u);
  Edge e0 = g.edges.front();
  SolverSetup u1 = setup.update({{e0.u, e0.v, 2.0}}).value();
  EXPECT_EQ(u1.update_seq(), 1u);
  Edge e1 = g.edges[3];
  SolverSetup u2 =
      u1.update({{e1.u, e1.v, 3.0}, {e0.u, e0.v, 1.5}}).value();
  EXPECT_EQ(u2.update_seq(), 3u);
  EXPECT_GT(u2.quality().stale_components, 0u);
  // rebuild(): fresh chains, staleness and baseline cleared, seq kept.
  SolverSetup fresh = u2.rebuild();
  EXPECT_EQ(fresh.update_seq(), 3u);
  EXPECT_EQ(fresh.quality().stale_components, 0u);
  EXPECT_EQ(fresh.quality().baseline_iterations, 0u);
  Vec b = consistent_rhs(g.n, 47);
  EdgeList ref = apply_deltas_reference(
      g.edges, {{e0.u, e0.v, 2.0}, {e1.u, e1.v, 3.0}, {e0.u, e0.v, 1.5}});
  Vec x = fresh.solve(b).value();
  EXPECT_LE(rel_residual(g.n, ref, x, b), kResidualHeadroom);
}

TEST(Update, QualityMonitorTracksDrift) {
  GeneratedGraph g = grid2d(10, 10);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  EXPECT_EQ(setup.quality().baseline_iterations, 0u);
  Vec b = consistent_rhs(g.n, 48);
  (void)setup.solve(b).value();
  SetupQuality q0 = setup.quality();
  EXPECT_GT(q0.baseline_iterations, 0u);
  EXPECT_EQ(q0.baseline_iterations, q0.last_iterations);
  EXPECT_DOUBLE_EQ(q0.drift, 1.0);
  // A violent weight perturbation leaves the stale chain preconditioning a
  // very different matrix: the fp64 outer CG still converges, but needs
  // more iterations — exactly what drift measures.  The baseline carries
  // over from the pre-update setup (same chain).
  std::vector<EdgeDelta> deltas;
  for (std::size_t i = 0; i < g.edges.size(); i += 2) {
    const Edge& e = g.edges[i];
    deltas.push_back({e.u, e.v, e.w * 1e3});
  }
  SolverSetup updated = setup.update(deltas).value();
  EXPECT_EQ(updated.quality().baseline_iterations, q0.baseline_iterations);
  (void)updated.solve(b).value();
  SetupQuality q1 = updated.quality();
  EXPECT_GT(q1.last_iterations, q1.baseline_iterations);
  EXPECT_GT(q1.drift, 1.0);
}

// ---------------------------------------------------------------------------
// Snapshot format v3: a snapshot taken AFTER updates reloads bitwise —
// including update_seq, the quality counters, and chain staleness.

TEST(UpdateSnapshot, UpdatedSetupRoundTripsBitwise) {
  GeneratedGraph g = grid2d(9, 9);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  Vec b = consistent_rhs(g.n, 49);
  (void)setup.solve(b).value();  // record the fresh-chain baseline
  Edge e0 = g.edges.front();
  SolverSetup updated = setup.update({{e0.u, e0.v, e0.w * 8}}).value();
  (void)updated.solve(b).value();  // record post-update last_iterations
  SetupQuality q = updated.quality();
  ASSERT_GT(updated.update_seq(), 0u);
  ASSERT_GT(q.stale_components, 0u);

  std::string dir = ::testing::TempDir();
  std::string path1 =
      dir + "parsdd_upd_" + std::to_string(::getpid()) + "_a.snap";
  std::string path2 =
      dir + "parsdd_upd_" + std::to_string(::getpid()) + "_b.snap";
  ASSERT_TRUE(updated.Save(path1).ok());
  SolverSetup loaded = SolverSetup::Load(path1).value();
  // v3 carries the full dynamic state.
  EXPECT_EQ(loaded.update_seq(), updated.update_seq());
  EXPECT_EQ(loaded.quality().baseline_iterations, q.baseline_iterations);
  EXPECT_EQ(loaded.quality().last_iterations, q.last_iterations);
  EXPECT_EQ(loaded.quality().stale_components, q.stale_components);
  // Bitwise solve fidelity and bitwise re-save fidelity.
  Vec x0 = updated.solve(b).value();
  Vec x1 = loaded.solve(b).value();
  ASSERT_EQ(x0.size(), x1.size());
  EXPECT_EQ(std::memcmp(x0.data(), x1.data(), x0.size() * sizeof(double)), 0);
  ASSERT_TRUE(loaded.Save(path2).ok());
  EXPECT_EQ(test_util::file_bytes(path1), test_util::file_bytes(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// ---------------------------------------------------------------------------
// SolverService integration.

TEST(ServiceUpdate, WeightOnlyAppliesSynchronouslyWithNoRebuild) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  SetupInfo before = service.info(h).value();
  ASSERT_NE(before.fingerprint_lo | before.fingerprint_hi, 0u);
  EXPECT_EQ(before.update_seq, 0u);

  Edge e0 = g.edges.front();
  std::vector<EdgeDelta> deltas = {{e0.u, e0.v, e0.w * 4}};
  UpdateAck ack = service.update(h, deltas).value();
  EXPECT_EQ(ack.tier, UpdateTier::kStaleChain);
  EXPECT_FALSE(ack.deferred);
  EXPECT_FALSE(ack.rebuild_scheduled);
  EXPECT_EQ(ack.update_seq, 1u);

  SetupInfo after = service.info(h).value();
  EXPECT_EQ(after.update_seq, 1u);
  EXPECT_GT(after.stale_components, 0u);
  // The fingerprint extended: the updated handle can never alias the
  // pre-update cache entry.
  EXPECT_TRUE(after.fingerprint_lo != before.fingerprint_lo ||
              after.fingerprint_hi != before.fingerprint_hi);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.rebuilds_completed, 0u);
  EXPECT_EQ(stats.rebuilds_in_flight, 0u);

  EdgeList ref = apply_deltas_reference(g.edges, deltas);
  Vec b = consistent_rhs(g.n, 50);
  Vec x = service.submit(h, b).get().value().x;
  EXPECT_LE(rel_residual(g.n, ref, x, b), kResidualHeadroom);
}

TEST(ServiceUpdate, StructuralSwapsAsyncWithZeroFailedSolves) {
  ServiceOptions sopts;
  sopts.workers = 2;
  SolverService service(sopts);
  GeneratedGraph g = grid2d(12, 12);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  Vec b = consistent_rhs(g.n, 51);

  // Keep solves in flight across the update and the swap.
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(service.submit(h, b));

  std::vector<EdgeDelta> deltas = {{0, 27, 2.0}};  // intra-component insert
  UpdateAck ack = service.update(h, deltas).value();
  EXPECT_TRUE(ack.rebuild_scheduled);

  for (int i = 0; i < 16; ++i) futures.push_back(service.submit(h, b));
  for (auto& f : futures) {
    StatusOr<SolveResult> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().to_string();
  }
  service.drain();  // waits for the rebuild swap too

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.rebuilds_completed, 1u);
  EXPECT_EQ(stats.rebuilds_in_flight, 0u);
  EXPECT_GE(stats.updates_applied, 1u);
  SetupInfo info = service.info(h).value();
  EXPECT_EQ(info.update_seq, 1u);
  EXPECT_EQ(info.stale_components, 0u);

  // Post-swap solves answer for the UPDATED graph.
  EdgeList ref = apply_deltas_reference(g.edges, deltas);
  Vec x = service.submit(h, b).get().value().x;
  EXPECT_LE(rel_residual(g.n, ref, x, b), kResidualHeadroom);
}

TEST(ServiceUpdate, CacheNeverServesUpdatedSetup) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h1 = service.register_laplacian(g.n, g.edges).value();
  Edge e0 = g.edges.front();
  std::vector<EdgeDelta> deltas = {{e0.u, e0.v, e0.w * 100}};
  ASSERT_TRUE(service.update(h1, deltas).ok());

  // Registering the ORIGINAL graph again must hit the cache with the
  // pristine pre-update setup — never the updated one.
  SetupHandle h2 = service.register_laplacian(g.n, g.edges).value();
  EXPECT_EQ(service.stats().setup_cache_hits, 1u);
  SetupInfo i1 = service.info(h1).value();
  SetupInfo i2 = service.info(h2).value();
  EXPECT_EQ(i2.update_seq, 0u);
  EXPECT_TRUE(i1.fingerprint_lo != i2.fingerprint_lo ||
              i1.fingerprint_hi != i2.fingerprint_hi);

  // h2 answers bitwise as a from-scratch build of the original graph.
  Vec b = consistent_rhs(g.n, 52);
  Vec x2 = service.submit(h2, b).get().value().x;
  SolverSetup fresh = SolverSetup::for_laplacian(g.n, g.edges);
  Vec xf = fresh.solve(b).value();
  ASSERT_EQ(x2.size(), xf.size());
  EXPECT_EQ(std::memcmp(x2.data(), xf.data(), x2.size() * sizeof(double)), 0);
  // And h1 answers for the updated graph (the two genuinely differ).
  EdgeList ref = apply_deltas_reference(g.edges, deltas);
  Vec x1 = service.submit(h1, b).get().value().x;
  EXPECT_LE(rel_residual(g.n, ref, x1, b), kResidualHeadroom);
  EXPECT_NE(std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(double)), 0);
}

TEST(ServiceUpdate, QualityMonitorSchedulesRebuild) {
  ServiceOptions sopts;
  sopts.stale_rebuild_factor = 1.05;  // low threshold: trigger reliably
  SolverService service(sopts);
  GeneratedGraph g = grid2d(10, 10);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  Vec b = consistent_rhs(g.n, 53);
  // Record the fresh-chain baseline.
  ASSERT_TRUE(service.submit(h, b).get().ok());
  // Violent weight-only perturbation: stale chain, high drift.
  std::vector<EdgeDelta> deltas;
  for (std::size_t i = 0; i < g.edges.size(); i += 2) {
    const Edge& e = g.edges[i];
    deltas.push_back({e.u, e.v, e.w * 1e3});
  }
  UpdateAck ack = service.update(h, deltas).value();
  EXPECT_EQ(ack.tier, UpdateTier::kStaleChain);
  // The next solves run on the stale chain, measure the drift, and the
  // monitor schedules the async refresh.
  for (int i = 0; i < 4 && service.stats().quality_rebuilds == 0; ++i) {
    ASSERT_TRUE(service.submit(h, b).get().ok());
    service.drain();
  }
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.quality_rebuilds, 1u);
  EXPECT_GE(stats.rebuilds_completed, 1u);
  SetupInfo info = service.info(h).value();
  EXPECT_EQ(info.stale_components, 0u);  // refreshed chains
  EXPECT_EQ(info.update_seq, deltas.size());
  // Still serving the updated graph, now on fresh chains.
  EdgeList ref = apply_deltas_reference(g.edges, deltas);
  Vec x = service.submit(h, b).get().value().x;
  EXPECT_LE(rel_residual(g.n, ref, x, b), kResidualHeadroom);
}

TEST(ServiceUpdate, ErrorsAreTyped) {
  SolverService service;
  GeneratedGraph g = grid2d(4, 4);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  EXPECT_EQ(service.update(SetupHandle{9999}, {{0, 1, 1.0}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.update(h, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.update(h, {{0, g.n, 1.0}}).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Bitwise determinism of post-update setups across pool sizes and SIMD
// backends (subprocess matrix; the env vars are latched on first use, so
// each configuration is a child re-execution, as in test_determinism).

MultiVec update_child_solve() {
  GeneratedGraph g = grid2d(40, 30);
  randomize_weights_log_uniform(g.edges, 1e3, 17);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  // One weight-only batch (stale-chain path), then one structural batch
  // (component rebuild path): the solve below exercises both shared and
  // rebuilt chains.
  Edge e0 = g.edges.front();
  SolverSetup staled = setup.update({{e0.u, e0.v, e0.w * 3}}).value();
  SolverSetup updated = staled.update({{5, 777, 2.0}}).value();
  MultiVec b(g.n, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    b.set_column(c, consistent_rhs(g.n, 19 + c));
  }
  return updated.solve_batch(b).value();
}

std::string self_exe() {
  char buf[4096];
  ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(len, 0);
  buf[len > 0 ? len : 0] = '\0';
  return buf;
}

// Child mode: invoked by the matrix test below with PARSDD_UPDATE_OUT set;
// a plain ctest run executes the workload once as a smoke test.
TEST(UpdateDeterminismChild, SolveAndDump) {
  MultiVec x = update_child_solve();
  ASSERT_GT(x.rows(), 0u);
  const char* out = std::getenv("PARSDD_UPDATE_OUT");
  if (!out) return;
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << out;
  ASSERT_EQ(std::fwrite(x.data().data(), sizeof(double), x.data().size(), f),
            x.data().size());
  std::fclose(f);
}

TEST(UpdateDeterminism, BitwiseAcrossPoolSizesAndBackends) {
  std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  std::string dir = ::testing::TempDir();
  // Pool sizes 1/2/8 crossed with representative SIMD backends
  // (unsupported explicit requests fall back, and the contract is that the
  // bytes agree wherever each lands).
  struct Config {
    int threads;
    const char* simd;
  };
  const Config configs[] = {{1, "scalar"}, {2, "scalar"}, {8, "scalar"},
                            {1, "auto"},   {2, "avx2"},   {8, "avx512"}};
  std::vector<std::vector<std::uint8_t>> results;
  std::vector<std::string> paths;
  for (const Config& c : configs) {
    std::string out = dir + "parsdd_upddet_" + std::to_string(::getpid()) +
                      "_" + std::to_string(c.threads) + "_" + c.simd + ".bin";
    paths.push_back(out);
    std::string cmd = "PARSDD_THREADS=" + std::to_string(c.threads) +
                      " PARSDD_SIMD=" + c.simd + " PARSDD_UPDATE_OUT='" + out +
                      "' '" + exe +
                      "' --gtest_filter=UpdateDeterminismChild.SolveAndDump"
                      " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << "child PARSDD_THREADS=" << c.threads
                     << " PARSDD_SIMD=" << c.simd << " failed";
    results.push_back(test_util::file_bytes(out));
    ASSERT_FALSE(results.back().empty());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << "config (threads=" << configs[i].threads << ", simd="
        << configs[i].simd << ") diverged bitwise from (1, scalar)";
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

}  // namespace
}  // namespace parsdd
