// Kernel backend API: dispatch, per-kernel correctness at awkward shapes,
// and the bitwise-SIMD contract (DESIGN.md §9).
//
// The correctness tests compare every layer-2 entry point against a naive
// serial reference at sizes that are NOT multiples of any vector width
// (rows = 257, k = 5), so remainder handling in the AVX backends is always
// exercised.  The contract tests re-execute this binary per PARSDD_SIMD
// value (the env var is read once per process — same subprocess pattern as
// test_granularity) and demand that a full default-options chain solve is
// byte-identical across {scalar, avx2, avx512, auto}.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "file_test_util.h"
#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/csr_matrix.h"
#include "linalg/laplacian.h"
#include "parallel/rng.h"
#include "solver/solver_setup.h"

namespace parsdd {
namespace {

constexpr std::size_t kRows = 257;  // prime: never a vector-width multiple
constexpr std::size_t kCols = 5;    // odd k: exercises remainder columns

MultiVec filled(std::uint64_t seed, std::size_t rows = kRows,
                std::size_t cols = kCols) {
  Rng rng(seed);
  MultiVec m(rows, cols);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    m.data()[i] = rng.uniform(i) - 0.5;
  }
  return m;
}

Vec filled_vec(std::uint64_t seed, std::size_t n = kRows) {
  Rng rng(seed);
  Vec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(i) - 0.5;
  return v;
}

TEST(BackendSelection, NameMatchesTableAndLevel) {
  const kernels::Backend& b = kernels::backend();
  std::string name = kernels::backend_name();
  EXPECT_STREQ(b.name, name.c_str());
  if (name == "scalar") {
    EXPECT_EQ(b.level, kernels::SimdLevel::kScalar);
  } else if (name == "avx2") {
    EXPECT_EQ(b.level, kernels::SimdLevel::kAvx2);
  } else if (name == "avx512") {
    EXPECT_EQ(b.level, kernels::SimdLevel::kAvx512);
  } else {
    FAIL() << "unknown backend name '" << name << "'";
  }
  // Every function pointer is populated: a partially filled table would
  // crash deep inside a solve instead of here.
  EXPECT_NE(b.axpy_f64, nullptr);
  EXPECT_NE(b.spmm_rows_f64, nullptr);
  EXPECT_NE(b.backsub_cols_f32, nullptr);
}

// ---------------------------------------------------------------------------
// Vec BLAS-1 against naive references.

TEST(VecKernels, MatchNaiveReference) {
  Vec x = filled_vec(1), y0 = filled_vec(2);

  Vec y = y0;
  kernels::axpy(0.75, x, y);
  for (std::size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(y[i], y0[i] + 0.75 * x[i]) << i;
  }

  y = y0;
  kernels::xpay(x, -1.25, y);
  for (std::size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(y[i], x[i] + -1.25 * y0[i]) << i;
  }

  double d = 0.0, s = 0.0;
  for (std::size_t i = 0; i < kRows; ++i) {
    d += x[i] * y0[i];  // serial chain: must match exactly, any backend
    s += x[i];
  }
  EXPECT_EQ(kernels::dot(x, y0), d);
  EXPECT_EQ(kernels::sum(x), s);
  EXPECT_EQ(kernels::norm2(x), std::sqrt(kernels::dot(x, x)));

  y = y0;
  kernels::scale(3.0, y);
  for (std::size_t i = 0; i < kRows; ++i) ASSERT_EQ(y[i], 3.0 * y0[i]) << i;

  Vec diff = kernels::subtract(x, y0);
  for (std::size_t i = 0; i < kRows; ++i) ASSERT_EQ(diff[i], x[i] - y0[i]);

  y = y0;
  kernels::project_out_constant(y);
  double mean = s / static_cast<double>(kRows);
  (void)mean;  // projection subtracts y's own mean, checked via sum ~ 0
  EXPECT_NEAR(kernels::sum(y), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Column kernels against naive references, with and without masks.

TEST(ColKernels, AxpyXpayScaleCopyMatchNaive) {
  MultiVec x = filled(10), y0 = filled(11);
  ColScalars a = {0.5, -2.0, 1.0 / 3.0, 0.0, 7.25};

  MultiVec y = y0;
  kernels::axpy_cols(a, x, y);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ASSERT_EQ(y.at(i, c), y0.at(i, c) + a[c] * x.at(i, c)) << i << "," << c;
    }
  }

  y = y0;
  kernels::xpay_cols(x, a, y);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ASSERT_EQ(y.at(i, c), x.at(i, c) + a[c] * y0.at(i, c)) << i << "," << c;
    }
  }

  y = y0;
  kernels::scale_cols(a, y);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ASSERT_EQ(y.at(i, c), a[c] * y0.at(i, c));
    }
  }

  y.assign(kRows, kCols, 0.0);
  kernels::copy_cols(x, y);
  EXPECT_EQ(y.data(), x.data());
}

TEST(ColKernels, ReductionsMatchSerialChain) {
  MultiVec x = filled(20), y = filled(21), z = filled(22);
  ColScalars dot_ref(kCols, 0.0), diff_ref(kCols, 0.0), sum_ref(kCols, 0.0);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      dot_ref[c] += x.at(i, c) * y.at(i, c);
      diff_ref[c] += z.at(i, c) * (x.at(i, c) - y.at(i, c));
      sum_ref[c] += x.at(i, c);
    }
  }
  // kRows < kDefaultGrain: one canonical block, so the kernel's reduction
  // chain is the serial chain and equality is exact.
  EXPECT_EQ(kernels::dot_cols(x, y), dot_ref);
  EXPECT_EQ(kernels::dot_diff_cols(z, x, y), diff_ref);
  EXPECT_EQ(kernels::sum_cols(x), sum_ref);
  ColScalars n2 = kernels::norm2_cols(x);
  ColScalars self = kernels::dot_cols(x, x);
  for (std::size_t c = 0; c < kCols; ++c) {
    ASSERT_EQ(n2[c], std::sqrt(self[c]));
  }
}

TEST(ColKernels, MaskedColumnsBitwiseUntouched) {
  MultiVec x = filled(30), y0 = filled(31);
  ColScalars a = {1.5, 2.5, -0.5, 4.0, 0.125};
  ColMask mask = {1, 0, 1, 0, 1};

  MultiVec y = y0;
  kernels::axpy_cols(a, x, y, &mask);
  MultiVec y2 = y0;
  kernels::scale_cols(a, y2, &mask);
  MultiVec y3 = y0;
  kernels::project_out_constant_cols(y3, &mask);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      if (mask[c]) {
        ASSERT_EQ(y.at(i, c), y0.at(i, c) + a[c] * x.at(i, c));
      } else {
        // Bitwise untouched, not merely numerically equal.
        ASSERT_EQ(std::memcmp(&y.at(i, c), &y0.at(i, c), sizeof(double)), 0);
        ASSERT_EQ(std::memcmp(&y2.at(i, c), &y0.at(i, c), sizeof(double)), 0);
        ASSERT_EQ(std::memcmp(&y3.at(i, c), &y0.at(i, c), sizeof(double)), 0);
      }
    }
  }
}

TEST(ColKernels, ProjectOutConstantZeroesColumnMeans) {
  MultiVec x = filled(40);
  kernels::project_out_constant_cols(x);
  ColScalars sums = kernels::sum_cols(x);
  for (std::size_t c = 0; c < kCols; ++c) {
    EXPECT_NEAR(sums[c], 0.0, 1e-12) << c;
  }
}

// ---------------------------------------------------------------------------
// Sparse kernels against a naive triple loop.

TEST(SparseKernels, SpmvSpmmMatchNaive) {
  GeneratedGraph g = grid2d(13, 11);  // odd dims: ragged row lengths
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  const std::size_t* off = lap.offsets();
  const std::uint32_t* col = lap.cols();
  const double* val = lap.vals();

  Vec x = filled_vec(50, g.n);
  Vec y(g.n, 0.0);
  kernels::spmv(off, col, val, g.n, lap.num_nonzeros(), x, y);
  for (std::size_t i = 0; i < g.n; ++i) {
    double acc = 0.0;
    for (std::size_t p = off[i]; p < off[i + 1]; ++p) {
      acc += val[p] * x[col[p]];
    }
    ASSERT_EQ(y[i], acc) << i;
  }

  MultiVec xm = filled(51, g.n, kCols);
  MultiVec ym(g.n, kCols, 0.0);
  kernels::spmm(off, col, val, g.n, lap.num_nonzeros(), xm, ym);
  for (std::size_t i = 0; i < g.n; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      double acc = 0.0;
      for (std::size_t p = off[i]; p < off[i + 1]; ++p) {
        acc += val[p] * xm.at(col[p], c);
      }
      ASSERT_EQ(ym.at(i, c), acc) << i << "," << c;
    }
  }
}

TEST(RowKernels, GatherScatterRoundTrip) {
  MultiVec src = filled(60);
  // A fixed permutation: gather through it, scatter back, recover src.
  std::vector<std::uint32_t> perm(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    perm[i] = static_cast<std::uint32_t>((i * 131) % kRows);  // 131 coprime
  }
  MultiVec gathered(kRows, kCols);
  kernels::gather_rows(src, perm.data(), gathered);
  for (std::size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(std::memcmp(gathered.row(i), src.row(perm[i]),
                          kCols * sizeof(double)),
              0);
  }
  MultiVec back(kRows, kCols, 0.0);
  kernels::scatter_rows(gathered, perm.data(), back);
  EXPECT_EQ(back.data(), src.data());
}

// ---------------------------------------------------------------------------
// f32 twins.

TEST(F32Kernels, NarrowWidenRoundTripAndColOps) {
  MultiVec x64 = filled(70);
  MultiVec32 x32, y32;
  kernels::narrow(x64, x32);
  ASSERT_EQ(x32.rows(), kRows);
  ASSERT_EQ(x32.cols(), kCols);
  for (std::size_t i = 0; i < kRows * kCols; ++i) {
    ASSERT_EQ(x32.data()[i], static_cast<float>(x64.data()[i]));
  }
  MultiVec wide;
  kernels::widen(x32, wide);
  for (std::size_t i = 0; i < kRows * kCols; ++i) {
    ASSERT_EQ(wide.data()[i], static_cast<double>(x32.data()[i]));
  }

  y32.assign(kRows, kCols, 0.0f);
  kernels::copy_cols32(x32, y32);
  EXPECT_EQ(y32.data(), x32.data());

  std::vector<float> a = {0.5f, -2.0f, 0.25f, 3.0f, -1.0f};
  MultiVec32 y0 = x32;
  kernels::axpy_cols32(a, x32, y32);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ASSERT_EQ(y32.row(i)[c], x32.row(i)[c] + a[c] * y0.row(i)[c]);
    }
  }

  std::vector<float> dots = kernels::dot_cols32(x32, x32);
  std::vector<float> ref(kCols, 0.0f);
  for (std::size_t i = 0; i < kRows; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      ref[c] += x32.row(i)[c] * x32.row(i)[c];
    }
  }
  EXPECT_EQ(dots, ref);
}

TEST(F32Kernels, Spmm32MatchesNaive) {
  GeneratedGraph g = grid2d(9, 7);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  std::vector<float> val32(lap.vals(), lap.vals() + lap.num_nonzeros());
  MultiVec x64 = filled(80, g.n, kCols);
  MultiVec32 x32, y32;
  kernels::narrow(x64, x32);
  y32.assign(g.n, kCols, 0.0f);
  kernels::spmm32(lap.offsets(), lap.cols(), val32.data(), g.n,
                  lap.num_nonzeros(), x32, y32);
  for (std::size_t i = 0; i < g.n; ++i) {
    for (std::size_t c = 0; c < kCols; ++c) {
      float acc = 0.0f;
      for (std::size_t p = lap.offsets()[i]; p < lap.offsets()[i + 1]; ++p) {
        acc += val32[p] * x32.row(lap.cols()[p])[c];
      }
      ASSERT_EQ(y32.row(i)[c], acc) << i << "," << c;
    }
  }
}

// ---------------------------------------------------------------------------
// The bitwise-SIMD contract: a full chain solve is byte-identical under
// every PARSDD_SIMD setting.  The env var is latched on first backend()
// use, so each configuration runs in a child process.

// Child mode: default-options chain solve on a fixed grid, raw solution
// bytes dumped to the env-named file.  Also a smoke test under plain ctest.
TEST(KernelsChild, SolveAndDump) {
  GeneratedGraph g = grid2d(24, 24);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  Vec b = random_unit_like(g.n, 777);
  kernels::project_out_constant(b);
  StatusOr<Vec> x = setup.solve(b);
  ASSERT_TRUE(x.ok()) << x.status().to_string();

  const char* out = std::getenv("PARSDD_KERNELS_OUT");
  if (!out) return;
  std::FILE* f = std::fopen(out, "wb");
  ASSERT_NE(f, nullptr) << out;
  ASSERT_EQ(std::fwrite(x->data(), sizeof(double), x->size(), f), x->size());
  std::fclose(f);
}

std::string self_exe() {
  char buf[4096];
  ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  EXPECT_GT(len, 0);
  buf[len > 0 ? len : 0] = '\0';
  return buf;
}

using test_util::file_bytes;

TEST(Kernels, BackendsBitwiseIdentical) {
  std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  std::string dir = ::testing::TempDir();
  // Explicit requests the CPU cannot honor fall back (with a stderr note)
  // to the best supported level, so every config runs everywhere — and the
  // contract says the bytes agree regardless of where each one lands.
  const char* configs[] = {"scalar", "avx2", "avx512", "auto"};
  std::vector<std::vector<std::uint8_t>> results;
  std::vector<std::string> paths;
  for (const char* simd : configs) {
    std::string out = dir + "parsdd_kern_" + std::to_string(::getpid()) +
                      "_" + simd + ".bin";
    paths.push_back(out);
    std::string cmd = std::string("PARSDD_SIMD=") + simd +
                      " PARSDD_KERNELS_OUT='" + out + "' '" + exe +
                      "' --gtest_filter=KernelsChild.SolveAndDump"
                      " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    ASSERT_EQ(rc, 0) << "child PARSDD_SIMD=" << simd << " failed";
    results.push_back(file_bytes(out));
    ASSERT_FALSE(results.back().empty());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i])
        << "PARSDD_SIMD=" << configs[i]
        << " diverged bitwise from PARSDD_SIMD=scalar";
  }
  for (const std::string& p : paths) std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// Mixed precision: the opt-in path converges to the f64 tolerance, and the
// default path is untouched by its existence.

TEST(MixedPrecision, F32RefinedMeetsF64Tolerance) {
  GeneratedGraph g = grid2d(20, 20);
  SddSolverOptions opts;
  opts.precision = Precision::kF32Refined;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, opts);
  EXPECT_EQ(setup.precision(), Precision::kF32Refined);
  Vec b = random_unit_like(g.n, 99);
  kernels::project_out_constant(b);
  StatusOr<Vec> x = setup.solve(b);
  ASSERT_TRUE(x.ok()) << x.status().to_string();
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel =
      kernels::norm2(kernels::subtract(lap.apply(*x), b)) / kernels::norm2(b);
  // The outer iteration is full fp64, so the f32 chain must still reach
  // the standard relative-residual target.
  EXPECT_LE(rel, 10 * opts.tolerance);
}

TEST(MixedPrecision, DefaultIsF64Bitwise) {
  SddSolverOptions opts;
  EXPECT_EQ(opts.precision, Precision::kF64Bitwise);
  GeneratedGraph g = grid2d(6, 6);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  EXPECT_EQ(setup.precision(), Precision::kF64Bitwise);
}

TEST(MixedPrecision, SnapshotRoundTripsPrecision) {
  GeneratedGraph g = grid2d(8, 8);
  SddSolverOptions opts;
  opts.precision = Precision::kF32Refined;
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges, opts);
  test_util::TempFile snap("kernels_precision");
  ASSERT_TRUE(setup.Save(snap.path()).ok());
  StatusOr<SolverSetup> loaded = SolverSetup::Load(snap.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->precision(), Precision::kF32Refined);
  // The reloaded setup solves through the f32 chain too.
  Vec b = random_unit_like(g.n, 5);
  kernels::project_out_constant(b);
  StatusOr<Vec> x = loaded->solve(b);
  ASSERT_TRUE(x.ok());
}

}  // namespace
}  // namespace parsdd
