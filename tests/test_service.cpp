// SolverService: the async serving front door.
//
// Contracts under test:
//   * registration returns live handles; stale/unknown handles are NotFound;
//   * submit validates dimensions (InvalidArgument) and sheds load beyond
//     max_pending (ResourceExhausted) without crashing or blocking;
//   * every future resolves to the bitwise-identical vector an isolated
//     solve() of the same right-hand side produces, whether or not the
//     dispatcher coalesced it into a wider block;
//   * submit_batch round-trips a whole block;
//   * drain()/destruction answer everything that was accepted.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "service/solver_service.h"
#include "solver/sdd_solver.h"

namespace parsdd {
namespace {

bool bitwise_equal(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(SolverService, RegisterInfoUnregister) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  StatusOr<SetupHandle> h = service.register_laplacian(g.n, g.edges);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->valid());

  StatusOr<SetupInfo> info = service.info(*h);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->dimension, g.n);
  EXPECT_EQ(info->components, 1u);

  EXPECT_TRUE(service.unregister(*h).ok());
  EXPECT_EQ(service.unregister(*h).code(), StatusCode::kNotFound);
  EXPECT_EQ(service.info(*h).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service.submit(*h, Vec(g.n, 0.0)).get().status().code(),
            StatusCode::kNotFound);
}

TEST(SolverService, RegisterRejectsMalformedGraph) {
  SolverService service;
  EdgeList bad = {{0, 7, 1.0}};  // endpoint 7 out of range for n=3
  EXPECT_EQ(service.register_laplacian(3, bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.register_setup(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverService, SubmitValidatesDimensions) {
  SolverService service;
  GeneratedGraph g = grid2d(6, 6);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  EXPECT_EQ(service.submit(h, Vec(g.n + 1, 0.0)).get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.submit_batch(h, MultiVec(g.n, 0)).get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.submit_batch(h, MultiVec(g.n - 1, 2)).get().status().code(),
      StatusCode::kInvalidArgument);
}

TEST(SolverService, RequiredPrecisionRefusedUpFront) {
  SolverService service;
  GeneratedGraph g = grid2d(6, 6);
  SetupHandle h64 = service.register_laplacian(g.n, g.edges).value();
  SddSolverOptions f32_opts;
  f32_opts.precision = Precision::kF32Refined;
  SetupHandle h32 = service.register_laplacian(g.n, g.edges, f32_opts).value();

  EXPECT_EQ(service.info(h64)->precision, Precision::kF64Bitwise);
  EXPECT_EQ(service.info(h32)->precision, Precision::kF32Refined);
  // Differing precision means differing arithmetic: the two registrations
  // must not alias in the setup cache.
  EXPECT_NE(service.info(h64)->precision, service.info(h32)->precision);

  Vec b = random_unit_like(g.n, 3);
  // Mismatched requirement: refused before queueing, typed InvalidArgument.
  EXPECT_EQ(
      service.submit(h64, b, Precision::kF32Refined).get().status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.submit(h32, b, Precision::kF64Bitwise).get().status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(service
                .submit_batch(h64, MultiVec(g.n, 2), Precision::kF32Refined)
                .get()
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Matching or absent requirement: served.
  EXPECT_TRUE(service.submit(h64, b, Precision::kF64Bitwise).get().ok());
  EXPECT_TRUE(service.submit(h32, b, Precision::kF32Refined).get().ok());
  EXPECT_TRUE(service.submit(h32, b).get().ok());
}

TEST(SolverService, SingleSubmitMatchesDirectSolveBitwise) {
  SolverService service;
  GeneratedGraph g = grid2d(12, 12);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  SddSolver direct = SddSolver::for_laplacian(g.n, g.edges);
  Vec b = random_unit_like(g.n, 21);
  StatusOr<SolveResult> res = service.submit(h, b).get();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->stats.converged);
  EXPECT_GE(res->coalesced_cols, 1u);
  EXPECT_TRUE(bitwise_equal(res->x, direct.solve(b).value()));
}

TEST(SolverService, CoalescedSubmitsMatchIndependentSolvesBitwise) {
  // Force maximal coalescing: a long linger and one executor mean the
  // burst below lands in a handful of wide blocks, and the determinism
  // contract says nobody can tell the difference.
  ServiceOptions opts;
  opts.max_batch = 16;
  opts.max_linger_us = 20000;
  SolverService service(opts);
  GeneratedGraph g = grid2d(12, 12);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  SddSolver direct = SddSolver::for_laplacian(g.n, g.edges);

  constexpr std::size_t kReqs = 24;
  std::vector<Vec> rhs;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (std::size_t i = 0; i < kReqs; ++i) {
    rhs.push_back(random_unit_like(g.n, 500 + i));
    futures.push_back(service.submit(h, rhs.back()));
  }
  bool saw_coalesced = false;
  for (std::size_t i = 0; i < kReqs; ++i) {
    StatusOr<SolveResult> res = futures[i].get();
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    saw_coalesced |= res->coalesced_cols > 1;
    EXPECT_TRUE(bitwise_equal(res->x, direct.solve(rhs[i]).value()))
        << "request " << i << " (rode in a " << res->coalesced_cols
        << "-column block)";
  }
  // With a 20ms linger and a burst submitted faster than one solve, at
  // least one block must have carried more than one column.
  EXPECT_TRUE(saw_coalesced);
  service.drain();  // counters are final only once in-flight accounting is
  ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, kReqs);
  EXPECT_EQ(st.completed, kReqs);
  EXPECT_LT(st.dispatched_blocks, static_cast<std::uint64_t>(kReqs));
}

TEST(SolverService, SubmitBatchRoundTrips) {
  SolverService service;
  GeneratedGraph g = grid2d(10, 10);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  SddSolver direct = SddSolver::for_laplacian(g.n, g.edges);
  std::vector<Vec> cols;
  for (std::size_t c = 0; c < 4; ++c) {
    cols.push_back(random_unit_like(g.n, 70 + c));
  }
  MultiVec b = MultiVec::from_columns(cols);
  StatusOr<BatchSolveResult> res = service.submit_batch(h, b).get();
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->x.cols(), cols.size());
  ASSERT_EQ(res->report.column_stats.size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    EXPECT_TRUE(res->report.column_stats[c].converged);
    EXPECT_TRUE(bitwise_equal(res->x.column(c), direct.solve(cols[c]).value()))
        << "column " << c;
  }
}

TEST(SolverService, BackpressureReturnsResourceExhausted) {
  ServiceOptions opts;
  opts.max_pending = 4;
  opts.max_linger_us = 50000;  // hold the first block open so the queue fills
  opts.max_batch = 4;
  SolverService service(opts);
  GeneratedGraph g = grid2d(10, 10);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  std::vector<std::future<StatusOr<SolveResult>>> futures;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(service.submit(h, Vec(g.n, 1.0)));
  }
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();
    if (!res.ok()) {
      EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // 64 submits against a 4-deep queue faster than any solve completes:
  // some must be shed, and the shed ones are typed, not crashed.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(service.stats().rejected, rejected);
}

TEST(SolverService, UncoalescedModeStillCorrect) {
  ServiceOptions opts;
  opts.coalesce = false;
  SolverService service(opts);
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();
  SddSolver direct = SddSolver::for_laplacian(g.n, g.edges);
  std::vector<Vec> rhs;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (std::size_t i = 0; i < 8; ++i) {
    rhs.push_back(random_unit_like(g.n, 900 + i));
    futures.push_back(service.submit(h, rhs.back()));
  }
  for (std::size_t i = 0; i < 8; ++i) {
    StatusOr<SolveResult> res = futures[i].get();
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->coalesced_cols, 1u);
    EXPECT_TRUE(bitwise_equal(res->x, direct.solve(rhs[i]).value()));
  }
}

TEST(SolverService, StatsGaugesTrackQueueAndInFlight) {
  ServiceOptions opts;
  opts.max_linger_us = 200000;  // park the burst so the sample below sees it
  opts.max_batch = 4;
  SolverService service(opts);
  GeneratedGraph g = grid2d(8, 8);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  ServiceStats idle = service.stats();
  EXPECT_EQ(idle.queue_depth, 0u);
  EXPECT_EQ(idle.in_flight_cols, 0u);
  EXPECT_EQ(idle.in_flight_blocks, 0u);
  EXPECT_TRUE(idle.per_handle_pending.empty());

  constexpr std::size_t kReqs = 6;
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  for (std::size_t i = 0; i < kReqs; ++i) {
    futures.push_back(service.submit(h, Vec(g.n, 1.0)));
  }
  ServiceStats busy = service.stats();
  // Conservation: every accepted request is queued, in flight, or already
  // answered at the instant of the sample — never unaccounted for.
  EXPECT_EQ(busy.queue_depth + busy.in_flight_cols + busy.completed, kReqs);
  EXPECT_LE(busy.in_flight_blocks, busy.in_flight_cols);
  std::uint64_t per_handle_total = 0;
  for (const auto& [id, pending] : busy.per_handle_pending) {
    EXPECT_EQ(id, h.id);
    per_handle_total += pending;
  }
  EXPECT_EQ(per_handle_total, busy.queue_depth);

  for (auto& f : futures) ASSERT_TRUE(f.get().ok());
  service.drain();
  ServiceStats done = service.stats();
  EXPECT_EQ(done.queue_depth, 0u);
  EXPECT_EQ(done.in_flight_cols, 0u);
  EXPECT_EQ(done.in_flight_blocks, 0u);
  EXPECT_TRUE(done.per_handle_pending.empty());
  EXPECT_EQ(done.completed, kReqs);
}

TEST(SolverService, ShutdownWithPendingNeverHangsOrDrops) {
  // Tighter variant of the destruction test below: with load shedding in
  // play, every accepted future must still resolve — OK or typed — when
  // the service dies mid-burst.  (TSan lane covers the teardown races.)
  GeneratedGraph g = grid2d(10, 10);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  {
    ServiceOptions opts;
    opts.max_linger_us = 50000;
    opts.max_pending = 8;
    SolverService service(opts);
    SetupHandle h = service.register_laplacian(g.n, g.edges).value();
    for (std::size_t i = 0; i < 32; ++i) {
      futures.push_back(service.submit(h, random_unit_like(g.n, 800 + i)));
    }
  }
  std::size_t answered = 0, typed = 0;
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();
    if (res.ok()) {
      EXPECT_TRUE(res->stats.converged);
      ++answered;
    } else {
      EXPECT_TRUE(res.status().code() == StatusCode::kResourceExhausted ||
                  res.status().code() == StatusCode::kUnavailable)
          << res.status().to_string();
      ++typed;
    }
  }
  EXPECT_EQ(answered + typed, 32u);
  EXPECT_GT(answered, 0u);
}

TEST(SolverService, DestructionAnswersEverythingAccepted) {
  GeneratedGraph g = grid2d(10, 10);
  std::vector<std::future<StatusOr<SolveResult>>> futures;
  {
    ServiceOptions opts;
    opts.max_linger_us = 10000;
    SolverService service(opts);
    SetupHandle h = service.register_laplacian(g.n, g.edges).value();
    for (std::size_t i = 0; i < 12; ++i) {
      futures.push_back(service.submit(h, random_unit_like(g.n, 40 + i)));
    }
    // Service destroyed here with requests still queued/lingering.
  }
  for (auto& f : futures) {
    StatusOr<SolveResult> res = f.get();  // must not hang on a broken promise
    ASSERT_TRUE(res.ok()) << res.status().to_string();
    EXPECT_TRUE(res->stats.converged);
  }
}

TEST(SolverService, AdoptsSharedSetupFromSddSolver) {
  SolverService service;
  GeneratedGraph g = grid2d(8, 8);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  SetupHandle h = service.register_setup(solver.shared_setup()).value();
  Vec b = random_unit_like(g.n, 77);
  StatusOr<SolveResult> res = service.submit(h, b).get();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(bitwise_equal(res->x, solver.solve(b).value()));
}

TEST(SolverService, GrembanSddHandleServesRequests) {
  SolverService service;
  std::vector<Triplet> ts = {
      {0, 0, 3.0},  {0, 1, 1.0},  {1, 0, 1.0},  {1, 1, 4.0},
      {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 3.0},
  };
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  SetupHandle h = service.register_sdd(a).value();
  EXPECT_EQ(service.info(h).value().dimension, 3u);
  SddSolver direct = SddSolver::for_sdd(a);
  Vec b = {1.0, 0.0, -1.0};
  StatusOr<SolveResult> res = service.submit(h, b).get();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(bitwise_equal(res->x, direct.solve(b).value()));
}

TEST(Status, BasicsAndStatusOr) {
  EXPECT_TRUE(OkStatus().ok());
  Status s = InvalidArgumentError("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad k");

  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  StatusOr<int> e = NotFoundError("gone");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);

  // Copy/move keep the active member straight.
  StatusOr<std::vector<int>> a = std::vector<int>{1, 2, 3};
  StatusOr<std::vector<int>> b = a;
  EXPECT_EQ(b.value().size(), 3u);
  StatusOr<std::vector<int>> c = std::move(a);
  EXPECT_EQ(c.value().size(), 3u);
  c = NotFoundError("replaced");
  EXPECT_FALSE(c.ok());
  c = std::vector<int>{4};
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)[0], 4);
}

}  // namespace
}  // namespace parsdd
