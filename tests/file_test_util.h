// Shared file fixtures for the persistence-adjacent tests: whole-file
// read/write plus a unique, self-cleaning temp path.  One definition, so a
// fix (e.g. to error handling) reaches every test that shuttles bytes
// through disk.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace parsdd::test_util {

// Unique-per-test temp path, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "parsdd_" + tag + "_" +
              std::to_string(::getpid()) + ".bin") {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

inline std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> data;
  if (!f) return data;
  std::fseek(f, 0, SEEK_END);
  data.resize(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  return data;
}

inline void write_bytes(const std::string& path,
                        const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

}  // namespace parsdd::test_util
