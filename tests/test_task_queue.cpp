// Shutdown-edge coverage for TaskQueue (src/parallel/task_queue.h).
//
// The dispatcher/executor handoff in SolverService leans on three promises
// that only bite during teardown: post() after stop() must refuse cleanly,
// drain() must observe queued *and* in-flight work, and the destructor must
// finish whatever was accepted before joining.  These tests run under the
// TSan lane in CI (see .github/workflows/ci.yml), which is where a missed
// wakeup or an unlocked touch of the FIFO actually shows up.

#include "parallel/task_queue.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

namespace parsdd {
namespace {

// Manual-reset gate so a test can hold an executor mid-task.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(TaskQueueTest, ExecutesEverythingPosted) {
  std::atomic<int> ran{0};
  TaskQueue queue(2);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(queue.post([&ran] { ran.fetch_add(1); }));
  }
  queue.drain();
  EXPECT_EQ(ran.load(), 64);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(TaskQueueTest, PostAfterStopIsRefusedAndDropped) {
  std::atomic<bool> leaked{false};
  TaskQueue queue(1);
  queue.stop();
  EXPECT_FALSE(queue.post([&leaked] { leaked.store(true); }));
  EXPECT_EQ(queue.pending(), 0u);
  // stop() is idempotent and the destructor may call it again.
  queue.stop();
  EXPECT_FALSE(leaked.load());
}

TEST(TaskQueueTest, StopFinishesQueuedBacklog) {
  // One executor held at the gate while a backlog accumulates; stop() must
  // run the backlog to completion before joining, not abandon it.
  std::atomic<int> ran{0};
  Gate gate;
  TaskQueue queue(1);
  ASSERT_TRUE(queue.post([&] {
    gate.wait();
    ran.fetch_add(1);
  }));
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(queue.post([&ran] { ran.fetch_add(1); }));
  }
  gate.open();
  queue.stop();
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskQueueTest, DrainWaitsForQueuedAndInFlight) {
  std::atomic<int> ran{0};
  Gate gate;
  std::atomic<bool> first_started{false};
  TaskQueue queue(1);
  ASSERT_TRUE(queue.post([&] {
    first_started.store(true);
    gate.wait();
    ran.fetch_add(1);
  }));
  while (!first_started.load()) {
    std::this_thread::yield();
  }
  // First task is in flight (not pending); the rest are queued behind it.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.post([&ran] { ran.fetch_add(1); }));
  }
  EXPECT_EQ(queue.pending(), 5u);
  gate.open();
  queue.drain();
  // drain() returning means empty FIFO *and* idle executors.
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(TaskQueueTest, DestructorCompletesInFlightTasks) {
  std::atomic<int> ran{0};
  {
    TaskQueue queue(4);
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(queue.post([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1);
      }));
    }
    // Destructor runs with tasks queued and in flight.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(TaskQueueTest, DrainOnIdleQueueReturnsImmediately) {
  TaskQueue queue(2);
  queue.drain();  // nothing queued, nothing running
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(TaskQueueTest, PostFromWithinATask) {
  // The service's failure paths re-enter post() from executor context;
  // the queue must not self-deadlock on its own mutex.
  std::atomic<int> ran{0};
  TaskQueue queue(1);
  ASSERT_TRUE(queue.post([&] {
    ran.fetch_add(1);
    queue.post([&ran] { ran.fetch_add(1); });
  }));
  queue.drain();
  EXPECT_EQ(ran.load(), 2);
}

}  // namespace
}  // namespace parsdd
