// CsrMatrix, vector ops, Laplacian assembly, Gremban reduction, dense LDLT.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_ldlt.h"
#include "linalg/gremban.h"
#include "linalg/laplacian.h"
#include "linalg/vector_ops.h"
#include "parallel/rng.h"

namespace parsdd {
namespace {

TEST(VectorOps, BasicIdentities) {
  Vec x = {1, 2, 3}, y = {4, 5, 6};
  kernels::axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{6, 9, 12}));
  EXPECT_DOUBLE_EQ(kernels::dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(kernels::norm2({3, 4}), 5.0);
  Vec z = kernels::subtract(x, x);
  EXPECT_DOUBLE_EQ(kernels::norm2(z), 0.0);
  EXPECT_DOUBLE_EQ(kernels::sum(x), 6.0);
}

TEST(VectorOps, ProjectOutConstant) {
  Vec x = {1, 2, 3, 6};
  kernels::project_out_constant(x);
  EXPECT_NEAR(kernels::sum(x), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, RandomUnitLikeIsMeanZeroUnit) {
  Vec v = random_unit_like(1000, 5);
  EXPECT_NEAR(kernels::sum(v), 0.0, 1e-9);
  EXPECT_NEAR(kernels::norm2(v), 1.0, 1e-12);
}

TEST(CsrMatrix, FromTripletsMergesDuplicates) {
  std::vector<Triplet> ts = {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, 3.0},
                             {0, 0, 4.0}, {1, 1, 5.0}};
  CsrMatrix a = CsrMatrix::from_triplets(2, std::move(ts));
  EXPECT_EQ(a.num_nonzeros(), 4u);
  Vec y = a.apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  Rng rng(3);
  std::uint32_t n = 12;
  std::vector<Triplet> ts;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j <= i; ++j) {
      if (rng.uniform(i * n + j) < 0.4) {
        double v = rng.uniform(1000 + i * n + j) - 0.5;
        ts.push_back({i, j, v});
        if (i != j) ts.push_back({j, i, v});
      }
    }
  }
  CsrMatrix a = CsrMatrix::from_triplets(n, ts);
  auto dense = a.to_dense();
  Vec x(n);
  for (std::uint32_t i = 0; i < n; ++i) x[i] = rng.uniform(i) * 2 - 1;
  Vec y = a.apply(x);
  for (std::uint32_t i = 0; i < n; ++i) {
    double expect = 0;
    for (std::uint32_t j = 0; j < n; ++j) expect += dense[i * n + j] * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
  EXPECT_NEAR(a.quadratic_form(x), kernels::dot(x, y), 1e-12);
}

TEST(CsrMatrix, DiagonalExtraction) {
  std::vector<Triplet> ts = {{0, 0, 2.0}, {1, 1, 3.0}, {0, 1, -1.0},
                             {1, 0, -1.0}};
  CsrMatrix a = CsrMatrix::from_triplets(2, std::move(ts));
  Vec d = a.diagonal();
  EXPECT_EQ(d, (Vec{2.0, 3.0}));
}

TEST(CsrMatrix, SddChecks) {
  // Laplacian: SDD and Laplacian.
  CsrMatrix lap = laplacian_from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_TRUE(lap.is_sdd());
  EXPECT_TRUE(lap.is_laplacian());
  // SDD but not Laplacian (positive off-diagonal).
  std::vector<Triplet> ts = {{0, 0, 2.0}, {1, 1, 2.0}, {0, 1, 1.0},
                             {1, 0, 1.0}};
  CsrMatrix sdd = CsrMatrix::from_triplets(2, std::move(ts));
  EXPECT_TRUE(sdd.is_sdd());
  EXPECT_FALSE(sdd.is_laplacian());
  // Not SDD.
  std::vector<Triplet> bad = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, -2.0},
                              {1, 0, -2.0}};
  CsrMatrix nb = CsrMatrix::from_triplets(2, std::move(bad));
  EXPECT_FALSE(nb.is_sdd());
  // Asymmetric.
  std::vector<Triplet> asym = {{0, 0, 3.0}, {1, 1, 3.0}, {0, 1, -1.0}};
  CsrMatrix na = CsrMatrix::from_triplets(2, std::move(asym));
  EXPECT_FALSE(na.is_sdd());
}

TEST(Laplacian, AssemblyAndRoundTrip) {
  EdgeList e = {{0, 1, 2.0}, {1, 2, 3.0}};
  CsrMatrix lap = laplacian_from_edges(3, e);
  Vec ones(3, 1.0);
  Vec y = lap.apply(ones);
  EXPECT_NEAR(kernels::norm2(y), 0.0, 1e-12);  // null space
  EdgeList back = edges_from_laplacian(lap);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].w, 2.0);
  EXPECT_DOUBLE_EQ(back[1].w, 3.0);
}

TEST(Laplacian, QuadraticFormMatchesEdgeFormula) {
  GeneratedGraph g = erdos_renyi(40, 120, 8);
  randomize_weights_log_uniform(g.edges, 5.0, 1);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec x = random_unit_like(g.n, 2);
  EXPECT_NEAR(lap.quadratic_form(x), laplacian_quadratic_form(g.edges, x),
              1e-10);
  EXPECT_NEAR(a_norm(lap, x), std::sqrt(lap.quadratic_form(x)), 1e-10);
}

TEST(DenseLdlt, SolvesSpdSystem) {
  // A = M^T M + I (SPD).
  std::uint32_t n = 8;
  Rng rng(4);
  std::vector<double> msrc(n * n);
  for (auto& v : msrc) v = rng.uniform(&v - msrc.data()) - 0.5;
  std::vector<double> a(n * n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      for (std::uint32_t k = 0; k < n; ++k) {
        a[i * n + j] += msrc[k * n + i] * msrc[k * n + j];
      }
    }
    a[i * n + i] += 1.0;
  }
  auto a_copy = a;
  DenseLdlt f = DenseLdlt::factor_spd(std::move(a), n);
  Vec b(n);
  for (std::uint32_t i = 0; i < n; ++i) b[i] = rng.uniform(100 + i) - 0.5;
  Vec x = f.solve(b);
  for (std::uint32_t i = 0; i < n; ++i) {
    double ax = 0;
    for (std::uint32_t j = 0; j < n; ++j) ax += a_copy[i * n + j] * x[j];
    EXPECT_NEAR(ax, b[i], 1e-9);
  }
}

TEST(DenseLdlt, ThrowsOnIndefinite) {
  std::vector<double> a = {0.0, 1.0, 1.0, 0.0};  // indefinite
  EXPECT_THROW(DenseLdlt::factor_spd(std::move(a), 2), std::domain_error);
}

TEST(DenseLdlt, LaplacianGroundedSolve) {
  GeneratedGraph g = grid2d(6, 5);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt f = DenseLdlt::factor_laplacian(lap);
  Vec b = random_unit_like(g.n, 6);
  Vec x = f.solve(b);
  EXPECT_NEAR(kernels::sum(x), 0.0, 1e-9);  // pseudo-inverse solution is mean-zero
  Vec ax = lap.apply(x);
  EXPECT_NEAR(kernels::norm2(kernels::subtract(ax, b)) / kernels::norm2(b), 0.0, 1e-10);
}

TEST(Gremban, LaplacianInputDetected) {
  CsrMatrix lap = laplacian_from_edges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  GrembanReduction r = gremban_reduce(lap);
  EXPECT_TRUE(r.was_laplacian);
}

TEST(Gremban, RejectsNonSdd) {
  std::vector<Triplet> bad = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, -2.0},
                              {1, 0, -2.0}};
  CsrMatrix nb = CsrMatrix::from_triplets(2, std::move(bad));
  EXPECT_THROW(gremban_reduce(nb), std::invalid_argument);
}

// Property: solving the double cover reproduces the direct solution of A,
// across random SDD matrices with positive off-diagonals and excess.
class GrembanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrembanProperty, DoubleCoverSolveMatchesDirect) {
  std::uint64_t seed = GetParam();
  Rng rng(seed);
  std::uint32_t n = 10;
  // Random SDD: start from a connected Laplacian, flip some signs, add
  // excess.
  GeneratedGraph g = erdos_renyi(n, 24, seed);
  std::vector<Triplet> ts;
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    const Edge& e = g.edges[i];
    double w = 0.5 + rng.uniform(i);
    double sign = rng.u64(1000 + i) & 1 ? 1.0 : -1.0;
    ts.push_back({e.u, e.v, sign * w});
    ts.push_back({e.v, e.u, sign * w});
    diag[e.u] += w;
    diag[e.v] += w;
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    ts.push_back({v, v, diag[v] + 0.1 + rng.uniform(5000 + v)});
  }
  CsrMatrix a = CsrMatrix::from_triplets(n, std::move(ts));
  ASSERT_TRUE(a.is_sdd());

  // Direct dense solve of A x = b (A is PD thanks to the excess).
  Vec b(n);
  for (std::uint32_t i = 0; i < n; ++i) b[i] = rng.uniform(7000 + i) - 0.5;
  DenseLdlt direct = DenseLdlt::factor_spd(a.to_dense(), n);
  Vec x_direct = direct.solve(b);

  // Gremban route: dense-solve the grounded 2n Laplacian.
  GrembanReduction red = gremban_reduce(a);
  ASSERT_FALSE(red.was_laplacian);
  CsrMatrix big = laplacian_from_edges(2 * n, red.edges);
  DenseLdlt lift = DenseLdlt::factor_laplacian(big);
  Vec y = lift.solve(red.lift_rhs(b));
  Vec x = red.project_solution(y);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_direct[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrembanProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace parsdd
