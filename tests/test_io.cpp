// Graph file I/O round-trips and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace parsdd {
namespace {

TEST(Io, EdgeListRoundTrip) {
  GeneratedGraph g = erdos_renyi(60, 180, 4);
  randomize_weights_log_uniform(g.edges, 10.0, 1);
  std::stringstream ss;
  write_edge_list(ss, g.n, g.edges);
  GeneratedGraph back = read_edge_list(ss);
  EXPECT_EQ(back.n, g.n);
  ASSERT_EQ(back.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(back.edges[i].u, g.edges[i].u);
    EXPECT_EQ(back.edges[i].v, g.edges[i].v);
    EXPECT_NEAR(back.edges[i].w, g.edges[i].w, 1e-4 * g.edges[i].w);
  }
}

TEST(Io, EdgeListWithoutHeaderInfersN) {
  std::stringstream ss("0 1 2.0\n1 2 3.0\n# comment\n2 5 1.0\n");
  GeneratedGraph g = read_edge_list(ss);
  EXPECT_EQ(g.n, 6u);
  EXPECT_EQ(g.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(g.edges[1].w, 3.0);
}

TEST(Io, EdgeListDefaultsUnitWeight) {
  // A first line of two integers reads as the `n m` header, so unweighted
  // edges require one.
  std::stringstream ss("2 1\n0 1\n");
  GeneratedGraph g = read_edge_list(ss);
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges[0].w, 1.0);
}

TEST(Io, EdgeListRejectsMalformed) {
  {
    std::stringstream ss("3 1\n0 0 1.0\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);  // self-loop
  }
  {
    std::stringstream ss("3 1\n0 1 -2.0\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);  // bad weight
  }
  {
    std::stringstream ss("2 1\n0 5 1.0\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);  // out of range
  }
  {
    std::stringstream ss("2 3\n0 1 1.0\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);  // count mismatch
  }
}

TEST(Io, MatrixMarketSymmetricLaplacianPattern) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a 3-vertex path Laplacian\n"
      "3 3 5\n"
      "1 1 1.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 2 -1.5\n"
      "3 3 1.5\n");
  GeneratedGraph g = read_matrix_market(ss);
  EXPECT_EQ(g.n, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(g.edges[0].w, 1.0);
  EXPECT_DOUBLE_EQ(g.edges[1].w, 1.5);
}

TEST(Io, MatrixMarketRejectsBadBanner) {
  std::stringstream ss("not a banner\n");
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
  std::stringstream ss2("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_matrix_market(ss2), std::runtime_error);
}

}  // namespace
}  // namespace parsdd
