// Cross-module integration: the full Theorem 1.1 pipeline on varied
// workloads, checked in the A-norm against a dense reference.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/dense_ldlt.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

namespace parsdd {
namespace {

struct Workload {
  const char* name;
  GeneratedGraph graph;
};

GeneratedGraph make_workload(int id) {
  switch (id) {
    case 0: {
      return grid2d(13, 11);
    }
    case 1: {
      return grid3d(6, 5, 4);
    }
    case 2: {
      GeneratedGraph g = torus2d(9, 9);
      return g;
    }
    case 3: {
      GeneratedGraph g = erdos_renyi(160, 640, 21);
      randomize_weights_log_uniform(g.edges, 1e4, 3);
      return g;
    }
    case 4: {
      GeneratedGraph g = preferential_attachment(150, 4, 5);
      randomize_weights_two_level(g.edges, 1e3, 5);
      return g;
    }
    case 5: {
      return path(180);
    }
    default: {
      return star(120);
    }
  }
}

class EndToEnd : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EndToEnd, ANormErrorMeetsEpsilon) {
  auto [workload, seed] = GetParam();
  GeneratedGraph g = make_workload(workload);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt ref = DenseLdlt::factor_laplacian(lap);
  Vec b = random_unit_like(g.n, 1000 + seed);
  Vec x_ref = ref.solve(b);

  SddSolverOptions opts;
  opts.tolerance = 1e-10;
  opts.chain.seed = seed + 1;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec x = solver.solve(b).value();

  Vec diff = kernels::subtract(x, x_ref);
  double denom = a_norm(lap, x_ref);
  ASSERT_GT(denom, 0.0);
  EXPECT_LT(a_norm(lap, diff) / denom, 1e-5)
      << "workload=" << workload << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, EndToEnd,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(1, 2)));

TEST(EndToEnd, EpsilonSweepIterationsGrowLogarithmically) {
  GeneratedGraph g = grid2d(18, 18);
  std::vector<double> tols = {1e-2, 1e-4, 1e-8};
  std::vector<std::uint32_t> its;
  for (double tol : tols) {
    SddSolverOptions opts;
    opts.tolerance = tol;
    SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
    Vec b = random_unit_like(g.n, 5);
    SddSolveReport report;
    ASSERT_TRUE(solver.solve(b, &report).ok());
    EXPECT_TRUE(report.stats.converged);
    its.push_back(report.stats.iterations);
  }
  EXPECT_LE(its[0], its[1]);
  EXPECT_LE(its[1], its[2]);
  // log(1/eps) scaling: 4x the digits should cost far less than 4x a few
  // powers; allow generous slack.
  EXPECT_LE(its[2], 8 * std::max(its[0], 1u));
}

TEST(EndToEnd, HighContrastWeightsStillConverge) {
  GeneratedGraph g = grid2d(16, 16);
  randomize_weights_two_level(g.edges, 1e8, 9);
  SddSolverOptions opts;
  opts.tolerance = 1e-8;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec b = random_unit_like(g.n, 6);
  SddSolveReport report;
  Vec x = solver.solve(b, &report).value();
  EXPECT_TRUE(report.stats.converged);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EXPECT_LT(kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b), 1e-6);
}

}  // namespace
}  // namespace parsdd
