// Theorem 4.1 properties: split_graph (Alg 4.1) and Partition (Alg 4.2).
#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/split_graph.h"

namespace parsdd {
namespace {

// Validates (P1) center in own component and (P2) strong radius <= rho by
// BFS inside each component.
void check_p1_p2(const Graph& g, const Decomposition& d, std::uint32_t rho) {
  std::uint32_t n = g.num_vertices();
  ASSERT_EQ(d.component.size(), n);
  ASSERT_EQ(d.center.size(), d.num_components);
  for (std::uint32_t c = 0; c < d.num_components; ++c) {
    ASSERT_LT(d.center[c], n);
    EXPECT_EQ(d.component[d.center[c]], c) << "P1 violated";
  }
  // Strong diameter: BFS from all centers, restricted to components, must
  // reach every vertex within rho hops.
  std::vector<std::uint32_t> dist(n, kUnreached);
  std::vector<std::uint32_t> frontier = d.center;
  for (std::uint32_t s : frontier) dist[s] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::uint32_t> next;
    for (std::uint32_t u : frontier) {
      for (std::uint32_t v : g.neighbors(u)) {
        if (dist[v] != kUnreached) continue;
        if (d.component[v] != d.component[u]) continue;
        dist[v] = level;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    ASSERT_NE(dist[v], kUnreached) << "vertex unassigned or disconnected";
    EXPECT_LE(dist[v], rho) << "P2 violated";
  }
}

class SplitGraphProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(SplitGraphProperty, P1P2HoldOnFamilies) {
  auto [family, rho] = GetParam();
  GeneratedGraph g;
  switch (family) {
    case 0:
      g = grid2d(20, 20);
      break;
    case 1:
      g = erdos_renyi(400, 1200, 5);
      break;
    case 2:
      g = path(300);
      break;
    default:
      g = preferential_attachment(400, 3, 5);
      break;
  }
  Graph csr = Graph::from_edges(g.n, g.edges);
  SplitGraphOptions opts;
  opts.seed = 42;
  Decomposition d = split_graph(csr, rho, opts);
  check_p1_p2(csr, d, rho);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByRho, SplitGraphProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(8u, 32u, 128u)));

TEST(SplitGraph, DeterministicForFixedSeed) {
  GeneratedGraph g = erdos_renyi(300, 900, 1);
  Graph csr = Graph::from_edges(g.n, g.edges);
  SplitGraphOptions opts;
  opts.seed = 7;
  Decomposition a = split_graph(csr, 16, opts);
  Decomposition b = split_graph(csr, 16, opts);
  EXPECT_EQ(a.component, b.component);
  EXPECT_EQ(a.center, b.center);
}

TEST(SplitGraph, SingleVertexAndEdgeless) {
  EdgeList none;
  Graph g1 = Graph::from_edges(1, none);
  Decomposition d = split_graph(g1, 4);
  EXPECT_EQ(d.num_components, 1u);
  Graph g3 = Graph::from_edges(3, none);
  Decomposition d3 = split_graph(g3, 4);
  EXPECT_EQ(d3.num_components, 3u);  // all isolated vertices
}

TEST(SplitGraph, LargeRhoYieldsFewComponents) {
  GeneratedGraph g = grid2d(15, 15);
  Graph csr = Graph::from_edges(g.n, g.edges);
  Decomposition small = split_graph(csr, 4);
  Decomposition large = split_graph(csr, 1024);
  EXPECT_GT(small.num_components, large.num_components);
}

TEST(Partition, CutFractionWithinTheoremBound) {
  GeneratedGraph g = grid2d(25, 25);
  std::vector<ClassedEdge> ce;
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    ce.push_back(ClassedEdge{g.edges[i].u, g.edges[i].v,
                             static_cast<std::uint32_t>(i % 3),
                             static_cast<std::uint32_t>(i)});
  }
  PartitionResult r = partition(g.n, ce, 3, 32);
  EXPECT_EQ(r.attempts, 1u);  // the paper bound is loose; first try passes
  for (double f : r.cut_fraction) EXPECT_LE(f, r.threshold + 1e-12);
}

TEST(Partition, CountCutEdges) {
  std::vector<ClassedEdge> ce = {{0, 1, 0, 0}, {1, 2, 1, 1}, {2, 3, 0, 2}};
  std::vector<std::uint32_t> comp = {0, 0, 1, 1};
  auto cut = count_cut_edges(ce, 2, comp);
  EXPECT_EQ(cut[0], 0u);
  EXPECT_EQ(cut[1], 1u);
}

TEST(Partition, ImpossibleThresholdThrows) {
  GeneratedGraph g = grid2d(12, 12);
  std::vector<ClassedEdge> ce;
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    ce.push_back(ClassedEdge{g.edges[i].u, g.edges[i].v, 0,
                             static_cast<std::uint32_t>(i)});
  }
  PartitionOptions opts;
  opts.cut_constant = 1e-12;  // no decomposition can cut zero edges at rho=2
  opts.max_attempts = 3;
  EXPECT_THROW(partition(g.n, ce, 1, 2, opts), std::runtime_error);
}

TEST(Partition, RejectsZeroRho) {
  std::vector<ClassedEdge> ce = {{0, 1, 0, 0}};
  EXPECT_THROW(partition(2, ce, 1, 0), std::invalid_argument);
}

TEST(Partition, DepthSurrogateScalesWithRho) {
  GeneratedGraph g = path(2000);
  Graph csr = Graph::from_edges(g.n, g.edges);
  Decomposition d = split_graph(csr, 64);
  // Total BFS rounds bounded by (rho+1) * iterations.
  EXPECT_LE(d.total_rounds, (64u + 1) * d.iterations + 64u);
  EXPECT_GT(d.total_rounds, 0u);
}

}  // namespace
}  // namespace parsdd
