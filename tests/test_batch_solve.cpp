// The setup/solve split and batched multi-RHS solving.
//
// Contract under test (multivec.h "determinism contract"): column c of a
// solve_batch runs the exact arithmetic of an independent solve() on that
// column, so batched and single results agree to ~machine precision; and a
// SolverSetup is immutable after construction, so concurrent solves against
// one shared setup are safe.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "apps/effective_resistance.h"
#include "kernels/kernels.h"
#include "apps/harmonic.h"
#include "graph/generators.h"
#include "linalg/dense_ldlt.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"
#include "solver/solver_setup.h"

namespace parsdd {
namespace {

double max_col_diff(const MultiVec& batch, std::size_t c, const Vec& single) {
  double worst = 0.0;
  for (std::size_t i = 0; i < single.size(); ++i) {
    worst = std::max(worst, std::fabs(batch.at(i, c) - single[i]));
  }
  return worst;
}

double rel_residual(const CsrMatrix& lap, const Vec& x, const Vec& b) {
  return kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b);
}

TEST(BatchSolve, MatchesIndependentSingleSolves) {
  GeneratedGraph g = grid2d(20, 20);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  constexpr std::size_t k = 8;
  std::vector<Vec> cols;
  for (std::size_t c = 0; c < k; ++c) {
    cols.push_back(random_unit_like(g.n, 100 + c));
  }
  MultiVec b = MultiVec::from_columns(cols);
  BatchSolveReport report;
  MultiVec x = solver.solve_batch(b, &report).value();
  ASSERT_EQ(report.column_stats.size(), k);
  // Independent oracle (solve() itself routes through the batch path, so a
  // same-path comparison alone would be circular): a dense pseudo-inverse
  // factorization that shares no code with the batch machinery.
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  DenseLdlt ref = DenseLdlt::factor_laplacian(lap);
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_TRUE(report.column_stats[c].converged);
    Vec xs = solver.solve(cols[c]).value();
    EXPECT_LT(max_col_diff(x, c, xs), 1e-10) << "column " << c;
    Vec x_ref = ref.solve(cols[c]);
    Vec diff = kernels::subtract(x.column(c), x_ref);
    EXPECT_LT(a_norm(lap, diff) / std::max(a_norm(lap, x_ref), 1e-30), 1e-6)
        << "column " << c << " vs dense reference";
  }
}

class BatchMethods : public ::testing::TestWithParam<SolveMethod> {};

TEST_P(BatchMethods, EveryMethodBatchesExactly) {
  GeneratedGraph g = grid2d(12, 12);
  randomize_weights_log_uniform(g.edges, 50.0, 3);
  SddSolverOptions opts;
  opts.method = GetParam();
  opts.max_iterations = 20000;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  constexpr std::size_t k = 4;
  std::vector<Vec> cols;
  for (std::size_t c = 0; c < k; ++c) {
    cols.push_back(random_unit_like(g.n, 7 + 3 * c));
  }
  MultiVec x = solver.solve_batch(MultiVec::from_columns(cols)).value();
  for (std::size_t c = 0; c < k; ++c) {
    Vec xs = solver.solve(cols[c]).value();
    EXPECT_LT(max_col_diff(x, c, xs), 1e-10) << "column " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, BatchMethods,
                         ::testing::Values(SolveMethod::kChainPcg,
                                           SolveMethod::kChainRpch,
                                           SolveMethod::kCg,
                                           SolveMethod::kJacobiPcg));

TEST(BatchSolve, GrembanSddBatchMatchesSingle) {
  // SDD input with positive off-diagonals: the batch must ride the double
  // cover column-wise.
  std::vector<Triplet> ts = {
      {0, 0, 3.0},  {0, 1, 1.0},  {1, 0, 1.0},  {1, 1, 4.0},
      {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 3.0},
  };
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  SddSolverOptions opts;
  opts.tolerance = 1e-10;
  SddSolver solver = SddSolver::for_sdd(a, opts);
  std::vector<Vec> cols = {{1.0, 0.0, -1.0}, {0.5, -2.0, 1.5}, {0.0, 1.0, 0.0}};
  MultiVec x = solver.solve_batch(MultiVec::from_columns(cols)).value();
  for (std::size_t c = 0; c < cols.size(); ++c) {
    Vec xs = solver.solve(cols[c]).value();
    EXPECT_LT(max_col_diff(x, c, xs), 1e-10) << "column " << c;
  }
  // Wrong-sized batch must be rejected before the Gremban lift reads past
  // it: the lifted block is always 2n rows, so only a pre-lift check can
  // catch this.
  EXPECT_EQ(solver.solve_batch(MultiVec(2, 1)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchSolve, DisconnectedGraphBatch) {
  // Two paths + isolated vertex; per-component projection must act
  // column-wise.
  EdgeList e;
  for (std::uint32_t i = 0; i + 1 < 10; ++i) e.push_back(Edge{i, i + 1, 1.0});
  for (std::uint32_t i = 10; i + 1 < 20; ++i) e.push_back(Edge{i, i + 1, 2.0});
  std::uint32_t n = 21;
  SddSolver solver = SddSolver::for_laplacian(n, e);
  std::vector<Vec> cols(3, Vec(n, 0.0));
  cols[0][0] = 1.0;
  cols[0][9] = -1.0;
  cols[1][10] = 2.0;
  cols[1][19] = -2.0;
  cols[2][3] = 1.0;
  cols[2][6] = -1.0;
  BatchSolveReport report;
  MultiVec x =
      solver.solve_batch(MultiVec::from_columns(cols), &report).value();
  EXPECT_EQ(report.components, 3u);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    Vec xs = solver.solve(cols[c]).value();
    EXPECT_LT(max_col_diff(x, c, xs), 1e-10) << "column " << c;
    EXPECT_DOUBLE_EQ(x.at(20, c), 0.0);  // isolated vertex grounded
  }
}

TEST(BatchSolve, ConcurrentSolvesAgainstSharedSetup) {
  GeneratedGraph g = grid2d(16, 16);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  constexpr int kThreads = 2;
  std::vector<double> residuals(kThreads, 1.0);
  std::vector<double> diffs(kThreads, 1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread answers its own queries against the one shared setup:
      // a 4-column batch plus a single solve, repeated.
      std::vector<Vec> cols;
      for (std::size_t c = 0; c < 4; ++c) {
        cols.push_back(random_unit_like(g.n, 1000 * (t + 1) + c));
      }
      MultiVec x = solver.solve_batch(MultiVec::from_columns(cols)).value();
      double worst_res = 0.0, worst_diff = 0.0;
      for (std::size_t c = 0; c < cols.size(); ++c) {
        Vec xc = x.column(c);
        worst_res = std::max(worst_res, rel_residual(lap, xc, cols[c]));
        Vec xs = solver.solve(cols[c]).value();
        worst_diff = std::max(worst_diff, max_col_diff(x, c, xs));
      }
      residuals[t] = worst_res;
      diffs[t] = worst_diff;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LT(residuals[t], 1e-6) << "thread " << t;
    EXPECT_LT(diffs[t], 1e-10) << "thread " << t;
  }
}

TEST(BatchSolve, AgreesWithLegacySingleVectorPath) {
  // Second non-circular oracle: the original single-Vec RecursiveSolver
  // pipeline, which the batch kernels were transcribed from.
  GeneratedGraph g = grid2d(14, 14);
  SolverChain chain = build_chain(g.n, g.edges);
  RecursiveSolver rs(chain);
  Vec b = random_unit_like(g.n, 77);
  Vec x_legacy(g.n, 0.0);
  IterStats legacy = rs.solve(b, x_legacy, 1e-8, 5000);
  ASSERT_TRUE(legacy.converged);

  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  MultiVec x = solver.solve_batch(MultiVec::from_columns({b})).value();
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  Vec diff = kernels::subtract(x.column(0), x_legacy);
  EXPECT_LT(a_norm(lap, diff) / std::max(a_norm(lap, x_legacy), 1e-30), 1e-6);
}

TEST(SolverSetup, DirectApiReportsSetupShape) {
  GeneratedGraph g = grid2d(16, 16);
  SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
  EXPECT_EQ(setup.dimension(), g.n);
  EXPECT_EQ(setup.num_components(), 1u);
  EXPECT_GE(setup.chain_levels(), 2u);
  EXPECT_GT(setup.chain_edges(), 0u);
  Vec b = random_unit_like(g.n, 5);
  SddSolveReport report;
  Vec x = setup.solve(b, &report).value();
  EXPECT_TRUE(report.stats.converged);
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EXPECT_LT(rel_residual(lap, x, b), 1e-6);
}

TEST(BatchSolve, DegenerateInputsReturnInvalidArgument) {
  // Regression: k=0 blocks and wrong-dimension blocks used to fall through
  // to the kernels (assert/UB territory); they must come back as clean
  // InvalidArgument results on every entry point.
  GeneratedGraph g = grid2d(6, 6);
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);

  StatusOr<MultiVec> empty = solver.solve_batch(MultiVec(g.n, 0));
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  StatusOr<MultiVec> zero = solver.solve_batch(MultiVec());
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  StatusOr<MultiVec> short_rows = solver.solve_batch(MultiVec(g.n - 1, 3));
  ASSERT_FALSE(short_rows.ok());
  EXPECT_EQ(short_rows.status().code(), StatusCode::kInvalidArgument);

  StatusOr<MultiVec> long_rows = solver.solve_batch(MultiVec(g.n + 5, 3));
  ASSERT_FALSE(long_rows.ok());
  EXPECT_EQ(long_rows.status().code(), StatusCode::kInvalidArgument);

  StatusOr<Vec> wrong_vec = solver.solve(Vec(g.n + 1, 0.0));
  ASSERT_FALSE(wrong_vec.ok());
  EXPECT_EQ(wrong_vec.status().code(), StatusCode::kInvalidArgument);

  // The error message should name both dimensions so a serving log is
  // actionable.
  EXPECT_NE(short_rows.status().message().find("dimension"), std::string::npos);

  // The same setup still answers well-formed requests afterwards: a
  // rejected request must not poison shared state.
  Vec b = random_unit_like(g.n, 3);
  StatusOr<Vec> ok = solver.solve(b);
  ASSERT_TRUE(ok.ok());
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  EXPECT_LT(rel_residual(lap, *ok, b), 1e-6);
}

TEST(BatchSolve, GrembanDegenerateInputsRejected) {
  // k=0 through the SDD (double cover) path as well.
  std::vector<Triplet> ts = {
      {0, 0, 3.0},  {0, 1, 1.0},  {1, 0, 1.0},  {1, 1, 4.0},
      {1, 2, -2.0}, {2, 1, -2.0}, {2, 2, 3.0},
  };
  CsrMatrix a = CsrMatrix::from_triplets(3, std::move(ts));
  SddSolver solver = SddSolver::for_sdd(a);
  EXPECT_EQ(solver.solve_batch(MultiVec(3, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(solver.solve_batch(MultiVec(6, 1)).status().code(),
            StatusCode::kInvalidArgument);  // lifted size must not be accepted
}

TEST(BatchSolve, PairResistancesMatchSingleQueries) {
  GeneratedGraph g = grid2d(8, 8);
  SddSolverOptions opts;
  opts.tolerance = 1e-10;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {0, 1}, {0, 63}, {10, 53}, {7, 56}};
  std::vector<double> batched = pair_resistances(solver, g.n, pairs).value();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    double single =
        effective_resistance(solver, pairs[i].first, pairs[i].second, g.n)
            .value();
    EXPECT_NEAR(batched[i], single, 1e-10) << "pair " << i;
  }
}

TEST(BatchSolve, MultiChannelHarmonicMatchesPerChannel) {
  GeneratedGraph g = grid2d(10, 10);
  std::vector<std::uint32_t> boundary = {0, 9, 90, 99};
  std::vector<std::vector<double>> channels = {
      {1.0, 0.0, 0.0, 1.0}, {0.0, 2.0, -1.0, 0.5}, {3.0, 3.0, 3.0, 3.0}};
  std::vector<Vec> multi =
      harmonic_extension_multi(g.n, g.edges, boundary, channels).value();
  ASSERT_EQ(multi.size(), channels.size());
  for (std::size_t c = 0; c < channels.size(); ++c) {
    Vec single =
        harmonic_extension(g.n, g.edges, boundary, channels[c]).value();
    double worst = 0.0;
    for (std::size_t i = 0; i < single.size(); ++i) {
      worst = std::max(worst, std::fabs(multi[c][i] - single[i]));
    }
    EXPECT_LT(worst, 1e-10) << "channel " << c;
  }
}

}  // namespace
}  // namespace parsdd
