// Randomized property harness: seeded draws over graph families x weight
// distributions x RHS batches, asserting the solver meets its relative
// residual contract on every draw.
//
// Reproducibility contract: every draw derives from (master seed, draw
// index) alone, and each assertion message carries the exact environment
// settings that replay the failing draw:
//
//   PARSDD_FUZZ_SEED=<seed> PARSDD_FUZZ_ITERS=<i+1> ./test_property_solve
//
// PARSDD_FUZZ_ITERS scales the number of draws (default 50, the tier-1
// budget); the CI fuzz lane runs the same binary with a larger budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "parallel/rng.h"
#include "solver/solver_setup.h"

namespace parsdd {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return (end && *end == '\0') ? parsed : fallback;
}

struct Draw {
  std::string family;
  GeneratedGraph graph;
};

// Family picker: small sizes keep a 50-draw run inside the tier-1 budget
// while still crossing meshes, expanders, bottlenecks, stars, and
// high-aspect paths.
Draw make_draw(const Rng& rng, std::uint64_t i) {
  Draw d;
  switch (rng.below(8 * i, 5)) {
    case 0: {
      std::uint32_t nx = 2 + static_cast<std::uint32_t>(rng.below(8 * i + 1, 14));
      std::uint32_t ny = 2 + static_cast<std::uint32_t>(rng.below(8 * i + 2, 14));
      d.family = "grid2d(" + std::to_string(nx) + "," + std::to_string(ny) + ")";
      d.graph = grid2d(nx, ny);
      break;
    }
    case 1: {
      std::uint32_t n = 8 + static_cast<std::uint32_t>(rng.below(8 * i + 1, 120));
      std::uint32_t deg = 3 + static_cast<std::uint32_t>(rng.below(8 * i + 2, 3));
      d.family = "random_regular(" + std::to_string(n) + "," +
                 std::to_string(deg) + ")";
      d.graph = random_regular(n, deg, rng.u64(8 * i + 3));
      break;
    }
    case 2: {
      std::uint32_t clique = 3 + static_cast<std::uint32_t>(rng.below(8 * i + 1, 8));
      std::uint32_t bridge = 1 + static_cast<std::uint32_t>(rng.below(8 * i + 2, 12));
      d.family = "barbell(" + std::to_string(clique) + "," +
                 std::to_string(bridge) + ")";
      d.graph = barbell(clique, bridge);
      break;
    }
    case 3: {
      std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(8 * i + 1, 150));
      d.family = "star(" + std::to_string(n) + ")";
      d.graph = star(n);
      break;
    }
    default: {
      std::uint32_t n = 4 + static_cast<std::uint32_t>(rng.below(8 * i + 1, 150));
      d.family = "path(" + std::to_string(n) + ")";
      d.graph = path(n);
      break;
    }
  }
  // Half the draws get a weighted variant (log-uniform spread up to 1e4 —
  // the Δ regime AKPW's iteration count depends on).
  if (rng.below(8 * i + 4, 2) == 1) {
    double spread = 10.0 + static_cast<double>(rng.below(8 * i + 5, 9990));
    randomize_weights_log_uniform(d.graph.edges, spread, rng.u64(8 * i + 6));
    d.family += " weighted(spread=" + std::to_string(spread) + ")";
  }
  return d;
}

TEST(PropertySolve, RandomDrawsMeetResidualContract) {
  const std::uint64_t master_seed = env_u64("PARSDD_FUZZ_SEED", 0xF00DF00D);
  const std::uint64_t iters = env_u64("PARSDD_FUZZ_ITERS", 50);
  const double tol = 1e-8;
  Rng rng(master_seed);

  for (std::uint64_t i = 0; i < iters; ++i) {
    Draw d = make_draw(rng, i);
    const std::string repro = d.family + "; reproduce with PARSDD_FUZZ_SEED=" +
                              std::to_string(master_seed) +
                              " PARSDD_FUZZ_ITERS=" + std::to_string(i + 1);
    std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.below(8 * i + 7, 4));

    SddSolverOptions opts;
    opts.tolerance = tol;
    SolverSetup setup = SolverSetup::for_laplacian(d.graph.n, d.graph.edges,
                                                   opts);
    MultiVec b(d.graph.n, k);
    for (std::uint32_t c = 0; c < k; ++c) {
      Vec col = random_unit_like(d.graph.n, rng.u64(8 * i + 7) + c);
      kernels::project_out_constant(col);  // consistent RHS for the singular system
      b.set_column(c, col);
    }
    StatusOr<MultiVec> x = setup.solve_batch(b);
    ASSERT_TRUE(x.ok()) << x.status().to_string() << "\n  draw " << i << ": "
                        << repro;

    CsrMatrix lap = laplacian_from_edges(d.graph.n, d.graph.edges);
    MultiVec ax = lap.apply_block(*x);
    for (std::uint32_t c = 0; c < k; ++c) {
      Vec r = kernels::subtract(b.column(c), ax.column(c));
      double rel = kernels::norm2(r) / std::max(kernels::norm2(b.column(c)), 1e-300);
      // Headroom over the solver's target: convergence is measured in the
      // preconditioned norm, so the Euclidean residual can sit a small
      // factor above tol.
      EXPECT_LE(rel, 100 * tol)
          << "column " << c << " of k=" << k << "\n  draw " << i << ": "
          << repro;
    }
  }
}

// Same harness, mixed precision: every draw that converges under
// Precision::kF64Bitwise must also converge under kF32Refined — the fp32
// chain is a preconditioner, and the fp64 outer iteration owns the
// residual contract.  A smaller draw budget keeps tier-1 time flat; the
// fuzz lane scales both loops with PARSDD_FUZZ_ITERS.
TEST(PropertySolve, F32RefinedDrawsMeetResidualContract) {
  const std::uint64_t master_seed = env_u64("PARSDD_FUZZ_SEED", 0xF00DF00D);
  const std::uint64_t iters = env_u64("PARSDD_FUZZ_ITERS", 50) / 2 + 1;
  const double tol = 1e-8;
  Rng rng(master_seed ^ 0x32f10a7ull);

  for (std::uint64_t i = 0; i < iters; ++i) {
    Draw d = make_draw(rng, i);
    const std::string repro = d.family +
                              "; reproduce with PARSDD_FUZZ_SEED=" +
                              std::to_string(master_seed) +
                              " PARSDD_FUZZ_ITERS=" + std::to_string(i + 1);
    std::uint32_t k = 1 + static_cast<std::uint32_t>(rng.below(8 * i + 7, 4));

    SddSolverOptions opts;
    opts.tolerance = tol;
    opts.precision = Precision::kF32Refined;
    SolverSetup setup = SolverSetup::for_laplacian(d.graph.n, d.graph.edges,
                                                   opts);
    MultiVec b(d.graph.n, k);
    for (std::uint32_t c = 0; c < k; ++c) {
      Vec col = random_unit_like(d.graph.n, rng.u64(8 * i + 7) + c);
      kernels::project_out_constant(col);
      b.set_column(c, col);
    }
    StatusOr<MultiVec> x = setup.solve_batch(b);
    ASSERT_TRUE(x.ok()) << x.status().to_string() << "\n  f32 draw " << i
                        << ": " << repro;

    CsrMatrix lap = laplacian_from_edges(d.graph.n, d.graph.edges);
    MultiVec ax = lap.apply_block(*x);
    for (std::uint32_t c = 0; c < k; ++c) {
      Vec r = kernels::subtract(b.column(c), ax.column(c));
      double rel =
          kernels::norm2(r) / std::max(kernels::norm2(b.column(c)), 1e-300);
      // The residual is computed and tested in fp64: iterative refinement
      // means fp32 preconditioning costs iterations, not accuracy.
      EXPECT_LE(rel, 100 * tol)
          << "column " << c << " of k=" << k << "\n  f32 draw " << i << ": "
          << repro;
    }
  }
}

}  // namespace
}  // namespace parsdd
