// Spectral sparsification by effective resistances [SS08] — the first
// application the paper lists for its solver.
//
//   $ ./spectral_sparsify
//
// Sparsifies a dense random graph using O(log n) Laplacian solves for the
// resistance estimates, and verifies the Laplacian quadratic form is
// preserved on random probe vectors.
#include <algorithm>
#include <cstdio>

#include "apps/sparsify.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

int main() {
  using namespace parsdd;
  GeneratedGraph g = erdos_renyi(400, 24000, 23);
  std::printf("input: n=%u m=%zu (avg degree %.0f)\n", g.n, g.edges.size(),
              2.0 * g.edges.size() / g.n);

  SddSolverOptions sopts;
  sopts.tolerance = 1e-9;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, sopts);

  SpectralSparsifyOptions opts;
  opts.epsilon = 0.5;
  opts.constant = 0.5;
  opts.probes = 48;
  SpectralSparsifyResult r =
      spectral_sparsify(g.n, g.edges, solver, opts).value();
  std::printf("sparsifier: %zu edges (%.1f%% of input)\n",
              r.sparsifier.size(),
              100.0 * r.sparsifier.size() / g.edges.size());

  double worst = 1.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    Vec x = random_unit_like(g.n, 77 + s);
    double ratio = laplacian_quadratic_form(r.sparsifier, x) /
                   laplacian_quadratic_form(g.edges, x);
    worst = std::max(worst, std::max(ratio, 1.0 / ratio));
  }
  std::printf("worst quadratic-form distortion on probes: %.3fx\n", worst);
  return (worst < 2.0 && r.sparsifier.size() < g.edges.size()) ? 0 : 1;
}
