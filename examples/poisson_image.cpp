// Poisson image inpainting / harmonic interpolation — the "problems in
// vision and graphics" motivation from the paper's introduction.
//
// A synthetic grayscale image is damaged (a block of pixels erased); the
// hole is filled by harmonic extension of the surviving pixels over the
// 4-connected pixel grid, i.e. one SDD solve on the interior block.
//
//   $ ./poisson_image
//
// Prints reconstruction error statistics over the hole.
#include <cmath>
#include <cstdio>
#include <vector>

#include "apps/harmonic.h"
#include "graph/generators.h"

int main() {
  using namespace parsdd;
  const std::uint32_t side = 96;

  // Ground-truth image: smooth gradient + a soft blob.
  auto truth = [&](std::uint32_t x, std::uint32_t y) {
    double cx = x - side / 2.0, cy = y - side / 2.0;
    return 0.3 * x / side + 0.2 * y / side +
           0.5 * std::exp(-(cx * cx + cy * cy) / (side * 2.0));
  };

  // Damage: a 28x28 hole in the middle.
  auto in_hole = [&](std::uint32_t x, std::uint32_t y) {
    return x >= 34 && x < 62 && y >= 34 && y < 62;
  };

  GeneratedGraph g = grid2d(side, side);
  std::vector<std::uint32_t> boundary;
  std::vector<double> values;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (!in_hole(x, y)) {
        boundary.push_back(y * side + x);
        values.push_back(truth(x, y));
      }
    }
  }
  std::printf("image %ux%u, hole pixels: %zu\n", side, side,
              static_cast<std::size_t>(side) * side - boundary.size());

  SddSolverOptions opts;
  opts.tolerance = 1e-9;
  Vec filled =
      harmonic_extension(g.n, g.edges, boundary, values, opts).value();

  double max_err = 0.0, sum_err = 0.0;
  std::size_t count = 0;
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      if (!in_hole(x, y)) continue;
      double err = std::fabs(filled[y * side + x] - truth(x, y));
      max_err = std::max(max_err, err);
      sum_err += err;
      ++count;
    }
  }
  std::printf("reconstruction: mean abs err %.4f, max abs err %.4f "
              "(image range ~[0,1])\n",
              sum_err / count, max_err);
  // Harmonic inpainting cannot reproduce the blob's peak exactly, but
  // should stay within a modest fraction of the dynamic range.
  return max_err < 0.5 ? 0 : 1;
}
