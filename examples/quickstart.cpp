// Quickstart: build a graph Laplacian, solve a system, check the residual.
//
//   $ ./quickstart
//
// Walks through the minimal public API: generate a graph, construct
// SddSolver, solve L x = b, and inspect the solver chain report.
#include <cstdio>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

int main() {
  using namespace parsdd;

  // A 100x100 grid — the classic SDD source (2D Poisson stencil).
  GeneratedGraph g = grid2d(100, 100);
  std::printf("graph: n=%u m=%zu (2D grid)\n", g.n, g.edges.size());

  // Build the solver: preconditioner chain + flexible PCG.
  SddSolverOptions opts;
  opts.tolerance = 1e-8;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);

  // A consistent right-hand side (mean zero).
  Vec b = random_unit_like(g.n, /*seed=*/1);

  SddSolveReport report;
  Vec x = solver.solve(b, &report).value();

  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel = kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b);
  std::printf("solved: iterations=%u levels=%u chain_edges=%zu\n",
              report.stats.iterations, report.chain_levels,
              report.chain_edges);
  std::printf("relative residual: %.3e (converged=%s)\n", rel,
              report.stats.converged ? "yes" : "no");
  return rel < 1e-6 ? 0 : 1;
}
