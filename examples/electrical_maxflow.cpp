// Approximate maximum flow via electrical flows [CKM+10] — the flow
// application highlighted in the paper's introduction, with the SDD solver
// in the inner loop.
//
//   $ ./electrical_maxflow
//
// Routes s-t flow across a capacitated random network, compares against the
// exact Edmonds-Karp value, and reports the multiplicative-weights
// convergence trajectory.
#include <cstdio>

#include "apps/maxflow.h"
#include "graph/generators.h"

int main() {
  using namespace parsdd;
  GeneratedGraph g = erdos_renyi(200, 800, 17);
  randomize_weights_log_uniform(g.edges, 8.0, 4);  // capacities in [1, 8]
  std::uint32_t s = 0, t = 100;

  double exact = exact_max_flow(g.n, g.edges, s, t);
  std::printf("network: n=%u m=%zu, exact max flow %.3f\n", g.n,
              g.edges.size(), exact);

  std::printf("%-8s %-12s %-10s\n", "iters", "flow value", "fraction");
  double best = 0.0;
  for (std::uint32_t iters : {10u, 40u, 120u}) {
    MaxflowOptions opts;
    opts.epsilon = 0.15;
    opts.max_iterations = iters;
    opts.solver.tolerance = 1e-8;
    MaxflowResult r = approx_max_flow(g.n, g.edges, s, t, opts).value();
    std::printf("%-8u %-12.3f %-10.4f\n", r.iterations, r.flow_value,
                r.flow_value / exact);
    best = r.flow_value;
  }
  std::printf("final approximation: %.1f%% of optimal\n", 100 * best / exact);
  return best > 0.7 * exact ? 0 : 1;
}
