// Command-line SDD/Laplacian solver: the tool a downstream user would run.
//
//   $ ./solve_cli <graph-file> [tolerance] [method]
//
//   graph-file : plain edge list (`u v w` lines, optional `n m` header) or
//                MatrixMarket .mtx (symmetric coordinate)
//   tolerance  : relative residual target (default 1e-8)
//   method     : chain | rpch | cg | jacobi (default chain)
//
// Solves L x = b for a deterministic random consistent b, printing chain
// telemetry and the verified residual.  With no arguments, runs a built-in
// demo grid instead.
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

int main(int argc, char** argv) {
  using namespace parsdd;
  GeneratedGraph g;
  if (argc > 1) {
    try {
      g = load_graph(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    std::printf("no input file; using demo 64x64 grid\n");
    g = grid2d(64, 64);
  }
  double tol = argc > 2 ? std::atof(argv[2]) : 1e-8;
  SolveMethod method = SolveMethod::kChainPcg;
  if (argc > 3) {
    std::string m = argv[3];
    if (m == "rpch") method = SolveMethod::kChainRpch;
    else if (m == "cg") method = SolveMethod::kCg;
    else if (m == "jacobi") method = SolveMethod::kJacobiPcg;
    else if (m != "chain") {
      std::fprintf(stderr, "unknown method '%s'\n", m.c_str());
      return 2;
    }
  }

  std::printf("graph: n=%u m=%zu\n", g.n, g.edges.size());
  SddSolverOptions opts;
  opts.tolerance = tol;
  opts.method = method;
  opts.max_iterations = 50000;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec b = random_unit_like(g.n, 1);
  SddSolveReport rep;
  Vec x = solver.solve(b, &rep).value();

  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel = norm2(subtract(lap.apply(x), b)) / norm2(b);
  std::printf(
      "components=%u chain_levels=%u chain_edges=%zu iterations=%u\n",
      rep.components, rep.chain_levels, rep.chain_edges,
      rep.stats.iterations);
  std::printf("relative residual %.3e (target %.0e) -> %s\n", rel, tol,
              rel <= 10 * tol ? "OK" : "NOT CONVERGED");
  return rel <= 10 * tol ? 0 : 1;
}
