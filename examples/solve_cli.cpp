// Command-line SDD/Laplacian solver: the tool a downstream user would run.
//
//   $ ./solve_cli [graph-file] [tolerance] [method] [flags]
//
//   graph-file : plain edge list (`u v w` lines, optional `n m` header) or
//                MatrixMarket .mtx (symmetric coordinate)
//   tolerance  : relative residual target (default 1e-8)
//   method     : chain | rpch | cg | jacobi (default chain)
//
// Setup persistence flags (see DESIGN.md, "Snapshot format"):
//   --save-setup=PATH : after building the setup, persist it as a
//                       versioned binary snapshot
//   --load-setup=PATH : skip the build and load the snapshot instead (the
//                       graph is still read to verify the residual)
//
// Precision (see DESIGN.md §9, "Kernel backends & mixed precision"):
//   --precision=f64   : bitwise-reproducible fp64 everywhere (default)
//   --precision=f32   : opt-in mixed precision — the preconditioner chain
//                       runs in fp32, the outer CG refines in fp64
//                       (chain method only)
//
// Typical warm-start flow:
//   $ ./solve_cli mesh.txt 1e-8 chain --save-setup=mesh.snap   # build once
//   $ ./solve_cli mesh.txt 1e-8 chain --load-setup=mesh.snap   # restarts
//
// Solves L x = b for a deterministic random consistent b, printing chain
// telemetry and the verified residual.  With no graph argument, runs a
// built-in demo grid instead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "graph/io.h"
#include "linalg/laplacian.h"
#include "solver/solver_setup.h"

int main(int argc, char** argv) {
  using namespace parsdd;
  std::string save_path, load_path;
  Precision precision = Precision::kF64Bitwise;
  bool precision_explicit = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--save-setup=", 0) == 0) {
      save_path = arg.substr(std::strlen("--save-setup="));
    } else if (arg.rfind("--load-setup=", 0) == 0) {
      load_path = arg.substr(std::strlen("--load-setup="));
    } else if (arg.rfind("--precision=", 0) == 0) {
      std::string p = arg.substr(std::strlen("--precision="));
      precision_explicit = true;
      if (p == "f64") {
        precision = Precision::kF64Bitwise;
      } else if (p == "f32") {
        precision = Precision::kF32Refined;
      } else {
        std::fprintf(stderr, "unknown precision '%s' (want f64|f32)\n",
                     p.c_str());
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  GeneratedGraph g;
  if (!positional.empty()) {
    try {
      g = load_graph(positional[0].c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    std::printf("no input file; using demo 64x64 grid\n");
    g = grid2d(64, 64);
  }
  double tol = positional.size() > 1 ? std::atof(positional[1].c_str()) : 1e-8;
  SolveMethod method = SolveMethod::kChainPcg;
  if (positional.size() > 2) {
    const std::string& m = positional[2];
    if (m == "rpch") method = SolveMethod::kChainRpch;
    else if (m == "cg") method = SolveMethod::kCg;
    else if (m == "jacobi") method = SolveMethod::kJacobiPcg;
    else if (m != "chain") {
      std::fprintf(stderr, "unknown method '%s'\n", m.c_str());
      return 2;
    }
  }

  SolverSetup setup = [&] {
    if (!load_path.empty()) {
      if (positional.size() > 1) {
        // A snapshot embeds the full option set it was built with; solving
        // with anything else would not be the saved setup anymore.
        std::fprintf(stderr,
                     "note: --load-setup uses the tolerance/method embedded "
                     "in the snapshot; command-line values are ignored\n");
      }
      StatusOr<SolverSetup> loaded = SolverSetup::Load(load_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "cannot load setup snapshot: %s\n",
                     loaded.status().to_string().c_str());
        std::exit(2);
      }
      std::printf("loaded setup snapshot %s\n", load_path.c_str());
      return std::move(*loaded);
    }
    SddSolverOptions opts;
    opts.tolerance = tol;
    opts.method = method;
    opts.precision = precision;
    opts.max_iterations = 50000;
    return SolverSetup::for_laplacian(g.n, g.edges, opts);
  }();
  if (setup.dimension() != g.n) {
    std::fprintf(stderr,
                 "snapshot dimension %u does not match graph n=%u\n",
                 setup.dimension(), g.n);
    return 2;
  }
  if (!load_path.empty() && precision_explicit &&
      setup.precision() != precision) {
    // The snapshot's arithmetic contract is baked in at build time; solving
    // anyway while the banner claims the requested precision would misreport
    // what actually ran.  Refuse so scripts cannot depend on the lie.
    std::fprintf(stderr,
                 "--precision=%s contradicts the snapshot (built with %s); "
                 "rebuild with --save-setup or drop the flag\n",
                 precision == Precision::kF32Refined ? "f32" : "f64",
                 setup.precision() == Precision::kF32Refined ? "f32" : "f64");
    return 2;
  }
  // Printed from the setup, not the flag: with --load-setup the snapshot's
  // embedded precision is what actually runs.
  std::printf("graph: n=%u m=%zu backend=%s precision=%s\n", g.n,
              g.edges.size(), kernels::backend_name(),
              setup.precision() == Precision::kF32Refined ? "f32-refined"
                                                          : "f64-bitwise");
  if (!save_path.empty()) {
    Status saved = setup.Save(save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot save setup snapshot: %s\n",
                   saved.to_string().c_str());
      return 2;
    }
    std::printf("saved setup snapshot to %s\n", save_path.c_str());
  }

  Vec b = random_unit_like(g.n, 1);
  SddSolveReport rep;
  Vec x = setup.solve(b, &rep).value();

  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  double rel = kernels::norm2(kernels::subtract(lap.apply(x), b)) / kernels::norm2(b);
  std::printf(
      "components=%u chain_levels=%u chain_edges=%zu iterations=%u\n",
      rep.components, rep.chain_levels, rep.chain_edges,
      rep.stats.iterations);
  std::printf("relative residual %.3e (target %.0e) -> %s\n", rel, tol,
              rel <= 10 * tol ? "OK" : "NOT CONVERGED");
  return rel <= 10 * tol ? 0 : 1;
}
