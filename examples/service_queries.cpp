// The serving front door: register once, submit from anywhere, await
// futures.
//
//   $ ./service_queries
//
// Walks the SolverService lifecycle: register a grid Laplacian, fire a
// burst of single-RHS requests from client threads (the dispatcher
// coalesces them into one solve_batch block), check a residual, then show
// how failures arrive as typed Status values instead of exceptions.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "kernels/kernels.h"
#include "linalg/laplacian.h"
#include "linalg/vector_ops.h"
#include "service/solver_service.h"

int main() {
  using namespace parsdd;
  GeneratedGraph g = grid2d(40, 40);
  std::printf("grid 40x40: n=%u m=%zu\n", g.n, g.edges.size());

  // One service instance owns the dispatcher and executor threads.
  ServiceOptions opts;
  opts.max_batch = 16;
  opts.max_linger_us = 2000;
  SolverService service(opts);

  // Registration is the expensive setup phase; the handle is a cheap
  // ticket any thread may use.
  SetupHandle handle = service.register_laplacian(g.n, g.edges).value();
  SetupInfo info = service.info(handle).value();
  std::printf("registered handle %llu: %u chain levels, %zu chain edges\n",
              static_cast<unsigned long long>(handle.id), info.chain_levels,
              info.chain_edges);

  // A burst of independent clients, each submitting ONE right-hand side.
  // Nobody assembles a batch; the dispatcher does it for them.
  constexpr std::size_t kClients = 8;
  std::vector<Vec> rhs;
  for (std::size_t c = 0; c < kClients; ++c) {
    rhs.push_back(random_unit_like(g.n, 11 + c));
  }
  std::vector<std::future<StatusOr<SolveResult>>> futures(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back(
        [&, c] { futures[c] = service.submit(handle, rhs[c]); });
  }
  for (auto& t : clients) t.join();

  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  for (std::size_t c = 0; c < kClients; ++c) {
    StatusOr<SolveResult> res = futures[c].get();
    if (!res.ok()) {
      std::printf("  client %zu: %s\n", c, res.status().to_string().c_str());
      continue;
    }
    double rel = kernels::norm2(kernels::subtract(lap.apply(res->x), rhs[c])) / kernels::norm2(rhs[c]);
    std::printf(
        "  client %zu: %u iterations, residual %.2e, rode in a "
        "%u-column block\n",
        c, res->stats.iterations, rel, res->coalesced_cols);
  }
  ServiceStats st = service.stats();
  std::printf("stats: %llu requests -> %llu dispatched blocks\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.dispatched_blocks));

  // Failures are values, not exceptions: wrong dimension, stale handle.
  Status wrong =
      service.submit(handle, Vec(g.n + 1, 0.0)).get().status();
  std::printf("wrong-size rhs     -> %s\n", wrong.to_string().c_str());
  (void)service.unregister(handle);
  Status stale = service.submit(handle, Vec(g.n, 0.0)).get().status();
  std::printf("unregistered handle -> %s\n", stale.to_string().c_str());
  return 0;
}
