// The setup-once / solve-many serving pattern.
//
// Builds one SolverSetup for a grid Laplacian, then answers three kinds of
// query against it without ever rebuilding the chain:
//   1. a block of random right-hand sides via solve_batch,
//   2. a batch of effective-resistance pair queries,
//   3. a multi-channel harmonic extension (one batch for all channels).
#include <cstdio>

#include "apps/effective_resistance.h"
#include "kernels/kernels.h"
#include "apps/harmonic.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

int main() {
  using namespace parsdd;
  GeneratedGraph g = grid2d(40, 40);
  std::printf("grid 40x40: n=%u m=%zu\n", g.n, g.edges.size());

  // Setup phase: everything RHS-independent happens once, here.
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  std::printf("setup: %u chain levels, %zu chain edges\n",
              solver.setup().chain_levels(), solver.setup().chain_edges());

  // Query 1: a block of 8 right-hand sides in one lockstep solve.
  std::vector<Vec> cols;
  for (std::size_t c = 0; c < 8; ++c) {
    cols.push_back(random_unit_like(g.n, 11 + c));
  }
  BatchSolveReport report;
  MultiVec x =
      solver.solve_batch(MultiVec::from_columns(cols), &report).value();
  CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    Vec xc = x.column(c);
    double res = kernels::norm2(kernels::subtract(lap.apply(xc), cols[c])) / kernels::norm2(cols[c]);
    std::printf("  rhs %zu: %u iterations, residual %.2e\n", c,
                report.column_stats[c].iterations, res);
  }

  // Query 2: effective resistances for a batch of vertex pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {0, 1}, {0, g.n - 1}, {g.n / 2, g.n / 2 + 40}};
  std::vector<double> r = pair_resistances(solver, g.n, pairs).value();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::printf("  R(%u, %u) = %.6f\n", pairs[i].first, pairs[i].second, r[i]);
  }

  // Query 3: RGB harmonic interpolation from four pinned corners; the
  // interior system is set up once and all channels solve in one batch.
  std::vector<std::uint32_t> boundary = {0, 39, g.n - 40, g.n - 1};
  std::vector<std::vector<double>> channels = {
      {1.0, 0.0, 0.0, 0.5}, {0.0, 1.0, 0.0, 0.5}, {0.0, 0.0, 1.0, 0.5}};
  std::vector<Vec> rgb =
      harmonic_extension_multi(g.n, g.edges, boundary, channels).value();
  std::printf("  center pixel rgb = (%.3f, %.3f, %.3f)\n",
              rgb[0][g.n / 2 + 20], rgb[1][g.n / 2 + 20],
              rgb[2][g.n / 2 + 20]);
  return 0;
}
