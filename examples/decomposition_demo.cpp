// Low-diameter decomposition demo (Theorem 4.1) — the combinatorial core of
// the paper, shown directly: partition a graph into low-strong-diameter
// pieces and inspect the component/cut structure.
//
//   $ ./decomposition_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.h"
#include "partition/partition.h"

int main() {
  using namespace parsdd;
  GeneratedGraph g = grid2d(80, 80);
  std::printf("graph: 80x80 grid, n=%u m=%zu\n\n", g.n, g.edges.size());

  // Two edge classes: horizontal and vertical edges.
  std::vector<ClassedEdge> ce;
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    bool horizontal = g.edges[i].v == g.edges[i].u + 1;
    ce.push_back(ClassedEdge{g.edges[i].u, g.edges[i].v,
                             horizontal ? 0u : 1u,
                             static_cast<std::uint32_t>(i)});
  }

  std::printf("%-6s %-8s %-12s %-12s %-10s %-9s\n", "rho", "comps",
              "cut(horiz)", "cut(vert)", "bound", "attempts");
  for (std::uint32_t rho : {8u, 16u, 32u, 64u, 128u}) {
    PartitionResult r = partition(g.n, ce, 2, rho, {});
    std::printf("%-6u %-8u %-12.4f %-12.4f %-10.4f %-9u\n", rho,
                r.decomposition.num_components, r.cut_fraction[0],
                r.cut_fraction[1], r.threshold, r.attempts);
  }
  std::printf(
      "\nEvery component has strong (inside-the-piece) BFS radius <= rho;\n"
      "the cut fraction decays like 1/rho as Theorem 4.1(3) promises.\n");
  return 0;
}
