// E13 — setup persistence: cold chain build vs snapshot save/load.
//
// The warm-start claim: a server restart should pay snapshot-load time, not
// chain-build time.  For each grid we build the setup cold, Save() it,
// Load() it back, verify the loaded setup solves bitwise-identically, and
// report the cold/load ratio (the acceptance bar is >= 10x on grid
// 500x500).  Results land in BENCH_persistence.json.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "solver/solver_setup.h"

int main() {
  using namespace parsdd;
  using parsdd_bench::Timer;
  parsdd_bench::header(
      "E13: setup persistence (cold build vs snapshot load)",
      "A versioned binary snapshot (SolverSetup::Save/Load) should make a "
      "service restart pay I/O time, not chain-build time, with "
      "bitwise-identical solves.");

  parsdd_bench::BenchJson json("persistence");
  std::printf("%12s %10s %10s %10s %10s %8s %10s %8s\n", "grid", "n", "m",
              "setup_ms", "save_ms", "load_ms", "snap_MB", "speedup");

  bool all_bitwise = true;
  double final_speedup = 0.0;
  for (std::uint32_t side : {100u, 300u, 500u}) {
    GeneratedGraph g = grid2d(side, side);
    const std::string snap =
        "bench_persistence_" + std::to_string(side) + ".snap";

    Timer t_setup;
    SolverSetup cold = SolverSetup::for_laplacian(g.n, g.edges);
    double setup_s = t_setup.seconds();

    Timer t_save;
    Status saved = cold.Save(snap);
    double save_s = t_save.seconds();
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.to_string().c_str());
      return 1;
    }

    Timer t_load;
    StatusOr<SolverSetup> warm = SolverSetup::Load(snap);
    double load_s = t_load.seconds();
    if (!warm.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   warm.status().to_string().c_str());
      return 1;
    }

    std::size_t snap_bytes = 0;
    if (std::FILE* f = std::fopen(snap.c_str(), "rb")) {
      std::fseek(f, 0, SEEK_END);
      snap_bytes = static_cast<std::size_t>(std::ftell(f));
      std::fclose(f);
    }

    Vec b = random_unit_like(g.n, 1);
    StatusOr<Vec> x_cold = cold.solve(b);
    StatusOr<Vec> x_warm = warm->solve(b);
    bool bitwise = x_cold.ok() && x_warm.ok() &&
                   x_cold->size() == x_warm->size() &&
                   std::memcmp(x_cold->data(), x_warm->data(),
                               x_cold->size() * sizeof(double)) == 0;
    all_bitwise = all_bitwise && bitwise;

    double speedup = load_s > 0 ? setup_s / load_s : 0.0;
    final_speedup = speedup;
    std::printf("%8ux%-4u %10u %10zu %10.1f %10.1f %10.1f %8.1f %7.1fx %s\n",
                side, side, g.n, g.edges.size(), setup_s * 1e3, save_s * 1e3,
                load_s * 1e3, snap_bytes / 1048576.0, speedup,
                bitwise ? "" : "NOT-BITWISE");
    json.record()
        .str("experiment", "E13-persistence")
        .num("grid_side", side)
        .num("n", g.n)
        .num("m", static_cast<double>(g.edges.size()))
        .num("setup_s", setup_s)
        .num("save_s", save_s)
        .num("load_s", load_s)
        .num("snapshot_bytes", static_cast<double>(snap_bytes))
        .num("load_speedup_vs_setup", speedup)
        .num("bitwise_equal", bitwise ? 1 : 0);
    std::remove(snap.c_str());
  }

  json.write();
  std::printf("\nbitwise verification: %s\n",
              all_bitwise ? "PASS (loaded setup solves == cold setup solves)"
                          : "FAIL");
  std::printf("grid 500x500 load speedup: %.1fx (target >= 10x): %s\n",
              final_speedup, final_speedup >= 10.0 ? "PASS" : "FAIL");
  return all_bitwise && final_speedup >= 10.0 ? 0 : 1;
}
