// E12: dynamic micro-batching under concurrent single-solve traffic.
//
// Claim: when N independent clients each submit ONE right-hand side, the
// SolverService dispatcher that coalesces concurrently pending requests
// into solve_batch blocks delivers >= 2x the per-RHS throughput of
// dispatching each request as its own 1-column solve, with every returned
// column BITWISE equal to an independent solve of the same rhs (the
// multivec.h determinism contract makes coalescing invisible).  Emits
// BENCH_service.json for cross-PR tracking.
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "parallel/thread_pool.h"
#include "service/solver_service.h"
#include "solver/sdd_solver.h"

namespace {

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

struct Case {
  const char* name;
  std::uint32_t side;
  std::uint32_t clients;
};

struct ModeResult {
  double per_rhs_ms = 0.0;
  double throughput_rps = 0.0;
  double avg_block_cols = 0.0;
  bool bitwise_ok = true;
};

bool bitwise_equal(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// N client threads, one single-solve request each, against one handle.
ModeResult run_mode(bool coalesce, const GeneratedGraph& g,
                    const std::vector<Vec>& rhs,
                    const std::vector<Vec>& expected, int rounds) {
  ServiceOptions opts;
  opts.coalesce = coalesce;
  opts.max_batch = static_cast<std::uint32_t>(rhs.size());
  opts.max_linger_us = 2000;
  opts.workers = 1;
  SolverService service(opts);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  // Warm the handle so neither mode pays first-touch costs in the timing.
  (void)service.submit(h, rhs[0]).get();
  service.drain();
  ServiceStats before = service.stats();

  ModeResult out;
  const std::size_t n_clients = rhs.size();
  double total_s = 0.0;
  for (int r = 0; r < rounds; ++r) {
    std::vector<StatusOr<SolveResult>> results(
        n_clients, StatusOr<SolveResult>(UnavailableError("unset")));
    Timer t;
    std::vector<std::thread> clients;
    clients.reserve(n_clients);
    for (std::size_t c = 0; c < n_clients; ++c) {
      clients.emplace_back(
          [&, c] { results[c] = service.submit(h, rhs[c]).get(); });
    }
    for (auto& th : clients) th.join();
    total_s += t.seconds();
    for (std::size_t c = 0; c < n_clients; ++c) {
      if (!results[c].ok() || !bitwise_equal(results[c]->x, expected[c])) {
        out.bitwise_ok = false;
      }
    }
  }
  service.drain();
  ServiceStats after = service.stats();
  std::uint64_t blocks = after.dispatched_blocks - before.dispatched_blocks;
  std::uint64_t cols = after.dispatched_cols - before.dispatched_cols;
  out.avg_block_cols =
      blocks ? static_cast<double>(cols) / static_cast<double>(blocks) : 0.0;
  double requests = static_cast<double>(n_clients) * rounds;
  out.per_rhs_ms = 1e3 * total_s / requests;
  out.throughput_rps = requests / total_s;
  return out;
}

}  // namespace

int main() {
  parsdd_bench::header(
      "E12: SolverService micro-batching",
      "N concurrent single-solve clients, coalescing dispatcher vs "
      "dispatch-each-request-alone (2D grid Laplacian)");

  const Case cases[] = {
      {"grid 64x64", 64, 32},
      {"grid 100x100", 100, 64},
  };
  const int rounds = 3;
  BenchJson json("service");
  int exit_code = 0;

  std::printf("%-16s %8s %8s %14s %14s %9s %10s\n", "graph", "n", "clients",
              "alone ms/RHS", "coal ms/RHS", "speedup", "avg block");
  for (const Case& c : cases) {
    GeneratedGraph g = grid2d(c.side, c.side);

    // Reference answers: independent solves against an identical setup
    // (chain construction is deterministic, so the service's registry
    // setup performs the same arithmetic).
    SddSolver reference = SddSolver::for_laplacian(g.n, g.edges);
    std::vector<Vec> rhs, expected;
    for (std::uint32_t j = 0; j < c.clients; ++j) {
      rhs.push_back(random_unit_like(g.n, 42 + j));
      expected.push_back(reference.solve(rhs.back()).value());
    }

    ModeResult alone = run_mode(/*coalesce=*/false, g, rhs, expected, rounds);
    ModeResult coal = run_mode(/*coalesce=*/true, g, rhs, expected, rounds);
    double speedup = alone.per_rhs_ms / coal.per_rhs_ms;

    if (!alone.bitwise_ok || !coal.bitwise_ok) {
      std::fprintf(stderr,
                   "E12: %s: returned column deviates from independent "
                   "solve (bitwise)\n",
                   c.name);
      exit_code = 1;
    }
    std::printf("%-16s %8u %8u %14.3f %14.3f %8.2fx %10.1f\n", c.name, g.n,
                c.clients, alone.per_rhs_ms, coal.per_rhs_ms, speedup,
                coal.avg_block_cols);
    json.record()
        .str("graph", c.name)
        .num("n", g.n)
        .num("m", static_cast<double>(g.edges.size()))
        .num("clients", c.clients)
        .num("rounds", rounds)
        .num("alone_per_rhs_ms", alone.per_rhs_ms)
        .num("coalesced_per_rhs_ms", coal.per_rhs_ms)
        .num("alone_throughput_rps", alone.throughput_rps)
        .num("coalesced_throughput_rps", coal.throughput_rps)
        .num("speedup", speedup)
        .num("avg_block_cols", coal.avg_block_cols)
        .num("bitwise_equal", (alone.bitwise_ok && coal.bitwise_ok) ? 1 : 0);
  }
  json.write();
  return exit_code;
}
