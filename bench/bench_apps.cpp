// E9 — Section 1 applications built on the solver.
//
// (a) Spectral sparsifier quality: quadratic-form ratio vs compression.
// (b) Electrical-flow approximate max flow vs the exact (Edmonds-Karp)
//     oracle: value ratio as MWU iterations grow.
// (c) Harmonic interpolation (vision motivation): residual of the Dirichlet
//     solve.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "apps/harmonic.h"
#include "apps/maxflow.h"
#include "apps/sparsify.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

void sparsifier_table() {
  parsdd_bench::header(
      "E9a  Spectral sparsifier [SS08] quality vs epsilon",
      "columns: eps, kept edges / m, worst quadratic-form ratio over probe "
      "vectors (target within 1 +- O(eps))");
  GeneratedGraph g = erdos_renyi(300, 12000, 3);
  SddSolverOptions sopts;
  sopts.tolerance = 1e-9;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, sopts);
  std::printf("m=%zu n=%u\n", g.edges.size(), g.n);
  std::printf("%6s %12s %14s\n", "eps", "kept/m", "worst_ratio");
  for (double eps : {0.3, 0.5, 0.8}) {
    SpectralSparsifyOptions opts;
    opts.epsilon = eps;
    opts.constant = 0.5;
    opts.probes = 64;
    SpectralSparsifyResult r =
        spectral_sparsify(g.n, g.edges, solver, opts).value();
    double worst = 1.0;
    for (std::uint64_t s = 0; s < 8; ++s) {
      Vec x = random_unit_like(g.n, 50 + s);
      double ratio = laplacian_quadratic_form(r.sparsifier, x) /
                     laplacian_quadratic_form(g.edges, x);
      worst = std::max(worst, std::max(ratio, 1.0 / ratio));
    }
    std::printf("%6.2f %12.3f %14.3f\n", eps,
                static_cast<double>(r.sparsifier.size()) / g.edges.size(),
                worst);
  }
}

void maxflow_table() {
  parsdd_bench::header(
      "E9b  Electrical-flow approximate max flow [CKM+10] vs exact",
      "columns: MWU iterations, flow/optimal, Laplacian solves, seconds.  "
      "shape: ratio climbs toward 1 as iterations grow.");
  GeneratedGraph g = erdos_renyi(120, 480, 11);
  std::uint32_t s = 0, t = 60;
  double exact = exact_max_flow(g.n, g.edges, s, t);
  std::printf("exact max flow = %.3f (n=%u m=%zu)\n", exact, g.n,
              g.edges.size());
  std::printf("%6s %12s %8s %8s\n", "iters", "flow/opt", "solves", "sec");
  for (std::uint32_t iters : {5u, 20u, 80u}) {
    MaxflowOptions opts;
    opts.epsilon = 0.2;
    opts.max_iterations = iters;
    opts.solver.tolerance = 1e-8;
    Timer timer;
    MaxflowResult r = approx_max_flow(g.n, g.edges, s, t, opts).value();
    std::printf("%6u %12.4f %8u %8.2f\n", iters, r.flow_value / exact,
                r.laplacian_solves, timer.seconds());
  }
}

void harmonic_table(parsdd_bench::BenchJson& json) {
  parsdd_bench::header(
      "E9c  Harmonic interpolation (Dirichlet problem on grids)",
      "columns: grid side, interior unknowns, solve residual, 1-channel "
      "seconds, 4-channel seconds (one setup + solve_batch), per-channel "
      "amortization");
  std::printf("%6s %10s %12s %8s %8s %10s\n", "side", "interior", "residual",
              "sec", "sec_x4", "ms/chan");
  for (std::uint32_t side : {32u, 64u, 128u}) {
    GeneratedGraph g = grid2d(side, side);
    std::vector<std::uint32_t> boundary;
    std::vector<double> values;
    for (std::uint32_t i = 0; i < side; ++i) {
      boundary.push_back(i);
      values.push_back(1.0);
      boundary.push_back((side - 1) * side + i);
      values.push_back(-1.0);
    }
    Timer t;
    Vec x = harmonic_extension(g.n, g.edges, boundary, values).value();
    double sec = t.seconds();
    // Serving shape: four channels through one interior setup.
    std::vector<std::vector<double>> channels(4, values);
    for (std::size_t c = 0; c < channels.size(); ++c) {
      for (double& v : channels[c]) v *= 1.0 + 0.25 * c;
    }
    t.reset();
    std::vector<Vec> multi =
        harmonic_extension_multi(g.n, g.edges, boundary, channels).value();
    double sec4 = t.seconds();
    // Residual of the harmonic property at interior vertices.
    CsrMatrix lap = laplacian_from_edges(g.n, g.edges);
    Vec lx = lap.apply(x);
    double res = 0;
    std::vector<std::uint8_t> is_b(g.n, 0);
    for (auto bimg : boundary) is_b[bimg] = 1;
    for (std::uint32_t v = 0; v < g.n; ++v) {
      if (!is_b[v]) res = std::max(res, std::fabs(lx[v]));
    }
    std::printf("%6u %10u %12.2e %8.2f %8.2f %10.1f\n", side, g.n - 2 * side,
                res, sec, sec4, 1e3 * sec4 / channels.size());
    json.record()
        .str("experiment", "harmonic")
        .num("side", side)
        .num("interior", g.n - 2 * side)
        .num("single_channel_ms", 1e3 * sec)
        .num("four_channel_ms", 1e3 * sec4)
        .num("per_channel_ms", 1e3 * sec4 / channels.size())
        .num("residual", res);
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  parsdd_bench::BenchJson json("apps");
  sparsifier_table();
  maxflow_table();
  harmonic_table(json);
  json.write();
  return 0;
}
