// E4 — Theorem 5.9: low-stretch spanning subgraphs.
//
// Validates the two-sided tradeoff: |E(Ĝ)| <= n-1 + m*(c log^3 n / beta)^λ
// (edge budget shrinks geometrically in λ) while the average stretch stays
// polylogarithmic.  Also reports the well-spacing ablation (Lemma 5.7) on a
// large-spread instance.
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/stretch.h"
#include "lsst/ls_subgraph.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

void lambda_sweep() {
  parsdd_bench::header(
      "E4a  LSSubgraph edges vs stretch across lambda",
      "columns: lambda, |E(G_hat)|, extra edges over tree, avg stretch, max "
      "stretch, seconds.  shape: extras shrink ~y^-lambda, stretch grows.");
  GeneratedGraph g = grid2d(64, 64);
  std::printf("m=%zu n=%u\n", g.edges.size(), g.n);
  std::printf("%6s %10s %8s %10s %10s %8s\n", "lambda", "edges", "extra",
              "avg_str", "max_str", "sec");
  for (std::uint32_t lam : {1u, 2u, 3u, 4u}) {
    LsSubgraphOptions opts;
    opts.lambda = lam;
    Timer t;
    LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
    double sec = t.seconds();
    EdgeList sub;
    for (auto i : r.subgraph_edges) sub.push_back(g.edges[i]);
    StretchStats s = stretch_wrt_subgraph(g.n, sub, g.edges);
    std::printf("%6u %10zu %8zu %10.2f %10.1f %8.3f\n", lam, sub.size(),
                sub.size() - (g.n - 1), s.average(), s.max, sec);
  }
}

void spread_ablation() {
  parsdd_bench::header(
      "E4b  Well-spacing ablation on large weight spread (Lemma 5.7)",
      "columns: spread Delta, well-spacing on/off, classes, removed |F|, "
      "iterations, avg stretch.  shape: removal stays <= theta*m while the "
      "iteration chain is broken into independent segments.");
  std::printf("%10s %4s %8s %8s %6s %10s\n", "Delta", "ws", "classes",
              "removed", "iters", "avg_str");
  for (double spread : {1e4, 1e8}) {
    GeneratedGraph g = grid2d(48, 48);
    randomize_weights_log_uniform(g.edges, spread, 17);
    for (bool ws : {true, false}) {
      LsSubgraphOptions opts;
      opts.apply_well_spacing = ws;
      opts.theta = 0.1;
      LsSubgraphResult r = ls_subgraph(g.n, g.edges, opts);
      EdgeList sub;
      for (auto i : r.subgraph_edges) sub.push_back(g.edges[i]);
      StretchStats s = stretch_wrt_subgraph(g.n, sub, g.edges);
      std::printf("%10.0e %4s %8s %8zu %6u %10.2f\n", spread,
                  ws ? "on" : "off", "-", r.removed_count, r.iterations,
                  s.average());
    }
  }
}

void scaling() {
  parsdd_bench::header(
      "E4c  Subgraph stretch scaling vs n (polylog target)",
      "columns: n, m, |E(G_hat)|, avg stretch, seconds");
  std::printf("%8s %8s %10s %10s %8s\n", "n", "m", "edges", "avg_str", "sec");
  for (std::uint32_t side : {32u, 64u, 96u, 128u}) {
    GeneratedGraph g = grid2d(side, side);
    Timer t;
    LsSubgraphResult r = ls_subgraph(g.n, g.edges, {});
    double sec = t.seconds();
    EdgeList sub;
    for (auto i : r.subgraph_edges) sub.push_back(g.edges[i]);
    StretchStats s = stretch_wrt_subgraph(g.n, sub, g.edges);
    std::printf("%8u %8zu %10zu %10.2f %8.3f\n", g.n, g.edges.size(),
                sub.size(), s.average(), sec);
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  lambda_sweep();
  spread_ablation();
  scaling();
  return 0;
}
