// E8 — Chain solver vs classical baselines (CG, Jacobi-PCG).
//
// The interesting regime is ill-conditioned weights: high-contrast two-level
// weights blow up the condition number, stalling unpreconditioned CG while
// the combinatorial chain stays robust (the "who wins" shape for this line
// of work).  On easy unit-weight instances CG is competitive or better —
// the known constant-factor overhead of KMP-style chains.
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

struct Row {
  std::uint32_t iters = 0;
  double sec = 0.0;
  bool conv = false;
};

Row run(const GeneratedGraph& g, SolveMethod method) {
  SddSolverOptions opts;
  opts.method = method;
  opts.tolerance = 1e-8;
  opts.max_iterations = 30000;
  Timer t;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
  Vec b = random_unit_like(g.n, 7);
  SddSolveReport rep;
  (void)solver.solve(b, &rep).value();
  Row r;
  r.iters = rep.stats.iterations;
  r.sec = t.seconds();
  r.conv = rep.stats.converged;
  return r;
}

void contrast_table() {
  parsdd_bench::header(
      "E8a  Weight-contrast sweep (grid 64x64, tol 1e-8, total seconds "
      "including setup)",
      "columns: contrast, then (iters, sec, converged) for chain-PCG / "
      "plain CG / Jacobi-PCG");
  std::printf("%10s | %7s %8s %3s | %7s %8s %3s | %7s %8s %3s\n", "contrast",
              "chain", "sec", "ok", "cg", "sec", "ok", "jacobi", "sec", "ok");
  for (double contrast : {1.0, 1e4, 1e8}) {
    GeneratedGraph g = grid2d(48, 48);
    if (contrast > 1.0) randomize_weights_two_level(g.edges, contrast, 21);
    Row chain = run(g, SolveMethod::kChainPcg);
    Row cg = run(g, SolveMethod::kCg);
    Row jac = run(g, SolveMethod::kJacobiPcg);
    std::printf(
        "%10.0e | %7u %8.2f %3s | %7u %8.2f %3s | %7u %8.2f %3s\n", contrast,
        chain.iters, chain.sec, chain.conv ? "y" : "N", cg.iters, cg.sec,
        cg.conv ? "y" : "N", jac.iters, jac.sec, jac.conv ? "y" : "N");
  }
}

void family_table() {
  parsdd_bench::header(
      "E8b  Graph families (unit weights): constant-factor landscape",
      "columns: family, chain iters/sec, CG iters/sec");
  struct Case {
    const char* name;
    GeneratedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"grid-96", grid2d(72, 72)});
  cases.push_back({"torus-64", torus2d(64, 64)});
  cases.push_back({"er-n8k", erdos_renyi(5000, 20000, 9)});
  cases.push_back({"path-20k", path(12000)});
  std::printf("%-12s | %7s %8s | %7s %8s\n", "family", "chain", "sec", "cg",
              "sec");
  for (auto& c : cases) {
    Row chain = run(c.g, SolveMethod::kChainPcg);
    Row cg = run(c.g, SolveMethod::kCg);
    std::printf("%-12s | %7u %8.2f | %7u %8.2f\n", c.name, chain.iters,
                chain.sec, cg.iters, cg.sec);
  }
}

void mode_ablation() {
  parsdd_bench::header(
      "E8c  Ablation: ultrasparse vs sampled chain mode (grid 64x64)",
      "columns: mode, chain depth, chain edges, iters, sec");
  GeneratedGraph g = grid2d(48, 48);
  for (int mode = 0; mode < 2; ++mode) {
    SddSolverOptions opts;
    // The sampled mode multiplies inner work per outer iteration; bound the
    // ablation so the table regenerates in seconds.
    opts.tolerance = 1e-6;
    opts.max_iterations = 1500;
    opts.chain.mode =
        mode == 0 ? ChainMode::kUltrasparse : ChainMode::kSampled;
    Timer t;
    SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
    Vec b = random_unit_like(g.n, 8);
    SddSolveReport rep;
    (void)solver.solve(b, &rep).value();
    std::printf("%-12s depth=%u chain_m=%zu iters=%u conv=%s sec=%.2f\n",
                mode == 0 ? "ultrasparse" : "sampled", rep.chain_levels,
                rep.chain_edges, rep.stats.iterations,
                rep.stats.converged ? "y" : "N", t.seconds());
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  contrast_table();
  family_table();
  mode_ablation();
  return 0;
}
