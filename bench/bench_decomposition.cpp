// E1 + E2 — Theorem 4.1: parallel low-diameter decomposition.
//
// E1 validates the structural guarantees: every component center lies in its
// own component (P1) and the strong BFS-radius is at most rho (P2).
// E2 validates the cut guarantee: for each of k edge classes the fraction of
// edges cut is at most c1*k*log^3(n)/rho (P3) — the table reports the
// measured fraction against the bound, and the scaling of the measured cut
// fraction as rho grows (theory: ~ 1/rho).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "partition/partition.h"
#include "partition/split_graph.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

// Measured max strong radius over components (BFS from centers restricted
// to components).
std::uint32_t measured_strong_radius(const Graph& g, const Decomposition& d) {
  std::uint32_t n = g.num_vertices();
  std::vector<std::uint32_t> dist(n, kUnreached);
  std::vector<std::uint32_t> frontier = d.center;
  for (auto s : frontier) dist[s] = 0;
  std::uint32_t level = 0, max_level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<std::uint32_t> next;
    for (auto u : frontier) {
      for (auto v : g.neighbors(u)) {
        if (dist[v] != kUnreached || d.component[v] != d.component[u]) {
          continue;
        }
        dist[v] = level;
        max_level = level;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return max_level;
}

void e1_table() {
  parsdd_bench::header(
      "E1  Theorem 4.1 (P1, P2): strong radius <= rho",
      "columns: graph, n, m, rho, components, measured strong radius "
      "(must be <= rho), BFS rounds (depth surrogate), seconds");
  struct Case {
    const char* name;
    GeneratedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"grid2d-100x100", grid2d(100, 100)});
  cases.push_back({"er-n20k-m60k", erdos_renyi(20000, 60000, 7)});
  cases.push_back({"rmat-s14", rmat(14, 50000, 7)});
  cases.push_back({"path-50k", path(50000)});
  std::printf("%-16s %8s %8s %6s %8s %8s %8s %8s\n", "graph", "n", "m", "rho",
              "comps", "radius", "rounds", "sec");
  for (auto& c : cases) {
    Graph csr = Graph::from_edges(c.g.n, c.g.edges);
    for (std::uint32_t rho : {16u, 64u, 256u}) {
      Timer t;
      Decomposition d = split_graph(csr, rho, {});
      double sec = t.seconds();
      std::uint32_t rad = measured_strong_radius(csr, d);
      std::printf("%-16s %8u %8zu %6u %8u %8u %8u %8.3f%s\n", c.name, c.g.n,
                  c.g.edges.size(), rho, d.num_components, rad,
                  d.total_rounds, sec, rad <= rho ? "" : "  **VIOLATION**");
    }
  }
}

void e2_table() {
  parsdd_bench::header(
      "E2  Theorem 4.1 (P3): cut fraction <= c1*k*log^3(n)/rho per class",
      "columns: k classes, rho, measured worst class cut fraction, theorem "
      "bound (capped at 1), attempts used (geometric, Cor 4.8)");
  GeneratedGraph g = grid2d(120, 120);
  std::printf("%4s %6s %12s %12s %9s\n", "k", "rho", "measured", "bound",
              "attempts");
  for (std::uint32_t k : {1u, 3u, 6u}) {
    std::vector<ClassedEdge> ce;
    for (std::size_t i = 0; i < g.edges.size(); ++i) {
      ce.push_back(ClassedEdge{g.edges[i].u, g.edges[i].v,
                               static_cast<std::uint32_t>(i % k),
                               static_cast<std::uint32_t>(i)});
    }
    for (std::uint32_t rho : {16u, 32u, 64u, 128u, 256u}) {
      PartitionResult r = partition(g.n, ce, k, rho, {});
      double worst = 0;
      for (double f : r.cut_fraction) worst = std::max(worst, f);
      std::printf("%4u %6u %12.4f %12.4f %9u\n", k, rho, worst, r.threshold,
                  r.attempts);
    }
  }
  std::printf(
      "\nshape check: measured fraction decays ~1/rho and sits far below "
      "the (loose) theorem bound.\n");
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  e1_table();
  e2_table();
  return 0;
}
