// E10: parallel substrate microbenchmarks (scan/sort/BFS depth surrogates).
#include <benchmark/benchmark.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "parallel/primitives.h"

namespace {

void BM_ScanExclusive(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> v(n, 1);
  for (auto _ : state) {
    auto copy = v;
    benchmark::DoNotOptimize(parsdd::scan_exclusive(copy));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 16)->Arg(1 << 20);

void BM_GridBfs(benchmark::State& state) {
  std::uint32_t side = static_cast<std::uint32_t>(state.range(0));
  parsdd::GeneratedGraph g = parsdd::grid2d(side, side);
  parsdd::Graph graph = parsdd::Graph::from_edges(g.n, g.edges);
  std::uint32_t rounds = 0;
  for (auto _ : state) {
    auto r = parsdd::bfs(graph, 0);
    rounds = r.rounds;
    benchmark::DoNotOptimize(r.dist.data());
  }
  state.counters["bfs_rounds"] = rounds;
  state.SetItemsProcessed(state.iterations() * g.edges.size());
}
BENCHMARK(BM_GridBfs)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
