// E5 — Lemma 6.5: GreedyElimination reduces to <= 2(m-n+1) vertices in
// O(log n) parallel rounds.
//
// The table sweeps tree-plus-extras graphs (the shape B_i takes inside the
// chain) and reports rounds vs log2(n) and the vertex-count bound.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "parallel/rng.h"
#include "solver/greedy_elimination.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

// Tree plus a controlled number of extra random edges.
GeneratedGraph tree_plus_extras(std::uint32_t n, std::size_t extras,
                                std::uint64_t seed) {
  GeneratedGraph g = erdos_renyi(n, 3 * static_cast<std::size_t>(n), seed);
  auto idx = mst_kruskal(g.n, g.edges);
  GeneratedGraph out;
  out.n = g.n;
  for (auto i : idx) out.edges.push_back(g.edges[i]);
  Rng rng(seed + 1);
  for (std::size_t k = 0; k < extras; ++k) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.below(2 * k, n));
    std::uint32_t v = static_cast<std::uint32_t>(rng.below(2 * k + 1, n));
    if (u != v) out.edges.push_back(Edge{u, v, 1.0});
  }
  return out;
}

void rounds_table() {
  parsdd_bench::header(
      "E5a  Rounds vs n (Lemma 6.5: O(log n) whp)",
      "columns: n, extra edges, reduced n, bound 2*extra, rounds, "
      "8*log2(n)+8 (test ceiling), seconds");
  std::printf("%9s %8s %9s %9s %7s %8s %8s\n", "n", "extra", "red_n",
              "2*extra", "rounds", "ceiling", "sec");
  for (std::uint32_t n : {1000u, 10000u, 100000u, 400000u}) {
    std::size_t extras = n / 16;
    GeneratedGraph g = tree_plus_extras(n, extras, 3);
    std::size_t actual_extra = g.edges.size() - (n - 1);
    Timer t;
    GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
    double sec = t.seconds();
    std::printf("%9u %8zu %9u %9zu %7u %8.0f %8.3f\n", n, actual_extra,
                ge.reduced_n, 2 * actual_extra, ge.rounds,
                8 * std::log2(static_cast<double>(n)) + 8, sec);
  }
}

void density_table() {
  parsdd_bench::header(
      "E5b  Reduction vs extra-edge density",
      "columns: extra fraction, reduced n / n, rounds.  shape: reduced size "
      "tracks the number of extra edges, not n.");
  std::uint32_t n = 50000;
  std::printf("%10s %12s %7s\n", "extra/n", "red_n/n", "rounds");
  for (double frac : {0.005, 0.02, 0.08, 0.3}) {
    GeneratedGraph g =
        tree_plus_extras(n, static_cast<std::size_t>(frac * n), 5);
    GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
    std::printf("%10.3f %12.4f %7u\n", frac,
                static_cast<double>(ge.reduced_n) / n, ge.rounds);
  }
}

void grids_table() {
  parsdd_bench::header(
      "E5c  Dense-cycle inputs (grids): elimination stops at min degree 3",
      "columns: side, n, m, reduced n, reduced m, rounds, seconds");
  std::printf("%6s %9s %9s %9s %9s %7s %8s\n", "side", "n", "m", "red_n",
              "red_m", "rounds", "sec");
  for (std::uint32_t side : {50u, 100u, 200u}) {
    GeneratedGraph g = grid2d(side, side);
    Timer t;
    GreedyEliminationResult ge = greedy_eliminate(g.n, g.edges);
    double sec = t.seconds();
    std::printf("%6u %9u %9zu %9u %9zu %7u %8.3f\n", side, g.n,
                g.edges.size(), ge.reduced_n, ge.reduced_edges.size(),
                ge.rounds, sec);
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  rounds_table();
  density_table();
  grids_table();
  return 0;
}
