// E14 — thread scaling: setup and batched solve wall-clock at pool sizes
// 1/2/4/8 on one fixed workload, reported as speedup_vs_1t.
//
// The pool size is fixed at first use (PARSDD_THREADS is read once per
// process), so each point on the curve runs in a fresh subprocess: the
// parent re-executes this binary with PARSDD_THREADS set and `--measure`,
// the child prints its timings on stdout, and the parent assembles the
// curve into BENCH_scaling.json.
//
// Modes:
//   bench_scaling [--grid R C] [--k K]     full curve, write JSON
//   bench_scaling --check FLOOR.json ...   curve + regression gate: fails
//       (exit 1) when the 4-thread speedup_vs_1t drops below the floors in
//       FLOOR.json; skipped on machines with fewer than 4 hardware threads
//   bench_scaling --measure R C K          child mode (internal)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kernels/kernels.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "solver/sdd_solver.h"

namespace {

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

struct Measurement {
  double setup_ms = 0.0;
  double solve_ms = 0.0;  // one solve_batch call, best of 3
};

int run_child(std::uint32_t rows, std::uint32_t cols, std::size_t k) {
  GeneratedGraph g = grid2d(rows, cols);
  randomize_weights_log_uniform(g.edges, 1e3, 11);

  Timer t;
  SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
  double setup_ms = 1e3 * t.seconds();

  MultiVec b(g.n, k);
  for (std::size_t c = 0; c < k; ++c) {
    Vec col = random_unit_like(g.n, 13 + c);
    kernels::project_out_constant(col);
    b.set_column(c, col);
  }
  double solve_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {  // rep 0 is warmup
    t.reset();
    StatusOr<MultiVec> x = solver.solve_batch(b);
    double ms = 1e3 * t.seconds();
    if (!x.ok()) {
      std::fprintf(stderr, "bench_scaling: solve failed: %s\n",
                   x.status().message().c_str());
      return 1;
    }
    if (rep == 1 || (rep > 1 && ms < solve_ms)) solve_ms = ms;
  }
  std::printf("MEASURE setup_ms=%.17g solve_ms=%.17g\n", setup_ms, solve_ms);
  return 0;
}

std::string self_exe() {
  char buf[4096];
  ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len <= 0) return std::string();
  buf[len] = '\0';
  return buf;
}

bool run_point(const std::string& exe, int threads, std::uint32_t rows,
               std::uint32_t cols, std::size_t k, Measurement* out) {
  std::string cmd = "PARSDD_THREADS=" + std::to_string(threads) + " '" + exe +
                    "' --measure " + std::to_string(rows) + " " +
                    std::to_string(cols) + " " + std::to_string(k);
  std::FILE* p = ::popen(cmd.c_str(), "r");
  if (!p) return false;
  char line[256];
  bool got = false;
  while (std::fgets(line, sizeof(line), p)) {
    if (std::sscanf(line, "MEASURE setup_ms=%lf solve_ms=%lf", &out->setup_ms,
                    &out->solve_ms) == 2) {
      got = true;
    }
  }
  return ::pclose(p) == 0 && got;
}

/// Minimal scan for `"key": <number>` inside a flat JSON object — enough
/// for the checked-in floor file, with no parser dependency.
bool json_number(const std::string& text, const std::string& key,
                 double* out) {
  std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  at = text.find(':', at + needle.size());
  if (at == std::string::npos) return false;
  return std::sscanf(text.c_str() + at + 1, "%lf", out) == 1;
}

std::string read_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) return std::string();
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t rows = 500, cols = 500;
  std::size_t k = 16;
  const char* floor_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--measure") && i + 3 < argc) {
      return run_child(std::strtoul(argv[i + 1], nullptr, 10),
                       std::strtoul(argv[i + 2], nullptr, 10),
                       std::strtoul(argv[i + 3], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--grid") && i + 2 < argc) {
      rows = std::strtoul(argv[++i], nullptr, 10);
      cols = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--k") && i + 1 < argc) {
      k = std::strtoul(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--check") && i + 1 < argc) {
      floor_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--grid R C] [--k K] [--check FLOOR.json]\n",
                   argv[0]);
      return 2;
    }
  }

  parsdd_bench::header(
      "E14 thread scaling",
      "Claim: setup and batched solve speed up with the pool size while "
      "staying bitwise identical (see test_determinism).");

  std::string exe = self_exe();
  if (exe.empty()) {
    std::fprintf(stderr, "bench_scaling: cannot resolve own path\n");
    return 1;
  }

  const int curve[] = {1, 2, 4, 8};
  std::vector<Measurement> ms;
  std::printf("grid %ux%u, k=%zu, hw_concurrency=%u\n\n", rows, cols, k,
              std::thread::hardware_concurrency());
  std::printf("%8s %12s %12s %10s %10s\n", "threads", "setup ms", "solve ms",
              "setup x", "solve x");
  BenchJson json("scaling");
  for (int t : curve) {
    Measurement m;
    if (!run_point(exe, t, rows, cols, k, &m)) {
      std::fprintf(stderr, "bench_scaling: child PARSDD_THREADS=%d failed\n",
                   t);
      return 1;
    }
    ms.push_back(m);
    double sx = ms[0].setup_ms / m.setup_ms;
    double vx = ms[0].solve_ms / m.solve_ms;
    std::printf("%8d %12.1f %12.1f %9.2fx %9.2fx\n", t, m.setup_ms,
                m.solve_ms, sx, vx);
    json.record()
        .str("phase", "setup")
        .num("pool_threads", t)
        .num("n", static_cast<double>(rows) * cols)
        .num("k", static_cast<double>(k))
        .num("ms", m.setup_ms)
        .num("speedup_vs_1t", sx);
    json.record()
        .str("phase", "solve_batch")
        .num("pool_threads", t)
        .num("n", static_cast<double>(rows) * cols)
        .num("k", static_cast<double>(k))
        .num("ms", m.solve_ms)
        .num("speedup_vs_1t", vx);
  }
  json.write();

  if (!floor_path) return 0;

  // Regression gate: only meaningful where 4 real cores exist.
  if (std::thread::hardware_concurrency() < 4) {
    std::printf("\ncheck skipped: %u hardware threads < 4\n",
                std::thread::hardware_concurrency());
    return 0;
  }
  std::string floors = read_file(floor_path);
  double setup_floor = 0.0, solve_floor = 0.0;
  if (floors.empty() ||
      !json_number(floors, "setup_speedup_4t_min", &setup_floor) ||
      !json_number(floors, "solve_speedup_4t_min", &solve_floor)) {
    std::fprintf(stderr, "bench_scaling: cannot parse floors from %s\n",
                 floor_path);
    return 1;
  }
  double setup_4t = ms[0].setup_ms / ms[2].setup_ms;
  double solve_4t = ms[0].solve_ms / ms[2].solve_ms;
  int rc = 0;
  if (setup_4t < setup_floor) {
    std::fprintf(stderr, "FAIL setup speedup at 4 threads %.2fx < %.2fx\n",
                 setup_4t, setup_floor);
    rc = 1;
  }
  if (solve_4t < solve_floor) {
    std::fprintf(stderr, "FAIL solve speedup at 4 threads %.2fx < %.2fx\n",
                 solve_4t, solve_floor);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\ncheck ok: setup %.2fx >= %.2fx, solve %.2fx >= %.2fx\n",
                setup_4t, setup_floor, solve_4t, solve_floor);
  }
  return rc;
}
