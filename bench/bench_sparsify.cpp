// E6 — Lemma 6.1: IncrementalSparsify spectral sandwich and edge budget.
//
// On small graphs where dense solves are exact, measures the extreme
// generalized eigenvalues of the pencil (A, H): Lemma 6.1 promises
// G ≼ H ≼ κG up to sampling constants.  Also sweeps the edge budget vs κ.
#include <cstdio>

#include "bench_util.h"
#include "kernels/kernels.h"
#include "graph/generators.h"
#include "linalg/dense_ldlt.h"
#include "linalg/eig.h"
#include "linalg/laplacian.h"
#include "solver/incremental_sparsify.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

void sandwich_table() {
  parsdd_bench::header(
      "E6a  Measured pencil extremes of (A, H) vs kappa (grid 16x16)",
      "columns: kappa, |E(H)|, sampled, lambda_max(H^+A), nominal bound "
      "kappa.  shape: measured lambda_max well below the nominal kappa.");
  GeneratedGraph g = grid2d(16, 16);
  CsrMatrix la = laplacian_from_edges(g.n, g.edges);
  LinOp aop = [&](const Vec& in, Vec& out) {
    out.resize(in.size());
    la.multiply(in, out);
  };
  std::printf("m=%zu\n", g.edges.size());
  std::printf("%8s %8s %8s %12s %10s\n", "kappa", "edges", "sampled",
              "lmax(H+A)", "bound");
  for (double kappa : {8.0, 32.0, 128.0, 512.0}) {
    SparsifyOptions opts;
    opts.kappa = kappa;
    opts.p_floor = 0.1;
    SparsifyResult r = incremental_sparsify(g.n, g.edges, opts);
    CsrMatrix lh = laplacian_from_edges(g.n, r.h_edges);
    DenseLdlt fh = DenseLdlt::factor_laplacian(lh);
    LinOp hop = [&](const Vec& in, Vec& out) {
      out.resize(in.size());
      lh.multiply(in, out);
    };
    LinOp hsolve = [&](const Vec& in, Vec& out) {
      Vec t = in;
      kernels::project_out_constant(t);
      out = fh.solve(t);
    };
    double lmax = pencil_max_eig(aop, hop, hsolve, g.n, 200, 9);
    std::printf("%8.0f %8zu %8zu %12.2f %10.0f\n", kappa, r.h_edges.size(),
                r.sampled_count, lmax, kappa);
  }
}

void budget_table() {
  parsdd_bench::header(
      "E6b  Edge budget vs kappa (Lemma 6.1: |E(H)| = |E(G_hat)| + "
      "O(S m log n / kappa))",
      "columns: kappa, subgraph edges, sampled edges, total stretch m*S");
  GeneratedGraph g = grid2d(48, 48);
  std::printf("%8s %10s %9s %14s\n", "kappa", "subgraph", "sampled",
              "tot_stretch");
  for (double kappa : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    SparsifyOptions opts;
    opts.kappa = kappa;
    opts.p_floor = 0.0;
    SparsifyResult r = incremental_sparsify(g.n, g.edges, opts);
    std::printf("%8.0f %10zu %9zu %14.0f\n", kappa, r.subgraph_count,
                r.sampled_count, r.total_stretch);
  }
  std::printf(
      "\nshape check: sampled count halves as kappa doubles (1/kappa law)\n");
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  sandwich_table();
  budget_table();
  return 0;
}
