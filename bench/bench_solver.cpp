// E7 — Theorem 1.1: near-linear work and log(1/eps) dependence.
//
// (a) Solve time and top-level iterations vs m across graph families: the
//     work curve should be near-linear in m (time/m roughly flat).
// (b) Iterations vs log(1/eps): linear (the paper's log(1/eps) factor).
// (c) Chain telemetry: depth, total chain edges (O(m)), bottom visits.
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "parallel/thread_pool.h"
#include "solver/sdd_solver.h"

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

namespace {

void scaling_table(BenchJson& json) {
  parsdd_bench::header(
      "E7a  Work scaling vs m (chain PCG, tol 1e-8)",
      "columns: graph, n, m, build sec, solve sec, iters, solve_sec/m "
      "(x1e6; flatness = near-linear work), chain edges / m");
  std::printf("%-18s %8s %8s %9s %9s %6s %10s %9s\n", "graph", "n", "m",
              "build_s", "solve_s", "iters", "us_per_m", "chain/m");
  struct Case {
    const char* name;
    GeneratedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"grid-32", grid2d(32, 32)});
  cases.push_back({"grid-64", grid2d(64, 64)});
  cases.push_back({"grid-128", grid2d(128, 128)});
  cases.push_back({"grid3d-16", grid3d(16, 16, 16)});
  cases.push_back({"er-n10k-m40k", erdos_renyi(10000, 40000, 5)});
  cases.push_back({"pa-n10k-d4", preferential_attachment(10000, 4, 5)});
  for (auto& c : cases) {
    Timer tb;
    SddSolverOptions opts;
    opts.tolerance = 1e-8;
    opts.max_iterations = 20000;
    SddSolver solver = SddSolver::for_laplacian(c.g.n, c.g.edges, opts);
    double build = tb.seconds();
    Vec b = random_unit_like(c.g.n, 3);
    Timer ts;
    SddSolveReport rep;
    Vec x = solver.solve(b, &rep).value();
    double solve = ts.seconds();
    double m = static_cast<double>(c.g.edges.size());
    // Effective operator-stream bandwidth: each PCG iteration streams the
    // top-level CSR (val 8B + col 4B + gathered x 8B per nonzero, nnz =
    // n + 2m) — a lower bound that ignores chain-level traffic, comparable
    // across backends because the iteration count is bitwise-pinned.
    double op_bytes = static_cast<double>(rep.stats.iterations) *
                      (c.g.n + 2.0 * m) * 20.0;
    std::printf("%-18s %8u %8zu %9.2f %9.2f %6u %10.2f %9.2f\n", c.name,
                c.g.n, c.g.edges.size(), build, solve, rep.stats.iterations,
                1e6 * solve / m, rep.chain_edges / m);
    json.record()
        .str("graph", c.name)
        .num("n", c.g.n)
        .num("m", m)
        .num("setup_ms", 1e3 * build)
        .num("solve_ms", 1e3 * solve)
        .num("iterations", rep.stats.iterations)
        .num("chain_edges", static_cast<double>(rep.chain_edges))
        .num("per_rhs_ms", 1e3 * solve)
        .num("gbps", parsdd_bench::gbps(op_bytes, solve));
  }
}

void epsilon_table() {
  parsdd_bench::header(
      "E7b  Iterations vs accuracy (Theorem 1.1: log(1/eps) factor)",
      "columns: eps, iterations, relative residual at exit.  shape: "
      "iterations grow linearly in the digit count.");
  GeneratedGraph g = grid2d(80, 80);
  std::printf("%10s %6s %12s\n", "eps", "iters", "residual");
  for (double tol : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10}) {
    SddSolverOptions opts;
    opts.tolerance = tol;
    opts.max_iterations = 20000;
    SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
    Vec b = random_unit_like(g.n, 4);
    SddSolveReport rep;
    (void)solver.solve(b, &rep).value();
    std::printf("%10.0e %6u %12.2e\n", tol, rep.stats.iterations,
                rep.stats.relative_residual);
  }
}

void rpch_table() {
  parsdd_bench::header(
      "E7c  Pure rPCh passes vs accuracy (the paper's recursion driver)",
      "columns: eps, refinement passes, residual.  shape: passes ~ "
      "log(1/eps).");
  GeneratedGraph g = grid2d(48, 48);
  std::printf("%10s %7s %12s\n", "eps", "passes", "residual");
  for (double tol : {1e-2, 1e-4, 1e-6, 1e-8}) {
    SddSolverOptions opts;
    opts.tolerance = tol;
    opts.method = SolveMethod::kChainRpch;
    opts.max_iterations = 5000;
    SddSolver solver = SddSolver::for_laplacian(g.n, g.edges, opts);
    Vec b = random_unit_like(g.n, 5);
    SddSolveReport rep;
    (void)solver.solve(b, &rep).value();
    std::printf("%10.0e %7u %12.2e\n", tol, rep.stats.iterations,
                rep.stats.relative_residual);
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  BenchJson json("solver");
  scaling_table(json);
  epsilon_table();
  rpch_table();
  json.write();
  return 0;
}
