// E16: dynamic-graph updates (ROADMAP item 4, DESIGN.md section 10).
//
// Two claims, two tables:
//
//   A. Sustained update throughput under load: a SolverService handle
//      absorbs a stream of weight-only delta batches while concurrent
//      clients keep solving against it, with ZERO failed solves — the
//      stale-chain tier never blocks the solve path, and the structural
//      tier swaps rebuilt setups in asynchronously.
//
//   B. Staleness-vs-rebuild crossover: how many solves of a perturbed
//      system amortize a full rebuild?  For growing perturbation
//      magnitudes we time the stale-chain solve (old preconditioner,
//      updated matrix) against rebuild cost + fresh solve, and report
//      the break-even solve count rebuild_ms / (stale_ms - fresh_ms).
//
// Emits BENCH_update.json for cross-PR tracking.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "service/solver_service.h"
#include "solver/solver_setup.h"

namespace {

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

// Part A: one handle, `clients` solver threads hammering submit() while the
// main thread streams `batches` weight-only delta batches, then a short
// structural phase (insert/remove a chord) to exercise the async swap.
struct SustainedResult {
  double weight_updates_per_s = 0.0;
  double solves_per_s = 0.0;
  std::uint64_t solves_ok = 0;
  std::uint64_t solves_failed = 0;
  std::uint64_t update_failures = 0;
  std::uint64_t updates_applied = 0;
  std::uint64_t updates_deferred = 0;
  std::uint64_t rebuilds_completed = 0;
};

SustainedResult run_sustained(const GeneratedGraph& g, int clients,
                              int batches, int structural_pairs) {
  ServiceOptions opts;
  opts.workers = 2;
  SolverService service(opts);
  SetupHandle h = service.register_laplacian(g.n, g.edges).value();

  std::vector<Vec> rhs;
  for (int j = 0; j < 8; ++j) rhs.push_back(random_unit_like(g.n, 100 + j));
  // Warm the handle so the first timed solve is not the first-touch one.
  (void)service.submit(h, rhs[0]).get();
  service.drain();
  ServiceStats before = service.stats();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> solvers;
  solvers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    solvers.emplace_back([&, c] {
      for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        StatusOr<SolveResult> r =
            service.submit(h, rhs[(static_cast<std::uint64_t>(c) + i) % 8])
                .get();
        (r.ok() ? ok : failed).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  SustainedResult out;
  Timer total;

  // Weight-only stream: rescale the same 8 edges up and back down, so the
  // weights stay bounded and every batch classifies as stale-chain.
  Timer t;
  for (int i = 0; i < batches; ++i) {
    std::vector<EdgeDelta> batch;
    const double scale = (i % 2 == 0) ? 1.5 : 1.0;
    for (std::size_t e = 0; e < 8 && e < g.edges.size(); ++e) {
      batch.push_back({g.edges[e].u, g.edges[e].v, g.edges[e].w * scale});
    }
    StatusOr<UpdateAck> ack = service.update(h, batch);
    if (!ack.ok()) {
      std::fprintf(stderr, "E16: weight update failed: %s\n",
                   ack.status().to_string().c_str());
      ++out.update_failures;
      break;
    }
  }
  const double weight_s = t.seconds();

  // Structural phase: insert a chord, then remove it again, while the same
  // clients keep solving.  Each half schedules an async rebuild; dependent
  // batches (the removal references the inserted chord) must wait for the
  // previous rebuild to swap in — a batch deferred behind a rebuild is
  // validated against the still-serving setup (DESIGN.md section 10).
  auto await_swap = [&service] {
    for (int tries = 0; tries < 2000; ++tries) {
      if (service.stats().rebuilds_in_flight == 0) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  const EdgeDelta chord{0, g.n > 40 ? 40u : g.n - 1, 2.0};
  for (int i = 0; i < structural_pairs; ++i) {
    StatusOr<UpdateAck> ins = service.update(h, {chord});
    await_swap();
    StatusOr<UpdateAck> rem = service.update(h, {{chord.u, chord.v, 0.0}});
    await_swap();
    if (!ins.ok() || !rem.ok()) {
      std::fprintf(stderr, "E16: structural update failed: %s\n",
                   (!ins.ok() ? ins.status() : rem.status())
                       .to_string()
                       .c_str());
      ++out.update_failures;
      break;
    }
  }

  stop.store(true);
  for (auto& th : solvers) th.join();
  const double total_s = total.seconds();
  service.drain();
  ServiceStats after = service.stats();

  out.weight_updates_per_s =
      weight_s > 0.0 ? static_cast<double>(batches) / weight_s : 0.0;
  out.solves_ok = ok.load();
  out.solves_failed = failed.load();
  out.solves_per_s = total_s > 0.0
                         ? static_cast<double>(out.solves_ok) / total_s
                         : 0.0;
  out.updates_applied = after.updates_applied - before.updates_applied;
  out.updates_deferred = after.updates_deferred - before.updates_deferred;
  out.rebuilds_completed =
      after.rebuilds_completed - before.rebuilds_completed;
  return out;
}

double best_of_3_solve_ms(const SolverSetup& setup, const Vec& b,
                          std::uint32_t* iters) {
  double best = 1e300;
  for (int r = 0; r < 3; ++r) {
    Timer t;
    SddSolveReport rep;
    (void)setup.solve(b, &rep).value();
    best = std::min(best, 1e3 * t.seconds());
    if (iters != nullptr) *iters = rep.stats.iterations;
  }
  return best;
}

double rel_residual(const CsrMatrix& lap, const Vec& x, const Vec& b) {
  return kernels::norm2(kernels::subtract(lap.apply(x), b)) /
         kernels::norm2(b);
}

}  // namespace

int main() {
  parsdd_bench::header(
      "E16: dynamic-graph updates",
      "A: sustained update stream under concurrent solves (zero failures); "
      "B: stale-chain solve vs rebuild crossover (2D grid Laplacian)");

  BenchJson json("update");
  int exit_code = 0;

  // --- Part A: sustained updates/sec under concurrent solve load. -------
  {
    const std::uint32_t side = 64;
    const int clients = 4, batches = 200, structural_pairs = 3;
    GeneratedGraph g = grid2d(side, side);
    SustainedResult r = run_sustained(g, clients, batches, structural_pairs);

    std::printf("%-14s %8s %8s %12s %12s %9s %9s %9s\n", "graph", "n",
                "clients", "upd/s", "solves/s", "solve-ok", "failed",
                "rebuilds");
    std::printf("%-14s %8u %8d %12.1f %12.1f %9llu %9llu %9llu\n",
                "grid 64x64", g.n, clients, r.weight_updates_per_s,
                r.solves_per_s, static_cast<unsigned long long>(r.solves_ok),
                static_cast<unsigned long long>(r.solves_failed),
                static_cast<unsigned long long>(r.rebuilds_completed));
    if (r.solves_failed != 0 || r.update_failures != 0) {
      std::fprintf(stderr,
                   "E16: %llu solve(s), %llu update(s) failed under the "
                   "update stream\n",
                   static_cast<unsigned long long>(r.solves_failed),
                   static_cast<unsigned long long>(r.update_failures));
      exit_code = 1;
    }
    json.record()
        .str("experiment", "E16-sustained")
        .str("graph", "grid 64x64")
        .num("n", g.n)
        .num("clients", clients)
        .num("weight_batches", batches)
        .num("structural_pairs", structural_pairs)
        .num("updates_per_s", r.weight_updates_per_s)
        .num("solves_per_s", r.solves_per_s)
        .num("solves_ok", static_cast<double>(r.solves_ok))
        .num("solves_failed", static_cast<double>(r.solves_failed))
        .num("updates_applied", static_cast<double>(r.updates_applied))
        .num("updates_deferred", static_cast<double>(r.updates_deferred))
        .num("rebuilds_completed", static_cast<double>(r.rebuilds_completed));
  }

  // --- Part B: staleness-vs-rebuild crossover. --------------------------
  {
    const std::uint32_t side = 48;
    GeneratedGraph g = grid2d(side, side);
    SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
    Vec b = random_unit_like(g.n, 7);

    std::printf("\n%-10s %10s %10s %10s %10s %10s %12s\n", "scale",
                "stale ms", "stale it", "fresh ms", "fresh it", "rebuild ms",
                "crossover");
    const double scales[] = {1.5, 4.0, 16.0, 64.0, 256.0};
    const std::size_t perturbed = 64;
    for (double scale : scales) {
      std::vector<EdgeDelta> deltas;
      EdgeList updated_edges = g.edges;
      for (std::size_t e = 0; e < perturbed && e < g.edges.size(); ++e) {
        deltas.push_back({g.edges[e].u, g.edges[e].v, g.edges[e].w * scale});
        updated_edges[e].w = g.edges[e].w * scale;
      }
      CsrMatrix lap = laplacian_from_edges(g.n, updated_edges);

      SolverSetup stale = setup.update(deltas).value();
      std::uint32_t stale_iters = 0, fresh_iters = 0;
      double stale_ms = best_of_3_solve_ms(stale, b, &stale_iters);

      Timer tr;
      SolverSetup fresh = stale.rebuild();
      double rebuild_ms = 1e3 * tr.seconds();
      double fresh_ms = best_of_3_solve_ms(fresh, b, &fresh_iters);

      // Both paths must still answer the *updated* system.
      double stale_res = rel_residual(lap, stale.solve(b).value(), b);
      double fresh_res = rel_residual(lap, fresh.solve(b).value(), b);
      if (stale_res > 1e-6 || fresh_res > 1e-6) {
        std::fprintf(stderr,
                     "E16: scale %g residual regression (stale %.3e, "
                     "fresh %.3e)\n",
                     scale, stale_res, fresh_res);
        exit_code = 1;
      }

      // Break-even solve count: below this many solves, keep the stale
      // chain; above it, the rebuild has paid for itself.
      double penalty_ms = stale_ms - fresh_ms;
      double crossover =
          penalty_ms > 0.0 ? rebuild_ms / penalty_ms : 0.0;
      std::printf("%-10g %10.3f %10u %10.3f %10u %10.3f %12.1f\n", scale,
                  stale_ms, stale_iters, fresh_ms, fresh_iters, rebuild_ms,
                  crossover);
      json.record()
          .str("experiment", "E16-crossover")
          .str("graph", "grid 48x48")
          .num("n", g.n)
          .num("scale", scale)
          .num("perturbed_edges", static_cast<double>(perturbed))
          .num("stale_solve_ms", stale_ms)
          .num("stale_iterations", stale_iters)
          .num("fresh_solve_ms", fresh_ms)
          .num("fresh_iterations", fresh_iters)
          .num("rebuild_ms", rebuild_ms)
          .num("crossover_solves", crossover)
          .num("stale_residual", stale_res)
          .num("fresh_residual", fresh_res);
    }
  }

  json.write();
  return exit_code;
}
