// E11: the setup/solve split under a serving workload.
//
// Claim: building the preconditioner chain once and answering a 64-RHS
// batch through solve_batch is >= 2x cheaper per RHS than 64 repeated
// single solves, because every SpMM, elimination fold, and bottom dense
// solve is shared by the whole block.  Reports setup time, amortized
// per-RHS time for both strategies, and the speedup; emits
// BENCH_batch.json for cross-PR tracking.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "linalg/laplacian.h"
#include "parallel/thread_pool.h"
#include "solver/sdd_solver.h"

namespace {

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

struct Case {
  const char* name;
  std::uint32_t side;
  std::uint32_t k;
};

double max_abs_col_diff(const MultiVec& batch, std::size_t c,
                        const Vec& single) {
  double worst = 0.0;
  for (std::size_t i = 0; i < single.size(); ++i) {
    worst = std::max(worst, std::fabs(batch.at(i, c) - single[i]));
  }
  return worst;
}

}  // namespace

int main() {
  parsdd_bench::header(
      "E11: batched multi-RHS solving",
      "setup once + solve_batch(k) vs k repeated single solves "
      "(2D grid Laplacian)");

  const Case cases[] = {
      {"grid 64x64", 64, 64},
      {"grid 100x100", 100, 64},
      {"grid 100x100 k=16", 100, 16},
  };
  BenchJson json("batch");

  std::printf("%-20s %8s %8s %4s %10s %14s %14s %9s\n", "graph", "n", "m", "k",
              "setup ms", "single ms/RHS", "batch ms/RHS", "speedup");
  for (const Case& c : cases) {
    GeneratedGraph g = grid2d(c.side, c.side);
    Timer t;
    SddSolver solver = SddSolver::for_laplacian(g.n, g.edges);
    double setup_s = t.seconds();

    std::vector<Vec> cols;
    for (std::uint32_t j = 0; j < c.k; ++j) {
      cols.push_back(random_unit_like(g.n, 42 + j));
    }
    MultiVec b = MultiVec::from_columns(cols);

    // Warm both paths once so neither pays first-touch costs.
    (void)solver.solve(cols[0]).value();
    (void)solver.solve_batch(MultiVec::from_columns({cols[0]})).value();

    t.reset();
    std::vector<Vec> singles;
    for (std::uint32_t j = 0; j < c.k; ++j) {
      singles.push_back(solver.solve(cols[j]).value());
    }
    double single_s = t.seconds();

    t.reset();
    BatchSolveReport brep;
    MultiVec x = solver.solve_batch(b, &brep).value();
    double batch_s = t.seconds();

    // Correctness guard: the batch must reproduce the single solves.
    double worst = 0.0;
    for (std::uint32_t j = 0; j < c.k; ++j) {
      worst = std::max(worst, max_abs_col_diff(x, j, singles[j]));
    }
    if (!(worst < 1e-8)) {
      std::fprintf(stderr, "E11: batch deviates from single solves (%.3e)\n",
                   worst);
      return 1;
    }

    double single_per = 1e3 * single_s / c.k;
    double batch_per = 1e3 * batch_s / c.k;
    double speedup = single_s / batch_s;
    // Block operator-stream bandwidth: the batch shares each CSR traversal
    // across k columns, so per nonzero it streams val+col once (12B) plus
    // k gathered row reads (8B each); iterations = the slowest column's.
    std::uint32_t batch_iters = 0;
    for (const IterStats& st : brep.column_stats) {
      batch_iters = std::max(batch_iters, st.iterations);
    }
    double op_bytes = static_cast<double>(batch_iters) *
                      (g.n + 2.0 * static_cast<double>(g.edges.size())) *
                      (12.0 + 8.0 * c.k);
    std::printf("%-20s %8u %8zu %4u %10.1f %14.3f %14.3f %8.2fx\n", c.name,
                g.n, g.edges.size(), c.k, 1e3 * setup_s, single_per, batch_per,
                speedup);
    json.record()
        .str("graph", c.name)
        .num("n", g.n)
        .num("m", static_cast<double>(g.edges.size()))
        .num("k", c.k)
        .num("setup_ms", 1e3 * setup_s)
        .num("single_per_rhs_ms", single_per)
        .num("batch_per_rhs_ms", batch_per)
        .num("speedup", speedup)
        .num("gbps", parsdd_bench::gbps(op_bytes, batch_s))
        .num("max_abs_diff", worst);
  }
  json.write();
  return 0;
}
