// Shared helpers for the experiment benches (E1-E9): wall-clock timing and
// aligned table output.  Each bench binary runs with no arguments, prints
// the table(s) for its experiment id (see DESIGN.md section 3), and exits.
#pragma once

#include <chrono>
#include <cstdio>

namespace parsdd_bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

}  // namespace parsdd_bench
