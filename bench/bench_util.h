// Shared helpers for the experiment benches (E1-E9): wall-clock timing,
// aligned table output, and machine-readable BENCH_*.json emission so the
// perf trajectory can be tracked across PRs.  Each bench binary runs with no
// arguments, prints the table(s) for its experiment id (see DESIGN.md
// section 3), drops BENCH_<name>.json in the working directory, and exits.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "kernels/kernels.h"
#include "parallel/thread_pool.h"

namespace parsdd_bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n%s\n(kernel backend: %s)\n\n", experiment,
              claim, parsdd::kernels::backend_name());
}

/// Effective memory bandwidth in GB/s for a kernel that moves `bytes` in
/// `seconds` — the roofline-style figure the SIMD columns of the solve
/// benches report next to their wall-clock ms.
inline double gbps(double bytes, double seconds) {
  return seconds > 0.0 ? bytes / seconds * 1e-9 : 0.0;
}

/// Accumulates flat key/value records and writes them as a JSON array to
/// BENCH_<name>.json.  One record per measured configuration; numeric
/// values keep full precision.  Usage:
///   BenchJson json("batch");
///   json.record().num("n", n).num("setup_ms", ms).str("mode", "batch");
///   json.write();
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  class Record {
   public:
    Record& num(const std::string& key, double value) {
      char buf[64];
      if (std::isfinite(value)) {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
      } else {
        // JSON has no nan/inf literals; null keeps the file parseable.
        std::snprintf(buf, sizeof(buf), "null");
      }
      fields_.push_back("\"" + key + "\": " + buf);
      return *this;
    }
    Record& str(const std::string& key, const std::string& value) {
      fields_.push_back("\"" + key + "\": \"" + escape(value) + "\"");
      return *this;
    }
    std::string json(const std::string& extra = std::string()) const {
      std::string out = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ", ";
        out += fields_[i];
      }
      if (!extra.empty()) {
        if (!fields_.empty()) out += ", ";
        out += extra;
      }
      return out + "}";
    }

   private:
    static std::string escape(const std::string& s) {
      std::string out;
      for (char c : s) {
        if (c == '"' || c == '\\') {
          out += '\\';
          out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
      }
      return out;
    }
    std::vector<std::string> fields_;
  };

  Record& record() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes BENCH_<name>.json; returns false (and warns) on I/O failure.
  bool write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    // Every record carries the execution environment so curves from
    // different pool sizes are distinguishable after the fact.
    char env[128];
    std::snprintf(env, sizeof(env),
                  "\"threads\": %d, \"hw_concurrency\": %u, "
                  "\"backend\": \"%s\"",
                  parsdd::ThreadPool::instance().concurrency(),
                  std::thread::hardware_concurrency(),
                  parsdd::kernels::backend_name());
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", records_[i].json(env).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %s (%zu records)\n", path.c_str(), records_.size());
    return true;
  }

 private:
  std::string name_;
  // Deque: references handed out by record() stay valid as more records are
  // added.
  std::deque<Record> records_;
};

}  // namespace parsdd_bench
