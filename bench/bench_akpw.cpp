// E3 — Theorem 5.1: AKPW low-stretch spanning trees.
//
// Validates that the average stretch of the AKPW tree grows slowly
// (sub-polynomially) with n and compares against the MST baseline (the
// paper's construction should win on stretch as n grows), and that the
// iteration count tracks O(log Delta + tau).
#include <cstdio>

#include "bench_util.h"
#include "graph/generators.h"
#include "graph/mst.h"
#include "graph/stretch.h"
#include "graph/tree.h"
#include "lsst/akpw.h"

using namespace parsdd;
using parsdd_bench::Timer;

namespace {

double tree_avg_stretch(std::uint32_t n, const EdgeList& edges,
                        const std::vector<std::uint32_t>& tree_idx) {
  EdgeList tree;
  for (auto i : tree_idx) tree.push_back(edges[i]);
  RootedTree t = RootedTree::from_edges(n, tree, 0);
  return stretch_wrt_tree(edges, t).average();
}

void stretch_vs_n() {
  parsdd_bench::header(
      "E3a  AKPW stretch scaling vs n (unit-weight grids)",
      "columns: n, m, AKPW avg stretch, MST avg stretch, AKPW iterations, "
      "seconds.  shape: AKPW stretch grows slowly with n.");
  std::printf("%8s %8s %12s %12s %6s %8s\n", "n", "m", "akpw", "mst", "iters",
              "sec");
  for (std::uint32_t side : {32u, 64u, 128u, 192u}) {
    GeneratedGraph g = grid2d(side, side);
    Timer t;
    AkpwResult r = akpw_tree(g.n, g.edges, {});
    double sec = t.seconds();
    double akpw_stretch = tree_avg_stretch(g.n, g.edges, r.tree_edges);
    double mst_stretch =
        tree_avg_stretch(g.n, g.edges, mst_kruskal(g.n, g.edges));
    std::printf("%8u %8zu %12.2f %12.2f %6u %8.3f\n", g.n, g.edges.size(),
                akpw_stretch, mst_stretch, r.iterations, sec);
  }
}

void stretch_vs_spread() {
  parsdd_bench::header(
      "E3b  AKPW iterations vs weight spread Delta (Theorem 5.1: O(log "
      "Delta) iterations)",
      "columns: Delta, weight classes, iterations, avg stretch, seconds");
  std::printf("%10s %8s %6s %12s %8s\n", "Delta", "classes", "iters",
              "stretch", "sec");
  for (double spread : {1.0, 1e2, 1e4, 1e8}) {
    GeneratedGraph g = grid2d(64, 64);
    if (spread > 1.0) randomize_weights_log_uniform(g.edges, spread, 11);
    Timer t;
    AkpwResult r = akpw_tree(g.n, g.edges, {});
    double sec = t.seconds();
    double s = tree_avg_stretch(g.n, g.edges, r.tree_edges);
    std::printf("%10.0e %8u %6u %12.2f %8.3f\n", spread, r.num_classes,
                r.iterations, s, sec);
  }
}

void families() {
  parsdd_bench::header(
      "E3c  AKPW across graph families",
      "columns: family, n, m, AKPW avg stretch, MST avg stretch");
  struct Case {
    const char* name;
    GeneratedGraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"er-n4k", erdos_renyi(4000, 16000, 3)});
  cases.push_back({"pa-n4k-d4", preferential_attachment(4000, 4, 3)});
  {
    GeneratedGraph g = torus2d(64, 64);
    cases.push_back({"torus-64", std::move(g)});
  }
  {
    GeneratedGraph g = grid2d(64, 64);
    randomize_weights_two_level(g.edges, 1e4, 5);
    cases.push_back({"grid-contrast", std::move(g)});
  }
  std::printf("%-16s %8s %8s %10s %10s\n", "family", "n", "m", "akpw", "mst");
  for (auto& c : cases) {
    AkpwResult r = akpw_tree(c.g.n, c.g.edges, {});
    double sa = tree_avg_stretch(c.g.n, c.g.edges, r.tree_edges);
    double sm = tree_avg_stretch(c.g.n, c.g.edges,
                                 mst_kruskal(c.g.n, c.g.edges));
    std::printf("%-16s %8u %8zu %10.2f %10.2f\n", c.name, c.g.n,
                c.g.edges.size(), sa, sm);
  }
}

}  // namespace

int main() {
  setvbuf(stdout, nullptr, _IOLBF, 0);
  stretch_vs_n();
  stretch_vs_spread();
  families();
  return 0;
}
