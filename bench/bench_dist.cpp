// E15 — sharded multi-process serving (dist/coordinator.h).
//
// Claim under test: the coordinator turns worker processes into serving
// capacity — ~10^3 synchronous clients see higher aggregate throughput as
// workers are added, each answer stays bitwise identical to an in-process
// solve, and killing a worker mid-load costs one bounded recovery window
// (respawn + snapshot re-registration), not a restart of the fleet.
//
// For each worker count in {1, 2, 4}: register four distinct grid setups
// (spread round-robin with rebalance()), drive 16 client threads x 64
// synchronous requests each (1024 per configuration), then SIGKILL worker 0
// under fresh load and measure time-to-first-answer afterwards.  Emits
// BENCH_dist.json: per-RHS latency (mean/p50/p99), throughput, and both
// recovery clocks (the coordinator's internal respawn time and the
// client-observed outage).
//
// Worker binary discovery mirrors test_dist: the PARSDD_WORKER_BIN
// environment variable, else the compile definition from bench/CMakeLists.
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dist/coordinator.h"
#include "graph/generators.h"
#include "solver/solver_setup.h"

namespace {

using namespace parsdd;
using parsdd_bench::BenchJson;
using parsdd_bench::Timer;

constexpr std::uint32_t kClients = 16;
constexpr std::uint32_t kReqsPerClient = 64;

struct Workload {
  std::string snapshot;
  std::uint32_t n = 0;
  Vec b;
  Vec expected;
};

std::string worker_binary() {
  const char* env = std::getenv("PARSDD_WORKER_BIN");
  if (env != nullptr && env[0] != '\0') return env;
#ifdef PARSDD_WORKER_BIN
  return PARSDD_WORKER_BIN;
#else
  return std::string();
#endif
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::size_t idx = static_cast<std::size_t>(p * (sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

int main() {
  parsdd_bench::header(
      "E15: sharded multi-process serving",
      "1024 synchronous clients vs 1/2/4 workers: throughput, per-RHS "
      "latency, and recovery after SIGKILL");
  if (worker_binary().empty()) {
    std::fprintf(stderr, "bench_dist: no worker binary (PARSDD_WORKER_BIN)\n");
    return 1;
  }

  const std::string snap_dir = "bench_dist_snapshots";
  mkdir(snap_dir.c_str(), 0755);

  // Four distinct setups: different grids so each has its own snapshot
  // digest (and so shard placement has something to spread).  ~1k-node
  // grids keep the 3 x 1024-request sweep inside smoke-bench time while
  // still being large enough that solve cost dominates wire cost.
  const std::uint32_t grids[4][2] = {{32, 32}, {31, 33}, {33, 31}, {30, 34}};
  std::vector<Workload> work;
  for (int i = 0; i < 4; ++i) {
    GeneratedGraph g = grid2d(grids[i][0], grids[i][1]);
    SolverSetup setup = SolverSetup::for_laplacian(g.n, g.edges);
    Workload w;
    w.snapshot = snap_dir + "/grid_" + std::to_string(i) + ".snap";
    if (!setup.Save(w.snapshot).ok()) {
      std::fprintf(stderr, "bench_dist: cannot save %s\n",
                   w.snapshot.c_str());
      return 1;
    }
    w.n = g.n;
    w.b = random_unit_like(g.n, 1000 + i);
    w.expected = setup.solve(w.b).value();
    work.push_back(std::move(w));
  }

  BenchJson json("dist");
  std::printf("%8s %9s %12s %10s %10s %10s %12s %12s\n", "workers", "reqs",
              "throughput", "lat_mean", "lat_p50", "lat_p99", "respawn_ms",
              "outage_ms");

  for (std::uint32_t workers : {1u, 2u, 4u}) {
    dist::CoordinatorOptions opts;
    opts.workers = workers;
    opts.worker_binary = worker_binary();
    opts.snapshot_dir = snap_dir;
    opts.worker_threads = 2;
    StatusOr<std::unique_ptr<dist::Coordinator>> started =
        dist::Coordinator::Start(opts);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_dist: start(%u): %s\n", workers,
                   started.status().to_string().c_str());
      return 1;
    }
    dist::Coordinator& c = **started;

    std::vector<SetupHandle> handles;
    for (std::size_t i = 0; i < work.size(); ++i) {
      StatusOr<SetupHandle> h = c.register_from_snapshot(work[i].snapshot);
      if (!h.ok()) {
        std::fprintf(stderr, "bench_dist: register: %s\n",
                     h.status().to_string().c_str());
        return 1;
      }
      // Deterministic even spread instead of digest-modulo luck.
      if (!c.rebalance(*h, static_cast<std::uint32_t>(i) % workers).ok()) {
        std::fprintf(stderr, "bench_dist: rebalance failed\n");
        return 1;
      }
      handles.push_back(*h);
    }

    // Load phase: kClients synchronous client threads, round-robin over the
    // registered setups, each verifying its first answer bitwise.
    std::vector<std::vector<double>> lat_ms(kClients);
    std::atomic<bool> wrong{false};
    Timer load;
    std::vector<std::thread> clients;
    for (std::uint32_t t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        lat_ms[t].reserve(kReqsPerClient);
        for (std::uint32_t r = 0; r < kReqsPerClient; ++r) {
          const std::size_t w = (t + r) % work.size();
          Timer one;
          StatusOr<SolveResult> res = c.submit(handles[w], work[w].b).get();
          lat_ms[t].push_back(one.seconds() * 1e3);
          if (!res.ok() ||
              (r == 0 &&
               (res->x.size() != work[w].expected.size() ||
                std::memcmp(res->x.data(), work[w].expected.data(),
                            res->x.size() * sizeof(double)) != 0))) {
            wrong.store(true);
          }
        }
      });
    }
    for (std::thread& th : clients) th.join();
    double load_s = load.seconds();
    if (wrong.load()) {
      std::fprintf(stderr,
                   "bench_dist: a request failed or diverged bitwise\n");
      return 1;
    }

    std::vector<double> all_ms;
    for (const auto& per_client : lat_ms) {
      all_ms.insert(all_ms.end(), per_client.begin(), per_client.end());
    }
    std::sort(all_ms.begin(), all_ms.end());
    double mean_ms = 0.0;
    for (double v : all_ms) mean_ms += v;
    mean_ms /= static_cast<double>(all_ms.size());
    const double total_reqs = static_cast<double>(all_ms.size());
    const double throughput = total_reqs / load_s;

    // Recovery phase: kill the worker serving handle 0 under a trickle of
    // load and clock the client-visible outage (kill -> next OK answer).
    std::uint32_t victim = c.worker_of(handles[0]).value();
    Timer outage;
    if (!c.kill_worker(victim).ok()) {
      std::fprintf(stderr, "bench_dist: kill failed\n");
      return 1;
    }
    double outage_ms = -1.0;
    for (int tries = 0; tries < 5000; ++tries) {
      StatusOr<SolveResult> res = c.submit(handles[0], work[0].b).get();
      if (res.ok()) {
        outage_ms = outage.seconds() * 1e3;
        bool same = res->x.size() == work[0].expected.size() &&
                    std::memcmp(res->x.data(), work[0].expected.data(),
                                res->x.size() * sizeof(double)) == 0;
        if (!same) {
          std::fprintf(stderr, "bench_dist: post-recovery answer diverged\n");
          return 1;
        }
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    dist::DistStats st = c.stats();

    std::printf("%8u %9.0f %9.0f/s %8.2fms %8.2fms %8.2fms %12.1f %12.1f\n",
                workers, total_reqs, throughput, mean_ms,
                percentile(all_ms, 0.50), percentile(all_ms, 0.99),
                st.last_recovery_ms, outage_ms);
    json.record()
        .num("workers", workers)
        .num("clients", kClients)
        .num("requests", total_reqs)
        .num("load_s", load_s)
        .num("throughput_rps", throughput)
        .num("lat_mean_ms", mean_ms)
        .num("lat_p50_ms", percentile(all_ms, 0.50))
        .num("lat_p99_ms", percentile(all_ms, 0.99))
        .num("respawn_ms", st.last_recovery_ms)
        .num("outage_ms", outage_ms)
        .num("worker_deaths", static_cast<double>(st.worker_deaths))
        .num("respawns", static_cast<double>(st.respawns))
        .str("mode", "dist");
  }
  json.write();
  return 0;
}
