#!/usr/bin/env python3
"""Determinism-contract linter for parsdd (DESIGN.md §6 / §7).

The library promises bitwise-identical results across pool sizes, compilers,
and processes.  That contract is easy to break silently: one range-for over
an unordered container, one call to a wall-clock or PRNG the canonical
reduction trees don't know about, one comparator keyed on pointer values —
and solves drift between runs while every unit test of *properties* still
passes.  This linter enforces the contract mechanically over the source
tree, as the static half of the enforcement matrix (the dynamic half is the
TSan lane and test_determinism).

Rules (each finding names one):

  unordered-iter   Iteration over std::unordered_map/set (range-for or
                   .begin()).  Iteration order is implementation-defined and
                   seed-dependent; iterate a sorted/indexed container
                   instead, or key the loop on a deterministic id.
  entropy          Nondeterministic inputs: rand()/srand(), random_device,
                   std::mt19937 & friends, <random> distributions (their
                   streams differ across standard libraries), time()/clock()
                   and chrono clocks, getpid, thread ids.  All randomness
                   must come from parallel/rng.h (counter-based, seeded);
                   clocks are legal only for scheduling decisions that never
                   change results (allowlisted per file).
  pointer-order    Ordering or keying on pointer *values* (uintptr_t casts,
                   std::less<T*>, address comparisons).  Allocation addresses
                   differ run to run, so any pointer-keyed order is
                   nondeterministic.
  raw-dispatch     ThreadPool::run_blocks call with no GranularitySite gate
                   in view (within WINDOW preceding lines).  Ungated
                   dispatches bypass the oracular spawn decision and — worse
                   — tend to grow ad-hoc sequential fallbacks whose block
                   geometry silently diverges from the parallel path.
  multivec-raw     Raw .row()/->row() access outside src/kernels/.  Hot
                   loops over Vec/MultiVec data must route through the
                   kernels::Backend dispatch surface (kernels/kernels.h) so
                   the SIMD backends, the canonical block partition, and the
                   bitwise-SIMD contract cover them; a hand-rolled row loop
                   silently opts out of all three.  Cold or genuinely serial
                   loops (dense factor, boundary assembly) are allowlisted.

Findings are suppressed by tools/lint/determinism_allowlist.txt entries of
the form `<path> <rule>  # justification`.  Stale entries (matching no
finding) fail the run, so the allowlist cannot rot.

Usage:
  determinism_lint.py [--root REPO] [--report FILE]   lint the tree
  determinism_lint.py --self-test                     prove the rules fire

Exit status: 0 clean, 1 findings (or stale allowlist), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
import tempfile
from pathlib import Path

# Directories under the repo root whose sources carry the determinism
# contract.  src/service and src/util are included: the service must stay
# bitwise-invisible (coalescing contract) and serialize.cpp writes the
# snapshot payload.
SCAN_DIRS = ["src"]
SOURCE_SUFFIXES = {".h", ".cpp", ".hpp", ".cc"}

# Files where run_blocks is the implementation, not a dispatch site.
RAW_DISPATCH_EXEMPT = {
    "src/parallel/thread_pool.h",
    "src/parallel/thread_pool.cpp",
}

# The sanctioned kernel surface itself, plus the container definition: raw
# row access IS the implementation there.
MULTIVEC_RAW_EXEMPT_PREFIXES = (
    "src/kernels/",
    "src/linalg/multivec.h",
)

# How many preceding (comment-stripped) lines may separate a run_blocks
# call from its GranularitySite gate.
WINDOW = 80

ENTROPY_TOKENS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\b\w+_distribution\s*<"), "<random> distribution"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(steady_clock|system_clock|high_resolution_clock)\b"),
     "chrono clock"),
    (re.compile(r"\bgetpid\s*\("), "getpid()"),
    (re.compile(r"\bthis_thread::get_id\b"), "thread id"),
]

POINTER_ORDER_TOKENS = [
    (re.compile(r"\bu?intptr_t\b"), "pointer-to-integer type"),
    (re.compile(r"\bstd::less\s*<[^>]*\*\s*>"), "std::less over pointers"),
    (re.compile(r"reinterpret_cast\s*<\s*(std::)?\s*u?int(ptr_t|64_t|32_t)"),
     "pointer reinterpreted as integer"),
]

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:flat_)?(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*"
    r"(\w+)\s*(?:;|=|\{|\()")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;:)]*?:\s*\*?([A-Za-z_]\w*)\s*\)")
BEGIN_CALL = re.compile(r"\b(\w+)\s*(?:\.|->)\s*(?:c?begin|c?end)\s*\(")
RUN_BLOCKS = re.compile(r"\brun_blocks\s*\(")
GATE = re.compile(r"\b(GranularitySite|should_parallelize)\b")
ROW_ACCESS = re.compile(r"(?:\.|->)\s*row\s*\(")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines and
    column positions, so token rules never fire on prose or messages."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def lint_text(rel_path: str, raw: str) -> list[Finding]:
    text = strip_comments_and_strings(raw)
    lines = text.split("\n")
    findings: list[Finding] = []

    # unordered-iter: names declared (anywhere in this file) with an
    # unordered container type, then range-iterated or .begin()/.end()'d.
    unordered_names = set(UNORDERED_DECL.findall(text))
    for lineno, line in enumerate(lines, 1):
        m = RANGE_FOR.search(line)
        if m and m.group(1) in unordered_names:
            findings.append(Finding(
                rel_path, lineno, "unordered-iter",
                f"range-for over unordered container '{m.group(1)}' — "
                "iteration order is implementation-defined"))
        for m in BEGIN_CALL.finditer(line):
            if m.group(1) in unordered_names:
                findings.append(Finding(
                    rel_path, lineno, "unordered-iter",
                    f"iterator walk over unordered container '{m.group(1)}' — "
                    "iteration order is implementation-defined"))

    for lineno, line in enumerate(lines, 1):
        for pattern, what in ENTROPY_TOKENS:
            if pattern.search(line):
                findings.append(Finding(
                    rel_path, lineno, "entropy",
                    f"{what} is a nondeterministic input; use parallel/rng.h "
                    "(or allowlist if scheduling-only)"))
        for pattern, what in POINTER_ORDER_TOKENS:
            if pattern.search(line):
                findings.append(Finding(
                    rel_path, lineno, "pointer-order",
                    f"{what} — pointer values differ across runs and must "
                    "not order or key results"))

    if rel_path not in RAW_DISPATCH_EXEMPT:
        for lineno, line in enumerate(lines, 1):
            if not RUN_BLOCKS.search(line):
                continue
            lo = max(0, lineno - 1 - WINDOW)
            context = "\n".join(lines[lo:lineno])
            if not GATE.search(context):
                findings.append(Finding(
                    rel_path, lineno, "raw-dispatch",
                    "run_blocks dispatch with no GranularitySite gate within "
                    f"{WINDOW} lines — route the spawn decision through a "
                    "site (DESIGN.md §6)"))

    if not rel_path.startswith(MULTIVEC_RAW_EXEMPT_PREFIXES):
        for lineno, line in enumerate(lines, 1):
            if ROW_ACCESS.search(line):
                findings.append(Finding(
                    rel_path, lineno, "multivec-raw",
                    "raw .row() access outside src/kernels/ — hot loops must "
                    "go through the kernels::Backend surface "
                    "(kernels/kernels.h, DESIGN.md §9); allowlist cold/serial "
                    "loops"))
    return findings


def load_allowlist(path: Path):
    entries = {}  # (path, rule) -> (lineno, justification)
    if not path.exists():
        return entries
    for lineno, raw_line in enumerate(path.read_text().splitlines(), 1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        body, _, comment = line.partition("#")
        parts = body.split()
        if len(parts) != 2:
            raise SystemExit(
                f"{path}:{lineno}: malformed allowlist entry (want "
                f"'<path> <rule>  # justification'): {raw_line!r}")
        if not comment.strip():
            raise SystemExit(
                f"{path}:{lineno}: allowlist entry needs a '# justification'")
        entries[(parts[0], parts[1])] = (lineno, comment.strip())
    return entries


def lint_tree(root: Path, allowlist_path: Path):
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
    findings = []
    for p in files:
        rel = p.relative_to(root).as_posix()
        findings.extend(lint_text(rel, p.read_text(errors="replace")))

    allow = load_allowlist(allowlist_path)
    used = set()
    kept = []
    for f in findings:
        key = (f.path, f.rule)
        if key in allow:
            used.add(key)
        else:
            kept.append(f)
    stale = [(k, v) for k, v in allow.items() if k not in used]
    return kept, stale, len(files)


def run_self_test() -> int:
    """Seeded-violation harness: every rule must fire on a planted sample,
    stay quiet on clean code, and respect (but not over-respect) the
    allowlist."""
    samples = {
        # rule -> (filename, code that must trigger it)
        "unordered-iter": ("src/solver/bad_iter.cpp", """
            #include <unordered_map>
            int f() {
              std::unordered_map<int, int> scores;
              int s = 0;
              for (const auto& kv : scores) s += kv.second;
              return s;
            }
        """),
        "entropy": ("src/solver/bad_entropy.cpp", """
            #include <cstdlib>
            double jitter() { return rand() * 1e-9; }
        """),
        "pointer-order": ("src/solver/bad_ptr.cpp", """
            #include <cstdint>
            bool before(const int* a, const int* b) {
              return reinterpret_cast<std::uintptr_t>(a) <
                     reinterpret_cast<std::uintptr_t>(b);
            }
        """),
        "raw-dispatch": ("src/solver/bad_dispatch.cpp", """
            #include "parallel/thread_pool.h"
            void f(std::size_t nb) {
              parsdd::ThreadPool::instance().run_blocks(nb, [](std::size_t) {});
            }
        """),
        "multivec-raw": ("src/solver/bad_row.cpp", """
            #include "linalg/multivec.h"
            double first(const parsdd::MultiVec& m) { return m.row(0)[0]; }
        """),
    }
    # Raw row access under src/kernels/ is the implementation, not a
    # violation; the exemption must hold.
    kernels_ok = ("src/kernels/backend_fake.cpp", """
        #include "linalg/multivec.h"
        double first(const parsdd::MultiVec& m) { return m.row(0)[0]; }
    """)

    clean = ("src/solver/good.cpp", """
        // rand() in a comment and "random_device" in a string are fine.
        #include "parallel/granularity.h"
        #include "parallel/thread_pool.h"
        static parsdd::GranularitySite site("good.loop");
        void f(std::size_t nb) {
          const char* msg = "uses std::time() never";
          (void)msg;
          if (site.should_parallelize(nb * 4)) {
            parsdd::ThreadPool::instance().run_blocks(nb, [](std::size_t) {});
          }
        }
    """)

    failures = []
    with tempfile.TemporaryDirectory(prefix="detlint_selftest_") as tmp:
        root = Path(tmp)
        for rule, (rel, code) in samples.items():
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(code)
        for rel, code in (clean, kernels_ok):
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(code)

        empty_allow = root / "allow.txt"
        kept, stale, nfiles = lint_tree(root, empty_allow)
        assert nfiles == len(samples) + 2, f"scanned {nfiles} files"

        for rule, (rel, _) in samples.items():
            hits = [f for f in kept if f.rule == rule and f.path == rel]
            if not hits:
                failures.append(f"rule '{rule}' did not fire on seeded "
                                f"violation {rel}")
        noise = [f for f in kept
                 if f.path in (clean[0], kernels_ok[0])]
        if noise:
            failures.append(f"false positives on clean file: "
                            f"{[str(f) for f in noise]}")

        # Allowlist suppresses exactly the listed (path, rule); a stale
        # entry is reported.
        allow = root / "allow2.txt"
        allow.write_text(
            f"{samples['entropy'][0]} entropy  # seeded sample\n"
            f"src/solver/nonexistent.cpp entropy  # stale on purpose\n")
        kept2, stale2, _ = lint_tree(root, allow)
        if any(f.rule == "entropy" and f.path == samples["entropy"][0]
               for f in kept2):
            failures.append("allowlist failed to suppress a listed finding")
        if len(stale2) != 1:
            failures.append(f"expected exactly 1 stale entry, got {stale2}")
        if not any(f.rule == "unordered-iter" for f in kept2):
            failures.append("allowlist over-suppressed unrelated rules")

    if failures:
        print("determinism_lint self-test FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"determinism_lint self-test OK: {len(samples)} seeded violations "
          "caught, clean file quiet, allowlist exact")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("--allowlist", type=Path, default=None,
                    help="allowlist file (default: determinism_allowlist.txt "
                         "next to this script)")
    ap.add_argument("--report", type=Path, default=None,
                    help="also write findings to this file (CI artifact)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation harness and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return run_self_test()

    allowlist = args.allowlist or Path(__file__).resolve().parent / \
        "determinism_allowlist.txt"
    kept, stale, nfiles = lint_tree(args.root, allowlist)

    lines = [str(f) for f in kept]
    for (path, rule), (lineno, _) in stale:
        lines.append(f"{allowlist}:{lineno}: stale allowlist entry "
                     f"({path}, {rule}) matches no finding — remove it")
    report = "\n".join(lines)
    if args.report:
        args.report.write_text(report + ("\n" if report else ""))
    if lines:
        print(report)
        print(f"\ndeterminism_lint: {len(kept)} finding(s), {len(stale)} "
              f"stale allowlist entr(ies) over {nfiles} files")
        return 1
    print(f"determinism_lint: clean ({nfiles} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
