#include "parallel/task_queue.h"

#include <algorithm>
#include <utility>

namespace parsdd {

TaskQueue::TaskQueue(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  executors_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

TaskQueue::~TaskQueue() { stop(); }

bool TaskQueue::post(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopped_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_work_.notify_one();
  return true;
}

std::size_t TaskQueue::pending() const {
  MutexLock lock(mu_);
  return tasks_.size();
}

void TaskQueue::drain() {
  MutexLock lock(mu_);
  while (!tasks_.empty() || running_ != 0) cv_idle_.wait(lock);
}

void TaskQueue::stop() {
  {
    MutexLock lock(mu_);
    if (stopped_ && executors_.empty()) return;
    stopped_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();
}

void TaskQueue::executor_loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (!stopped_ && tasks_.empty()) cv_work_.wait(lock);
    if (tasks_.empty()) return;  // stopped_ and drained
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    ++running_;
    lock.Unlock();
    task();
    lock.Lock();
    --running_;
    // Notified under the lock: drain()'s predicate re-check is already
    // serialized on mu_, so there is no missed-wakeup window.
    cv_idle_.notify_all();
  }
}

}  // namespace parsdd
