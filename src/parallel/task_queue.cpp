#include "parallel/task_queue.h"

#include <algorithm>
#include <utility>

namespace parsdd {

TaskQueue::TaskQueue(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(num_threads, 1);
  executors_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

TaskQueue::~TaskQueue() { stop(); }

bool TaskQueue::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_work_.notify_one();
  return true;
}

std::size_t TaskQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void TaskQueue::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return tasks_.empty() && running_ == 0; });
}

void TaskQueue::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ && executors_.empty()) return;
    stopped_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();
}

void TaskQueue::executor_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stopped_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopped_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    cv_idle_.notify_all();
  }
}

}  // namespace parsdd
