// Flat data-parallel primitives: parallel_for, reduce, scan, pack, sort.
//
// These realize the standard PRAM building blocks used throughout the paper:
// O(n) work / O(log n) depth reductions and prefix sums ([JaJ92, Lei92], cited
// in Lemma 5.7's "standard techniques"), and parallel packing/filtering used
// by contraction and sampling steps.  All primitives are deterministic: for a
// fixed input they produce identical output regardless of thread count or
// scheduling, which the test suite relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace parsdd {

/// Number of iterations below which a parallel loop runs sequentially.
inline constexpr std::size_t kSeqCutoff = 2048;

/// Picks the number of blocks for a loop of n iterations: enough for load
/// balancing (4 blocks per hardware context) without excessive scheduling
/// overhead.
std::size_t num_blocks_for(std::size_t n, std::size_t grain);

/// parallel_for(lo, hi, f): applies f(i) for i in [lo, hi).
/// Work O(hi-lo), depth O(1) parallel rounds (modulo scheduling).
template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f,
                  std::size_t grain = 0) {
  if (hi <= lo) return;
  std::size_t n = hi - lo;
  if (n < kSeqCutoff || ThreadPool::in_parallel()) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
    return;
  }
  std::size_t nb = num_blocks_for(n, grain);
  std::size_t block = (n + nb - 1) / nb;
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = lo + b * block;
    std::size_t e = std::min(hi, s + block);
    for (std::size_t i = s; i < e; ++i) f(i);
  });
}

/// parallel_reduce: returns combine-fold of map(i) over [lo, hi) with the
/// given identity.  `combine` must be associative.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t lo, std::size_t hi, T identity, Map&& map,
                  Combine&& combine) {
  if (hi <= lo) return identity;
  std::size_t n = hi - lo;
  if (n < kSeqCutoff || ThreadPool::in_parallel()) {
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::size_t nb = num_blocks_for(n, 0);
  std::size_t block = (n + nb - 1) / nb;
  std::vector<T> partial(nb, identity);
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = lo + b * block;
    std::size_t e = std::min(hi, s + block);
    T acc = identity;
    for (std::size_t i = s; i < e; ++i) acc = combine(acc, map(i));
    partial[b] = acc;
  });
  T acc = identity;
  for (std::size_t b = 0; b < nb; ++b) acc = combine(acc, partial[b]);
  return acc;
}

/// Exclusive prefix sum of `values` in place; returns the total.
/// Two-pass blocked scan: O(n) work, O(log n)-style depth.
template <typename T>
T scan_exclusive(std::vector<T>& values) {
  std::size_t n = values.size();
  if (n == 0) return T{};
  if (n < kSeqCutoff || ThreadPool::in_parallel()) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return acc;
  }
  std::size_t nb = num_blocks_for(n, 0);
  std::size_t block = (n + nb - 1) / nb;
  std::vector<T> sums(nb);
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = b * block, e = std::min(n, s + block);
    T acc{};
    for (std::size_t i = s; i < e; ++i) acc += values[i];
    sums[b] = acc;
  });
  T total{};
  for (std::size_t b = 0; b < nb; ++b) {
    T v = sums[b];
    sums[b] = total;
    total += v;
  }
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = b * block, e = std::min(n, s + block);
    T acc = sums[b];
    for (std::size_t i = s; i < e; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
  });
  return total;
}

/// pack_index: returns, in increasing order, all i in [0, n) with pred(i).
/// O(n) work; parallel two-pass (count then write).
template <typename Pred>
std::vector<std::uint32_t> pack_index(std::size_t n, Pred&& pred) {
  std::vector<std::uint32_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1u : 0u; });
  std::vector<std::uint32_t> offsets = flags;
  std::uint32_t total = scan_exclusive(offsets);
  std::vector<std::uint32_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = static_cast<std::uint32_t>(i);
  });
  return out;
}

/// pack: keeps items[i] for which pred(i) holds, preserving order.
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& items, Pred&& pred) {
  std::size_t n = items.size();
  std::vector<std::uint32_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1u : 0u; });
  std::vector<std::uint32_t> offsets = flags;
  std::uint32_t total = scan_exclusive(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = items[i];
  });
  return out;
}

/// Parallel comparison sort: block-sort then pairwise parallel merges.
/// O(n log n) work, polylog rounds of merging.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  std::size_t n = v.size();
  if (n < 4 * kSeqCutoff || ThreadPool::in_parallel()) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  std::size_t nb = num_blocks_for(n, 0);
  // Round nb up to a power of two so the merge tree is balanced.
  std::size_t p2 = 1;
  while (p2 < nb) p2 <<= 1;
  nb = p2;
  std::size_t block = (n + nb - 1) / nb;
  auto begin_of = [&](std::size_t b) { return std::min(n, b * block); };

  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::sort(v.begin() + begin_of(b), v.begin() + begin_of(b + 1), cmp);
  });
  std::vector<T> buf(n);
  for (std::size_t width = 1; width < nb; width <<= 1) {
    std::size_t pairs = nb / (2 * width);
    ThreadPool::instance().run_blocks(pairs, [&](std::size_t p) {
      std::size_t lo = begin_of(2 * p * width);
      std::size_t mid = begin_of(2 * p * width + width);
      std::size_t hi = begin_of(2 * p * width + 2 * width);
      std::merge(v.begin() + lo, v.begin() + mid, v.begin() + mid,
                 v.begin() + hi, buf.begin() + lo, cmp);
      std::copy(buf.begin() + lo, buf.begin() + hi, v.begin() + lo);
    });
  }
}

/// Fills `out[i] = f(i)` for i in [0, n) and returns the vector.
template <typename T, typename F>
std::vector<T> tabulate(std::size_t n, F&& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace parsdd
