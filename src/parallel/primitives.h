// Flat data-parallel primitives: parallel_for, reduce, scan, pack, sort.
//
// These realize the standard PRAM building blocks used throughout the paper:
// O(n) work / O(log n) depth reductions and prefix sums ([JaJ92, Lei92], cited
// in Lemma 5.7's "standard techniques"), and parallel packing/filtering used
// by contraction and sampling steps.
//
// Determinism: every order-sensitive primitive (reduce, scan, sort) evaluates
// on the CANONICAL block partition from canonical_blocks(n, grain) — a pure
// function of the problem size, never of the pool size — and folds blocks in
// index order.  The granularity controller (granularity.h) only picks the
// execution strategy (pool vs. inline) for that fixed structure, so results
// are bitwise identical across pool sizes and across estimator warm-up.
// parallel_for bodies must be independent per index, so their partition is
// unconstrained.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "parallel/granularity.h"
#include "parallel/thread_pool.h"

namespace parsdd {

/// Historic sequential cutoff, equal to the canonical grain: loops under
/// this size are a single canonical block and always run inline.
inline constexpr std::size_t kSeqCutoff = kDefaultGrain;

/// Sorts below this size are a single block (plain std::sort), matching the
/// pre-parallel behavior bit for bit.
inline constexpr std::size_t kSortGrain = 4 * kDefaultGrain;

/// Picks a POOL-SIZE-DEPENDENT block count for a loop of n iterations:
/// enough blocks for load balancing (4 per hardware context) without
/// excessive scheduling overhead.  Only legal for loops whose OUTPUT is
/// invariant to the partition (per-block scratch lists that get length-
/// concatenated, claim loops resolved by min, pure elementwise writes) —
/// order-sensitive folds must use canonical_blocks instead.
std::size_t num_blocks_for(std::size_t n, std::size_t grain);

/// parallel_for(site, lo, hi, f): applies f(i) for i in [lo, hi).
/// `work` is the site's abstract cost of the whole loop (defaults to the
/// iteration count); the site parallelizes only when the predicted time
/// amortizes a pool dispatch.  Work O(hi-lo), depth O(1) parallel rounds.
template <typename F>
void parallel_for(GranularitySite& site, std::size_t lo, std::size_t hi,
                  F&& f, std::size_t grain = 0, std::uint64_t work = 0) {
  if (hi <= lo) return;
  std::size_t n = hi - lo;
  if (work == 0) work = n;
  std::size_t nb = canonical_blocks(n, grain);
  if (nb > 1 && site.should_parallelize(work)) {
    std::size_t g = grain ? grain : kDefaultGrain;
    ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
      std::size_t s = lo + b * g;
      std::size_t e = std::min(hi, s + g);
      for (std::size_t i = s; i < e; ++i) f(i);
    });
    return;
  }
  detail::SeqTimer timer(site, work);
  for (std::size_t i = lo; i < hi; ++i) f(i);
}

template <typename F>
void parallel_for(std::size_t lo, std::size_t hi, F&& f,
                  std::size_t grain = 0) {
  parallel_for(default_granularity_site(), lo, hi, std::forward<F>(f), grain);
}

/// parallel_reduce: returns combine-fold of map(i) over [lo, hi) with the
/// given identity.  `combine` must be associative.  The fold ALWAYS follows
/// the canonical block structure — per-block left fold, then blocks combined
/// in index order — whether it executes on the pool or inline, so
/// floating-point results are a pure function of (input, n, grain).
template <typename T, typename Map, typename Combine>
T parallel_reduce(GranularitySite& site, std::size_t lo, std::size_t hi,
                  T identity, Map&& map, Combine&& combine,
                  std::size_t grain = 0, std::uint64_t work = 0) {
  if (hi <= lo) return identity;
  std::size_t n = hi - lo;
  if (work == 0) work = n;
  std::size_t nb = canonical_blocks(n, grain);
  if (nb == 1) {
    detail::SeqTimer timer(site, work);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::size_t g = grain ? grain : kDefaultGrain;
  std::vector<T> partial(nb, identity);
  auto block_fold = [&](std::size_t b) {
    std::size_t s = lo + b * g;
    std::size_t e = std::min(hi, s + g);
    T acc = identity;
    for (std::size_t i = s; i < e; ++i) acc = combine(acc, map(i));
    partial[b] = acc;
  };
  if (site.should_parallelize(work)) {
    ThreadPool::instance().run_blocks(nb, block_fold);
  } else {
    detail::SeqTimer timer(site, work);
    for (std::size_t b = 0; b < nb; ++b) block_fold(b);
  }
  T acc = identity;
  for (std::size_t b = 0; b < nb; ++b) acc = combine(acc, partial[b]);
  return acc;
}

template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t lo, std::size_t hi, T identity, Map&& map,
                  Combine&& combine) {
  return parallel_reduce(default_granularity_site(), lo, hi,
                         std::move(identity), std::forward<Map>(map),
                         std::forward<Combine>(combine));
}

/// Exclusive prefix sum of `values` in place; returns the total.
/// Two-pass blocked scan over the canonical partition: O(n) work,
/// O(log n)-style depth; same fold structure inline and on the pool.
template <typename T>
T scan_exclusive(std::vector<T>& values) {
  static GranularitySite site("primitives.scan");
  std::size_t n = values.size();
  if (n == 0) return T{};
  std::size_t nb = canonical_blocks(n, 0);
  if (nb == 1) {
    detail::SeqTimer timer(site, n);
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
    return acc;
  }
  std::size_t g = kDefaultGrain;
  std::vector<T> sums(nb);
  auto block_sum = [&](std::size_t b) {
    std::size_t s = b * g, e = std::min(n, s + g);
    T acc{};
    for (std::size_t i = s; i < e; ++i) acc += values[i];
    sums[b] = acc;
  };
  auto block_scan = [&](std::size_t b) {
    std::size_t s = b * g, e = std::min(n, s + g);
    T acc = sums[b];
    for (std::size_t i = s; i < e; ++i) {
      T v = values[i];
      values[i] = acc;
      acc += v;
    }
  };
  // Decide once for both passes; the two-pass structure itself is fixed.
  bool pool = site.should_parallelize(2 * n);
  detail::SeqTimer timer(site, pool ? 0 : 2 * n);
  if (pool) {
    ThreadPool::instance().run_blocks(nb, block_sum);
  } else {
    for (std::size_t b = 0; b < nb; ++b) block_sum(b);
  }
  T total{};
  for (std::size_t b = 0; b < nb; ++b) {
    T v = sums[b];
    sums[b] = total;
    total += v;
  }
  if (pool) {
    ThreadPool::instance().run_blocks(nb, block_scan);
  } else {
    for (std::size_t b = 0; b < nb; ++b) block_scan(b);
  }
  return total;
}

/// pack_index: returns, in increasing order, all i in [0, n) with pred(i).
/// O(n) work; parallel two-pass (count then write).
template <typename Pred>
std::vector<std::uint32_t> pack_index(std::size_t n, Pred&& pred) {
  std::vector<std::uint32_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1u : 0u; });
  std::vector<std::uint32_t> offsets = flags;
  std::uint32_t total = scan_exclusive(offsets);
  std::vector<std::uint32_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = static_cast<std::uint32_t>(i);
  });
  return out;
}

/// pack: keeps items[i] for which pred(i) holds, preserving order.
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& items, Pred&& pred) {
  std::size_t n = items.size();
  std::vector<std::uint32_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1u : 0u; });
  std::vector<std::uint32_t> offsets = flags;
  std::uint32_t total = scan_exclusive(offsets);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = items[i];
  });
  return out;
}

/// Parallel comparison sort: block-sort then pairwise merges over a
/// power-of-two block layout that depends only on n.  The comparators used
/// at call sites need not be total orders (ties happen), so the element
/// ORDER produced must not depend on scheduling either: std::sort and
/// std::merge are deterministic algorithms, and the block layout is
/// canonical, so the permutation is a pure function of the input whether
/// the rounds run inline or on the pool.
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  static GranularitySite site("primitives.sort", /*init_ns_per_unit=*/10.0);
  std::size_t n = v.size();
  if (n < kSortGrain) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  std::size_t nb = 1;
  while (nb * kSortGrain < n) nb <<= 1;
  std::size_t block = (n + nb - 1) / nb;
  auto begin_of = [&](std::size_t b) { return std::min(n, b * block); };

  bool pool = site.should_parallelize(n);
  detail::SeqTimer timer(site, pool ? 0 : n);
  auto run = [&](std::size_t count, auto&& fn) {
    if (pool) {
      ThreadPool::instance().run_blocks(count, fn);
    } else {
      for (std::size_t b = 0; b < count; ++b) fn(b);
    }
  };

  run(nb, [&](std::size_t b) {
    std::sort(v.begin() + begin_of(b), v.begin() + begin_of(b + 1), cmp);
  });
  std::vector<T> buf(n);
  for (std::size_t width = 1; width < nb; width <<= 1) {
    std::size_t pairs = nb / (2 * width);
    run(pairs, [&](std::size_t p) {
      std::size_t lo = begin_of(2 * p * width);
      std::size_t mid = begin_of(2 * p * width + width);
      std::size_t hi = begin_of(2 * p * width + 2 * width);
      std::merge(v.begin() + lo, v.begin() + mid, v.begin() + mid,
                 v.begin() + hi, buf.begin() + lo, cmp);
      std::copy(buf.begin() + lo, buf.begin() + hi, v.begin() + lo);
    });
  }
}

/// Fills `out[i] = f(i)` for i in [0, n) and returns the vector.
template <typename T, typename F>
std::vector<T> tabulate(std::size_t n, F&& f) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](std::size_t i) { out[i] = f(i); });
  return out;
}

}  // namespace parsdd
