// Fork-join thread pool underlying every parallel primitive in parsdd.
//
// The paper (Section 2, "Parallel Models") analyzes algorithms in the CRCW
// PRAM model by work and depth.  The standard faithful realization on shared
// memory is a fork-join pool executing flat parallel loops; the number of
// worker threads plays the role of the number of processors, and the
// round/level structure of the algorithms (BFS levels, contraction rounds,
// iterations) is the machine-independent depth surrogate reported by the
// bench harness.
//
// Design notes:
//  * A single process-wide pool (lazily constructed) with
//    `concurrency() = workers + caller`.  The worker count is taken from the
//    environment variable PARSDD_THREADS if set, otherwise from
//    std::thread::hardware_concurrency().
//  * Parallel regions are non-reentrant by design: a parallel_for issued from
//    inside a worker runs sequentially.  All algorithms in this library are
//    written as sequences of flat parallel loops (as in the paper), so nested
//    parallelism would add scheduling complexity for no asymptotic gain.
//  * Block dispatch uses a shared atomic cursor, which gives dynamic load
//    balancing for skewed iterations (e.g. ball growing from centers with
//    very different ball sizes).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace parsdd {

class ThreadPool {
 public:
  /// Returns the process-wide pool, constructing it on first use.
  static ThreadPool& instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total concurrency including the calling thread.
  int concurrency() const { return static_cast<int>(workers_.size()) + 1; }

  /// True when called from inside a parallel region (worker thread or a
  /// caller currently participating in one).  Used to serialize nested
  /// parallel_for calls.
  static bool in_parallel();

  /// Runs `block_fn(b)` for every b in [0, num_blocks), distributing blocks
  /// over all workers plus the calling thread; blocks until every block has
  /// completed.  Must not be called from inside a parallel region.
  void run_blocks(std::size_t num_blocks,
                  const std::function<void(std::size_t)>& block_fn)
      PARSDD_EXCLUDES(mu_);

 private:
  ThreadPool();
  void worker_loop() PARSDD_EXCLUDES(mu_);

  struct Job {
    std::atomic<std::size_t> cursor{0};
    std::size_t num_blocks = 0;
    std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> done{0};
  };

  /// Populated once in the constructor, joined once in the destructor;
  /// workers never touch the vector itself, so it is not mutex-guarded.
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  /// Publication slot for the current job: written by run_blocks, read by
  /// waking workers.  The Job's own fields (cursor/done) are atomics and
  /// intentionally race-free without the mutex.
  std::shared_ptr<Job> job_ PARSDD_GUARDED_BY(mu_);
  /// Bumped per job so workers wake exactly once per dispatch.
  std::uint64_t epoch_ PARSDD_GUARDED_BY(mu_) = 0;
  bool shutdown_ PARSDD_GUARDED_BY(mu_) = false;
};

}  // namespace parsdd
