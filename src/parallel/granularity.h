// Oracular granularity control for the fork-join primitives, in the style of
// sptl's spguard/spestimator (Acar, Charguéraud, Rainey: "Oracle-guided
// scheduling for controlling granularity in implicitly parallel programs").
//
// The granularity-control problem: a parallel_for over n items pays a fixed
// dispatch cost (publishing a job, waking workers, the join barrier) that is
// pure overhead when the loop body finishes faster than the dispatch.  A
// static item-count cutoff cannot solve this — 2048 SpMM rows with 64
// columns are worth parallelizing while 2048 flag writes are not.  The
// oracular approach instead predicts the loop's *running time*: every
// call site owns a GranularitySite whose estimator learns the site's
// nanoseconds-per-work-unit constant from measured sequential executions,
// and the loop runs in parallel only when
//
//     predicted_ns = work * ns_per_unit  >  spawn_threshold_ns
//
// i.e. only when the loop amortizes its own spawn cost.  `work` is a caller
// abstraction: iterations for uniform loops, nnz * cols for SpMM-shaped
// loops, steps * cols for elimination folds.
//
// Determinism contract (load-bearing — see DESIGN.md "Parallelization"):
// the controller decides only HOW a loop executes (pool vs. inline), never
// WHAT it computes.  Floating-point reductions, scans, and sorts in
// primitives.h always evaluate on the *canonical block partition* — a pure
// function of (n, grain), independent of the pool size, the estimator
// state, and the sequential/parallel decision — so results are bitwise
// identical across pool sizes 1..N and across estimator warm-up.  The
// estimator's dynamic state can therefore be racy-updated and
// timing-dependent without ever touching numerics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace parsdd {

/// Default work-units-per-block for the canonical partition, and the
/// threshold below which loops are never worth timing.  Kept at the historic
/// kSeqCutoff so small-n reductions fold in the same order as before.
inline constexpr std::size_t kDefaultGrain = 2048;

/// Canonical number of blocks for a loop of n iterations with the given
/// grain (0 means kDefaultGrain).  PURE in (n, grain): never consults the
/// pool size.  Reductions and scans fold block-by-block in index order, so
/// this function fixes the shape of every deterministic reduction tree.
std::size_t canonical_blocks(std::size_t n, std::size_t grain);

/// Per-call-site cost estimator + spawn decision.  Sites are cheap,
/// lock-free, and meant to be function-local statics:
///
///   static GranularitySite site("csr.spmm");
///   parallel_for(site, 0, n, body, /*grain=*/256, /*work=*/nnz * k);
///
/// Thread safety: all state is relaxed atomics; a lost estimator update is
/// harmless (the next measured run replaces it).  There is deliberately no
/// mutex here — and therefore nothing for the thread-safety analysis
/// (util/thread_annotations.h) to annotate: the static enforcement for this
/// class is the determinism lint (tools/lint/determinism_lint.py), which
/// checks that every raw ThreadPool dispatch in the determinism-critical
/// directories is gated by a GranularitySite.  See DESIGN.md §7.
class GranularitySite {
 public:
  /// `name` must outlive the site (string literals).  `init_ns_per_unit`
  /// seeds the estimator before the first measurement; 1 ns/unit is a sane
  /// default for memory-bound loop bodies.
  explicit GranularitySite(const char* name, double init_ns_per_unit = 1.0);

  GranularitySite(const GranularitySite&) = delete;
  GranularitySite& operator=(const GranularitySite&) = delete;

  /// True when a loop with this much total work should be dispatched to the
  /// pool: predicted time exceeds the spawn threshold, the pool has more
  /// than one lane, and the caller is not already inside a parallel region.
  /// Pure with respect to numerics: callers must not let the answer change
  /// the reduction shape (primitives.h guarantees this).
  bool should_parallelize(std::uint64_t work) const;

  /// Whether this sequential execution should be timed: sampling is
  /// throttled (1 in 8) so tiny hot loops don't pay two clock reads each.
  bool should_measure();

  /// Feed one measured sequential execution into the estimator (EWMA,
  /// alpha = 1/4).  `elapsed_ns` is the wall time of the whole loop.
  void record_sequential(std::uint64_t work, double elapsed_ns);

  /// Current estimate (ns per work unit).
  double ns_per_unit() const;

  /// Number of measurements folded into the estimate so far.
  std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }

  const char* name() const { return name_; }

  /// Spawn threshold in nanoseconds (PARSDD_GRAIN_NS overrides; default
  /// 20000 ns ~ a handful of pool dispatches).
  static double spawn_threshold_ns();

  /// Execution-mode override from PARSDD_PARALLEL: "always" forces the
  /// pool path whenever legal (stress tests), "never" forces inline
  /// execution, anything else (or unset) is the oracular decision.  Never
  /// affects results, only scheduling.
  enum class Mode : std::uint8_t { kAuto, kAlways, kNever };
  static Mode mode();

 private:
  const char* name_;
  std::atomic<std::uint64_t> ns_per_unit_bits_;  // double, bit-cast
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> tick_{0};  // measurement throttle counter
};

/// The shared site used by the untagged parallel_for/reduce overloads.
/// Hot loops should own a named site instead so the estimator constant is
/// not polluted by unrelated bodies.
GranularitySite& default_granularity_site();

namespace detail {

/// Scoped timer for sequential loop executions: arms itself only when the
/// site elects to sample (throttled) and the loop is big enough for the
/// measurement to beat clock noise; feeds the estimator on destruction.
class SeqTimer {
 public:
  SeqTimer(GranularitySite& site, std::uint64_t work);
  ~SeqTimer();
  SeqTimer(const SeqTimer&) = delete;
  SeqTimer& operator=(const SeqTimer&) = delete;

 private:
  GranularitySite* site_ = nullptr;
  std::uint64_t work_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace detail

}  // namespace parsdd
