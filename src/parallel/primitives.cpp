#include "parallel/primitives.h"

namespace parsdd {

// Pool-size-dependent blocking — see the header for when this is legal
// (partition-invariant outputs only).  Order-sensitive folds use
// canonical_blocks (granularity.h) instead.
std::size_t num_blocks_for(std::size_t n, std::size_t grain) {
  std::size_t p = static_cast<std::size_t>(ThreadPool::instance().concurrency());
  std::size_t nb = 4 * p;
  if (grain > 0) nb = std::min(nb, (n + grain - 1) / grain);
  nb = std::min(nb, n);
  return std::max<std::size_t>(nb, 1);
}

}  // namespace parsdd
