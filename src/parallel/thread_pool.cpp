#include "parallel/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

namespace parsdd {

namespace {
thread_local bool tls_in_parallel = false;

int configured_workers() {
  if (const char* env = std::getenv("PARSDD_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v - 1;  // PARSDD_THREADS counts the caller too
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? static_cast<int>(hw) - 1 : 0;
}
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::in_parallel() { return tls_in_parallel; }

ThreadPool::ThreadPool() {
  int n = configured_workers();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  tls_in_parallel = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && epoch_ == seen_epoch) cv_start_.wait(lock);
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;  // may be null if the job already drained
    }
    if (!job) continue;
    bool did_work = false;
    for (;;) {
      std::size_t b = job->cursor.fetch_add(1, std::memory_order_relaxed);
      if (b >= job->num_blocks) break;
      job->fn(b);
      job->done.fetch_add(1, std::memory_order_release);
      did_work = true;
    }
    if (did_work) cv_done_.notify_one();
  }
}

void ThreadPool::run_blocks(std::size_t num_blocks,
                            const std::function<void(std::size_t)>& block_fn) {
  if (num_blocks == 0) return;
  if (workers_.empty() || tls_in_parallel || num_blocks == 1) {
    for (std::size_t b = 0; b < num_blocks; ++b) block_fn(b);
    return;
  }

  auto job = std::make_shared<Job>();
  job->num_blocks = num_blocks;
  job->fn = block_fn;
  {
    MutexLock lock(mu_);
    job_ = job;
    ++epoch_;
  }
  cv_start_.notify_all();

  // The caller participates as a worker.
  tls_in_parallel = true;
  for (;;) {
    std::size_t b = job->cursor.fetch_add(1, std::memory_order_relaxed);
    if (b >= num_blocks) break;
    job->fn(b);
    job->done.fetch_add(1, std::memory_order_release);
  }
  tls_in_parallel = false;

  // Wait for straggler blocks.  Late-waking workers that find the cursor
  // already exhausted only touch the shared Job, whose lifetime is managed
  // by shared_ptr, so returning here is safe once every block has run.
  MutexLock lock(mu_);
  while (job->done.load(std::memory_order_acquire) != num_blocks) {
    cv_done_.wait(lock);
  }
  job_ = nullptr;
}

}  // namespace parsdd
