// Deterministic counter-based random number generation.
//
// Every randomized step in the paper (center sampling and jitters in
// Algorithm 4.1, the retry loop of Algorithm 4.2, the independent-set coin
// flips of Lemma 6.5, edge sampling in Lemma 6.1) is driven by this
// counter-based generator: the i-th random value of a stream is a hash of
// (seed, i), so parallel loops can draw independent values per index without
// any shared state, and results are reproducible for a fixed seed regardless
// of thread count.
#pragma once

#include <cstdint>

namespace parsdd {

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
inline std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A stateless random stream keyed by a 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(hash64(seed + 0x5851f42d4c957f2dull)) {}

  /// i-th 64-bit draw of the stream.
  std::uint64_t u64(std::uint64_t i) const { return hash64(seed_ ^ hash64(i)); }

  /// i-th draw uniform in [0, 1).
  double uniform(std::uint64_t i) const {
    return static_cast<double>(u64(i) >> 11) * 0x1.0p-53;
  }

  /// i-th draw uniform in {0, 1, ..., bound-1}; bound must be positive.
  std::uint64_t below(std::uint64_t i, std::uint64_t bound) const {
    // 128-bit multiply avoids modulo bias for the bounds used here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(u64(i)) * bound) >> 64);
  }

  /// Derives an independent child stream (e.g. one per round).
  Rng child(std::uint64_t tag) const { return Rng(seed_ ^ hash64(tag + 1)); }

 private:
  std::uint64_t seed_;
};

}  // namespace parsdd
