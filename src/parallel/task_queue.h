// TaskQueue: the asynchronous-task extension of the parallel layer.
//
// ThreadPool (thread_pool.h) is a fork-join pool: run_blocks() is a
// synchronous barrier, which is the right shape for the paper's flat
// parallel loops but not for a serving dispatcher that must keep accepting
// work while solves are in flight.  TaskQueue is the complementary
// primitive: a small FIFO of opaque tasks drained by dedicated executor
// threads, so a producer (the SolverService dispatcher) can hand off a
// coalesced batch and immediately go back to collecting the next one.
//
// The two layers compose: a task may itself call parallel_for, which
// routes through the process-wide fork-join pool exactly as a caller
// thread would.  TaskQueue threads are deliberately NOT ThreadPool
// workers — a task blocking on a solve must never starve the flat loops
// the solve itself issues.
//
// Locking model (DESIGN.md §7): one Mutex guards the FIFO and every piece
// of queue state; the annotations below make the discipline a compile-time
// contract under clang's thread-safety analysis.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace parsdd {

class TaskQueue {
 public:
  /// Starts `num_threads` executor threads (at least 1).
  explicit TaskQueue(std::size_t num_threads = 1);
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;
  /// Drains remaining tasks, then joins the executors.
  ~TaskQueue();

  /// Enqueues a task; returns false (and drops it) after stop().
  bool post(std::function<void()> task) PARSDD_EXCLUDES(mu_);

  /// Tasks enqueued but not yet started.
  std::size_t pending() const PARSDD_EXCLUDES(mu_);

  /// Blocks until the queue is empty and every executor is idle.
  void drain() PARSDD_EXCLUDES(mu_);

  /// Stops accepting tasks, finishes what is queued, joins the executors.
  /// Idempotent; called by the destructor.
  void stop() PARSDD_EXCLUDES(mu_);

 private:
  void executor_loop() PARSDD_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_work_;  // signalled on post/stop
  CondVar cv_idle_;  // signalled when a task finishes
  std::deque<std::function<void()>> tasks_ PARSDD_GUARDED_BY(mu_);
  std::size_t running_ PARSDD_GUARDED_BY(mu_) = 0;  // tasks executing
  bool stopped_ PARSDD_GUARDED_BY(mu_) = false;
  /// Joined by stop(); only touched by the constructor and stop(), never
  /// by the executors themselves, so it needs no mutex — stop() is the
  /// unique joiner and is idempotent via `stopped_`.
  std::vector<std::thread> executors_;
};

}  // namespace parsdd
