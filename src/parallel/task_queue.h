// TaskQueue: the asynchronous-task extension of the parallel layer.
//
// ThreadPool (thread_pool.h) is a fork-join pool: run_blocks() is a
// synchronous barrier, which is the right shape for the paper's flat
// parallel loops but not for a serving dispatcher that must keep accepting
// work while solves are in flight.  TaskQueue is the complementary
// primitive: a small FIFO of opaque tasks drained by dedicated executor
// threads, so a producer (the SolverService dispatcher) can hand off a
// coalesced batch and immediately go back to collecting the next one.
//
// The two layers compose: a task may itself call parallel_for, which
// routes through the process-wide fork-join pool exactly as a caller
// thread would.  TaskQueue threads are deliberately NOT ThreadPool
// workers — a task blocking on a solve must never starve the flat loops
// the solve itself issues.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace parsdd {

class TaskQueue {
 public:
  /// Starts `num_threads` executor threads (at least 1).
  explicit TaskQueue(std::size_t num_threads = 1);
  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;
  /// Drains remaining tasks, then joins the executors.
  ~TaskQueue();

  /// Enqueues a task; returns false (and drops it) after stop().
  bool post(std::function<void()> task);

  /// Tasks enqueued but not yet started.
  std::size_t pending() const;

  /// Blocks until the queue is empty and every executor is idle.
  void drain();

  /// Stops accepting tasks, finishes what is queued, joins the executors.
  /// Idempotent; called by the destructor.
  void stop();

 private:
  void executor_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // signalled on post/stop
  std::condition_variable cv_idle_;   // signalled when a task finishes
  std::deque<std::function<void()>> tasks_;
  std::size_t running_ = 0;  // tasks currently executing
  bool stopped_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace parsdd
