#include "parallel/granularity.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#include "parallel/thread_pool.h"

namespace parsdd {

std::size_t canonical_blocks(std::size_t n, std::size_t grain) {
  if (n == 0) return 1;
  std::size_t g = grain ? grain : kDefaultGrain;
  return (n + g - 1) / g;
}

GranularitySite::GranularitySite(const char* name, double init_ns_per_unit)
    : name_(name),
      ns_per_unit_bits_(std::bit_cast<std::uint64_t>(init_ns_per_unit)) {}

double GranularitySite::ns_per_unit() const {
  return std::bit_cast<double>(
      ns_per_unit_bits_.load(std::memory_order_relaxed));
}

bool GranularitySite::should_parallelize(std::uint64_t work) const {
  Mode m = mode();
  if (m == Mode::kNever) return false;
  // Checked before touching instance(): under PARSDD_PARALLEL=never the
  // pool is never even constructed, which gives benches a true 1-thread
  // baseline process.
  if (ThreadPool::in_parallel()) return false;
  if (ThreadPool::instance().concurrency() <= 1) return false;
  if (m == Mode::kAlways) return true;
  return static_cast<double>(work) * ns_per_unit() > spawn_threshold_ns();
}

bool GranularitySite::should_measure() {
  return (tick_.fetch_add(1, std::memory_order_relaxed) & 7u) == 0;
}

void GranularitySite::record_sequential(std::uint64_t work,
                                        double elapsed_ns) {
  if (work == 0 || elapsed_ns <= 0.0) return;
  double sample = elapsed_ns / static_cast<double>(work);
  std::uint64_t seen = samples_.fetch_add(1, std::memory_order_relaxed);
  // First measurement replaces the seed guess outright; afterwards an EWMA
  // tracks drift (cache effects, input-shape changes) without jitter.
  double next = seen == 0 ? sample : ns_per_unit() + 0.25 * (sample - ns_per_unit());
  ns_per_unit_bits_.store(std::bit_cast<std::uint64_t>(next),
                          std::memory_order_relaxed);
}

double GranularitySite::spawn_threshold_ns() {
  static const double threshold = [] {
    if (const char* s = std::getenv("PARSDD_GRAIN_NS")) {
      char* end = nullptr;
      double parsed = std::strtod(s, &end);
      if (end != s && parsed > 0.0) return parsed;
    }
    return 20000.0;
  }();
  return threshold;
}

GranularitySite::Mode GranularitySite::mode() {
  static const Mode m = [] {
    const char* s = std::getenv("PARSDD_PARALLEL");
    if (!s) return Mode::kAuto;
    if (std::strcmp(s, "always") == 0) return Mode::kAlways;
    if (std::strcmp(s, "never") == 0) return Mode::kNever;
    return Mode::kAuto;
  }();
  return m;
}

GranularitySite& default_granularity_site() {
  static GranularitySite site("default");
  return site;
}

namespace detail {

SeqTimer::SeqTimer(GranularitySite& site, std::uint64_t work) : work_(work) {
  if (work >= 256 && site.should_measure()) {
    site_ = &site;
    start_ = std::chrono::steady_clock::now();
  }
}

SeqTimer::~SeqTimer() {
  if (!site_) return;
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
  site_->record_sequential(work_, static_cast<double>(ns));
}

}  // namespace detail

}  // namespace parsdd
