// The sanctioned kernel surface: every hot loop over Vec / MultiVec data
// routes through here (enforced by the determinism lint's multivec-raw rule).
//
// Two layers:
//
//   1. kernels::Backend — a table of C function pointers over flat row-major
//      ranges (BLAS-1 column kernels, CSR SpMV/SpMM with k-dimension
//      blocking, elimination fold/backsub column chunks), selected once per
//      process from {scalar, avx2, avx512} via cpuid with a
//      PARSDD_SIMD=scalar|avx2|avx512|auto override.  The backend functions
//      are SERIAL over their range; parallelism stays in layer 2.
//   2. The parsdd::kernels:: free functions — the deterministic parallel
//      entry points the solvers call.  They own the GranularitySites and the
//      canonical block partition, and invoke the selected backend once per
//      block, so the reduction-tree shape (and therefore every bit of every
//      result) is identical across backends and pool sizes.
//
// Bitwise-SIMD contract (DESIGN.md §9): vector backends vectorize only
// across independent lanes — the k columns of a row-major MultiVec, or the
// indices of an elementwise Vec loop — never along a serial reduction
// chain, and never with FMA contraction.  Each column therefore performs
// the exact IEEE operation sequence of the scalar backend, which is why
// PARSDD_SIMD=scalar and =avx512 solves are bitwise identical (test_kernels
// locks this in).  Serial-chain reductions (single-Vec dot/sum, per-row
// SpMV accumulation) stay scalar in every backend by design.
//
// The f32 twins power the opt-in mixed-precision preconditioner path
// (Precision::kF32Refined): same canonical-block determinism, but float
// arithmetic — documented as the relaxed-determinism mode in DESIGN.md §9.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/multivec.h"

namespace parsdd::kernels {

/// One recorded GreedyElimination step (Lemma 6.5).  Defined here so the
/// fold/backsub backend kernels can walk the record without depending on
/// the solver layer; solver/greedy_elimination.h aliases it as
/// parsdd::EliminationStep.
struct ElimStep {
  std::uint32_t v = 0;       // eliminated vertex
  std::uint32_t degree = 0;  // 0, 1 or 2 at elimination time
  std::uint32_t u1 = 0, u2 = 0;
  double w1 = 0.0, w2 = 0.0;
  double pivot = 0.0;  // w1 + w2 (weighted degree of v)
};

/// Instruction-set tier of a backend implementation.
enum class SimdLevel : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The dispatchable kernel table.  All functions are serial over their
/// range; `rows`/`k` describe a row-major rows x k block.  Reduction
/// kernels ACCUMULATE into caller-zeroed acc[k] so the canonical block fold
/// stays in layer 2.
struct Backend {
  const char* name = "";
  SimdLevel level = SimdLevel::kScalar;

  // ---- elementwise f64 over [0, n) (independent per index) ----
  void (*axpy_f64)(double a, const double* x, double* y, std::size_t n);
  void (*xpay_f64)(const double* x, double a, double* y, std::size_t n);
  void (*scale_f64)(double a, double* x, std::size_t n);
  void (*sub_f64)(const double* x, const double* y, double* out,
                  std::size_t n);
  void (*sub_scalar_f64)(double m, double* x, std::size_t n);  // x[i] -= m

  // ---- serial-chain reductions (scalar in EVERY backend: vectorizing
  //      would reorder the additions and break bitwise determinism) ----
  double (*dot_serial_f64)(const double* x, const double* y, std::size_t n);
  double (*sum_serial_f64)(const double* x, std::size_t n);

  // ---- column kernels over a rows x k row-major range ----
  void (*axpy_cols_f64)(const double* a, const double* x, double* y,
                        std::size_t rows, std::size_t k);
  void (*xpay_cols_f64)(const double* x, const double* a, double* y,
                        std::size_t rows, std::size_t k);
  void (*scale_cols_f64)(const double* a, double* x, std::size_t rows,
                         std::size_t k);
  void (*copy_cols_f64)(const double* src, double* dst, std::size_t rows,
                        std::size_t k);
  void (*sub_cols_f64)(const double* m, double* x, std::size_t rows,
                       std::size_t k);  // x[r*k+c] -= m[c]
  void (*dot_cols_acc_f64)(const double* x, const double* y, std::size_t rows,
                           std::size_t k, double* acc);
  void (*dot_diff_cols_acc_f64)(const double* z, const double* x,
                                const double* y, std::size_t rows,
                                std::size_t k, double* acc);
  void (*sum_cols_acc_f64)(const double* x, std::size_t rows, std::size_t k,
                           double* acc);

  // ---- CSR over row range [r0, r1) ----
  void (*spmv_rows_f64)(const std::size_t* off, const std::uint32_t* col,
                        const double* val, const double* x, double* y,
                        std::size_t r0, std::size_t r1);
  void (*spmm_rows_f64)(const std::size_t* off, const std::uint32_t* col,
                        const double* val, const double* x, double* y,
                        std::size_t r0, std::size_t r1, std::size_t k);

  // ---- elimination fold/backsub over column range [c0, c1), stride k ----
  void (*fold_cols_f64)(const ElimStep* steps, std::size_t nsteps,
                        double* folded, std::size_t k, std::size_t c0,
                        std::size_t c1);
  void (*backsub_cols_f64)(const ElimStep* steps, std::size_t nsteps,
                           const double* folded, double* x, std::size_t k,
                           std::size_t c0, std::size_t c1);

  // ---- f32 twins (mixed-precision preconditioner chain) ----
  void (*axpy_cols_f32)(const float* a, const float* x, float* y,
                        std::size_t rows, std::size_t k);
  void (*xpay_cols_f32)(const float* x, const float* a, float* y,
                        std::size_t rows, std::size_t k);
  void (*copy_cols_f32)(const float* src, float* dst, std::size_t rows,
                        std::size_t k);
  void (*sub_cols_f32)(const float* m, float* x, std::size_t rows,
                       std::size_t k);
  void (*dot_cols_acc_f32)(const float* x, const float* y, std::size_t rows,
                           std::size_t k, float* acc);
  void (*dot_diff_cols_acc_f32)(const float* z, const float* x,
                                const float* y, std::size_t rows,
                                std::size_t k, float* acc);
  void (*sum_cols_acc_f32)(const float* x, std::size_t rows, std::size_t k,
                           float* acc);
  void (*spmm_rows_f32)(const std::size_t* off, const std::uint32_t* col,
                        const float* val, const float* x, float* y,
                        std::size_t r0, std::size_t r1, std::size_t k);
  void (*fold_cols_f32)(const ElimStep* steps, std::size_t nsteps,
                        float* folded, std::size_t k, std::size_t c0,
                        std::size_t c1);
  void (*backsub_cols_f32)(const ElimStep* steps, std::size_t nsteps,
                           const float* folded, float* x, std::size_t k,
                           std::size_t c0, std::size_t c1);
};

/// The backend selected for this process: the best level the CPU supports,
/// overridden by PARSDD_SIMD=scalar|avx2|avx512|auto.  An explicit request
/// the CPU cannot honor falls back to the best supported level (with a
/// one-time stderr note) so a pinned env var never crashes on older
/// hardware.  Selection happens once, on first use, and is immutable after.
const Backend& backend();
/// Name of the selected backend: "scalar", "avx2", or "avx512".
const char* backend_name();

// ---------------------------------------------------------------------------
// Layer 2: deterministic parallel entry points (the sanctioned call surface;
// the free functions in vector_ops.h / multivec.h forward here and are
// deprecated).  Semantics and bitwise behavior match those historic
// functions exactly.

// ---- Vec BLAS-1 ----
void axpy(double a, const Vec& x, Vec& y);            // y += a x
void xpay(const Vec& x, double a, Vec& y);            // y = x + a y
double dot(const Vec& x, const Vec& y);
double norm2(const Vec& x);
void scale(double a, Vec& x);
Vec subtract(const Vec& x, const Vec& y);
double sum(const Vec& x);
void project_out_constant(Vec& x);

// ---- MultiVec column kernels (mask semantics of multivec.h: masked
//      columns are bitwise untouched; the masked path is scalar — it only
//      runs after columns converge) ----
void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask = nullptr);
void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask = nullptr);
ColScalars dot_cols(const MultiVec& x, const MultiVec& y);
ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y);
ColScalars norm2_cols(const MultiVec& x);
ColScalars sum_cols(const MultiVec& x);
void scale_cols(const ColScalars& a, MultiVec& x, const ColMask* mask = nullptr);
void copy_cols(const MultiVec& src, MultiVec& dst,
               const ColMask* mask = nullptr);
void project_out_constant_cols(MultiVec& x, const ColMask* mask = nullptr);

// ---- CSR SpMV / SpMM (callers pass the raw CSR arrays; csr_matrix.h owns
//      the structure) ----
void spmv(const std::size_t* off, const std::uint32_t* col, const double* val,
          std::size_t n, std::size_t nnz, const Vec& x, Vec& y);
void spmm(const std::size_t* off, const std::uint32_t* col, const double* val,
          std::size_t n, std::size_t nnz, const MultiVec& x, MultiVec& y);

// ---- elimination fold / back-substitution (parallel over column chunks;
//      `folded`/`x` are full-height blocks in the eliminated graph's
//      original numbering) ----
void fold_steps(const ElimStep* steps, std::size_t nsteps, MultiVec& folded);
void backsub_steps(const ElimStep* steps, std::size_t nsteps,
                   const MultiVec& folded, MultiVec& x);

// ---- row gather/scatter (component assembly, elimination relabeling) ----
/// dst.row(i) = src.row(index[i]) for i in [0, dst.rows()).
void gather_rows(const MultiVec& src, const std::uint32_t* index,
                 MultiVec& dst);
/// dst.row(index[i]) = src.row(i) for i in [0, src.rows()).
void scatter_rows(const MultiVec& src, const std::uint32_t* index,
                  MultiVec& dst);

// ---- f32 path (Precision::kF32Refined preconditioner chain) ----
void axpy_cols32(const std::vector<float>& a, const MultiVec32& x,
                 MultiVec32& y);
void xpay_cols32(const MultiVec32& x, const std::vector<float>& a,
                 MultiVec32& y);
std::vector<float> dot_cols32(const MultiVec32& x, const MultiVec32& y);
std::vector<float> dot_diff_cols32(const MultiVec32& z, const MultiVec32& x,
                                   const MultiVec32& y);
std::vector<float> norm2_cols32(const MultiVec32& x);
std::vector<float> sum_cols32(const MultiVec32& x);
void copy_cols32(const MultiVec32& src, MultiVec32& dst);
void project_out_constant_cols32(MultiVec32& x);
void spmm32(const std::size_t* off, const std::uint32_t* col,
            const float* val, std::size_t n, std::size_t nnz,
            const MultiVec32& x, MultiVec32& y);
void fold_steps32(const ElimStep* steps, std::size_t nsteps,
                  MultiVec32& folded);
void backsub_steps32(const ElimStep* steps, std::size_t nsteps,
                     const MultiVec32& folded, MultiVec32& x);
void gather_rows32(const MultiVec32& src, const std::uint32_t* index,
                   MultiVec32& dst);
void scatter_rows32(const MultiVec32& src, const std::uint32_t* index,
                    MultiVec32& dst);
/// Precision converters between the f64 outer iteration and the f32 chain.
void narrow(const MultiVec& src, MultiVec32& dst);
void widen(const MultiVec32& src, MultiVec& dst);

}  // namespace parsdd::kernels
