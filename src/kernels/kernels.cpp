// Backend selection + the deterministic parallel entry points.
//
// Layer-2 wrappers here reproduce the EXACT block structure the historic
// kernels in multivec.cpp / vector_ops.cpp / csr_matrix.cpp /
// greedy_elimination.cpp used: canonical_blocks partitions, per-block left
// folds combined in index order, and the same GranularitySite gating — so a
// solve is bitwise identical to the pre-backend code under every backend
// and every pool size.  Masked column variants keep the historic per-row
// scalar loops (they only run after columns converge, and the mask makes
// the lanes non-uniform; not worth vectorizing).
#include "kernels/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/backend_detail.h"
#include "parallel/primitives.h"

namespace parsdd::kernels {

namespace {

const Backend& best_supported() {
  if (detail::avx512_supported()) return detail::avx512_backend();
  if (detail::avx2_supported()) return detail::avx2_backend();
  return detail::scalar_backend();
}

const Backend& pick_backend() {
  const char* env = std::getenv("PARSDD_SIMD");
  const char* req = (env != nullptr && *env != '\0') ? env : "auto";
  if (std::strcmp(req, "scalar") == 0) return detail::scalar_backend();
  if (std::strcmp(req, "avx2") == 0) {
    if (detail::avx2_supported()) return detail::avx2_backend();
    const Backend& fb = best_supported();
    std::fprintf(stderr,
                 "parsdd: PARSDD_SIMD=avx2 not supported by this CPU; "
                 "using '%s' (results are bitwise identical)\n",
                 fb.name);
    return fb;
  }
  if (std::strcmp(req, "avx512") == 0) {
    if (detail::avx512_supported()) return detail::avx512_backend();
    const Backend& fb = best_supported();
    std::fprintf(stderr,
                 "parsdd: PARSDD_SIMD=avx512 not supported by this CPU; "
                 "using '%s' (results are bitwise identical)\n",
                 fb.name);
    return fb;
  }
  if (std::strcmp(req, "auto") != 0) {
    std::fprintf(stderr,
                 "parsdd: unknown PARSDD_SIMD value '%s' "
                 "(want scalar|avx2|avx512|auto); using auto\n",
                 req);
  }
  return best_supported();
}

// Column-chunk width for batched fold/backsub: a full cache line of doubles
// per chunk avoids false sharing between workers on the same row (same
// constant the pre-backend greedy_elimination.cpp used).
constexpr std::size_t kColChunk = 8;

GranularitySite& rowwise_site() {
  static GranularitySite site("multivec.rowwise");
  return site;
}
GranularitySite& reduce_site() {
  static GranularitySite site("multivec.reduce_cols");
  return site;
}
GranularitySite& vec_site() {
  static GranularitySite site("kernels.vec");
  return site;
}
GranularitySite& vec_reduce_site() {
  static GranularitySite site("kernels.vec_reduce");
  return site;
}
GranularitySite& rowwise32_site() {
  static GranularitySite site("multivec.rowwise32");
  return site;
}
GranularitySite& reduce32_site() {
  static GranularitySite site("multivec.reduce32");
  return site;
}

inline bool mask_active(const ColMask* mask, std::size_t c) {
  return mask == nullptr || (*mask)[c] != 0;
}

// Runs fn(s, e) over the canonical blocks of [0, n) on the pool, or as one
// serial fn(0, n) call.  Legal only for partition-independent bodies
// (elementwise / per-row-independent kernels): the split cannot change bits.
template <typename Fn>
void run_elementwise(GranularitySite& site, std::size_t n, std::uint64_t work,
                     std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  if (work == 0) work = n;
  std::size_t nb = canonical_blocks(n, grain);
  if (nb > 1 && site.should_parallelize(work)) {
    std::size_t g = grain ? grain : kDefaultGrain;
    ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
      std::size_t s = b * g;
      std::size_t e = std::min(n, s + g);
      fn(s, e);
    });
    return;
  }
  parsdd::detail::SeqTimer timer(site, work);
  fn(0, n);
}

// Canonical per-block column reduction: per-block partials accumulated by a
// backend kernel, folded in index order — the historic reduce_cols
// structure from multivec.cpp, bit for bit.
template <typename T, typename AccFn>
std::vector<T> reduce_cols_blocks(GranularitySite& site, std::size_t rows,
                                  std::size_t k, AccFn&& accblock) {
  std::vector<T> acc(k, T(0));
  if (k == 0 || rows == 0) return acc;
  std::uint64_t work = static_cast<std::uint64_t>(rows) * k;
  std::size_t nb = canonical_blocks(rows, 0);
  if (nb == 1) {
    parsdd::detail::SeqTimer timer(site, work);
    accblock(0, rows, acc.data());
    return acc;
  }
  std::size_t g = kDefaultGrain;
  std::vector<std::vector<T>> partial(nb, std::vector<T>(k, T(0)));
  auto block_fold = [&](std::size_t b) {
    std::size_t s = b * g, e = std::min(rows, s + g);
    accblock(s, e, partial[b].data());
  };
  if (site.should_parallelize(work)) {
    ThreadPool::instance().run_blocks(nb, block_fold);
  } else {
    parsdd::detail::SeqTimer timer(site, work);
    for (std::size_t b = 0; b < nb; ++b) block_fold(b);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t c = 0; c < k; ++c) acc[c] += partial[b][c];
  }
  return acc;
}

}  // namespace

const Backend& backend() {
  static const Backend& be = pick_backend();
  return be;
}

const char* backend_name() { return backend().name; }

// ---------------------------------------------------------------------------
// Vec BLAS-1

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  const Backend& be = backend();
  run_elementwise(vec_site(), x.size(), 0, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.axpy_f64(a, x.data() + s, y.data() + s, e - s);
                  });
}

void xpay(const Vec& x, double a, Vec& y) {
  assert(x.size() == y.size());
  const Backend& be = backend();
  run_elementwise(vec_site(), x.size(), 0, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.xpay_f64(x.data() + s, a, y.data() + s, e - s);
                  });
}

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  std::size_t n = x.size();
  if (n == 0) return 0.0;
  const Backend& be = backend();
  GranularitySite& site = vec_reduce_site();
  std::size_t nb = canonical_blocks(n, 0);
  if (nb == 1) {
    parsdd::detail::SeqTimer timer(site, n);
    return be.dot_serial_f64(x.data(), y.data(), n);
  }
  std::vector<double> partial(nb, 0.0);
  auto block_fold = [&](std::size_t b) {
    std::size_t s = b * kDefaultGrain, e = std::min(n, s + kDefaultGrain);
    partial[b] = be.dot_serial_f64(x.data() + s, y.data() + s, e - s);
  };
  if (site.should_parallelize(n)) {
    ThreadPool::instance().run_blocks(nb, block_fold);
  } else {
    parsdd::detail::SeqTimer timer(site, n);
    for (std::size_t b = 0; b < nb; ++b) block_fold(b);
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < nb; ++b) acc += partial[b];
  return acc;
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

void scale(double a, Vec& x) {
  const Backend& be = backend();
  run_elementwise(vec_site(), x.size(), 0, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.scale_f64(a, x.data() + s, e - s);
                  });
}

Vec subtract(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  Vec out(x.size());
  const Backend& be = backend();
  run_elementwise(vec_site(), x.size(), 0, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.sub_f64(x.data() + s, y.data() + s, out.data() + s,
                               e - s);
                  });
  return out;
}

double sum(const Vec& x) {
  std::size_t n = x.size();
  if (n == 0) return 0.0;
  const Backend& be = backend();
  GranularitySite& site = vec_reduce_site();
  std::size_t nb = canonical_blocks(n, 0);
  if (nb == 1) {
    parsdd::detail::SeqTimer timer(site, n);
    return be.sum_serial_f64(x.data(), n);
  }
  std::vector<double> partial(nb, 0.0);
  auto block_fold = [&](std::size_t b) {
    std::size_t s = b * kDefaultGrain, e = std::min(n, s + kDefaultGrain);
    partial[b] = be.sum_serial_f64(x.data() + s, e - s);
  };
  if (site.should_parallelize(n)) {
    ThreadPool::instance().run_blocks(nb, block_fold);
  } else {
    parsdd::detail::SeqTimer timer(site, n);
    for (std::size_t b = 0; b < nb; ++b) block_fold(b);
  }
  double acc = 0.0;
  for (std::size_t b = 0; b < nb; ++b) acc += partial[b];
  return acc;
}

void project_out_constant(Vec& x) {
  if (x.empty()) return;
  double mean = sum(x) / static_cast<double>(x.size());
  const Backend& be = backend();
  run_elementwise(vec_site(), x.size(), 0, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.sub_scalar_f64(mean, x.data() + s, e - s);
                  });
}

// ---------------------------------------------------------------------------
// MultiVec column kernels

void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  std::uint64_t work = static_cast<std::uint64_t>(x.rows()) * k;
  if (mask != nullptr) {
    parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
      const double* xr = x.row(i);
      double* yr = y.row(i);
      for (std::size_t c = 0; c < k; ++c) {
        if (mask_active(mask, c)) yr[c] += a[c] * xr[c];
      }
    }, 0, work);
    return;
  }
  const Backend& be = backend();
  run_elementwise(rowwise_site(), x.rows(), work, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.axpy_cols_f64(a.data(), x.row(s), y.row(s), e - s, k);
                  });
}

void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  std::uint64_t work = static_cast<std::uint64_t>(x.rows()) * k;
  if (mask != nullptr) {
    parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
      const double* xr = x.row(i);
      double* yr = y.row(i);
      for (std::size_t c = 0; c < k; ++c) {
        if (mask_active(mask, c)) yr[c] = xr[c] + a[c] * yr[c];
      }
    }, 0, work);
    return;
  }
  const Backend& be = backend();
  run_elementwise(rowwise_site(), x.rows(), work, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.xpay_cols_f64(x.row(s), a.data(), y.row(s), e - s, k);
                  });
}

ColScalars dot_cols(const MultiVec& x, const MultiVec& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<double>(
      reduce_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, double* acc) {
        be.dot_cols_acc_f64(x.row(s), y.row(s), e - s, k, acc);
      });
}

ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y) {
  assert(z.rows() == x.rows() && x.rows() == y.rows());
  assert(z.cols() == x.cols() && x.cols() == y.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<double>(
      reduce_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, double* acc) {
        be.dot_diff_cols_acc_f64(z.row(s), x.row(s), y.row(s), e - s, k, acc);
      });
}

ColScalars norm2_cols(const MultiVec& x) {
  ColScalars n = kernels::dot_cols(x, x);
  for (double& v : n) v = std::sqrt(v);
  return n;
}

ColScalars sum_cols(const MultiVec& x) {
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<double>(
      reduce_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, double* acc) {
        be.sum_cols_acc_f64(x.row(s), e - s, k, acc);
      });
}

void scale_cols(const ColScalars& a, MultiVec& x, const ColMask* mask) {
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  std::uint64_t work = static_cast<std::uint64_t>(x.rows()) * k;
  if (mask != nullptr) {
    parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
      double* xr = x.row(i);
      for (std::size_t c = 0; c < k; ++c) {
        if (mask_active(mask, c)) xr[c] *= a[c];
      }
    }, 0, work);
    return;
  }
  const Backend& be = backend();
  run_elementwise(rowwise_site(), x.rows(), work, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.scale_cols_f64(a.data(), x.row(s), e - s, k);
                  });
}

void copy_cols(const MultiVec& src, MultiVec& dst, const ColMask* mask) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  std::size_t k = src.cols();
  std::uint64_t work = static_cast<std::uint64_t>(src.rows()) * k;
  if (mask != nullptr) {
    parallel_for(rowwise_site(), 0, src.rows(), [&](std::size_t i) {
      const double* sr = src.row(i);
      double* dr = dst.row(i);
      for (std::size_t c = 0; c < k; ++c) {
        if (mask_active(mask, c)) dr[c] = sr[c];
      }
    }, 0, work);
    return;
  }
  const Backend& be = backend();
  run_elementwise(rowwise_site(), src.rows(), work, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.copy_cols_f64(src.row(s), dst.row(s), e - s, k);
                  });
}

void project_out_constant_cols(MultiVec& x, const ColMask* mask) {
  if (x.empty()) return;
  ColScalars mean = kernels::sum_cols(x);
  // Divide (not multiply by a reciprocal): bitwise-matches the single-column
  // project_out_constant so batched and single solves stay in lockstep.
  for (double& m : mean) m /= static_cast<double>(x.rows());
  std::size_t k = x.cols();
  std::uint64_t work = static_cast<std::uint64_t>(x.rows()) * k;
  if (mask != nullptr) {
    parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
      double* xr = x.row(i);
      for (std::size_t c = 0; c < k; ++c) {
        if (mask_active(mask, c)) xr[c] -= mean[c];
      }
    }, 0, work);
    return;
  }
  const Backend& be = backend();
  run_elementwise(rowwise_site(), x.rows(), work, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.sub_cols_f64(mean.data(), x.row(s), e - s, k);
                  });
}

// ---------------------------------------------------------------------------
// CSR

void spmv(const std::size_t* off, const std::uint32_t* col, const double* val,
          std::size_t n, std::size_t nnz, const Vec& x, Vec& y) {
  assert(x.size() == n && y.size() == n);
  static GranularitySite site("csr.spmv", /*init_ns_per_unit=*/2.0);
  const Backend& be = backend();
  run_elementwise(site, n, nnz, /*grain=*/512,
                  [&](std::size_t s, std::size_t e) {
                    be.spmv_rows_f64(off, col, val, x.data(), y.data(), s, e);
                  });
}

void spmm(const std::size_t* off, const std::uint32_t* col, const double* val,
          std::size_t n, std::size_t nnz, const MultiVec& x, MultiVec& y) {
  assert(x.rows() == n && y.rows() == n && x.cols() == y.cols());
  std::size_t k = x.cols();
  static GranularitySite site("csr.spmm", /*init_ns_per_unit=*/2.0);
  const Backend& be = backend();
  run_elementwise(site, n, nnz * k, /*grain=*/512,
                  [&](std::size_t s, std::size_t e) {
                    be.spmm_rows_f64(off, col, val, x.data().data(),
                                     y.data().data(), s, e, k);
                  });
}

// ---------------------------------------------------------------------------
// Elimination fold / back-substitution

void fold_steps(const ElimStep* steps, std::size_t nsteps, MultiVec& folded) {
  std::size_t k = folded.cols();
  static GranularitySite site("greedy.fold_block", /*init_ns_per_unit=*/3.0);
  std::size_t nchunks = (k + kColChunk - 1) / kColChunk;
  const Backend& be = backend();
  double* data = folded.data().data();
  run_elementwise(site, nchunks, nsteps * k, /*grain=*/1,
                  [&](std::size_t s, std::size_t e) {
                    for (std::size_t ch = s; ch < e; ++ch) {
                      std::size_t c0 = ch * kColChunk;
                      std::size_t c1 = std::min(k, c0 + kColChunk);
                      be.fold_cols_f64(steps, nsteps, data, k, c0, c1);
                    }
                  });
}

void backsub_steps(const ElimStep* steps, std::size_t nsteps,
                   const MultiVec& folded, MultiVec& x) {
  std::size_t k = folded.cols();
  static GranularitySite site("greedy.backsub_block",
                              /*init_ns_per_unit=*/3.0);
  std::size_t nchunks = (k + kColChunk - 1) / kColChunk;
  const Backend& be = backend();
  const double* fdata = folded.data().data();
  double* xdata = x.data().data();
  run_elementwise(site, nchunks, nsteps * k, /*grain=*/1,
                  [&](std::size_t s, std::size_t e) {
                    for (std::size_t ch = s; ch < e; ++ch) {
                      std::size_t c0 = ch * kColChunk;
                      std::size_t c1 = std::min(k, c0 + kColChunk);
                      be.backsub_cols_f64(steps, nsteps, fdata, xdata, k, c0,
                                          c1);
                    }
                  });
}

// ---------------------------------------------------------------------------
// Row gather/scatter

void gather_rows(const MultiVec& src, const std::uint32_t* index,
                 MultiVec& dst) {
  assert(src.cols() == dst.cols());
  std::size_t k = dst.cols();
  static GranularitySite site("kernels.gather");
  parallel_for(
      site, 0, dst.rows(),
      [&](std::size_t i) {
        const double* s = src.row(index[i]);
        double* d = dst.row(i);
        for (std::size_t c = 0; c < k; ++c) d[c] = s[c];
      },
      0, static_cast<std::uint64_t>(dst.rows()) * k);
}

void scatter_rows(const MultiVec& src, const std::uint32_t* index,
                  MultiVec& dst) {
  assert(src.cols() == dst.cols());
  std::size_t k = src.cols();
  static GranularitySite site("kernels.scatter");
  parallel_for(
      site, 0, src.rows(),
      [&](std::size_t i) {
        const double* s = src.row(i);
        double* d = dst.row(index[i]);
        for (std::size_t c = 0; c < k; ++c) d[c] = s[c];
      },
      0, static_cast<std::uint64_t>(src.rows()) * k);
}

// ---------------------------------------------------------------------------
// f32 path (mixed-precision preconditioner chain)

void axpy_cols32(const std::vector<float>& a, const MultiVec32& x,
                 MultiVec32& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  run_elementwise(rowwise32_site(), x.rows(),
                  static_cast<std::uint64_t>(x.rows()) * k, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.axpy_cols_f32(a.data(), x.row(s), y.row(s), e - s, k);
                  });
}

void xpay_cols32(const MultiVec32& x, const std::vector<float>& a,
                 MultiVec32& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  run_elementwise(rowwise32_site(), x.rows(),
                  static_cast<std::uint64_t>(x.rows()) * k, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.xpay_cols_f32(x.row(s), a.data(), y.row(s), e - s, k);
                  });
}

std::vector<float> dot_cols32(const MultiVec32& x, const MultiVec32& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<float>(
      reduce32_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, float* acc) {
        be.dot_cols_acc_f32(x.row(s), y.row(s), e - s, k, acc);
      });
}

std::vector<float> dot_diff_cols32(const MultiVec32& z, const MultiVec32& x,
                                   const MultiVec32& y) {
  assert(z.rows() == x.rows() && x.rows() == y.rows());
  assert(z.cols() == x.cols() && x.cols() == y.cols());
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<float>(
      reduce32_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, float* acc) {
        be.dot_diff_cols_acc_f32(z.row(s), x.row(s), y.row(s), e - s, k, acc);
      });
}

std::vector<float> norm2_cols32(const MultiVec32& x) {
  std::vector<float> n = dot_cols32(x, x);
  for (float& v : n) v = std::sqrt(v);
  return n;
}

std::vector<float> sum_cols32(const MultiVec32& x) {
  std::size_t k = x.cols();
  const Backend& be = backend();
  return reduce_cols_blocks<float>(
      reduce32_site(), x.rows(), k,
      [&](std::size_t s, std::size_t e, float* acc) {
        be.sum_cols_acc_f32(x.row(s), e - s, k, acc);
      });
}

void copy_cols32(const MultiVec32& src, MultiVec32& dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  std::size_t k = src.cols();
  const Backend& be = backend();
  run_elementwise(rowwise32_site(), src.rows(),
                  static_cast<std::uint64_t>(src.rows()) * k, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.copy_cols_f32(src.row(s), dst.row(s), e - s, k);
                  });
}

void project_out_constant_cols32(MultiVec32& x) {
  if (x.empty()) return;
  std::vector<float> mean = sum_cols32(x);
  for (float& m : mean) m /= static_cast<float>(x.rows());
  std::size_t k = x.cols();
  const Backend& be = backend();
  run_elementwise(rowwise32_site(), x.rows(),
                  static_cast<std::uint64_t>(x.rows()) * k, 0,
                  [&](std::size_t s, std::size_t e) {
                    be.sub_cols_f32(mean.data(), x.row(s), e - s, k);
                  });
}

void spmm32(const std::size_t* off, const std::uint32_t* col, const float* val,
            std::size_t n, std::size_t nnz, const MultiVec32& x,
            MultiVec32& y) {
  assert(x.rows() == n && y.rows() == n && x.cols() == y.cols());
  std::size_t k = x.cols();
  static GranularitySite site("csr.spmm32", /*init_ns_per_unit=*/2.0);
  const Backend& be = backend();
  run_elementwise(site, n, nnz * k, /*grain=*/512,
                  [&](std::size_t s, std::size_t e) {
                    be.spmm_rows_f32(off, col, val, x.data().data(),
                                     y.data().data(), s, e, k);
                  });
}

void fold_steps32(const ElimStep* steps, std::size_t nsteps,
                  MultiVec32& folded) {
  std::size_t k = folded.cols();
  static GranularitySite site("greedy.fold32", /*init_ns_per_unit=*/3.0);
  std::size_t nchunks = (k + kColChunk - 1) / kColChunk;
  const Backend& be = backend();
  float* data = folded.data().data();
  run_elementwise(site, nchunks, nsteps * k, /*grain=*/1,
                  [&](std::size_t s, std::size_t e) {
                    for (std::size_t ch = s; ch < e; ++ch) {
                      std::size_t c0 = ch * kColChunk;
                      std::size_t c1 = std::min(k, c0 + kColChunk);
                      be.fold_cols_f32(steps, nsteps, data, k, c0, c1);
                    }
                  });
}

void backsub_steps32(const ElimStep* steps, std::size_t nsteps,
                     const MultiVec32& folded, MultiVec32& x) {
  std::size_t k = folded.cols();
  static GranularitySite site("greedy.backsub32", /*init_ns_per_unit=*/3.0);
  std::size_t nchunks = (k + kColChunk - 1) / kColChunk;
  const Backend& be = backend();
  const float* fdata = folded.data().data();
  float* xdata = x.data().data();
  run_elementwise(site, nchunks, nsteps * k, /*grain=*/1,
                  [&](std::size_t s, std::size_t e) {
                    for (std::size_t ch = s; ch < e; ++ch) {
                      std::size_t c0 = ch * kColChunk;
                      std::size_t c1 = std::min(k, c0 + kColChunk);
                      be.backsub_cols_f32(steps, nsteps, fdata, xdata, k, c0,
                                          c1);
                    }
                  });
}

void gather_rows32(const MultiVec32& src, const std::uint32_t* index,
                   MultiVec32& dst) {
  assert(src.cols() == dst.cols());
  std::size_t k = dst.cols();
  static GranularitySite site("kernels.gather32");
  parallel_for(
      site, 0, dst.rows(),
      [&](std::size_t i) {
        const float* s = src.row(index[i]);
        float* d = dst.row(i);
        for (std::size_t c = 0; c < k; ++c) d[c] = s[c];
      },
      0, static_cast<std::uint64_t>(dst.rows()) * k);
}

void scatter_rows32(const MultiVec32& src, const std::uint32_t* index,
                    MultiVec32& dst) {
  assert(src.cols() == dst.cols());
  std::size_t k = src.cols();
  static GranularitySite site("kernels.scatter32");
  parallel_for(
      site, 0, src.rows(),
      [&](std::size_t i) {
        const float* s = src.row(i);
        float* d = dst.row(index[i]);
        for (std::size_t c = 0; c < k; ++c) d[c] = s[c];
      },
      0, static_cast<std::uint64_t>(src.rows()) * k);
}

void narrow(const MultiVec& src, MultiVec32& dst) {
  ensure_shape32(dst, src.rows(), src.cols());
  std::size_t k = src.cols();
  static GranularitySite site("kernels.convert");
  parallel_for(
      site, 0, src.rows(),
      [&](std::size_t i) {
        const double* s = src.row(i);
        float* d = dst.row(i);
        for (std::size_t c = 0; c < k; ++c) d[c] = static_cast<float>(s[c]);
      },
      0, static_cast<std::uint64_t>(src.rows()) * k);
}

void widen(const MultiVec32& src, MultiVec& dst) {
  ensure_shape(dst, src.rows(), src.cols());
  std::size_t k = src.cols();
  static GranularitySite site("kernels.convert");
  parallel_for(
      site, 0, src.rows(),
      [&](std::size_t i) {
        const float* s = src.row(i);
        double* d = dst.row(i);
        for (std::size_t c = 0; c < k; ++c) d[c] = static_cast<double>(s[c]);
      },
      0, static_cast<std::uint64_t>(src.rows()) * k);
}

}  // namespace parsdd::kernels
