// AVX2 backend.  Compiled WITHOUT -mavx2: every vector function carries
// __attribute__((target("avx2"))) (function multiversioning), so this TU is
// safe to link into a binary that must still run on non-AVX hardware — the
// dispatcher (kernels.cpp) only takes these pointers after
// __builtin_cpu_supports("avx2") says yes.
//
// Bitwise contract: vectors run ACROSS the k independent columns (or the
// independent indices of an elementwise loop); each lane executes the exact
// scalar operation sequence with plain mul/add/div — never FMA, never a
// reassociated horizontal reduction.  Serial-chain kernels (dot_serial,
// sum_serial, spmv) and plain copies reuse the scalar templates.
#include "kernels/backend_detail.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#define PARSDD_TARGET_AVX2 __attribute__((target("avx2")))

namespace parsdd::kernels::detail {
namespace {

// ---- elementwise f64 ----

PARSDD_TARGET_AVX2 void axpy_avx2(double a, const double* x, double* y,
                                  std::size_t n) {
  __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vy = _mm256_loadu_pd(y + i);
    vy = _mm256_add_pd(vy, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    _mm256_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

PARSDD_TARGET_AVX2 void xpay_avx2(const double* x, double a, double* y,
                                  std::size_t n) {
  __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vy = _mm256_mul_pd(va, _mm256_loadu_pd(y + i));
    vy = _mm256_add_pd(_mm256_loadu_pd(x + i), vy);
    _mm256_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] = x[i] + a * y[i];
}

PARSDD_TARGET_AVX2 void scale_avx2(double a, double* x, std::size_t n) {
  __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

PARSDD_TARGET_AVX2 void sub_avx2(const double* x, const double* y, double* out,
                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

PARSDD_TARGET_AVX2 void sub_scalar_avx2(double m, double* x, std::size_t n) {
  __m256d vm = _mm256_set1_pd(m);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), vm));
  }
  for (; i < n; ++i) x[i] -= m;
}

// ---- column kernels f64 (vector across columns within each row) ----

PARSDD_TARGET_AVX2 void axpy_cols_avx2(const double* a, const double* x,
                                       double* y, std::size_t rows,
                                       std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * k;
    double* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      __m256d vy = _mm256_loadu_pd(yr + c);
      vy = _mm256_add_pd(vy, _mm256_mul_pd(_mm256_loadu_pd(a + c),
                                           _mm256_loadu_pd(xr + c)));
      _mm256_storeu_pd(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] += a[c] * xr[c];
  }
}

PARSDD_TARGET_AVX2 void xpay_cols_avx2(const double* x, const double* a,
                                       double* y, std::size_t rows,
                                       std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * k;
    double* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      __m256d vy = _mm256_mul_pd(_mm256_loadu_pd(a + c),
                                 _mm256_loadu_pd(yr + c));
      vy = _mm256_add_pd(_mm256_loadu_pd(xr + c), vy);
      _mm256_storeu_pd(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] = xr[c] + a[c] * yr[c];
  }
}

PARSDD_TARGET_AVX2 void scale_cols_avx2(const double* a, double* x,
                                        std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      _mm256_storeu_pd(xr + c, _mm256_mul_pd(_mm256_loadu_pd(xr + c),
                                             _mm256_loadu_pd(a + c)));
    }
    for (; c < k; ++c) xr[c] *= a[c];
  }
}

PARSDD_TARGET_AVX2 void sub_cols_avx2(const double* m, double* x,
                                      std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 4 <= k; c += 4) {
      _mm256_storeu_pd(xr + c, _mm256_sub_pd(_mm256_loadu_pd(xr + c),
                                             _mm256_loadu_pd(m + c)));
    }
    for (; c < k; ++c) xr[c] -= m[c];
  }
}

// Reductions hold a register of column accumulators across the whole row
// range (k-dimension blocking): each column still accumulates rows in
// increasing order, so lane c is bit-identical to the scalar chain.

PARSDD_TARGET_AVX2 void dot_cols_acc_avx2(const double* x, const double* y,
                                          std::size_t rows, std::size_t k,
                                          double* acc) {
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256d vacc = _mm256_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm256_add_pd(vacc, _mm256_mul_pd(_mm256_loadu_pd(x + r * k + c),
                                               _mm256_loadu_pd(y + r * k + c)));
    }
    _mm256_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c] * y[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX2 void dot_diff_cols_acc_avx2(const double* z, const double* x,
                                               const double* y,
                                               std::size_t rows, std::size_t k,
                                               double* acc) {
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256d vacc = _mm256_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + r * k + c),
                                _mm256_loadu_pd(y + r * k + c));
      vacc = _mm256_add_pd(vacc,
                           _mm256_mul_pd(_mm256_loadu_pd(z + r * k + c), d));
    }
    _mm256_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) {
      a0 += z[r * k + c] * (x[r * k + c] - y[r * k + c]);
    }
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX2 void sum_cols_acc_avx2(const double* x, std::size_t rows,
                                          std::size_t k, double* acc) {
  std::size_t c = 0;
  for (; c + 4 <= k; c += 4) {
    __m256d vacc = _mm256_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm256_add_pd(vacc, _mm256_loadu_pd(x + r * k + c));
    }
    _mm256_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c];
    acc[c] = a0;
  }
}

// ---- CSR SpMM: per row, column-chunked accumulators live in registers
//      across the nonzero walk (8-wide, then 4-wide, then scalar tail) ----

PARSDD_TARGET_AVX2 void spmm_rows_avx2(const std::size_t* off,
                                       const std::uint32_t* col,
                                       const double* val, const double* x,
                                       double* y, std::size_t r0,
                                       std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    double* yr = y + i * k;
    std::size_t p0 = off[i], p1 = off[i + 1];
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      for (std::size_t p = p0; p < p1; ++p) {
        __m256d v = _mm256_set1_pd(val[p]);
        const double* xr = x + static_cast<std::size_t>(col[p]) * k + c;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v, _mm256_loadu_pd(xr)));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v, _mm256_loadu_pd(xr + 4)));
      }
      _mm256_storeu_pd(yr + c, acc0);
      _mm256_storeu_pd(yr + c + 4, acc1);
    }
    for (; c + 4 <= k; c += 4) {
      __m256d acc0 = _mm256_setzero_pd();
      for (std::size_t p = p0; p < p1; ++p) {
        __m256d v = _mm256_set1_pd(val[p]);
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(
                      v, _mm256_loadu_pd(
                             x + static_cast<std::size_t>(col[p]) * k + c)));
      }
      _mm256_storeu_pd(yr + c, acc0);
    }
    for (; c < k; ++c) {
      double acc = 0.0;
      for (std::size_t p = p0; p < p1; ++p) {
        acc += val[p] * x[static_cast<std::size_t>(col[p]) * k + c];
      }
      yr[c] = acc;
    }
  }
}

// ---- elimination fold / back-substitution over columns [c0, c1) ----

PARSDD_TARGET_AVX2 inline void fold_update_avx2(double f, const double* fv,
                                                double* fu, std::size_t c0,
                                                std::size_t c1) {
  __m256d vf = _mm256_set1_pd(f);
  std::size_t c = c0;
  for (; c + 4 <= c1; c += 4) {
    __m256d u = _mm256_loadu_pd(fu + c);
    u = _mm256_add_pd(u, _mm256_mul_pd(vf, _mm256_loadu_pd(fv + c)));
    _mm256_storeu_pd(fu + c, u);
  }
  for (; c < c1; ++c) fu[c] += f * fv[c];
}

PARSDD_TARGET_AVX2 void fold_cols_avx2(const ElimStep* steps,
                                       std::size_t nsteps, double* folded,
                                       std::size_t k, std::size_t c0,
                                       std::size_t c1) {
  for (std::size_t s_idx = 0; s_idx < nsteps; ++s_idx) {
    const ElimStep& s = steps[s_idx];
    const double* fv = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree >= 1) {
      fold_update_avx2(s.w1 / s.pivot, fv,
                       folded + static_cast<std::size_t>(s.u1) * k, c0, c1);
    }
    if (s.degree == 2) {
      fold_update_avx2(s.w2 / s.pivot, fv,
                       folded + static_cast<std::size_t>(s.u2) * k, c0, c1);
    }
  }
}

PARSDD_TARGET_AVX2 void backsub_cols_avx2(const ElimStep* steps,
                                          std::size_t nsteps,
                                          const double* folded, double* x,
                                          std::size_t k, std::size_t c0,
                                          std::size_t c1) {
  for (std::size_t s_idx = nsteps; s_idx-- > 0;) {
    const ElimStep& s = steps[s_idx];
    double* xv = x + static_cast<std::size_t>(s.v) * k;
    const double* fb = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree == 0) {
      std::size_t c = c0;
      __m256d z = _mm256_setzero_pd();
      for (; c + 4 <= c1; c += 4) _mm256_storeu_pd(xv + c, z);
      for (; c < c1; ++c) xv[c] = 0.0;
    } else if (s.degree == 1) {
      const double* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      __m256d piv = _mm256_set1_pd(s.pivot);
      std::size_t c = c0;
      for (; c + 4 <= c1; c += 4) {
        __m256d t = _mm256_div_pd(_mm256_loadu_pd(fb + c), piv);
        _mm256_storeu_pd(xv + c, _mm256_add_pd(t, _mm256_loadu_pd(xu1 + c)));
      }
      for (; c < c1; ++c) xv[c] = fb[c] / s.pivot + xu1[c];
    } else {
      const double* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      const double* xu2 = x + static_cast<std::size_t>(s.u2) * k;
      __m256d piv = _mm256_set1_pd(s.pivot);
      __m256d w1 = _mm256_set1_pd(s.w1);
      __m256d w2 = _mm256_set1_pd(s.w2);
      std::size_t c = c0;
      for (; c + 4 <= c1; c += 4) {
        __m256d t = _mm256_add_pd(
            _mm256_loadu_pd(fb + c),
            _mm256_mul_pd(w1, _mm256_loadu_pd(xu1 + c)));
        t = _mm256_add_pd(t, _mm256_mul_pd(w2, _mm256_loadu_pd(xu2 + c)));
        _mm256_storeu_pd(xv + c, _mm256_div_pd(t, piv));
      }
      for (; c < c1; ++c) {
        xv[c] = (fb[c] + s.w1 * xu1[c] + s.w2 * xu2[c]) / s.pivot;
      }
    }
  }
}

// ---- f32 twins (8 lanes; the mixed-precision chain has no bitwise
//      contract, but the lane-wise structure is kept identical anyway) ----

PARSDD_TARGET_AVX2 void axpy_cols_avx2_f32(const float* a, const float* x,
                                           float* y, std::size_t rows,
                                           std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m256 vy = _mm256_loadu_ps(yr + c);
      vy = _mm256_add_ps(vy, _mm256_mul_ps(_mm256_loadu_ps(a + c),
                                           _mm256_loadu_ps(xr + c)));
      _mm256_storeu_ps(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] += a[c] * xr[c];
  }
}

PARSDD_TARGET_AVX2 void xpay_cols_avx2_f32(const float* x, const float* a,
                                           float* y, std::size_t rows,
                                           std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m256 vy = _mm256_mul_ps(_mm256_loadu_ps(a + c),
                                _mm256_loadu_ps(yr + c));
      vy = _mm256_add_ps(_mm256_loadu_ps(xr + c), vy);
      _mm256_storeu_ps(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] = xr[c] + a[c] * yr[c];
  }
}

PARSDD_TARGET_AVX2 void sub_cols_avx2_f32(const float* m, float* x,
                                          std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      _mm256_storeu_ps(xr + c, _mm256_sub_ps(_mm256_loadu_ps(xr + c),
                                             _mm256_loadu_ps(m + c)));
    }
    for (; c < k; ++c) xr[c] -= m[c];
  }
}

PARSDD_TARGET_AVX2 void dot_cols_acc_avx2_f32(const float* x, const float* y,
                                              std::size_t rows, std::size_t k,
                                              float* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m256 vacc = _mm256_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm256_add_ps(vacc, _mm256_mul_ps(_mm256_loadu_ps(x + r * k + c),
                                               _mm256_loadu_ps(y + r * k + c)));
    }
    _mm256_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c] * y[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX2 void dot_diff_cols_acc_avx2_f32(const float* z,
                                                   const float* x,
                                                   const float* y,
                                                   std::size_t rows,
                                                   std::size_t k, float* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m256 vacc = _mm256_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + r * k + c),
                               _mm256_loadu_ps(y + r * k + c));
      vacc = _mm256_add_ps(vacc, _mm256_mul_ps(_mm256_loadu_ps(z + r * k + c), d));
    }
    _mm256_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) {
      a0 += z[r * k + c] * (x[r * k + c] - y[r * k + c]);
    }
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX2 void sum_cols_acc_avx2_f32(const float* x, std::size_t rows,
                                              std::size_t k, float* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m256 vacc = _mm256_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm256_add_ps(vacc, _mm256_loadu_ps(x + r * k + c));
    }
    _mm256_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX2 void spmm_rows_avx2_f32(const std::size_t* off,
                                           const std::uint32_t* col,
                                           const float* val, const float* x,
                                           float* y, std::size_t r0,
                                           std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* yr = y + i * k;
    std::size_t p0 = off[i], p1 = off[i + 1];
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m256 acc0 = _mm256_setzero_ps();
      for (std::size_t p = p0; p < p1; ++p) {
        __m256 v = _mm256_set1_ps(val[p]);
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(
                      v, _mm256_loadu_ps(
                             x + static_cast<std::size_t>(col[p]) * k + c)));
      }
      _mm256_storeu_ps(yr + c, acc0);
    }
    for (; c < k; ++c) {
      float acc = 0.0f;
      for (std::size_t p = p0; p < p1; ++p) {
        acc += val[p] * x[static_cast<std::size_t>(col[p]) * k + c];
      }
      yr[c] = acc;
    }
  }
}

PARSDD_TARGET_AVX2 inline void fold_update_avx2_f32(float f, const float* fv,
                                                    float* fu, std::size_t c0,
                                                    std::size_t c1) {
  __m256 vf = _mm256_set1_ps(f);
  std::size_t c = c0;
  for (; c + 8 <= c1; c += 8) {
    __m256 u = _mm256_loadu_ps(fu + c);
    u = _mm256_add_ps(u, _mm256_mul_ps(vf, _mm256_loadu_ps(fv + c)));
    _mm256_storeu_ps(fu + c, u);
  }
  for (; c < c1; ++c) fu[c] += f * fv[c];
}

PARSDD_TARGET_AVX2 void fold_cols_avx2_f32(const ElimStep* steps,
                                           std::size_t nsteps, float* folded,
                                           std::size_t k, std::size_t c0,
                                           std::size_t c1) {
  for (std::size_t s_idx = 0; s_idx < nsteps; ++s_idx) {
    const ElimStep& s = steps[s_idx];
    const float* fv = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree >= 1) {
      fold_update_avx2_f32(static_cast<float>(s.w1 / s.pivot), fv,
                           folded + static_cast<std::size_t>(s.u1) * k, c0, c1);
    }
    if (s.degree == 2) {
      fold_update_avx2_f32(static_cast<float>(s.w2 / s.pivot), fv,
                           folded + static_cast<std::size_t>(s.u2) * k, c0, c1);
    }
  }
}

PARSDD_TARGET_AVX2 void backsub_cols_avx2_f32(const ElimStep* steps,
                                              std::size_t nsteps,
                                              const float* folded, float* x,
                                              std::size_t k, std::size_t c0,
                                              std::size_t c1) {
  for (std::size_t s_idx = nsteps; s_idx-- > 0;) {
    const ElimStep& s = steps[s_idx];
    float* xv = x + static_cast<std::size_t>(s.v) * k;
    const float* fb = folded + static_cast<std::size_t>(s.v) * k;
    float piv = static_cast<float>(s.pivot);
    if (s.degree == 0) {
      std::size_t c = c0;
      __m256 z = _mm256_setzero_ps();
      for (; c + 8 <= c1; c += 8) _mm256_storeu_ps(xv + c, z);
      for (; c < c1; ++c) xv[c] = 0.0f;
    } else if (s.degree == 1) {
      const float* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      __m256 vpiv = _mm256_set1_ps(piv);
      std::size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        __m256 t = _mm256_div_ps(_mm256_loadu_ps(fb + c), vpiv);
        _mm256_storeu_ps(xv + c, _mm256_add_ps(t, _mm256_loadu_ps(xu1 + c)));
      }
      for (; c < c1; ++c) xv[c] = fb[c] / piv + xu1[c];
    } else {
      float w1 = static_cast<float>(s.w1);
      float w2 = static_cast<float>(s.w2);
      const float* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      const float* xu2 = x + static_cast<std::size_t>(s.u2) * k;
      __m256 vpiv = _mm256_set1_ps(piv);
      __m256 vw1 = _mm256_set1_ps(w1);
      __m256 vw2 = _mm256_set1_ps(w2);
      std::size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        __m256 t = _mm256_add_ps(
            _mm256_loadu_ps(fb + c), _mm256_mul_ps(vw1, _mm256_loadu_ps(xu1 + c)));
        t = _mm256_add_ps(t, _mm256_mul_ps(vw2, _mm256_loadu_ps(xu2 + c)));
        _mm256_storeu_ps(xv + c, _mm256_div_ps(t, vpiv));
      }
      for (; c < c1; ++c) {
        xv[c] = (fb[c] + w1 * xu1[c] + w2 * xu2[c]) / piv;
      }
    }
  }
}

}  // namespace

bool avx2_supported() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
}

const Backend& avx2_backend() {
  static const Backend be{
      /*name=*/"avx2",
      /*level=*/SimdLevel::kAvx2,
      /*axpy_f64=*/&axpy_avx2,
      /*xpay_f64=*/&xpay_avx2,
      /*scale_f64=*/&scale_avx2,
      /*sub_f64=*/&sub_avx2,
      /*sub_scalar_f64=*/&sub_scalar_avx2,
      /*dot_serial_f64=*/&dot_serial_t<double>,
      /*sum_serial_f64=*/&sum_serial_t<double>,
      /*axpy_cols_f64=*/&axpy_cols_avx2,
      /*xpay_cols_f64=*/&xpay_cols_avx2,
      /*scale_cols_f64=*/&scale_cols_avx2,
      /*copy_cols_f64=*/&copy_cols_t<double>,
      /*sub_cols_f64=*/&sub_cols_avx2,
      /*dot_cols_acc_f64=*/&dot_cols_acc_avx2,
      /*dot_diff_cols_acc_f64=*/&dot_diff_cols_acc_avx2,
      /*sum_cols_acc_f64=*/&sum_cols_acc_avx2,
      /*spmv_rows_f64=*/&spmv_rows_d,
      /*spmm_rows_f64=*/&spmm_rows_avx2,
      /*fold_cols_f64=*/&fold_cols_avx2,
      /*backsub_cols_f64=*/&backsub_cols_avx2,
      /*axpy_cols_f32=*/&axpy_cols_avx2_f32,
      /*xpay_cols_f32=*/&xpay_cols_avx2_f32,
      /*copy_cols_f32=*/&copy_cols_t<float>,
      /*sub_cols_f32=*/&sub_cols_avx2_f32,
      /*dot_cols_acc_f32=*/&dot_cols_acc_avx2_f32,
      /*dot_diff_cols_acc_f32=*/&dot_diff_cols_acc_avx2_f32,
      /*sum_cols_acc_f32=*/&sum_cols_acc_avx2_f32,
      /*spmm_rows_f32=*/&spmm_rows_avx2_f32,
      /*fold_cols_f32=*/&fold_cols_avx2_f32,
      /*backsub_cols_f32=*/&backsub_cols_avx2_f32,
  };
  return be;
}

}  // namespace parsdd::kernels::detail

#else  // non-x86: the scalar backend is the only implementation.

namespace parsdd::kernels::detail {
bool avx2_supported() { return false; }
const Backend& avx2_backend() { return scalar_backend(); }
}  // namespace parsdd::kernels::detail

#endif
