// The portable backend: the reference operation sequence, built entirely
// from the templates in backend_detail.h.  Always available; the AVX
// backends must match it bit-for-bit (test_kernels enforces this through
// whole solves).
#include "kernels/backend_detail.h"

namespace parsdd::kernels::detail {

const Backend& scalar_backend() {
  static const Backend be{
      /*name=*/"scalar",
      /*level=*/SimdLevel::kScalar,
      /*axpy_f64=*/&axpy_t<double>,
      /*xpay_f64=*/&xpay_t<double>,
      /*scale_f64=*/&scale_t<double>,
      /*sub_f64=*/&sub_t<double>,
      /*sub_scalar_f64=*/&sub_scalar_t<double>,
      /*dot_serial_f64=*/&dot_serial_t<double>,
      /*sum_serial_f64=*/&sum_serial_t<double>,
      /*axpy_cols_f64=*/&axpy_cols_t<double>,
      /*xpay_cols_f64=*/&xpay_cols_t<double>,
      /*scale_cols_f64=*/&scale_cols_t<double>,
      /*copy_cols_f64=*/&copy_cols_t<double>,
      /*sub_cols_f64=*/&sub_cols_t<double>,
      /*dot_cols_acc_f64=*/&dot_cols_acc_t<double>,
      /*dot_diff_cols_acc_f64=*/&dot_diff_cols_acc_t<double>,
      /*sum_cols_acc_f64=*/&sum_cols_acc_t<double>,
      /*spmv_rows_f64=*/&spmv_rows_d,
      /*spmm_rows_f64=*/&spmm_rows_t<double>,
      /*fold_cols_f64=*/&fold_cols_t<double>,
      /*backsub_cols_f64=*/&backsub_cols_t<double>,
      /*axpy_cols_f32=*/&axpy_cols_t<float>,
      /*xpay_cols_f32=*/&xpay_cols_t<float>,
      /*copy_cols_f32=*/&copy_cols_t<float>,
      /*sub_cols_f32=*/&sub_cols_t<float>,
      /*dot_cols_acc_f32=*/&dot_cols_acc_t<float>,
      /*dot_diff_cols_acc_f32=*/&dot_diff_cols_acc_t<float>,
      /*sum_cols_acc_f32=*/&sum_cols_acc_t<float>,
      /*spmm_rows_f32=*/&spmm_rows_t<float>,
      /*fold_cols_f32=*/&fold_cols_t<float>,
      /*backsub_cols_f32=*/&backsub_cols_t<float>,
  };
  return be;
}

}  // namespace parsdd::kernels::detail
