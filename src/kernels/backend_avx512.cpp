// AVX-512 backend (avx512f).  Same structure and bitwise contract as the
// AVX2 backend (see backend_avx2.cpp): function multiversioning via target
// attributes, vectors across independent columns only, plain mul/add/div
// (never FMA), serial-chain kernels shared with the scalar templates.
// 8 f64 lanes / 16 f32 lanes per register — a fold/backsub column chunk
// (kColChunk = 8) is exactly one f64 register.
#include "kernels/backend_detail.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#define PARSDD_TARGET_AVX512 __attribute__((target("avx512f")))

namespace parsdd::kernels::detail {
namespace {

// ---- elementwise f64 ----

PARSDD_TARGET_AVX512 void axpy_avx512(double a, const double* x, double* y,
                                      std::size_t n) {
  __m512d va = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vy = _mm512_loadu_pd(y + i);
    vy = _mm512_add_pd(vy, _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
    _mm512_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

PARSDD_TARGET_AVX512 void xpay_avx512(const double* x, double a, double* y,
                                      std::size_t n) {
  __m512d va = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512d vy = _mm512_mul_pd(va, _mm512_loadu_pd(y + i));
    vy = _mm512_add_pd(_mm512_loadu_pd(x + i), vy);
    _mm512_storeu_pd(y + i, vy);
  }
  for (; i < n; ++i) y[i] = x[i] + a * y[i];
}

PARSDD_TARGET_AVX512 void scale_avx512(double a, double* x, std::size_t n) {
  __m512d va = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= a;
}

PARSDD_TARGET_AVX512 void sub_avx512(const double* x, const double* y,
                                     double* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        out + i, _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i)));
  }
  for (; i < n; ++i) out[i] = x[i] - y[i];
}

PARSDD_TARGET_AVX512 void sub_scalar_avx512(double m, double* x,
                                            std::size_t n) {
  __m512d vm = _mm512_set1_pd(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_sub_pd(_mm512_loadu_pd(x + i), vm));
  }
  for (; i < n; ++i) x[i] -= m;
}

// ---- column kernels f64 ----

PARSDD_TARGET_AVX512 void axpy_cols_avx512(const double* a, const double* x,
                                           double* y, std::size_t rows,
                                           std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * k;
    double* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m512d vy = _mm512_loadu_pd(yr + c);
      vy = _mm512_add_pd(vy, _mm512_mul_pd(_mm512_loadu_pd(a + c),
                                           _mm512_loadu_pd(xr + c)));
      _mm512_storeu_pd(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] += a[c] * xr[c];
  }
}

PARSDD_TARGET_AVX512 void xpay_cols_avx512(const double* x, const double* a,
                                           double* y, std::size_t rows,
                                           std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* xr = x + r * k;
    double* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      __m512d vy = _mm512_mul_pd(_mm512_loadu_pd(a + c),
                                 _mm512_loadu_pd(yr + c));
      vy = _mm512_add_pd(_mm512_loadu_pd(xr + c), vy);
      _mm512_storeu_pd(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] = xr[c] + a[c] * yr[c];
  }
}

PARSDD_TARGET_AVX512 void scale_cols_avx512(const double* a, double* x,
                                            std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      _mm512_storeu_pd(xr + c, _mm512_mul_pd(_mm512_loadu_pd(xr + c),
                                             _mm512_loadu_pd(a + c)));
    }
    for (; c < k; ++c) xr[c] *= a[c];
  }
}

PARSDD_TARGET_AVX512 void sub_cols_avx512(const double* m, double* x,
                                          std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 8 <= k; c += 8) {
      _mm512_storeu_pd(xr + c, _mm512_sub_pd(_mm512_loadu_pd(xr + c),
                                             _mm512_loadu_pd(m + c)));
    }
    for (; c < k; ++c) xr[c] -= m[c];
  }
}

PARSDD_TARGET_AVX512 void dot_cols_acc_avx512(const double* x, const double* y,
                                              std::size_t rows, std::size_t k,
                                              double* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m512d vacc = _mm512_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm512_add_pd(vacc, _mm512_mul_pd(_mm512_loadu_pd(x + r * k + c),
                                               _mm512_loadu_pd(y + r * k + c)));
    }
    _mm512_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c] * y[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void dot_diff_cols_acc_avx512(const double* z,
                                                   const double* x,
                                                   const double* y,
                                                   std::size_t rows,
                                                   std::size_t k,
                                                   double* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m512d vacc = _mm512_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      __m512d d = _mm512_sub_pd(_mm512_loadu_pd(x + r * k + c),
                                _mm512_loadu_pd(y + r * k + c));
      vacc = _mm512_add_pd(vacc,
                           _mm512_mul_pd(_mm512_loadu_pd(z + r * k + c), d));
    }
    _mm512_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) {
      a0 += z[r * k + c] * (x[r * k + c] - y[r * k + c]);
    }
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void sum_cols_acc_avx512(const double* x,
                                              std::size_t rows, std::size_t k,
                                              double* acc) {
  std::size_t c = 0;
  for (; c + 8 <= k; c += 8) {
    __m512d vacc = _mm512_loadu_pd(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm512_add_pd(vacc, _mm512_loadu_pd(x + r * k + c));
    }
    _mm512_storeu_pd(acc + c, vacc);
  }
  for (; c < k; ++c) {
    double a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void spmm_rows_avx512(const std::size_t* off,
                                           const std::uint32_t* col,
                                           const double* val, const double* x,
                                           double* y, std::size_t r0,
                                           std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    double* yr = y + i * k;
    std::size_t p0 = off[i], p1 = off[i + 1];
    std::size_t c = 0;
    for (; c + 16 <= k; c += 16) {
      __m512d acc0 = _mm512_setzero_pd();
      __m512d acc1 = _mm512_setzero_pd();
      for (std::size_t p = p0; p < p1; ++p) {
        __m512d v = _mm512_set1_pd(val[p]);
        const double* xr = x + static_cast<std::size_t>(col[p]) * k + c;
        acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(v, _mm512_loadu_pd(xr)));
        acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(v, _mm512_loadu_pd(xr + 8)));
      }
      _mm512_storeu_pd(yr + c, acc0);
      _mm512_storeu_pd(yr + c + 8, acc1);
    }
    for (; c + 8 <= k; c += 8) {
      __m512d acc0 = _mm512_setzero_pd();
      for (std::size_t p = p0; p < p1; ++p) {
        __m512d v = _mm512_set1_pd(val[p]);
        acc0 = _mm512_add_pd(
            acc0, _mm512_mul_pd(
                      v, _mm512_loadu_pd(
                             x + static_cast<std::size_t>(col[p]) * k + c)));
      }
      _mm512_storeu_pd(yr + c, acc0);
    }
    for (; c < k; ++c) {
      double acc = 0.0;
      for (std::size_t p = p0; p < p1; ++p) {
        acc += val[p] * x[static_cast<std::size_t>(col[p]) * k + c];
      }
      yr[c] = acc;
    }
  }
}

PARSDD_TARGET_AVX512 inline void fold_update_avx512(double f, const double* fv,
                                                    double* fu, std::size_t c0,
                                                    std::size_t c1) {
  __m512d vf = _mm512_set1_pd(f);
  std::size_t c = c0;
  for (; c + 8 <= c1; c += 8) {
    __m512d u = _mm512_loadu_pd(fu + c);
    u = _mm512_add_pd(u, _mm512_mul_pd(vf, _mm512_loadu_pd(fv + c)));
    _mm512_storeu_pd(fu + c, u);
  }
  for (; c < c1; ++c) fu[c] += f * fv[c];
}

PARSDD_TARGET_AVX512 void fold_cols_avx512(const ElimStep* steps,
                                           std::size_t nsteps, double* folded,
                                           std::size_t k, std::size_t c0,
                                           std::size_t c1) {
  for (std::size_t s_idx = 0; s_idx < nsteps; ++s_idx) {
    const ElimStep& s = steps[s_idx];
    const double* fv = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree >= 1) {
      fold_update_avx512(s.w1 / s.pivot, fv,
                         folded + static_cast<std::size_t>(s.u1) * k, c0, c1);
    }
    if (s.degree == 2) {
      fold_update_avx512(s.w2 / s.pivot, fv,
                         folded + static_cast<std::size_t>(s.u2) * k, c0, c1);
    }
  }
}

PARSDD_TARGET_AVX512 void backsub_cols_avx512(const ElimStep* steps,
                                              std::size_t nsteps,
                                              const double* folded, double* x,
                                              std::size_t k, std::size_t c0,
                                              std::size_t c1) {
  for (std::size_t s_idx = nsteps; s_idx-- > 0;) {
    const ElimStep& s = steps[s_idx];
    double* xv = x + static_cast<std::size_t>(s.v) * k;
    const double* fb = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree == 0) {
      std::size_t c = c0;
      __m512d z = _mm512_setzero_pd();
      for (; c + 8 <= c1; c += 8) _mm512_storeu_pd(xv + c, z);
      for (; c < c1; ++c) xv[c] = 0.0;
    } else if (s.degree == 1) {
      const double* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      __m512d piv = _mm512_set1_pd(s.pivot);
      std::size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        __m512d t = _mm512_div_pd(_mm512_loadu_pd(fb + c), piv);
        _mm512_storeu_pd(xv + c, _mm512_add_pd(t, _mm512_loadu_pd(xu1 + c)));
      }
      for (; c < c1; ++c) xv[c] = fb[c] / s.pivot + xu1[c];
    } else {
      const double* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      const double* xu2 = x + static_cast<std::size_t>(s.u2) * k;
      __m512d piv = _mm512_set1_pd(s.pivot);
      __m512d w1 = _mm512_set1_pd(s.w1);
      __m512d w2 = _mm512_set1_pd(s.w2);
      std::size_t c = c0;
      for (; c + 8 <= c1; c += 8) {
        __m512d t = _mm512_add_pd(
            _mm512_loadu_pd(fb + c),
            _mm512_mul_pd(w1, _mm512_loadu_pd(xu1 + c)));
        t = _mm512_add_pd(t, _mm512_mul_pd(w2, _mm512_loadu_pd(xu2 + c)));
        _mm512_storeu_pd(xv + c, _mm512_div_pd(t, piv));
      }
      for (; c < c1; ++c) {
        xv[c] = (fb[c] + s.w1 * xu1[c] + s.w2 * xu2[c]) / s.pivot;
      }
    }
  }
}

// ---- f32 twins (16 lanes) ----

PARSDD_TARGET_AVX512 void axpy_cols_avx512_f32(const float* a, const float* x,
                                               float* y, std::size_t rows,
                                               std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 16 <= k; c += 16) {
      __m512 vy = _mm512_loadu_ps(yr + c);
      vy = _mm512_add_ps(vy, _mm512_mul_ps(_mm512_loadu_ps(a + c),
                                           _mm512_loadu_ps(xr + c)));
      _mm512_storeu_ps(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] += a[c] * xr[c];
  }
}

PARSDD_TARGET_AVX512 void xpay_cols_avx512_f32(const float* x, const float* a,
                                               float* y, std::size_t rows,
                                               std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * k;
    float* yr = y + r * k;
    std::size_t c = 0;
    for (; c + 16 <= k; c += 16) {
      __m512 vy = _mm512_mul_ps(_mm512_loadu_ps(a + c),
                                _mm512_loadu_ps(yr + c));
      vy = _mm512_add_ps(_mm512_loadu_ps(xr + c), vy);
      _mm512_storeu_ps(yr + c, vy);
    }
    for (; c < k; ++c) yr[c] = xr[c] + a[c] * yr[c];
  }
}

PARSDD_TARGET_AVX512 void sub_cols_avx512_f32(const float* m, float* x,
                                              std::size_t rows,
                                              std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* xr = x + r * k;
    std::size_t c = 0;
    for (; c + 16 <= k; c += 16) {
      _mm512_storeu_ps(xr + c, _mm512_sub_ps(_mm512_loadu_ps(xr + c),
                                             _mm512_loadu_ps(m + c)));
    }
    for (; c < k; ++c) xr[c] -= m[c];
  }
}

PARSDD_TARGET_AVX512 void dot_cols_acc_avx512_f32(const float* x,
                                                  const float* y,
                                                  std::size_t rows,
                                                  std::size_t k, float* acc) {
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    __m512 vacc = _mm512_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm512_add_ps(vacc, _mm512_mul_ps(_mm512_loadu_ps(x + r * k + c),
                                               _mm512_loadu_ps(y + r * k + c)));
    }
    _mm512_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c] * y[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void dot_diff_cols_acc_avx512_f32(
    const float* z, const float* x, const float* y, std::size_t rows,
    std::size_t k, float* acc) {
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    __m512 vacc = _mm512_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      __m512 d = _mm512_sub_ps(_mm512_loadu_ps(x + r * k + c),
                               _mm512_loadu_ps(y + r * k + c));
      vacc = _mm512_add_ps(vacc,
                           _mm512_mul_ps(_mm512_loadu_ps(z + r * k + c), d));
    }
    _mm512_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) {
      a0 += z[r * k + c] * (x[r * k + c] - y[r * k + c]);
    }
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void sum_cols_acc_avx512_f32(const float* x,
                                                  std::size_t rows,
                                                  std::size_t k, float* acc) {
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    __m512 vacc = _mm512_loadu_ps(acc + c);
    for (std::size_t r = 0; r < rows; ++r) {
      vacc = _mm512_add_ps(vacc, _mm512_loadu_ps(x + r * k + c));
    }
    _mm512_storeu_ps(acc + c, vacc);
  }
  for (; c < k; ++c) {
    float a0 = acc[c];
    for (std::size_t r = 0; r < rows; ++r) a0 += x[r * k + c];
    acc[c] = a0;
  }
}

PARSDD_TARGET_AVX512 void spmm_rows_avx512_f32(const std::size_t* off,
                                               const std::uint32_t* col,
                                               const float* val,
                                               const float* x, float* y,
                                               std::size_t r0, std::size_t r1,
                                               std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* yr = y + i * k;
    std::size_t p0 = off[i], p1 = off[i + 1];
    std::size_t c = 0;
    for (; c + 16 <= k; c += 16) {
      __m512 acc0 = _mm512_setzero_ps();
      for (std::size_t p = p0; p < p1; ++p) {
        __m512 v = _mm512_set1_ps(val[p]);
        acc0 = _mm512_add_ps(
            acc0, _mm512_mul_ps(
                      v, _mm512_loadu_ps(
                             x + static_cast<std::size_t>(col[p]) * k + c)));
      }
      _mm512_storeu_ps(yr + c, acc0);
    }
    for (; c < k; ++c) {
      float acc = 0.0f;
      for (std::size_t p = p0; p < p1; ++p) {
        acc += val[p] * x[static_cast<std::size_t>(col[p]) * k + c];
      }
      yr[c] = acc;
    }
  }
}

PARSDD_TARGET_AVX512 inline void fold_update_avx512_f32(float f,
                                                        const float* fv,
                                                        float* fu,
                                                        std::size_t c0,
                                                        std::size_t c1) {
  __m512 vf = _mm512_set1_ps(f);
  std::size_t c = c0;
  for (; c + 16 <= c1; c += 16) {
    __m512 u = _mm512_loadu_ps(fu + c);
    u = _mm512_add_ps(u, _mm512_mul_ps(vf, _mm512_loadu_ps(fv + c)));
    _mm512_storeu_ps(fu + c, u);
  }
  for (; c < c1; ++c) fu[c] += f * fv[c];
}

PARSDD_TARGET_AVX512 void fold_cols_avx512_f32(const ElimStep* steps,
                                               std::size_t nsteps,
                                               float* folded, std::size_t k,
                                               std::size_t c0,
                                               std::size_t c1) {
  for (std::size_t s_idx = 0; s_idx < nsteps; ++s_idx) {
    const ElimStep& s = steps[s_idx];
    const float* fv = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree >= 1) {
      fold_update_avx512_f32(static_cast<float>(s.w1 / s.pivot), fv,
                             folded + static_cast<std::size_t>(s.u1) * k, c0,
                             c1);
    }
    if (s.degree == 2) {
      fold_update_avx512_f32(static_cast<float>(s.w2 / s.pivot), fv,
                             folded + static_cast<std::size_t>(s.u2) * k, c0,
                             c1);
    }
  }
}

PARSDD_TARGET_AVX512 void backsub_cols_avx512_f32(const ElimStep* steps,
                                                  std::size_t nsteps,
                                                  const float* folded,
                                                  float* x, std::size_t k,
                                                  std::size_t c0,
                                                  std::size_t c1) {
  // Chunks are at most 8 columns wide (kColChunk), under the 16-lane f32
  // register: delegate to the scalar chain (same arithmetic, no win here).
  backsub_cols_t<float>(steps, nsteps, folded, x, k, c0, c1);
}

}  // namespace

bool avx512_supported() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx512f") != 0;
}

const Backend& avx512_backend() {
  static const Backend be{
      /*name=*/"avx512",
      /*level=*/SimdLevel::kAvx512,
      /*axpy_f64=*/&axpy_avx512,
      /*xpay_f64=*/&xpay_avx512,
      /*scale_f64=*/&scale_avx512,
      /*sub_f64=*/&sub_avx512,
      /*sub_scalar_f64=*/&sub_scalar_avx512,
      /*dot_serial_f64=*/&dot_serial_t<double>,
      /*sum_serial_f64=*/&sum_serial_t<double>,
      /*axpy_cols_f64=*/&axpy_cols_avx512,
      /*xpay_cols_f64=*/&xpay_cols_avx512,
      /*scale_cols_f64=*/&scale_cols_avx512,
      /*copy_cols_f64=*/&copy_cols_t<double>,
      /*sub_cols_f64=*/&sub_cols_avx512,
      /*dot_cols_acc_f64=*/&dot_cols_acc_avx512,
      /*dot_diff_cols_acc_f64=*/&dot_diff_cols_acc_avx512,
      /*sum_cols_acc_f64=*/&sum_cols_acc_avx512,
      /*spmv_rows_f64=*/&spmv_rows_d,
      /*spmm_rows_f64=*/&spmm_rows_avx512,
      /*fold_cols_f64=*/&fold_cols_avx512,
      /*backsub_cols_f64=*/&backsub_cols_avx512,
      /*axpy_cols_f32=*/&axpy_cols_avx512_f32,
      /*xpay_cols_f32=*/&xpay_cols_avx512_f32,
      /*copy_cols_f32=*/&copy_cols_t<float>,
      /*sub_cols_f32=*/&sub_cols_avx512_f32,
      /*dot_cols_acc_f32=*/&dot_cols_acc_avx512_f32,
      /*dot_diff_cols_acc_f32=*/&dot_diff_cols_acc_avx512_f32,
      /*sum_cols_acc_f32=*/&sum_cols_acc_avx512_f32,
      /*spmm_rows_f32=*/&spmm_rows_avx512_f32,
      /*fold_cols_f32=*/&fold_cols_avx512_f32,
      /*backsub_cols_f32=*/&backsub_cols_avx512_f32,
  };
  return be;
}

}  // namespace parsdd::kernels::detail

#else  // non-x86: the scalar backend is the only implementation.

namespace parsdd::kernels::detail {
bool avx512_supported() { return false; }
const Backend& avx512_backend() { return scalar_backend(); }
}  // namespace parsdd::kernels::detail

#endif
