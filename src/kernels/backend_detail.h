// Internal to src/kernels/: the portable reference implementations (templates
// over float/double) and the per-ISA backend factories.  The scalar templates
// define the IEEE operation sequence every vector backend must reproduce
// bit-for-bit per column; the AVX files call back into them for serial-chain
// kernels and remainder handling.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.h"

namespace parsdd::kernels::detail {

// ---- elementwise over [0, n) ----

template <typename T>
void axpy_t(T a, const T* x, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

template <typename T>
void xpay_t(const T* x, T a, T* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] + a * y[i];
}

template <typename T>
void scale_t(T a, T* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

template <typename T>
void sub_t(const T* x, const T* y, T* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

template <typename T>
void sub_scalar_t(T m, T* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] -= m;
}

// ---- serial-chain reductions (the canonical per-block fold; every backend
//      uses exactly this chain, starting from +0.0 like the historic
//      parallel_reduce identity) ----

template <typename T>
T dot_serial_t(const T* x, const T* y, std::size_t n) {
  T acc = T(0);
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
T sum_serial_t(const T* x, std::size_t n) {
  T acc = T(0);
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

// ---- column kernels over a rows x k row-major range ----

template <typename T>
void axpy_cols_t(const T* a, const T* x, T* y, std::size_t rows,
                 std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const T* xr = x + r * k;
    T* yr = y + r * k;
    for (std::size_t c = 0; c < k; ++c) yr[c] += a[c] * xr[c];
  }
}

template <typename T>
void xpay_cols_t(const T* x, const T* a, T* y, std::size_t rows,
                 std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    const T* xr = x + r * k;
    T* yr = y + r * k;
    for (std::size_t c = 0; c < k; ++c) yr[c] = xr[c] + a[c] * yr[c];
  }
}

template <typename T>
void scale_cols_t(const T* a, T* x, std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    T* xr = x + r * k;
    for (std::size_t c = 0; c < k; ++c) xr[c] *= a[c];
  }
}

template <typename T>
void copy_cols_t(const T* src, T* dst, std::size_t rows, std::size_t k) {
  for (std::size_t i = 0, n = rows * k; i < n; ++i) dst[i] = src[i];
}

template <typename T>
void sub_cols_t(const T* m, T* x, std::size_t rows, std::size_t k) {
  for (std::size_t r = 0; r < rows; ++r) {
    T* xr = x + r * k;
    for (std::size_t c = 0; c < k; ++c) xr[c] -= m[c];
  }
}

template <typename T>
void dot_cols_acc_t(const T* x, const T* y, std::size_t rows, std::size_t k,
                    T* acc) {
  for (std::size_t r = 0; r < rows; ++r) {
    const T* xr = x + r * k;
    const T* yr = y + r * k;
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c] * yr[c];
  }
}

template <typename T>
void dot_diff_cols_acc_t(const T* z, const T* x, const T* y, std::size_t rows,
                         std::size_t k, T* acc) {
  for (std::size_t r = 0; r < rows; ++r) {
    const T* zr = z + r * k;
    const T* xr = x + r * k;
    const T* yr = y + r * k;
    for (std::size_t c = 0; c < k; ++c) acc[c] += zr[c] * (xr[c] - yr[c]);
  }
}

template <typename T>
void sum_cols_acc_t(const T* x, std::size_t rows, std::size_t k, T* acc) {
  for (std::size_t r = 0; r < rows; ++r) {
    const T* xr = x + r * k;
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c];
  }
}

// ---- CSR ----

// Per-row serial accumulation chain: identical in every backend.
inline void spmv_rows_d(const std::size_t* off, const std::uint32_t* col,
                        const double* val, const double* x, double* y,
                        std::size_t r0, std::size_t r1) {
  for (std::size_t i = r0; i < r1; ++i) {
    double acc = 0.0;
    for (std::size_t p = off[i]; p < off[i + 1]; ++p) {
      acc += val[p] * x[col[p]];
    }
    y[i] = acc;
  }
}

template <typename T>
void spmm_rows_t(const std::size_t* off, const std::uint32_t* col,
                 const T* val, const T* x, T* y, std::size_t r0,
                 std::size_t r1, std::size_t k) {
  for (std::size_t i = r0; i < r1; ++i) {
    T* yr = y + i * k;
    for (std::size_t c = 0; c < k; ++c) yr[c] = T(0);
    for (std::size_t p = off[i]; p < off[i + 1]; ++p) {
      T v = val[p];
      const T* xr = x + static_cast<std::size_t>(col[p]) * k;
      for (std::size_t c = 0; c < k; ++c) yr[c] += v * xr[c];
    }
  }
}

// ---- elimination fold / back-substitution over columns [c0, c1) ----

template <typename T>
void fold_cols_t(const ElimStep* steps, std::size_t nsteps, T* folded,
                 std::size_t k, std::size_t c0, std::size_t c1) {
  for (std::size_t s_idx = 0; s_idx < nsteps; ++s_idx) {
    const ElimStep& s = steps[s_idx];
    const T* fv = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree >= 1) {
      T f = static_cast<T>(s.w1 / s.pivot);
      T* fu = folded + static_cast<std::size_t>(s.u1) * k;
      for (std::size_t c = c0; c < c1; ++c) fu[c] += f * fv[c];
    }
    if (s.degree == 2) {
      T f = static_cast<T>(s.w2 / s.pivot);
      T* fu = folded + static_cast<std::size_t>(s.u2) * k;
      for (std::size_t c = c0; c < c1; ++c) fu[c] += f * fv[c];
    }
  }
}

template <typename T>
void backsub_cols_t(const ElimStep* steps, std::size_t nsteps, const T* folded,
                    T* x, std::size_t k, std::size_t c0, std::size_t c1) {
  for (std::size_t s_idx = nsteps; s_idx-- > 0;) {
    const ElimStep& s = steps[s_idx];
    T* xv = x + static_cast<std::size_t>(s.v) * k;
    const T* fb = folded + static_cast<std::size_t>(s.v) * k;
    if (s.degree == 0) {
      for (std::size_t c = c0; c < c1; ++c) xv[c] = T(0);
    } else if (s.degree == 1) {
      T piv = static_cast<T>(s.pivot);
      const T* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      for (std::size_t c = c0; c < c1; ++c) xv[c] = fb[c] / piv + xu1[c];
    } else {
      T piv = static_cast<T>(s.pivot);
      T w1 = static_cast<T>(s.w1);
      T w2 = static_cast<T>(s.w2);
      const T* xu1 = x + static_cast<std::size_t>(s.u1) * k;
      const T* xu2 = x + static_cast<std::size_t>(s.u2) * k;
      for (std::size_t c = c0; c < c1; ++c) {
        xv[c] = (fb[c] + w1 * xu1[c] + w2 * xu2[c]) / piv;
      }
    }
  }
}

// ---- backend factories (backend_{scalar,avx2,avx512}.cpp) ----

const Backend& scalar_backend();
/// Only callable when the matching *_supported() is true; on non-x86 builds
/// these return the scalar backend and *_supported() is false.
const Backend& avx2_backend();
const Backend& avx512_backend();
bool avx2_supported();
bool avx512_supported();

}  // namespace parsdd::kernels::detail
