// Compressed sparse-row (CSR) adjacency for weighted undirected multigraphs.
//
// Section 2 of the paper notes that parallel ball growing "could achieve this
// runtime bound with a variety of graph (matrix) representations, e.g., using
// the compressed sparse-row (CSR) format"; this is that format.  Each
// undirected edge is stored twice (one arc per direction).  The optional
// `eid` channel carries the index of the originating undirected edge, which
// BFS-tree extraction and the AKPW pipeline use to map tree arcs back to
// input edges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

class Graph {
 public:
  Graph() = default;

  /// Builds CSR adjacency from an undirected edge list over vertices
  /// [0, n).  Parallel edges are kept; self-loops must have been removed.
  /// Work O(n + m); parallel counting + scatter.
  static Graph from_edges(std::uint32_t n, const EdgeList& edges);

  /// As from_edges, but for multigraph edges carrying class/id annotations;
  /// weights default to 1 (the decomposition treats edges as unit-length).
  static Graph from_classed_edges(std::uint32_t n,
                                  const std::vector<ClassedEdge>& edges);

  std::uint32_t num_vertices() const { return n_; }
  /// Number of undirected edges.
  std::size_t num_edges() const { return adj_.size() / 2; }

  std::size_t degree(std::uint32_t v) const { return off_[v + 1] - off_[v]; }

  std::span<const std::uint32_t> neighbors(std::uint32_t v) const {
    return {adj_.data() + off_[v], off_[v + 1] - off_[v]};
  }
  std::span<const double> weights(std::uint32_t v) const {
    return {wgt_.data() + off_[v], off_[v + 1] - off_[v]};
  }
  /// Originating undirected-edge ids for v's arcs; empty if not tracked.
  std::span<const std::uint32_t> edge_ids(std::uint32_t v) const {
    if (eid_.empty()) return {};
    return {eid_.data() + off_[v], off_[v + 1] - off_[v]};
  }

  bool has_edge_ids() const { return !eid_.empty(); }

  /// Weighted degree (sum of incident edge weights).
  double weighted_degree(std::uint32_t v) const;

  /// Reconstructs the undirected edge list (u < v); weights preserved.
  EdgeList to_edges() const;

 private:
  std::uint32_t n_ = 0;
  std::vector<std::size_t> off_;     // size n+1
  std::vector<std::uint32_t> adj_;   // size 2m
  std::vector<double> wgt_;          // size 2m
  std::vector<std::uint32_t> eid_;   // size 2m or empty
};

}  // namespace parsdd
