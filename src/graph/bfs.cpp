#include "graph/bfs.h"

#include <atomic>

#include "parallel/primitives.h"

namespace parsdd {

namespace {

constexpr std::uint64_t kNoClaim = ~std::uint64_t{0};

// Atomic min via CAS (fetch_min is C++26); relaxed is enough because each
// level joins before claims are read back.
void claim_min(std::uint64_t& slot, std::uint64_t key) {
  std::atomic_ref<std::uint64_t> ref(slot);
  std::uint64_t cur = ref.load(std::memory_order_relaxed);
  while (key < cur &&
         !ref.compare_exchange_weak(cur, key, std::memory_order_relaxed)) {
  }
}

// Expands `frontier` once.  Deterministic by construction: every unvisited
// neighbor v is claimed with key (frontier_index << 32 | adjacency_slot) and
// the MINIMUM key wins, which is exactly the claim a sequential scan in
// frontier order would make first.  Parents, parent edges, and the order of
// the returned next frontier are therefore identical to the sequential
// execution regardless of pool size or scheduling.  `cand` is the per-vertex
// claim array, all-kNoClaim on entry and restored to all-kNoClaim on exit.
std::vector<std::uint32_t> expand(const Graph& g,
                                  const std::vector<std::uint32_t>& frontier,
                                  std::uint32_t next_dist, BfsResult& r,
                                  std::vector<std::uint64_t>& cand) {
  std::size_t f = frontier.size();
  static GranularitySite site("bfs.expand", /*init_ns_per_unit=*/4.0);
  std::uint64_t degree_hint =
      g.num_vertices() ? 2 * g.num_edges() / g.num_vertices() + 1 : 1;
  if (!site.should_parallelize(f * degree_hint)) {
    // Inline fast path: sequential first-touch claims coincide with the
    // min-key winners above, and `cand` is never written, so the claim
    // invariant holds trivially.
    std::vector<std::uint32_t> next;
    for (std::size_t i = 0; i < f; ++i) {
      std::uint32_t u = frontier[i];
      auto nbrs = g.neighbors(u);
      auto eids = g.edge_ids(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        std::uint32_t v = nbrs[k];
        if (r.dist[v] == kUnreached) {
          r.dist[v] = next_dist;
          r.parent[v] = u;
          if (!eids.empty()) r.parent_eid[v] = eids[k];
          next.push_back(v);
        }
      }
    }
    return next;
  }

  std::size_t nb = num_blocks_for(f, 64);
  std::size_t block = (f + nb - 1) / nb;

  // Phase 1: claim.  dist is read-only in this phase, so a plain load is
  // race-free; contended vertices race only on cand via claim_min.
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = b * block, e = std::min(f, s + block);
    for (std::size_t i = s; i < e; ++i) {
      std::uint32_t u = frontier[i];
      auto nbrs = g.neighbors(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        std::uint32_t v = nbrs[k];
        if (r.dist[v] != kUnreached) continue;
        claim_min(cand[v], (static_cast<std::uint64_t>(i) << 32) | k);
      }
    }
  });

  // Phase 2: finalize winners and collect the next frontier.  Each claimed
  // vertex has exactly one winning (i, k), so exactly one iteration
  // finalizes it; losers observe either the winning key (≠ theirs) or the
  // winner's kNoClaim reset, both of which make them skip.  Appending
  // winners at their winning frontier index keeps the concatenated next
  // frontier in sequential order.
  std::vector<std::vector<std::uint32_t>> local(nb);
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = b * block, e = std::min(f, s + block);
    auto& out = local[b];
    for (std::size_t i = s; i < e; ++i) {
      std::uint32_t u = frontier[i];
      auto nbrs = g.neighbors(u);
      auto eids = g.edge_ids(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        std::uint32_t v = nbrs[k];
        std::atomic_ref<std::uint64_t> cv(cand[v]);
        if (cv.load(std::memory_order_relaxed) !=
            ((static_cast<std::uint64_t>(i) << 32) | k)) {
          continue;
        }
        std::atomic_ref<std::uint32_t> dv(r.dist[v]);
        dv.store(next_dist, std::memory_order_relaxed);
        r.parent[v] = u;
        if (!eids.empty()) r.parent_eid[v] = eids[k];
        cv.store(kNoClaim, std::memory_order_relaxed);
        out.push_back(v);
      }
    }
  });

  std::size_t total = 0;
  for (auto& l : local) total += l.size();
  std::vector<std::uint32_t> next;
  next.reserve(total);
  for (auto& l : local) next.insert(next.end(), l.begin(), l.end());
  return next;
}

}  // namespace

BfsResult bfs(const Graph& g, std::uint32_t source) {
  std::uint32_t src[1] = {source};
  return bfs_multi(g, std::span<const std::uint32_t>(src, 1));
}

BfsResult bfs_multi(const Graph& g, std::span<const std::uint32_t> sources,
                    std::uint32_t max_rounds) {
  std::uint32_t n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreached);
  r.parent.assign(n, kUnreached);
  r.parent_eid.assign(n, kUnreached);
  std::vector<std::uint64_t> cand(n, kNoClaim);
  std::vector<std::uint32_t> frontier;
  frontier.reserve(sources.size());
  for (std::uint32_t s : sources) {
    if (r.dist[s] == kUnreached) {
      r.dist[s] = 0;
      r.parent[s] = s;
      frontier.push_back(s);
    }
  }
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++r.rounds;
    if (max_rounds != 0 && r.rounds > max_rounds) {
      --r.rounds;
      break;
    }
    frontier = expand(g, frontier, ++d, r, cand);
  }
  return r;
}

}  // namespace parsdd
