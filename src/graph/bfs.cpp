#include "graph/bfs.h"

#include <atomic>

#include "parallel/primitives.h"

namespace parsdd {

namespace {

// Expands `frontier` once: claims unvisited neighbors via CAS on dist and
// returns them.  Claims are first-wins, so parent identity may depend on
// scheduling, but distances are always exact.
std::vector<std::uint32_t> expand(const Graph& g,
                                  const std::vector<std::uint32_t>& frontier,
                                  std::uint32_t next_dist, BfsResult& r) {
  std::size_t f = frontier.size();
  std::size_t nb = num_blocks_for(f, 64);
  std::vector<std::vector<std::uint32_t>> local(nb);
  auto process_block = [&](std::size_t b) {
    std::size_t block = (f + nb - 1) / nb;
    std::size_t s = b * block, e = std::min(f, s + block);
    auto& out = local[b];
    for (std::size_t i = s; i < e; ++i) {
      std::uint32_t u = frontier[i];
      auto nbrs = g.neighbors(u);
      auto eids = g.edge_ids(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        std::uint32_t v = nbrs[k];
        std::uint32_t expected = kUnreached;
        std::atomic_ref<std::uint32_t> dv(r.dist[v]);
        if (dv.load(std::memory_order_relaxed) == kUnreached &&
            dv.compare_exchange_strong(expected, next_dist,
                                       std::memory_order_relaxed)) {
          r.parent[v] = u;
          if (!eids.empty()) r.parent_eid[v] = eids[k];
          out.push_back(v);
        }
      }
    }
  };
  if (f < 512 || ThreadPool::in_parallel()) {
    nb = 1;
    local.resize(1);
    std::size_t saved = f;
    (void)saved;
    // Run as a single block.
    {
      auto& out = local[0];
      for (std::size_t i = 0; i < f; ++i) {
        std::uint32_t u = frontier[i];
        auto nbrs = g.neighbors(u);
        auto eids = g.edge_ids(u);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          std::uint32_t v = nbrs[k];
          if (r.dist[v] == kUnreached) {
            r.dist[v] = next_dist;
            r.parent[v] = u;
            if (!eids.empty()) r.parent_eid[v] = eids[k];
            out.push_back(v);
          }
        }
      }
    }
  } else {
    ThreadPool::instance().run_blocks(nb, process_block);
  }
  std::size_t total = 0;
  for (auto& l : local) total += l.size();
  std::vector<std::uint32_t> next;
  next.reserve(total);
  for (auto& l : local) next.insert(next.end(), l.begin(), l.end());
  return next;
}

}  // namespace

BfsResult bfs(const Graph& g, std::uint32_t source) {
  std::uint32_t src[1] = {source};
  return bfs_multi(g, std::span<const std::uint32_t>(src, 1));
}

BfsResult bfs_multi(const Graph& g, std::span<const std::uint32_t> sources,
                    std::uint32_t max_rounds) {
  std::uint32_t n = g.num_vertices();
  BfsResult r;
  r.dist.assign(n, kUnreached);
  r.parent.assign(n, kUnreached);
  r.parent_eid.assign(n, kUnreached);
  std::vector<std::uint32_t> frontier;
  frontier.reserve(sources.size());
  for (std::uint32_t s : sources) {
    if (r.dist[s] == kUnreached) {
      r.dist[s] = 0;
      r.parent[s] = s;
      frontier.push_back(s);
    }
  }
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++r.rounds;
    if (max_rounds != 0 && r.rounds > max_rounds) {
      --r.rounds;
      break;
    }
    frontier = expand(g, frontier, ++d, r);
  }
  return r;
}

}  // namespace parsdd
