#include "graph/edge_list.h"

#include <algorithm>

#include "graph/union_find.h"
#include "parallel/primitives.h"
#include "parallel/rng.h"
#include "util/serialize.h"

namespace parsdd {

std::uint32_t max_vertex_plus_one(const EdgeList& edges) {
  return parallel_reduce(
      0, edges.size(), 0u,
      [&](std::size_t i) { return std::max(edges[i].u, edges[i].v) + 1; },
      [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
}

EdgeList remove_self_loops(const EdgeList& edges) {
  return pack(edges, [&](std::size_t i) { return edges[i].u != edges[i].v; });
}

EdgeList combine_parallel_edges(const EdgeList& edges) {
  EdgeList out = remove_self_loops(edges);
  parallel_for(0, out.size(), [&](std::size_t i) {
    if (out[i].u > out[i].v) std::swap(out[i].u, out[i].v);
  });
  parallel_sort(out, [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  // Sequential merge of equal (u, v) runs; runs are typically short.
  std::size_t w = 0;
  for (std::size_t i = 0; i < out.size();) {
    Edge merged = out[i];
    std::size_t j = i + 1;
    while (j < out.size() && out[j].u == merged.u && out[j].v == merged.v) {
      merged.w += out[j].w;
      ++j;
    }
    out[w++] = merged;
    i = j;
  }
  out.resize(w);
  return out;
}

double total_weight(const EdgeList& edges) {
  return parallel_reduce(
      0, edges.size(), 0.0, [&](std::size_t i) { return edges[i].w; },
      [](double a, double b) { return a + b; });
}

bool is_connected(std::uint32_t n, const EdgeList& edges) {
  if (n <= 1) return true;
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  return uf.num_sets() == 1;
}

std::size_t ensure_connected(std::uint32_t n, EdgeList& edges,
                             std::uint64_t seed) {
  if (n <= 1) return 0;
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  if (uf.num_sets() == 1) return 0;
  // Chain component representatives in a shuffled order so the patch edges
  // do not all attach to vertex 0.
  std::vector<std::uint32_t> reps;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (uf.find(v) == v) reps.push_back(v);
  }
  Rng rng(seed);
  for (std::size_t i = reps.size() - 1; i > 0; --i) {
    std::swap(reps[i], reps[rng.below(i, i + 1)]);
  }
  std::size_t added = 0;
  for (std::size_t i = 1; i < reps.size(); ++i) {
    edges.push_back(Edge{reps[i - 1], reps[i], 1.0});
    ++added;
  }
  return added;
}

void pack_edges(const EdgeList& edges, std::vector<std::uint32_t>& endpoints,
                std::vector<double>& weights) {
  endpoints.resize(2 * edges.size());
  weights.resize(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    endpoints[2 * i] = edges[i].u;
    endpoints[2 * i + 1] = edges[i].v;
    weights[i] = edges[i].w;
  }
}

void save_edges(serialize::Writer& w, const EdgeList& edges) {
  std::vector<std::uint32_t> endpoints;
  std::vector<double> weights;
  pack_edges(edges, endpoints, weights);
  w.pod_vec(endpoints);
  w.pod_vec(weights);
}

EdgeList load_edges(serialize::Reader& r) {
  std::vector<std::uint32_t> endpoints = r.pod_vec<std::uint32_t>();
  std::vector<double> weights = r.pod_vec<double>();
  EdgeList edges;
  if (!r.status().ok()) return edges;
  if (endpoints.size() != 2 * weights.size()) {
    r.fail("edge endpoint/weight arrays disagree on length");
    return edges;
  }
  edges.resize(weights.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i] = Edge{endpoints[2 * i], endpoints[2 * i + 1], weights[i]};
  }
  return edges;
}

}  // namespace parsdd
