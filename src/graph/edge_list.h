// Edge-list representation and utilities.
//
// The decomposition and AKPW layers (Sections 4-5) manipulate multigraphs as
// explicit edge lists annotated with a weight class and the identity of the
// original edge (contraction keeps parallel edges, per Algorithm 5.1 step 3,
// so a CSR-only representation would not suffice).
#pragma once

#include <cstdint>
#include <vector>

namespace parsdd {

namespace serialize {
class Writer;
class Reader;
}  // namespace serialize

/// An undirected weighted edge.  Self-loops (u == v) are disallowed in
/// normalized lists; parallel edges are allowed unless combined explicitly.
struct Edge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double w = 1.0;
};

using EdgeList = std::vector<Edge>;

/// An edge of a working multigraph in the AKPW pipeline: current endpoint
/// labels in the contracted graph, the weight-class index `cls`, and the
/// index `id` of the originating edge in the input graph's edge list.
struct ClassedEdge {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::uint32_t cls = 0;
  std::uint32_t id = 0;
};

/// 1 + the largest vertex id referenced, or 0 for an empty list.
std::uint32_t max_vertex_plus_one(const EdgeList& edges);

/// Removes self-loops (u == v), preserving order.
EdgeList remove_self_loops(const EdgeList& edges);

/// Canonicalizes (u < v), sorts, and merges parallel edges by summing
/// weights.  For Laplacians, parallel edges are equivalent to one edge of
/// the summed weight.
EdgeList combine_parallel_edges(const EdgeList& edges);

/// Sum of all edge weights.
double total_weight(const EdgeList& edges);

/// True if the graph (V = [0, n), E = edges) is connected.
bool is_connected(std::uint32_t n, const EdgeList& edges);

/// Adds minimum-weight unit edges joining connected components so the result
/// is connected (deterministic given `seed`); returns the number added.
std::size_t ensure_connected(std::uint32_t n, EdgeList& edges,
                             std::uint64_t seed);

/// Splits edges into padding-free parallel arrays ({u0,v0,u1,v1,...} and
/// {w0,w1,...}) — the one packing shared by the snapshot encoding and the
/// service's setup fingerprints, so the two can never silently diverge.
void pack_edges(const EdgeList& edges, std::vector<std::uint32_t>& endpoints,
                std::vector<double>& weights);

/// Snapshot encoding (util/serialize.h): endpoints and weights as parallel
/// POD spans, so Edge's struct padding never reaches the byte stream.
void save_edges(serialize::Writer& w, const EdgeList& edges);
EdgeList load_edges(serialize::Reader& r);

}  // namespace parsdd
