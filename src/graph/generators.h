// Synthetic graph families used by tests, examples, and the bench harness.
//
// The paper evaluates nothing empirically, so workloads are chosen to span
// the regimes its theorems care about: bounded-degree meshes (2D/3D grids —
// the classical SDD sources from scientific computing and vision), expanders
// and random graphs (ER), skewed-degree graphs (RMAT / preferential
// attachment), and worst-case-ish paths/stars.  Weighted variants control the
// spread Δ (ratio of heaviest to lightest edge), the quantity that drives
// AKPW's O(log Δ) iteration count and that the well-spacing surgery of
// Lemma 5.7 is designed to neutralize.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"

namespace parsdd {

struct GeneratedGraph {
  std::uint32_t n = 0;
  EdgeList edges;
};

/// nx-by-ny grid mesh with unit weights.
GeneratedGraph grid2d(std::uint32_t nx, std::uint32_t ny);

/// nx-by-ny-by-nz grid mesh with unit weights.
GeneratedGraph grid3d(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz);

/// 2D torus (grid with wraparound edges).
GeneratedGraph torus2d(std::uint32_t nx, std::uint32_t ny);

/// Path graph on n vertices (pathological diameter).
GeneratedGraph path(std::uint32_t n);

/// Star graph: center 0 joined to n-1 leaves.
GeneratedGraph star(std::uint32_t n);

/// Complete graph on n vertices (dense extreme; keep n small).
GeneratedGraph complete(std::uint32_t n);

/// Barbell: two K_clique cliques joined by a path of `bridge` edges — a
/// classical bottleneck graph (tiny conductance, so unpreconditioned
/// iterations stall on the bridge).
GeneratedGraph barbell(std::uint32_t clique, std::uint32_t bridge);

/// Approximately d-regular random graph via the configuration model: d
/// stubs per vertex are paired uniformly, then self-loops are dropped and
/// parallel pairs merged, and the result is patched to be connected.
/// Deterministic given `seed`.
GeneratedGraph random_regular(std::uint32_t n, std::uint32_t d,
                              std::uint64_t seed);

/// Erdős–Rényi G(n, m): m distinct uniform edges, patched to be connected.
GeneratedGraph erdos_renyi(std::uint32_t n, std::size_t m, std::uint64_t seed);

/// RMAT/Kronecker-style skewed-degree graph with 2^scale vertices and ~m
/// edges (duplicates merged), patched to be connected.
GeneratedGraph rmat(std::uint32_t scale, std::size_t m, std::uint64_t seed,
                    double a = 0.57, double b = 0.19, double c = 0.19);

/// Barabási–Albert preferential attachment: each new vertex attaches `deg`
/// edges to earlier vertices with probability proportional to degree.
GeneratedGraph preferential_attachment(std::uint32_t n, std::uint32_t deg,
                                       std::uint64_t seed);

/// Multiplies edge weights by values log-uniform in [1, spread]; `spread`
/// controls Δ.  Weights stay >= the original minimum.
void randomize_weights_log_uniform(EdgeList& edges, double spread,
                                   std::uint64_t seed);

/// Assigns high-contrast weights: each edge is weight 1 or `contrast` with
/// probability 1/2 (classical hard case for unpreconditioned iterations).
void randomize_weights_two_level(EdgeList& edges, double contrast,
                                 std::uint64_t seed);

}  // namespace parsdd
