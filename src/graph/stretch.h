// Stretch computation with respect to trees and subgraphs.
//
// Section 2: "For an edge e = {u,v}, the stretch of e on G' is
// str_{G'}(e) = d_{G'}(u,v)/w(e)"; the total stretch sums over E(G).
// Tree stretch uses LCA distances (exact, O((n+m) log n)); subgraph stretch
// runs a truncated Dijkstra per distinct endpoint (exact, intended for the
// moderate sizes used by tests and the E4 bench).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "graph/tree.h"

namespace parsdd {

struct StretchStats {
  std::vector<double> per_edge;
  double total = 0.0;
  double max = 0.0;
  double average() const {
    return per_edge.empty() ? 0.0 : total / static_cast<double>(per_edge.size());
  }
};

/// Stretch of every edge of `edges` with respect to spanning tree `tree`.
StretchStats stretch_wrt_tree(const EdgeList& edges, const RootedTree& tree);

/// Stretch of every edge of `edges` with respect to the subgraph
/// (V=[0,n), sub_edges).  Exact shortest paths (Dijkstra); the subgraph must
/// connect the endpoints of every query edge.
StretchStats stretch_wrt_subgraph(std::uint32_t n, const EdgeList& sub_edges,
                                  const EdgeList& edges);

}  // namespace parsdd
