// Disjoint-set forest with path halving and union by rank.
//
// Used by Kruskal's MST, connectivity checks, and the well-spacing surgery
// (Lemma 5.8 builds component vertex sets from an MST prefix).
#pragma once

#include <cstdint>
#include <vector>

namespace parsdd {

class UnionFind {
 public:
  explicit UnionFind(std::uint32_t n);

  /// Representative of x's set.
  std::uint32_t find(std::uint32_t x);

  /// Merges the sets of a and b; returns true iff they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b);

  /// Number of disjoint sets remaining.
  std::uint32_t num_sets() const { return num_sets_; }

  std::uint32_t size() const { return static_cast<std::uint32_t>(parent_.size()); }

  /// Relabels all representatives to a dense range [0, num_sets) and returns
  /// the label of every element.
  std::vector<std::uint32_t> dense_labels();

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::uint32_t num_sets_;
};

}  // namespace parsdd
