// Rooted spanning trees: depths, LCA (binary lifting), path distances.
//
// Used to evaluate the stretch guarantees of Theorems 5.1/5.9: the stretch of
// edge {u,v} with respect to tree T is d_T(u,v)/w(u,v), and d_T is computed
// as wdepth(u) + wdepth(v) - 2*wdepth(lca(u,v)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"

namespace parsdd {

class RootedTree {
 public:
  /// Builds a rooted tree over vertices [0, n) from exactly n-1 tree edges
  /// (must form a spanning tree); roots it at `root` via BFS.
  static RootedTree from_edges(std::uint32_t n, const EdgeList& tree_edges,
                               std::uint32_t root = 0);

  std::uint32_t num_vertices() const { return n_; }
  std::uint32_t root() const { return root_; }

  std::uint32_t parent(std::uint32_t v) const { return parent_[v]; }
  /// Hop depth below the root.
  std::uint32_t depth(std::uint32_t v) const { return depth_[v]; }
  /// Weighted distance from the root.
  double weighted_depth(std::uint32_t v) const { return wdepth_[v]; }

  /// Lowest common ancestor in O(log n).
  std::uint32_t lca(std::uint32_t u, std::uint32_t v) const;

  /// Weighted tree-path distance between u and v.
  double distance(std::uint32_t u, std::uint32_t v) const;

  /// Hop-count tree-path distance between u and v.
  std::uint32_t hop_distance(std::uint32_t u, std::uint32_t v) const;

  /// Snapshot encoding (util/serialize.h): parents, depths, and the binary
  /// lifting table verbatim, so a loaded tree answers lca/distance queries
  /// bitwise-identically without re-running the rooting BFS.
  void save(serialize::Writer& w) const;
  static RootedTree load(serialize::Reader& r);

 private:
  std::uint32_t n_ = 0;
  std::uint32_t root_ = 0;
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> depth_;
  std::vector<double> wdepth_;
  // up_[k][v]: 2^k-th ancestor of v (root maps to itself).
  std::vector<std::vector<std::uint32_t>> up_;
};

}  // namespace parsdd
