// Graph file I/O: plain weighted edge lists and Matrix Market patterns.
//
// Formats:
//  * Plain text ("el"): one `u v w` triple per line, 0-based vertices;
//    lines starting with '#' are comments.  A first non-comment line of
//    exactly two integers is the `n m` header; without a header, n is
//    inferred and every edge line must carry an explicit weight (otherwise
//    the first edge would parse as a header).
//  * MatrixMarket coordinate ("mtx"): `%%MatrixMarket matrix coordinate
//    real symmetric` with 1-based indices; off-diagonal entries are read as
//    edges with weight |value| (the Laplacian/SDD sign convention).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.h"
#include "graph/generators.h"

namespace parsdd {

/// Writes `u v w` lines with an `n m` header.
void write_edge_list(std::ostream& out, std::uint32_t n,
                     const EdgeList& edges);

/// Parses the plain edge-list format; throws std::runtime_error on
/// malformed input.
GeneratedGraph read_edge_list(std::istream& in);

/// Parses a MatrixMarket symmetric coordinate file into a graph (diagonal
/// entries ignored, off-diagonals' magnitudes become edge weights).
GeneratedGraph read_matrix_market(std::istream& in);

/// Convenience wrappers resolving by file extension (.mtx vs anything else).
GeneratedGraph load_graph(const std::string& path);
void save_graph(const std::string& path, std::uint32_t n,
                const EdgeList& edges);

}  // namespace parsdd
