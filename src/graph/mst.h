// Minimum spanning tree / forest.
//
// Lemma 5.8 bootstraps each special bucket of SparseAKPW from "the MST on the
// entire graph": the vertex set V^(i) is obtained by contracting the MST
// restricted to buckets < i-τ.  Two implementations are provided: Kruskal
// (parallel sort + union-find; the work-efficient default) and Borůvka
// (parallel hook rounds; O(log n) rounds, matching the PRAM flavor of the
// paper).  Both return indices into the input edge list.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

/// Kruskal MST/forest; returns indices of chosen edges (n-1 per component
/// tree).  Ties are broken by edge index, so the result is deterministic.
std::vector<std::uint32_t> mst_kruskal(std::uint32_t n, const EdgeList& edges);

/// Borůvka MST/forest via parallel min-edge hooking; deterministic
/// (ties broken by edge index).
std::vector<std::uint32_t> mst_boruvka(std::uint32_t n, const EdgeList& edges);

/// Total weight of the edges selected by an MST routine.
double forest_weight(const EdgeList& edges,
                     const std::vector<std::uint32_t>& chosen);

}  // namespace parsdd
