#include "graph/mst.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>

#include "graph/union_find.h"
#include "parallel/primitives.h"

namespace parsdd {

std::vector<std::uint32_t> mst_kruskal(std::uint32_t n,
                                       const EdgeList& edges) {
  std::vector<std::uint32_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0u);
  parallel_sort(order, [&](std::uint32_t a, std::uint32_t b) {
    if (edges[a].w != edges[b].w) return edges[a].w < edges[b].w;
    return a < b;
  });
  UnionFind uf(n);
  std::vector<std::uint32_t> chosen;
  chosen.reserve(n > 0 ? n - 1 : 0);
  for (std::uint32_t idx : order) {
    if (uf.unite(edges[idx].u, edges[idx].v)) chosen.push_back(idx);
  }
  return chosen;
}

namespace {

// Encodes (weight, edge index) into an order-preserving uint64 key for
// atomic min hooking.  Weights are reduced to their rank in the sorted
// order, so doubles never enter the atomic.
std::vector<std::uint64_t> rank_keys(const EdgeList& edges) {
  std::vector<std::uint32_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0u);
  parallel_sort(order, [&](std::uint32_t a, std::uint32_t b) {
    if (edges[a].w != edges[b].w) return edges[a].w < edges[b].w;
    return a < b;
  });
  std::vector<std::uint64_t> key(edges.size());
  parallel_for(0, order.size(), [&](std::size_t r) {
    key[order[r]] =
        (static_cast<std::uint64_t>(r) << 32) | order[r];
  });
  return key;
}

}  // namespace

std::vector<std::uint32_t> mst_boruvka(std::uint32_t n,
                                       const EdgeList& edges) {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> key = rank_keys(edges);
  UnionFind uf(n);
  std::vector<std::uint32_t> live(edges.size());
  std::iota(live.begin(), live.end(), 0u);
  std::vector<std::uint32_t> chosen;
  std::vector<std::atomic<std::uint64_t>> best(n);

  while (!live.empty()) {
    // Drop merged edges and resolve representatives sequentially
    // (UnionFind::find mutates its parent array via path halving, so it
    // must not run concurrently).
    std::vector<std::uint32_t> next_live, comp_u, comp_v;
    next_live.reserve(live.size());
    for (std::uint32_t idx : live) {
      std::uint32_t cu = uf.find(edges[idx].u);
      std::uint32_t cv = uf.find(edges[idx].v);
      if (cu == cv) continue;
      next_live.push_back(idx);
      comp_u.push_back(cu);
      comp_v.push_back(cv);
      // Touch only live components; cheaper than clearing all n slots.
      best[cu].store(kInf, std::memory_order_relaxed);
      best[cv].store(kInf, std::memory_order_relaxed);
    }
    live.swap(next_live);
    if (live.empty()) break;
    parallel_for(0, live.size(), [&](std::size_t i) {
      std::uint32_t idx = live[i];
      std::uint32_t cu = comp_u[i];
      std::uint32_t cv = comp_v[i];
      std::uint64_t k = key[idx];
      std::uint64_t cur = best[cu].load(std::memory_order_relaxed);
      while (k < cur && !best[cu].compare_exchange_weak(
                            cur, k, std::memory_order_relaxed)) {
      }
      cur = best[cv].load(std::memory_order_relaxed);
      while (k < cur && !best[cv].compare_exchange_weak(
                            cur, k, std::memory_order_relaxed)) {
      }
    });
    // Hook: each component's minimum edge joins the forest (sequential
    // union step; the parallel work is the min-reductions above).
    for (std::uint32_t idx : live) {
      std::uint32_t cu = uf.find(edges[idx].u);
      std::uint32_t cv = uf.find(edges[idx].v);
      if (cu == cv) continue;
      std::uint64_t k = key[idx];
      if (best[cu].load(std::memory_order_relaxed) == k ||
          best[cv].load(std::memory_order_relaxed) == k) {
        if (uf.unite(cu, cv)) chosen.push_back(idx);
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

double forest_weight(const EdgeList& edges,
                     const std::vector<std::uint32_t>& chosen) {
  double s = 0.0;
  for (std::uint32_t idx : chosen) s += edges[idx].w;
  return s;
}

}  // namespace parsdd
