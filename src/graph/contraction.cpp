#include "graph/contraction.h"

#include "parallel/primitives.h"

namespace parsdd {

std::vector<ClassedEdge> contract_edges(
    const std::vector<ClassedEdge>& edges,
    const std::vector<std::uint32_t>& label) {
  std::vector<ClassedEdge> relabeled(edges.size());
  parallel_for(0, edges.size(), [&](std::size_t i) {
    relabeled[i] = ClassedEdge{label[edges[i].u], label[edges[i].v],
                               edges[i].cls, edges[i].id};
  });
  return pack(relabeled,
              [&](std::size_t i) { return relabeled[i].u != relabeled[i].v; });
}

EdgeList contract_edges(const EdgeList& edges,
                        const std::vector<std::uint32_t>& label,
                        bool merge_parallel) {
  EdgeList relabeled(edges.size());
  parallel_for(0, edges.size(), [&](std::size_t i) {
    relabeled[i] = Edge{label[edges[i].u], label[edges[i].v], edges[i].w};
  });
  EdgeList out = pack(
      relabeled, [&](std::size_t i) { return relabeled[i].u != relabeled[i].v; });
  if (merge_parallel) out = combine_parallel_edges(out);
  return out;
}

}  // namespace parsdd
