#include "graph/tree.h"

#include <atomic>
#include <cassert>
#include <stdexcept>

#include "graph/bfs.h"
#include "parallel/primitives.h"
#include "util/serialize.h"

namespace parsdd {

RootedTree RootedTree::from_edges(std::uint32_t n, const EdgeList& tree_edges,
                                  std::uint32_t root) {
  if (n > 0 && tree_edges.size() != static_cast<std::size_t>(n) - 1) {
    throw std::invalid_argument("RootedTree: expected exactly n-1 edges");
  }
  Graph g = Graph::from_edges(n, tree_edges);
  BfsResult b = bfs(g, root);
  RootedTree t;
  t.n_ = n;
  t.root_ = root;
  t.parent_ = b.parent;
  t.depth_ = b.dist;
  bool spanned = parallel_reduce(
      0, n, true, [&](std::size_t v) { return b.dist[v] != kUnreached; },
      [](bool x, bool y) { return x && y; });
  if (!spanned) {
    throw std::invalid_argument("RootedTree: edges do not span [0, n)");
  }
  // Weighted depths: accumulate down BFS levels (children after parents in
  // BFS distance order, so a per-level sweep is enough).  Group vertices by
  // depth with a parallel counting sort — order within a level is
  // scheduling-dependent but irrelevant, since each vertex of level d only
  // writes its own wdepth and reads its parent's from level d-1.
  t.wdepth_.assign(n, 0.0);
  if (n > 0) {
    std::uint32_t max_depth = parallel_reduce(
        0, n, 0u, [&](std::size_t v) { return t.depth_[v]; },
        [](std::uint32_t a, std::uint32_t b2) { return std::max(a, b2); });
    std::vector<std::uint32_t> count(max_depth + 1, 0);
    parallel_for(0, n, [&](std::size_t v) {
      std::atomic_ref<std::uint32_t>(count[t.depth_[v]])
          .fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<std::uint32_t> start = count;
    scan_exclusive(start);
    std::vector<std::uint32_t> cursor = start;
    std::vector<std::uint32_t> order(n);
    parallel_for(0, n, [&](std::size_t v) {
      std::uint32_t p = std::atomic_ref<std::uint32_t>(cursor[t.depth_[v]])
                            .fetch_add(1, std::memory_order_relaxed);
      order[p] = static_cast<std::uint32_t>(v);
    });
    for (std::uint32_t d = 1; d <= max_depth; ++d) {
      parallel_for(start[d], start[d] + count[d], [&](std::size_t i) {
        std::uint32_t v = order[i];
        const Edge& e = tree_edges[b.parent_eid[v]];
        t.wdepth_[v] = t.wdepth_[t.parent_[v]] + e.w;
      });
    }
  }
  // Binary lifting table.
  std::uint32_t levels = 1;
  while ((1u << levels) < n) ++levels;
  t.up_.assign(levels + 1, std::vector<std::uint32_t>(n));
  parallel_for(0, n, [&](std::size_t v) { t.up_[0][v] = t.parent_[v]; });
  for (std::uint32_t k = 1; k <= levels; ++k) {
    parallel_for(0, n, [&](std::size_t v) {
      t.up_[k][v] = t.up_[k - 1][t.up_[k - 1][v]];
    });
  }
  return t;
}

std::uint32_t RootedTree::lca(std::uint32_t u, std::uint32_t v) const {
  if (depth_[u] < depth_[v]) std::swap(u, v);
  std::uint32_t diff = depth_[u] - depth_[v];
  for (std::uint32_t k = 0; diff != 0; ++k, diff >>= 1) {
    if (diff & 1) u = up_[k][u];
  }
  if (u == v) return u;
  for (std::uint32_t k = static_cast<std::uint32_t>(up_.size()); k-- > 0;) {
    if (up_[k][u] != up_[k][v]) {
      u = up_[k][u];
      v = up_[k][v];
    }
  }
  return up_[0][u];
}

double RootedTree::distance(std::uint32_t u, std::uint32_t v) const {
  std::uint32_t a = lca(u, v);
  return wdepth_[u] + wdepth_[v] - 2.0 * wdepth_[a];
}

std::uint32_t RootedTree::hop_distance(std::uint32_t u, std::uint32_t v) const {
  std::uint32_t a = lca(u, v);
  return depth_[u] + depth_[v] - 2 * depth_[a];
}

void RootedTree::save(serialize::Writer& w) const {
  w.u32(n_);
  w.u32(root_);
  w.pod_vec(parent_);
  w.pod_vec(depth_);
  w.pod_vec(wdepth_);
  w.varint(up_.size());
  for (const std::vector<std::uint32_t>& level : up_) w.pod_vec(level);
}

RootedTree RootedTree::load(serialize::Reader& r) {
  RootedTree t;
  t.n_ = r.u32();
  t.root_ = r.u32();
  t.parent_ = r.pod_vec<std::uint32_t>();
  t.depth_ = r.pod_vec<std::uint32_t>();
  t.wdepth_ = r.pod_vec<double>();
  std::uint64_t levels = r.varint();
  for (std::uint64_t k = 0; k < levels && r.status().ok(); ++k) {
    t.up_.push_back(r.pod_vec<std::uint32_t>());
  }
  if (r.status().ok() &&
      (t.parent_.size() != t.n_ || t.depth_.size() != t.n_ ||
       t.wdepth_.size() != t.n_ || (t.n_ > 0 && t.root_ >= t.n_))) {
    r.fail("RootedTree arrays disagree with vertex count");
    return t;
  }
  // lca() chases parent_/up_ entries as indexes into n_-sized arrays; a
  // short level or out-of-range vertex id must fail here, not there.
  bool ok = true;
  for (std::size_t v = 0; ok && v < t.parent_.size(); ++v) {
    ok = t.parent_[v] < t.n_;
  }
  for (const std::vector<std::uint32_t>& level : t.up_) {
    ok = ok && level.size() == t.n_;
    for (std::size_t v = 0; ok && v < level.size(); ++v) {
      ok = level[v] < t.n_;
    }
  }
  if (r.status().ok() && !ok) {
    r.fail("RootedTree ancestor tables index out of bounds");
  }
  return t;
}

}  // namespace parsdd
