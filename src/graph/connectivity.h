// Connected components.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

struct Components {
  /// Dense component label per vertex, in [0, count).
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};

/// Connected components of (V=[0,n), E=edges) via union-find.
Components connected_components(std::uint32_t n, const EdgeList& edges);

/// Connected components of a multigraph given as classed edges.
Components connected_components(std::uint32_t n,
                                const std::vector<ClassedEdge>& edges);

}  // namespace parsdd
