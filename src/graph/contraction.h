// Minor contraction for the AKPW pipeline.
//
// Algorithm 5.1 step 3: "Define graph (V^(j+1), E^(j+1)) by contracting all
// edges within the components and removing all self-loops (but maintaining
// parallel edges)."  Contraction is a parallel relabel + pack over the
// explicit edge list; class and original-id annotations ride along.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

/// Relabels endpoints by `label` (vertex -> component) and drops self-loops.
/// Parallel edges are preserved.  Work O(m).
std::vector<ClassedEdge> contract_edges(const std::vector<ClassedEdge>& edges,
                                        const std::vector<std::uint32_t>& label);

/// Same for plain weighted edges; optionally merges parallel edges by
/// weight-sum (Laplacian-equivalent).
EdgeList contract_edges(const EdgeList& edges,
                        const std::vector<std::uint32_t>& label,
                        bool merge_parallel);

}  // namespace parsdd
