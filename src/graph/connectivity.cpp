#include "graph/connectivity.h"

#include "graph/union_find.h"

namespace parsdd {

Components connected_components(std::uint32_t n, const EdgeList& edges) {
  UnionFind uf(n);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  Components c;
  c.count = uf.num_sets();
  c.label = uf.dense_labels();
  return c;
}

Components connected_components(std::uint32_t n,
                                const std::vector<ClassedEdge>& edges) {
  UnionFind uf(n);
  for (const ClassedEdge& e : edges) uf.unite(e.u, e.v);
  Components c;
  c.count = uf.num_sets();
  c.label = uf.dense_labels();
  return c;
}

}  // namespace parsdd
