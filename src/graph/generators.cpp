#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

GeneratedGraph grid2d(std::uint32_t nx, std::uint32_t ny) {
  assert(nx >= 1 && ny >= 1);
  GeneratedGraph g;
  g.n = nx * ny;
  auto id = [&](std::uint32_t x, std::uint32_t y) { return y * nx + x; };
  g.edges.reserve(static_cast<std::size_t>(2) * nx * ny);
  for (std::uint32_t y = 0; y < ny; ++y) {
    for (std::uint32_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) g.edges.push_back(Edge{id(x, y), id(x + 1, y), 1.0});
      if (y + 1 < ny) g.edges.push_back(Edge{id(x, y), id(x, y + 1), 1.0});
    }
  }
  return g;
}

GeneratedGraph grid3d(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz) {
  assert(nx >= 1 && ny >= 1 && nz >= 1);
  GeneratedGraph g;
  g.n = nx * ny * nz;
  auto id = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (z * ny + y) * nx + x;
  };
  for (std::uint32_t z = 0; z < nz; ++z) {
    for (std::uint32_t y = 0; y < ny; ++y) {
      for (std::uint32_t x = 0; x < nx; ++x) {
        if (x + 1 < nx)
          g.edges.push_back(Edge{id(x, y, z), id(x + 1, y, z), 1.0});
        if (y + 1 < ny)
          g.edges.push_back(Edge{id(x, y, z), id(x, y + 1, z), 1.0});
        if (z + 1 < nz)
          g.edges.push_back(Edge{id(x, y, z), id(x, y, z + 1), 1.0});
      }
    }
  }
  return g;
}

GeneratedGraph torus2d(std::uint32_t nx, std::uint32_t ny) {
  assert(nx >= 3 && ny >= 3);
  GeneratedGraph g;
  g.n = nx * ny;
  auto id = [&](std::uint32_t x, std::uint32_t y) { return y * nx + x; };
  for (std::uint32_t y = 0; y < ny; ++y) {
    for (std::uint32_t x = 0; x < nx; ++x) {
      g.edges.push_back(Edge{id(x, y), id((x + 1) % nx, y), 1.0});
      g.edges.push_back(Edge{id(x, y), id(x, (y + 1) % ny), 1.0});
    }
  }
  return g;
}

GeneratedGraph path(std::uint32_t n) {
  GeneratedGraph g;
  g.n = n;
  for (std::uint32_t i = 0; i + 1 < n; ++i)
    g.edges.push_back(Edge{i, i + 1, 1.0});
  return g;
}

GeneratedGraph star(std::uint32_t n) {
  GeneratedGraph g;
  g.n = n;
  for (std::uint32_t i = 1; i < n; ++i) g.edges.push_back(Edge{0, i, 1.0});
  return g;
}

GeneratedGraph complete(std::uint32_t n) {
  GeneratedGraph g;
  g.n = n;
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t v = u + 1; v < n; ++v)
      g.edges.push_back(Edge{u, v, 1.0});
  return g;
}

GeneratedGraph barbell(std::uint32_t clique, std::uint32_t bridge) {
  GeneratedGraph g;
  g.n = 2 * clique + (bridge > 0 ? bridge - 1 : 0);
  // Clique A on [0, clique), clique B on [clique, 2*clique), bridge path
  // from vertex 0 to vertex `clique` through fresh path vertices.
  for (std::uint32_t side = 0; side < 2; ++side) {
    std::uint32_t base = side * clique;
    for (std::uint32_t u = 0; u < clique; ++u)
      for (std::uint32_t v = u + 1; v < clique; ++v)
        g.edges.push_back(Edge{base + u, base + v, 1.0});
  }
  std::uint32_t prev = 0;
  for (std::uint32_t i = 0; i + 1 < bridge; ++i) {
    std::uint32_t mid = 2 * clique + i;
    g.edges.push_back(Edge{prev, mid, 1.0});
    prev = mid;
  }
  if (bridge > 0) g.edges.push_back(Edge{prev, clique, 1.0});
  return g;
}

GeneratedGraph random_regular(std::uint32_t n, std::uint32_t d,
                              std::uint64_t seed) {
  assert(n >= 2 && d >= 1);
  GeneratedGraph g;
  g.n = n;
  // Configuration model: a Fisher-Yates shuffle of the n*d stubs, paired
  // consecutively.  Self-loops vanish and parallel pairs merge to unit
  // weight below, so the result is only approximately d-regular — which is
  // all the test harness asks of the family.
  std::vector<std::uint32_t> stubs(static_cast<std::size_t>(n) * d);
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    stubs[i] = static_cast<std::uint32_t>(i / d);
  }
  Rng rng(seed);
  for (std::size_t i = stubs.size() - 1; i > 0; --i) {
    std::swap(stubs[i], stubs[rng.below(i, i + 1)]);
  }
  EdgeList raw;
  raw.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] != stubs[i + 1]) {
      raw.push_back(Edge{stubs[i], stubs[i + 1], 1.0});
    }
  }
  g.edges = combine_parallel_edges(raw);
  for (Edge& e : g.edges) e.w = 1.0;
  ensure_connected(g.n, g.edges, seed + 1);
  return g;
}

GeneratedGraph erdos_renyi(std::uint32_t n, std::size_t m,
                           std::uint64_t seed) {
  assert(n >= 2);
  GeneratedGraph g;
  g.n = n;
  Rng rng(seed);
  EdgeList raw(m);
  parallel_for(0, m, [&](std::size_t i) {
    std::uint32_t u = static_cast<std::uint32_t>(rng.below(2 * i, n));
    std::uint32_t v = static_cast<std::uint32_t>(rng.below(2 * i + 1, n - 1));
    if (v >= u) ++v;  // uniform over v != u
    raw[i] = Edge{u, v, 1.0};
  });
  g.edges = combine_parallel_edges(raw);
  for (Edge& e : g.edges) e.w = 1.0;  // merged duplicates stay unit weight
  ensure_connected(g.n, g.edges, seed + 1);
  return g;
}

GeneratedGraph rmat(std::uint32_t scale, std::size_t m, std::uint64_t seed,
                    double a, double b, double c) {
  GeneratedGraph g;
  g.n = 1u << scale;
  Rng rng(seed);
  EdgeList raw(m);
  parallel_for(0, m, [&](std::size_t i) {
    std::uint32_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng.uniform(i * scale + bit);
      if (r < a) {
        // quadrant (0,0): nothing to set
      } else if (r < a + b) {
        v |= 1u << bit;
      } else if (r < a + b + c) {
        u |= 1u << bit;
      } else {
        u |= 1u << bit;
        v |= 1u << bit;
      }
    }
    if (u == v) v = (v + 1) & (g.n - 1);
    raw[i] = Edge{u, v, 1.0};
  });
  g.edges = combine_parallel_edges(raw);
  for (Edge& e : g.edges) e.w = 1.0;
  ensure_connected(g.n, g.edges, seed + 1);
  return g;
}

GeneratedGraph preferential_attachment(std::uint32_t n, std::uint32_t deg,
                                       std::uint64_t seed) {
  assert(n > deg && deg >= 1);
  GeneratedGraph g;
  g.n = n;
  Rng rng(seed);
  // Classic "repeated vertex list" trick: targets drawn uniformly from the
  // endpoint multiset give degree-proportional attachment (sequential; the
  // process is inherently ordered).
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(2) * n * deg);
  std::uint64_t draw = 0;
  for (std::uint32_t v = 1; v < n; ++v) {
    std::uint32_t attach = std::min(deg, v);
    for (std::uint32_t k = 0; k < attach; ++k) {
      std::uint32_t t;
      if (endpoints.empty()) {
        t = 0;
      } else {
        t = endpoints[rng.below(draw++, endpoints.size())];
      }
      if (t == v) t = v - 1;
      g.edges.push_back(Edge{v, t, 1.0});
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  g.edges = combine_parallel_edges(g.edges);
  for (Edge& e : g.edges) e.w = 1.0;
  ensure_connected(g.n, g.edges, seed + 1);
  return g;
}

void randomize_weights_log_uniform(EdgeList& edges, double spread,
                                   std::uint64_t seed) {
  assert(spread >= 1.0);
  Rng rng(seed);
  double lg = std::log(spread);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    edges[i].w *= std::exp(rng.uniform(i) * lg);
  });
}

void randomize_weights_two_level(EdgeList& edges, double contrast,
                                 std::uint64_t seed) {
  assert(contrast >= 1.0);
  Rng rng(seed);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    edges[i].w = (rng.u64(i) & 1) ? contrast : 1.0;
  });
}

}  // namespace parsdd
