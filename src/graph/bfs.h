// Level-synchronous parallel breadth-first search.
//
// This is the "elementary form of parallel breadth-first search" the paper
// relies on for ball growing (Section 2): nodes are visited level by level;
// on shared memory each level is one parallel frontier expansion, so the
// number of rounds is the depth surrogate (O(r log n) PRAM depth for radius
// r).  `rounds` is reported so benches can validate the polylog-radius claims
// of Theorem 4.1 / Algorithm 5.1.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace parsdd {

inline constexpr std::uint32_t kUnreached =
    std::numeric_limits<std::uint32_t>::max();

struct BfsResult {
  /// Hop distance from the nearest source; kUnreached if not reached.
  std::vector<std::uint32_t> dist;
  /// BFS-tree parent; sources point to themselves, unreached to kUnreached.
  std::vector<std::uint32_t> parent;
  /// Undirected-edge id of the parent arc (if the graph tracks edge ids);
  /// kUnreached for sources/unreached vertices.
  std::vector<std::uint32_t> parent_eid;
  /// Number of frontier-expansion rounds executed (== eccentricity+1 of the
  /// source set within its reachable region).
  std::uint32_t rounds = 0;
};

/// BFS from a single source.
BfsResult bfs(const Graph& g, std::uint32_t source);

/// BFS from several sources at distance 0 simultaneously.  If `max_rounds`
/// is nonzero the search stops after that many levels (vertices further away
/// remain kUnreached).
BfsResult bfs_multi(const Graph& g, std::span<const std::uint32_t> sources,
                    std::uint32_t max_rounds = 0);

}  // namespace parsdd
