#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <tuple>

#include "parallel/primitives.h"

namespace parsdd {

namespace {

struct CsrParts {
  std::vector<std::size_t> off;
  std::vector<std::uint32_t> adj;
  std::vector<double> wgt;
  std::vector<std::uint32_t> eid;
};

// Shared CSR construction: counts arc degrees, scans, scatters both arc
// directions.  `get(i)` returns (u, v, w, eid) for edge i.
template <typename GetEdge>
CsrParts build_csr(std::uint32_t n, std::size_t m, bool track_eids,
                   GetEdge&& get) {
  std::vector<std::atomic<std::size_t>> counts(n);
  parallel_for(0, n, [&](std::size_t i) {
    counts[i].store(0, std::memory_order_relaxed);
  });
  parallel_for(0, m, [&](std::size_t i) {
    auto [u, v, w, id] = get(i);
    (void)w;
    (void)id;
    counts[u].fetch_add(1, std::memory_order_relaxed);
    counts[v].fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::size_t> scanned(n);
  parallel_for(0, n, [&](std::size_t i) {
    scanned[i] = counts[i].load(std::memory_order_relaxed);
  });
  std::size_t total = scan_exclusive(scanned);
  assert(total == 2 * m);
  std::vector<std::size_t> off(n + 1);
  parallel_for(0, n, [&](std::size_t i) { off[i] = scanned[i]; });
  off[n] = total;

  std::vector<std::atomic<std::size_t>> cursor(n);
  parallel_for(0, n, [&](std::size_t i) {
    cursor[i].store(off[i], std::memory_order_relaxed);
  });
  CsrParts parts;
  parts.off = std::move(off);
  parts.adj.resize(total);
  parts.wgt.resize(total);
  if (track_eids) parts.eid.resize(total);
  parallel_for(0, m, [&](std::size_t i) {
    auto [u, v, w, id] = get(i);
    std::size_t pu = cursor[u].fetch_add(1, std::memory_order_relaxed);
    parts.adj[pu] = v;
    parts.wgt[pu] = w;
    if (track_eids) parts.eid[pu] = id;
    std::size_t pv = cursor[v].fetch_add(1, std::memory_order_relaxed);
    parts.adj[pv] = u;
    parts.wgt[pv] = w;
    if (track_eids) parts.eid[pv] = id;
  });

  // The atomic-cursor scatter lands arcs in scheduling-dependent order, and
  // adjacency order is observable (BFS claim keys, neighbor iteration in
  // ball growing), so canonicalize each vertex's slice: sorting by eid —
  // unique within a slice since each edge contributes one arc per distinct
  // endpoint — reproduces exactly the order a sequential scatter in input
  // order would have produced, at any pool size.
  parallel_for(0, n, [&](std::size_t v) {
    std::size_t s = parts.off[v], e = parts.off[v + 1];
    if (e - s < 2) return;
    std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> slice;
    slice.reserve(e - s);
    for (std::size_t i = s; i < e; ++i) {
      slice.emplace_back(track_eids ? parts.eid[i] : parts.adj[i],
                         parts.adj[i], parts.wgt[i]);
    }
    std::sort(slice.begin(), slice.end());
    for (std::size_t i = s; i < e; ++i) {
      if (track_eids) parts.eid[i] = std::get<0>(slice[i - s]);
      parts.adj[i] = std::get<1>(slice[i - s]);
      parts.wgt[i] = std::get<2>(slice[i - s]);
    }
  });
  return parts;
}

}  // namespace

Graph Graph::from_edges(std::uint32_t n, const EdgeList& edges) {
  CsrParts p =
      build_csr(n, edges.size(), /*track_eids=*/true, [&](std::size_t i) {
        const Edge& e = edges[i];
        assert(e.u != e.v && e.u < n && e.v < n);
        return std::tuple{e.u, e.v, e.w, static_cast<std::uint32_t>(i)};
      });
  Graph g;
  g.n_ = n;
  g.off_ = std::move(p.off);
  g.adj_ = std::move(p.adj);
  g.wgt_ = std::move(p.wgt);
  g.eid_ = std::move(p.eid);
  return g;
}

Graph Graph::from_classed_edges(std::uint32_t n,
                                const std::vector<ClassedEdge>& edges) {
  CsrParts p =
      build_csr(n, edges.size(), /*track_eids=*/true, [&](std::size_t i) {
        const ClassedEdge& e = edges[i];
        assert(e.u != e.v && e.u < n && e.v < n);
        return std::tuple{e.u, e.v, 1.0, static_cast<std::uint32_t>(i)};
      });
  Graph g;
  g.n_ = n;
  g.off_ = std::move(p.off);
  g.adj_ = std::move(p.adj);
  g.wgt_ = std::move(p.wgt);
  g.eid_ = std::move(p.eid);
  return g;
}

double Graph::weighted_degree(std::uint32_t v) const {
  double s = 0.0;
  for (std::size_t i = off_[v]; i < off_[v + 1]; ++i) s += wgt_[i];
  return s;
}

EdgeList Graph::to_edges() const {
  EdgeList out;
  out.reserve(num_edges());
  for (std::uint32_t u = 0; u < n_; ++u) {
    for (std::size_t i = off_[u]; i < off_[u + 1]; ++i) {
      if (u < adj_[i]) out.push_back(Edge{u, adj_[i], wgt_[i]});
    }
  }
  return out;
}

}  // namespace parsdd
