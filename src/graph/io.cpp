#include "graph/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace parsdd {

void write_edge_list(std::ostream& out, std::uint32_t n,
                     const EdgeList& edges) {
  out << n << ' ' << edges.size() << '\n';
  for (const Edge& e : edges) {
    out << e.u << ' ' << e.v << ' ' << e.w << '\n';
  }
}

GeneratedGraph read_edge_list(std::istream& in) {
  GeneratedGraph g;
  std::string line;
  bool header_seen = false;
  std::size_t declared_m = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    if (!header_seen) {
      // Try `n m` header: exactly two integers on the line.
      long long a, b;
      double c;
      if ((ls >> a >> b) && !(ls >> c)) {
        g.n = static_cast<std::uint32_t>(a);
        declared_m = static_cast<std::size_t>(b);
        header_seen = true;
        continue;
      }
      ls.clear();
      ls.seekg(0);
      header_seen = true;  // no header; fall through to edge parsing
    }
    std::uint32_t u, v;
    double w = 1.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("read_edge_list: malformed line: " + line);
    }
    ls >> w;  // optional weight
    if (u == v) throw std::runtime_error("read_edge_list: self-loop");
    if (!(w > 0)) throw std::runtime_error("read_edge_list: bad weight");
    g.edges.push_back(Edge{u, v, w});
  }
  if (g.n == 0) g.n = max_vertex_plus_one(g.edges);
  if (declared_m != 0 && declared_m != g.edges.size()) {
    throw std::runtime_error("read_edge_list: edge count mismatch");
  }
  for (const Edge& e : g.edges) {
    if (e.u >= g.n || e.v >= g.n) {
      throw std::runtime_error("read_edge_list: vertex out of range");
    }
  }
  return g;
}

GeneratedGraph read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("read_matrix_market: missing banner");
  }
  if (line.find("coordinate") == std::string::npos) {
    throw std::runtime_error("read_matrix_market: need coordinate format");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hs(line);
  std::uint64_t rows, cols, nnz;
  if (!(hs >> rows >> cols >> nnz) || rows != cols) {
    throw std::runtime_error("read_matrix_market: bad size header");
  }
  GeneratedGraph g;
  g.n = static_cast<std::uint32_t>(rows);
  for (std::uint64_t k = 0; k < nnz && std::getline(in, line);) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint32_t i, j;
    double v = 1.0;
    if (!(ls >> i >> j)) {
      throw std::runtime_error("read_matrix_market: malformed entry");
    }
    ls >> v;
    ++k;
    if (i == j) continue;  // diagonal: implied by the Laplacian convention
    if (i < 1 || j < 1 || i > rows || j > rows) {
      throw std::runtime_error("read_matrix_market: index out of range");
    }
    g.edges.push_back(Edge{i - 1, j - 1, std::fabs(v)});
  }
  g.edges = combine_parallel_edges(g.edges);
  return g;
}

GeneratedGraph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_graph: cannot open " + path);
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".mtx") {
    return read_matrix_market(in);
  }
  return read_edge_list(in);
}

void save_graph(const std::string& path, std::uint32_t n,
                const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_graph: cannot open " + path);
  write_edge_list(out, n, edges);
}

}  // namespace parsdd
