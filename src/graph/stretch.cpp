#include "graph/stretch.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/graph.h"
#include "parallel/primitives.h"

namespace parsdd {

StretchStats stretch_wrt_tree(const EdgeList& edges, const RootedTree& tree) {
  StretchStats s;
  s.per_edge.resize(edges.size());
  parallel_for(0, edges.size(), [&](std::size_t i) {
    s.per_edge[i] = tree.distance(edges[i].u, edges[i].v) / edges[i].w;
  });
  s.total = parallel_reduce(
      0, edges.size(), 0.0, [&](std::size_t i) { return s.per_edge[i]; },
      [](double a, double b) { return a + b; });
  s.max = parallel_reduce(
      0, edges.size(), 0.0, [&](std::size_t i) { return s.per_edge[i]; },
      [](double a, double b) { return std::max(a, b); });
  return s;
}

StretchStats stretch_wrt_subgraph(std::uint32_t n, const EdgeList& sub_edges,
                                  const EdgeList& edges) {
  Graph sub = Graph::from_edges(n, sub_edges);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Group query edges by source endpoint so one Dijkstra serves all queries
  // from that vertex; stop once every target of the source is settled.
  std::vector<std::vector<std::uint32_t>> queries(n);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    queries[edges[i].u].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> sources;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!queries[v].empty()) sources.push_back(v);
  }

  StretchStats s;
  s.per_edge.assign(edges.size(), 0.0);
  std::vector<double> dist_storage;  // reused across sources (sequential)
  dist_storage.assign(n, kInf);
  std::vector<std::uint32_t> touched;

  using Item = std::pair<double, std::uint32_t>;
  for (std::uint32_t src : sources) {
    auto& qs = queries[src];
    std::size_t remaining = qs.size();
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    dist_storage[src] = 0.0;
    touched.push_back(src);
    pq.push({0.0, src});
    // Mark targets of this source.
    std::vector<std::uint32_t> targets;
    targets.reserve(qs.size());
    for (std::uint32_t qi : qs) targets.push_back(edges[qi].v);
    std::sort(targets.begin(), targets.end());
    auto is_tgt = [&](std::uint32_t v) {
      return std::binary_search(targets.begin(), targets.end(), v);
    };
    std::vector<bool> settled_tgt(targets.size(), false);
    auto settle = [&](std::uint32_t v) {
      auto range = std::equal_range(targets.begin(), targets.end(), v);
      for (auto it = range.first; it != range.second; ++it) {
        std::size_t k = static_cast<std::size_t>(it - targets.begin());
        if (!settled_tgt[k]) {
          settled_tgt[k] = true;
          --remaining;
        }
      }
    };
    // Lazy-deletion Dijkstra; stale heap entries are skipped on pop.
    while (!pq.empty() && remaining > 0) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist_storage[u]) continue;  // stale entry
      if (is_tgt(u)) settle(u);
      auto nbrs = sub.neighbors(u);
      auto ws = sub.weights(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        std::uint32_t v = nbrs[k];
        double nd = d + ws[k];
        if (nd < dist_storage[v]) {
          if (dist_storage[v] == kInf) touched.push_back(v);
          dist_storage[v] = nd;
          pq.push({nd, v});
        }
      }
    }
    if (remaining > 0) {
      throw std::runtime_error(
          "stretch_wrt_subgraph: subgraph does not connect an edge's endpoints");
    }
    for (std::uint32_t qi : qs) {
      s.per_edge[qi] = dist_storage[edges[qi].v] / edges[qi].w;
    }
    for (std::uint32_t v : touched) dist_storage[v] = kInf;
    touched.clear();
  }

  for (double v : s.per_edge) {
    s.total += v;
    s.max = std::max(s.max, v);
  }
  return s;
}

}  // namespace parsdd
