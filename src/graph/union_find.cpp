#include "graph/union_find.h"

#include <numeric>

namespace parsdd {

UnionFind::UnionFind(std::uint32_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  --num_sets_;
  return true;
}

std::vector<std::uint32_t> UnionFind::dense_labels() {
  std::uint32_t n = size();
  std::vector<std::uint32_t> label(n);
  std::uint32_t next = 0;
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> rep_label(n, kUnset);
  for (std::uint32_t v = 0; v < n; ++v) {
    std::uint32_t r = find(v);
    if (rep_label[r] == kUnset) rep_label[r] = next++;
    label[v] = rep_label[r];
  }
  return label;
}

}  // namespace parsdd
