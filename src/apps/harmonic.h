// Harmonic extension / Dirichlet problems.
//
// The introduction motivates SDD solvers with "problems in vision and
// graphics": interpolating values from boundary constraints by minimizing
// the Laplacian quadratic energy Σ w_e (x_u - x_v)² subject to fixed values
// on a boundary set.  The interior block L_II is SDD (strictly dominant at
// vertices adjacent to the boundary), so the reduced system goes straight
// through SddSolver::for_sdd — this is the classical Poisson/colorization/
// semi-supervised-labeling pipeline.
//
// The multi-channel form is the serving shape: one L_II setup answers all
// channels (RGB planes, per-label indicator functions) through a single
// solve_batch.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "solver/sdd_solver.h"

namespace parsdd {

/// Returns the full vector x with x[boundary[i]] = boundary_values[i] and
/// all other entries harmonic (energy-minimizing).  Interior components not
/// connected to any boundary vertex get 0.  InvalidArgument when the value
/// list mismatches the boundary or a boundary vertex is out of range.
StatusOr<Vec> harmonic_extension(std::uint32_t n, const EdgeList& edges,
                                 const std::vector<std::uint32_t>& boundary,
                                 const std::vector<double>& boundary_values,
                                 const SddSolverOptions& solver_opts = {});

/// Multi-channel harmonic extension: channel c fixes boundary vertex i to
/// boundary_channels[c][i].  The interior system L_II is assembled and its
/// solver set up ONCE; all channels are solved in one batch.  Returns one
/// full-length vector per channel; InvalidArgument on ragged channels or
/// out-of-range boundary vertices.
StatusOr<std::vector<Vec>> harmonic_extension_multi(
    std::uint32_t n, const EdgeList& edges,
    const std::vector<std::uint32_t>& boundary,
    const std::vector<std::vector<double>>& boundary_channels,
    const SddSolverOptions& solver_opts = {});

}  // namespace parsdd
