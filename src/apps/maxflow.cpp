#include "apps/maxflow.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace parsdd {

StatusOr<MaxflowResult> approx_max_flow(std::uint32_t n,
                                        const EdgeList& capacities,
                                        std::uint32_t s, std::uint32_t t,
                                        const MaxflowOptions& opts) {
  if (s == t) return InvalidArgumentError("approx_max_flow: s == t");
  if (s >= n || t >= n) {
    return InvalidArgumentError("approx_max_flow: terminal out of range");
  }
  MaxflowResult result;
  result.flow.assign(capacities.size(), 0.0);
  const std::size_t m = capacities.size();
  const double eps = opts.epsilon;

  // Multiplicative weights over edges; each round routes a unit electrical
  // s-t flow under congestion-penalizing resistances and averages.
  std::vector<double> omega(m, 1.0);
  Vec avg_flow(m, 0.0);
  std::uint32_t rounds = 0;
  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    double omega_sum = 0.0;
    for (double w : omega) omega_sum += w;
    EdgeList conduct = capacities;
    for (std::size_t e = 0; e < m; ++e) {
      double r = (omega[e] + eps * omega_sum / static_cast<double>(m)) /
                 (capacities[e].w * capacities[e].w);
      conduct[e].w = 1.0 / r;
    }
    SddSolver solver = SddSolver::for_laplacian(n, conduct, opts.solver);
    Vec b(n, 0.0);
    b[s] = 1.0;
    b[t] = -1.0;
    // The solver matches `conduct` by construction, so a non-OK result
    // here would be a bug.
    Vec x = solver.solve(b).value();
    ++result.laplacian_solves;

    double width = 0.0;
    Vec f(m);
    for (std::size_t e = 0; e < m; ++e) {
      f[e] = conduct[e].w * (x[capacities[e].u] - x[capacities[e].v]);
      width = std::max(width, std::fabs(f[e]) / capacities[e].w);
    }
    if (!(width > 0.0)) break;
    for (std::size_t e = 0; e < m; ++e) {
      double cong = std::fabs(f[e]) / capacities[e].w;
      omega[e] *= (1.0 + eps * cong / width);
      avg_flow[e] += f[e];
    }
    ++rounds;
  }
  result.iterations = rounds;
  if (rounds == 0) return result;

  // Scale the averaged unit flow to feasibility.
  double max_cong = 0.0;
  for (std::size_t e = 0; e < m; ++e) {
    avg_flow[e] /= static_cast<double>(rounds);
    max_cong = std::max(max_cong, std::fabs(avg_flow[e]) / capacities[e].w);
  }
  if (max_cong > 0.0) {
    double scale = 1.0 / max_cong;
    for (std::size_t e = 0; e < m; ++e) result.flow[e] = avg_flow[e] * scale;
    result.flow_value = scale;  // the unit demand scaled to feasibility
  }
  return result;
}

namespace {

struct Arc {
  std::uint32_t to;
  std::uint32_t rev;
  double cap;
};

}  // namespace

double exact_max_flow(std::uint32_t n, const EdgeList& capacities,
                      std::uint32_t s, std::uint32_t t) {
  if (s == t) throw std::invalid_argument("exact_max_flow: s == t");
  std::vector<std::vector<Arc>> g(n);
  for (const Edge& e : capacities) {
    // Undirected edge: both directions start at capacity c; pushing along
    // one direction frees the other (standard undirected reduction).
    std::uint32_t iu = static_cast<std::uint32_t>(g[e.u].size());
    std::uint32_t iv = static_cast<std::uint32_t>(g[e.v].size());
    g[e.u].push_back(Arc{e.v, iv, e.w});
    g[e.v].push_back(Arc{e.u, iu, e.w});
  }
  double flow = 0.0;
  for (;;) {
    // BFS for a shortest augmenting path.
    std::vector<std::int64_t> prev_arc(n, -1);
    std::vector<std::uint32_t> prev_node(n, 0);
    std::vector<std::uint8_t> seen(n, 0);
    std::queue<std::uint32_t> q;
    q.push(s);
    seen[s] = 1;
    while (!q.empty() && !seen[t]) {
      std::uint32_t u = q.front();
      q.pop();
      for (std::size_t k = 0; k < g[u].size(); ++k) {
        const Arc& a = g[u][k];
        if (a.cap > 1e-12 && !seen[a.to]) {
          seen[a.to] = 1;
          prev_arc[a.to] = static_cast<std::int64_t>(k);
          prev_node[a.to] = u;
          q.push(a.to);
        }
      }
    }
    if (!seen[t]) break;
    double push = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = t; v != s; v = prev_node[v]) {
      push = std::min(push, g[prev_node[v]][prev_arc[v]].cap);
    }
    for (std::uint32_t v = t; v != s; v = prev_node[v]) {
      Arc& a = g[prev_node[v]][prev_arc[v]];
      a.cap -= push;
      g[a.to][a.rev].cap += push;
    }
    flow += push;
  }
  return flow;
}

}  // namespace parsdd
