#include "apps/harmonic.h"

#include <limits>
#include <stdexcept>

namespace parsdd {

Vec harmonic_extension(std::uint32_t n, const EdgeList& edges,
                       const std::vector<std::uint32_t>& boundary,
                       const std::vector<double>& boundary_values,
                       const SddSolverOptions& solver_opts) {
  if (boundary.size() != boundary_values.size()) {
    throw std::invalid_argument("harmonic_extension: size mismatch");
  }
  constexpr std::uint32_t kFree = std::numeric_limits<std::uint32_t>::max();
  Vec x(n, 0.0);
  std::vector<std::uint32_t> interior_id(n, kFree);
  std::vector<std::uint8_t> is_boundary(n, 0);
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    is_boundary[boundary[i]] = 1;
    x[boundary[i]] = boundary_values[i];
  }
  std::vector<std::uint32_t> interior;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!is_boundary[v]) {
      interior_id[v] = static_cast<std::uint32_t>(interior.size());
      interior.push_back(v);
    }
  }
  if (interior.empty()) return x;

  // Assemble L_II and the right-hand side -L_IB x_B.
  std::vector<Triplet> ts;
  Vec rhs(interior.size(), 0.0);
  for (const Edge& e : edges) {
    bool bu = is_boundary[e.u], bv = is_boundary[e.v];
    if (bu && bv) continue;
    if (!bu && !bv) {
      std::uint32_t iu = interior_id[e.u], iv = interior_id[e.v];
      ts.push_back(Triplet{iu, iv, -e.w});
      ts.push_back(Triplet{iv, iu, -e.w});
      ts.push_back(Triplet{iu, iu, e.w});
      ts.push_back(Triplet{iv, iv, e.w});
    } else {
      std::uint32_t vin = bu ? e.v : e.u;
      std::uint32_t vb = bu ? e.u : e.v;
      std::uint32_t ii = interior_id[vin];
      ts.push_back(Triplet{ii, ii, e.w});
      rhs[ii] += e.w * x[vb];
    }
  }
  CsrMatrix lii = CsrMatrix::from_triplets(
      static_cast<std::uint32_t>(interior.size()), std::move(ts));
  SddSolver solver = SddSolver::for_sdd(lii, solver_opts);
  Vec xi = solver.solve(rhs);
  for (std::size_t i = 0; i < interior.size(); ++i) x[interior[i]] = xi[i];
  return x;
}

}  // namespace parsdd
