#include "apps/harmonic.h"

#include <limits>
#include <string>

namespace parsdd {

StatusOr<Vec> harmonic_extension(std::uint32_t n, const EdgeList& edges,
                                 const std::vector<std::uint32_t>& boundary,
                                 const std::vector<double>& boundary_values,
                                 const SddSolverOptions& solver_opts) {
  StatusOr<std::vector<Vec>> multi = harmonic_extension_multi(
      n, edges, boundary, {boundary_values}, solver_opts);
  if (!multi.ok()) return multi.status();
  return std::move((*multi)[0]);
}

StatusOr<std::vector<Vec>> harmonic_extension_multi(
    std::uint32_t n, const EdgeList& edges,
    const std::vector<std::uint32_t>& boundary,
    const std::vector<std::vector<double>>& boundary_channels,
    const SddSolverOptions& solver_opts) {
  std::size_t k = boundary_channels.size();
  for (std::size_t c = 0; c < k; ++c) {
    if (boundary_channels[c].size() != boundary.size()) {
      return InvalidArgumentError("harmonic_extension: channel " +
                                  std::to_string(c) +
                                  " mismatches the boundary size");
    }
  }
  for (std::uint32_t v : boundary) {
    if (v >= n) {
      return InvalidArgumentError(
          "harmonic_extension: boundary vertex out of range");
    }
  }
  constexpr std::uint32_t kFree = std::numeric_limits<std::uint32_t>::max();
  std::vector<Vec> x(k, Vec(n, 0.0));
  std::vector<std::uint32_t> interior_id(n, kFree);
  std::vector<std::uint8_t> is_boundary(n, 0);
  for (std::size_t i = 0; i < boundary.size(); ++i) {
    is_boundary[boundary[i]] = 1;
    for (std::size_t c = 0; c < k; ++c) {
      x[c][boundary[i]] = boundary_channels[c][i];
    }
  }
  std::vector<std::uint32_t> interior;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!is_boundary[v]) {
      interior_id[v] = static_cast<std::uint32_t>(interior.size());
      interior.push_back(v);
    }
  }
  if (interior.empty() || k == 0) return x;

  // Assemble L_II once and the per-channel right-hand sides -L_IB x_B.
  std::vector<Triplet> ts;
  MultiVec rhs(interior.size(), k, 0.0);
  for (const Edge& e : edges) {
    bool bu = is_boundary[e.u], bv = is_boundary[e.v];
    if (bu && bv) continue;
    if (!bu && !bv) {
      std::uint32_t iu = interior_id[e.u], iv = interior_id[e.v];
      ts.push_back(Triplet{iu, iv, -e.w});
      ts.push_back(Triplet{iv, iu, -e.w});
      ts.push_back(Triplet{iu, iu, e.w});
      ts.push_back(Triplet{iv, iv, e.w});
    } else {
      std::uint32_t vin = bu ? e.v : e.u;
      std::uint32_t vb = bu ? e.u : e.v;
      std::uint32_t ii = interior_id[vin];
      ts.push_back(Triplet{ii, ii, e.w});
      double* rr = rhs.row(ii);
      for (std::size_t c = 0; c < k; ++c) rr[c] += e.w * x[c][vb];
    }
  }
  CsrMatrix lii = CsrMatrix::from_triplets(
      static_cast<std::uint32_t>(interior.size()), std::move(ts));
  // Setup once, solve every channel in one batch.
  SddSolver solver = SddSolver::for_sdd(lii, solver_opts);
  StatusOr<MultiVec> xi = solver.solve_batch(rhs);
  if (!xi.ok()) return xi.status();
  for (std::size_t i = 0; i < interior.size(); ++i) {
    const double* xr = xi->row(i);
    for (std::size_t c = 0; c < k; ++c) x[c][interior[i]] = xr[c];
  }
  return x;
}

}  // namespace parsdd
