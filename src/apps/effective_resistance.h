// Effective resistances via SDD solves.
//
// The Spielman–Srivastava sparsifier (application cited in Section 1)
// needs approximate effective resistances for every edge; with O(log n)
// Laplacian solves on random ±1 right-hand sides (a Johnson–Lindenstrauss
// sketch of W^{1/2} B L⁺) all m of them concentrate simultaneously.
//
// Serving pattern: every entry point here is a batch query against one
// shared SolverSetup — the probe sketch is one solve_batch over all probe
// columns, and pair queries batch any number of (u, v) pairs into a single
// block solve, so the preconditioner chain is traversed once per block
// instead of once per query.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "solver/sdd_solver.h"

namespace parsdd {

/// Exact effective resistance between u and v: (e_u-e_v)ᵀ L⁺ (e_u-e_v),
/// via one solve with the supplied solver.  InvalidArgument when u or v is
/// out of range or n mismatches the solver.
StatusOr<double> effective_resistance(const SddSolver& solver, std::uint32_t u,
                                      std::uint32_t v, std::size_t n);

/// Exact effective resistances for a batch of vertex pairs: one
/// solve_batch with a column e_u - e_v per pair (an empty pair list is OK
/// and returns an empty result).  InvalidArgument when a pair endpoint is
/// out of range or n mismatches the solver.
StatusOr<std::vector<double>> pair_resistances(
    const SddSolver& solver, std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs);

struct ResistanceSketchOptions {
  /// Number of random probe solves (JL dimension); ~ c·log n / ε².
  std::uint32_t probes = 24;
  std::uint64_t seed = 7;
  /// Probe columns solved per solve_batch call (bounds the block's memory
  /// footprint; all probes go in one batch when probes <= batch_size).
  std::uint32_t batch_size = 32;
};

/// Approximate effective resistance of every edge of the graph the solver
/// was built for.  Performs `probes` solves total, batched.
/// InvalidArgument when an edge endpoint is out of range, n mismatches the
/// solver, or probes == 0.
StatusOr<std::vector<double>> approx_edge_resistances(
    const SddSolver& solver, std::uint32_t n, const EdgeList& edges,
    const ResistanceSketchOptions& opts = {});

}  // namespace parsdd
