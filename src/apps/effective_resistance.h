// Effective resistances via SDD solves.
//
// The Spielman–Srivastava sparsifier (application cited in Section 1)
// needs approximate effective resistances for every edge; with O(log n)
// Laplacian solves on random ±1 right-hand sides (a Johnson–Lindenstrauss
// sketch of W^{1/2} B L⁺) all m of them concentrate simultaneously.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "solver/sdd_solver.h"

namespace parsdd {

/// Exact effective resistance between u and v: (e_u-e_v)ᵀ L⁺ (e_u-e_v),
/// via one solve with the supplied solver.
double effective_resistance(const SddSolver& solver, std::uint32_t u,
                            std::uint32_t v, std::size_t n);

struct ResistanceSketchOptions {
  /// Number of random probe solves (JL dimension); ~ c·log n / ε².
  std::uint32_t probes = 24;
  std::uint64_t seed = 7;
};

/// Approximate effective resistance of every edge of the graph the solver
/// was built for.  Performs `probes` solves total.
std::vector<double> approx_edge_resistances(
    const SddSolver& solver, std::uint32_t n, const EdgeList& edges,
    const ResistanceSketchOptions& opts = {});

}  // namespace parsdd
