// Approximate undirected maximum flow via electrical flows [CKM+10].
//
// Section 1: "Our algorithm can also be applied in the inner loop of
// [CKM+10], yielding a O~(m^{5/6+θ} poly(ε⁻¹)) depth and O~(m^{4/3}
// poly(ε⁻¹)) work algorithm for finding 1-ε approximate maximum flows."
// The inner loop is multiplicative weights over edge resistances: each
// iteration solves one Laplacian system to route an electrical s-t flow,
// penalizes congested edges, and averages the flows.  An Edmonds–Karp exact
// solver is included as the test/bench oracle.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "solver/sdd_solver.h"

namespace parsdd {

struct MaxflowOptions {
  double epsilon = 0.2;          // approximation target
  std::uint32_t max_iterations = 200;
  std::uint64_t seed = 3;
  SddSolverOptions solver;       // inner Laplacian solver configuration
};

struct MaxflowResult {
  /// Feasible flow value achieved (>= (1-eps') * optimum when converged).
  double flow_value = 0.0;
  /// Signed flow per edge (positive = u->v), scaled feasible.
  std::vector<double> flow;
  std::uint32_t iterations = 0;
  std::uint32_t laplacian_solves = 0;
};

/// Approximate max flow from s to t on the undirected capacitated graph
/// (capacities = edge weights).  Requires s and t connected.
/// InvalidArgument when s == t or either terminal is out of range.
StatusOr<MaxflowResult> approx_max_flow(std::uint32_t n,
                                        const EdgeList& capacities,
                                        std::uint32_t s, std::uint32_t t,
                                        const MaxflowOptions& opts = {});

/// Exact max flow (Edmonds–Karp on the undirected graph); oracle for tests
/// and the E9 bench.  O(V·E²) — small graphs only.
double exact_max_flow(std::uint32_t n, const EdgeList& capacities,
                      std::uint32_t s, std::uint32_t t);

}  // namespace parsdd
