// Spectral sparsification by effective resistances [SS08].
//
// Section 1: "Spielman and Srivastava showed that spectral sparsifiers can
// be constructed using O(log n) Laplacian solves, and using our theorem we
// get spectral and cut sparsifiers in O~(m^{1/3+θ}) depth and O~(m) work."
// Edge e is kept with probability p_e ∝ w_e·R_eff(e)·log n / ε² and
// reweighted to w_e/p_e, giving (1±ε) preservation of the Laplacian
// quadratic form with O(n log n / ε²) edges.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "solver/sdd_solver.h"

namespace parsdd {

struct SpectralSparsifyOptions {
  double epsilon = 0.3;
  /// Multiplier on the sampling rate (theory constant).
  double constant = 4.0;
  std::uint32_t probes = 24;  // JL probes for resistance estimation
  std::uint64_t seed = 11;
};

struct SpectralSparsifyResult {
  EdgeList sparsifier;
  std::size_t original_edges = 0;
};

/// Sparsifies the connected graph (V=[0,n), edges) using `solver` (built
/// for the same graph) for the resistance estimates.  InvalidArgument when
/// the solver/edges mismatch n.
StatusOr<SpectralSparsifyResult> spectral_sparsify(
    std::uint32_t n, const EdgeList& edges, const SddSolver& solver,
    const SpectralSparsifyOptions& opts = {});

}  // namespace parsdd
