#include "apps/sparsify.h"

#include <cmath>

#include "apps/effective_resistance.h"
#include "parallel/rng.h"

namespace parsdd {

StatusOr<SpectralSparsifyResult> spectral_sparsify(
    std::uint32_t n, const EdgeList& edges, const SddSolver& solver,
    const SpectralSparsifyOptions& opts) {
  SpectralSparsifyResult out;
  out.original_edges = edges.size();

  ResistanceSketchOptions ropts;
  ropts.probes = opts.probes;
  ropts.seed = opts.seed;
  StatusOr<std::vector<double>> reff_or =
      approx_edge_resistances(solver, n, edges, ropts);
  if (!reff_or.ok()) return reff_or.status();
  std::vector<double> reff = std::move(*reff_or);

  const double ln_n = std::log(std::max<double>(n, 2.0));
  const double rate =
      opts.constant * ln_n / (opts.epsilon * opts.epsilon);
  Rng rng(opts.seed ^ 0x5eedULL);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    // w_e * R_eff(e) is the leverage score (sums to n-1 over the graph).
    double leverage = std::min(1.0, edges[e].w * std::max(reff[e], 0.0));
    double p = std::min(1.0, rate * leverage);
    if (rng.uniform(e) < p) {
      out.sparsifier.push_back(Edge{edges[e].u, edges[e].v, edges[e].w / p});
    }
  }
  return out;
}

}  // namespace parsdd
