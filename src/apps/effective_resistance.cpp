#include "apps/effective_resistance.h"

#include <cmath>

#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

double effective_resistance(const SddSolver& solver, std::uint32_t u,
                            std::uint32_t v, std::size_t n) {
  Vec b(n, 0.0);
  b[u] = 1.0;
  b[v] = -1.0;
  Vec x = solver.solve(b);
  return x[u] - x[v];
}

std::vector<double> approx_edge_resistances(
    const SddSolver& solver, std::uint32_t n, const EdgeList& edges,
    const ResistanceSketchOptions& opts) {
  std::vector<double> r(edges.size(), 0.0);
  Rng rng(opts.seed);
  for (std::uint32_t j = 0; j < opts.probes; ++j) {
    // rhs = Bᵀ W^{1/2} q with q ∈ {±1}^m.
    Vec rhs(n, 0.0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      double q = (rng.u64(j * edges.size() + e) & 1) ? 1.0 : -1.0;
      double s = q * std::sqrt(edges[e].w);
      rhs[edges[e].u] += s;
      rhs[edges[e].v] -= s;
    }
    Vec z = solver.solve(rhs);
    parallel_for(0, edges.size(), [&](std::size_t e) {
      double d = z[edges[e].u] - z[edges[e].v];
      r[e] += d * d;
    });
  }
  double inv = 1.0 / std::max<std::uint32_t>(opts.probes, 1);
  parallel_for(0, r.size(), [&](std::size_t e) { r[e] *= inv; });
  return r;
}

}  // namespace parsdd
