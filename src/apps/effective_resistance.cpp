#include "apps/effective_resistance.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

StatusOr<double> effective_resistance(const SddSolver& solver, std::uint32_t u,
                                      std::uint32_t v, std::size_t n) {
  StatusOr<std::vector<double>> r = pair_resistances(solver, n, {{u, v}});
  if (!r.ok()) return r.status();
  return (*r)[0];
}

StatusOr<std::vector<double>> pair_resistances(
    const SddSolver& solver, std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) {
  std::size_t k = pairs.size();
  std::vector<double> r(k, 0.0);
  if (k == 0) return r;
  if (n != solver.setup().dimension()) {
    return InvalidArgumentError(
        "pair_resistances: n mismatches the solver dimension");
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (pairs[c].first >= n || pairs[c].second >= n) {
      return InvalidArgumentError("pair_resistances: pair " +
                                  std::to_string(c) + " out of range");
    }
  }
  MultiVec b(n, k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    b.at(pairs[c].first, c) += 1.0;
    b.at(pairs[c].second, c) -= 1.0;
  }
  StatusOr<MultiVec> x = solver.solve_batch(b);
  if (!x.ok()) return x.status();
  for (std::size_t c = 0; c < k; ++c) {
    r[c] = x->at(pairs[c].first, c) - x->at(pairs[c].second, c);
  }
  return r;
}

StatusOr<std::vector<double>> approx_edge_resistances(
    const SddSolver& solver, std::uint32_t n, const EdgeList& edges,
    const ResistanceSketchOptions& opts) {
  if (n != solver.setup().dimension()) {
    return InvalidArgumentError(
        "approx_edge_resistances: n mismatches the solver dimension");
  }
  if (opts.probes == 0) {
    return InvalidArgumentError("approx_edge_resistances: probes == 0");
  }
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return InvalidArgumentError(
          "approx_edge_resistances: edge endpoint out of range");
    }
  }
  std::vector<double> r(edges.size(), 0.0);
  Rng rng(opts.seed);
  std::uint32_t batch = std::max<std::uint32_t>(opts.batch_size, 1);
  for (std::uint32_t j0 = 0; j0 < opts.probes; j0 += batch) {
    std::uint32_t k = std::min(batch, opts.probes - j0);
    // Column j-j0 holds Bᵀ W^{1/2} q_j with q_j ∈ {±1}^m.
    MultiVec rhs(n, k, 0.0);
    for (std::uint32_t j = j0; j < j0 + k; ++j) {
      std::size_t c = j - j0;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        double q = (rng.u64(j * edges.size() + e) & 1) ? 1.0 : -1.0;
        double s = q * std::sqrt(edges[e].w);
        rhs.at(edges[e].u, c) += s;
        rhs.at(edges[e].v, c) -= s;
      }
    }
    StatusOr<MultiVec> z = solver.solve_batch(rhs);
    if (!z.ok()) return z.status();
    parallel_for(0, edges.size(), [&](std::size_t e) {
      const double* zu = z->row(edges[e].u);
      const double* zv = z->row(edges[e].v);
      double acc = 0.0;
      for (std::uint32_t c = 0; c < k; ++c) {
        double d = zu[c] - zv[c];
        acc += d * d;
      }
      r[e] += acc;
    });
  }
  double inv = 1.0 / opts.probes;
  parallel_for(0, r.size(), [&](std::size_t e) { r[e] *= inv; });
  return r;
}

}  // namespace parsdd
