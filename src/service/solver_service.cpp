#include "service/solver_service.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "parallel/task_queue.h"
#include "service/setup_cache.h"
#include "util/thread_annotations.h"

namespace parsdd {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

struct SolverService::Impl {
  // One client's queued single-RHS request.  The setup pointer is
  // snapshotted at submit time, so unregister() can never invalidate a
  // request that was already accepted.
  struct PendingSingle {
    std::shared_ptr<const SolverSetup> setup;
    Vec b;
    std::promise<StatusOr<SolveResult>> promise;
    Clock::time_point arrival;
  };
  struct PendingBatch {
    std::shared_ptr<const SolverSetup> setup;
    MultiVec b;
    std::promise<StatusOr<BatchSolveResult>> promise;
  };
  struct HandleQueues {
    std::deque<PendingSingle> singles;
    std::deque<PendingBatch> batches;
  };
  // Arrival-order dispatch ticket.  Tickets may go stale when coalescing
  // consumes several singles at once; the dispatcher skips tickets whose
  // queue is already empty.  Invariant: a handle never holds more queued
  // requests than live tickets, so nothing starves.
  struct Token {
    std::uint64_t id;
    bool is_batch;
  };
  // A coalesced block in flight: k requests answered by one solve_batch.
  struct SingleBlockJob {
    std::shared_ptr<const SolverSetup> setup;
    std::vector<PendingSingle> reqs;
  };

  explicit Impl(const ServiceOptions& options)
      : opts(options), setup_cache(options.setup_cache_capacity) {
    opts.max_batch = std::max<std::uint32_t>(opts.max_batch, 1);
  }

  /// Immutable after construction; read without the mutex.
  ServiceOptions opts;

  mutable Mutex mu;
  CondVar cv_dispatch;  // work for the dispatcher
  CondVar cv_idle;      // a request finished (for drain)
  std::unordered_map<std::uint64_t, std::shared_ptr<const SolverSetup>>
      registry PARSDD_GUARDED_BY(mu);
  std::uint64_t next_id PARSDD_GUARDED_BY(mu) = 1;
  // Ordered map: stats() walks it to report per-handle gauges, and the
  // determinism contract forbids iterating an unordered container.
  std::map<std::uint64_t, HandleQueues> queues PARSDD_GUARDED_BY(mu);
  std::deque<Token> tokens PARSDD_GUARDED_BY(mu);
  /// Accepted requests not yet dispatched.
  std::size_t queued PARSDD_GUARDED_BY(mu) = 0;
  /// Dispatched requests not yet answered.
  std::size_t in_flight PARSDD_GUARDED_BY(mu) = 0;
  /// Dispatched blocks not yet answered (the in-flight batch gauge).
  std::size_t in_flight_blocks PARSDD_GUARDED_BY(mu) = 0;
  bool stopping PARSDD_GUARDED_BY(mu) = false;
  ServiceStats counters PARSDD_GUARDED_BY(mu);
  SetupCache setup_cache PARSDD_GUARDED_BY(mu);

  std::unique_ptr<TaskQueue> exec;
  std::thread dispatcher;

  StatusOr<SetupHandle> add_setup(std::shared_ptr<const SolverSetup> setup)
      PARSDD_EXCLUDES(mu);
  /// Registry insertion shared by every registration path.  One definition
  /// of handle allocation, so the cache-hit and build paths cannot diverge.
  StatusOr<SetupHandle> add_setup_locked(
      std::shared_ptr<const SolverSetup> setup) PARSDD_REQUIRES(mu);
  /// Cache-aware build-and-register shared by register_laplacian and
  /// register_sdd: `fp` keys the cache, `build` runs the chain
  /// construction on a miss.  The build runs outside the service mutex, so
  /// two concurrent first registrations of the same graph may both build —
  /// the second put simply refreshes the entry (correct either way, since
  /// equal fingerprints mean deterministically identical setups).
  template <typename BuildFn>
  StatusOr<SetupHandle> register_built(const SetupFingerprint& fp,
                                       const char* what, BuildFn&& build)
      PARSDD_EXCLUDES(mu);
  void dispatcher_loop() PARSDD_EXCLUDES(mu);

  /// True when any ticket for a different handle is waiting — the signal
  /// that cuts a linger window short (no head-of-line blocking).
  bool other_handle_waiting(std::uint64_t id) const PARSDD_REQUIRES(mu);
  /// Lingers (lock released while waiting), then coalesces up to max_batch
  /// pending singles for the handle into one job; null for a stale ticket.
  std::shared_ptr<SingleBlockJob> collect_singles(
      MutexLock& lock, std::uint64_t id, std::deque<PendingSingle>& singles)
      PARSDD_REQUIRES(mu);
  /// Pops the oldest pre-assembled block; null for a stale ticket.
  std::shared_ptr<PendingBatch> take_batch(std::deque<PendingBatch>& batches)
      PARSDD_REQUIRES(mu);
  /// Hand-off to the executors; called with the mutex released so the
  /// dispatcher never holds it across a post.
  void post_single_block(std::shared_ptr<SingleBlockJob> job)
      PARSDD_EXCLUDES(mu);
  void post_batch(std::shared_ptr<PendingBatch> job) PARSDD_EXCLUDES(mu);

  void execute_single_block(SingleBlockJob& job);
  void finish(std::size_t count) PARSDD_EXCLUDES(mu);

  /// Backpressure measures the whole pipeline: accepted-but-undispatched
  /// PLUS dispatched-but-unanswered.  Counting only the former would let
  /// the executor queue grow without bound whenever solves are the
  /// bottleneck (the dispatcher drains `queued` faster than solves finish).
  bool at_capacity() const PARSDD_REQUIRES(mu) {
    return queued + in_flight >= opts.max_pending;
  }

  /// Frees the per-handle queue slot once the handle is unregistered and
  /// nothing is pending against it; ids are never reused, so without this
  /// a register/serve/unregister churn pattern would leak one map node per
  /// handle for the process lifetime.
  void gc_queues(std::uint64_t id) PARSDD_REQUIRES(mu) {
    auto it = queues.find(id);
    if (it != queues.end() && it->second.singles.empty() &&
        it->second.batches.empty() && registry.find(id) == registry.end()) {
      queues.erase(it);
    }
  }
};

SolverService::SolverService(const ServiceOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {
  impl_->exec = std::make_unique<TaskQueue>(
      std::max<std::uint32_t>(impl_->opts.workers, 1));
  impl_->dispatcher = std::thread([this] { impl_->dispatcher_loop(); });
}

SolverService::~SolverService() {
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv_dispatch.notify_all();
  impl_->dispatcher.join();  // dispatches everything still queued
  impl_->exec->stop();       // runs every dispatched block to completion
}

StatusOr<SetupHandle> SolverService::Impl::add_setup_locked(
    std::shared_ptr<const SolverSetup> setup) {
  if (stopping) {
    return UnavailableError("SolverService: shutting down");
  }
  std::uint64_t id = next_id++;
  registry.emplace(id, std::move(setup));
  return SetupHandle{id};
}

StatusOr<SetupHandle> SolverService::Impl::add_setup(
    std::shared_ptr<const SolverSetup> setup) {
  if (!setup) {
    return InvalidArgumentError("SolverService: null setup");
  }
  MutexLock lock(mu);
  return add_setup_locked(std::move(setup));
}

template <typename BuildFn>
StatusOr<SetupHandle> SolverService::Impl::register_built(
    const SetupFingerprint& fp, const char* what, BuildFn&& build) {
  {
    MutexLock lock(mu);
    if (stopping) {
      return UnavailableError("SolverService: shutting down");
    }
    if (std::shared_ptr<const SolverSetup> cached = setup_cache.get(fp)) {
      ++counters.setup_cache_hits;
      return add_setup_locked(std::move(cached));
    }
    ++counters.setup_cache_misses;
  }
  std::shared_ptr<const SolverSetup> setup;
  try {
    setup = std::make_shared<const SolverSetup>(build());
  } catch (const std::exception& e) {
    // The setup phase still speaks exceptions for construction-time
    // failures; the service boundary translates them.
    return InvalidArgumentError(std::string(what) + ": " + e.what());
  }
  MutexLock lock(mu);
  setup_cache.put(fp, setup);
  return add_setup_locked(std::move(setup));
}

StatusOr<SetupHandle> SolverService::register_laplacian(
    std::uint32_t n, const EdgeList& edges, const SddSolverOptions& opts) {
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return InvalidArgumentError(
          "register_laplacian: edge endpoint out of range");
    }
  }
  return impl_->register_built(
      fingerprint_laplacian_setup(n, edges, opts), "register_laplacian",
      [&] { return SolverSetup::for_laplacian(n, edges, opts); });
}

StatusOr<SetupHandle> SolverService::register_sdd(
    const CsrMatrix& a, const SddSolverOptions& opts) {
  return impl_->register_built(fingerprint_sdd_setup(a, opts), "register_sdd",
                               [&] { return SolverSetup::for_sdd(a, opts); });
}

StatusOr<SetupHandle> SolverService::register_from_snapshot(
    const std::string& path) {
  StatusOr<SolverSetup> setup = SolverSetup::Load(path);
  if (!setup.ok()) return setup.status();
  return impl_->add_setup(
      std::make_shared<const SolverSetup>(std::move(*setup)));
}

Status SolverService::snapshot(SetupHandle handle,
                               const std::string& path) const {
  std::shared_ptr<const SolverSetup> setup;
  {
    MutexLock lock(impl_->mu);
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      return NotFoundError("snapshot: unknown handle " +
                           std::to_string(handle.id));
    }
    setup = it->second;
  }
  // Serialization runs outside the service mutex: the setup is immutable
  // and the local shared_ptr keeps it alive even across an unregister.
  return setup->Save(path);
}

StatusOr<SetupHandle> SolverService::register_setup(
    std::shared_ptr<const SolverSetup> setup) {
  return impl_->add_setup(std::move(setup));
}

Status SolverService::unregister(SetupHandle handle) {
  MutexLock lock(impl_->mu);
  if (impl_->registry.erase(handle.id) == 0) {
    return NotFoundError("unregister: unknown handle " +
                         std::to_string(handle.id));
  }
  // Still-pending requests keep the queue slot alive; the dispatcher GCs
  // it after draining them.
  impl_->gc_queues(handle.id);
  return OkStatus();
}

StatusOr<SetupInfo> SolverService::info(SetupHandle handle) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->registry.find(handle.id);
  if (it == impl_->registry.end()) {
    return NotFoundError("info: unknown handle " + std::to_string(handle.id));
  }
  SetupInfo out;
  out.dimension = it->second->dimension();
  out.components = it->second->num_components();
  out.chain_levels = it->second->chain_levels();
  out.chain_edges = it->second->chain_edges();
  out.precision = it->second->precision();
  return out;
}

namespace {
const char* precision_name(Precision p) {
  return p == Precision::kF32Refined ? "f32-refined" : "f64-bitwise";
}
}  // namespace

std::future<StatusOr<SolveResult>> SolverService::submit(
    SetupHandle handle, Vec b, std::optional<Precision> require) {
  std::promise<StatusOr<SolveResult>> promise;
  std::future<StatusOr<SolveResult>> future = promise.get_future();
  bool notify = false;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) {
      promise.set_value(UnavailableError("submit: shutting down"));
      return future;
    }
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      promise.set_value(
          NotFoundError("submit: unknown handle " + std::to_string(handle.id)));
      return future;
    }
    if (b.size() != it->second->dimension()) {
      promise.set_value(InvalidArgumentError(
          "submit: rhs has size " + std::to_string(b.size()) +
          ", setup has dimension " + std::to_string(it->second->dimension())));
      return future;
    }
    if (require && *require != it->second->precision()) {
      promise.set_value(InvalidArgumentError(
          std::string("submit: request requires ") + precision_name(*require) +
          " but the setup was built " +
          precision_name(it->second->precision())));
      return future;
    }
    if (impl_->at_capacity()) {
      ++impl_->counters.rejected;
      promise.set_value(
          ResourceExhaustedError("submit: queue full (max_pending=" +
                                 std::to_string(impl_->opts.max_pending) +
                                 "), retry later"));
      return future;
    }
    impl_->queues[handle.id].singles.push_back(Impl::PendingSingle{
        it->second, std::move(b), std::move(promise), Clock::now()});
    impl_->tokens.push_back(Impl::Token{handle.id, /*is_batch=*/false});
    ++impl_->queued;
    ++impl_->counters.submitted;
    notify = true;
  }
  if (notify) impl_->cv_dispatch.notify_all();
  return future;
}

std::future<StatusOr<BatchSolveResult>> SolverService::submit_batch(
    SetupHandle handle, MultiVec b, std::optional<Precision> require) {
  std::promise<StatusOr<BatchSolveResult>> promise;
  std::future<StatusOr<BatchSolveResult>> future = promise.get_future();
  bool notify = false;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) {
      promise.set_value(UnavailableError("submit_batch: shutting down"));
      return future;
    }
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      promise.set_value(NotFoundError("submit_batch: unknown handle " +
                                      std::to_string(handle.id)));
      return future;
    }
    if (b.cols() == 0) {
      promise.set_value(
          InvalidArgumentError("submit_batch: empty batch (k=0)"));
      return future;
    }
    if (b.rows() != it->second->dimension()) {
      promise.set_value(InvalidArgumentError(
          "submit_batch: block has " + std::to_string(b.rows()) +
          " rows, setup has dimension " +
          std::to_string(it->second->dimension())));
      return future;
    }
    if (require && *require != it->second->precision()) {
      promise.set_value(InvalidArgumentError(
          std::string("submit_batch: request requires ") +
          precision_name(*require) + " but the setup was built " +
          precision_name(it->second->precision())));
      return future;
    }
    if (impl_->at_capacity()) {
      ++impl_->counters.rejected;
      promise.set_value(
          ResourceExhaustedError("submit_batch: queue full, retry later"));
      return future;
    }
    impl_->queues[handle.id].batches.push_back(
        Impl::PendingBatch{it->second, std::move(b), std::move(promise)});
    impl_->tokens.push_back(Impl::Token{handle.id, /*is_batch=*/true});
    ++impl_->queued;
    ++impl_->counters.submitted;
    notify = true;
  }
  if (notify) impl_->cv_dispatch.notify_all();
  return future;
}

void SolverService::drain() {
  MutexLock lock(impl_->mu);
  while (impl_->queued != 0 || impl_->in_flight != 0) {
    impl_->cv_idle.wait(lock);
  }
}

ServiceStats SolverService::stats() const {
  MutexLock lock(impl_->mu);
  ServiceStats out = impl_->counters;
  out.queue_depth = impl_->queued;
  out.in_flight_cols = impl_->in_flight;
  out.in_flight_blocks = impl_->in_flight_blocks;
  for (const auto& [id, q] : impl_->queues) {
    std::uint64_t pending = q.singles.size() + q.batches.size();
    if (pending != 0) out.per_handle_pending.emplace_back(id, pending);
  }
  return out;
}

void SolverService::Impl::dispatcher_loop() {
  MutexLock lock(mu);
  for (;;) {
    while (!stopping && tokens.empty()) cv_dispatch.wait(lock);
    if (tokens.empty()) {
      if (stopping) return;  // fully drained
      continue;
    }
    Token token = tokens.front();
    tokens.pop_front();
    auto qit = queues.find(token.id);
    if (qit == queues.end()) continue;
    // Collect under the lock, post outside it: the unlock/relock pair lives
    // in the same scope as the MutexLock so the thread-safety analysis can
    // track the scoped release (and the dispatcher never holds the service
    // mutex across an executor hand-off).
    if (token.is_batch) {
      if (std::shared_ptr<PendingBatch> job = take_batch(qit->second.batches)) {
        lock.Unlock();
        post_batch(std::move(job));
        lock.Lock();
      }
    } else {
      if (std::shared_ptr<SingleBlockJob> job =
              collect_singles(lock, token.id, qit->second.singles)) {
        lock.Unlock();
        post_single_block(std::move(job));
        lock.Lock();
      }
    }
    gc_queues(token.id);
  }
}

bool SolverService::Impl::other_handle_waiting(std::uint64_t id) const {
  for (const Token& t : tokens) {
    if (t.id != id) return true;
  }
  return false;
}

std::shared_ptr<SolverService::Impl::SingleBlockJob>
SolverService::Impl::collect_singles(MutexLock& lock, std::uint64_t id,
                                     std::deque<PendingSingle>& singles) {
  if (singles.empty()) return nullptr;  // stale ticket: already coalesced
  if (opts.coalesce && opts.max_linger_us > 0) {
    // Let the block fill: wait (lock released) until max_batch columns are
    // pending or the oldest request has lingered its budget.  Shutdown cuts
    // the linger short so teardown never waits on the clock, and pending
    // work for ANY OTHER handle cuts it short too — the single dispatcher
    // must not head-of-line block handle B behind handle A's linger window
    // (requests for the same handle only push same-id tickets, so the hot
    // single-handle burst still coalesces fully).
    Clock::time_point deadline =
        singles.front().arrival + std::chrono::microseconds(opts.max_linger_us);
    while (!stopping && singles.size() < opts.max_batch &&
           Clock::now() < deadline && !other_handle_waiting(id)) {
      cv_dispatch.wait_until(lock, deadline);
    }
  }
  std::size_t take =
      opts.coalesce ? std::min<std::size_t>(singles.size(), opts.max_batch)
                    : 1;
  auto job = std::make_shared<SingleBlockJob>();
  job->setup = singles.front().setup;
  job->reqs.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    job->reqs.push_back(std::move(singles.front()));
    singles.pop_front();
  }
  queued -= take;
  in_flight += take;
  ++in_flight_blocks;
  ++counters.dispatched_blocks;
  counters.dispatched_cols += take;
  return job;
}

std::shared_ptr<SolverService::Impl::PendingBatch>
SolverService::Impl::take_batch(std::deque<PendingBatch>& batches) {
  if (batches.empty()) return nullptr;
  auto job = std::make_shared<PendingBatch>(std::move(batches.front()));
  batches.pop_front();
  --queued;
  ++in_flight;
  ++in_flight_blocks;
  ++counters.dispatched_blocks;
  counters.dispatched_cols += job->b.cols();
  return job;
}

void SolverService::Impl::post_single_block(
    std::shared_ptr<SingleBlockJob> job) {
  bool posted = exec->post([this, job] {
    execute_single_block(*job);
    finish(job->reqs.size());
  });
  if (!posted) {
    for (PendingSingle& r : job->reqs) {
      r.promise.set_value(UnavailableError("service stopped"));
    }
    finish(job->reqs.size());
  }
}

void SolverService::Impl::post_batch(std::shared_ptr<PendingBatch> job) {
  bool posted = exec->post([this, job] {
    BatchSolveReport report;
    StatusOr<MultiVec> x = job->setup->solve_batch(job->b, &report);
    if (x.ok()) {
      job->promise.set_value(
          BatchSolveResult{std::move(*x), std::move(report)});
    } else {
      job->promise.set_value(x.status());
    }
    finish(1);
  });
  if (!posted) {
    job->promise.set_value(UnavailableError("service stopped"));
    finish(1);
  }
}

void SolverService::Impl::execute_single_block(SingleBlockJob& job) {
  std::size_t k = job.reqs.size();
  std::uint32_t n = job.setup->dimension();
  MultiVec b(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    b.set_column(c, job.reqs[c].b);
  }
  BatchSolveReport report;
  StatusOr<MultiVec> x = job.setup->solve_batch(b, &report);
  if (!x.ok()) {
    // Cannot happen for requests validated at submit; surface it anyway.
    for (PendingSingle& r : job.reqs) r.promise.set_value(x.status());
    return;
  }
  for (std::size_t c = 0; c < k; ++c) {
    SolveResult res;
    res.x = x->column(c);
    res.stats = report.column_stats[c];
    res.coalesced_cols = static_cast<std::uint32_t>(k);
    job.reqs[c].promise.set_value(std::move(res));
  }
}

void SolverService::Impl::finish(std::size_t count) {
  {
    MutexLock lock(mu);
    in_flight -= count;
    --in_flight_blocks;  // every finish() answers exactly one block
    counters.completed += count;
  }
  cv_idle.notify_all();
}

}  // namespace parsdd
