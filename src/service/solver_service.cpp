#include "service/solver_service.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "parallel/task_queue.h"
#include "service/setup_cache.h"
#include "util/thread_annotations.h"

namespace parsdd {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

struct SolverService::Impl {
  // One client's queued single-RHS request.  The setup pointer is
  // snapshotted at submit time, so unregister() can never invalidate a
  // request that was already accepted.
  struct PendingSingle {
    std::shared_ptr<const SolverSetup> setup;
    Vec b;
    std::promise<StatusOr<SolveResult>> promise;
    Clock::time_point arrival;
  };
  struct PendingBatch {
    std::shared_ptr<const SolverSetup> setup;
    MultiVec b;
    std::promise<StatusOr<BatchSolveResult>> promise;
    std::uint64_t handle_id = 0;
  };
  struct HandleQueues {
    std::deque<PendingSingle> singles;
    std::deque<PendingBatch> batches;
  };
  // Arrival-order dispatch ticket.  Tickets may go stale when coalescing
  // consumes several singles at once; the dispatcher skips tickets whose
  // queue is already empty.  Invariant: a handle never holds more queued
  // requests than live tickets, so nothing starves.
  struct Token {
    std::uint64_t id;
    bool is_batch;
  };
  // A coalesced block in flight: k requests answered by one solve_batch.
  // handle_id feeds the post-solve quality check (maybe_quality_rebuild);
  // the solve itself only ever touches the snapshotted setup.
  struct SingleBlockJob {
    std::shared_ptr<const SolverSetup> setup;
    std::vector<PendingSingle> reqs;
    std::uint64_t handle_id = 0;
  };

  // A registered handle.  `setup` is what solves snapshot at submit time;
  // update() swaps it for a new immutable setup under `mu`, which is the
  // atomic-swap point of the update protocol — requests already holding the
  // old pointer finish against it, later submits see the new one.
  struct Registration {
    std::shared_ptr<const SolverSetup> setup;
    /// The handle's cache fingerprint, extended per absorbed delta batch
    /// (extend_fingerprint); has_fp is false for register_setup /
    /// register_from_snapshot handles, whose build inputs are unknown.
    SetupFingerprint fp;
    bool has_fp = false;
    /// An async rebuild for this handle is queued or running; new delta
    /// batches append to pending_deltas instead of applying directly.
    bool rebuild_inflight = false;
    /// Quality monitor asked for a fresh re-setup (chains rebuilt, drift
    /// baseline reset) before replaying pending_deltas.
    bool refresh_requested = false;
    /// Delta batches awaiting the in-flight rebuild, in arrival order.
    std::vector<EdgeDelta> pending_deltas;
  };

  explicit Impl(const ServiceOptions& options)
      : opts(options), setup_cache(options.setup_cache_capacity) {
    opts.max_batch = std::max<std::uint32_t>(opts.max_batch, 1);
  }

  /// Immutable after construction; read without the mutex.
  ServiceOptions opts;

  mutable Mutex mu;
  CondVar cv_dispatch;  // work for the dispatcher
  CondVar cv_idle;      // a request finished (for drain)
  /// Serializes update() callers so synchronous (stale-chain) delta batches
  /// apply in call order.  Lock order: update_mu strictly before mu; the
  /// rebuild thread and the quality monitor take only mu, so they can make
  /// progress while an updater builds outside both locks.
  Mutex update_mu;
  std::unordered_map<std::uint64_t, Registration> registry
      PARSDD_GUARDED_BY(mu);
  std::uint64_t next_id PARSDD_GUARDED_BY(mu) = 1;
  // Ordered map: stats() walks it to report per-handle gauges, and the
  // determinism contract forbids iterating an unordered container.
  std::map<std::uint64_t, HandleQueues> queues PARSDD_GUARDED_BY(mu);
  std::deque<Token> tokens PARSDD_GUARDED_BY(mu);
  /// Accepted requests not yet dispatched.
  std::size_t queued PARSDD_GUARDED_BY(mu) = 0;
  /// Dispatched requests not yet answered.
  std::size_t in_flight PARSDD_GUARDED_BY(mu) = 0;
  /// Dispatched blocks not yet answered (the in-flight batch gauge).
  std::size_t in_flight_blocks PARSDD_GUARDED_BY(mu) = 0;
  bool stopping PARSDD_GUARDED_BY(mu) = false;
  /// Async rebuilds queued or running (drain() waits for zero).
  std::size_t rebuilds_inflight_n PARSDD_GUARDED_BY(mu) = 0;
  ServiceStats counters PARSDD_GUARDED_BY(mu);
  SetupCache setup_cache PARSDD_GUARDED_BY(mu);

  std::unique_ptr<TaskQueue> exec;
  /// Dedicated single-thread queue for async setup rebuilds, so a ~1 s
  /// chain rebuild never occupies a solve executor.
  std::unique_ptr<TaskQueue> rebuild_exec;
  std::thread dispatcher;

  StatusOr<SetupHandle> add_setup(std::shared_ptr<const SolverSetup> setup)
      PARSDD_EXCLUDES(mu);
  /// Registry insertion shared by every registration path.  One definition
  /// of handle allocation, so the cache-hit and build paths cannot diverge.
  /// `fp` non-null records the build fingerprint for later extension.
  StatusOr<SetupHandle> add_setup_locked(std::shared_ptr<const SolverSetup> setup,
                                         const SetupFingerprint* fp = nullptr)
      PARSDD_REQUIRES(mu);
  /// Cache-aware build-and-register shared by register_laplacian and
  /// register_sdd: `fp` keys the cache, `build` runs the chain
  /// construction on a miss.  The build runs outside the service mutex, so
  /// two concurrent first registrations of the same graph may both build —
  /// the second put simply refreshes the entry (correct either way, since
  /// equal fingerprints mean deterministically identical setups).
  template <typename BuildFn>
  StatusOr<SetupHandle> register_built(const SetupFingerprint& fp,
                                       const char* what, BuildFn&& build)
      PARSDD_EXCLUDES(mu);
  void dispatcher_loop() PARSDD_EXCLUDES(mu);

  /// True when any ticket for a different handle is waiting — the signal
  /// that cuts a linger window short (no head-of-line blocking).
  bool other_handle_waiting(std::uint64_t id) const PARSDD_REQUIRES(mu);
  /// Lingers (lock released while waiting), then coalesces up to max_batch
  /// pending singles for the handle into one job; null for a stale ticket.
  std::shared_ptr<SingleBlockJob> collect_singles(
      MutexLock& lock, std::uint64_t id, std::deque<PendingSingle>& singles)
      PARSDD_REQUIRES(mu);
  /// Pops the oldest pre-assembled block; null for a stale ticket.
  std::shared_ptr<PendingBatch> take_batch(std::deque<PendingBatch>& batches)
      PARSDD_REQUIRES(mu);
  /// Hand-off to the executors; called with the mutex released so the
  /// dispatcher never holds it across a post.
  void post_single_block(std::shared_ptr<SingleBlockJob> job)
      PARSDD_EXCLUDES(mu);
  void post_batch(std::shared_ptr<PendingBatch> job) PARSDD_EXCLUDES(mu);

  void execute_single_block(SingleBlockJob& job);
  void finish(std::size_t count) PARSDD_EXCLUDES(mu);

  /// The update() entry point body (handle resolution, tier dispatch,
  /// atomic swap / rebuild scheduling).  Takes update_mu, then mu.
  StatusOr<UpdateAck> apply_update(std::uint64_t id,
                                   const std::vector<EdgeDelta>& deltas)
      PARSDD_EXCLUDES(mu);
  /// Rebuild-thread body: repeatedly absorbs this handle's pending delta
  /// batches (optionally after a fresh re-setup) and swaps the result in;
  /// returns once nothing is pending or the handle/service went away.
  void run_rebuild(std::uint64_t id) PARSDD_EXCLUDES(mu);
  /// Posts run_rebuild(id); unwinds the in-flight marker if the queue has
  /// already stopped.
  void post_rebuild(std::uint64_t id) PARSDD_EXCLUDES(mu);
  /// Called by executors after a solve: schedules a quality rebuild when
  /// the handle's stale-chain drift crossed opts.stale_rebuild_factor.
  void maybe_quality_rebuild(std::uint64_t id,
                             const std::shared_ptr<const SolverSetup>& setup)
      PARSDD_EXCLUDES(mu);

  /// Backpressure measures the whole pipeline: accepted-but-undispatched
  /// PLUS dispatched-but-unanswered.  Counting only the former would let
  /// the executor queue grow without bound whenever solves are the
  /// bottleneck (the dispatcher drains `queued` faster than solves finish).
  bool at_capacity() const PARSDD_REQUIRES(mu) {
    return queued + in_flight >= opts.max_pending;
  }

  /// Frees the per-handle queue slot once the handle is unregistered and
  /// nothing is pending against it; ids are never reused, so without this
  /// a register/serve/unregister churn pattern would leak one map node per
  /// handle for the process lifetime.
  void gc_queues(std::uint64_t id) PARSDD_REQUIRES(mu) {
    auto it = queues.find(id);
    if (it != queues.end() && it->second.singles.empty() &&
        it->second.batches.empty() && registry.find(id) == registry.end()) {
      queues.erase(it);
    }
  }
};

SolverService::SolverService(const ServiceOptions& opts)
    : impl_(std::make_unique<Impl>(opts)) {
  impl_->exec = std::make_unique<TaskQueue>(
      std::max<std::uint32_t>(impl_->opts.workers, 1));
  impl_->rebuild_exec = std::make_unique<TaskQueue>(1);
  impl_->dispatcher = std::thread([this] { impl_->dispatcher_loop(); });
}

SolverService::~SolverService() {
  {
    MutexLock lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv_dispatch.notify_all();
  impl_->dispatcher.join();    // dispatches everything still queued
  impl_->exec->stop();         // runs every dispatched block to completion
  impl_->rebuild_exec->stop();  // rebuild tasks see `stopping` and abandon
}

StatusOr<SetupHandle> SolverService::Impl::add_setup_locked(
    std::shared_ptr<const SolverSetup> setup, const SetupFingerprint* fp) {
  if (stopping) {
    return UnavailableError("SolverService: shutting down");
  }
  std::uint64_t id = next_id++;
  Registration reg;
  reg.setup = std::move(setup);
  if (fp != nullptr) {
    reg.fp = *fp;
    reg.has_fp = true;
  }
  registry.emplace(id, std::move(reg));
  return SetupHandle{id};
}

StatusOr<SetupHandle> SolverService::Impl::add_setup(
    std::shared_ptr<const SolverSetup> setup) {
  if (!setup) {
    return InvalidArgumentError("SolverService: null setup");
  }
  MutexLock lock(mu);
  return add_setup_locked(std::move(setup));
}

template <typename BuildFn>
StatusOr<SetupHandle> SolverService::Impl::register_built(
    const SetupFingerprint& fp, const char* what, BuildFn&& build) {
  {
    MutexLock lock(mu);
    if (stopping) {
      return UnavailableError("SolverService: shutting down");
    }
    if (std::shared_ptr<const SolverSetup> cached = setup_cache.get(fp)) {
      ++counters.setup_cache_hits;
      return add_setup_locked(std::move(cached), &fp);
    }
    ++counters.setup_cache_misses;
  }
  std::shared_ptr<const SolverSetup> setup;
  try {
    setup = std::make_shared<const SolverSetup>(build());
  } catch (const std::exception& e) {
    // The setup phase still speaks exceptions for construction-time
    // failures; the service boundary translates them.
    return InvalidArgumentError(std::string(what) + ": " + e.what());
  }
  MutexLock lock(mu);
  setup_cache.put(fp, setup);
  return add_setup_locked(std::move(setup), &fp);
}

StatusOr<SetupHandle> SolverService::register_laplacian(
    std::uint32_t n, const EdgeList& edges, const SddSolverOptions& opts) {
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) {
      return InvalidArgumentError(
          "register_laplacian: edge endpoint out of range");
    }
  }
  return impl_->register_built(
      fingerprint_laplacian_setup(n, edges, opts), "register_laplacian",
      [&] { return SolverSetup::for_laplacian(n, edges, opts); });
}

StatusOr<SetupHandle> SolverService::register_sdd(
    const CsrMatrix& a, const SddSolverOptions& opts) {
  return impl_->register_built(fingerprint_sdd_setup(a, opts), "register_sdd",
                               [&] { return SolverSetup::for_sdd(a, opts); });
}

StatusOr<SetupHandle> SolverService::register_from_snapshot(
    const std::string& path) {
  StatusOr<SolverSetup> setup = SolverSetup::Load(path);
  if (!setup.ok()) return setup.status();
  return impl_->add_setup(
      std::make_shared<const SolverSetup>(std::move(*setup)));
}

Status SolverService::snapshot(SetupHandle handle,
                               const std::string& path) const {
  std::shared_ptr<const SolverSetup> setup;
  {
    MutexLock lock(impl_->mu);
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      return NotFoundError("snapshot: unknown handle " +
                           std::to_string(handle.id));
    }
    setup = it->second.setup;
  }
  // Serialization runs outside the service mutex: the setup is immutable
  // and the local shared_ptr keeps it alive even across an unregister.
  return setup->Save(path);
}

StatusOr<SetupHandle> SolverService::register_setup(
    std::shared_ptr<const SolverSetup> setup) {
  return impl_->add_setup(std::move(setup));
}

Status SolverService::unregister(SetupHandle handle) {
  MutexLock lock(impl_->mu);
  if (impl_->registry.erase(handle.id) == 0) {
    return NotFoundError("unregister: unknown handle " +
                         std::to_string(handle.id));
  }
  // Still-pending requests keep the queue slot alive; the dispatcher GCs
  // it after draining them.
  impl_->gc_queues(handle.id);
  return OkStatus();
}

StatusOr<SetupInfo> SolverService::info(SetupHandle handle) const {
  MutexLock lock(impl_->mu);
  auto it = impl_->registry.find(handle.id);
  if (it == impl_->registry.end()) {
    return NotFoundError("info: unknown handle " + std::to_string(handle.id));
  }
  SetupInfo out;
  const SolverSetup& s = *it->second.setup;
  out.dimension = s.dimension();
  out.components = s.num_components();
  out.chain_levels = s.chain_levels();
  out.chain_edges = s.chain_edges();
  out.precision = s.precision();
  out.update_seq = s.update_seq();
  out.stale_components = s.quality().stale_components;
  if (it->second.has_fp) {
    out.fingerprint_lo = it->second.fp.lo;
    out.fingerprint_hi = it->second.fp.hi;
  }
  return out;
}

namespace {
const char* precision_name(Precision p) {
  return p == Precision::kF32Refined ? "f32-refined" : "f64-bitwise";
}
}  // namespace

std::future<StatusOr<SolveResult>> SolverService::submit(
    SetupHandle handle, Vec b, std::optional<Precision> require) {
  std::promise<StatusOr<SolveResult>> promise;
  std::future<StatusOr<SolveResult>> future = promise.get_future();
  bool notify = false;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) {
      promise.set_value(UnavailableError("submit: shutting down"));
      return future;
    }
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      promise.set_value(
          NotFoundError("submit: unknown handle " + std::to_string(handle.id)));
      return future;
    }
    const std::shared_ptr<const SolverSetup>& setup = it->second.setup;
    if (b.size() != setup->dimension()) {
      promise.set_value(InvalidArgumentError(
          "submit: rhs has size " + std::to_string(b.size()) +
          ", setup has dimension " + std::to_string(setup->dimension())));
      return future;
    }
    if (require && *require != setup->precision()) {
      promise.set_value(InvalidArgumentError(
          std::string("submit: request requires ") + precision_name(*require) +
          " but the setup was built " + precision_name(setup->precision())));
      return future;
    }
    if (impl_->at_capacity()) {
      ++impl_->counters.rejected;
      promise.set_value(
          ResourceExhaustedError("submit: queue full (max_pending=" +
                                 std::to_string(impl_->opts.max_pending) +
                                 "), retry later"));
      return future;
    }
    impl_->queues[handle.id].singles.push_back(Impl::PendingSingle{
        setup, std::move(b), std::move(promise), Clock::now()});
    impl_->tokens.push_back(Impl::Token{handle.id, /*is_batch=*/false});
    ++impl_->queued;
    ++impl_->counters.submitted;
    notify = true;
  }
  if (notify) impl_->cv_dispatch.notify_all();
  return future;
}

std::future<StatusOr<BatchSolveResult>> SolverService::submit_batch(
    SetupHandle handle, MultiVec b, std::optional<Precision> require) {
  std::promise<StatusOr<BatchSolveResult>> promise;
  std::future<StatusOr<BatchSolveResult>> future = promise.get_future();
  bool notify = false;
  {
    MutexLock lock(impl_->mu);
    if (impl_->stopping) {
      promise.set_value(UnavailableError("submit_batch: shutting down"));
      return future;
    }
    auto it = impl_->registry.find(handle.id);
    if (it == impl_->registry.end()) {
      promise.set_value(NotFoundError("submit_batch: unknown handle " +
                                      std::to_string(handle.id)));
      return future;
    }
    if (b.cols() == 0) {
      promise.set_value(
          InvalidArgumentError("submit_batch: empty batch (k=0)"));
      return future;
    }
    const std::shared_ptr<const SolverSetup>& setup = it->second.setup;
    if (b.rows() != setup->dimension()) {
      promise.set_value(InvalidArgumentError(
          "submit_batch: block has " + std::to_string(b.rows()) +
          " rows, setup has dimension " + std::to_string(setup->dimension())));
      return future;
    }
    if (require && *require != setup->precision()) {
      promise.set_value(InvalidArgumentError(
          std::string("submit_batch: request requires ") +
          precision_name(*require) + " but the setup was built " +
          precision_name(setup->precision())));
      return future;
    }
    if (impl_->at_capacity()) {
      ++impl_->counters.rejected;
      promise.set_value(
          ResourceExhaustedError("submit_batch: queue full, retry later"));
      return future;
    }
    impl_->queues[handle.id].batches.push_back(Impl::PendingBatch{
        setup, std::move(b), std::move(promise), handle.id});
    impl_->tokens.push_back(Impl::Token{handle.id, /*is_batch=*/true});
    ++impl_->queued;
    ++impl_->counters.submitted;
    notify = true;
  }
  if (notify) impl_->cv_dispatch.notify_all();
  return future;
}

void SolverService::drain() {
  MutexLock lock(impl_->mu);
  while (impl_->queued != 0 || impl_->in_flight != 0 ||
         impl_->rebuilds_inflight_n != 0) {
    impl_->cv_idle.wait(lock);
  }
}

ServiceStats SolverService::stats() const {
  MutexLock lock(impl_->mu);
  ServiceStats out = impl_->counters;
  out.queue_depth = impl_->queued;
  out.in_flight_cols = impl_->in_flight;
  out.in_flight_blocks = impl_->in_flight_blocks;
  out.rebuilds_in_flight = impl_->rebuilds_inflight_n;
  for (const auto& [id, q] : impl_->queues) {
    std::uint64_t pending = q.singles.size() + q.batches.size();
    if (pending != 0) out.per_handle_pending.emplace_back(id, pending);
  }
  return out;
}

void SolverService::Impl::dispatcher_loop() {
  MutexLock lock(mu);
  for (;;) {
    while (!stopping && tokens.empty()) cv_dispatch.wait(lock);
    if (tokens.empty()) {
      if (stopping) return;  // fully drained
      continue;
    }
    Token token = tokens.front();
    tokens.pop_front();
    auto qit = queues.find(token.id);
    if (qit == queues.end()) continue;
    // Collect under the lock, post outside it: the unlock/relock pair lives
    // in the same scope as the MutexLock so the thread-safety analysis can
    // track the scoped release (and the dispatcher never holds the service
    // mutex across an executor hand-off).
    if (token.is_batch) {
      if (std::shared_ptr<PendingBatch> job = take_batch(qit->second.batches)) {
        lock.Unlock();
        post_batch(std::move(job));
        lock.Lock();
      }
    } else {
      if (std::shared_ptr<SingleBlockJob> job =
              collect_singles(lock, token.id, qit->second.singles)) {
        lock.Unlock();
        post_single_block(std::move(job));
        lock.Lock();
      }
    }
    gc_queues(token.id);
  }
}

bool SolverService::Impl::other_handle_waiting(std::uint64_t id) const {
  for (const Token& t : tokens) {
    if (t.id != id) return true;
  }
  return false;
}

std::shared_ptr<SolverService::Impl::SingleBlockJob>
SolverService::Impl::collect_singles(MutexLock& lock, std::uint64_t id,
                                     std::deque<PendingSingle>& singles) {
  if (singles.empty()) return nullptr;  // stale ticket: already coalesced
  if (opts.coalesce && opts.max_linger_us > 0) {
    // Let the block fill: wait (lock released) until max_batch columns are
    // pending or the oldest request has lingered its budget.  Shutdown cuts
    // the linger short so teardown never waits on the clock, and pending
    // work for ANY OTHER handle cuts it short too — the single dispatcher
    // must not head-of-line block handle B behind handle A's linger window
    // (requests for the same handle only push same-id tickets, so the hot
    // single-handle burst still coalesces fully).
    Clock::time_point deadline =
        singles.front().arrival + std::chrono::microseconds(opts.max_linger_us);
    while (!stopping && singles.size() < opts.max_batch &&
           Clock::now() < deadline && !other_handle_waiting(id)) {
      cv_dispatch.wait_until(lock, deadline);
    }
  }
  std::size_t take =
      opts.coalesce ? std::min<std::size_t>(singles.size(), opts.max_batch)
                    : 1;
  auto job = std::make_shared<SingleBlockJob>();
  job->setup = singles.front().setup;
  job->handle_id = id;
  job->reqs.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    job->reqs.push_back(std::move(singles.front()));
    singles.pop_front();
  }
  queued -= take;
  in_flight += take;
  ++in_flight_blocks;
  ++counters.dispatched_blocks;
  counters.dispatched_cols += take;
  return job;
}

std::shared_ptr<SolverService::Impl::PendingBatch>
SolverService::Impl::take_batch(std::deque<PendingBatch>& batches) {
  if (batches.empty()) return nullptr;
  auto job = std::make_shared<PendingBatch>(std::move(batches.front()));
  batches.pop_front();
  --queued;
  ++in_flight;
  ++in_flight_blocks;
  ++counters.dispatched_blocks;
  counters.dispatched_cols += job->b.cols();
  return job;
}

void SolverService::Impl::post_single_block(
    std::shared_ptr<SingleBlockJob> job) {
  bool posted = exec->post([this, job] {
    execute_single_block(*job);
    maybe_quality_rebuild(job->handle_id, job->setup);
    finish(job->reqs.size());
  });
  if (!posted) {
    for (PendingSingle& r : job->reqs) {
      r.promise.set_value(UnavailableError("service stopped"));
    }
    finish(job->reqs.size());
  }
}

void SolverService::Impl::post_batch(std::shared_ptr<PendingBatch> job) {
  bool posted = exec->post([this, job] {
    BatchSolveReport report;
    StatusOr<MultiVec> x = job->setup->solve_batch(job->b, &report);
    if (x.ok()) {
      job->promise.set_value(
          BatchSolveResult{std::move(*x), std::move(report)});
    } else {
      job->promise.set_value(x.status());
    }
    maybe_quality_rebuild(job->handle_id, job->setup);
    finish(1);
  });
  if (!posted) {
    job->promise.set_value(UnavailableError("service stopped"));
    finish(1);
  }
}

void SolverService::Impl::execute_single_block(SingleBlockJob& job) {
  std::size_t k = job.reqs.size();
  std::uint32_t n = job.setup->dimension();
  MultiVec b(n, k);
  for (std::size_t c = 0; c < k; ++c) {
    b.set_column(c, job.reqs[c].b);
  }
  BatchSolveReport report;
  StatusOr<MultiVec> x = job.setup->solve_batch(b, &report);
  if (!x.ok()) {
    // Cannot happen for requests validated at submit; surface it anyway.
    for (PendingSingle& r : job.reqs) r.promise.set_value(x.status());
    return;
  }
  for (std::size_t c = 0; c < k; ++c) {
    SolveResult res;
    res.x = x->column(c);
    res.stats = report.column_stats[c];
    res.coalesced_cols = static_cast<std::uint32_t>(k);
    job.reqs[c].promise.set_value(std::move(res));
  }
}

void SolverService::Impl::finish(std::size_t count) {
  {
    MutexLock lock(mu);
    in_flight -= count;
    --in_flight_blocks;  // every finish() answers exactly one block
    counters.completed += count;
  }
  cv_idle.notify_all();
}

StatusOr<UpdateAck> SolverService::update(SetupHandle handle,
                                          const std::vector<EdgeDelta>& deltas) {
  return impl_->apply_update(handle.id, deltas);
}

StatusOr<UpdateAck> SolverService::Impl::apply_update(
    std::uint64_t id, const std::vector<EdgeDelta>& deltas) {
  // Serialize updaters: synchronous batches apply in call order, and at
  // most one caller at a time builds an updated setup.  The rebuild thread
  // and the quality monitor take only `mu`, so they stay live while an
  // updater builds outside both locks.
  MutexLock ulock(update_mu);
  std::shared_ptr<const SolverSetup> base;
  bool behind_rebuild = false;
  {
    MutexLock lock(mu);
    if (stopping) return UnavailableError("update: shutting down");
    auto it = registry.find(id);
    if (it == registry.end()) {
      return NotFoundError("update: unknown handle " + std::to_string(id));
    }
    base = it->second.setup;
    behind_rebuild = it->second.rebuild_inflight;
  }
  for (;;) {
    StatusOr<UpdateTier> tier = base->plan_update(deltas);
    if (!tier.ok()) return tier.status();
    if (behind_rebuild) {
      // An async rebuild is already absorbing this handle's deltas.  The
      // batch was validated against the current serving setup (best
      // effort: the rebuild may still reject it when replaying against its
      // own result) and queues for that rebuild to replay before the swap.
      MutexLock lock(mu);
      if (stopping) return UnavailableError("update: shutting down");
      auto it = registry.find(id);
      if (it == registry.end()) {
        return NotFoundError("update: unknown handle " + std::to_string(id));
      }
      if (!it->second.rebuild_inflight) {
        // The rebuild finished while we validated; apply directly.
        base = it->second.setup;
        behind_rebuild = false;
        continue;
      }
      it->second.pending_deltas.insert(it->second.pending_deltas.end(),
                                       deltas.begin(), deltas.end());
      ++counters.updates_deferred;
      UpdateAck ack;
      ack.tier = *tier;
      ack.deferred = true;
      ack.rebuild_scheduled = true;
      return ack;
    }
    if (*tier != UpdateTier::kStaleChain) {
      // Structural: hand the batch to the rebuild thread.  Solves keep
      // dispatching against the old setup until the rebuilt one swaps in.
      bool schedule = false;
      {
        MutexLock lock(mu);
        if (stopping) return UnavailableError("update: shutting down");
        auto it = registry.find(id);
        if (it == registry.end()) {
          return NotFoundError("update: unknown handle " + std::to_string(id));
        }
        it->second.pending_deltas.insert(it->second.pending_deltas.end(),
                                         deltas.begin(), deltas.end());
        if (it->second.rebuild_inflight) {
          // A quality rebuild started since our snapshot; it replays the
          // queued batch before swapping.
          ++counters.updates_deferred;
        } else {
          it->second.rebuild_inflight = true;
          ++rebuilds_inflight_n;
          schedule = true;
        }
      }
      if (schedule) post_rebuild(id);
      UpdateAck ack;
      ack.tier = *tier;
      ack.deferred = !schedule;
      ack.rebuild_scheduled = true;
      return ack;
    }
    // Stale-chain tier: build the updated setup outside every lock, then
    // swap it in atomically under `mu`.
    StatusOr<SolverSetup> next = base->update(deltas);
    if (!next.ok()) return next.status();
    auto next_sp = std::make_shared<const SolverSetup>(std::move(*next));
    {
      MutexLock lock(mu);
      if (stopping) return UnavailableError("update: shutting down");
      auto it = registry.find(id);
      if (it == registry.end()) {
        return NotFoundError("update: unknown handle " + std::to_string(id));
      }
      if (it->second.rebuild_inflight) {
        // A quality rebuild started while we built: our result would race
        // its swap (lost-update), so defer the batch to it instead.
        it->second.pending_deltas.insert(it->second.pending_deltas.end(),
                                         deltas.begin(), deltas.end());
        ++counters.updates_deferred;
        UpdateAck ack;
        ack.tier = *tier;
        ack.deferred = true;
        ack.rebuild_scheduled = true;
        return ack;
      }
      if (it->second.setup != base) {
        // A rebuild swapped in between our snapshot and now; redo the
        // apply against the fresh setup.
        base = it->second.setup;
        behind_rebuild = false;
        continue;
      }
      it->second.setup = next_sp;
      if (it->second.has_fp) {
        it->second.fp = extend_fingerprint(it->second.fp, deltas);
      }
      ++counters.updates_applied;
    }
    UpdateAck ack;
    ack.tier = *tier;
    ack.update_seq = next_sp->update_seq();
    return ack;
  }
}

void SolverService::Impl::post_rebuild(std::uint64_t id) {
  bool posted = rebuild_exec->post([this, id] { run_rebuild(id); });
  if (posted) return;
  // The queue already stopped: unwind the in-flight marker so drain() and
  // the destructor do not wait on a rebuild that will never run.
  {
    MutexLock lock(mu);
    auto it = registry.find(id);
    if (it != registry.end()) {
      it->second.rebuild_inflight = false;
      it->second.refresh_requested = false;
      it->second.pending_deltas.clear();
    }
    --rebuilds_inflight_n;
  }
  cv_idle.notify_all();
}

void SolverService::Impl::run_rebuild(std::uint64_t id) {
  Clock::time_point t0 = Clock::now();
  for (;;) {
    std::shared_ptr<const SolverSetup> base;
    std::vector<EdgeDelta> batch;
    bool refresh = false;
    {
      MutexLock lock(mu);
      auto it = registry.find(id);
      if (stopping || it == registry.end()) {
        // Teardown or unregistered mid-rebuild: abandon.
        if (it != registry.end()) {
          it->second.rebuild_inflight = false;
          it->second.refresh_requested = false;
          it->second.pending_deltas.clear();
        }
        --rebuilds_inflight_n;
        break;
      }
      Registration& reg = it->second;
      if (reg.pending_deltas.empty() && !reg.refresh_requested) {
        // Everything absorbed: the rebuild is complete.
        reg.rebuild_inflight = false;
        --rebuilds_inflight_n;
        ++counters.rebuilds_completed;
        counters.last_rebuild_ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                  t0)
                .count());
        break;
      }
      base = reg.setup;
      batch.swap(reg.pending_deltas);
      refresh = reg.refresh_requested;
      reg.refresh_requested = false;
    }
    // Build outside the locks; solves keep dispatching against `base`.
    std::shared_ptr<const SolverSetup> next;
    bool batch_applied = !batch.empty();
    try {
      if (refresh) {
        SolverSetup fresh = base->rebuild();
        if (!batch.empty()) {
          StatusOr<SolverSetup> up = fresh.update(batch);
          if (up.ok()) {
            next = std::make_shared<const SolverSetup>(std::move(*up));
          } else {
            // Keep the fresh re-setup, drop the unreplayable batch.
            next = std::make_shared<const SolverSetup>(std::move(fresh));
            batch_applied = false;
            MutexLock lock(mu);
            ++counters.rebuild_failures;
          }
        } else {
          next = std::make_shared<const SolverSetup>(std::move(fresh));
        }
      } else {
        StatusOr<SolverSetup> up = base->update(batch);
        if (!up.ok()) {
          MutexLock lock(mu);
          ++counters.rebuild_failures;
          continue;  // batch dropped; loop to absorb anything newer
        }
        next = std::make_shared<const SolverSetup>(std::move(*up));
      }
    } catch (const std::exception&) {
      MutexLock lock(mu);
      ++counters.rebuild_failures;
      continue;
    }
    {
      MutexLock lock(mu);
      auto it = registry.find(id);
      if (it == registry.end()) {
        --rebuilds_inflight_n;
        break;
      }
      // The atomic swap: submits from here on snapshot the rebuilt setup;
      // requests already in flight finish against the old one (they hold
      // their own shared_ptr), so no in-flight solve can fail.
      it->second.setup = next;
      if (it->second.has_fp && batch_applied) {
        it->second.fp = extend_fingerprint(it->second.fp, batch);
      }
      if (batch_applied) ++counters.updates_applied;
    }
    // Loop: absorb batches that arrived while building, then complete.
  }
  cv_idle.notify_all();
}

void SolverService::Impl::maybe_quality_rebuild(
    std::uint64_t id, const std::shared_ptr<const SolverSetup>& setup) {
  if (opts.stale_rebuild_factor <= 0.0 || id == 0) return;
  SetupQuality q = setup->quality();
  if (q.stale_components == 0 || q.baseline_iterations == 0) return;
  if (q.drift < opts.stale_rebuild_factor) return;
  bool schedule = false;
  {
    MutexLock lock(mu);
    if (stopping) return;
    auto it = registry.find(id);
    // Only rebuild what is still serving: the handle must exist, still
    // point at the setup whose drift we measured, and not already be
    // rebuilding.
    if (it == registry.end() || it->second.setup != setup ||
        it->second.rebuild_inflight) {
      return;
    }
    it->second.rebuild_inflight = true;
    it->second.refresh_requested = true;
    ++rebuilds_inflight_n;
    ++counters.quality_rebuilds;
    schedule = true;
  }
  if (schedule) post_rebuild(id);
}

}  // namespace parsdd
