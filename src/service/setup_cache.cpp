#include "service/setup_cache.h"

#include <cstring>

#include "util/serialize.h"

namespace parsdd {

namespace {

// Field-by-field mixing (serialize::fnv1a64 over each value's bytes) rather
// than hashing a struct image: struct padding holds indeterminate bytes and
// would make equal inputs fingerprint differently.  Two independently
// seeded lanes feed the 128-bit SetupFingerprint a hit must fully match.
class Mix {
 public:
  template <typename T>
  Mix& operator<<(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(v));
    return *this;
  }
  /// Bulk ingestion: one hash pass per lane over the whole buffer, which is
  /// what lets fnv1a64's 4-lane word path carry the O(m) graph content —
  /// the cache-hit fast path must not hash millions of edges field by field.
  Mix& bytes(const void* data, std::size_t size) {
    lo_ = serialize::fnv1a64(data, size, lo_);
    hi_ = serialize::fnv1a64(data, size, hi_);
    return *this;
  }
  SetupFingerprint hash() const { return SetupFingerprint{lo_, hi_}; }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ull;
  std::uint64_t hi_ = 0x6c62272e07bb0142ull;
};

void mix_options(Mix& m, const SddSolverOptions& o) {
  m << o.tolerance << o.max_iterations << static_cast<std::uint32_t>(o.method)
    << static_cast<std::uint8_t>(o.precision);
  const ChainOptions& c = o.chain;
  m << c.seed << static_cast<std::uint32_t>(c.mode) << c.kappa
    << c.kappa_growth << c.bottom_size << c.max_levels << c.oversample
    << c.p_floor << c.subgraph_scale << c.lambda << c.theta << c.subgraph_y
    << c.subgraph_z;
  const RecursiveSolverOptions& r = o.recursion;
  m << static_cast<std::uint32_t>(r.inner) << r.inner_tolerance
    << r.inner_max_iterations << r.inner_iterations << r.kappa_cap
    << r.power_iterations << r.lambda_max_margin << r.seed;
}

}  // namespace

SetupFingerprint fingerprint_laplacian_setup(std::uint32_t n,
                                             const EdgeList& edges,
                                             const SddSolverOptions& opts) {
  Mix m;
  m << std::uint8_t{0x4c}  // 'L': laplacian-vs-sdd registrations never alias
    << n << static_cast<std::uint64_t>(edges.size());
  // Edge has struct padding, so the image cannot be hashed directly; the
  // shared pack_edges buffers can, one bulk pass per lane.
  std::vector<std::uint32_t> endpoints;
  std::vector<double> weights;
  pack_edges(edges, endpoints, weights);
  m.bytes(endpoints.data(), endpoints.size() * sizeof(std::uint32_t));
  m.bytes(weights.data(), weights.size() * sizeof(double));
  mix_options(m, opts);
  return m.hash();
}

SetupFingerprint fingerprint_sdd_setup(const CsrMatrix& a,
                                       const SddSolverOptions& opts) {
  Mix m;
  m << std::uint8_t{0x41}  // 'A'
    << a.dimension() << static_cast<std::uint64_t>(a.num_nonzeros());
  for (std::uint32_t i = 0; i < a.dimension(); ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    // The row length delimits the concatenated streams, so two matrices
    // with equal nonzeros split across different rows never alias.
    m << static_cast<std::uint64_t>(cols.size());
    m.bytes(cols.data(), cols.size() * sizeof(std::uint32_t));
    m.bytes(vals.data(), vals.size() * sizeof(double));
  }
  mix_options(m, opts);
  return m.hash();
}

SetupFingerprint extend_fingerprint(const SetupFingerprint& base,
                                    const std::vector<EdgeDelta>& deltas) {
  Mix m;
  m << std::uint8_t{0x55}  // 'U': an update chain never aliases a build
    << base.lo << base.hi << static_cast<std::uint64_t>(deltas.size());
  for (const EdgeDelta& d : deltas) {
    m << d.u << d.v << d.w;
  }
  return m.hash();
}

std::shared_ptr<const SolverSetup> SetupCache::get(const SetupFingerprint& key) {
  auto it = index_.find(slot(key));
  if (it == index_.end() || it->second->first != key) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return lru_.front().second;
}

void SetupCache::put(const SetupFingerprint& key,
                     std::shared_ptr<const SolverSetup> setup) {
  if (capacity_ == 0 || !setup) return;
  auto it = index_.find(slot(key));
  if (it != index_.end()) {
    // Same slot: refresh on a true match, replace on the (vanishingly
    // rare) slot collision — the full fingerprint stored in the entry is
    // what get() trusts, so a replaced entry can never be served wrongly.
    it->second->first = key;
    it->second->second = std::move(setup);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(setup));
  index_.emplace(slot(key), lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(slot(lru_.back().first));
    lru_.pop_back();
  }
}

}  // namespace parsdd
