// SolverService: the asynchronous serving front door.
//
// PR 1 made batching the fast path — solve_batch amortizes each chain
// traversal (Definition 6.3) across k right-hand sides — but only callers
// who hand-assemble a MultiVec block get the win.  A serving workload is
// the opposite shape: many independent clients, each asking for ONE solve.
// SolverService closes that gap with dynamic micro-batching:
//
//   1. register_*() builds a SolverSetup once and returns an opaque
//      SetupHandle; the registry owns the setup, clients own the handle.
//   2. submit(handle, b) enqueues a single-RHS request from any thread and
//      returns a std::future immediately.
//   3. A dispatcher thread coalesces the single-RHS requests pending
//      against the same handle into one solve_batch block (bounded by
//      max_batch columns and max_linger_us of waiting), then hands the
//      block to executor threads (parallel/task_queue.h) so it can keep
//      collecting the next block while the solve runs.
//
// Setup builds themselves are amortized two further ways (PR 5):
//
//   * an LRU SetupCache (service/setup_cache.h) keyed by a fingerprint of
//     the graph + build options answers repeat register_laplacian /
//     register_sdd calls with the already-built setup — each registration
//     still gets its own handle, but the chain is built once;
//   * snapshot(handle, path) persists a registered setup as a versioned
//     binary snapshot (SolverSetup::Save), and register_from_snapshot(path)
//     warm-starts a fresh process from it, skipping the build entirely
//     while answering bitwise-identically (the persistence contract
//     test_persistence locks in).
//
// Because column c of a solve_batch performs the exact arithmetic sequence
// of an independent solve (multivec.h determinism contract), coalescing is
// invisible to clients: every future resolves to the bitwise-identical
// vector an isolated solve() would have produced — only sooner.
//
// All failures are typed Status values delivered through the future (or
// returned directly from registration): InvalidArgument for malformed
// requests, NotFound for stale handles, ResourceExhausted for queue
// backpressure, Unavailable once shutdown has begun.  The service never
// throws and never aborts on client input.  See DESIGN.md, "Service
// dispatch" for the queueing model.
//
// Locking model: one service Mutex (util/thread_annotations.h) guards the
// registry, the per-handle queues, the ticket FIFO, the pipeline counters,
// and the SetupCache; every guarded member and lock-requiring helper in the
// Impl carries clang thread-safety annotations, so the discipline is
// enforced at compile time under -Wthread-safety (DESIGN.md §7 has the full
// mutex → state → tool matrix).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/multivec.h"
#include "solver/solver_setup.h"
#include "util/status.h"

namespace parsdd {

class TaskQueue;

/// Opaque ticket for a registered SolverSetup.  Copyable, trivially
/// shareable between threads; id 0 is never issued.
struct SetupHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

struct ServiceOptions {
  /// Most columns a dispatched block may carry.
  std::uint32_t max_batch = 64;
  /// How long the dispatcher lets a non-full block linger, measured from
  /// the arrival of its oldest request, waiting for co-batchable requests.
  /// 0 dispatches immediately with whatever is pending.
  std::uint32_t max_linger_us = 200;
  /// Queued-request cap across all handles; beyond it submits are rejected
  /// with ResourceExhausted (shed load at the door, not in the kernels).
  std::size_t max_pending = 4096;
  /// Executor threads running the dispatched solve_batch blocks.
  std::uint32_t workers = 1;
  /// When false every request is dispatched as its own 1-column block —
  /// the "no micro-batching" baseline bench_service measures against.
  bool coalesce = true;
  /// Built setups kept for fingerprint-matched reuse across registrations
  /// (service/setup_cache.h); 0 disables the cache.  Snapshot-loaded
  /// setups bypass it (their build inputs are not known to the service).
  std::size_t setup_cache_capacity = 8;
  /// Stale-chain quality threshold (DESIGN.md §10): when a handle that took
  /// weight-only updates sees its outer-CG iteration count drift to >= this
  /// factor times the fresh-chain baseline, the service schedules an async
  /// full rebuild (fresh chains, reset baseline) that swaps in atomically
  /// while the stale setup keeps serving.  <= 0 disables the monitor.
  double stale_rebuild_factor = 2.0;
};

/// One client's answer: the solution column plus its iteration stats and
/// how many columns shared the dispatched block (1 = rode alone).
struct SolveResult {
  Vec x;
  IterStats stats;
  std::uint32_t coalesced_cols = 1;
};

/// Answer for an explicit submit_batch request.
struct BatchSolveResult {
  MultiVec x;
  BatchSolveReport report;
};

/// Counters and gauges; read with stats() at any time.  The first block is
/// monotone; the gauges below it are instantaneous values sampled under the
/// service mutex at the stats() call — the load signal the distributed
/// coordinator (dist/coordinator.h) reads per worker to drive rebalancing.
struct ServiceStats {
  std::uint64_t submitted = 0;          // accepted requests (single + batch)
  std::uint64_t rejected = 0;           // backpressure rejections
  std::uint64_t completed = 0;          // requests answered (incl. errors)
  std::uint64_t dispatched_blocks = 0;  // solve_batch calls issued
  std::uint64_t dispatched_cols = 0;    // columns across those blocks
  std::uint64_t setup_cache_hits = 0;   // registrations served from cache
  std::uint64_t setup_cache_misses = 0;  // registrations that built a setup
  std::uint64_t updates_applied = 0;    // delta batches absorbed into serving
  std::uint64_t updates_deferred = 0;   // batches queued behind a rebuild
  std::uint64_t rebuilds_completed = 0;  // async rebuilds swapped in
  std::uint64_t quality_rebuilds = 0;   // rebuilds the drift monitor started
  std::uint64_t rebuild_failures = 0;   // delta batches dropped by a rebuild
  std::uint64_t last_rebuild_ms = 0;    // duration of the last swap-in
  // Live gauges (not monotone).
  std::uint64_t queue_depth = 0;       // accepted, not yet dispatched
  std::uint64_t in_flight_cols = 0;    // dispatched, not yet answered
  std::uint64_t in_flight_blocks = 0;  // solve_batch blocks executing now
  std::uint64_t rebuilds_in_flight = 0;  // async rebuilds running now
  /// Queued (undispatched) requests per handle, ascending handle id;
  /// handles with nothing queued are omitted.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> per_handle_pending;
};

/// Shape summary of a registered setup.
struct SetupInfo {
  std::uint32_t dimension = 0;
  std::uint32_t components = 0;
  std::uint32_t chain_levels = 0;
  std::size_t chain_edges = 0;
  /// Arithmetic contract of the setup (solver_setup.h); clients that care
  /// about bitwise reproducibility check this — or pin it per request with
  /// submit's `require` parameter.
  Precision precision = Precision::kF64Bitwise;
  /// Deltas absorbed via update() since the setup was first built.
  std::uint64_t update_seq = 0;
  /// Components currently preconditioned by a stale chain (quality monitor).
  std::uint32_t stale_components = 0;
  /// The handle's current 128-bit fingerprint (setup_cache.h), extended by
  /// every absorbed delta batch so an updated handle never aliases its
  /// pre-update cache entry.  Both zero when the service has no fingerprint
  /// for the handle (register_setup / register_from_snapshot paths).
  std::uint64_t fingerprint_lo = 0;
  std::uint64_t fingerprint_hi = 0;
};

/// What SolverService::update did with a delta batch.
struct UpdateAck {
  /// The tier the batch classified as (solver_setup.h).
  UpdateTier tier = UpdateTier::kStaleChain;
  /// True when an async rebuild was already absorbing this handle's deltas:
  /// the batch was validated, queued, and will be replayed by that rebuild
  /// before it swaps in — update_seq below is 0 (unknown until the swap).
  bool deferred = false;
  /// True when this call left an async rebuild running (structural batch or
  /// deferred behind one); solves keep running against the old setup until
  /// the rebuilt one swaps in atomically (drain() waits for the swap).
  bool rebuild_scheduled = false;
  /// The handle's update_seq after the batch was absorbed (synchronous
  /// stale-chain tier only; 0 when the apply is asynchronous).
  std::uint64_t update_seq = 0;
};

class SolverService {
 public:
  explicit SolverService(const ServiceOptions& opts = {});
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;
  /// Stops intake, answers every queued request, joins all threads.
  ~SolverService();

  /// Builds a SolverSetup for the Laplacian of (V=[0,n), edges) and
  /// registers it.  InvalidArgument on out-of-range edge endpoints.
  StatusOr<SetupHandle> register_laplacian(std::uint32_t n,
                                           const EdgeList& edges,
                                           const SddSolverOptions& opts = {});

  /// Builds a SolverSetup for a general SDD matrix and registers it.
  StatusOr<SetupHandle> register_sdd(const CsrMatrix& a,
                                     const SddSolverOptions& opts = {});

  /// Adopts an existing setup (e.g. from SddSolver::shared_setup()).
  StatusOr<SetupHandle> register_setup(
      std::shared_ptr<const SolverSetup> setup);

  /// Warm-start: loads a SolverSetup snapshot (SolverSetup::Load) and
  /// registers it — a restarted server resumes serving a graph without
  /// rebuilding its chain.  NotFound for a missing file, InvalidArgument
  /// for a corrupt/mismatched one.
  StatusOr<SetupHandle> register_from_snapshot(const std::string& path);

  /// Persists a registered setup as a snapshot a later
  /// register_from_snapshot (any process) can load.  NotFound for stale
  /// handles.
  Status snapshot(SetupHandle handle, const std::string& path) const;

  /// Drops the handle.  In-flight and queued requests against it still
  /// complete (they hold their own reference to the setup); new submits
  /// get NotFound.
  Status unregister(SetupHandle handle);

  /// Shape of a registered setup; NotFound for stale handles.
  StatusOr<SetupInfo> info(SetupHandle handle) const;

  /// Enqueues one right-hand side.  The future resolves to the solution
  /// (bitwise identical to an isolated solve of b) or to a Status error.
  /// Never blocks on the solve; may briefly take the service mutex.
  /// `require` pins the arithmetic contract: a request that requires a
  /// precision the handle's setup was not built with is refused up front
  /// with InvalidArgument (nullopt accepts any).
  std::future<StatusOr<SolveResult>> submit(
      SetupHandle handle, Vec b,
      std::optional<Precision> require = std::nullopt);

  /// Enqueues a pre-assembled k-column block; dispatched as its own
  /// solve_batch (already amortized — no re-coalescing).  `require` as in
  /// submit().
  std::future<StatusOr<BatchSolveResult>> submit_batch(
      SetupHandle handle, MultiVec b,
      std::optional<Precision> require = std::nullopt);

  /// Applies a dynamic edge-delta batch to a registered handle (ROADMAP
  /// item 4; DESIGN.md §10).  Weight-only batches apply synchronously on
  /// the stale-chain tier — the handle keeps its preconditioner chains and
  /// only the measured Laplacian changes, so no solve ever waits on a
  /// rebuild.  Structural batches (or batches arriving while a rebuild is
  /// in flight) are absorbed by an async rebuild on a dedicated thread;
  /// in-flight and future solves keep using the old setup until the new one
  /// swaps in atomically under the registry mutex.  Updated handles get an
  /// extended fingerprint and are never inserted into the setup cache, so a
  /// stale pre-update cache entry can never be served for this handle (nor
  /// the updated setup for a fresh registration of the original graph).
  /// Errors: NotFound for stale handles, InvalidArgument for malformed
  /// deltas or a Gremban-lifted SDD setup, Unavailable during shutdown.
  StatusOr<UpdateAck> update(SetupHandle handle,
                             const std::vector<EdgeDelta>& deltas);

  /// Blocks until every accepted request has been answered and every async
  /// rebuild has swapped in (or been abandoned).
  void drain();

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace parsdd
