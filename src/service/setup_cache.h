// SetupCache: fingerprint-keyed LRU reuse of built SolverSetups.
//
// Registering a graph with SolverService pays the full chain build — the
// expensive half of the setup/solve split.  Serving workloads re-register
// the same graph constantly (a client reconnects, a shard restarts, two
// tenants query the same mesh), so the service keys every built setup by a
// fingerprint of exactly the inputs that determine the build — the edge
// list (or SDD matrix) and the complete option set, every field of which
// feeds the deterministic chain construction — and answers a repeat
// registration from the cache instead of rebuilding.  Handles stay
// per-registration; only the immutable SolverSetup behind them is shared,
// which is safe because setups are read-only after construction (the
// concurrency contract solver_setup.h already guarantees).
//
// The cache holds shared_ptrs, so eviction or service shutdown never
// invalidates a handle that is still registered: the registry's reference
// keeps the setup alive.  Not internally synchronized — the service embeds
// it as a PARSDD_GUARDED_BY(mu) member (solver_service.cpp), so under
// clang's thread-safety analysis every get/put is compile-time checked to
// run with the service mutex held; a second consumer that wants concurrent
// access must bring its own annotated mutex.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "solver/solver_setup.h"

namespace parsdd {

/// A 128-bit build-input digest: two independently seeded FNV-1a-style
/// lanes over the same field stream.  A cache hit requires both lanes to
/// match, so serving a setup for the *wrong* graph needs a simultaneous
/// collision in two independent 64-bit hashes (~2^-128 for accidental
/// inputs).  The hash is not cryptographic: a deliberately adversarial
/// client could still construct collisions, so deployments serving
/// mutually untrusted tenants should run them against separate services
/// (or set setup_cache_capacity = 0).
struct SetupFingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  friend bool operator==(const SetupFingerprint& a,
                         const SetupFingerprint& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const SetupFingerprint& a,
                         const SetupFingerprint& b) {
    return !(a == b);
  }
};

/// Build-input fingerprints over the graph (or matrix) content and every
/// SddSolverOptions field — exactly the inputs that determine the
/// deterministic chain build.
SetupFingerprint fingerprint_laplacian_setup(std::uint32_t n,
                                             const EdgeList& edges,
                                             const SddSolverOptions& opts);
SetupFingerprint fingerprint_sdd_setup(const CsrMatrix& a,
                                       const SddSolverOptions& opts);

/// Fingerprint of a setup after a dynamic update (solver_setup.h): the
/// pre-update fingerprint chained with the delta stream.  Deterministic —
/// the same base and deltas always extend to the same value — and never
/// equal to the base for a non-empty batch, so an updated handle can never
/// alias its pre-update cache entry (the service tracks the extended value
/// per handle and surfaces it via SetupInfo; updated setups are never
/// inserted into the cache).
SetupFingerprint extend_fingerprint(const SetupFingerprint& base,
                                    const std::vector<EdgeDelta>& deltas);

class SetupCache {
 public:
  /// capacity 0 disables caching (get always misses, put is a no-op).
  explicit SetupCache(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the cached setup and marks it most-recently-used, or nullptr.
  /// Both fingerprint lanes must match; a same-slot entry with a different
  /// full fingerprint is a miss, never a false hit.
  std::shared_ptr<const SolverSetup> get(const SetupFingerprint& key);

  /// Inserts (or refreshes) the mapping, evicting the least-recently-used
  /// entry beyond capacity.
  void put(const SetupFingerprint& key,
           std::shared_ptr<const SolverSetup> setup);

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  using Entry =
      std::pair<SetupFingerprint, std::shared_ptr<const SolverSetup>>;
  static std::uint64_t slot(const SetupFingerprint& key) {
    return key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull);
  }
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace parsdd
