// Dense multi-vectors: k right-hand sides / iterates stored as an n x k
// row-major block, plus the batched BLAS-1 kernels the block solvers need.
//
// Layout rationale: one row holds entry i of every column contiguously, so
// an SpMM (csr_matrix.h) streams the matrix structure ONCE for all k
// columns and the inner k-loop vectorizes over adjacent doubles.  This is
// the amortization behind the setup-once / solve-many serving pattern: a
// batch of solves shares each traversal of the matrix instead of
// re-streaming it per RHS.
//
// Determinism contract: every kernel reduces over rows in the same order and
// with the same block structure regardless of k, so column c of a batched
// solve performs the exact arithmetic sequence of an independent single
// solve of that column.  test_batch_solve relies on this.
//
// The free-function kernels declared here are DEPRECATED forwarding
// wrappers: the sanctioned entry points live in kernels/kernels.h
// (parsdd::kernels::), which dispatch to the SIMD backend selected at
// startup.  They remain so external callers keep compiling; in-tree code
// has migrated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector_ops.h"

namespace parsdd {

class MultiVec {
 public:
  MultiVec() = default;
  // Explicit so brace-enclosed vector literals keep resolving to Vec in
  // overload sets like CsrMatrix::apply.
  explicit MultiVec(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static MultiVec from_columns(const std::vector<Vec>& columns);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  void assign(std::size_t rows, std::size_t cols, double fill) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  double& at(std::size_t i, std::size_t c) { return data_[i * cols_ + c]; }
  double at(std::size_t i, std::size_t c) const {
    return data_[i * cols_ + c];
  }

  Vec column(std::size_t c) const;
  void set_column(std::size_t c, const Vec& v);

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Single-precision multi-vector, same row-major layout as MultiVec.  Used
/// only by the opt-in mixed-precision preconditioner path
/// (Precision::kF32Refined): the fp32 chain applies at half the memory
/// traffic and twice the SIMD width, inside an fp64 outer iteration.
class MultiVec32 {
 public:
  MultiVec32() = default;
  explicit MultiVec32(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  void assign(std::size_t rows, std::size_t cols, float fill) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  float* row(std::size_t i) { return data_.data() + i * cols_; }
  const float* row(std::size_t i) const { return data_.data() + i * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// One scalar per column (per-RHS alpha/beta/dot).
using ColScalars = std::vector<double>;
/// Per-column activity mask; nonzero = column participates.  Block CG
/// freezes converged columns by clearing their mask bit, which leaves the
/// frozen columns bitwise untouched by every masked kernel.
using ColMask = std::vector<std::uint8_t>;

/// y[:,c] += a[c] * x[:,c]  (active columns only when mask is given).
[[deprecated("use parsdd::kernels::axpy_cols (kernels/kernels.h)")]]
void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask = nullptr);
/// y[:,c] = x[:,c] + a[c] * y[:,c]
[[deprecated("use parsdd::kernels::xpay_cols (kernels/kernels.h)")]]
void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask = nullptr);
/// Per-column inner products <x_c, y_c>.
[[deprecated("use parsdd::kernels::dot_cols (kernels/kernels.h)")]]
ColScalars dot_cols(const MultiVec& x, const MultiVec& y);
/// Per-column <z_c, x_c - y_c> (the flexible-CG Polak–Ribière numerator,
/// fused so no difference block is materialized).
[[deprecated("use parsdd::kernels::dot_diff_cols (kernels/kernels.h)")]]
ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y);
/// Per-column Euclidean norms.
[[deprecated("use parsdd::kernels::norm2_cols (kernels/kernels.h)")]]
ColScalars norm2_cols(const MultiVec& x);
/// Per-column entry sums.
[[deprecated("use parsdd::kernels::sum_cols (kernels/kernels.h)")]]
ColScalars sum_cols(const MultiVec& x);
/// x[:,c] *= a[c]
[[deprecated("use parsdd::kernels::scale_cols (kernels/kernels.h)")]]
void scale_cols(const ColScalars& a, MultiVec& x,
                const ColMask* mask = nullptr);
/// dst[:,c] = src[:,c] for active columns.
[[deprecated("use parsdd::kernels::copy_cols (kernels/kernels.h)")]]
void copy_cols(const MultiVec& src, MultiVec& dst,
               const ColMask* mask = nullptr);
/// Subtracts each column's mean (projection onto 1-perp per column).
[[deprecated(
    "use parsdd::kernels::project_out_constant_cols (kernels/kernels.h)")]]
void project_out_constant_cols(MultiVec& x, const ColMask* mask = nullptr);

/// Resizes `m` to rows x cols if its shape differs; contents are otherwise
/// left alone (solver kernels fully overwrite their scratch before reading).
inline void ensure_shape(MultiVec& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m.assign(rows, cols, 0.0);
}

/// ensure_shape for the f32 twin.
inline void ensure_shape32(MultiVec32& m, std::size_t rows, std::size_t cols) {
  if (m.rows() != rows || m.cols() != cols) m.assign(rows, cols, 0.0f);
}

}  // namespace parsdd
