// Dense LDLᵀ factorization for the bottom of the preconditioner chain.
//
// Fact 6.4: "A factorization LLᵀ of the pseudo-inverse of an n-by-n
// Laplacian A ... can be computed in O(n) time and O(n³) work, and any
// solves thereafter can be done in O(log n) time and O(n²) work."  The chain
// in Section 6.3 terminates at m_d ≈ m^{1/3}, so the dense factor stays
// small.  For Laplacians the first row/column is dropped (grounding), making
// the remaining matrix positive definite (as the paper notes after Fact 6.4),
// and solutions are returned mean-zero (the pseudo-inverse solution).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/vector_ops.h"

namespace parsdd {

class DenseLdlt {
 public:
  /// Factors a symmetric positive definite matrix given densely (row-major).
  /// Throws std::domain_error if a pivot is non-positive.
  static DenseLdlt factor_spd(std::vector<double> dense, std::uint32_t n);

  /// Factors a connected Laplacian by grounding vertex n-1.
  static DenseLdlt factor_laplacian(const CsrMatrix& lap);

  /// Solves A x = b.  For grounded Laplacians, b must be in the image
  /// (mean-zero for connected graphs); the result is mean-zero.
  Vec solve(const Vec& b) const;

  /// Batched solve: each row of the triangular factor is streamed once for
  /// all columns of `b` (the O(n²) substitution sweeps amortize over the
  /// block).  Column c matches solve(b[:,c]) exactly.
  void solve_block(const MultiVec& b, MultiVec& x) const;

  std::uint32_t dimension() const { return grounded_ ? n_ + 1 : n_; }

  /// Snapshot encoding (util/serialize.h): the factored triangle verbatim,
  /// so a loaded factor substitutes bitwise-identically without refactoring.
  void save(serialize::Writer& w) const;
  static DenseLdlt load(serialize::Reader& r);

 private:
  std::uint32_t n_ = 0;     // factored dimension
  bool grounded_ = false;   // true if built from a Laplacian
  std::vector<double> lf_;  // unit lower triangle (row-major), D on diagonal
};

}  // namespace parsdd
