// Extreme generalized eigenvalues of a matrix pencil (A, B) via power
// iteration, restricted to the complement of the all-ones null space.
//
// Used by tests and the E6 bench to certify the spectral sandwich
// G ≼ H ≼ κG of Lemma 6.1: lambda_max(B⁺A) and lambda_min(B⁺A) measured
// directly (with B⁺ supplied as a solve callback).
#pragma once

#include <cstdint>

#include "linalg/iterative.h"

namespace parsdd {

/// Approximates the largest eigenvalue of solve_b ∘ apply_a on mean-zero
/// vectors by power iteration with Rayleigh quotients x'Ax / x'Bx.
/// `apply_b` is needed for the quotient.
double pencil_max_eig(const LinOp& apply_a, const LinOp& apply_b,
                      const LinOp& solve_b, std::size_t n,
                      std::uint32_t iterations = 200,
                      std::uint64_t seed = 12345);

/// Smallest eigenvalue of the pencil = 1 / pencil_max_eig(B, A).
double pencil_min_eig(const LinOp& apply_a, const LinOp& apply_b,
                      const LinOp& solve_a, std::size_t n,
                      std::uint32_t iterations = 200,
                      std::uint64_t seed = 54321);

}  // namespace parsdd
