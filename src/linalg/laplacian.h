// Graph Laplacians (Section 2 of the paper).
//
// L_G(i,j) = -w_ij for i != j, and the weighted degree on the diagonal.
// Laplacians of connected graphs are singular with null space span{1}; all
// solve routines work on the image (mean-zero vectors).
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "linalg/csr_matrix.h"

namespace parsdd {

/// Laplacian of (V=[0,n), edges).
CsrMatrix laplacian_from_edges(std::uint32_t n, const EdgeList& edges);

/// Laplacian of a CSR graph.
CsrMatrix laplacian_from_graph(const Graph& g);

/// Inverse direction: extracts the underlying weighted graph of a Laplacian
/// (off-diagonal entries negated).  Requires is_laplacian().
EdgeList edges_from_laplacian(const CsrMatrix& lap);

/// Laplacian quadratic form computed edge-wise:
/// xᵀLx = Σ_e w_e (x_u - x_v)².  Cheaper and more numerically benign than
/// assembling L when only the form is needed.
double laplacian_quadratic_form(const EdgeList& edges, const Vec& x);

/// ||x||_A = sqrt(xᵀAx) with clamping of tiny negative round-off.
double a_norm(const CsrMatrix& a, const Vec& x);

}  // namespace parsdd
