// Conjugate gradient and flexible (variable-preconditioner) PCG.
//
// CG is the classical baseline the near-linear solvers are measured against,
// and flexible PCG is the floating-point-robust wrapper we put around the
// paper's preconditioner chain (see DESIGN.md, "Substitutions"): the chain's
// recursive solve is a slightly nonlinear operator, which plain PCG does not
// tolerate but Polak–Ribière FCG does.
#pragma once

#include "linalg/iterative.h"

namespace parsdd {

struct CgOptions {
  double tolerance = 1e-8;       // relative residual target
  std::uint32_t max_iterations = 10000;
  /// Re-project iterates onto mean-zero after every step; required when A is
  /// a connected Laplacian (singular with null space span{1}).
  bool project_constant = false;
  /// Use the flexible (Polak–Ribière) beta; required when the preconditioner
  /// is itself an inexact/iterative solver.
  bool flexible = false;
};

/// Solves A x = b starting from the given x (commonly zero).
/// `precond`, if non-null, applies an approximation of A⁺.
IterStats conjugate_gradient(const LinOp& a, const Vec& b, Vec& x,
                             const CgOptions& opts,
                             const LinOp* precond = nullptr);

}  // namespace parsdd
