// Conjugate gradient and flexible (variable-preconditioner) PCG.
//
// CG is the classical baseline the near-linear solvers are measured against,
// and flexible PCG is the floating-point-robust wrapper we put around the
// paper's preconditioner chain (see DESIGN.md, "Substitutions"): the chain's
// recursive solve is a slightly nonlinear operator, which plain PCG does not
// tolerate but Polak–Ribière FCG does.
#pragma once

#include "linalg/iterative.h"

namespace parsdd {

struct CgOptions {
  double tolerance = 1e-8;       // relative residual target
  std::uint32_t max_iterations = 10000;
  /// Re-project iterates onto mean-zero after every step; required when A is
  /// a connected Laplacian (singular with null space span{1}).
  bool project_constant = false;
  /// Use the flexible (Polak–Ribière) beta; required when the preconditioner
  /// is itself an inexact/iterative solver.
  bool flexible = false;
};

/// Solves A x = b starting from the given x (commonly zero).
/// `precond`, if non-null, applies an approximation of A⁺.
IterStats conjugate_gradient(const LinOp& a, const Vec& b, Vec& x,
                             const CgOptions& opts,
                             const LinOp* precond = nullptr);

/// Solves A X = B for all columns in lockstep: every iteration streams A
/// (and the preconditioner chain) once for the whole block, while alpha,
/// beta, and the convergence test stay per-column, so column c runs the
/// exact iteration sequence of an independent conjugate_gradient call on
/// B[:,c].  Columns freeze (no further updates) the moment they converge or
/// break down; the loop exits when every column is frozen.  Returns one
/// IterStats per column.
std::vector<IterStats> block_conjugate_gradient(
    const BlockLinOp& a, const MultiVec& b, MultiVec& x, const CgOptions& opts,
    const BlockLinOp* precond = nullptr, BlockScratch* scratch = nullptr);

}  // namespace parsdd
