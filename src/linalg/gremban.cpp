#include "linalg/gremban.h"

#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"
#include "util/serialize.h"

namespace parsdd {

Vec GrembanReduction::lift_rhs(const Vec& b) const {
  Vec y(2 * static_cast<std::size_t>(n));
  parallel_for(0, n, [&](std::size_t i) {
    y[i] = b[i];
    y[i + n] = -b[i];
  });
  return y;
}

Vec GrembanReduction::project_solution(const Vec& y) const {
  Vec x(n);
  parallel_for(0, n, [&](std::size_t i) { x[i] = 0.5 * (y[i] - y[i + n]); });
  return x;
}

MultiVec GrembanReduction::lift_rhs_block(const MultiVec& b) const {
  std::size_t k = b.cols();
  MultiVec y(2 * static_cast<std::size_t>(n), k);
  parallel_for(0, n, [&](std::size_t i) {
    const double* br = b.row(i);
    double* head = y.row(i);
    double* tail = y.row(i + n);
    for (std::size_t c = 0; c < k; ++c) {
      head[c] = br[c];
      tail[c] = -br[c];
    }
  });
  return y;
}

MultiVec GrembanReduction::project_solution_block(const MultiVec& y) const {
  std::size_t k = y.cols();
  MultiVec x(n, k);
  parallel_for(0, n, [&](std::size_t i) {
    const double* head = y.row(i);
    const double* tail = y.row(i + n);
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) xr[c] = 0.5 * (head[c] - tail[c]);
  });
  return x;
}

GrembanReduction gremban_reduce(const CsrMatrix& a) {
  if (!a.is_sdd(1e-9)) {
    throw std::invalid_argument("gremban_reduce: matrix is not SDD");
  }
  std::uint32_t n = a.dimension();
  GrembanReduction r;
  r.n = n;
  r.was_laplacian = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    auto cols = a.row_cols(i);
    auto vals = a.row_vals(i);
    double diag = 0.0, off_abs = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      std::uint32_t j = cols[k];
      double v = vals[k];
      if (j == i) {
        diag += v;
        continue;
      }
      off_abs += std::fabs(v);
      if (j < i) continue;  // handle each symmetric pair once
      if (v < 0.0) {
        // Ordinary edge, duplicated in both halves of the cover.
        r.edges.push_back(Edge{i, j, -v});
        r.edges.push_back(Edge{i + n, j + n, -v});
      } else if (v > 0.0) {
        // Positive off-diagonal: cross edges.
        r.edges.push_back(Edge{i, j + n, v});
        r.edges.push_back(Edge{j, i + n, v});
        r.was_laplacian = false;
      }
    }
    double excess = diag - off_abs;
    if (excess > 1e-12 * (std::fabs(diag) + 1.0)) {
      r.edges.push_back(Edge{i, i + n, excess / 2.0});
      r.was_laplacian = false;
    }
  }
  return r;
}

void GrembanReduction::save(serialize::Writer& w) const {
  w.u32(n);
  save_edges(w, edges);
  w.boolean(was_laplacian);
}

GrembanReduction GrembanReduction::load(serialize::Reader& r) {
  GrembanReduction red;
  red.n = r.u32();
  red.edges = load_edges(r);
  red.was_laplacian = r.boolean();
  return red;
}

}  // namespace parsdd
