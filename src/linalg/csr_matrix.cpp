#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "kernels/kernels.h"
#include "parallel/primitives.h"
#include "util/serialize.h"

namespace parsdd {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t n, std::vector<Triplet> ts) {
  parallel_sort(ts, [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Merge duplicates via head flags + scan: each run of equal (row, col)
  // keys is folded left-to-right by the thread owning its head, so the sums
  // match the old sequential merge exactly and no two threads touch the
  // same output slot.
  std::size_t m = ts.size();
  std::vector<std::uint32_t> heads(m);
  parallel_for(0, m, [&](std::size_t i) {
    assert(ts[i].row < n && ts[i].col < n);
    heads[i] = (i == 0 || ts[i].row != ts[i - 1].row ||
                ts[i].col != ts[i - 1].col)
                   ? 1u
                   : 0u;
  });
  std::vector<std::uint32_t> pos = heads;
  std::uint32_t w = scan_exclusive(pos);
  std::vector<Triplet> merged(w);
  parallel_for(0, m, [&](std::size_t i) {
    if (!heads[i]) return;
    Triplet t = ts[i];
    for (std::size_t j = i + 1; j < m && !heads[j]; ++j) t.value += ts[j].value;
    merged[pos[i]] = t;
  });

  CsrMatrix a;
  a.n_ = n;
  a.off_.assign(n + 1, 0);
  // Row offsets by binary search in the sorted merged triplets: off_[r] is
  // the first entry with row >= r.
  parallel_for(0, static_cast<std::size_t>(n) + 1, [&](std::size_t r) {
    a.off_[r] = static_cast<std::size_t>(
        std::lower_bound(merged.begin(), merged.end(), r,
                         [](const Triplet& t, std::size_t row) {
                           return t.row < row;
                         }) -
        merged.begin());
  });
  a.col_.resize(merged.size());
  a.val_.resize(merged.size());
  parallel_for(0, merged.size(), [&](std::size_t i) {
    a.col_[i] = merged[i].col;
    a.val_[i] = merged[i].value;
  });
  return a;
}

void CsrMatrix::multiply(const Vec& x, Vec& y) const {
  assert(x.size() == n_ && y.size() == n_);
  kernels::spmv(off_.data(), col_.data(), val_.data(), n_, val_.size(), x, y);
}

Vec CsrMatrix::apply(const Vec& x) const {
  Vec y(n_);
  multiply(x, y);
  return y;
}

void CsrMatrix::multiply(const MultiVec& x, MultiVec& y) const {
  assert(x.rows() == n_ && y.rows() == n_ && x.cols() == y.cols());
  kernels::spmm(off_.data(), col_.data(), val_.data(), n_, val_.size(), x, y);
}

MultiVec CsrMatrix::apply_block(const MultiVec& x) const {
  MultiVec y(n_, x.cols());
  multiply(x, y);
  return y;
}

Vec CsrMatrix::diagonal() const {
  Vec d(n_, 0.0);
  parallel_for(0, n_, [&](std::size_t i) {
    for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
      if (col_[k] == i) d[i] += val_[k];
    }
  });
  return d;
}

bool CsrMatrix::is_sdd(double tol) const {
  // Diagonal dominance per row.
  bool dominant = parallel_reduce(
      0, n_, true,
      [&](std::size_t i) {
        double diag = 0.0, off_sum = 0.0;
        for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
          if (col_[k] == i) {
            diag += val_[k];
          } else {
            off_sum += std::fabs(val_[k]);
          }
        }
        return diag + tol >= off_sum;
      },
      [](bool a, bool b) { return a && b; });
  if (!dominant) return false;
  // Symmetry: check A x = Aᵀ x for a few probe vectors would be probabilistic;
  // instead verify structurally via a transpose comparison.
  std::vector<Triplet> ts;
  ts.reserve(val_.size());
  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
      ts.push_back(Triplet{col_[k], i, val_[k]});
    }
  }
  CsrMatrix t = from_triplets(n_, std::move(ts));
  if (t.val_.size() != val_.size()) return false;
  for (std::size_t k = 0; k < val_.size(); ++k) {
    if (t.col_[k] != col_[k] || std::fabs(t.val_[k] - val_[k]) > tol) {
      return false;
    }
  }
  return t.off_ == off_;
}

bool CsrMatrix::is_laplacian(double tol) const {
  if (!is_sdd(tol)) return false;
  return parallel_reduce(
      0, n_, true,
      [&](std::size_t i) {
        double row_sum = 0.0;
        for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
          row_sum += val_[k];
          if (col_[k] != i && val_[k] > tol) return false;
        }
        return std::fabs(row_sum) <= tol * (1.0 + std::fabs(row_sum));
      },
      [](bool a, bool b) { return a && b; });
}

double CsrMatrix::quadratic_form(const Vec& x) const {
  return parallel_reduce(
      0, n_, 0.0,
      [&](std::size_t i) {
        double acc = 0.0;
        for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
          acc += val_[k] * x[col_[k]];
        }
        return x[i] * acc;
      },
      [](double a, double b) { return a + b; });
}

std::vector<double> CsrMatrix::to_dense() const {
  std::vector<double> d(static_cast<std::size_t>(n_) * n_, 0.0);
  for (std::uint32_t i = 0; i < n_; ++i) {
    for (std::size_t k = off_[i]; k < off_[i + 1]; ++k) {
      d[static_cast<std::size_t>(i) * n_ + col_[k]] += val_[k];
    }
  }
  return d;
}

void CsrMatrix::save(serialize::Writer& w) const {
  w.u32(n_);
  w.size_vec(off_);
  w.pod_vec(col_);
  w.pod_vec(val_);
}

CsrMatrix CsrMatrix::load(serialize::Reader& r) {
  CsrMatrix m;
  m.n_ = r.u32();
  m.off_ = r.size_vec();
  m.col_ = r.pod_vec<std::uint32_t>();
  m.val_ = r.pod_vec<double>();
  if (!r.status().ok()) return CsrMatrix();
  if (m.n_ == 0 && m.off_.empty()) {
    // A default-constructed (never built) matrix round-trips as-is.
    if (!m.col_.empty() || !m.val_.empty()) {
      r.fail("CsrMatrix snapshot violates CSR invariants");
      return CsrMatrix();
    }
    return m;
  }
  bool ok = m.off_.size() == static_cast<std::size_t>(m.n_) + 1 &&
            m.col_.size() == m.val_.size() && m.off_.front() == 0 &&
            m.off_.back() == m.col_.size();
  for (std::size_t i = 0; ok && i < m.n_; ++i) {
    ok = m.off_[i] <= m.off_[i + 1];
  }
  for (std::size_t i = 0; ok && i < m.col_.size(); ++i) {
    ok = m.col_[i] < m.n_;
  }
  if (!ok) {
    r.fail("CsrMatrix snapshot violates CSR invariants");
    return CsrMatrix();
  }
  return m;
}

}  // namespace parsdd
