// Damped Jacobi iteration — the simplest classical baseline (E8 bench).
#pragma once

#include "linalg/csr_matrix.h"
#include "linalg/iterative.h"

namespace parsdd {

struct JacobiOptions {
  double damping = 2.0 / 3.0;  // classical smoothing factor
  double tolerance = 1e-8;
  std::uint32_t max_iterations = 100000;
  bool project_constant = false;
};

/// Damped Jacobi on A x = b (A's diagonal must be positive).
IterStats jacobi(const CsrMatrix& a, const Vec& b, Vec& x,
                 const JacobiOptions& opts);

/// Returns the diagonal (Jacobi) preconditioner of A as a LinOp.
LinOp jacobi_preconditioner(const CsrMatrix& a);

/// Block form: scales every column of the block by the inverse diagonal.
BlockLinOp jacobi_preconditioner_block(const CsrMatrix& a);

}  // namespace parsdd
