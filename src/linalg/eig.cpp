#include "linalg/eig.h"
#include "kernels/kernels.h"

#include <cmath>

namespace parsdd {

double pencil_max_eig(const LinOp& apply_a, const LinOp& apply_b,
                      const LinOp& solve_b, std::size_t n,
                      std::uint32_t iterations, std::uint64_t seed) {
  Vec x = random_unit_like(n, seed);
  Vec ax(n), bx(n), y(n);
  double rayleigh = 0.0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    apply_a(x, ax);
    solve_b(ax, y);
    kernels::project_out_constant(y);
    double nrm = kernels::norm2(y);
    if (nrm == 0.0) break;
    kernels::scale(1.0 / nrm, y);
    x.swap(y);
    apply_a(x, ax);
    apply_b(x, bx);
    double denom = kernels::dot(x, bx);
    if (denom <= 0.0) break;
    rayleigh = kernels::dot(x, ax) / denom;
  }
  return rayleigh;
}

double pencil_min_eig(const LinOp& apply_a, const LinOp& apply_b,
                      const LinOp& solve_a, std::size_t n,
                      std::uint32_t iterations, std::uint64_t seed) {
  double inv = pencil_max_eig(apply_b, apply_a, solve_a, n, iterations, seed);
  return inv > 0.0 ? 1.0 / inv : 0.0;
}

}  // namespace parsdd
