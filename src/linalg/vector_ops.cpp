#include "linalg/vector_ops.h"

#include <cassert>

#include "kernels/kernels.h"
#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

// Deprecated forwarding wrappers; the dispatchable implementations live in
// kernels/kernels.cpp.

void axpy(double a, const Vec& x, Vec& y) { kernels::axpy(a, x, y); }

void xpay(const Vec& x, double a, Vec& y) { kernels::xpay(x, a, y); }

double dot(const Vec& x, const Vec& y) { return kernels::dot(x, y); }

double norm2(const Vec& x) { return kernels::norm2(x); }

void scale(double a, Vec& x) { kernels::scale(a, x); }

Vec subtract(const Vec& x, const Vec& y) { return kernels::subtract(x, y); }

double sum(const Vec& x) { return kernels::sum(x); }

void project_out_constant(Vec& x) { kernels::project_out_constant(x); }

Vec random_unit_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vec v(n);
  parallel_for(0, n, [&](std::size_t i) { v[i] = 2.0 * rng.uniform(i) - 1.0; });
  kernels::project_out_constant(v);
  double nrm = kernels::norm2(v);
  if (nrm > 0) kernels::scale(1.0 / nrm, v);
  return v;
}

}  // namespace parsdd
