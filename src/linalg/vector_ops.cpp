#include "linalg/vector_ops.h"

#include <cassert>
#include <cmath>

#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

void axpy(double a, const Vec& x, Vec& y) {
  assert(x.size() == y.size());
  parallel_for(0, x.size(), [&](std::size_t i) { y[i] += a * x[i]; });
}

void xpay(const Vec& x, double a, Vec& y) {
  assert(x.size() == y.size());
  parallel_for(0, x.size(), [&](std::size_t i) { y[i] = x[i] + a * y[i]; });
}

double dot(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  return parallel_reduce(
      0, x.size(), 0.0, [&](std::size_t i) { return x[i] * y[i]; },
      [](double a, double b) { return a + b; });
}

double norm2(const Vec& x) { return std::sqrt(dot(x, x)); }

void scale(double a, Vec& x) {
  parallel_for(0, x.size(), [&](std::size_t i) { x[i] *= a; });
}

Vec subtract(const Vec& x, const Vec& y) {
  assert(x.size() == y.size());
  Vec out(x.size());
  parallel_for(0, x.size(), [&](std::size_t i) { out[i] = x[i] - y[i]; });
  return out;
}

double sum(const Vec& x) {
  return parallel_reduce(
      0, x.size(), 0.0, [&](std::size_t i) { return x[i]; },
      [](double a, double b) { return a + b; });
}

void project_out_constant(Vec& x) {
  if (x.empty()) return;
  double mean = sum(x) / static_cast<double>(x.size());
  parallel_for(0, x.size(), [&](std::size_t i) { x[i] -= mean; });
}

Vec random_unit_like(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Vec v(n);
  parallel_for(0, n, [&](std::size_t i) { v[i] = 2.0 * rng.uniform(i) - 1.0; });
  project_out_constant(v);
  double nrm = norm2(v);
  if (nrm > 0) scale(1.0 / nrm, v);
  return v;
}

}  // namespace parsdd
