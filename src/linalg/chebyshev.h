// Preconditioned Chebyshev iteration.
//
// The paper's recursive solver (Section 6, Lemma 6.7) is "preconditioned
// Chebyshev": at chain level i it runs a degree-√κᵢ Chebyshev polynomial in
// B⁺A, where the preconditioner solve B⁺ is realized recursively.  Chebyshev
// needs explicit spectral bounds [lmin, lmax] on the preconditioned operator
// — exactly the Aᵢ ≼ Bᵢ ≼ κᵢAᵢ guarantee of Definition 6.3.
#pragma once

#include "linalg/iterative.h"

namespace parsdd {

struct ChebyshevOptions {
  /// Lower/upper bounds on the spectrum of precond∘A (restricted to the
  /// image).  For a chain level with A ≼ B ≼ κA these are 1/κ and 1.
  double lambda_min = 0.0;
  double lambda_max = 1.0;
  std::uint32_t iterations = 10;
  bool project_constant = false;
};

/// Runs `iterations` preconditioned Chebyshev steps on A x = b, updating x.
/// If `precond` is null the identity is used.
IterStats chebyshev(const LinOp& a, const Vec& b, Vec& x,
                    const ChebyshevOptions& opts,
                    const LinOp* precond = nullptr);

/// Block Chebyshev over k columns.  The recurrence scalars depend only on
/// the spectral bounds, so all columns share them and every step is one SpMM
/// plus one block preconditioner application; column c reproduces a single
/// chebyshev() run on B[:,c] exactly (columns with a zero RHS stay at their
/// initial value, which callers set to zero).
std::vector<IterStats> chebyshev_block(const BlockLinOp& a, const MultiVec& b,
                                       MultiVec& x,
                                       const ChebyshevOptions& opts,
                                       const BlockLinOp* precond = nullptr,
                                       BlockScratch* scratch = nullptr);

/// Number of Chebyshev iterations sufficient to reduce the A-norm error by
/// `factor` given condition number kappa: ceil(sqrt(kappa)/2 * ln(2/factor)).
std::uint32_t chebyshev_iterations_for(double kappa, double factor);

}  // namespace parsdd
