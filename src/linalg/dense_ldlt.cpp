#include "linalg/dense_ldlt.h"
#include "kernels/kernels.h"

#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"
#include "util/serialize.h"

namespace parsdd {

DenseLdlt DenseLdlt::factor_spd(std::vector<double> dense, std::uint32_t n) {
  if (dense.size() != static_cast<std::size_t>(n) * n) {
    throw std::invalid_argument("factor_spd: dimension mismatch");
  }
  // In-place LDLᵀ: after the loop, dense[i*n+j] (j<i) holds L_ij and
  // dense[j*n+j] holds D_j.
  for (std::uint32_t j = 0; j < n; ++j) {
    double d = dense[static_cast<std::size_t>(j) * n + j];
    for (std::uint32_t k = 0; k < j; ++k) {
      double l = dense[static_cast<std::size_t>(j) * n + k];
      d -= l * l * dense[static_cast<std::size_t>(k) * n + k];
    }
    if (!(d > 0.0)) {
      throw std::domain_error("factor_spd: non-positive pivot");
    }
    dense[static_cast<std::size_t>(j) * n + j] = d;
    parallel_for(j + 1, n, [&](std::size_t i) {
      double s = dense[i * n + j];
      for (std::uint32_t k = 0; k < j; ++k) {
        s -= dense[i * n + k] * dense[static_cast<std::size_t>(j) * n + k] *
             dense[static_cast<std::size_t>(k) * n + k];
      }
      dense[i * n + j] = s / d;
    });
  }
  DenseLdlt f;
  f.n_ = n;
  f.lf_ = std::move(dense);
  return f;
}

DenseLdlt DenseLdlt::factor_laplacian(const CsrMatrix& lap) {
  std::uint32_t n = lap.dimension();
  if (n < 2) {
    throw std::invalid_argument("factor_laplacian: need at least 2 vertices");
  }
  std::uint32_t m = n - 1;
  std::vector<double> dense(static_cast<std::size_t>(m) * m, 0.0);
  for (std::uint32_t i = 0; i < m; ++i) {
    auto cols = lap.row_cols(i);
    auto vals = lap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] < m) {
        dense[static_cast<std::size_t>(i) * m + cols[k]] += vals[k];
      }
    }
  }
  DenseLdlt f = factor_spd(std::move(dense), m);
  f.grounded_ = true;
  return f;
}

Vec DenseLdlt::solve(const Vec& b) const {
  std::uint32_t n = n_;
  Vec x(n);
  if (grounded_) {
    if (b.size() != static_cast<std::size_t>(n) + 1) {
      throw std::invalid_argument("solve: dimension mismatch");
    }
    for (std::uint32_t i = 0; i < n; ++i) x[i] = b[i];
  } else {
    if (b.size() != n) {
      throw std::invalid_argument("solve: dimension mismatch");
    }
    x = b;
  }
  // Forward: L z = b (unit diagonal).
  for (std::uint32_t i = 0; i < n; ++i) {
    double s = x[i];
    const double* row = lf_.data() + static_cast<std::size_t>(i) * n;
    for (std::uint32_t k = 0; k < i; ++k) s -= row[k] * x[k];
    x[i] = s;
  }
  // Diagonal.
  for (std::uint32_t i = 0; i < n; ++i) {
    x[i] /= lf_[static_cast<std::size_t>(i) * n + i];
  }
  // Backward: Lᵀ x = z.
  for (std::uint32_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::uint32_t k = i + 1; k < n; ++k) {
      s -= lf_[static_cast<std::size_t>(k) * n + i] * x[k];
    }
    x[i] = s;
  }
  if (grounded_) {
    x.push_back(0.0);  // grounded vertex
    kernels::project_out_constant(x);
  }
  return x;
}

void DenseLdlt::solve_block(const MultiVec& b, MultiVec& x) const {
  std::uint32_t n = n_;
  std::size_t k = b.cols();
  std::size_t expect = grounded_ ? static_cast<std::size_t>(n) + 1 : n;
  if (b.rows() != expect) {
    throw std::invalid_argument("solve_block: dimension mismatch");
  }
  x.assign(expect, k, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double* br = b.row(i);
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) xr[c] = br[c];
  }
  // Forward: L z = b (unit diagonal).
  for (std::uint32_t i = 0; i < n; ++i) {
    double* xi = x.row(i);
    const double* row = lf_.data() + static_cast<std::size_t>(i) * n;
    for (std::uint32_t j = 0; j < i; ++j) {
      const double* xj = x.row(j);
      double lij = row[j];
      for (std::size_t c = 0; c < k; ++c) xi[c] -= lij * xj[c];
    }
  }
  // Diagonal.
  for (std::uint32_t i = 0; i < n; ++i) {
    double d = lf_[static_cast<std::size_t>(i) * n + i];
    double* xi = x.row(i);
    for (std::size_t c = 0; c < k; ++c) xi[c] /= d;
  }
  // Backward: Lᵀ x = z.
  for (std::uint32_t i = n; i-- > 0;) {
    double* xi = x.row(i);
    for (std::uint32_t j = i + 1; j < n; ++j) {
      const double* xj = x.row(j);
      double lji = lf_[static_cast<std::size_t>(j) * n + i];
      for (std::size_t c = 0; c < k; ++c) xi[c] -= lji * xj[c];
    }
  }
  if (grounded_) {
    // Row n is the grounded vertex (zero), already in place from assign().
    kernels::project_out_constant_cols(x);
  }
}

void DenseLdlt::save(serialize::Writer& w) const {
  w.u32(n_);
  w.boolean(grounded_);
  w.pod_vec(lf_);
}

DenseLdlt DenseLdlt::load(serialize::Reader& r) {
  DenseLdlt f;
  f.n_ = r.u32();
  f.grounded_ = r.boolean();
  f.lf_ = r.pod_vec<double>();
  if (r.status().ok() &&
      f.lf_.size() != static_cast<std::size_t>(f.n_) * f.n_) {
    r.fail("DenseLdlt factor has wrong element count");
    return DenseLdlt();
  }
  return f;
}

}  // namespace parsdd
