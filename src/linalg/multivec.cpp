#include "linalg/multivec.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"

namespace parsdd {

namespace {

inline bool active(const ColMask* mask, std::size_t c) {
  return mask == nullptr || (*mask)[c] != 0;
}

// Per-column reduction over rows.  Mirrors parallel_reduce's blocking, which
// depends only on the row count — never on k — so each column accumulates in
// an order independent of how many columns ride along (the determinism
// contract in multivec.h).
template <typename RowAccum>
ColScalars reduce_cols(std::size_t rows, std::size_t cols, RowAccum&& acc_row) {
  ColScalars acc(cols, 0.0);
  if (cols == 0) return acc;
  if (rows < kSeqCutoff || ThreadPool::in_parallel()) {
    for (std::size_t i = 0; i < rows; ++i) acc_row(i, acc.data());
    return acc;
  }
  std::size_t nb = num_blocks_for(rows, 0);
  std::size_t block = (rows + nb - 1) / nb;
  std::vector<ColScalars> partial(nb, ColScalars(cols, 0.0));
  ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
    std::size_t s = b * block, e = std::min(rows, s + block);
    double* p = partial[b].data();
    for (std::size_t i = s; i < e; ++i) acc_row(i, p);
  });
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t c = 0; c < cols; ++c) acc[c] += partial[b][c];
  }
  return acc;
}

}  // namespace

MultiVec MultiVec::from_columns(const std::vector<Vec>& columns) {
  if (columns.empty()) return {};
  std::size_t rows = columns[0].size();
  MultiVec out(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != rows) {
      throw std::invalid_argument("MultiVec::from_columns: ragged columns");
    }
    out.set_column(c, columns[c]);
  }
  return out;
}

Vec MultiVec::column(std::size_t c) const {
  assert(c < cols_);
  Vec v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = data_[i * cols_ + c];
  return v;
}

void MultiVec::set_column(std::size_t c, const Vec& v) {
  assert(c < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + c] = v[i];
}

void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(0, x.rows(), [&](std::size_t i) {
    const double* xr = x.row(i);
    double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) yr[c] += a[c] * xr[c];
    }
  });
}

void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(0, x.rows(), [&](std::size_t i) {
    const double* xr = x.row(i);
    double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) yr[c] = xr[c] + a[c] * yr[c];
    }
  });
}

ColScalars dot_cols(const MultiVec& x, const MultiVec& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c] * yr[c];
  });
}

ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y) {
  assert(z.rows() == x.rows() && x.rows() == y.rows());
  assert(z.cols() == x.cols() && x.cols() == y.cols());
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* zr = z.row(i);
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += zr[c] * (xr[c] - yr[c]);
  });
}

ColScalars norm2_cols(const MultiVec& x) {
  ColScalars n = dot_cols(x, x);
  for (double& v : n) v = std::sqrt(v);
  return n;
}

ColScalars sum_cols(const MultiVec& x) {
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c];
  });
}

void scale_cols(const ColScalars& a, MultiVec& x, const ColMask* mask) {
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(0, x.rows(), [&](std::size_t i) {
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) xr[c] *= a[c];
    }
  });
}

void copy_cols(const MultiVec& src, MultiVec& dst, const ColMask* mask) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  std::size_t k = src.cols();
  parallel_for(0, src.rows(), [&](std::size_t i) {
    const double* sr = src.row(i);
    double* dr = dst.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) dr[c] = sr[c];
    }
  });
}

void project_out_constant_cols(MultiVec& x, const ColMask* mask) {
  if (x.empty()) return;
  ColScalars mean = sum_cols(x);
  // Divide (not multiply by a reciprocal): bitwise-matches the single-column
  // project_out_constant so batched and single solves stay in lockstep.
  for (double& m : mean) m /= static_cast<double>(x.rows());
  std::size_t k = x.cols();
  parallel_for(0, x.rows(), [&](std::size_t i) {
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) xr[c] -= mean[c];
    }
  });
}

}  // namespace parsdd
