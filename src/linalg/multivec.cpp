#include "linalg/multivec.h"

#include <cassert>
#include <stdexcept>

#include "kernels/kernels.h"

namespace parsdd {

MultiVec MultiVec::from_columns(const std::vector<Vec>& columns) {
  if (columns.empty()) return {};
  std::size_t rows = columns[0].size();
  MultiVec out(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != rows) {
      throw std::invalid_argument("MultiVec::from_columns: ragged columns");
    }
    out.set_column(c, columns[c]);
  }
  return out;
}

Vec MultiVec::column(std::size_t c) const {
  assert(c < cols_);
  Vec v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = data_[i * cols_ + c];
  return v;
}

void MultiVec::set_column(std::size_t c, const Vec& v) {
  assert(c < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + c] = v[i];
}

// Deprecated forwarding wrappers.  The real implementations (backend
// dispatch + canonical-block parallelism) live in kernels/kernels.cpp;
// these keep the historic free-function surface compiling.

void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask) {
  kernels::axpy_cols(a, x, y, mask);
}

void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask) {
  kernels::xpay_cols(x, a, y, mask);
}

ColScalars dot_cols(const MultiVec& x, const MultiVec& y) {
  return kernels::dot_cols(x, y);
}

ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y) {
  return kernels::dot_diff_cols(z, x, y);
}

ColScalars norm2_cols(const MultiVec& x) { return kernels::norm2_cols(x); }

ColScalars sum_cols(const MultiVec& x) { return kernels::sum_cols(x); }

void scale_cols(const ColScalars& a, MultiVec& x, const ColMask* mask) {
  kernels::scale_cols(a, x, mask);
}

void copy_cols(const MultiVec& src, MultiVec& dst, const ColMask* mask) {
  kernels::copy_cols(src, dst, mask);
}

void project_out_constant_cols(MultiVec& x, const ColMask* mask) {
  kernels::project_out_constant_cols(x, mask);
}

}  // namespace parsdd
