#include "linalg/multivec.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"

namespace parsdd {

namespace {

inline bool active(const ColMask* mask, std::size_t c) {
  return mask == nullptr || (*mask)[c] != 0;
}

// Per-column reduction over rows on the CANONICAL block partition of the
// row range, which depends only on the row count — never on k, the pool
// size, or the seq/par decision — so each column accumulates in a fixed
// order no matter how many columns ride along or how many workers run (the
// determinism contract in multivec.h).
template <typename RowAccum>
ColScalars reduce_cols(std::size_t rows, std::size_t cols, RowAccum&& acc_row) {
  static GranularitySite site("multivec.reduce_cols");
  ColScalars acc(cols, 0.0);
  if (cols == 0) return acc;
  std::uint64_t work = static_cast<std::uint64_t>(rows) * cols;
  std::size_t nb = canonical_blocks(rows, 0);
  if (nb == 1) {
    detail::SeqTimer timer(site, work);
    for (std::size_t i = 0; i < rows; ++i) acc_row(i, acc.data());
    return acc;
  }
  std::size_t g = kDefaultGrain;
  std::vector<ColScalars> partial(nb, ColScalars(cols, 0.0));
  auto block_fold = [&](std::size_t b) {
    std::size_t s = b * g, e = std::min(rows, s + g);
    double* p = partial[b].data();
    for (std::size_t i = s; i < e; ++i) acc_row(i, p);
  };
  if (site.should_parallelize(work)) {
    ThreadPool::instance().run_blocks(nb, block_fold);
  } else {
    detail::SeqTimer timer(site, work);
    for (std::size_t b = 0; b < nb; ++b) block_fold(b);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t c = 0; c < cols; ++c) acc[c] += partial[b][c];
  }
  return acc;
}

// Elementwise row kernels share one site: their cost per (row × col) entry
// is near-identical (stream in, stream out).
GranularitySite& rowwise_site() {
  static GranularitySite site("multivec.rowwise");
  return site;
}

}  // namespace

MultiVec MultiVec::from_columns(const std::vector<Vec>& columns) {
  if (columns.empty()) return {};
  std::size_t rows = columns[0].size();
  MultiVec out(rows, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != rows) {
      throw std::invalid_argument("MultiVec::from_columns: ragged columns");
    }
    out.set_column(c, columns[c]);
  }
  return out;
}

Vec MultiVec::column(std::size_t c) const {
  assert(c < cols_);
  Vec v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = data_[i * cols_ + c];
  return v;
}

void MultiVec::set_column(std::size_t c, const Vec& v) {
  assert(c < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) data_[i * cols_ + c] = v[i];
}

void axpy_cols(const ColScalars& a, const MultiVec& x, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
    const double* xr = x.row(i);
    double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) yr[c] += a[c] * xr[c];
    }
  }, 0, static_cast<std::uint64_t>(x.rows()) * k);
}

void xpay_cols(const MultiVec& x, const ColScalars& a, MultiVec& y,
               const ColMask* mask) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
    const double* xr = x.row(i);
    double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) yr[c] = xr[c] + a[c] * yr[c];
    }
  }, 0, static_cast<std::uint64_t>(x.rows()) * k);
}

ColScalars dot_cols(const MultiVec& x, const MultiVec& y) {
  assert(x.rows() == y.rows() && x.cols() == y.cols());
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c] * yr[c];
  });
}

ColScalars dot_diff_cols(const MultiVec& z, const MultiVec& x,
                         const MultiVec& y) {
  assert(z.rows() == x.rows() && x.rows() == y.rows());
  assert(z.cols() == x.cols() && x.cols() == y.cols());
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* zr = z.row(i);
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += zr[c] * (xr[c] - yr[c]);
  });
}

ColScalars norm2_cols(const MultiVec& x) {
  ColScalars n = dot_cols(x, x);
  for (double& v : n) v = std::sqrt(v);
  return n;
}

ColScalars sum_cols(const MultiVec& x) {
  std::size_t k = x.cols();
  return reduce_cols(x.rows(), k, [&](std::size_t i, double* acc) {
    const double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) acc[c] += xr[c];
  });
}

void scale_cols(const ColScalars& a, MultiVec& x, const ColMask* mask) {
  assert(a.size() == x.cols());
  std::size_t k = x.cols();
  parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) xr[c] *= a[c];
    }
  }, 0, static_cast<std::uint64_t>(x.rows()) * k);
}

void copy_cols(const MultiVec& src, MultiVec& dst, const ColMask* mask) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  std::size_t k = src.cols();
  parallel_for(rowwise_site(), 0, src.rows(), [&](std::size_t i) {
    const double* sr = src.row(i);
    double* dr = dst.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) dr[c] = sr[c];
    }
  }, 0, static_cast<std::uint64_t>(src.rows()) * k);
}

void project_out_constant_cols(MultiVec& x, const ColMask* mask) {
  if (x.empty()) return;
  ColScalars mean = sum_cols(x);
  // Divide (not multiply by a reciprocal): bitwise-matches the single-column
  // project_out_constant so batched and single solves stay in lockstep.
  for (double& m : mean) m /= static_cast<double>(x.rows());
  std::size_t k = x.cols();
  parallel_for(rowwise_site(), 0, x.rows(), [&](std::size_t i) {
    double* xr = x.row(i);
    for (std::size_t c = 0; c < k; ++c) {
      if (active(mask, c)) xr[c] -= mean[c];
    }
  }, 0, static_cast<std::uint64_t>(x.rows()) * k);
}

}  // namespace parsdd
