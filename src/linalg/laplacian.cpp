#include "linalg/laplacian.h"
#include "kernels/kernels.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"

namespace parsdd {

CsrMatrix laplacian_from_edges(std::uint32_t n, const EdgeList& edges) {
  std::vector<Triplet> ts;
  ts.reserve(4 * edges.size());
  for (const Edge& e : edges) {
    assert(e.u != e.v && e.w > 0.0);
    ts.push_back(Triplet{e.u, e.v, -e.w});
    ts.push_back(Triplet{e.v, e.u, -e.w});
    ts.push_back(Triplet{e.u, e.u, e.w});
    ts.push_back(Triplet{e.v, e.v, e.w});
  }
  return CsrMatrix::from_triplets(n, std::move(ts));
}

CsrMatrix laplacian_from_graph(const Graph& g) {
  return laplacian_from_edges(g.num_vertices(), g.to_edges());
}

EdgeList edges_from_laplacian(const CsrMatrix& lap) {
  EdgeList edges;
  for (std::uint32_t i = 0; i < lap.dimension(); ++i) {
    auto cols = lap.row_cols(i);
    auto vals = lap.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] > i && vals[k] < 0.0) {
        edges.push_back(Edge{i, cols[k], -vals[k]});
      }
    }
  }
  return edges;
}

double laplacian_quadratic_form(const EdgeList& edges, const Vec& x) {
  return parallel_reduce(
      0, edges.size(), 0.0,
      [&](std::size_t i) {
        double d = x[edges[i].u] - x[edges[i].v];
        return edges[i].w * d * d;
      },
      [](double a, double b) { return a + b; });
}

double a_norm(const CsrMatrix& a, const Vec& x) {
  double q = a.quadratic_form(x);
  if (q < 0.0) {
    if (q < -1e-8 * (1.0 + kernels::norm2(x))) {
      throw std::domain_error("a_norm: matrix is not PSD");
    }
    q = 0.0;
  }
  return std::sqrt(q);
}

}  // namespace parsdd
