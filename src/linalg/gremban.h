// Gremban reduction: SDD system -> graph Laplacian system.
//
// Section 2: "Solving an SDD system reduces in O(m) work and O(log^O(1) m)
// depth to solving a graph Laplacian" [Gre96, Section 7.1].  The classical
// double-cover construction: an SDD matrix A splits into negative
// off-diagonals (ordinary edges, duplicated in both halves), positive
// off-diagonals (cross edges between the halves), and excess diagonal
// (a cross edge i <-> i+n of weight excess_i / 2).  Then
//   L_hat [x; -x] = [A x; -A x],
// so solving L_hat y = [b; -b] and returning (y_head - y_tail)/2 solves
// A x = b.
#pragma once

#include <cstdint>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/vector_ops.h"

namespace parsdd {

struct GrembanReduction {
  /// Number of rows of the original SDD matrix.
  std::uint32_t n = 0;
  /// Edges of the 2n-vertex double-cover Laplacian.
  EdgeList edges;
  /// True if A had no positive off-diagonals and no excess (i.e. A was
  /// already a Laplacian); callers may skip the reduction then.
  bool was_laplacian = false;

  /// [b; -b]
  Vec lift_rhs(const Vec& b) const;
  /// (y_head - y_tail)/2
  Vec project_solution(const Vec& y) const;

  /// Column-wise [B; -B] / (Y_head - Y_tail)/2 for batched solves.
  MultiVec lift_rhs_block(const MultiVec& b) const;
  MultiVec project_solution_block(const MultiVec& y) const;

  /// Snapshot encoding (util/serialize.h).
  void save(serialize::Writer& w) const;
  static GrembanReduction load(serialize::Reader& r);
};

/// Builds the double cover for a symmetric SDD matrix.  Throws
/// std::invalid_argument if A is not SDD.
GrembanReduction gremban_reduce(const CsrMatrix& a);

}  // namespace parsdd
