#include "linalg/chebyshev.h"

#include <cmath>
#include <stdexcept>

namespace parsdd {

IterStats chebyshev(const LinOp& a, const Vec& b, Vec& x,
                    const ChebyshevOptions& opts, const LinOp* precond) {
  if (!(opts.lambda_max > 0.0) || !(opts.lambda_min > 0.0) ||
      opts.lambda_min > opts.lambda_max) {
    throw std::invalid_argument("chebyshev: bad spectral bounds");
  }
  std::size_t n = b.size();
  IterStats stats;
  double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    stats.converged = true;
    return stats;
  }

  const double theta = 0.5 * (opts.lambda_max + opts.lambda_min);
  const double delta = 0.5 * (opts.lambda_max - opts.lambda_min);

  Vec r(n), z(n), p(n), ap(n);
  auto refresh_residual = [&] {
    a(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
    if (opts.project_constant) project_out_constant(r);
  };
  auto apply_precond = [&](const Vec& in, Vec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) project_out_constant(out);
    } else {
      out = in;
    }
  };

  refresh_residual();
  double alpha = 0.0, beta = 0.0;
  for (std::uint32_t it = 0; it < opts.iterations; ++it) {
    ++stats.iterations;
    apply_precond(r, z);
    if (it == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else if (it == 1) {
      beta = 0.5 * (delta * alpha) * (delta * alpha);
      alpha = 1.0 / (theta - beta / alpha);
      xpay(z, beta, p);
    } else {
      beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      xpay(z, beta, p);
    }
    axpy(alpha, p, x);
    a(p, ap);
    axpy(-alpha, ap, r);
    if (opts.project_constant) project_out_constant(r);
  }
  stats.relative_residual = norm2(r) / bnorm;
  stats.converged = true;  // fixed-iteration method; caller checks residual
  return stats;
}

std::uint32_t chebyshev_iterations_for(double kappa, double factor) {
  if (kappa < 1.0) kappa = 1.0;
  double it = 0.5 * std::sqrt(kappa) * std::log(2.0 / factor);
  return static_cast<std::uint32_t>(std::ceil(std::max(1.0, it)));
}

}  // namespace parsdd
