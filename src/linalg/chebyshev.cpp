#include "linalg/chebyshev.h"
#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace parsdd {

IterStats chebyshev(const LinOp& a, const Vec& b, Vec& x,
                    const ChebyshevOptions& opts, const LinOp* precond) {
  if (!(opts.lambda_max > 0.0) || !(opts.lambda_min > 0.0) ||
      opts.lambda_min > opts.lambda_max) {
    throw std::invalid_argument("chebyshev: bad spectral bounds");
  }
  std::size_t n = b.size();
  IterStats stats;
  double bnorm = kernels::norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    stats.converged = true;
    return stats;
  }

  const double theta = 0.5 * (opts.lambda_max + opts.lambda_min);
  const double delta = 0.5 * (opts.lambda_max - opts.lambda_min);

  Vec r(n), z(n), p(n), ap(n);
  auto refresh_residual = [&] {
    a(x, ap);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
    if (opts.project_constant) kernels::project_out_constant(r);
  };
  auto apply_precond = [&](const Vec& in, Vec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) kernels::project_out_constant(out);
    } else {
      out = in;
    }
  };

  refresh_residual();
  double alpha = 0.0, beta = 0.0;
  for (std::uint32_t it = 0; it < opts.iterations; ++it) {
    ++stats.iterations;
    apply_precond(r, z);
    if (it == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else if (it == 1) {
      beta = 0.5 * (delta * alpha) * (delta * alpha);
      alpha = 1.0 / (theta - beta / alpha);
      kernels::xpay(z, beta, p);
    } else {
      beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      kernels::xpay(z, beta, p);
    }
    kernels::axpy(alpha, p, x);
    a(p, ap);
    kernels::axpy(-alpha, ap, r);
    if (opts.project_constant) kernels::project_out_constant(r);
  }
  stats.relative_residual = kernels::norm2(r) / bnorm;
  stats.converged = true;  // fixed-iteration method; caller checks residual
  return stats;
}

std::vector<IterStats> chebyshev_block(const BlockLinOp& a, const MultiVec& b,
                                       MultiVec& x,
                                       const ChebyshevOptions& opts,
                                       const BlockLinOp* precond,
                                       BlockScratch* scratch) {
  if (!(opts.lambda_max > 0.0) || !(opts.lambda_min > 0.0) ||
      opts.lambda_min > opts.lambda_max) {
    throw std::invalid_argument("chebyshev_block: bad spectral bounds");
  }
  std::size_t n = b.rows(), k = b.cols();
  std::vector<IterStats> stats(k);
  if (k == 0) return stats;
  BlockScratch local;
  BlockScratch& s = scratch ? *scratch : local;
  ensure_shape(s.r, n, k);
  ensure_shape(s.z, n, k);
  ensure_shape(s.p, n, k);
  ensure_shape(s.ap, n, k);
  ensure_shape(x, n, k);

  const double theta = 0.5 * (opts.lambda_max + opts.lambda_min);
  const double delta = 0.5 * (opts.lambda_max - opts.lambda_min);
  const ColScalars minus_one(k, -1.0);

  auto apply_precond = [&](const MultiVec& in, MultiVec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) kernels::project_out_constant_cols(out);
    } else {
      ensure_shape(out, in.rows(), in.cols());
      kernels::copy_cols(in, out);
    }
  };

  // r = b - A x
  a(x, s.ap);
  kernels::copy_cols(b, s.r);
  kernels::axpy_cols(minus_one, s.ap, s.r);
  if (opts.project_constant) kernels::project_out_constant_cols(s.r);

  // The recurrence scalars depend only on the bounds, so the whole block
  // shares one alpha/beta schedule.
  double alpha = 0.0, beta = 0.0;
  ColScalars alpha_all(k), neg_alpha(k), beta_all(k);
  for (std::uint32_t it = 0; it < opts.iterations; ++it) {
    apply_precond(s.r, s.z);
    if (it == 0) {
      kernels::copy_cols(s.z, s.p);
      alpha = 1.0 / theta;
    } else if (it == 1) {
      beta = 0.5 * (delta * alpha) * (delta * alpha);
      alpha = 1.0 / (theta - beta / alpha);
      std::fill(beta_all.begin(), beta_all.end(), beta);
      kernels::xpay_cols(s.z, beta_all, s.p);
    } else {
      beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      alpha = 1.0 / (theta - beta / alpha);
      std::fill(beta_all.begin(), beta_all.end(), beta);
      kernels::xpay_cols(s.z, beta_all, s.p);
    }
    std::fill(alpha_all.begin(), alpha_all.end(), alpha);
    std::fill(neg_alpha.begin(), neg_alpha.end(), -alpha);
    kernels::axpy_cols(alpha_all, s.p, x);
    a(s.p, s.ap);
    kernels::axpy_cols(neg_alpha, s.ap, s.r);
    if (opts.project_constant) kernels::project_out_constant_cols(s.r);
  }

  ColScalars bnorm = kernels::norm2_cols(b);
  ColScalars rnorm = kernels::norm2_cols(s.r);
  for (std::size_t c = 0; c < k; ++c) {
    stats[c].iterations = opts.iterations;
    stats[c].relative_residual = bnorm[c] > 0.0 ? rnorm[c] / bnorm[c] : 0.0;
    stats[c].converged = true;  // fixed-iteration method; caller checks
  }
  return stats;
}

std::uint32_t chebyshev_iterations_for(double kappa, double factor) {
  if (kappa < 1.0) kappa = 1.0;
  double it = 0.5 * std::sqrt(kappa) * std::log(2.0 / factor);
  return static_cast<std::uint32_t>(std::ceil(std::max(1.0, it)));
}

}  // namespace parsdd
