// Shared types for iterative solvers.
#pragma once

#include <cstdint>
#include <functional>

#include "linalg/multivec.h"
#include "linalg/vector_ops.h"

namespace parsdd {

/// A linear operator: out = Op(in).  Out is pre-sized by the caller.
using LinOp = std::function<void(const Vec&, Vec&)>;

/// A linear operator applied column-wise to a block of k vectors; the block
/// form lets implementations (SpMM, batched elimination folds) stream their
/// structure once for all k columns.
using BlockLinOp = std::function<void(const MultiVec&, MultiVec&)>;

struct IterStats {
  std::uint32_t iterations = 0;
  /// ||b - A x|| / ||b|| at exit.
  double relative_residual = 0.0;
  bool converged = false;
};

/// Reusable iteration buffers for the block solvers.  A caller that solves
/// repeatedly (the recursive chain visits each level once per outer
/// iteration) passes the same scratch back in so steady-state solves do no
/// allocation; each concurrent solve owns its own scratch.
struct BlockScratch {
  MultiVec r, z, p, ap, r_prev;
};

}  // namespace parsdd
