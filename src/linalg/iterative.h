// Shared types for iterative solvers.
#pragma once

#include <cstdint>
#include <functional>

#include "linalg/vector_ops.h"

namespace parsdd {

/// A linear operator: out = Op(in).  Out is pre-sized by the caller.
using LinOp = std::function<void(const Vec&, Vec&)>;

struct IterStats {
  std::uint32_t iterations = 0;
  /// ||b - A x|| / ||b|| at exit.
  double relative_residual = 0.0;
  bool converged = false;
};

}  // namespace parsdd
