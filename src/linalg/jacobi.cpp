#include "linalg/jacobi.h"
#include "kernels/kernels.h"

#include <stdexcept>

#include "parallel/primitives.h"

namespace parsdd {

IterStats jacobi(const CsrMatrix& a, const Vec& b, Vec& x,
                 const JacobiOptions& opts) {
  std::uint32_t n = a.dimension();
  Vec d = a.diagonal();
  for (double v : d) {
    if (!(v > 0.0)) throw std::domain_error("jacobi: non-positive diagonal");
  }
  IterStats stats;
  double bnorm = kernels::norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    stats.converged = true;
    return stats;
  }
  Vec r(n), ax(n);
  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    a.multiply(x, ax);
    parallel_for(0, n, [&](std::size_t i) { r[i] = b[i] - ax[i]; });
    if (opts.project_constant) kernels::project_out_constant(r);
    stats.relative_residual = kernels::norm2(r) / bnorm;
    if (stats.relative_residual <= opts.tolerance) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    parallel_for(0, n,
                 [&](std::size_t i) { x[i] += opts.damping * r[i] / d[i]; });
  }
  stats.converged = false;
  return stats;
}

LinOp jacobi_preconditioner(const CsrMatrix& a) {
  Vec d = a.diagonal();
  for (double& v : d) {
    if (!(v > 0.0)) throw std::domain_error("jacobi: non-positive diagonal");
  }
  return [d](const Vec& in, Vec& out) {
    out.resize(in.size());
    parallel_for(0, in.size(), [&](std::size_t i) { out[i] = in[i] / d[i]; });
  };
}

BlockLinOp jacobi_preconditioner_block(const CsrMatrix& a) {
  Vec d = a.diagonal();
  for (double& v : d) {
    if (!(v > 0.0)) throw std::domain_error("jacobi: non-positive diagonal");
  }
  return [d](const MultiVec& in, MultiVec& out) {
    ensure_shape(out, in.rows(), in.cols());
    std::size_t k = in.cols();
    parallel_for(0, in.rows(), [&](std::size_t i) {
      const double* ir = in.row(i);
      double* orow = out.row(i);
      for (std::size_t c = 0; c < k; ++c) orow[c] = ir[c] / d[i];
    });
  };
}

}  // namespace parsdd
