// Parallel BLAS-1 style vector kernels.
//
// Every solver iteration (rPCh, CG, Chebyshev, Jacobi) is a sequence of these
// O(n)-work, O(log n)-depth operations plus one SpMV, matching the paper's
// accounting ("O(1) matrix-vector multiplications ... and other simple
// vector-vector operations", Section 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsdd {

using Vec = std::vector<double>;

/// y += a * x
void axpy(double a, const Vec& x, Vec& y);
/// y = x + a * y
void xpay(const Vec& x, double a, Vec& y);
/// Inner product <x, y>.
double dot(const Vec& x, const Vec& y);
/// Euclidean norm.
double norm2(const Vec& x);
/// x *= a
void scale(double a, Vec& x);
/// out = x - y
Vec subtract(const Vec& x, const Vec& y);
/// Sum of entries.
double sum(const Vec& x);
/// Subtracts the mean from every entry (projection onto 1-perp, the image of
/// a connected Laplacian).
void project_out_constant(Vec& x);
/// Deterministic pseudo-random vector with entries in [-1, 1], mean removed.
Vec random_unit_like(std::size_t n, std::uint64_t seed);

}  // namespace parsdd
