// Parallel BLAS-1 style vector kernels.
//
// Every solver iteration (rPCh, CG, Chebyshev, Jacobi) is a sequence of these
// O(n)-work, O(log n)-depth operations plus one SpMV, matching the paper's
// accounting ("O(1) matrix-vector multiplications ... and other simple
// vector-vector operations", Section 6).
//
// DEPRECATED surface: these free functions are thin forwarders onto the
// dispatchable SIMD backend in kernels/kernels.h (parsdd::kernels::).  New
// code should call the kernels:: entry points directly; the wrappers remain
// so external callers keep compiling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace parsdd {

using Vec = std::vector<double>;

/// y += a * x
[[deprecated("use parsdd::kernels::axpy (kernels/kernels.h)")]]
void axpy(double a, const Vec& x, Vec& y);
/// y = x + a * y
[[deprecated("use parsdd::kernels::xpay (kernels/kernels.h)")]]
void xpay(const Vec& x, double a, Vec& y);
/// Inner product <x, y>.
[[deprecated("use parsdd::kernels::dot (kernels/kernels.h)")]]
double dot(const Vec& x, const Vec& y);
/// Euclidean norm.
[[deprecated("use parsdd::kernels::norm2 (kernels/kernels.h)")]]
double norm2(const Vec& x);
/// x *= a
[[deprecated("use parsdd::kernels::scale (kernels/kernels.h)")]]
void scale(double a, Vec& x);
/// out = x - y
[[deprecated("use parsdd::kernels::subtract (kernels/kernels.h)")]]
Vec subtract(const Vec& x, const Vec& y);
/// Sum of entries.
[[deprecated("use parsdd::kernels::sum (kernels/kernels.h)")]]
double sum(const Vec& x);
/// Subtracts the mean from every entry (projection onto 1-perp, the image of
/// a connected Laplacian).
[[deprecated("use parsdd::kernels::project_out_constant (kernels/kernels.h)")]]
void project_out_constant(Vec& x);
/// Deterministic pseudo-random vector with entries in [-1, 1], mean removed.
/// (Not deprecated: it is not a hot-loop kernel, just a seeded generator.)
Vec random_unit_like(std::size_t n, std::uint64_t seed);

}  // namespace parsdd
