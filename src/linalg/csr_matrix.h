// Symmetric sparse matrices in CSR form with parallel SpMV.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/multivec.h"
#include "linalg/vector_ops.h"

namespace parsdd {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// A square sparse matrix; both triangles stored.  Construction sorts and
/// merges duplicate coordinates.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate triplets (duplicates summed).  The caller is
  /// responsible for supplying a symmetric pattern when symmetry is assumed
  /// (Laplacian/SDD helpers do this).
  static CsrMatrix from_triplets(std::uint32_t n, std::vector<Triplet> ts);

  std::uint32_t dimension() const { return n_; }
  std::size_t num_nonzeros() const { return val_.size(); }

  /// y = A x; parallel over rows, O(nnz) work.
  void multiply(const Vec& x, Vec& y) const;
  Vec apply(const Vec& x) const;

  /// Y = A X (SpMM): one traversal of the matrix structure serves all
  /// X.cols() right-hand sides; the inner loop is contiguous over each
  /// row of the block.  Column c is arithmetically identical to
  /// multiply(X[:,c]).
  void multiply(const MultiVec& x, MultiVec& y) const;
  MultiVec apply_block(const MultiVec& x) const;

  /// Diagonal entries (zeros where absent).
  Vec diagonal() const;

  /// Checks symmetric diagonal dominance: A = Aᵀ and
  /// A_ii >= Σ_{j≠i} |A_ij| for all i (within `tol` slack).
  bool is_sdd(double tol = 1e-9) const;

  /// Checks the Laplacian property: SDD, non-positive off-diagonals, and
  /// zero row sums (within tol).
  bool is_laplacian(double tol = 1e-9) const;

  /// Quadratic form xᵀ A x.
  double quadratic_form(const Vec& x) const;

  /// Dense row-major copy (for the bottom-level factorization; small n only).
  std::vector<double> to_dense() const;

  /// Snapshot encoding (util/serialize.h): the CSR arrays verbatim, so a
  /// loaded matrix multiplies bitwise-identically to the saved one (no
  /// re-sorting or duplicate merging on the load path).  load() validates
  /// the structural invariants (monotone offsets, in-range columns) so a
  /// corrupt snapshot fails the Reader instead of crashing a later SpMV.
  void save(serialize::Writer& w) const;
  static CsrMatrix load(serialize::Reader& r);

  /// Row access for algorithms that need to walk the structure.
  std::span<const std::uint32_t> row_cols(std::uint32_t i) const {
    return {col_.data() + off_[i], off_[i + 1] - off_[i]};
  }
  std::span<const double> row_vals(std::uint32_t i) const {
    return {val_.data() + off_[i], off_[i + 1] - off_[i]};
  }

  /// Raw CSR arrays for the kernel backend (kernels/kernels.h) and for
  /// building precision-converted value mirrors (the fp32 chain keeps a
  /// float copy of vals() alongside the shared offsets/cols structure).
  const std::size_t* offsets() const { return off_.data(); }
  const std::uint32_t* cols() const { return col_.data(); }
  const double* vals() const { return val_.data(); }

 private:
  std::uint32_t n_ = 0;
  std::vector<std::size_t> off_;
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
};

}  // namespace parsdd
