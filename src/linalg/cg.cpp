#include "linalg/cg.h"
#include "kernels/kernels.h"

#include <cmath>

namespace parsdd {

IterStats conjugate_gradient(const LinOp& a, const Vec& b, Vec& x,
                             const CgOptions& opts, const LinOp* precond) {
  std::size_t n = b.size();
  IterStats stats;
  Vec r = b;
  Vec ax(n);
  a(x, ax);
  for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  if (opts.project_constant) kernels::project_out_constant(r);

  double bnorm = kernels::norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    stats.converged = true;
    return stats;
  }

  Vec z(n);
  auto apply_precond = [&](const Vec& in, Vec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) kernels::project_out_constant(out);
    } else {
      out = in;
    }
  };
  apply_precond(r, z);
  Vec p = z;
  Vec r_prev;       // used by the flexible beta
  double rz = kernels::dot(r, z);

  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    stats.relative_residual = kernels::norm2(r) / bnorm;
    if (stats.relative_residual <= opts.tolerance) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    a(p, ax);  // ax = A p
    double pap = kernels::dot(p, ax);
    if (!(pap > 0.0)) break;  // numerical breakdown (or A not PSD on p)
    double alpha = rz / pap;
    kernels::axpy(alpha, p, x);
    if (opts.flexible) r_prev = r;
    kernels::axpy(-alpha, ax, r);
    if (opts.project_constant) kernels::project_out_constant(r);
    apply_precond(r, z);
    double beta;
    double rz_next;
    if (opts.flexible) {
      // Polak–Ribière: beta = z·(r - r_prev) / (z_prev·r_prev); tolerant of
      // a preconditioner that varies between applications.
      Vec dr = kernels::subtract(r, r_prev);
      beta = kernels::dot(z, dr) / rz;
      rz_next = kernels::dot(r, z);
    } else {
      rz_next = kernels::dot(r, z);
      beta = rz_next / rz;
    }
    if (!std::isfinite(beta)) break;
    if (beta < 0.0) beta = 0.0;  // restart direction if PR goes negative
    rz = rz_next;
    kernels::xpay(z, beta, p);
  }
  stats.relative_residual = kernels::norm2(r) / bnorm;
  stats.converged = stats.relative_residual <= opts.tolerance;
  return stats;
}

std::vector<IterStats> block_conjugate_gradient(const BlockLinOp& a,
                                                const MultiVec& b, MultiVec& x,
                                                const CgOptions& opts,
                                                const BlockLinOp* precond,
                                                BlockScratch* scratch) {
  std::size_t n = b.rows(), k = b.cols();
  std::vector<IterStats> stats(k);
  if (k == 0) return stats;
  BlockScratch local;
  BlockScratch& s = scratch ? *scratch : local;
  ensure_shape(s.r, n, k);
  ensure_shape(s.z, n, k);
  ensure_shape(s.p, n, k);
  ensure_shape(s.ap, n, k);
  if (opts.flexible) ensure_shape(s.r_prev, n, k);
  ensure_shape(x, n, k);

  const ColScalars minus_one(k, -1.0);
  // r = b - A x
  a(x, s.ap);
  kernels::copy_cols(b, s.r);
  kernels::axpy_cols(minus_one, s.ap, s.r);
  if (opts.project_constant) kernels::project_out_constant_cols(s.r);

  ColScalars bnorm = kernels::norm2_cols(b);
  ColMask alive(k, 1);
  std::size_t remaining = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (bnorm[c] == 0.0) {
      for (std::size_t i = 0; i < n; ++i) x.at(i, c) = 0.0;
      stats[c].converged = true;
      alive[c] = 0;
      --remaining;
    }
  }

  auto apply_precond = [&](const MultiVec& in, MultiVec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) kernels::project_out_constant_cols(out);
    } else {
      ensure_shape(out, in.rows(), in.cols());
      kernels::copy_cols(in, out);
    }
  };
  apply_precond(s.r, s.z);
  kernels::copy_cols(s.z, s.p);
  ColScalars rz = kernels::dot_cols(s.r, s.z);
  ColScalars alpha(k, 0.0), beta(k, 0.0);

  for (std::uint32_t it = 0; it < opts.max_iterations && remaining > 0; ++it) {
    ColScalars rnorm = kernels::norm2_cols(s.r);
    for (std::size_t c = 0; c < k; ++c) {
      if (!alive[c]) continue;
      stats[c].relative_residual = rnorm[c] / bnorm[c];
      if (stats[c].relative_residual <= opts.tolerance) {
        stats[c].converged = true;
        alive[c] = 0;
        --remaining;
      }
    }
    if (remaining == 0) break;
    for (std::size_t c = 0; c < k; ++c) {
      if (alive[c]) ++stats[c].iterations;
    }
    a(s.p, s.ap);
    ColScalars pap = kernels::dot_cols(s.p, s.ap);
    for (std::size_t c = 0; c < k; ++c) {
      if (!alive[c]) continue;
      if (!(pap[c] > 0.0)) {  // numerical breakdown on this column
        alive[c] = 0;
        --remaining;
        alpha[c] = 0.0;
      } else {
        alpha[c] = rz[c] / pap[c];
      }
    }
    if (remaining == 0) break;
    kernels::axpy_cols(alpha, s.p, x, &alive);
    if (opts.flexible) kernels::copy_cols(s.r, s.r_prev, &alive);
    ColScalars neg_alpha(k);
    for (std::size_t c = 0; c < k; ++c) neg_alpha[c] = -alpha[c];
    kernels::axpy_cols(neg_alpha, s.ap, s.r, &alive);
    if (opts.project_constant) kernels::project_out_constant_cols(s.r, &alive);
    apply_precond(s.r, s.z);
    ColScalars rz_next;
    if (opts.flexible) {
      // Polak–Ribière per column, tolerant of the varying preconditioner.
      ColScalars num = kernels::dot_diff_cols(s.z, s.r, s.r_prev);
      rz_next = kernels::dot_cols(s.r, s.z);
      for (std::size_t c = 0; c < k; ++c) beta[c] = num[c] / rz[c];
    } else {
      rz_next = kernels::dot_cols(s.r, s.z);
      for (std::size_t c = 0; c < k; ++c) beta[c] = rz_next[c] / rz[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (!alive[c]) continue;
      if (!std::isfinite(beta[c])) {
        alive[c] = 0;
        --remaining;
        continue;
      }
      if (beta[c] < 0.0) beta[c] = 0.0;  // restart direction
      rz[c] = rz_next[c];
    }
    kernels::xpay_cols(s.z, beta, s.p, &alive);
  }

  // Columns that hit max_iterations or broke down: their r froze with them,
  // so the exit residual matches what a single solve would have reported.
  ColScalars rnorm = kernels::norm2_cols(s.r);
  for (std::size_t c = 0; c < k; ++c) {
    if (stats[c].converged) continue;
    if (bnorm[c] == 0.0) continue;
    stats[c].relative_residual = rnorm[c] / bnorm[c];
    stats[c].converged = stats[c].relative_residual <= opts.tolerance;
  }
  return stats;
}

}  // namespace parsdd
