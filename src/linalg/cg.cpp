#include "linalg/cg.h"

#include <cmath>

namespace parsdd {

IterStats conjugate_gradient(const LinOp& a, const Vec& b, Vec& x,
                             const CgOptions& opts, const LinOp* precond) {
  std::size_t n = b.size();
  IterStats stats;
  Vec r = b;
  Vec ax(n);
  a(x, ax);
  for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  if (opts.project_constant) project_out_constant(r);

  double bnorm = norm2(b);
  if (bnorm == 0.0) {
    x.assign(n, 0.0);
    stats.converged = true;
    return stats;
  }

  Vec z(n);
  auto apply_precond = [&](const Vec& in, Vec& out) {
    if (precond) {
      (*precond)(in, out);
      if (opts.project_constant) project_out_constant(out);
    } else {
      out = in;
    }
  };
  apply_precond(r, z);
  Vec p = z;
  Vec r_prev;       // used by the flexible beta
  double rz = dot(r, z);

  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    stats.relative_residual = norm2(r) / bnorm;
    if (stats.relative_residual <= opts.tolerance) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    a(p, ax);  // ax = A p
    double pap = dot(p, ax);
    if (!(pap > 0.0)) break;  // numerical breakdown (or A not PSD on p)
    double alpha = rz / pap;
    axpy(alpha, p, x);
    if (opts.flexible) r_prev = r;
    axpy(-alpha, ax, r);
    if (opts.project_constant) project_out_constant(r);
    apply_precond(r, z);
    double beta;
    double rz_next;
    if (opts.flexible) {
      // Polak–Ribière: beta = z·(r - r_prev) / (z_prev·r_prev); tolerant of
      // a preconditioner that varies between applications.
      Vec dr = subtract(r, r_prev);
      beta = dot(z, dr) / rz;
      rz_next = dot(r, z);
    } else {
      rz_next = dot(r, z);
      beta = rz_next / rz;
    }
    if (!std::isfinite(beta)) break;
    if (beta < 0.0) beta = 0.0;  // restart direction if PR goes negative
    rz = rz_next;
    xpay(z, beta, p);
  }
  stats.relative_residual = norm2(r) / bnorm;
  stats.converged = stats.relative_residual <= opts.tolerance;
  return stats;
}

}  // namespace parsdd
