// Section 5.2.1 (SparseAKPW): low-stretch *subgraphs* with polylog stretch.
//
// The modification over Algorithm 5.1 (Lemma 5.5): iteration j partitions
// with at most λ+1 edge classes — the λ youngest live classes individually
// plus one "generic bucket" holding everything older — and edges of class i
// that survive λ iterations (i.e. reach iteration i+λ uncontracted) are
// *promoted* into the output subgraph Ĝ alongside the tree T.  Promoted
// edges have stretch exactly 1 in Ĝ, which is what removes the
// 2^sqrt(log n log log n) factor; the price is n-1 + m/y^λ edges instead of
// a tree.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

struct SparseAkpwOptions {
  std::uint64_t seed = 1;
  /// λ: number of iterations a class stays individually tracked before its
  /// survivors are promoted into the output.
  std::uint32_t lambda = 2;
  /// Per-iteration decay target y and bucket base z; 0 = practical auto.
  /// The paper sets y = β/(c₂ log³ n), z = 4c₁y(λ+1)log³ n from the stretch
  /// parameter β.
  double y = 0.0;
  double z = 0.0;
  double center_constant = 2.0;
  /// Optional externally supplied weight classes (0-based, one per edge).
  /// Used by the segmented execution of Lemma 5.8, where a segment's run
  /// must keep the global bucket numbering rather than re-normalize to its
  /// own minimum weight.  When set, `num_classes` must cover all values and
  /// iteration j activates class `first_class + j`.
  const std::vector<std::uint32_t>* classes = nullptr;
  std::uint32_t num_classes = 0;
  std::uint32_t first_class = 0;
};

struct SparseAkpwResult {
  /// Indices into the input edge list: the spanning tree/forest part.
  std::vector<std::uint32_t> tree_edges;
  /// Indices of promoted (surviving) edges; disjoint from tree_edges.
  std::vector<std::uint32_t> extra_edges;
  std::uint32_t iterations = 0;
  std::uint32_t num_classes = 0;
  double y = 0.0;
  double z = 0.0;

  /// tree + extra edges combined.
  std::vector<std::uint32_t> all_edges() const;
};

/// Computes the SparseAKPW ultra-sparse subgraph of (V=[0,n), edges).
SparseAkpwResult sparse_akpw(std::uint32_t n, const EdgeList& edges,
                             const SparseAkpwOptions& opts = {});

}  // namespace parsdd
