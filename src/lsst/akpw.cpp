#include "lsst/akpw.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/contraction.h"
#include "graph/graph.h"
#include "parallel/primitives.h"
#include "partition/partition.h"

namespace parsdd {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}

std::vector<std::uint32_t> weight_classes(const EdgeList& edges, double z,
                                          std::uint32_t* num_classes) {
  std::vector<std::uint32_t> cls(edges.size());
  if (edges.empty()) {
    if (num_classes) *num_classes = 0;
    return cls;
  }
  double wmin = parallel_reduce(
      0, edges.size(), std::numeric_limits<double>::infinity(),
      [&](std::size_t i) { return edges[i].w; },
      [](double a, double b) { return std::min(a, b); });
  if (!(wmin > 0.0)) {
    throw std::invalid_argument("weight_classes: weights must be positive");
  }
  const double log_z = std::log(z);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    double ratio = edges[i].w / wmin;
    // Class i (0-based) holds weights in [z^i, z^{i+1}).
    std::int64_t c =
        static_cast<std::int64_t>(std::floor(std::log(ratio) / log_z));
    if (c < 0) c = 0;  // guard round-off at the boundary
    // Guard the opposite round-off direction as well.
    while (std::pow(z, static_cast<double>(c)) > ratio * (1.0 + 1e-12)) --c;
    cls[i] = static_cast<std::uint32_t>(std::max<std::int64_t>(c, 0));
  });
  if (num_classes) {
    std::uint32_t mx = parallel_reduce(
        0, cls.size(), 0u, [&](std::size_t i) { return cls[i]; },
        [](std::uint32_t a, std::uint32_t b) { return std::max(a, b); });
    *num_classes = mx + 1;
  }
  return cls;
}

void akpw_theory_parameters(std::uint32_t n, double* y, double* z) {
  double log2n = std::log2(std::max<double>(n, 4.0));
  double loglog = std::log2(std::max(2.0, log2n));
  *y = std::pow(2.0, std::sqrt(6.0 * log2n * loglog));
  double tau = std::ceil(3.0 * log2n / std::log2(*y));
  const double c1 = 272.0;
  *z = 4.0 * c1 * (*y) * tau * log2n * log2n * log2n;
}

void akpw_practical_parameters(std::uint32_t n, double* y, double* z) {
  double log2n = std::log2(std::max<double>(n, 4.0));
  *y = 4.0;
  *z = std::max(16.0, 6.0 * (*y) * log2n);
}

std::vector<std::uint32_t> component_bfs_parents(const Graph& g,
                                                 const Decomposition& d) {
  // The parent edge chosen for each vertex becomes a tree edge of the AKPW
  // forest, so claims must be deterministic: as in graph/bfs.cpp, claim with
  // key (frontier_index << 32 | adjacency_slot) and let the minimum win —
  // exactly the first touch of a sequential scan in frontier order — instead
  // of first-CAS-wins, which hands the tree to the scheduler.
  constexpr std::uint64_t kNoClaim = ~std::uint64_t{0};
  std::uint32_t n = g.num_vertices();
  std::vector<std::uint32_t> parent_eid(n, kNone);
  std::vector<std::uint32_t> visited(n, 0);
  std::vector<std::uint64_t> cand(n, kNoClaim);
  std::vector<std::uint32_t> frontier = d.center;
  for (std::uint32_t c : frontier) visited[c] = 1;
  std::size_t total_seen = frontier.size();
  static GranularitySite site("akpw.component_bfs", /*init_ns_per_unit=*/4.0);
  std::uint64_t degree_hint = n ? 2 * g.num_edges() / n + 1 : 1;
  while (!frontier.empty()) {
    std::size_t f = frontier.size();
    std::vector<std::uint32_t> next;
    if (!site.should_parallelize(f * degree_hint)) {
      for (std::size_t i = 0; i < f; ++i) {
        std::uint32_t u = frontier[i];
        auto nbrs = g.neighbors(u);
        auto eids = g.edge_ids(u);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          std::uint32_t v = nbrs[k];
          if (d.component[v] != d.component[u] || visited[v]) continue;
          visited[v] = 1;
          parent_eid[v] = eids[k];
          next.push_back(v);
        }
      }
    } else {
      std::size_t nb = num_blocks_for(f, 64);
      std::size_t block = (f + nb - 1) / nb;
      // Phase 1: claim minimum (i, k) per unvisited same-component neighbor.
      ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
        std::size_t s = b * block, e = std::min(f, s + block);
        for (std::size_t i = s; i < e; ++i) {
          std::uint32_t u = frontier[i];
          auto nbrs = g.neighbors(u);
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            std::uint32_t v = nbrs[k];
            if (d.component[v] != d.component[u] || visited[v]) continue;
            std::uint64_t key = (static_cast<std::uint64_t>(i) << 32) | k;
            std::atomic_ref<std::uint64_t> cv(cand[v]);
            std::uint64_t cur = cv.load(std::memory_order_relaxed);
            while (key < cur && !cv.compare_exchange_weak(
                                    cur, key, std::memory_order_relaxed)) {
            }
          }
        }
      });
      // Phase 2: the unique winner finalizes v and resets its claim slot.
      std::vector<std::vector<std::uint32_t>> local(nb);
      ThreadPool::instance().run_blocks(nb, [&](std::size_t b) {
        std::size_t s = b * block, e = std::min(f, s + block);
        auto& loc = local[b];
        for (std::size_t i = s; i < e; ++i) {
          std::uint32_t u = frontier[i];
          auto nbrs = g.neighbors(u);
          auto eids = g.edge_ids(u);
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            std::uint32_t v = nbrs[k];
            std::atomic_ref<std::uint64_t> cv(cand[v]);
            if (cv.load(std::memory_order_relaxed) !=
                ((static_cast<std::uint64_t>(i) << 32) | k)) {
              continue;
            }
            std::atomic_ref<std::uint32_t>(visited[v])
                .store(1, std::memory_order_relaxed);
            parent_eid[v] = eids[k];
            cv.store(kNoClaim, std::memory_order_relaxed);
            loc.push_back(v);
          }
        }
      });
      for (auto& loc : local) {
        next.insert(next.end(), loc.begin(), loc.end());
      }
    }
    total_seen += next.size();
    frontier.swap(next);
  }
  if (total_seen != n) {
    throw std::logic_error("component_bfs_parents: component not connected");
  }
  return parent_eid;
}

AkpwResult akpw_tree(std::uint32_t n, const EdgeList& edges,
                     const AkpwOptions& opts) {
  AkpwResult result;
  if (opts.theory_parameters) {
    akpw_theory_parameters(n, &result.y, &result.z);
  } else {
    akpw_practical_parameters(n, &result.y, &result.z);
  }
  if (opts.y > 0.0) result.y = opts.y;
  if (opts.z > 0.0) result.z = opts.z;
  if (edges.empty()) return result;

  std::vector<std::uint32_t> cls =
      weight_classes(edges, result.z, &result.num_classes);
  const std::uint32_t num_classes = result.num_classes;

  // Edge indices grouped by class, appended lazily at their iteration.
  std::vector<std::vector<std::uint32_t>> by_class(num_classes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    by_class[cls[i]].push_back(static_cast<std::uint32_t>(i));
  }

  // label[v]: current contracted id of original vertex v.
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t v = 0; v < n; ++v) label[v] = v;
  std::uint32_t n_cur = n;

  std::vector<ClassedEdge> active;
  const std::uint32_t rho =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(result.z / 4.0));
  const std::uint32_t max_iterations = num_classes + 16 * 32 + 64;

  for (std::uint32_t j = 0;; ++j) {
    if (j >= max_iterations) {
      throw std::runtime_error("akpw_tree: failed to make progress");
    }
    // Activate class j, relabeled through all contractions so far.
    if (j < num_classes) {
      for (std::uint32_t idx : by_class[j]) {
        std::uint32_t u = label[edges[idx].u];
        std::uint32_t v = label[edges[idx].v];
        if (u != v) active.push_back(ClassedEdge{u, v, cls[idx], idx});
      }
    }
    if (active.empty()) {
      if (j + 1 >= num_classes) break;
      continue;
    }
    ++result.iterations;

    // Map the classes currently present to a dense range for Partition.
    std::vector<std::uint32_t> present;
    for (const ClassedEdge& e : active) present.push_back(e.cls);
    std::sort(present.begin(), present.end());
    present.erase(std::unique(present.begin(), present.end()), present.end());
    auto dense_of = [&](std::uint32_t c) {
      return static_cast<std::uint32_t>(
          std::lower_bound(present.begin(), present.end(), c) -
          present.begin());
    };
    std::vector<ClassedEdge> dense_edges = active;
    parallel_for(0, dense_edges.size(), [&](std::size_t i) {
      dense_edges[i].cls = dense_of(dense_edges[i].cls);
    });

    PartitionOptions popts;
    popts.seed = opts.seed + 0x9e3779b9ull * (j + 1);
    popts.center_constant = opts.center_constant;
    PartitionResult part =
        partition(n_cur, dense_edges,
                  static_cast<std::uint32_t>(present.size()), rho, popts);
    const Decomposition& d = part.decomposition;

    // Add each component's BFS tree (mapped back to original edge ids).
    Graph g = Graph::from_classed_edges(n_cur, active);
    std::vector<std::uint32_t> parents = component_bfs_parents(g, d);
    for (std::uint32_t v = 0; v < n_cur; ++v) {
      if (parents[v] != kNone) {
        result.tree_edges.push_back(active[parents[v]].id);
      }
    }

    // Contract.
    active = contract_edges(active, d.component);
    parallel_for(0, n, [&](std::size_t v) {
      label[v] = d.component[label[v]];
    });
    n_cur = d.num_components;
    if (active.empty() && j + 1 >= num_classes) break;
  }
  return result;
}

}  // namespace parsdd
