// Theorem 5.9 (LSSubgraph): the full low-stretch spanning subgraph pipeline.
//
// Combines the well-spacing surgery of Lemma 5.7 with SparseAKPW:
//   1. bucket edges by weight, delete a θ-fraction F to make the class
//      structure (4τ/θ, τ)-well-spaced;
//   2. run SparseAKPW(G', λ, β) on the remainder;
//   3. output Ĝ = Ĝ' ∪ F  (Fact 5.6: F's edges have stretch 1).
// Guarantees: |E(Ĝ)| <= n - 1 + m (c_LS log³n/β)^λ and total stretch
// <= m β² log^{3λ+3} n; O~(m) work and polylog depth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "lsst/sparse_akpw.h"

namespace parsdd {

struct LsSubgraphOptions {
  std::uint64_t seed = 1;
  std::uint32_t lambda = 2;
  /// Fraction of edges the well-spacing step may delete (theory:
  /// θ = (log³n/β)^λ).  Deleted edges join the output, so θ also bounds the
  /// extra edges contributed by this step.
  double theta = 0.05;
  /// Decay/bucket parameters forwarded to SparseAKPW (0 = practical auto).
  double y = 0.0;
  double z = 0.0;
  double center_constant = 2.0;
  /// Disable the surgery (for ablation benches).
  bool apply_well_spacing = true;
  /// Lemma 5.8 execution: run SparseAKPW independently per special-bucket
  /// segment, bootstrapping each segment's vertex set by contracting the
  /// MST restricted to earlier buckets ("we can just take the MST on the
  /// entire graph, retain only the edges from buckets E_{i-tau} and lower,
  /// and contract the connected components").  This breaks the iteration
  /// dependency chain, removing the log Δ factor from the critical path;
  /// the output guarantees are unchanged.  Requires apply_well_spacing.
  bool segmented = false;
};

struct LsSubgraphResult {
  /// Indices into the input edge list: the complete subgraph Ĝ.
  std::vector<std::uint32_t> subgraph_edges;
  /// Breakdown: spanning-tree part, promoted survivors, well-spacing F.
  std::size_t tree_count = 0;
  std::size_t extra_count = 0;
  std::size_t removed_count = 0;
  std::uint32_t iterations = 0;
  double y = 0.0;
  double z = 0.0;
};

/// Computes the low-stretch spanning subgraph of (V=[0,n), edges); the input
/// must be connected for Ĝ to be spanning-connected.
LsSubgraphResult ls_subgraph(std::uint32_t n, const EdgeList& edges,
                             const LsSubgraphOptions& opts = {});

}  // namespace parsdd
