// Lemma 5.7: well-spacing surgery.
//
// A weighted graph is (γ, τ)-well-spaced if special weight classes occur at
// least every γ classes and each special class is preceded by τ empty
// classes.  The lemma: any graph can be made (4τ/θ, τ)-well-spaced by
// deleting at most a θ-fraction of edges — divide the weight classes into
// groups of ⌈τ/θ⌉ consecutive classes, and inside each group remove the τ
// consecutive classes with the fewest edges (an averaging argument bounds
// them by θ·|group|).  The removed edges F are added back to the final
// subgraph (Fact 5.6: stretch of F-edges is 1 in Ĝ' ∪ F), and the emptied
// windows break the iteration-dependency chain so the AKPW runs between
// special buckets can proceed independently (Lemma 5.8) — removing the
// log Δ term from the depth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"

namespace parsdd {

struct WellSpacedResult {
  /// Indices (into the input edge list) of the deleted set F.
  std::vector<std::uint32_t> removed_edges;
  /// removed_flag[i] != 0 iff edge i is in F.
  std::vector<std::uint8_t> removed_flag;
  /// Class indices designated special (the first class after each emptied
  /// window); AKPW runs may restart at these independently.
  std::vector<std::uint32_t> special_classes;
};

/// Empties, per group of ⌈τ/θ⌉ consecutive weight classes, the τ-window
/// with the fewest edges.  `cls` gives each edge's 0-based weight class;
/// `num_classes` their count.  Guarantees |F| <= θ·|E|.
WellSpacedResult well_space(const std::vector<std::uint32_t>& cls,
                            std::uint32_t num_classes, std::uint32_t tau,
                            double theta);

}  // namespace parsdd
