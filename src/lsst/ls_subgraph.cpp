#include "lsst/ls_subgraph.h"

#include <algorithm>
#include <cmath>

#include "graph/mst.h"
#include "graph/union_find.h"
#include "lsst/akpw.h"
#include "lsst/well_spaced.h"
#include "parallel/primitives.h"

namespace parsdd {

namespace {

// Lemma 5.8: run SparseAKPW independently on each special-bucket segment.
// `kept` is G' with global weight classes `cls`; segment boundaries are the
// special classes from the well-spacing surgery.  Appends chosen kept-edge
// indices to `out` and accumulates iteration counts.
void run_segments(std::uint32_t n, const EdgeList& kept,
                  const std::vector<std::uint32_t>& cls,
                  std::uint32_t num_classes,
                  const std::vector<std::uint32_t>& boundaries,
                  const LsSubgraphOptions& opts, double y, double z,
                  std::vector<std::uint32_t>* out,
                  std::uint32_t* iterations) {
  // Global MST of G' (class structure is what matters; the MST restricted
  // to earlier buckets has the same components as those buckets' edges).
  std::vector<std::uint32_t> mst_idx = mst_kruskal(n, kept);

  std::vector<std::uint32_t> bounds = boundaries;
  bounds.insert(bounds.begin(), 0);
  bounds.push_back(num_classes);
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
    std::uint32_t b0 = bounds[k], b1 = bounds[k + 1];
    // V^(b0): contract MST edges of classes < b0.
    UnionFind uf(n);
    for (std::uint32_t idx : mst_idx) {
      if (cls[idx] < b0) uf.unite(kept[idx].u, kept[idx].v);
    }
    std::vector<std::uint32_t> label = uf.dense_labels();
    std::uint32_t nc = uf.num_sets();

    // Segment edge list, relabeled; self-loops (inside earlier components)
    // are dropped — they would have been contracted by earlier iterations.
    std::vector<std::uint32_t> seg_to_kept =
        pack_index(kept.size(), [&](std::size_t i) {
          if (cls[i] < b0 || cls[i] >= b1) return false;
          return label[kept[i].u] != label[kept[i].v];
        });
    EdgeList seg_edges = tabulate<Edge>(seg_to_kept.size(), [&](std::size_t i) {
      const Edge& e = kept[seg_to_kept[i]];
      return Edge{label[e.u], label[e.v], e.w};
    });
    std::vector<std::uint32_t> seg_cls = tabulate<std::uint32_t>(
        seg_to_kept.size(),
        [&](std::size_t i) { return cls[seg_to_kept[i]]; });
    if (seg_edges.empty()) continue;

    SparseAkpwOptions sopts;
    sopts.seed = opts.seed + 0x777ull * (k + 1);
    sopts.lambda = opts.lambda;
    sopts.y = y;
    sopts.z = z;
    sopts.center_constant = opts.center_constant;
    sopts.classes = &seg_cls;
    sopts.num_classes = b1;
    sopts.first_class = b0;
    SparseAkpwResult r = sparse_akpw(nc, seg_edges, sopts);
    *iterations = std::max(*iterations, r.iterations);
    for (std::uint32_t idx : r.all_edges()) {
      out->push_back(seg_to_kept[idx]);
    }
  }
}

}  // namespace

LsSubgraphResult ls_subgraph(std::uint32_t n, const EdgeList& edges,
                             const LsSubgraphOptions& opts) {
  LsSubgraphResult result;
  double y, z;
  akpw_practical_parameters(n, &y, &z);
  if (opts.y > 0.0) y = opts.y;
  if (opts.z > 0.0) z = opts.z;
  result.y = y;
  result.z = z;
  if (edges.empty()) return result;

  // Weight classes at base z (the same buckets SparseAKPW will use).
  std::uint32_t num_classes = 0;
  std::vector<std::uint32_t> cls = weight_classes(edges, z, &num_classes);

  // tau = 3 log n / log y (Lemma 5.8's choice: long enough that any class is
  // fully decayed before the next special bucket).
  const double log2n = std::log2(std::max<double>(n, 4.0));
  const std::uint32_t tau = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(
             std::ceil(3.0 * log2n / std::log2(std::max(y, 2.0)))));

  std::vector<std::uint8_t> removed(edges.size(), 0);
  std::vector<std::uint32_t> special_classes;
  if (opts.apply_well_spacing && num_classes > tau) {
    WellSpacedResult ws = well_space(cls, num_classes, tau, opts.theta);
    removed = std::move(ws.removed_flag);
    special_classes = std::move(ws.special_classes);
    result.removed_count = ws.removed_edges.size();
    for (std::uint32_t idx : ws.removed_edges) {
      result.subgraph_edges.push_back(idx);
    }
  }

  // SparseAKPW on the remaining graph G' = G \ F.
  std::vector<std::uint32_t> kept_index =  // maps G' edge -> input index
      pack_index(edges.size(), [&](std::size_t i) { return !removed[i]; });
  EdgeList kept = tabulate<Edge>(
      kept_index.size(), [&](std::size_t i) { return edges[kept_index[i]]; });
  std::vector<std::uint32_t> kept_cls = tabulate<std::uint32_t>(
      kept_index.size(), [&](std::size_t i) { return cls[kept_index[i]]; });

  if (opts.segmented && !special_classes.empty()) {
    // Lemma 5.8: independent per-segment runs.
    std::vector<std::uint32_t> chosen;
    run_segments(n, kept, kept_cls, num_classes, special_classes, opts, y, z,
                 &chosen, &result.iterations);
    result.tree_count = chosen.size();  // segments blend tree/extra parts
    for (std::uint32_t idx : chosen) {
      result.subgraph_edges.push_back(kept_index[idx]);
    }
    return result;
  }

  SparseAkpwOptions sopts;
  sopts.seed = opts.seed;
  sopts.lambda = opts.lambda;
  sopts.y = y;
  sopts.z = z;
  sopts.center_constant = opts.center_constant;
  SparseAkpwResult sparse = sparse_akpw(n, kept, sopts);

  result.tree_count = sparse.tree_edges.size();
  result.extra_count = sparse.extra_edges.size();
  result.iterations = sparse.iterations;
  for (std::uint32_t idx : sparse.tree_edges) {
    result.subgraph_edges.push_back(kept_index[idx]);
  }
  for (std::uint32_t idx : sparse.extra_edges) {
    result.subgraph_edges.push_back(kept_index[idx]);
  }
  return result;
}

}  // namespace parsdd
