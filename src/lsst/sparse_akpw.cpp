#include "lsst/sparse_akpw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "graph/contraction.h"
#include "graph/graph.h"
#include "lsst/akpw.h"
#include "parallel/primitives.h"
#include "partition/partition.h"

namespace parsdd {

namespace {
constexpr std::uint32_t kNone = std::numeric_limits<std::uint32_t>::max();
}  // namespace

std::vector<std::uint32_t> SparseAkpwResult::all_edges() const {
  std::vector<std::uint32_t> out = tree_edges;
  out.insert(out.end(), extra_edges.begin(), extra_edges.end());
  return out;
}

SparseAkpwResult sparse_akpw(std::uint32_t n, const EdgeList& edges,
                             const SparseAkpwOptions& opts) {
  SparseAkpwResult result;
  const std::uint32_t lambda = std::max<std::uint32_t>(1, opts.lambda);
  akpw_practical_parameters(n, &result.y, &result.z);
  if (opts.y > 0.0) result.y = opts.y;
  if (opts.z > 0.0) result.z = opts.z;
  if (edges.empty()) return result;

  std::vector<std::uint32_t> cls;
  std::uint32_t base_class = 0;
  if (opts.classes) {
    cls = *opts.classes;
    result.num_classes = opts.num_classes;
    base_class = opts.first_class;
  } else {
    cls = weight_classes(edges, result.z, &result.num_classes);
  }
  const std::uint32_t num_classes = result.num_classes;

  std::vector<std::vector<std::uint32_t>> by_class(num_classes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    by_class[cls[i]].push_back(static_cast<std::uint32_t>(i));
  }

  std::vector<std::uint32_t> label(n);
  for (std::uint32_t v = 0; v < n; ++v) label[v] = v;
  std::uint32_t n_cur = n;

  std::vector<ClassedEdge> active;
  std::vector<std::uint8_t> promoted(edges.size(), 0);
  const std::uint32_t rho =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(result.z / 4.0));
  const std::uint32_t max_iterations = num_classes + 16 * 32 + 64;

  for (std::uint32_t j = base_class;; ++j) {
    if (j >= base_class + max_iterations) {
      throw std::runtime_error("sparse_akpw: failed to make progress");
    }
    if (j < num_classes) {
      for (std::uint32_t idx : by_class[j]) {
        std::uint32_t u = label[edges[idx].u];
        std::uint32_t v = label[edges[idx].v];
        if (u != v) active.push_back(ClassedEdge{u, v, cls[idx], idx});
      }
    }
    // Promote survivors of class j-lambda: they enter the generic bucket
    // and simultaneously join the output (Lemma 5.5: edges of E_i that
    // survive until iteration i+λ "are eventually all added to Ĝ").
    if (j >= base_class + lambda) {
      std::uint32_t old_cls = j - lambda;
      for (const ClassedEdge& e : active) {
        if (e.cls == old_cls && !promoted[e.id]) {
          promoted[e.id] = 1;
          result.extra_edges.push_back(e.id);
        }
      }
    }
    if (active.empty()) {
      if (j + 1 >= num_classes) break;
      continue;
    }
    ++result.iterations;

    // Bucket classes for Partition: the λ youngest classes individually
    // (dense ids 1..λ by age), everything older in generic bucket 0.
    std::uint32_t k = lambda + 1;
    std::vector<ClassedEdge> dense_edges = active;
    parallel_for(0, dense_edges.size(), [&](std::size_t i) {
      std::uint32_t c = dense_edges[i].cls;
      std::uint32_t age = j - c;  // 0 = newest
      dense_edges[i].cls = age < lambda ? age + 1 : 0;
    });

    PartitionOptions popts;
    popts.seed = opts.seed + 0x9e3779b9ull * (j + 1);
    popts.center_constant = opts.center_constant;
    PartitionResult part = partition(n_cur, dense_edges, k, rho, popts);
    const Decomposition& d = part.decomposition;

    Graph g = Graph::from_classed_edges(n_cur, active);
    std::vector<std::uint32_t> parents = component_bfs_parents(g, d);
    for (std::uint32_t v = 0; v < n_cur; ++v) {
      if (parents[v] != kNone) {
        std::uint32_t orig = active[parents[v]].id;
        if (!promoted[orig]) {
          result.tree_edges.push_back(orig);
        } else {
          // Already in the output as a promoted edge; keep the tree's edge
          // list disjoint (the union is what matters downstream).
        }
      }
    }

    active = contract_edges(active, d.component);
    parallel_for(0, n, [&](std::size_t v) {
      label[v] = d.component[label[v]];
    });
    n_cur = d.num_components;
    if (active.empty() && j + 1 >= num_classes) break;
  }
  return result;
}

}  // namespace parsdd
