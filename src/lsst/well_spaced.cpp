#include "lsst/well_spaced.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace parsdd {

WellSpacedResult well_space(const std::vector<std::uint32_t>& cls,
                            std::uint32_t num_classes, std::uint32_t tau,
                            double theta) {
  if (tau == 0 || !(theta > 0.0) || theta > 1.0) {
    throw std::invalid_argument("well_space: need tau >= 1, 0 < theta <= 1");
  }
  WellSpacedResult out;
  out.removed_flag.assign(cls.size(), 0);
  if (num_classes == 0) return out;

  std::vector<std::size_t> class_count(num_classes, 0);
  for (std::uint32_t c : cls) {
    assert(c < num_classes);
    ++class_count[c];
  }

  const std::uint32_t group_size = static_cast<std::uint32_t>(
      std::ceil(static_cast<double>(tau) / theta));
  std::vector<std::uint8_t> class_removed(num_classes, 0);

  for (std::uint32_t g0 = 0; g0 < num_classes; g0 += group_size) {
    std::uint32_t g1 = std::min(num_classes, g0 + group_size);
    // A trailing partial group has fewer than 1/theta disjoint tau-windows,
    // so the averaging argument cannot bound its lightest window by a
    // theta-fraction; leave it untouched (|F| <= theta*|E| must hold).
    if (g1 - g0 < group_size) break;
    // Disjoint tau-windows; pick the lightest (averaging gives <= theta
    // fraction of the group's edges).
    std::uint32_t best_start = g0;
    std::size_t best_count = static_cast<std::size_t>(-1);
    for (std::uint32_t s = g0; s + tau <= g1; s += tau) {
      std::size_t cnt = 0;
      for (std::uint32_t c = s; c < s + tau; ++c) cnt += class_count[c];
      if (cnt < best_count) {
        best_count = cnt;
        best_start = s;
      }
    }
    for (std::uint32_t c = best_start; c < best_start + tau; ++c) {
      class_removed[c] = 1;
    }
    if (best_start + tau < num_classes) {
      out.special_classes.push_back(best_start + tau);
    }
  }

  for (std::size_t i = 0; i < cls.size(); ++i) {
    if (class_removed[cls[i]]) {
      out.removed_flag[i] = 1;
      out.removed_edges.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

}  // namespace parsdd
