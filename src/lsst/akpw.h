// Algorithm 5.1: AKPW low-stretch spanning tree via repeated
// partition-and-contract (Theorem 5.1).
//
// Edges are bucketed geometrically by weight (E_i = {e : w(e) ∈ [z^{i-1},
// z^i)} after normalizing the minimum weight to 1).  Iteration j runs
// Partition on the current contracted multigraph with hop-radius z/4 over
// the active weight classes, adds a BFS tree of every component to T, and
// contracts the components (keeping parallel edges).  The paper's parameter
// choices (y = 2^sqrt(6 log n log log n), z = 4 c₁ y τ log³ n) optimize the
// asymptotic stretch but are astronomically large at practical n — with them
// the very first partition would swallow any laptop-scale graph whole.  The
// implementation therefore exposes (y, z) with practical defaults and a
// theory() constructor producing the paper's values; the E3 bench reports
// how measured stretch scales under the practical settings.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "partition/split_graph.h"

namespace parsdd {

struct AkpwOptions {
  std::uint64_t seed = 1;
  /// Target per-iteration decay of each weight class; 0 = auto (practical).
  double y = 0.0;
  /// Weight-bucket base; partition radius is z/4; 0 = auto (practical).
  double z = 0.0;
  /// Center-sampling multiplier forwarded to splitGraph.
  double center_constant = 2.0;
  /// If true, use the paper's theoretical y and z (only sensible for tiny n
  /// or for demonstrating the parameter collapse).
  bool theory_parameters = false;
};

struct AkpwResult {
  /// Indices into the input edge list forming a spanning tree (connected
  /// input) or spanning forest.
  std::vector<std::uint32_t> tree_edges;
  /// Outer iterations executed (Theorem 5.1: O(log Δ + τ)).
  std::uint32_t iterations = 0;
  /// Number of weight classes (⌈log_z Δ⌉).
  std::uint32_t num_classes = 0;
  /// Resolved parameter values actually used.
  double y = 0.0;
  double z = 0.0;
};

/// Computes the AKPW low-stretch spanning tree/forest of (V=[0,n), edges).
AkpwResult akpw_tree(std::uint32_t n, const EdgeList& edges,
                     const AkpwOptions& opts = {});

/// Buckets edges into weight classes E_i = [z^{i-1}, z^i) after normalizing
/// min weight to 1; returns 0-based class per edge and sets num_classes.
std::vector<std::uint32_t> weight_classes(const EdgeList& edges, double z,
                                          std::uint32_t* num_classes);

/// The paper's theoretical (y, z) for a given n (Algorithm 5.1 step ii).
void akpw_theory_parameters(std::uint32_t n, double* y, double* z);

/// Practical defaults: y small constant, z proportional to y log n.
void akpw_practical_parameters(std::uint32_t n, double* y, double* z);

/// Multi-source BFS from every component center, restricted to stay inside
/// its component (Algorithm 5.1 step 2, "Add a BFS tree of each component").
/// Returns each vertex's parent arc as an index into the edge list `g` was
/// built from, or UINT32_MAX for component centers.  Throws if some
/// component is not internally connected.
std::vector<std::uint32_t> component_bfs_parents(const Graph& g,
                                                 const Decomposition& d);

}  // namespace parsdd
