// Theorem 1.1 — SDDSolve: the public solver facade.
//
// Accepts any symmetric diagonally dominant system A x = b and computes x̃
// with small A-norm error:
//   * SDD matrices are reduced to graph Laplacians by the Gremban double
//     cover (Section 2 / [Gre96]);
//   * the Laplacian graph is split into connected components, and a
//     preconditioner chain (Definition 6.3) is built per nontrivial
//     component;
//   * systems are solved by top-level flexible PCG preconditioned by the
//     recursive chain (default), by pure recursive preconditioned Chebyshev
//     (the paper's rPCh), or by the classical baselines (CG, Jacobi-PCG)
//     for comparison benches.
//
// For singular Laplacian blocks the right-hand side must be consistent
// (mean-zero per connected component); solve() projects it and returns the
// mean-zero (pseudo-inverse) solution.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/gremban.h"
#include "linalg/iterative.h"
#include "solver/chain.h"
#include "solver/recursive_solver.h"

namespace parsdd {

enum class SolveMethod {
  kChainPcg,    // flexible PCG + recursive chain preconditioner (default)
  kChainRpch,   // pure recursive preconditioned Chebyshev (Theorem 1.1)
  kCg,          // unpreconditioned conjugate gradient (baseline)
  kJacobiPcg,   // diagonally preconditioned CG (baseline)
};

struct SddSolverOptions {
  double tolerance = 1e-8;
  std::uint32_t max_iterations = 5000;
  SolveMethod method = SolveMethod::kChainPcg;
  ChainOptions chain;
  RecursiveSolverOptions recursion;
};

struct SddSolveReport {
  IterStats stats;                // worst component's iteration stats
  std::uint32_t chain_levels = 0; // deepest chain
  std::size_t chain_edges = 0;    // total edges across all chain levels
  std::uint64_t bottom_visits = 0;
  std::uint32_t components = 0;
};

class SddSolver {
 public:
  /// Builds a solver for the Laplacian of (V=[0,n), edges).  The graph may
  /// be disconnected; isolated vertices get solution 0.
  static SddSolver for_laplacian(std::uint32_t n, const EdgeList& edges,
                                 const SddSolverOptions& opts = {});

  /// Builds a solver for a general SDD matrix (Gremban reduction applied
  /// when A is not already a Laplacian).
  static SddSolver for_sdd(const CsrMatrix& a,
                           const SddSolverOptions& opts = {});

  /// Solves A x = b.  For Laplacian blocks b is projected per component.
  Vec solve(const Vec& b, SddSolveReport* report = nullptr) const;

  SddSolver(SddSolver&&) noexcept;
  SddSolver& operator=(SddSolver&&) noexcept;
  ~SddSolver();

 private:
  SddSolver();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace parsdd
