// Theorem 1.1 — SDDSolve: the public solver facade.
//
// Accepts any symmetric diagonally dominant system A x = b and computes x̃
// with small A-norm error:
//   * SDD matrices are reduced to graph Laplacians by the Gremban double
//     cover (Section 2 / [Gre96]);
//   * the Laplacian graph is split into connected components, and a
//     preconditioner chain (Definition 6.3) is built per nontrivial
//     component;
//   * systems are solved by top-level flexible PCG preconditioned by the
//     recursive chain (default), by pure recursive preconditioned Chebyshev
//     (the paper's rPCh), or by the classical baselines (CG, Jacobi-PCG)
//     for comparison benches.
//
// Construction IS the setup phase: all RHS-independent state lives in a
// shared, immutable SolverSetup (solver/solver_setup.h), so a solver is
// cheap to copy and safe to query from many threads at once.  Answer many
// right-hand sides against one setup with solve_batch — the serving-shaped
// pattern the apps build on.
//
// For singular Laplacian blocks the right-hand side must be consistent
// (mean-zero per connected component); solve() projects it and returns the
// mean-zero (pseudo-inverse) solution.
//
// Malformed requests come back as StatusOr errors (util/status.h), never
// exceptions — the serving front door (service/solver_service.h) forwards
// them to clients as typed rejections.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/multivec.h"
#include "solver/solver_setup.h"

namespace parsdd {

class SddSolver {
 public:
  /// Builds a solver for the Laplacian of (V=[0,n), edges).  The graph may
  /// be disconnected; isolated vertices get solution 0.
  static SddSolver for_laplacian(std::uint32_t n, const EdgeList& edges,
                                 const SddSolverOptions& opts = {});

  /// Builds a solver for a general SDD matrix (Gremban reduction applied
  /// when A is not already a Laplacian).
  static SddSolver for_sdd(const CsrMatrix& a,
                           const SddSolverOptions& opts = {});

  /// Solves A x = b.  For Laplacian blocks b is projected per component.
  /// InvalidArgument when b has the wrong dimension.
  StatusOr<Vec> solve(const Vec& b, SddSolveReport* report = nullptr) const;

  /// Solves A X = B for k right-hand sides at once; column c equals
  /// solve(B[:,c]) bitwise but the whole block shares each matrix
  /// traversal.  InvalidArgument when B is empty or wrongly sized.
  StatusOr<MultiVec> solve_batch(const MultiVec& b,
                                 BatchSolveReport* report = nullptr) const;

  /// The shared setup phase (chains, components, Gremban state).
  const SolverSetup& setup() const { return *setup_; }

  /// The setup as a shareable ref — how SolverService adopts a solver
  /// built here into its registry without copying the chain.
  const std::shared_ptr<const SolverSetup>& shared_setup() const {
    return setup_;
  }

 private:
  explicit SddSolver(std::shared_ptr<const SolverSetup> setup)
      : setup_(std::move(setup)) {}
  std::shared_ptr<const SolverSetup> setup_;
};

}  // namespace parsdd
