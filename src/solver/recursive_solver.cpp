#include "solver/recursive_solver.h"

#include <cmath>

#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/laplacian.h"

namespace parsdd {

RecursiveSolver::RecursiveSolver(const SolverChain& chain,
                                 const RecursiveSolverOptions& opts)
    : chain_(chain), opts_(opts) {
  if (opts_.inner != InnerMethod::kChebyshev) return;
  // Measure λmax(B_i⁺ A_i) per level, deepest first, so each level's power
  // iteration runs with the deeper levels' bounds already in place.
  level_bounds_.assign(chain_.levels.size(), {0.0, 0.0});
  for (std::size_t i = chain_.levels.size(); i-- > 0;) {
    const ChainLevel& lvl = chain_.levels[i];
    if (!lvl.has_preconditioner) continue;
    Vec y = random_unit_like(lvl.n, opts_.seed + i);
    Vec ay(lvl.n), z(lvl.n);
    double lmax = 1.0;
    for (std::uint32_t it = 0; it < opts_.power_iterations; ++it) {
      lvl.laplacian.multiply(y, ay);
      apply_preconditioner(i, ay, z);
      double nrm = norm2(z);
      if (!(nrm > 0.0)) break;
      scale(1.0 / nrm, z);
      y.swap(z);
      lvl.laplacian.multiply(y, ay);
      double num = dot(y, ay);
      double den = laplacian_quadratic_form(lvl.b_edges, y);
      if (den > 0.0) lmax = std::max(lmax, num / den);
    }
    double upper = lmax * opts_.lambda_max_margin;
    double lower = upper / std::max(2.0, lvl.kappa);
    level_bounds_[i] = {lower, upper};
  }
}

std::uint32_t RecursiveSolver::level_iterations(std::size_t i) const {
  if (opts_.inner_iterations > 0) return opts_.inner_iterations;
  double k = std::min(std::max(chain_.levels[i].kappa, 1.0), opts_.kappa_cap);
  return static_cast<std::uint32_t>(std::ceil(std::sqrt(k)));
}

void RecursiveSolver::apply_preconditioner(std::size_t i, const Vec& r,
                                           Vec& z) const {
  const ChainLevel& lvl = chain_.levels[i];
  Vec reduced_rhs;
  Vec folded = lvl.elimination.fold_rhs(r, &reduced_rhs);
  Vec x_reduced(lvl.elimination.reduced_n, 0.0);
  if (lvl.elimination.reduced_n > 0) {
    apply_level(i + 1, reduced_rhs, x_reduced);
  }
  z = lvl.elimination.back_substitute(folded, x_reduced);
  project_out_constant(z);
}

void RecursiveSolver::apply_level(std::size_t i, const Vec& b, Vec& x) const {
  const ChainLevel& lvl = chain_.levels[i];
  x.assign(lvl.n, 0.0);
  if (!lvl.has_preconditioner) {
    // Bottom level: dense solve (or trivial for degenerate sizes).
    bottom_visits_.fetch_add(1, std::memory_order_relaxed);
    if (chain_.bottom) {
      Vec rhs = b;
      project_out_constant(rhs);
      x = chain_.bottom->solve(rhs);
    }
    return;
  }

  LinOp a_op = [&lvl](const Vec& in, Vec& out) {
    out.resize(in.size());
    lvl.laplacian.multiply(in, out);
  };
  LinOp precond = [this, i](const Vec& in, Vec& out) {
    apply_preconditioner(i, in, out);
  };

  std::uint32_t iters = level_iterations(i);

  if (opts_.inner == InnerMethod::kChebyshev) {
    ChebyshevOptions copts;
    copts.lambda_min = level_bounds_[i].first;
    copts.lambda_max = level_bounds_[i].second;
    // During bounds estimation the level's own bounds are still unset; run
    // with wide provisional bounds (overestimating λmax is safe).
    if (!(copts.lambda_max > 0.0)) {
      copts.lambda_min = 1.0 / std::max(lvl.kappa, 2.0);
      copts.lambda_max = 8.0;
    }
    copts.iterations = iters;
    copts.project_constant = true;
    chebyshev(a_op, b, x, copts, &precond);
  } else {
    CgOptions copts;
    copts.tolerance = opts_.inner_tolerance;
    copts.max_iterations = opts_.inner_max_iterations;
    copts.project_constant = true;
    copts.flexible = true;
    conjugate_gradient(a_op, b, x, copts, &precond);
  }
}

void RecursiveSolver::apply_preconditioner_block(std::size_t i,
                                                 const MultiVec& r,
                                                 MultiVec& z,
                                                 Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  Workspace::Level& sc = ws.levels[i];
  lvl.elimination.fold_rhs_block(r, sc.folded, sc.reduced_rhs);
  if (lvl.elimination.reduced_n > 0) {
    apply_level_block(i + 1, sc.reduced_rhs, sc.x_reduced, ws);
  } else {
    sc.x_reduced.assign(0, r.cols(), 0.0);
  }
  lvl.elimination.back_substitute_block(sc.folded, sc.x_reduced, z);
  project_out_constant_cols(z);
}

void RecursiveSolver::apply_level_block(std::size_t i, const MultiVec& b,
                                        MultiVec& x, Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  std::size_t k = b.cols();
  x.assign(lvl.n, k, 0.0);
  if (!lvl.has_preconditioner) {
    // Bottom level: one dense block solve serves every column.
    bottom_visits_.fetch_add(1, std::memory_order_relaxed);
    if (chain_.bottom) {
      MultiVec& rhs = ws.levels[i].folded;  // unused by this level otherwise
      ensure_shape(rhs, b.rows(), k);
      copy_cols(b, rhs);
      project_out_constant_cols(rhs);
      chain_.bottom->solve_block(rhs, x);
    }
    return;
  }

  BlockLinOp a_op = [&lvl](const MultiVec& in, MultiVec& out) {
    ensure_shape(out, in.rows(), in.cols());
    lvl.laplacian.multiply(in, out);
  };
  BlockLinOp precond = [this, i, &ws](const MultiVec& in, MultiVec& out) {
    apply_preconditioner_block(i, in, out, ws);
  };

  std::uint32_t iters = level_iterations(i);

  if (opts_.inner == InnerMethod::kChebyshev) {
    ChebyshevOptions copts;
    copts.lambda_min = level_bounds_[i].first;
    copts.lambda_max = level_bounds_[i].second;
    if (!(copts.lambda_max > 0.0)) {
      copts.lambda_min = 1.0 / std::max(lvl.kappa, 2.0);
      copts.lambda_max = 8.0;
    }
    copts.iterations = iters;
    copts.project_constant = true;
    chebyshev_block(a_op, b, x, copts, &precond, &ws.levels[i].iter);
  } else {
    CgOptions copts;
    copts.tolerance = opts_.inner_tolerance;
    copts.max_iterations = opts_.inner_max_iterations;
    copts.project_constant = true;
    copts.flexible = true;
    block_conjugate_gradient(a_op, b, x, copts, &precond, &ws.levels[i].iter);
  }
}

void RecursiveSolver::apply_block(const MultiVec& b, MultiVec& x,
                                  Workspace& ws) const {
  apply_level_block(0, b, x, ws);
}

std::vector<IterStats> RecursiveSolver::solve_batch(
    const MultiVec& b, MultiVec& x, double tolerance,
    std::uint32_t max_iterations, Workspace& ws) const {
  const ChainLevel& top = chain_.levels.front();
  std::size_t k = b.cols();
  BlockLinOp a_op = [&top](const MultiVec& in, MultiVec& out) {
    ensure_shape(out, in.rows(), in.cols());
    top.laplacian.multiply(in, out);
  };
  // As in solve(): precondition with the B₁ solve directly when available.
  BlockLinOp precond;
  if (top.has_preconditioner) {
    precond = [this, &ws](const MultiVec& in, MultiVec& out) {
      apply_preconditioner_block(0, in, out, ws);
    };
  } else {
    precond = [this, &ws](const MultiVec& in, MultiVec& out) {
      apply_block(in, out, ws);
    };
  }
  CgOptions copts;
  copts.tolerance = tolerance;
  copts.max_iterations = max_iterations;
  copts.project_constant = true;
  copts.flexible = true;
  if (x.rows() != top.n || x.cols() != k) x.assign(top.n, k, 0.0);
  if (chain_.levels.size() == 1) {
    // Degenerate chain: one chain pass is a direct solve; columns it already
    // converged freeze at the first CG convergence check.
    apply_block(b, x, ws);
  }
  // The top-level CG can safely borrow level 0's iteration scratch: the
  // preconditioner recursion starts at the fold of level 0 (or the bottom
  // solve), neither of which touches levels[0].iter.
  return block_conjugate_gradient(a_op, b, x, copts, &precond,
                                  &ws.levels.front().iter);
}

std::vector<IterStats> RecursiveSolver::solve_rpch_batch(
    const MultiVec& b, MultiVec& x, double tolerance,
    std::uint32_t max_passes, Workspace& ws) const {
  const ChainLevel& top = chain_.levels.front();
  std::size_t k = b.cols();
  std::vector<IterStats> stats(k);
  if (x.rows() != top.n || x.cols() != k) x.assign(top.n, k, 0.0);
  ColScalars bnorm = norm2_cols(b);
  ColMask alive(k, 1);
  std::size_t remaining = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (bnorm[c] == 0.0) {
      stats[c].converged = true;
      alive[c] = 0;
      --remaining;
    }
  }
  const ColScalars minus_one(k, -1.0), one(k, 1.0);
  MultiVec r(top.n, k), ax(top.n, k), dx;
  auto refresh_residual = [&] {
    top.laplacian.multiply(x, ax);
    copy_cols(b, r);
    axpy_cols(minus_one, ax, r);
    project_out_constant_cols(r);
  };
  for (std::uint32_t pass = 0; pass < max_passes && remaining > 0; ++pass) {
    refresh_residual();
    ColScalars rnorm = norm2_cols(r);
    for (std::size_t c = 0; c < k; ++c) {
      if (!alive[c]) continue;
      stats[c].relative_residual = rnorm[c] / bnorm[c];
      if (stats[c].relative_residual <= tolerance) {
        stats[c].converged = true;
        alive[c] = 0;
        --remaining;
      }
    }
    if (remaining == 0) return stats;
    for (std::size_t c = 0; c < k; ++c) {
      if (alive[c]) ++stats[c].iterations;
    }
    apply_block(r, dx, ws);
    axpy_cols(one, dx, x, &alive);
  }
  refresh_residual();
  ColScalars rnorm = norm2_cols(r);
  for (std::size_t c = 0; c < k; ++c) {
    if (stats[c].converged || bnorm[c] == 0.0) continue;
    stats[c].relative_residual = rnorm[c] / bnorm[c];
    stats[c].converged = stats[c].relative_residual <= tolerance;
  }
  return stats;
}

void RecursiveSolver::apply(const Vec& b, Vec& x) const {
  apply_level(0, b, x);
}

IterStats RecursiveSolver::solve(const Vec& b, Vec& x, double tolerance,
                                 std::uint32_t max_iterations) const {
  const ChainLevel& top = chain_.levels.front();
  LinOp a_op = [&top](const Vec& in, Vec& out) {
    out.resize(in.size());
    top.laplacian.multiply(in, out);
  };
  // Precondition the top-level Krylov method with the *B₁ solve* directly
  // (fold through the elimination, recursively solve A₂, back-substitute);
  // apply_level(0) would re-iterate on A₁ redundantly.
  LinOp precond;
  if (top.has_preconditioner) {
    precond = [this](const Vec& in, Vec& out) {
      apply_preconditioner(0, in, out);
    };
  } else {
    precond = [this](const Vec& in, Vec& out) { apply(in, out); };
  }
  CgOptions copts;
  copts.tolerance = tolerance;
  copts.max_iterations = max_iterations;
  copts.project_constant = true;
  copts.flexible = true;
  if (x.size() != top.n) x.assign(top.n, 0.0);
  if (chain_.levels.size() == 1) {
    // Degenerate chain: the "preconditioner" is already a direct solve.
    apply(b, x);
    Vec r(top.n);
    a_op(x, r);
    for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - r[k];
    project_out_constant(r);
    IterStats st;
    st.iterations = 1;
    double bn = norm2(b);
    st.relative_residual = bn > 0 ? norm2(r) / bn : 0.0;
    st.converged = st.relative_residual <= tolerance;
    if (st.converged) return st;
  }
  return conjugate_gradient(a_op, b, x, copts, &precond);
}

IterStats RecursiveSolver::solve_rpch(const Vec& b, Vec& x, double tolerance,
                                      std::uint32_t max_passes) const {
  const ChainLevel& top = chain_.levels.front();
  if (x.size() != top.n) x.assign(top.n, 0.0);
  IterStats stats;
  double bnorm = norm2(b);
  if (bnorm == 0.0) {
    stats.converged = true;
    return stats;
  }
  Vec r = b, ax(top.n), dx;
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    top.laplacian.multiply(x, ax);
    for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - ax[k];
    project_out_constant(r);
    stats.relative_residual = norm2(r) / bnorm;
    if (stats.relative_residual <= tolerance) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    apply(r, dx);
    axpy(1.0, dx, x);
  }
  top.laplacian.multiply(x, ax);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - ax[k];
  project_out_constant(r);
  stats.relative_residual = norm2(r) / bnorm;
  stats.converged = stats.relative_residual <= tolerance;
  return stats;
}

}  // namespace parsdd
