#include "solver/recursive_solver.h"
#include "kernels/kernels.h"

#include <cmath>

#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/laplacian.h"

namespace parsdd {

RecursiveSolver::RecursiveSolver(const SolverChain& chain,
                                 const RecursiveSolverOptions& opts)
    : chain_(chain), opts_(opts) {
  if (opts_.inner != InnerMethod::kChebyshev) return;
  // Measure λmax(B_i⁺ A_i) per level, deepest first, so each level's power
  // iteration runs with the deeper levels' bounds already in place.
  level_bounds_.assign(chain_.levels.size(), {0.0, 0.0});
  for (std::size_t i = chain_.levels.size(); i-- > 0;) {
    const ChainLevel& lvl = chain_.levels[i];
    if (!lvl.has_preconditioner) continue;
    Vec y = random_unit_like(lvl.n, opts_.seed + i);
    Vec ay(lvl.n), z(lvl.n);
    double lmax = 1.0;
    for (std::uint32_t it = 0; it < opts_.power_iterations; ++it) {
      lvl.laplacian.multiply(y, ay);
      apply_preconditioner(i, ay, z);
      double nrm = kernels::norm2(z);
      if (!(nrm > 0.0)) break;
      kernels::scale(1.0 / nrm, z);
      y.swap(z);
      lvl.laplacian.multiply(y, ay);
      double num = kernels::dot(y, ay);
      double den = laplacian_quadratic_form(lvl.b_edges, y);
      if (den > 0.0) lmax = std::max(lmax, num / den);
    }
    double upper = lmax * opts_.lambda_max_margin;
    double lower = upper / std::max(2.0, lvl.kappa);
    level_bounds_[i] = {lower, upper};
  }
}

std::uint32_t RecursiveSolver::level_iterations(std::size_t i) const {
  if (opts_.inner_iterations > 0) return opts_.inner_iterations;
  double k = std::min(std::max(chain_.levels[i].kappa, 1.0), opts_.kappa_cap);
  return static_cast<std::uint32_t>(std::ceil(std::sqrt(k)));
}

void RecursiveSolver::apply_preconditioner(std::size_t i, const Vec& r,
                                           Vec& z) const {
  const ChainLevel& lvl = chain_.levels[i];
  Vec reduced_rhs;
  Vec folded = lvl.elimination.fold_rhs(r, &reduced_rhs);
  Vec x_reduced(lvl.elimination.reduced_n, 0.0);
  if (lvl.elimination.reduced_n > 0) {
    apply_level(i + 1, reduced_rhs, x_reduced);
  }
  z = lvl.elimination.back_substitute(folded, x_reduced);
  kernels::project_out_constant(z);
}

void RecursiveSolver::apply_level(std::size_t i, const Vec& b, Vec& x) const {
  const ChainLevel& lvl = chain_.levels[i];
  x.assign(lvl.n, 0.0);
  if (!lvl.has_preconditioner) {
    // Bottom level: dense solve (or trivial for degenerate sizes).
    bottom_visits_.fetch_add(1, std::memory_order_relaxed);
    if (chain_.bottom) {
      Vec rhs = b;
      kernels::project_out_constant(rhs);
      x = chain_.bottom->solve(rhs);
    }
    return;
  }

  LinOp a_op = [&lvl](const Vec& in, Vec& out) {
    out.resize(in.size());
    lvl.laplacian.multiply(in, out);
  };
  LinOp precond = [this, i](const Vec& in, Vec& out) {
    apply_preconditioner(i, in, out);
  };

  std::uint32_t iters = level_iterations(i);

  if (opts_.inner == InnerMethod::kChebyshev) {
    ChebyshevOptions copts;
    copts.lambda_min = level_bounds_[i].first;
    copts.lambda_max = level_bounds_[i].second;
    // During bounds estimation the level's own bounds are still unset; run
    // with wide provisional bounds (overestimating λmax is safe).
    if (!(copts.lambda_max > 0.0)) {
      copts.lambda_min = 1.0 / std::max(lvl.kappa, 2.0);
      copts.lambda_max = 8.0;
    }
    copts.iterations = iters;
    copts.project_constant = true;
    chebyshev(a_op, b, x, copts, &precond);
  } else {
    CgOptions copts;
    copts.tolerance = opts_.inner_tolerance;
    copts.max_iterations = opts_.inner_max_iterations;
    copts.project_constant = true;
    copts.flexible = true;
    conjugate_gradient(a_op, b, x, copts, &precond);
  }
}

void RecursiveSolver::apply_preconditioner_block(std::size_t i,
                                                 const MultiVec& r,
                                                 MultiVec& z,
                                                 Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  Workspace::Level& sc = ws.levels[i];
  lvl.elimination.fold_rhs_block(r, sc.folded, sc.reduced_rhs);
  if (lvl.elimination.reduced_n > 0) {
    apply_level_block(i + 1, sc.reduced_rhs, sc.x_reduced, ws);
  } else {
    sc.x_reduced.assign(0, r.cols(), 0.0);
  }
  lvl.elimination.back_substitute_block(sc.folded, sc.x_reduced, z);
  kernels::project_out_constant_cols(z);
}

void RecursiveSolver::apply_level_block(std::size_t i, const MultiVec& b,
                                        MultiVec& x, Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  std::size_t k = b.cols();
  x.assign(lvl.n, k, 0.0);
  if (!lvl.has_preconditioner) {
    // Bottom level: one dense block solve serves every column.
    bottom_visits_.fetch_add(1, std::memory_order_relaxed);
    if (chain_.bottom) {
      MultiVec& rhs = ws.levels[i].folded;  // unused by this level otherwise
      ensure_shape(rhs, b.rows(), k);
      kernels::copy_cols(b, rhs);
      kernels::project_out_constant_cols(rhs);
      chain_.bottom->solve_block(rhs, x);
    }
    return;
  }

  BlockLinOp a_op = [&lvl](const MultiVec& in, MultiVec& out) {
    ensure_shape(out, in.rows(), in.cols());
    lvl.laplacian.multiply(in, out);
  };
  BlockLinOp precond = [this, i, &ws](const MultiVec& in, MultiVec& out) {
    apply_preconditioner_block(i, in, out, ws);
  };

  std::uint32_t iters = level_iterations(i);

  if (opts_.inner == InnerMethod::kChebyshev) {
    ChebyshevOptions copts;
    copts.lambda_min = level_bounds_[i].first;
    copts.lambda_max = level_bounds_[i].second;
    if (!(copts.lambda_max > 0.0)) {
      copts.lambda_min = 1.0 / std::max(lvl.kappa, 2.0);
      copts.lambda_max = 8.0;
    }
    copts.iterations = iters;
    copts.project_constant = true;
    chebyshev_block(a_op, b, x, copts, &precond, &ws.levels[i].iter);
  } else {
    CgOptions copts;
    copts.tolerance = opts_.inner_tolerance;
    copts.max_iterations = opts_.inner_max_iterations;
    copts.project_constant = true;
    copts.flexible = true;
    block_conjugate_gradient(a_op, b, x, copts, &precond, &ws.levels[i].iter);
  }
}

void RecursiveSolver::enable_f32() {
  if (f32_) return;
  val32_.resize(chain_.levels.size());
  for (std::size_t i = 0; i < chain_.levels.size(); ++i) {
    const CsrMatrix& a = chain_.levels[i].laplacian;
    const double* v = a.vals();
    val32_[i].resize(a.num_nonzeros());
    for (std::size_t p = 0; p < val32_[i].size(); ++p) {
      val32_[i][p] = static_cast<float>(v[p]);
    }
  }
  f32_ = true;
}

void RecursiveSolver::apply_preconditioner_block_f32(std::size_t i,
                                                     const MultiVec32& r,
                                                     MultiVec32& z,
                                                     Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  Workspace::Level32& sc = ws.levels32[i];
  lvl.elimination.fold_rhs_block32(r, sc.folded, sc.reduced_rhs);
  if (lvl.elimination.reduced_n > 0) {
    apply_level_block_f32(i + 1, sc.reduced_rhs, sc.x_reduced, ws);
  } else {
    sc.x_reduced.assign(0, r.cols(), 0.0f);
  }
  lvl.elimination.back_substitute_block32(sc.folded, sc.x_reduced, z);
  kernels::project_out_constant_cols32(z);
}

void RecursiveSolver::apply_level_block_f32(std::size_t i, const MultiVec32& b,
                                            MultiVec32& x,
                                            Workspace& ws) const {
  const ChainLevel& lvl = chain_.levels[i];
  std::size_t k = b.cols();
  x.assign(lvl.n, k, 0.0f);
  if (!lvl.has_preconditioner) {
    // Bottom level: the dense factor stays fp64 (accuracy at the chain's
    // base is cheap — the bottom is ~m^{1/3} — and it spares a float LDLᵀ);
    // widen/narrow at its boundary, staging in the unused fp64 scratch.
    bottom_visits_.fetch_add(1, std::memory_order_relaxed);
    if (chain_.bottom) {
      Workspace::Level& st = ws.levels[i];
      kernels::widen(b, st.folded);
      kernels::project_out_constant_cols(st.folded);
      ensure_shape(st.reduced_rhs, b.rows(), k);
      chain_.bottom->solve_block(st.folded, st.reduced_rhs);
      kernels::narrow(st.reduced_rhs, x);
    }
    return;
  }

  const std::size_t* off = lvl.laplacian.offsets();
  const std::uint32_t* col = lvl.laplacian.cols();
  const float* val = val32_[i].data();
  std::size_t nnz = val32_[i].size();
  std::uint32_t iters = level_iterations(i);
  Workspace::Level32& sc = ws.levels32[i];
  ensure_shape32(sc.r, lvl.n, k);
  ensure_shape32(sc.z, lvl.n, k);
  ensure_shape32(sc.p, lvl.n, k);
  ensure_shape32(sc.ap, lvl.n, k);

  // x = 0, so the initial residual is b itself (projected).
  kernels::copy_cols32(b, sc.r);
  kernels::project_out_constant_cols32(sc.r);

  if (opts_.inner == InnerMethod::kChebyshev) {
    // fp32 mirror of chebyshev_block: the recurrence scalars stay fp64
    // (they depend only on the bounds), the vectors are fp32.
    double lambda_min = level_bounds_[i].first;
    double lambda_max = level_bounds_[i].second;
    if (!(lambda_max > 0.0)) {
      lambda_min = 1.0 / std::max(lvl.kappa, 2.0);
      lambda_max = 8.0;
    }
    const double theta = 0.5 * (lambda_max + lambda_min);
    const double delta = 0.5 * (lambda_max - lambda_min);
    double alpha = 0.0, beta = 0.0;
    std::vector<float> alpha_all(k), neg_alpha(k), beta_all(k);
    for (std::uint32_t it = 0; it < iters; ++it) {
      apply_preconditioner_block_f32(i, sc.r, sc.z, ws);
      if (it == 0) {
        kernels::copy_cols32(sc.z, sc.p);
        alpha = 1.0 / theta;
      } else {
        beta = it == 1 ? 0.5 * (delta * alpha) * (delta * alpha)
                       : (delta * alpha / 2.0) * (delta * alpha / 2.0);
        alpha = 1.0 / (theta - beta / alpha);
        std::fill(beta_all.begin(), beta_all.end(),
                  static_cast<float>(beta));
        kernels::xpay_cols32(sc.z, beta_all, sc.p);
      }
      std::fill(alpha_all.begin(), alpha_all.end(),
                static_cast<float>(alpha));
      std::fill(neg_alpha.begin(), neg_alpha.end(),
                static_cast<float>(-alpha));
      kernels::axpy_cols32(alpha_all, sc.p, x);
      kernels::spmm32(off, col, val, lvl.n, nnz, sc.p, sc.ap);
      kernels::axpy_cols32(neg_alpha, sc.ap, sc.r);
      kernels::project_out_constant_cols32(sc.r);
    }
    return;
  }

  // fp32 mirror of the flexible block CG inner solve.  No per-column freeze
  // masks (the fp32 kernel surface is maskless); a column that converges or
  // breaks down keeps iterating with zero coefficients, which leaves its x
  // and r fixed.
  ensure_shape32(sc.r_prev, lvl.n, k);
  std::vector<float> bnorm = kernels::norm2_cols32(sc.r);
  apply_preconditioner_block_f32(i, sc.r, sc.z, ws);
  kernels::copy_cols32(sc.z, sc.p);
  std::vector<float> rz = kernels::dot_cols32(sc.r, sc.z);
  std::vector<float> alpha(k, 0.0f), beta(k, 0.0f);
  std::vector<char> alive(k, 1);
  float tol = static_cast<float>(opts_.inner_tolerance);
  for (std::uint32_t it = 0; it < opts_.inner_max_iterations; ++it) {
    std::vector<float> rnorm = kernels::norm2_cols32(sc.r);
    std::size_t remaining = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (alive[c] && (bnorm[c] == 0.0f || rnorm[c] <= tol * bnorm[c])) {
        alive[c] = 0;
      }
      remaining += alive[c];
    }
    if (remaining == 0) break;
    kernels::spmm32(off, col, val, lvl.n, nnz, sc.p, sc.ap);
    std::vector<float> pap = kernels::dot_cols32(sc.p, sc.ap);
    for (std::size_t c = 0; c < k; ++c) {
      alpha[c] = 0.0f;
      if (alive[c]) {
        if (!(pap[c] > 0.0f)) {
          alive[c] = 0;  // breakdown: freeze via zero coefficients
        } else {
          alpha[c] = rz[c] / pap[c];
        }
      }
    }
    kernels::axpy_cols32(alpha, sc.p, x);
    kernels::copy_cols32(sc.r, sc.r_prev);
    std::vector<float> neg_alpha(k);
    for (std::size_t c = 0; c < k; ++c) neg_alpha[c] = -alpha[c];
    kernels::axpy_cols32(neg_alpha, sc.ap, sc.r);
    kernels::project_out_constant_cols32(sc.r);
    apply_preconditioner_block_f32(i, sc.r, sc.z, ws);
    // Polak–Ribière per column (flexible), as in the fp64 inner solve.
    std::vector<float> num = kernels::dot_diff_cols32(sc.z, sc.r, sc.r_prev);
    std::vector<float> rz_next = kernels::dot_cols32(sc.r, sc.z);
    for (std::size_t c = 0; c < k; ++c) {
      beta[c] = 0.0f;
      if (!alive[c]) continue;
      float bc = num[c] / rz[c];
      if (!std::isfinite(bc)) {
        alive[c] = 0;
        continue;
      }
      beta[c] = bc < 0.0f ? 0.0f : bc;
      rz[c] = rz_next[c];
    }
    kernels::xpay_cols32(sc.z, beta, sc.p);
  }
}

void RecursiveSolver::apply_block(const MultiVec& b, MultiVec& x,
                                  Workspace& ws) const {
  apply_level_block(0, b, x, ws);
}

std::vector<IterStats> RecursiveSolver::solve_batch(
    const MultiVec& b, MultiVec& x, double tolerance,
    std::uint32_t max_iterations, Workspace& ws,
    const CsrMatrix* a_top) const {
  const ChainLevel& top = chain_.levels.front();
  std::size_t k = b.cols();
  // Outer operator: the caller's override (stale-chain update tier) or the
  // chain's own top Laplacian.  A mismatched override cannot be honored
  // safely; fall back to the chain so the solve stays well-defined.
  const CsrMatrix& amat =
      (a_top != nullptr && a_top->dimension() == top.n) ? *a_top
                                                        : top.laplacian;
  BlockLinOp a_op = [&amat](const MultiVec& in, MultiVec& out) {
    ensure_shape(out, in.rows(), in.cols());
    amat.multiply(in, out);
  };
  // As in solve(): precondition with the B₁ solve directly when available.
  // In mixed-precision mode the chain application runs in fp32 (narrowed on
  // entry, widened on exit); the outer flexible CG below stays fp64 and
  // iteratively refines, so the convergence test is still the fp64 residual.
  BlockLinOp precond;
  if (f32_ && top.has_preconditioner) {
    precond = [this, &ws](const MultiVec& in, MultiVec& out) {
      kernels::narrow(in, ws.narrowed);
      apply_preconditioner_block_f32(0, ws.narrowed, ws.chain_out, ws);
      kernels::widen(ws.chain_out, out);
    };
  } else if (top.has_preconditioner) {
    precond = [this, &ws](const MultiVec& in, MultiVec& out) {
      apply_preconditioner_block(0, in, out, ws);
    };
  } else {
    precond = [this, &ws](const MultiVec& in, MultiVec& out) {
      apply_block(in, out, ws);
    };
  }
  CgOptions copts;
  copts.tolerance = tolerance;
  copts.max_iterations = max_iterations;
  copts.project_constant = true;
  copts.flexible = true;
  if (x.rows() != top.n || x.cols() != k) x.assign(top.n, k, 0.0);
  if (chain_.levels.size() == 1) {
    // Degenerate chain: one chain pass is a direct solve; columns it already
    // converged freeze at the first CG convergence check.
    apply_block(b, x, ws);
  }
  // The top-level CG can safely borrow level 0's iteration scratch: the
  // preconditioner recursion starts at the fold of level 0 (or the bottom
  // solve), neither of which touches levels[0].iter.
  return block_conjugate_gradient(a_op, b, x, copts, &precond,
                                  &ws.levels.front().iter);
}

std::vector<IterStats> RecursiveSolver::solve_rpch_batch(
    const MultiVec& b, MultiVec& x, double tolerance,
    std::uint32_t max_passes, Workspace& ws,
    const CsrMatrix* a_top) const {
  const ChainLevel& top = chain_.levels.front();
  const CsrMatrix& amat =
      (a_top != nullptr && a_top->dimension() == top.n) ? *a_top
                                                        : top.laplacian;
  std::size_t k = b.cols();
  std::vector<IterStats> stats(k);
  if (x.rows() != top.n || x.cols() != k) x.assign(top.n, k, 0.0);
  ColScalars bnorm = kernels::norm2_cols(b);
  ColMask alive(k, 1);
  std::size_t remaining = k;
  for (std::size_t c = 0; c < k; ++c) {
    if (bnorm[c] == 0.0) {
      stats[c].converged = true;
      alive[c] = 0;
      --remaining;
    }
  }
  const ColScalars minus_one(k, -1.0), one(k, 1.0);
  MultiVec r(top.n, k), ax(top.n, k), dx;
  auto refresh_residual = [&] {
    amat.multiply(x, ax);
    kernels::copy_cols(b, r);
    kernels::axpy_cols(minus_one, ax, r);
    kernels::project_out_constant_cols(r);
  };
  for (std::uint32_t pass = 0; pass < max_passes && remaining > 0; ++pass) {
    refresh_residual();
    ColScalars rnorm = kernels::norm2_cols(r);
    for (std::size_t c = 0; c < k; ++c) {
      if (!alive[c]) continue;
      stats[c].relative_residual = rnorm[c] / bnorm[c];
      if (stats[c].relative_residual <= tolerance) {
        stats[c].converged = true;
        alive[c] = 0;
        --remaining;
      }
    }
    if (remaining == 0) return stats;
    for (std::size_t c = 0; c < k; ++c) {
      if (alive[c]) ++stats[c].iterations;
    }
    apply_block(r, dx, ws);
    kernels::axpy_cols(one, dx, x, &alive);
  }
  refresh_residual();
  ColScalars rnorm = kernels::norm2_cols(r);
  for (std::size_t c = 0; c < k; ++c) {
    if (stats[c].converged || bnorm[c] == 0.0) continue;
    stats[c].relative_residual = rnorm[c] / bnorm[c];
    stats[c].converged = stats[c].relative_residual <= tolerance;
  }
  return stats;
}

void RecursiveSolver::apply(const Vec& b, Vec& x) const {
  apply_level(0, b, x);
}

IterStats RecursiveSolver::solve(const Vec& b, Vec& x, double tolerance,
                                 std::uint32_t max_iterations) const {
  const ChainLevel& top = chain_.levels.front();
  LinOp a_op = [&top](const Vec& in, Vec& out) {
    out.resize(in.size());
    top.laplacian.multiply(in, out);
  };
  // Precondition the top-level Krylov method with the *B₁ solve* directly
  // (fold through the elimination, recursively solve A₂, back-substitute);
  // apply_level(0) would re-iterate on A₁ redundantly.
  LinOp precond;
  if (top.has_preconditioner) {
    precond = [this](const Vec& in, Vec& out) {
      apply_preconditioner(0, in, out);
    };
  } else {
    precond = [this](const Vec& in, Vec& out) { apply(in, out); };
  }
  CgOptions copts;
  copts.tolerance = tolerance;
  copts.max_iterations = max_iterations;
  copts.project_constant = true;
  copts.flexible = true;
  if (x.size() != top.n) x.assign(top.n, 0.0);
  if (chain_.levels.size() == 1) {
    // Degenerate chain: the "preconditioner" is already a direct solve.
    apply(b, x);
    Vec r(top.n);
    a_op(x, r);
    for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - r[k];
    kernels::project_out_constant(r);
    IterStats st;
    st.iterations = 1;
    double bn = kernels::norm2(b);
    st.relative_residual = bn > 0 ? kernels::norm2(r) / bn : 0.0;
    st.converged = st.relative_residual <= tolerance;
    if (st.converged) return st;
  }
  return conjugate_gradient(a_op, b, x, copts, &precond);
}

IterStats RecursiveSolver::solve_rpch(const Vec& b, Vec& x, double tolerance,
                                      std::uint32_t max_passes) const {
  const ChainLevel& top = chain_.levels.front();
  if (x.size() != top.n) x.assign(top.n, 0.0);
  IterStats stats;
  double bnorm = kernels::norm2(b);
  if (bnorm == 0.0) {
    stats.converged = true;
    return stats;
  }
  Vec r = b, ax(top.n), dx;
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    top.laplacian.multiply(x, ax);
    for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - ax[k];
    kernels::project_out_constant(r);
    stats.relative_residual = kernels::norm2(r) / bnorm;
    if (stats.relative_residual <= tolerance) {
      stats.converged = true;
      return stats;
    }
    ++stats.iterations;
    apply(r, dx);
    kernels::axpy(1.0, dx, x);
  }
  top.laplacian.multiply(x, ax);
  for (std::size_t k = 0; k < r.size(); ++k) r[k] = b[k] - ax[k];
  kernels::project_out_constant(r);
  stats.relative_residual = kernels::norm2(r) / bnorm;
  stats.converged = stats.relative_residual <= tolerance;
  return stats;
}

}  // namespace parsdd
