#include "solver/greedy_elimination.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "parallel/primitives.h"
#include "parallel/rng.h"
#include "util/serialize.h"

namespace parsdd {

namespace {
constexpr std::uint32_t kGone = std::numeric_limits<std::uint32_t>::max();
}

GreedyEliminationResult greedy_eliminate(std::uint32_t n,
                                         const EdgeList& edges,
                                         std::uint64_t seed) {
  GreedyEliminationResult out;
  // Mutable multigraph adjacency.  Entries referencing eliminated vertices
  // are cleaned lazily when a vertex becomes an elimination candidate.
  // Built in parallel: count/scan/scatter into flat arc arrays, then sort
  // each vertex's slice by edge id so every adj[v] lists arcs in input-edge
  // order — exactly what the old sequential push_back loop produced — at
  // any pool size.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(n);
  std::vector<std::uint32_t> deg(n, 0);  // live incident edge count
  {
    std::size_t m = edges.size();
    parallel_for(0, m, [&](std::size_t i) {
      std::atomic_ref<std::uint32_t>(deg[edges[i].u])
          .fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<std::uint32_t>(deg[edges[i].v])
          .fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<std::uint32_t> off(n);
    parallel_for(0, n, [&](std::size_t v) { off[v] = deg[v]; });
    std::uint32_t total = scan_exclusive(off);
    assert(total == 2 * m);
    std::vector<std::uint32_t> cursor = off;
    struct Arc {
      std::uint32_t eid;
      std::uint32_t other;
      double w;
    };
    std::vector<Arc> arcs(total);
    parallel_for(0, m, [&](std::size_t i) {
      const Edge& e = edges[i];
      std::uint32_t id = static_cast<std::uint32_t>(i);
      std::uint32_t pu = std::atomic_ref<std::uint32_t>(cursor[e.u])
                             .fetch_add(1, std::memory_order_relaxed);
      arcs[pu] = Arc{id, e.v, e.w};
      std::uint32_t pv = std::atomic_ref<std::uint32_t>(cursor[e.v])
                             .fetch_add(1, std::memory_order_relaxed);
      arcs[pv] = Arc{id, e.u, e.w};
    });
    parallel_for(0, n, [&](std::size_t v) {
      std::uint32_t s = off[v], e = off[v] + deg[v];
      std::sort(arcs.begin() + s, arcs.begin() + e,
                [](const Arc& a, const Arc& b) { return a.eid < b.eid; });
      auto& av = adj[v];
      av.resize(deg[v]);
      for (std::uint32_t i = s; i < e; ++i) {
        av[i - s] = {arcs[i].other, arcs[i].w};
      }
    });
  }
  std::vector<std::uint8_t> eliminated(n, 0);
  Rng rng(seed);

  auto compact = [&](std::uint32_t v) {
    auto& a = adj[v];
    std::size_t w = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!eliminated[a[i].first]) a[w++] = a[i];
    }
    a.resize(w);
    assert(a.size() == deg[v]);
  };

  std::size_t remaining = n;
  for (std::uint32_t round = 0; remaining > 0; ++round) {
    // Candidates: live vertices of degree <= 2.
    std::vector<std::uint32_t> cand = pack_index(n, [&](std::size_t v) {
      return !eliminated[v] && deg[v] <= 2;
    });
    if (cand.empty()) break;
    ++out.rounds;
    Rng round_rng = rng.child(round);

    // Random priorities; a candidate is selected iff it beats every
    // candidate neighbor (independent set of local maxima).
    std::vector<std::uint64_t> prio(n, 0);
    parallel_for(0, cand.size(), [&](std::size_t i) {
      // Mix the vertex id so priorities are distinct.
      prio[cand[i]] = (round_rng.u64(cand[i]) << 20) | cand[i];
    });
    std::vector<std::uint8_t> selected(n, 0);
    parallel_for(0, cand.size(), [&](std::size_t i) {
      std::uint32_t v = cand[i];
      bool best = true;
      for (const auto& [u, w] : adj[v]) {
        (void)w;
        if (eliminated[u]) continue;
        if (deg[u] <= 2 && prio[u] > prio[v]) {
          best = false;
          break;
        }
      }
      selected[v] = best ? 1 : 0;
    });

    // Apply the independent set sequentially (the updates are O(1) each;
    // the parallel work above is the selection, matching the rake/compress
    // rounds of [MR89]).
    for (std::uint32_t v : cand) {
      if (!selected[v]) continue;
      compact(v);
      EliminationStep step;
      step.v = v;
      step.degree = deg[v];
      if (deg[v] >= 1) {
        step.u1 = adj[v][0].first;
        step.w1 = adj[v][0].second;
      }
      if (deg[v] == 2) {
        step.u2 = adj[v][1].first;
        step.w2 = adj[v][1].second;
      }
      step.pivot = step.w1 + step.w2;
      eliminated[v] = 1;
      --remaining;
      if (step.degree == 1) {
        --deg[step.u1];
      } else if (step.degree == 2) {
        if (step.u1 == step.u2) {
          // Parallel edges to the same neighbor: the fill is a self-loop,
          // which vanishes from the Laplacian.
          deg[step.u1] -= 2;
        } else {
          double fill = step.w1 * step.w2 / step.pivot;
          adj[step.u1].push_back({step.u2, fill});
          adj[step.u2].push_back({step.u1, fill});
          // u1/u2 each lose the edge to v and gain the fill: deg unchanged.
        }
      }
      adj[v].clear();
      out.steps.push_back(step);
    }
  }

  // Assemble the reduced graph.
  out.reduced_of_orig.assign(n, kGone);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!eliminated[v]) {
      out.reduced_of_orig[v] = static_cast<std::uint32_t>(
          out.orig_of_reduced.size());
      out.orig_of_reduced.push_back(v);
    }
  }
  out.reduced_n = static_cast<std::uint32_t>(out.orig_of_reduced.size());
  for (std::uint32_t v : out.orig_of_reduced) {
    compact(v);
    for (const auto& [u, w] : adj[v]) {
      if (u > v || (u == v)) continue;  // emit each edge once (u < v side)
      out.reduced_edges.push_back(
          Edge{out.reduced_of_orig[u], out.reduced_of_orig[v], w});
    }
  }
  // Merge parallel edges in the reduced graph (Laplacian-equivalent and
  // keeps later levels lean).
  out.reduced_edges = combine_parallel_edges(out.reduced_edges);
  return out;
}

Vec GreedyEliminationResult::fold_rhs(const Vec& b, Vec* reduced_rhs) const {
  Vec folded = b;
  for (const EliminationStep& s : steps) {
    if (s.degree >= 1) folded[s.u1] += (s.w1 / s.pivot) * folded[s.v];
    if (s.degree == 2) folded[s.u2] += (s.w2 / s.pivot) * folded[s.v];
  }
  if (reduced_rhs) {
    reduced_rhs->resize(reduced_n);
    for (std::uint32_t i = 0; i < reduced_n; ++i) {
      (*reduced_rhs)[i] = folded[orig_of_reduced[i]];
    }
  }
  return folded;
}

Vec GreedyEliminationResult::back_substitute(const Vec& folded_b,
                                             const Vec& x_reduced) const {
  Vec x(folded_b.size(), 0.0);
  for (std::uint32_t i = 0; i < reduced_n; ++i) {
    x[orig_of_reduced[i]] = x_reduced[i];
  }
  for (std::size_t k = steps.size(); k-- > 0;) {
    const EliminationStep& s = steps[k];
    if (s.degree == 0) {
      x[s.v] = 0.0;  // isolated vertex: grounded
    } else if (s.degree == 1) {
      x[s.v] = folded_b[s.v] / s.pivot + x[s.u1];
    } else {
      x[s.v] = (folded_b[s.v] + s.w1 * x[s.u1] + s.w2 * x[s.u2]) / s.pivot;
    }
  }
  return x;
}

void GreedyEliminationResult::fold_rhs_block(const MultiVec& b,
                                             MultiVec& folded,
                                             MultiVec& reduced_rhs) const {
  std::size_t k = b.cols();
  ensure_shape(folded, b.rows(), k);
  kernels::copy_cols(b, folded);
  kernels::fold_steps(steps.data(), steps.size(), folded);
  ensure_shape(reduced_rhs, reduced_n, k);
  kernels::gather_rows(folded, orig_of_reduced.data(), reduced_rhs);
}

void GreedyEliminationResult::back_substitute_block(const MultiVec& folded_b,
                                                    const MultiVec& x_reduced,
                                                    MultiVec& x) const {
  std::size_t k = folded_b.cols();
  x.assign(folded_b.rows(), k, 0.0);
  kernels::scatter_rows(x_reduced, orig_of_reduced.data(), x);
  kernels::backsub_steps(steps.data(), steps.size(), folded_b, x);
}

void GreedyEliminationResult::fold_rhs_block32(const MultiVec32& b,
                                               MultiVec32& folded,
                                               MultiVec32& reduced_rhs) const {
  std::size_t k = b.cols();
  ensure_shape32(folded, b.rows(), k);
  kernels::copy_cols32(b, folded);
  kernels::fold_steps32(steps.data(), steps.size(), folded);
  ensure_shape32(reduced_rhs, reduced_n, k);
  kernels::gather_rows32(folded, orig_of_reduced.data(), reduced_rhs);
}

void GreedyEliminationResult::back_substitute_block32(
    const MultiVec32& folded_b, const MultiVec32& x_reduced,
    MultiVec32& x) const {
  std::size_t k = folded_b.cols();
  x.assign(folded_b.rows(), k, 0.0f);
  kernels::scatter_rows32(x_reduced, orig_of_reduced.data(), x);
  kernels::backsub_steps32(steps.data(), steps.size(), folded_b, x);
}

void GreedyEliminationResult::save(serialize::Writer& w) const {
  std::vector<std::uint32_t> ids(4 * steps.size());
  std::vector<double> weights(3 * steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    ids[4 * i] = steps[i].v;
    ids[4 * i + 1] = steps[i].degree;
    ids[4 * i + 2] = steps[i].u1;
    ids[4 * i + 3] = steps[i].u2;
    weights[3 * i] = steps[i].w1;
    weights[3 * i + 1] = steps[i].w2;
    weights[3 * i + 2] = steps[i].pivot;
  }
  w.pod_vec(ids);
  w.pod_vec(weights);
  w.u32(rounds);
  w.u32(reduced_n);
  save_edges(w, reduced_edges);
  w.pod_vec(orig_of_reduced);
  w.pod_vec(reduced_of_orig);
}

GreedyEliminationResult GreedyEliminationResult::load(serialize::Reader& r,
                                                      std::uint32_t n) {
  GreedyEliminationResult e;
  std::vector<std::uint32_t> ids = r.pod_vec<std::uint32_t>();
  std::vector<double> weights = r.pod_vec<double>();
  if (r.status().ok() &&
      (ids.size() % 4 != 0 || weights.size() != ids.size() / 4 * 3)) {
    r.fail("elimination step arrays disagree on length");
  }
  if (r.status().ok()) {
    e.steps.resize(ids.size() / 4);
    for (std::size_t i = 0; i < e.steps.size(); ++i) {
      e.steps[i] = EliminationStep{ids[4 * i],     ids[4 * i + 1],
                                   ids[4 * i + 2], ids[4 * i + 3],
                                   weights[3 * i], weights[3 * i + 1],
                                   weights[3 * i + 2]};
    }
  }
  e.rounds = r.u32();
  e.reduced_n = r.u32();
  e.reduced_edges = load_edges(r);
  e.orig_of_reduced = r.pod_vec<std::uint32_t>();
  e.reduced_of_orig = r.pod_vec<std::uint32_t>();
  if (!r.status().ok()) return e;
  // A chain's bottom level carries a default-constructed result (the build
  // never eliminates there); it round-trips as all-empty.
  if (e.steps.empty() && e.rounds == 0 && e.reduced_n == 0 &&
      e.reduced_edges.empty() && e.orig_of_reduced.empty() &&
      e.reduced_of_orig.empty()) {
    return e;
  }
  // Every stored index feeds unchecked array accesses in fold_rhs /
  // back_substitute; validate all of them against the caller's n before the
  // result can reach a solve.
  bool ok = e.reduced_n <= n && e.orig_of_reduced.size() == e.reduced_n &&
            e.reduced_of_orig.size() == n;
  for (std::size_t i = 0; ok && i < e.steps.size(); ++i) {
    const EliminationStep& s = e.steps[i];
    ok = s.v < n && s.degree <= 2 && (s.degree < 1 || s.u1 < n) &&
         (s.degree < 2 || s.u2 < n);
  }
  for (std::size_t i = 0; ok && i < e.reduced_edges.size(); ++i) {
    ok = e.reduced_edges[i].u < e.reduced_n && e.reduced_edges[i].v < e.reduced_n;
  }
  for (std::size_t i = 0; ok && i < e.orig_of_reduced.size(); ++i) {
    ok = e.orig_of_reduced[i] < n;
  }
  for (std::size_t i = 0; ok && i < e.reduced_of_orig.size(); ++i) {
    ok = e.reduced_of_orig[i] < e.reduced_n || e.reduced_of_orig[i] == kGone;
  }
  if (!ok) r.fail("elimination schedule indexes out of bounds");
  return e;
}

}  // namespace parsdd
