// Lemma 6.5: parallel GreedyElimination — partial Cholesky factorization on
// vertices of degree at most 2.
//
// Graph-theoretically: repeatedly remove degree-1 vertices and splice out
// degree-2 vertices (series resistors: eliminating v on the path u1—v—u2
// with weights w1, w2 adds the fill edge {u1,u2} of weight w1·w2/(w1+w2)),
// "a slight generalization of parallel tree contraction [MR89]".  The
// parallel version eliminates, per round, an independent set of degree-≤2
// vertices chosen by random priorities — a constant fraction of the "extra"
// vertices in expectation, so O(log n) rounds whp (validated by the E5
// bench).  The output graph has at most 2·(m-n+1)-ish vertices left, i.e.
// no vertices of degree <= 2 remain.
//
// Each elimination is recorded so linear systems factor through the
// reduction exactly: forward-substitution folds the RHS onto the kept
// vertices (Schur complement RHS), and back-substitution recovers eliminated
// entries from the reduced solution.  An input that is entirely a tree
// eliminates to nothing and is solved exactly by the recorded steps alone.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "kernels/kernels.h"
#include "linalg/multivec.h"
#include "linalg/vector_ops.h"

namespace parsdd {

/// The step record lives in kernels/kernels.h so the fold/backsub backend
/// kernels can walk it; this alias keeps the historic solver-layer name.
using EliminationStep = kernels::ElimStep;

class GreedyEliminationResult {
 public:
  /// Elimination record in order.
  std::vector<EliminationStep> steps;
  /// Parallel rounds used (Lemma 6.5: O(log n) whp).
  std::uint32_t rounds = 0;

  /// Reduced graph on relabeled vertices [0, reduced_n); may be empty if
  /// the input was a forest.
  std::uint32_t reduced_n = 0;
  EdgeList reduced_edges;
  /// reduced id -> original id.
  std::vector<std::uint32_t> orig_of_reduced;
  /// original id -> reduced id (UINT32_MAX if eliminated).
  std::vector<std::uint32_t> reduced_of_orig;

  /// Folds an original-space RHS through the eliminations; returns the
  /// full-length folded vector (needed again by back_substitute) and writes
  /// the reduced-space RHS to `reduced_rhs`.
  Vec fold_rhs(const Vec& b, Vec* reduced_rhs) const;

  /// Reconstructs the full solution from the reduced solve and the folded
  /// RHS returned by fold_rhs.
  Vec back_substitute(const Vec& folded_b, const Vec& x_reduced) const;

  /// Batched fold: one walk of the elimination record serves all columns of
  /// `b` (the step decode is amortized and the per-step update vectorizes
  /// over the row).  Column c matches fold_rhs(b[:,c]) exactly.  Output
  /// blocks are resized in place so steady-state calls do not allocate.
  void fold_rhs_block(const MultiVec& b, MultiVec& folded,
                      MultiVec& reduced_rhs) const;

  /// Batched back-substitution; column c matches back_substitute on that
  /// column.
  void back_substitute_block(const MultiVec& folded_b,
                             const MultiVec& x_reduced, MultiVec& x) const;

  /// fp32 twins of the batched fold/back-substitution, used by the opt-in
  /// mixed-precision preconditioner chain (Precision::kF32Refined).  Same
  /// step walk and canonical column-chunk parallelism, float arithmetic.
  void fold_rhs_block32(const MultiVec32& b, MultiVec32& folded,
                        MultiVec32& reduced_rhs) const;
  void back_substitute_block32(const MultiVec32& folded_b,
                               const MultiVec32& x_reduced,
                               MultiVec32& x) const;

  /// Snapshot encoding (util/serialize.h): the step record as parallel
  /// field arrays (EliminationStep has padding), plus the reduced graph and
  /// both relabeling maps, so fold/back-substitute replay bitwise.  `n` is
  /// the caller's vertex count for the eliminated graph; load bounds-checks
  /// every stored index against it so a checksum-valid but forged snapshot
  /// cannot drive fold/back-substitute out of bounds.
  void save(serialize::Writer& w) const;
  static GreedyEliminationResult load(serialize::Reader& r, std::uint32_t n);
};

/// Eliminates all degree-<=2 vertices of the Laplacian graph (V=[0,n),
/// edges).  Deterministic for a fixed seed.
GreedyEliminationResult greedy_eliminate(std::uint32_t n,
                                         const EdgeList& edges,
                                         std::uint64_t seed = 1);

}  // namespace parsdd
