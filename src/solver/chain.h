// Definition 6.3: the preconditioning chain  C = <A1, B1, A2, ..., Ad>.
//
//   B_i     = IncrementalSparsify(A_i)        (Lemma 6.1/6.2)
//   A_{i+1} = GreedyElimination(B_i)          (Lemma 6.5)
//   A_i ≼ B_i ≼ κ_i A_i                       (spectral sandwich)
//
// terminated at dimension ~ m^{1/3} (Section 6.3: "if we terminate the chain
// earlier, i.e. adjusting the dimension A_d to roughly O(m^{1/3} log ε⁻¹),
// we can obtain good parallel performance") and closed with a dense LDLᵀ
// factorization (Fact 6.4).
//
// Parameter notes (see DESIGN.md): κ_i is configurable with an automatic
// mode tying it to the measured average stretch of the level's low-stretch
// subgraph (the theory's κ = Θ(S log n / edge budget) relation from
// Lemma 6.2); §6.3's geometrically growing κ_i schedule is available via
// kappa_growth.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_ldlt.h"
#include "solver/greedy_elimination.h"
#include "solver/incremental_sparsify.h"

namespace parsdd {

/// How each level's preconditioner B_i is built.
enum class ChainMode {
  /// B_i = Ĝ_i, the ultra-sparse low-stretch subgraph itself, with no
  /// off-subgraph sampling.  GreedyElimination then shrinks by ~y^λ per
  /// level, so chains are short and the recursive solve is affordable; this
  /// is the production default (see DESIGN.md on the theory-practice gap of
  /// stretch-proportional sampling at laptop scale).
  kUltrasparse,
  /// B_i = IncrementalSparsify(A_i, κ_i): the paper's Lemma 6.1 chain.
  kSampled,
};

struct ChainOptions {
  std::uint64_t seed = 1;
  ChainMode mode = ChainMode::kUltrasparse;
  /// Per-level condition target κ_i (kSampled); 0 = automatic from measured
  /// stretch.
  double kappa = 0.0;
  /// κ_{i+1} = κ_i * kappa_growth (§6.3 uses a geometric schedule; 1.0
  /// reproduces the uniform setting of Lemma 6.9).
  double kappa_growth = 1.0;
  /// Stop and factor densely once a level has at most this many vertices;
  /// 0 = max(24, m^{1/3}).
  std::uint32_t bottom_size = 0;
  std::uint32_t max_levels = 48;
  /// Sampling oversampling constant (Lemma 6.1's c_IS).
  double oversample = 1.0;
  /// Sampling probability floor / subgraph scaling; see SparsifyOptions.
  double p_floor = 0.2;
  double subgraph_scale = 1.0;
  /// LSSubgraph parameters (0 = automatic y/z).
  std::uint32_t lambda = 2;
  double theta = 0.05;
  double subgraph_y = 0.0;
  double subgraph_z = 0.0;
};

struct ChainLevel {
  std::uint32_t n = 0;
  EdgeList edges;                        // A_i as a graph
  CsrMatrix laplacian;                   // assembled A_i
  /// True when this level carries B_i/elimination data; the final level of
  /// a chain either has none (dense bottom) or eliminates to an empty graph
  /// (tree-like inputs).
  bool has_preconditioner = false;
  EdgeList b_edges;                      // B_i
  GreedyEliminationResult elimination;   // folds B_i -> A_{i+1}
  double kappa = 0.0;                    // the κ_i used for sampling
  double avg_stretch = 0.0;              // measured S of the level
};

struct SolverChain {
  std::vector<ChainLevel> levels;
  /// Dense factorization of the bottom level (absent when the bottom has
  /// fewer than 2 vertices).
  std::optional<DenseLdlt> bottom;

  std::size_t total_edges() const;
  std::uint32_t depth() const {
    return static_cast<std::uint32_t>(levels.size());
  }
};

/// Builds the chain for the connected Laplacian graph (V=[0,n), edges).
SolverChain build_chain(std::uint32_t n, const EdgeList& edges,
                        const ChainOptions& opts = {});

/// Snapshot encoding (util/serialize.h): every level's graphs, assembled
/// Laplacian, elimination record, and the dense bottom factor verbatim —
/// the complete RHS-independent state, so a loaded chain drives the
/// recursive solver bitwise-identically to the chain that was saved.
void save_chain(serialize::Writer& w, const SolverChain& chain);
SolverChain load_chain(serialize::Reader& r);

}  // namespace parsdd
