#include "solver/sdd_solver.h"

#include <algorithm>
#include <stdexcept>

#include "graph/connectivity.h"
#include "linalg/cg.h"
#include "linalg/jacobi.h"
#include "linalg/laplacian.h"

namespace parsdd {

namespace {

// One connected component's solver state.
struct ComponentSolver {
  std::vector<std::uint32_t> vertices;  // original ids, in local order
  EdgeList local_edges;
  CsrMatrix laplacian;
  std::unique_ptr<SolverChain> chain;
  std::unique_ptr<RecursiveSolver> recursive;
};

}  // namespace

struct SddSolver::Impl {
  SddSolverOptions opts;
  std::uint32_t n = 0;  // size of the (possibly reduced) Laplacian system
  std::vector<ComponentSolver> components;
  // Gremban state (only for non-Laplacian SDD inputs).
  std::optional<GrembanReduction> gremban;

  void build(std::uint32_t num_vertices, const EdgeList& edges);
  Vec solve_laplacian(const Vec& b, SddSolveReport* report) const;
};

void SddSolver::Impl::build(std::uint32_t num_vertices,
                            const EdgeList& edges) {
  n = num_vertices;
  Components comps = connected_components(n, edges);
  std::vector<std::vector<std::uint32_t>> members(comps.count);
  for (std::uint32_t v = 0; v < n; ++v) {
    members[comps.label[v]].push_back(v);
  }
  // Local index of each vertex inside its component.
  std::vector<std::uint32_t> local(n);
  for (auto& m : members) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      local[m[i]] = static_cast<std::uint32_t>(i);
    }
  }
  components.resize(comps.count);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    components[c].vertices = std::move(members[c]);
  }
  for (const Edge& e : edges) {
    std::uint32_t c = comps.label[e.u];
    components[c].local_edges.push_back(Edge{local[e.u], local[e.v], e.w});
  }
  for (auto& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;  // isolated vertex: solution 0
    cs.laplacian = laplacian_from_edges(cn, cs.local_edges);
    if (opts.method == SolveMethod::kChainPcg ||
        opts.method == SolveMethod::kChainRpch) {
      cs.chain = std::make_unique<SolverChain>(
          build_chain(cn, cs.local_edges, opts.chain));
      cs.recursive =
          std::make_unique<RecursiveSolver>(*cs.chain, opts.recursion);
    }
  }
}

Vec SddSolver::Impl::solve_laplacian(const Vec& b,
                                     SddSolveReport* report) const {
  if (b.size() != n) {
    throw std::invalid_argument("SddSolver::solve: dimension mismatch");
  }
  Vec x(n, 0.0);
  if (report) {
    *report = SddSolveReport{};
    report->components = static_cast<std::uint32_t>(components.size());
  }
  for (const ComponentSolver& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;
    Vec cb(cn);
    for (std::uint32_t i = 0; i < cn; ++i) cb[i] = b[cs.vertices[i]];
    project_out_constant(cb);  // consistency for the singular Laplacian
    Vec cx(cn, 0.0);
    IterStats st;
    switch (opts.method) {
      case SolveMethod::kChainPcg:
        st = cs.recursive->solve(cb, cx, opts.tolerance, opts.max_iterations);
        break;
      case SolveMethod::kChainRpch:
        st = cs.recursive->solve_rpch(cb, cx, opts.tolerance,
                                      opts.max_iterations);
        break;
      case SolveMethod::kCg: {
        LinOp a_op = [&cs](const Vec& in, Vec& out) {
          out.resize(in.size());
          cs.laplacian.multiply(in, out);
        };
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = conjugate_gradient(a_op, cb, cx, copts);
        break;
      }
      case SolveMethod::kJacobiPcg: {
        LinOp a_op = [&cs](const Vec& in, Vec& out) {
          out.resize(in.size());
          cs.laplacian.multiply(in, out);
        };
        LinOp pre = jacobi_preconditioner(cs.laplacian);
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = conjugate_gradient(a_op, cb, cx, copts, &pre);
        break;
      }
    }
    project_out_constant(cx);
    for (std::uint32_t i = 0; i < cn; ++i) x[cs.vertices[i]] = cx[i];
    if (report) {
      if (st.iterations >= report->stats.iterations) report->stats = st;
      if (cs.chain) {
        report->chain_levels =
            std::max(report->chain_levels, cs.chain->depth());
        report->chain_edges += cs.chain->total_edges();
      }
      if (cs.recursive) {
        report->bottom_visits += cs.recursive->bottom_visits();
        cs.recursive->reset_counters();
      }
    }
  }
  return x;
}

SddSolver::SddSolver() : impl_(std::make_unique<Impl>()) {}
SddSolver::SddSolver(SddSolver&&) noexcept = default;
SddSolver& SddSolver::operator=(SddSolver&&) noexcept = default;
SddSolver::~SddSolver() = default;

SddSolver SddSolver::for_laplacian(std::uint32_t n, const EdgeList& edges,
                                   const SddSolverOptions& opts) {
  SddSolver s;
  s.impl_->opts = opts;
  s.impl_->build(n, edges);
  return s;
}

SddSolver SddSolver::for_sdd(const CsrMatrix& a,
                             const SddSolverOptions& opts) {
  GrembanReduction red = gremban_reduce(a);
  SddSolver s;
  s.impl_->opts = opts;
  if (red.was_laplacian) {
    s.impl_->build(a.dimension(), edges_from_laplacian(a));
  } else {
    s.impl_->gremban = std::move(red);
    s.impl_->build(2 * a.dimension(), s.impl_->gremban->edges);
  }
  return s;
}

Vec SddSolver::solve(const Vec& b, SddSolveReport* report) const {
  if (!impl_->gremban) {
    return impl_->solve_laplacian(b, report);
  }
  Vec lifted = impl_->gremban->lift_rhs(b);
  Vec y = impl_->solve_laplacian(lifted, report);
  return impl_->gremban->project_solution(y);
}

}  // namespace parsdd
