#include "solver/sdd_solver.h"

namespace parsdd {

SddSolver SddSolver::for_laplacian(std::uint32_t n, const EdgeList& edges,
                                   const SddSolverOptions& opts) {
  return SddSolver(std::make_shared<const SolverSetup>(
      SolverSetup::for_laplacian(n, edges, opts)));
}

SddSolver SddSolver::for_sdd(const CsrMatrix& a,
                             const SddSolverOptions& opts) {
  return SddSolver(
      std::make_shared<const SolverSetup>(SolverSetup::for_sdd(a, opts)));
}

StatusOr<Vec> SddSolver::solve(const Vec& b, SddSolveReport* report) const {
  return setup_->solve(b, report);
}

StatusOr<MultiVec> SddSolver::solve_batch(const MultiVec& b,
                                          BatchSolveReport* report) const {
  return setup_->solve_batch(b, report);
}

}  // namespace parsdd
