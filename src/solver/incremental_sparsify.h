// Lemma 6.1: incremental sparsification by stretch-proportional sampling.
//
// Given G and a low-stretch subgraph Ĝ with total stretch m·S, builds H with
// G ≼ H ≼ κ·G (whp, up to the sampling constants) and
// |E(H)| = |E(Ĝ)| + O(S·m·log n / κ).  Following [KMP10] (whose proof "works
// without changes for an arbitrary subgraph", as the paper observes — this
// observation is the key to the parallel solver), every off-subgraph edge e
// is kept independently with probability p_e = min(1, c·str(e)·log n / κ)
// and reweighted to w_e/p_e, which keeps E[L_H] = L_G while concentrating by
// matrix Chernoff because stretch upper-bounds relative leverage.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "lsst/ls_subgraph.h"

namespace parsdd {

struct SparsifyOptions {
  std::uint64_t seed = 1;
  /// Condition-number target κ of the sandwich G ≼ H ≼ κG.
  double kappa = 64.0;
  /// Oversampling multiplier c (the paper's c_IS); higher = better
  /// concentration, more edges.
  double oversample = 1.0;
  /// Floor on the keep probability.  Reweighting by 1/p_e with unbounded
  /// 1/p_e plants huge-weight outlier edges in H, which stretches the
  /// H ≽ ... side of the pencil and stalls Krylov convergence in floating
  /// point; flooring p bounds the reweighting at 1/p_floor at the cost of
  /// keeping a few more edges.  Set to 0 for the unfloored textbook rule.
  double p_floor = 0.2;
  /// If > 1, multiply the Ĝ part of H by this factor (the [KMP10] scaled-
  /// tree construction): guarantees A ≼ 2H-style upper bounds by letting
  /// the scaled subgraph dominate every sampled term, at the cost of a
  /// weaker lower bound (H ≼ (scale+2)·A).
  double subgraph_scale = 1.0;
  /// Also include the minimum spanning tree in Ĝ (n-1 extra edges at
  /// most).  The AKPW construction optimizes hop-radius per weight class
  /// and can badly stretch light edges through heavy BFS-tree paths on
  /// high-contrast weights (where the MST is nearly stretch-1); the union
  /// is never worse than either part.  Costs nothing asymptotically.
  bool include_mst = true;
  /// Options for the inner LSSubgraph call.
  LsSubgraphOptions subgraph;
};

struct SparsifyResult {
  /// The preconditioner H (on the same vertex set as G).
  EdgeList h_edges;
  /// Edges of H that came from the low-stretch subgraph Ĝ.
  std::size_t subgraph_count = 0;
  /// Off-subgraph edges sampled in (reweighted by 1/p_e).
  std::size_t sampled_count = 0;
  /// Total stretch of G w.r.t. Ĝ (the m·S of Lemma 6.1).
  double total_stretch = 0.0;
};

/// Builds the incremental sparsifier of (V=[0,n), edges); input must be
/// connected.
SparsifyResult incremental_sparsify(std::uint32_t n, const EdgeList& edges,
                                    const SparsifyOptions& opts = {});

}  // namespace parsdd
