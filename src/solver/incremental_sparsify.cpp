#include "solver/incremental_sparsify.h"

#include <cmath>
#include <stdexcept>

#include "graph/mst.h"
#include "graph/stretch.h"
#include "graph/tree.h"
#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

SparsifyResult incremental_sparsify(std::uint32_t n, const EdgeList& edges,
                                    const SparsifyOptions& opts) {
  if (!(opts.kappa >= 1.0)) {
    throw std::invalid_argument("incremental_sparsify: kappa must be >= 1");
  }
  SparsifyResult result;

  LsSubgraphOptions sub_opts = opts.subgraph;
  sub_opts.seed = opts.seed;
  LsSubgraphResult sub = ls_subgraph(n, edges, sub_opts);

  std::vector<std::uint8_t> in_subgraph(edges.size(), 0);
  parallel_for(0, sub.subgraph_edges.size(), [&](std::size_t i) {
    in_subgraph[sub.subgraph_edges[i]] = 1;
  });

  // Stretch upper bound via a spanning tree of Ĝ (distances in a subgraph
  // are bounded by distances in any of its spanning trees, so sampling with
  // tree stretch only oversamples — which is safe).
  EdgeList sub_edges = tabulate<Edge>(
      sub.subgraph_edges.size(),
      [&](std::size_t i) { return edges[sub.subgraph_edges[i]]; });
  std::vector<std::uint32_t> tree_idx = mst_kruskal(n, sub_edges);
  if (tree_idx.size() + 1 != n) {
    throw std::invalid_argument("incremental_sparsify: graph not connected");
  }
  EdgeList tree_edges;
  tree_edges.reserve(tree_idx.size());
  for (std::uint32_t idx : tree_idx) tree_edges.push_back(sub_edges[idx]);
  RootedTree tree = RootedTree::from_edges(n, tree_edges, 0);
  StretchStats st = stretch_wrt_tree(edges, tree);

  if (opts.include_mst) {
    // The AKPW construction optimizes hop-radius per weight class; on
    // high-contrast weights its BFS trees can route light cut edges through
    // heavy edges, stretching them by the contrast (measured in E3c/E8a).
    // The MST is nearly stretch-1 on exactly those instances, so compare
    // the measured (tree-proxy) stretches and keep the better subgraph.
    std::vector<std::uint32_t> mst_idx = mst_kruskal(n, edges);
    EdgeList mst_edges;
    mst_edges.reserve(mst_idx.size());
    for (std::uint32_t idx : mst_idx) mst_edges.push_back(edges[idx]);
    RootedTree mst_tree = RootedTree::from_edges(n, mst_edges, 0);
    StretchStats st_mst = stretch_wrt_tree(edges, mst_tree);
    if (st_mst.total < st.total) {
      st = std::move(st_mst);
      in_subgraph.assign(edges.size(), 0);
      for (std::uint32_t idx : mst_idx) in_subgraph[idx] = 1;
    }
  }
  result.total_stretch = st.total;

  // Keep Ĝ outright; sample the rest proportionally to stretch.
  const double ln_n = std::log(std::max<double>(n, 2.0));
  Rng rng(Rng(opts.seed).u64(0xabcdef));
  std::vector<std::uint8_t> keep(edges.size(), 0);
  std::vector<double> scaled_w(edges.size(), 0.0);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    if (in_subgraph[i]) {
      keep[i] = 1;
      scaled_w[i] = edges[i].w * opts.subgraph_scale;
      return;
    }
    double p = std::min(
        1.0, opts.oversample * st.per_edge[i] * ln_n / opts.kappa);
    p = std::max(p, opts.p_floor);
    if (rng.uniform(i) < p) {
      keep[i] = 1;
      scaled_w[i] = edges[i].w / p;
    }
  });

  std::vector<std::uint32_t> kept =
      pack_index(edges.size(), [&](std::size_t i) { return keep[i] != 0; });
  result.h_edges = tabulate<Edge>(kept.size(), [&](std::size_t i) {
    std::uint32_t idx = kept[i];
    return Edge{edges[idx].u, edges[idx].v, scaled_w[idx]};
  });
  result.subgraph_count = parallel_reduce(
      0, kept.size(), std::size_t{0},
      [&](std::size_t i) -> std::size_t { return in_subgraph[kept[i]] ? 1 : 0; },
      [](std::size_t a, std::size_t b) { return a + b; });
  result.sampled_count = kept.size() - result.subgraph_count;
  return result;
}

}  // namespace parsdd
