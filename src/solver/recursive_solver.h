// The recursive solve over a preconditioner chain (Section 6.2).
//
// Lemma 6.7/6.8: level i applies a fixed number of preconditioned iterations
// on A_i, where each preconditioner application solves B_i by folding through
// GreedyElimination and recursing on A_{i+1}; the bottom level uses the dense
// factorization.  The paper's method is preconditioned Chebyshev (rPCh) —
// a *linear* operator, which lets the whole recursion act as a single fixed
// polynomial preconditioner.  A flexible-CG inner mode is provided as the
// floating-point-robust alternative (see DESIGN.md).
//
// Two top-level drivers:
//   * solve():      top-level flexible PCG to tolerance ε (production).
//   * solve_rpch(): pure recursive Chebyshev — iterative refinement with the
//                   one-pass chain operator, O(log 1/ε) passes, matching
//                   Theorem 1.1's log(1/ε) dependence.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/iterative.h"
#include "solver/chain.h"

namespace parsdd {

enum class InnerMethod {
  kChebyshev,   // paper-faithful rPCh recursion (linear operator)
  kFlexibleCg,  // adaptive inner Krylov (nonlinear; needs flexible top)
};

struct RecursiveSolverOptions {
  /// Default is the flexible inner Krylov method: it needs no spectral
  /// bounds, so it is robust to the constant-factor slack in the sampled
  /// sandwich A_i ≼ B_i ≼ κ_i A_i.  kChebyshev reproduces the paper's rPCh;
  /// for it the constructor *measures* λmax(B_i⁺A_i) per level bottom-up by
  /// power iteration (Chebyshev diverges if its upper bound is exceeded,
  /// and the sampling guarantees constants only in expectation).
  InnerMethod inner = InnerMethod::kFlexibleCg;
  /// Flexible-CG mode: per-visit relative-residual target and iteration
  /// budget for the inner solve of A_{i}.  The inner solve must be fairly
  /// accurate — an ultra-sparse B_i is an excellent preconditioner only
  /// when actually *solved*; a sloppy inner solve degrades the whole chain
  /// (measured in the E8 ablation bench).
  double inner_tolerance = 0.1;
  std::uint32_t inner_max_iterations = 40;
  /// Chebyshev mode: iterations per level visit;
  /// 0 = ceil(sqrt(min(κ_i, kappa_cap))).
  std::uint32_t inner_iterations = 0;
  /// Cap on the κ used to derive the per-level iteration count.
  double kappa_cap = 36.0;
  /// Power-iteration steps for the per-level λmax estimate (Chebyshev mode).
  std::uint32_t power_iterations = 12;
  /// Safety margin multiplied onto the measured λmax.
  double lambda_max_margin = 1.25;
  std::uint64_t seed = 99;
};

class RecursiveSolver {
 public:
  RecursiveSolver(const SolverChain& chain,
                  const RecursiveSolverOptions& opts = {});

  /// Restores a solver from snapshot state: adopts the spectral bounds
  /// measured when the chain was first built instead of re-running the
  /// per-level power iteration, so a loaded setup is both cheap to
  /// reconstruct and bitwise-faithful to the saved one (the bounds feed the
  /// Chebyshev coefficients directly).  `bounds` must be level_bounds()
  /// from the solver being restored — empty in flexible-CG mode.
  RecursiveSolver(const SolverChain& chain, const RecursiveSolverOptions& opts,
                  std::vector<std::pair<double, double>> bounds)
      : chain_(chain), opts_(opts), level_bounds_(std::move(bounds)) {}

  /// Per-call scratch for the batched solvers: one slot per chain level,
  /// reused across outer iterations so a steady-state solve allocates
  /// nothing inside the recursion.  The solver itself is immutable after
  /// construction; each concurrent solve owns a private Workspace, which is
  /// what makes simultaneous solve_batch calls against one solver safe.
  struct Workspace {
    struct Level {
      MultiVec folded, reduced_rhs, x_reduced;  // elimination fold scratch
      BlockScratch iter;                        // inner Chebyshev/FCG buffers
    };
    /// fp32 mirrors of the per-level scratch, allocated only in
    /// mixed-precision mode (enable_f32); the fp64 bottom solve borrows the
    /// matching Level's fp64 buffers for its widen/narrow staging.
    struct Level32 {
      MultiVec32 folded, reduced_rhs, x_reduced;  // elimination fold scratch
      MultiVec32 r, z, p, ap, r_prev;             // inner f32 FCG/Chebyshev
    };
    std::vector<Level> levels;
    std::vector<Level32> levels32;
    /// Top-level narrow/widen staging around the f32 chain application.
    MultiVec32 narrowed, chain_out;
  };
  Workspace make_workspace() const {
    Workspace ws{std::vector<Workspace::Level>(chain_.levels.size()), {}, {}, {}};
    if (f32_) ws.levels32.resize(chain_.levels.size());
    return ws;
  }

  /// Opt-in mixed precision (Precision::kF32Refined): builds fp32 mirrors
  /// of every level's CSR values (the offsets/cols structure is shared with
  /// the fp64 matrix) so solve_batch applies the whole preconditioner chain
  /// in fp32 — only the bottom dense solve stays fp64, widened/narrowed at
  /// its boundary.  The outer flexible CG remains fp64 iterative
  /// refinement.  Call once, before any concurrent solves; workspaces made
  /// earlier lack the fp32 scratch and must be re-made.
  void enable_f32();
  bool f32_enabled() const { return f32_; }

  /// One pass of the chain: x ≈ A₁⁺ b (constant-factor error reduction).
  /// Usable directly as a preconditioner LinOp.
  void apply(const Vec& b, Vec& x) const;

  /// Top-level flexible PCG preconditioned by apply(), to tolerance.
  IterStats solve(const Vec& b, Vec& x, double tolerance,
                  std::uint32_t max_iterations) const;

  /// Pure rPCh: iterative refinement with the chain operator until the
  /// relative residual reaches `tolerance` (or max_passes).
  IterStats solve_rpch(const Vec& b, Vec& x, double tolerance,
                       std::uint32_t max_passes) const;

  /// Batched one-pass chain application over all columns of b.
  void apply_block(const MultiVec& b, MultiVec& x, Workspace& ws) const;

  /// Batched top-level flexible PCG: all columns advance in lockstep, each
  /// SpMM / elimination fold / bottom solve is shared by the whole block,
  /// and per-column convergence freezes finished columns.  Column c of x
  /// reproduces solve() on b[:,c] exactly; per-column IterStats may differ
  /// cosmetically on degenerate single-level chains (the direct-solve path
  /// counts its pass as 1 iteration, the batch counts 0).  Thread-safe
  /// given a private workspace.
  ///
  /// `a_top` overrides the outer-CG operator (default: the chain's own
  /// level-0 Laplacian).  This is the stale-chain update tier
  /// (solver_setup.h): after a small weight perturbation the caller passes
  /// the *current* Laplacian while the preconditioner recursion keeps using
  /// the chain built for the old weights — convergence is still measured
  /// against the true fp64 residual, the stale chain merely preconditions.
  /// Must have the same dimension as the chain's top level.
  std::vector<IterStats> solve_batch(const MultiVec& b, MultiVec& x,
                                     double tolerance,
                                     std::uint32_t max_iterations,
                                     Workspace& ws,
                                     const CsrMatrix* a_top = nullptr) const;

  /// Batched rPCh refinement (solve_rpch over a block).  `a_top` as in
  /// solve_batch: residual refreshes use it, the chain pass stays as built.
  std::vector<IterStats> solve_rpch_batch(const MultiVec& b, MultiVec& x,
                                          double tolerance,
                                          std::uint32_t max_passes,
                                          Workspace& ws,
                                          const CsrMatrix* a_top =
                                              nullptr) const;

  /// Number of bottom-level (dense) solves since construction — the
  /// quantity the paper's depth analysis counts ("the total number of times
  /// the algorithm reaches the last level A_d").  Cumulative and monotone:
  /// callers wanting per-solve counts take before/after deltas (see
  /// solver_setup.cpp), which stays consistent under concurrent solves.
  std::uint64_t bottom_visits() const {
    return bottom_visits_.load(std::memory_order_relaxed);
  }

  /// Measured spectral bounds of the preconditioned operator per level
  /// (Chebyshev mode); empty in flexible-CG mode.
  const std::vector<std::pair<double, double>>& level_bounds() const {
    return level_bounds_;
  }

 private:
  void apply_level(std::size_t i, const Vec& b, Vec& x) const;
  void apply_preconditioner(std::size_t i, const Vec& r, Vec& z) const;
  void apply_level_block(std::size_t i, const MultiVec& b, MultiVec& x,
                         Workspace& ws) const;
  void apply_preconditioner_block(std::size_t i, const MultiVec& r,
                                  MultiVec& z, Workspace& ws) const;
  void apply_level_block_f32(std::size_t i, const MultiVec32& b, MultiVec32& x,
                             Workspace& ws) const;
  void apply_preconditioner_block_f32(std::size_t i, const MultiVec32& r,
                                      MultiVec32& z, Workspace& ws) const;
  std::uint32_t level_iterations(std::size_t i) const;

  const SolverChain& chain_;
  RecursiveSolverOptions opts_;
  std::vector<std::pair<double, double>> level_bounds_;  // (lmin, lmax)
  /// Mixed-precision state: per-level fp32 value mirrors of the level
  /// Laplacians (empty until enable_f32).
  bool f32_ = false;
  std::vector<std::vector<float>> val32_;
  mutable std::atomic<std::uint64_t> bottom_visits_{0};
};

}  // namespace parsdd
