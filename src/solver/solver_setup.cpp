#include "solver/solver_setup.h"
#include "kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "graph/connectivity.h"
#include "linalg/cg.h"
#include "linalg/jacobi.h"
#include "linalg/laplacian.h"
#include "parallel/granularity.h"
#include "parallel/primitives.h"
#include "util/serialize.h"

namespace parsdd {

namespace {

// One connected component's RHS-independent state.  chain/recursive are
// shared_ptrs because update() shares untouched components — and, on the
// stale-chain tier, the chain itself — between the old and new setups;
// both are immutable after construction, so sharing is concurrency-safe.
struct ComponentSetup {
  std::vector<std::uint32_t> vertices;  // original ids, in local order
  EdgeList local_edges;
  CsrMatrix laplacian;
  std::shared_ptr<const SolverChain> chain;
  std::shared_ptr<RecursiveSolver> recursive;
  /// The chain was built for earlier weights than `laplacian` (stale-chain
  /// update tier): the solve keeps preconditioning with it while the outer
  /// CG measures residuals against the current laplacian.
  bool chain_stale = false;
};

}  // namespace

struct SolverSetup::Impl {
  SddSolverOptions opts;
  std::uint32_t n = 0;  // size of the (possibly lifted) Laplacian system
  std::vector<ComponentSetup> components;
  // Gremban state (only for non-Laplacian SDD inputs).
  std::optional<GrembanReduction> gremban;
  /// Deltas absorbed via update() since the original build.
  std::uint64_t update_seq = 0;
  /// Residual-quality monitor (SetupQuality): worst outer iteration count
  /// of the first recorded solve (the fresh-chain baseline) and of the most
  /// recent one.  Relaxed atomics — the monitor is a heuristic signal, and
  /// solves are const/concurrent.
  mutable std::atomic<std::uint32_t> baseline_iters{0};
  mutable std::atomic<std::uint32_t> last_iters{0};

  void build(std::uint32_t num_vertices, const EdgeList& edges);
  MultiVec solve_batch_laplacian(const MultiVec& b,
                                 BatchSolveReport* report) const;
  void record_quality(std::uint32_t worst_iters) const {
    last_iters.store(worst_iters, std::memory_order_relaxed);
    std::uint32_t expected = 0;
    baseline_iters.compare_exchange_strong(expected, worst_iters,
                                           std::memory_order_relaxed);
  }
  /// Reassembles the global edge list (original vertex ids) from the
  /// per-component local lists; the input to full rebuilds.
  EdgeList assemble_global_edges() const {
    EdgeList out;
    std::size_t total = 0;
    for (const ComponentSetup& cs : components) total += cs.local_edges.size();
    out.reserve(total);
    for (const ComponentSetup& cs : components) {
      for (const Edge& e : cs.local_edges) {
        out.push_back(Edge{cs.vertices[e.u], cs.vertices[e.v], e.w});
      }
    }
    return out;
  }
};

void SolverSetup::Impl::build(std::uint32_t num_vertices,
                              const EdgeList& edges) {
  n = num_vertices;
  Components comps = connected_components(n, edges);
  components.resize(comps.count);
  if (comps.count == 1) {
    // Connected input (the common case): the local numbering is the
    // identity, so membership and relabeling collapse to parallel copies.
    components[0].vertices = tabulate<std::uint32_t>(
        n, [](std::size_t v) { return static_cast<std::uint32_t>(v); });
    components[0].local_edges = edges;
  } else {
    std::vector<std::vector<std::uint32_t>> members(comps.count);
    for (std::uint32_t v = 0; v < n; ++v) {
      members[comps.label[v]].push_back(v);
    }
    // Local index of each vertex inside its component.
    std::vector<std::uint32_t> local(n);
    for (auto& m : members) {
      for (std::size_t i = 0; i < m.size(); ++i) {
        local[m[i]] = static_cast<std::uint32_t>(i);
      }
    }
    for (std::uint32_t c = 0; c < comps.count; ++c) {
      components[c].vertices = std::move(members[c]);
    }
    for (const Edge& e : edges) {
      std::uint32_t c = comps.label[e.u];
      components[c].local_edges.push_back(Edge{local[e.u], local[e.v], e.w});
    }
  }
  for (auto& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;  // isolated vertex: solution 0
    cs.laplacian = laplacian_from_edges(cn, cs.local_edges);
    if (opts.method == SolveMethod::kChainPcg ||
        opts.method == SolveMethod::kChainRpch) {
      cs.chain = std::make_shared<const SolverChain>(
          build_chain(cn, cs.local_edges, opts.chain));
      cs.recursive =
          std::make_shared<RecursiveSolver>(*cs.chain, opts.recursion);
      if (opts.precision == Precision::kF32Refined) {
        cs.recursive->enable_f32();
      }
    }
  }
}

MultiVec SolverSetup::Impl::solve_batch_laplacian(
    const MultiVec& b, BatchSolveReport* report) const {
  // Shape is validated by SolverSetup::solve_batch before any Gremban lift;
  // by the time we are here b is n x k with k >= 1.
  std::size_t k = b.cols();
  MultiVec x(n, k, 0.0);
  if (report) {
    *report = BatchSolveReport{};
    report->column_stats.assign(k, IterStats{});
    report->components = static_cast<std::uint32_t>(components.size());
  }
  std::uint32_t worst_iters = 0;  // quality-monitor sample for this solve
  for (const ComponentSetup& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;
    MultiVec cb(cn, k);
    kernels::gather_rows(b, cs.vertices.data(), cb);
    kernels::project_out_constant_cols(cb);  // consistency for the singular Laplacian
    MultiVec cx(cn, k, 0.0);
    std::vector<IterStats> st;
    std::uint64_t visits_before =
        cs.recursive ? cs.recursive->bottom_visits() : 0;
    switch (opts.method) {
      // Both chain drivers take cs.laplacian as the outer operator.  For a
      // pristine setup it is byte-identical to the chain's own level-0
      // matrix (both laplacian_from_edges of the same edges), so the
      // arithmetic — and the bitwise-determinism contract — is unchanged;
      // after a stale-chain update it is the *current* Laplacian, so
      // convergence is always measured against the updated system.
      case SolveMethod::kChainPcg: {
        RecursiveSolver::Workspace ws = cs.recursive->make_workspace();
        st = cs.recursive->solve_batch(cb, cx, opts.tolerance,
                                       opts.max_iterations, ws,
                                       &cs.laplacian);
        break;
      }
      case SolveMethod::kChainRpch: {
        RecursiveSolver::Workspace ws = cs.recursive->make_workspace();
        st = cs.recursive->solve_rpch_batch(cb, cx, opts.tolerance,
                                            opts.max_iterations, ws,
                                            &cs.laplacian);
        break;
      }
      case SolveMethod::kCg: {
        BlockLinOp a_op = [&cs](const MultiVec& in, MultiVec& out) {
          ensure_shape(out, in.rows(), in.cols());
          cs.laplacian.multiply(in, out);
        };
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = block_conjugate_gradient(a_op, cb, cx, copts);
        break;
      }
      case SolveMethod::kJacobiPcg: {
        BlockLinOp a_op = [&cs](const MultiVec& in, MultiVec& out) {
          ensure_shape(out, in.rows(), in.cols());
          cs.laplacian.multiply(in, out);
        };
        BlockLinOp pre = jacobi_preconditioner_block(cs.laplacian);
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = block_conjugate_gradient(a_op, cb, cx, copts, &pre);
        break;
      }
    }
    kernels::project_out_constant_cols(cx);
    kernels::scatter_rows(cx, cs.vertices.data(), x);
    for (const IterStats& cst : st) {
      worst_iters = std::max(worst_iters, cst.iterations);
    }
    if (report) {
      for (std::size_t c = 0; c < k; ++c) {
        if (st[c].iterations >= report->column_stats[c].iterations) {
          report->column_stats[c] = st[c];
        }
      }
      if (cs.chain) {
        report->chain_levels =
            std::max(report->chain_levels, cs.chain->depth());
        report->chain_edges += cs.chain->total_edges();
      }
      if (cs.recursive) {
        report->bottom_visits += cs.recursive->bottom_visits() - visits_before;
      }
    }
  }
  record_quality(worst_iters);
  return x;
}

SolverSetup::SolverSetup() : impl_(std::make_unique<Impl>()) {}
SolverSetup::SolverSetup(SolverSetup&&) noexcept = default;
SolverSetup& SolverSetup::operator=(SolverSetup&&) noexcept = default;
SolverSetup::~SolverSetup() = default;

SolverSetup SolverSetup::for_laplacian(std::uint32_t n, const EdgeList& edges,
                                       const SddSolverOptions& opts) {
  SolverSetup s;
  s.impl_->opts = opts;
  s.impl_->build(n, edges);
  return s;
}

SolverSetup SolverSetup::for_sdd(const CsrMatrix& a,
                                 const SddSolverOptions& opts) {
  GrembanReduction red = gremban_reduce(a);
  SolverSetup s;
  s.impl_->opts = opts;
  if (red.was_laplacian) {
    s.impl_->build(a.dimension(), edges_from_laplacian(a));
  } else {
    s.impl_->gremban = std::move(red);
    s.impl_->build(2 * a.dimension(), s.impl_->gremban->edges);
  }
  return s;
}

std::uint32_t SolverSetup::dimension() const {
  return impl_->gremban && !impl_->gremban->was_laplacian ? impl_->gremban->n
                                                          : impl_->n;
}

std::uint32_t SolverSetup::num_components() const {
  return static_cast<std::uint32_t>(impl_->components.size());
}

std::uint32_t SolverSetup::chain_levels() const {
  std::uint32_t levels = 0;
  for (const ComponentSetup& cs : impl_->components) {
    if (cs.chain) levels = std::max(levels, cs.chain->depth());
  }
  return levels;
}

Precision SolverSetup::precision() const { return impl_->opts.precision; }

std::size_t SolverSetup::chain_edges() const {
  std::size_t edges = 0;
  for (const ComponentSetup& cs : impl_->components) {
    if (cs.chain) edges += cs.chain->total_edges();
  }
  return edges;
}

StatusOr<MultiVec> SolverSetup::solve_batch(const MultiVec& b,
                                            BatchSolveReport* report) const {
  if (b.cols() == 0) {
    return InvalidArgumentError("SolverSetup::solve_batch: empty batch (k=0)");
  }
  // Validate against the ORIGINAL dimension before any Gremban lift: the
  // lifted block is always 2n rows, so a downstream check could not catch a
  // wrong-sized input.
  if (b.rows() != dimension()) {
    return InvalidArgumentError(
        "SolverSetup::solve_batch: dimension mismatch (got " +
        std::to_string(b.rows()) + " rows, setup has dimension " +
        std::to_string(dimension()) + ")");
  }
  if (!impl_->gremban) {
    return impl_->solve_batch_laplacian(b, report);
  }
  MultiVec lifted = impl_->gremban->lift_rhs_block(b);
  MultiVec y = impl_->solve_batch_laplacian(lifted, report);
  return impl_->gremban->project_solution_block(y);
}

namespace {

// ---- dynamic updates (ROADMAP item 4) ----

// Canonical undirected key for an edge.
inline std::pair<std::uint32_t, std::uint32_t> edge_key(std::uint32_t u,
                                                        std::uint32_t v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

// The classified delta batch: the tier, plus per-component local delta
// streams (order preserved; local vertex ids) for the non-full-rebuild
// tiers.  `structural[c]` marks components whose chain must rebuild.
struct DeltaPlan {
  UpdateTier tier = UpdateTier::kStaleChain;
  std::vector<std::vector<EdgeDelta>> local;
  std::vector<std::uint8_t> structural;
};

// Validates and classifies a delta stream against the current component
// partition.  Sequential semantics: each delta sees the effect of the ones
// before it (tracked in live per-component edge sets), so a batch may
// insert an edge and then re-weight or remove it.
StatusOr<DeltaPlan> classify_deltas(std::uint32_t n,
                                    const std::vector<ComponentSetup>& comps,
                                    const std::vector<EdgeDelta>& deltas) {
  DeltaPlan plan;
  std::size_t nc = comps.size();
  plan.local.resize(nc);
  plan.structural.assign(nc, 0);
  std::vector<std::uint32_t> comp_of(n, 0), local_of(n, 0);
  for (std::size_t c = 0; c < nc; ++c) {
    const auto& verts = comps[c].vertices;
    for (std::size_t i = 0; i < verts.size(); ++i) {
      comp_of[verts[i]] = static_cast<std::uint32_t>(c);
      local_of[verts[i]] = static_cast<std::uint32_t>(i);
    }
  }
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  // Live per-component edge sets (local ids), built lazily for touched
  // components only; bridging insertions tracked separately (global ids).
  std::vector<std::map<Key, std::size_t>> live(nc);
  std::vector<std::uint8_t> live_built(nc, 0);
  std::map<Key, std::size_t> bridged;
  auto ensure_live = [&](std::size_t c) {
    if (live_built[c]) return;
    live_built[c] = 1;
    for (const Edge& e : comps[c].local_edges) ++live[c][edge_key(e.u, e.v)];
  };
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const EdgeDelta& d = deltas[i];
    const std::string at = " (delta " + std::to_string(i) + ")";
    if (d.u >= n || d.v >= n) {
      return InvalidArgumentError(
          "update: edge endpoint out of range" + at);
    }
    if (d.u == d.v) {
      return InvalidArgumentError(
          "update: self loop at vertex " + std::to_string(d.u) + at);
    }
    if (!std::isfinite(d.w) || d.w < 0.0) {
      return InvalidArgumentError(
          "update: weight must be finite and >= 0" + at);
    }
    std::uint32_t cu = comp_of[d.u], cv = comp_of[d.v];
    if (cu != cv) {
      // The endpoints live in different components: an insertion bridges
      // them (the partition changes — full rebuild); a removal can only
      // target an earlier bridging insertion from this same batch.
      Key gkey = edge_key(d.u, d.v);
      bool exists = bridged.find(gkey) != bridged.end();
      if (d.w == 0.0) {
        if (!exists) {
          return InvalidArgumentError(
              "update: removing nonexistent edge {" + std::to_string(d.u) +
              "," + std::to_string(d.v) + "}" + at);
        }
        bridged.erase(gkey);
      } else if (!exists) {
        bridged.emplace(gkey, 1);
      }
      plan.tier = UpdateTier::kFullRebuild;
      continue;
    }
    ensure_live(cu);
    Key key = edge_key(local_of[d.u], local_of[d.v]);
    auto it = live[cu].find(key);
    bool exists = it != live[cu].end();
    if (d.w == 0.0) {
      if (!exists) {
        return InvalidArgumentError(
            "update: removing nonexistent edge {" + std::to_string(d.u) +
            "," + std::to_string(d.v) + "}" + at);
      }
      live[cu].erase(it);
      // Removal may disconnect the component; only a full re-setup
      // recomputes the partition.
      plan.tier = UpdateTier::kFullRebuild;
    } else if (!exists) {
      live[cu].emplace(key, 1);
      plan.structural[cu] = 1;
      if (plan.tier < UpdateTier::kComponentRebuild) {
        plan.tier = UpdateTier::kComponentRebuild;
      }
    }
    plan.local[cu].push_back(EdgeDelta{key.first, key.second, d.w});
  }
  return plan;
}

// Sequentially applies a (pre-validated) delta stream to an edge list.
// Set-weight rewrites the first matching entry and drops parallel
// duplicates, so the edge's total weight is exactly w afterwards; removal
// drops every match; insertion appends.  Ids are whatever space `edges`
// lives in (component-local or global) — the semantics are identical.
void apply_deltas(EdgeList& edges, const std::vector<EdgeDelta>& deltas,
                  UpdateReport& rep) {
  for (const EdgeDelta& d : deltas) {
    auto key = edge_key(d.u, d.v);
    std::size_t first = edges.size();
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edge_key(edges[i].u, edges[i].v) == key) {
        first = i;
        break;
      }
    }
    if (d.w > 0.0 && first < edges.size()) {
      edges[first].w = d.w;
      std::size_t out = first + 1;
      for (std::size_t i = first + 1; i < edges.size(); ++i) {
        if (edge_key(edges[i].u, edges[i].v) != key) {
          edges[out++] = edges[i];
        }
      }
      edges.resize(out);
      ++rep.weight_updates;
    } else if (d.w > 0.0) {
      edges.push_back(Edge{d.u, d.v, d.w});
      ++rep.edges_added;
    } else {
      std::size_t out = 0;
      for (std::size_t i = 0; i < edges.size(); ++i) {
        if (edge_key(edges[i].u, edges[i].v) != key) {
          edges[out++] = edges[i];
        }
      }
      edges.resize(out);
      ++rep.edges_removed;
    }
  }
}

}  // namespace

StatusOr<UpdateTier> SolverSetup::plan_update(
    const std::vector<EdgeDelta>& deltas) const {
  if (impl_->gremban) {
    return InvalidArgumentError(
        "SolverSetup::update: not supported for Gremban-lifted SDD setups; "
        "rebuild from the updated matrix instead");
  }
  if (deltas.empty()) {
    return InvalidArgumentError("SolverSetup::update: empty delta batch");
  }
  StatusOr<DeltaPlan> plan =
      classify_deltas(impl_->n, impl_->components, deltas);
  if (!plan.ok()) return plan.status();
  return plan->tier;
}

StatusOr<SolverSetup> SolverSetup::update(const std::vector<EdgeDelta>& deltas,
                                          UpdateReport* report) const {
  if (impl_->gremban) {
    return InvalidArgumentError(
        "SolverSetup::update: not supported for Gremban-lifted SDD setups; "
        "rebuild from the updated matrix instead");
  }
  if (deltas.empty()) {
    return InvalidArgumentError("SolverSetup::update: empty delta batch");
  }
  StatusOr<DeltaPlan> plan =
      classify_deltas(impl_->n, impl_->components, deltas);
  if (!plan.ok()) return plan.status();
  UpdateReport rep;
  rep.tier = plan->tier;
  SolverSetup out;
  out.impl_->opts = impl_->opts;
  out.impl_->update_seq = impl_->update_seq + deltas.size();
  rep.update_seq = out.impl_->update_seq;
  if (plan->tier == UpdateTier::kFullRebuild) {
    // The partition may change: re-run the whole setup on the updated
    // global edge list.  Fresh chains, fresh quality baseline.
    EdgeList edges = impl_->assemble_global_edges();
    apply_deltas(edges, deltas, rep);
    out.impl_->build(impl_->n, edges);
    rep.components_rebuilt =
        static_cast<std::uint32_t>(out.impl_->components.size());
  } else {
    out.impl_->n = impl_->n;
    out.impl_->components.reserve(impl_->components.size());
    for (std::size_t c = 0; c < impl_->components.size(); ++c) {
      const ComponentSetup& cs = impl_->components[c];
      ComponentSetup nc;
      nc.vertices = cs.vertices;
      nc.local_edges = cs.local_edges;
      nc.laplacian = cs.laplacian;
      nc.chain = cs.chain;          // shared: chains are immutable
      nc.recursive = cs.recursive;  // shared: stateless across solves
      nc.chain_stale = cs.chain_stale;
      if (!plan->local[c].empty()) {
        std::uint32_t cn = static_cast<std::uint32_t>(nc.vertices.size());
        apply_deltas(nc.local_edges, plan->local[c], rep);
        // The outer CG solves against the current weights either way.
        nc.laplacian = laplacian_from_edges(cn, nc.local_edges);
        if (plan->structural[c]) {
          // Component rebuild: a fresh chain for the new structure.
          nc.chain.reset();
          nc.recursive.reset();
          nc.chain_stale = false;
          if (impl_->opts.method == SolveMethod::kChainPcg ||
              impl_->opts.method == SolveMethod::kChainRpch) {
            nc.chain = std::make_shared<const SolverChain>(
                build_chain(cn, nc.local_edges, impl_->opts.chain));
            nc.recursive = std::make_shared<RecursiveSolver>(
                *nc.chain, impl_->opts.recursion);
            if (impl_->opts.precision == Precision::kF32Refined) {
              nc.recursive->enable_f32();
            }
          }
          ++rep.components_rebuilt;
        } else if (nc.chain) {
          // Stale-chain tier: keep preconditioning with the old chain.
          nc.chain_stale = true;
        }
      } else {
        ++rep.components_shared;
      }
      out.impl_->components.push_back(std::move(nc));
    }
    // Drift stays measured against the fresh-chain baseline across
    // stale-chain and component updates; a full rebuild resets it.
    out.impl_->baseline_iters.store(
        impl_->baseline_iters.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    out.impl_->last_iters.store(
        impl_->last_iters.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  for (const ComponentSetup& cs : out.impl_->components) {
    if (cs.chain_stale) ++rep.components_stale;
  }
  if (report) *report = rep;
  return out;
}

SolverSetup SolverSetup::rebuild() const {
  SolverSetup out;
  out.impl_->opts = impl_->opts;
  out.impl_->update_seq = impl_->update_seq;
  if (impl_->gremban) {
    out.impl_->gremban = impl_->gremban;
    out.impl_->build(impl_->n, out.impl_->gremban->edges);
  } else {
    out.impl_->build(impl_->n, impl_->assemble_global_edges());
  }
  return out;
}

std::uint64_t SolverSetup::update_seq() const { return impl_->update_seq; }

SetupQuality SolverSetup::quality() const {
  SetupQuality q;
  q.baseline_iterations =
      impl_->baseline_iters.load(std::memory_order_relaxed);
  q.last_iterations = impl_->last_iters.load(std::memory_order_relaxed);
  for (const ComponentSetup& cs : impl_->components) {
    if (cs.chain_stale) ++q.stale_components;
  }
  q.drift = q.baseline_iterations > 0
                ? static_cast<double>(q.last_iterations) /
                      static_cast<double>(q.baseline_iterations)
                : 1.0;
  return q;
}

namespace {

// Byte tag opening every serialized SolverSetup body, so a setup embedded
// in a larger snapshot (e.g. the golden regression file) stays
// self-identifying.
constexpr std::uint8_t kSetupTag = 0x53;  // 'S'

// Options are serialized field by field (never as raw struct bytes): the
// encoding survives reordering/padding changes in the C++ structs, and a
// loaded setup reports exactly the options it was built with.
void save_options(serialize::Writer& w, const SddSolverOptions& o) {
  w.f64(o.tolerance);
  w.u32(o.max_iterations);
  w.u32(static_cast<std::uint32_t>(o.method));
  w.u8(static_cast<std::uint8_t>(o.precision));
  const ChainOptions& c = o.chain;
  w.u64(c.seed);
  w.u32(static_cast<std::uint32_t>(c.mode));
  w.f64(c.kappa);
  w.f64(c.kappa_growth);
  w.u32(c.bottom_size);
  w.u32(c.max_levels);
  w.f64(c.oversample);
  w.f64(c.p_floor);
  w.f64(c.subgraph_scale);
  w.u32(c.lambda);
  w.f64(c.theta);
  w.f64(c.subgraph_y);
  w.f64(c.subgraph_z);
  const RecursiveSolverOptions& rs = o.recursion;
  w.u32(static_cast<std::uint32_t>(rs.inner));
  w.f64(rs.inner_tolerance);
  w.u32(rs.inner_max_iterations);
  w.u32(rs.inner_iterations);
  w.f64(rs.kappa_cap);
  w.u32(rs.power_iterations);
  w.f64(rs.lambda_max_margin);
  w.u64(rs.seed);
}

SddSolverOptions load_options(serialize::Reader& r) {
  SddSolverOptions o;
  o.tolerance = r.f64();
  o.max_iterations = r.u32();
  std::uint32_t method = r.u32();
  if (method > static_cast<std::uint32_t>(SolveMethod::kJacobiPcg)) {
    r.fail("unknown SolveMethod value " + std::to_string(method));
  } else {
    o.method = static_cast<SolveMethod>(method);
  }
  std::uint8_t precision = r.u8();
  if (precision > static_cast<std::uint8_t>(Precision::kF32Refined)) {
    r.fail("unknown Precision value " + std::to_string(precision));
  } else {
    o.precision = static_cast<Precision>(precision);
  }
  ChainOptions& c = o.chain;
  c.seed = r.u64();
  std::uint32_t mode = r.u32();
  if (mode > static_cast<std::uint32_t>(ChainMode::kSampled)) {
    r.fail("unknown ChainMode value " + std::to_string(mode));
  } else {
    c.mode = static_cast<ChainMode>(mode);
  }
  c.kappa = r.f64();
  c.kappa_growth = r.f64();
  c.bottom_size = r.u32();
  c.max_levels = r.u32();
  c.oversample = r.f64();
  c.p_floor = r.f64();
  c.subgraph_scale = r.f64();
  c.lambda = r.u32();
  c.theta = r.f64();
  c.subgraph_y = r.f64();
  c.subgraph_z = r.f64();
  RecursiveSolverOptions& rs = o.recursion;
  std::uint32_t inner = r.u32();
  if (inner > static_cast<std::uint32_t>(InnerMethod::kFlexibleCg)) {
    r.fail("unknown InnerMethod value " + std::to_string(inner));
  } else {
    rs.inner = static_cast<InnerMethod>(inner);
  }
  rs.inner_tolerance = r.f64();
  rs.inner_max_iterations = r.u32();
  rs.inner_iterations = r.u32();
  rs.kappa_cap = r.f64();
  rs.power_iterations = r.u32();
  rs.lambda_max_margin = r.f64();
  rs.seed = r.u64();
  return o;
}

}  // namespace

void SolverSetup::save_to(serialize::Writer& w) const {
  w.u8(kSetupTag);
  save_options(w, impl_->opts);
  w.u32(impl_->n);
  // Format v3: the dynamic-update stream position and quality-monitor
  // counters, so a snapshot taken after updates reloads bitwise — same
  // update_seq, same drift baseline (see DESIGN.md §10).
  w.u64(impl_->update_seq);
  w.u32(impl_->baseline_iters.load(std::memory_order_relaxed));
  w.u32(impl_->last_iters.load(std::memory_order_relaxed));
  w.boolean(impl_->gremban.has_value());
  if (impl_->gremban) impl_->gremban->save(w);
  w.varint(impl_->components.size());
  for (const ComponentSetup& cs : impl_->components) {
    w.pod_vec(cs.vertices);
    save_edges(w, cs.local_edges);
    cs.laplacian.save(w);
    w.boolean(cs.chain != nullptr);
    w.boolean(cs.chain_stale);  // v3: stale-chain tier marker
    if (cs.chain) {
      save_chain(w, *cs.chain);
      // The spectral bounds the recursive solver measured at build time
      // (Chebyshev mode; empty in flexible-CG mode).  Persisting them keeps
      // the loaded solver bitwise-faithful without re-running the power
      // iteration on load.
      const auto& bounds = cs.recursive->level_bounds();
      w.varint(bounds.size());
      for (const auto& [lo, hi] : bounds) {
        w.f64(lo);
        w.f64(hi);
      }
    }
  }
}

StatusOr<SolverSetup> SolverSetup::load_from(serialize::Reader& r) {
  if (std::uint8_t tag = r.u8(); r.status().ok() && tag != kSetupTag) {
    r.fail("payload is not a SolverSetup (tag " + std::to_string(tag) + ")");
  }
  SolverSetup s;
  s.impl_->opts = load_options(r);
  s.impl_->n = r.u32();
  s.impl_->update_seq = r.u64();
  s.impl_->baseline_iters.store(r.u32(), std::memory_order_relaxed);
  s.impl_->last_iters.store(r.u32(), std::memory_order_relaxed);
  if (r.boolean()) {
    s.impl_->gremban = GrembanReduction::load(r);
    if (r.status().ok() &&
        static_cast<std::uint64_t>(s.impl_->n) !=
            2 * static_cast<std::uint64_t>(s.impl_->gremban->n)) {
      r.fail("Gremban lift dimension disagrees with the system size");
    }
  }
  std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count && r.status().ok(); ++i) {
    ComponentSetup cs;
    cs.vertices = r.pod_vec<std::uint32_t>();
    cs.local_edges = load_edges(r);
    cs.laplacian = CsrMatrix::load(r);
    if (!r.status().ok()) break;
    // The solve gathers b.row(vertices[i]) from an n-row block and scatters
    // local edges over a vertices.size()-row component; both index spaces
    // must be validated before a forged snapshot can reach them.
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    bool ok = cs.vertices.size() <= s.impl_->n;
    for (std::size_t v = 0; ok && v < cs.vertices.size(); ++v) {
      ok = cs.vertices[v] < s.impl_->n;
    }
    for (std::size_t e = 0; ok && e < cs.local_edges.size(); ++e) {
      ok = cs.local_edges[e].u < cn && cs.local_edges[e].v < cn;
    }
    ok = ok && cs.laplacian.dimension() == (cn >= 2 ? cn : 0);
    if (!ok) {
      r.fail("component " + std::to_string(i) +
             " indexes out of bounds for the system size");
      break;
    }
    bool has_chain = r.boolean();
    cs.chain_stale = r.boolean();
    if (r.status().ok() && cs.chain_stale && !has_chain) {
      r.fail("component " + std::to_string(i) +
             " marked chain-stale without a chain");
      break;
    }
    if (has_chain) {
      cs.chain = std::make_shared<const SolverChain>(load_chain(r));
      if (r.status().ok() &&
          (cs.chain->levels.empty() || cs.chain->levels.front().n != cn)) {
        r.fail("component " + std::to_string(i) +
               " chain does not start at the component size");
        break;
      }
      std::uint64_t num_bounds = r.varint();
      if (num_bounds > r.remaining() / (2 * sizeof(double))) {
        r.fail("level-bound count exceeds remaining bytes");
        break;
      }
      std::vector<std::pair<double, double>> bounds(
          static_cast<std::size_t>(num_bounds));
      for (auto& [lo, hi] : bounds) {
        lo = r.f64();
        hi = r.f64();
      }
      if (!r.status().ok()) break;
      // The Chebyshev inner solver reads level_bounds_[i] per level; any
      // other count would index past the vector at solve time.
      if (num_bounds != 0 && num_bounds != cs.chain->levels.size()) {
        r.fail("level-bound count disagrees with the chain depth");
        break;
      }
      if (s.impl_->opts.recursion.inner == InnerMethod::kChebyshev &&
          num_bounds == 0) {
        r.fail("Chebyshev recursion requires saved spectral bounds");
        break;
      }
      cs.recursive = std::make_shared<RecursiveSolver>(
          *cs.chain, s.impl_->opts.recursion, std::move(bounds));
      if (s.impl_->opts.precision == Precision::kF32Refined) {
        cs.recursive->enable_f32();
      }
    }
    // The chain-method solve dereferences cs.recursive unconditionally for
    // every non-trivial component; a forged snapshot must not be able to
    // clear the chain flag out from under it.
    if ((s.impl_->opts.method == SolveMethod::kChainPcg ||
         s.impl_->opts.method == SolveMethod::kChainRpch) &&
        cs.vertices.size() >= 2 && !cs.recursive) {
      r.fail("component " + std::to_string(i) +
             " is missing the chain its solve method requires");
      break;
    }
    s.impl_->components.push_back(std::move(cs));
  }
  if (!r.status().ok()) return r.status();
  return s;
}

Status SolverSetup::Save(const std::string& path) const {
  serialize::Writer w;
  w.header();
  save_to(w);
  return w.to_file(path);
}

StatusOr<SolverSetup> SolverSetup::Load(const std::string& path) {
  StatusOr<serialize::Reader> r = serialize::Reader::from_file(path);
  if (!r.ok()) return r.status();
  PARSDD_RETURN_IF_ERROR(r->check_header());
  StatusOr<SolverSetup> setup = load_from(*r);
  if (!setup.ok()) return setup;
  if (!r->exhausted()) {
    return InvalidArgumentError("SolverSetup::Load: " +
                                std::to_string(r->remaining()) +
                                " trailing bytes after payload in " + path);
  }
  return setup;
}

StatusOr<Vec> SolverSetup::solve(const Vec& b, SddSolveReport* report) const {
  // A single solve is a 1-column batch: both entry points share one code
  // path, so batched and single solves are arithmetically identical.
  MultiVec bb(b.size(), 1);
  bb.set_column(0, b);
  BatchSolveReport batch_report;
  StatusOr<MultiVec> xx = solve_batch(bb, report ? &batch_report : nullptr);
  if (!xx.ok()) return xx.status();
  if (report) {
    *report = SddSolveReport{};
    if (!batch_report.column_stats.empty()) {
      report->stats = batch_report.column_stats.front();
    }
    report->chain_levels = batch_report.chain_levels;
    report->chain_edges = batch_report.chain_edges;
    report->bottom_visits = batch_report.bottom_visits;
    report->components = batch_report.components;
  }
  return xx->column(0);
}

}  // namespace parsdd
