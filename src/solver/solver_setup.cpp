#include "solver/solver_setup.h"

#include <algorithm>
#include <string>

#include "graph/connectivity.h"
#include "linalg/cg.h"
#include "linalg/jacobi.h"
#include "linalg/laplacian.h"

namespace parsdd {

namespace {

// One connected component's RHS-independent state.
struct ComponentSetup {
  std::vector<std::uint32_t> vertices;  // original ids, in local order
  EdgeList local_edges;
  CsrMatrix laplacian;
  std::unique_ptr<SolverChain> chain;
  std::unique_ptr<RecursiveSolver> recursive;
};

}  // namespace

struct SolverSetup::Impl {
  SddSolverOptions opts;
  std::uint32_t n = 0;  // size of the (possibly lifted) Laplacian system
  std::vector<ComponentSetup> components;
  // Gremban state (only for non-Laplacian SDD inputs).
  std::optional<GrembanReduction> gremban;

  void build(std::uint32_t num_vertices, const EdgeList& edges);
  MultiVec solve_batch_laplacian(const MultiVec& b,
                                 BatchSolveReport* report) const;
};

void SolverSetup::Impl::build(std::uint32_t num_vertices,
                              const EdgeList& edges) {
  n = num_vertices;
  Components comps = connected_components(n, edges);
  std::vector<std::vector<std::uint32_t>> members(comps.count);
  for (std::uint32_t v = 0; v < n; ++v) {
    members[comps.label[v]].push_back(v);
  }
  // Local index of each vertex inside its component.
  std::vector<std::uint32_t> local(n);
  for (auto& m : members) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      local[m[i]] = static_cast<std::uint32_t>(i);
    }
  }
  components.resize(comps.count);
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    components[c].vertices = std::move(members[c]);
  }
  for (const Edge& e : edges) {
    std::uint32_t c = comps.label[e.u];
    components[c].local_edges.push_back(Edge{local[e.u], local[e.v], e.w});
  }
  for (auto& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;  // isolated vertex: solution 0
    cs.laplacian = laplacian_from_edges(cn, cs.local_edges);
    if (opts.method == SolveMethod::kChainPcg ||
        opts.method == SolveMethod::kChainRpch) {
      cs.chain = std::make_unique<SolverChain>(
          build_chain(cn, cs.local_edges, opts.chain));
      cs.recursive =
          std::make_unique<RecursiveSolver>(*cs.chain, opts.recursion);
    }
  }
}

MultiVec SolverSetup::Impl::solve_batch_laplacian(
    const MultiVec& b, BatchSolveReport* report) const {
  // Shape is validated by SolverSetup::solve_batch before any Gremban lift;
  // by the time we are here b is n x k with k >= 1.
  std::size_t k = b.cols();
  MultiVec x(n, k, 0.0);
  if (report) {
    *report = BatchSolveReport{};
    report->column_stats.assign(k, IterStats{});
    report->components = static_cast<std::uint32_t>(components.size());
  }
  for (const ComponentSetup& cs : components) {
    std::uint32_t cn = static_cast<std::uint32_t>(cs.vertices.size());
    if (cn < 2) continue;
    MultiVec cb(cn, k);
    for (std::uint32_t i = 0; i < cn; ++i) {
      const double* src = b.row(cs.vertices[i]);
      double* dst = cb.row(i);
      for (std::size_t c = 0; c < k; ++c) dst[c] = src[c];
    }
    project_out_constant_cols(cb);  // consistency for the singular Laplacian
    MultiVec cx(cn, k, 0.0);
    std::vector<IterStats> st;
    std::uint64_t visits_before =
        cs.recursive ? cs.recursive->bottom_visits() : 0;
    switch (opts.method) {
      case SolveMethod::kChainPcg: {
        RecursiveSolver::Workspace ws = cs.recursive->make_workspace();
        st = cs.recursive->solve_batch(cb, cx, opts.tolerance,
                                       opts.max_iterations, ws);
        break;
      }
      case SolveMethod::kChainRpch: {
        RecursiveSolver::Workspace ws = cs.recursive->make_workspace();
        st = cs.recursive->solve_rpch_batch(cb, cx, opts.tolerance,
                                            opts.max_iterations, ws);
        break;
      }
      case SolveMethod::kCg: {
        BlockLinOp a_op = [&cs](const MultiVec& in, MultiVec& out) {
          ensure_shape(out, in.rows(), in.cols());
          cs.laplacian.multiply(in, out);
        };
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = block_conjugate_gradient(a_op, cb, cx, copts);
        break;
      }
      case SolveMethod::kJacobiPcg: {
        BlockLinOp a_op = [&cs](const MultiVec& in, MultiVec& out) {
          ensure_shape(out, in.rows(), in.cols());
          cs.laplacian.multiply(in, out);
        };
        BlockLinOp pre = jacobi_preconditioner_block(cs.laplacian);
        CgOptions copts;
        copts.tolerance = opts.tolerance;
        copts.max_iterations = opts.max_iterations;
        copts.project_constant = true;
        st = block_conjugate_gradient(a_op, cb, cx, copts, &pre);
        break;
      }
    }
    project_out_constant_cols(cx);
    for (std::uint32_t i = 0; i < cn; ++i) {
      const double* src = cx.row(i);
      double* dst = x.row(cs.vertices[i]);
      for (std::size_t c = 0; c < k; ++c) dst[c] = src[c];
    }
    if (report) {
      for (std::size_t c = 0; c < k; ++c) {
        if (st[c].iterations >= report->column_stats[c].iterations) {
          report->column_stats[c] = st[c];
        }
      }
      if (cs.chain) {
        report->chain_levels =
            std::max(report->chain_levels, cs.chain->depth());
        report->chain_edges += cs.chain->total_edges();
      }
      if (cs.recursive) {
        report->bottom_visits += cs.recursive->bottom_visits() - visits_before;
      }
    }
  }
  return x;
}

SolverSetup::SolverSetup() : impl_(std::make_unique<Impl>()) {}
SolverSetup::SolverSetup(SolverSetup&&) noexcept = default;
SolverSetup& SolverSetup::operator=(SolverSetup&&) noexcept = default;
SolverSetup::~SolverSetup() = default;

SolverSetup SolverSetup::for_laplacian(std::uint32_t n, const EdgeList& edges,
                                       const SddSolverOptions& opts) {
  SolverSetup s;
  s.impl_->opts = opts;
  s.impl_->build(n, edges);
  return s;
}

SolverSetup SolverSetup::for_sdd(const CsrMatrix& a,
                                 const SddSolverOptions& opts) {
  GrembanReduction red = gremban_reduce(a);
  SolverSetup s;
  s.impl_->opts = opts;
  if (red.was_laplacian) {
    s.impl_->build(a.dimension(), edges_from_laplacian(a));
  } else {
    s.impl_->gremban = std::move(red);
    s.impl_->build(2 * a.dimension(), s.impl_->gremban->edges);
  }
  return s;
}

std::uint32_t SolverSetup::dimension() const {
  return impl_->gremban && !impl_->gremban->was_laplacian ? impl_->gremban->n
                                                          : impl_->n;
}

std::uint32_t SolverSetup::num_components() const {
  return static_cast<std::uint32_t>(impl_->components.size());
}

std::uint32_t SolverSetup::chain_levels() const {
  std::uint32_t levels = 0;
  for (const ComponentSetup& cs : impl_->components) {
    if (cs.chain) levels = std::max(levels, cs.chain->depth());
  }
  return levels;
}

std::size_t SolverSetup::chain_edges() const {
  std::size_t edges = 0;
  for (const ComponentSetup& cs : impl_->components) {
    if (cs.chain) edges += cs.chain->total_edges();
  }
  return edges;
}

StatusOr<MultiVec> SolverSetup::solve_batch(const MultiVec& b,
                                            BatchSolveReport* report) const {
  if (b.cols() == 0) {
    return InvalidArgumentError("SolverSetup::solve_batch: empty batch (k=0)");
  }
  // Validate against the ORIGINAL dimension before any Gremban lift: the
  // lifted block is always 2n rows, so a downstream check could not catch a
  // wrong-sized input.
  if (b.rows() != dimension()) {
    return InvalidArgumentError(
        "SolverSetup::solve_batch: dimension mismatch (got " +
        std::to_string(b.rows()) + " rows, setup has dimension " +
        std::to_string(dimension()) + ")");
  }
  if (!impl_->gremban) {
    return impl_->solve_batch_laplacian(b, report);
  }
  MultiVec lifted = impl_->gremban->lift_rhs_block(b);
  MultiVec y = impl_->solve_batch_laplacian(lifted, report);
  return impl_->gremban->project_solution_block(y);
}

StatusOr<Vec> SolverSetup::solve(const Vec& b, SddSolveReport* report) const {
  // A single solve is a 1-column batch: both entry points share one code
  // path, so batched and single solves are arithmetically identical.
  MultiVec bb(b.size(), 1);
  bb.set_column(0, b);
  BatchSolveReport batch_report;
  StatusOr<MultiVec> xx = solve_batch(bb, report ? &batch_report : nullptr);
  if (!xx.ok()) return xx.status();
  if (report) {
    *report = SddSolveReport{};
    if (!batch_report.column_stats.empty()) {
      report->stats = batch_report.column_stats.front();
    }
    report->chain_levels = batch_report.chain_levels;
    report->chain_edges = batch_report.chain_edges;
    report->bottom_visits = batch_report.bottom_visits;
    report->components = batch_report.components;
  }
  return xx->column(0);
}

}  // namespace parsdd
