// The setup phase of the setup/solve split.
//
// A production deployment never solves one system once: it builds the
// preconditioner chain (Definition 6.3) for a fixed Laplacian/SDD matrix
// once and then answers many right-hand sides against it — one solve per
// queried edge in apps/effective_resistance, one per channel in
// apps/harmonic.  SolverSetup owns everything that is expensive and
// RHS-independent (Gremban reduction, connected components, per-component
// chain + recursive solver), and exposes two cheap query entry points:
//
//   * solve(b)        — one RHS (internally a 1-column batch);
//   * solve_batch(B)  — k RHS in lockstep, sharing every matrix traversal,
//                       elimination fold, and bottom dense solve across the
//                       whole block (SpMM-style amortization).
//
// Both are const and allocate per-call workspaces, so any number of threads
// may solve concurrently against one shared SolverSetup.  Both return
// StatusOr (util/status.h): a malformed request (dimension mismatch, empty
// batch) is an InvalidArgument result, not a crash — the contract the
// serving front door (service/solver_service.h) relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "linalg/gremban.h"
#include "linalg/iterative.h"
#include "linalg/multivec.h"
#include "solver/chain.h"
#include "solver/recursive_solver.h"
#include "util/status.h"

namespace parsdd {

enum class SolveMethod {
  kChainPcg,    // flexible PCG + recursive chain preconditioner (default)
  kChainRpch,   // pure recursive preconditioned Chebyshev (Theorem 1.1)
  kCg,          // unpreconditioned conjugate gradient (baseline)
  kJacobiPcg,   // diagonally preconditioned CG (baseline)
};

/// Arithmetic contract of the solve phase.
enum class Precision : std::uint8_t {
  /// Default: everything in fp64 with the bitwise-determinism guarantees
  /// (batch == single, snapshot replay, cross-backend identity).
  kF64Bitwise = 0,
  /// Opt-in: the preconditioner chain (elimination folds, inner iterations,
  /// level SpMMs) runs in fp32; the outer flexible CG stays fp64 and
  /// iteratively refines, so convergence is still measured against the fp64
  /// residual and the returned x meets `tolerance` in fp64.  Results are
  /// deterministic for a fixed pool/backend but NOT bitwise-comparable to
  /// kF64Bitwise; only affects SolveMethod::kChainPcg.  See DESIGN.md §9.
  kF32Refined = 1,
};

struct SddSolverOptions {
  double tolerance = 1e-8;
  std::uint32_t max_iterations = 5000;
  SolveMethod method = SolveMethod::kChainPcg;
  Precision precision = Precision::kF64Bitwise;
  ChainOptions chain;
  RecursiveSolverOptions recursion;
};

/// One mutation in a dynamic-graph update stream (ROADMAP item 4): "set the
/// weight of undirected edge {u, v} to w".
///   * existing edge, w > 0  — weight perturbation (stale-chain tier);
///   * existing edge, w == 0 — removal (structural: full rebuild, since the
///                             component partition may change);
///   * new edge,      w > 0  — insertion (structural: component rebuild
///                             when both endpoints share a component, full
///                             rebuild when it bridges two).
/// Vertices are never added or removed: u and v must be < dimension(), and
/// u != v.  Deltas in one batch apply sequentially, so a batch may insert
/// an edge and then re-weight it.
struct EdgeDelta {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  double w = 0.0;
};

/// How update() absorbed a delta batch; ordered cheapest to costliest.
enum class UpdateTier : std::uint8_t {
  /// Weight-only perturbations: touched components share the old
  /// preconditioner chain (marked stale); only the Laplacian the outer
  /// fp64 CG measures residuals against is rebuilt, so the returned x
  /// still meets `tolerance` against the *updated* matrix — the stale
  /// chain merely preconditions, possibly costing extra iterations.
  kStaleChain = 0,
  /// Structural change confined to existing components: only the touched
  /// components rebuild their chains; every other component is shared
  /// with the pre-update setup.
  kComponentRebuild = 1,
  /// A removal or component-bridging insertion (the component partition
  /// itself may change): full re-setup from the updated edge list.
  kFullRebuild = 2,
};

/// What update() did, for telemetry and the service's swap bookkeeping.
struct UpdateReport {
  UpdateTier tier = UpdateTier::kStaleChain;
  std::uint32_t weight_updates = 0;
  std::uint32_t edges_added = 0;
  std::uint32_t edges_removed = 0;
  std::uint32_t components_rebuilt = 0;  // chains rebuilt by this update
  std::uint32_t components_stale = 0;    // total on a stale chain afterwards
  std::uint32_t components_shared = 0;   // untouched, shared with old setup
  std::uint64_t update_seq = 0;          // deltas absorbed since first build
};

/// The residual-based quality estimate behind the stale-chain tier: the
/// worst outer-CG iteration count of the most recent solve, against the
/// count recorded for the first solve of the fresh (never-updated) chain.
/// A stale chain preconditions an updated matrix, so degradation shows up
/// exactly here — `drift` rising past a threshold is the service's signal
/// to schedule an async rebuild (ServiceOptions::stale_rebuild_factor).
struct SetupQuality {
  std::uint32_t baseline_iterations = 0;  // first recorded fresh-chain solve
  std::uint32_t last_iterations = 0;      // most recent solve
  std::uint32_t stale_components = 0;     // components on a stale chain
  double drift = 1.0;  // last / baseline; 1.0 until both are known
};

struct SddSolveReport {
  IterStats stats;                // worst component's iteration stats
  std::uint32_t chain_levels = 0; // deepest chain
  std::size_t chain_edges = 0;    // total edges across all chain levels
  std::uint64_t bottom_visits = 0;
  std::uint32_t components = 0;
};

struct BatchSolveReport {
  /// Worst-component iteration stats, one entry per RHS column.
  std::vector<IterStats> column_stats;
  std::uint32_t chain_levels = 0;
  std::size_t chain_edges = 0;
  /// Bottom-level dense solves during this batch (a batched visit counts
  /// once for the whole block); approximate under concurrent solves.
  std::uint64_t bottom_visits = 0;
  std::uint32_t components = 0;
};

class SolverSetup {
 public:
  /// Builds the chain(s) for the Laplacian of (V=[0,n), edges).  The graph
  /// may be disconnected; isolated vertices get solution 0.
  static SolverSetup for_laplacian(std::uint32_t n, const EdgeList& edges,
                                   const SddSolverOptions& opts = {});

  /// Builds for a general SDD matrix (Gremban double cover applied when A
  /// is not already a Laplacian).
  static SolverSetup for_sdd(const CsrMatrix& a,
                             const SddSolverOptions& opts = {});

  SolverSetup(SolverSetup&&) noexcept;
  SolverSetup& operator=(SolverSetup&&) noexcept;
  ~SolverSetup();

  /// Size of the original system (before any Gremban lift).
  std::uint32_t dimension() const;
  std::uint32_t num_components() const;
  std::uint32_t chain_levels() const;
  std::size_t chain_edges() const;
  /// The arithmetic contract this setup was built with (see Precision).
  Precision precision() const;

  /// Solves A x = b.  For Laplacian blocks b is projected per component.
  /// Thread-safe: concurrent calls share the setup, never the scratch.
  /// InvalidArgument when b.size() != dimension().
  StatusOr<Vec> solve(const Vec& b, SddSolveReport* report = nullptr) const;

  /// Solves A X = B column-wise; column c equals solve(B[:,c]) bitwise.  One
  /// chain pass serves the whole block, amortizing setup traversals over k
  /// RHS.  InvalidArgument when B has zero columns or the wrong row count.
  StatusOr<MultiVec> solve_batch(const MultiVec& b,
                                 BatchSolveReport* report = nullptr) const;

  /// Classifies a delta batch (the tier update() would pick) without
  /// applying it — the service uses this to decide synchronous apply vs.
  /// async rebuild.  Same error contract as update().
  StatusOr<UpdateTier> plan_update(const std::vector<EdgeDelta>& deltas) const;

  /// Applies a delta batch and returns a NEW setup; this one is untouched
  /// (still const and thread-safe), so a server can keep answering solves
  /// against it until the result swaps in.  Untouched components — and, on
  /// the stale-chain tier, their preconditioner chains — are shared between
  /// the two setups, which is safe because chains are immutable after
  /// construction.  InvalidArgument for out-of-range endpoints, self
  /// loops, negative/non-finite weights, removal of a nonexistent edge, or
  /// a Gremban-lifted SDD setup (rebuild from the updated matrix instead).
  StatusOr<SolverSetup> update(const std::vector<EdgeDelta>& deltas,
                               UpdateReport* report = nullptr) const;

  /// Full fresh re-setup from the current (post-update) edge list: every
  /// chain rebuilt, staleness and the quality baseline cleared, update_seq
  /// kept.  The escape hatch the quality monitor triggers when stale-chain
  /// drift crosses the rebuild threshold.
  SolverSetup rebuild() const;

  /// Deltas absorbed via update() since the original build (0 = pristine).
  std::uint64_t update_seq() const;

  /// Residual-quality monitor sample; cheap, thread-safe, updated by every
  /// solve/solve_batch.  See SetupQuality.
  SetupQuality quality() const;

  /// Persists the complete RHS-independent setup state — options, Gremban
  /// lift, per-component graphs, chain levels, elimination records, dense
  /// bottom factors, and measured spectral bounds — as a versioned,
  /// checksummed binary snapshot (util/serialize.h).  A setup loaded in a
  /// fresh process produces bitwise-identical solves to this one; see
  /// DESIGN.md, "Snapshot format".
  Status Save(const std::string& path) const;
  /// NotFound for a missing file; InvalidArgument for truncated, corrupt,
  /// endian-foreign, or version-mismatched snapshots.  Never throws.
  static StatusOr<SolverSetup> Load(const std::string& path);

  /// Body-only encode/decode, for embedding a setup inside a larger
  /// snapshot (the golden regression file in tests/data does this);
  /// Save/Load wrap these with the file header and checksum trailer.
  void save_to(serialize::Writer& w) const;
  static StatusOr<SolverSetup> load_from(serialize::Reader& r);

 private:
  SolverSetup();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace parsdd
