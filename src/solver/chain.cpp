#include "solver/chain.h"

#include <cmath>
#include <stdexcept>

#include "linalg/laplacian.h"
#include "util/serialize.h"

namespace parsdd {

std::size_t SolverChain::total_edges() const {
  std::size_t total = 0;
  for (const ChainLevel& l : levels) total += l.edges.size();
  return total;
}

SolverChain build_chain(std::uint32_t n, const EdgeList& edges,
                        const ChainOptions& opts) {
  SolverChain chain;
  std::uint32_t bottom_size = opts.bottom_size;
  if (bottom_size == 0) {
    bottom_size = std::max<std::uint32_t>(
        24, static_cast<std::uint32_t>(
                std::ceil(std::cbrt(static_cast<double>(edges.size()) + 1))));
  }

  std::uint32_t cur_n = n;
  EdgeList cur_edges = edges;
  double kappa = opts.kappa;

  for (std::uint32_t level = 0;; ++level) {
    ChainLevel lvl;
    lvl.n = cur_n;
    lvl.edges = cur_edges;
    lvl.laplacian = laplacian_from_edges(cur_n, cur_edges);

    const bool is_bottom =
        cur_n <= bottom_size || level + 1 >= opts.max_levels;
    if (is_bottom) {
      chain.levels.push_back(std::move(lvl));
      break;
    }

    SparsifyOptions sopts;
    sopts.seed = opts.seed + 0x51ed2701ull * (level + 1);
    sopts.oversample = opts.oversample;
    sopts.p_floor = opts.p_floor;
    sopts.subgraph_scale = opts.subgraph_scale;
    sopts.subgraph.lambda = opts.lambda;
    sopts.subgraph.theta = opts.theta;
    sopts.subgraph.y = opts.subgraph_y;
    sopts.subgraph.z = opts.subgraph_z;
    // Resolve κ for this level.  Automatic mode mirrors Lemma 6.2's
    // S·log n / κ edge-budget relation: aim for ~m/8 sampled edges.
    double m = static_cast<double>(cur_edges.size());
    double ln_n = std::log(std::max<double>(cur_n, 2.0));
    double level_kappa = kappa;
    SparsifyResult sp;
    double avg_stretch = 0.0;
    if (opts.mode == ChainMode::kUltrasparse) {
      // B = Ĝ exactly: suppress sampling by sending κ to infinity.
      sopts.kappa = 1e300;
      sopts.p_floor = 0.0;
      sp = incremental_sparsify(cur_n, cur_edges, sopts);
      avg_stretch = sp.total_stretch / std::max(1.0, m);
      level_kappa = avg_stretch * m;  // nominal bound: total stretch
    } else {
      // First pass with a provisional κ to learn the stretch; redo with the
      // informed value if the provisional badly missed the m/8 budget.
      if (level_kappa <= 0.0) level_kappa = 8.0 * ln_n;
      sopts.kappa = level_kappa;
      sp = incremental_sparsify(cur_n, cur_edges, sopts);
      avg_stretch = sp.total_stretch / std::max(1.0, m);
      if (opts.kappa <= 0.0) {
        double informed = 8.0 * opts.oversample * avg_stretch * ln_n;
        if (informed > 2.0 * level_kappa) {
          level_kappa = informed;
          sopts.kappa = level_kappa;
          sp = incremental_sparsify(cur_n, cur_edges, sopts);
        }
      }
    }
    lvl.kappa = level_kappa;
    lvl.avg_stretch = avg_stretch;
    lvl.has_preconditioner = true;
    lvl.b_edges = std::move(sp.h_edges);

    lvl.elimination = greedy_eliminate(
        cur_n, lvl.b_edges, opts.seed + 0x9e3779b9ull * (level + 1));

    std::uint32_t next_n = lvl.elimination.reduced_n;
    EdgeList next_edges = lvl.elimination.reduced_edges;
    chain.levels.push_back(std::move(lvl));

    if (next_n >= cur_n && next_edges.size() >= cur_edges.size()) {
      // No progress (pathological sampling); sparsify harder next level.
      kappa = (kappa <= 0.0 ? 16.0 * ln_n : kappa * 2.0);
    } else {
      if (kappa > 0.0) kappa *= opts.kappa_growth;
    }
    cur_n = next_n;
    cur_edges = std::move(next_edges);
    if (cur_n == 0) break;  // fully eliminated (input was tree-like)
  }

  const ChainLevel& last = chain.levels.back();
  if (!last.has_preconditioner && last.n >= 2 && !last.edges.empty()) {
    chain.bottom = DenseLdlt::factor_laplacian(last.laplacian);
  }
  return chain;
}

void save_chain(serialize::Writer& w, const SolverChain& chain) {
  w.varint(chain.levels.size());
  for (const ChainLevel& lvl : chain.levels) {
    w.u32(lvl.n);
    save_edges(w, lvl.edges);
    lvl.laplacian.save(w);
    w.boolean(lvl.has_preconditioner);
    save_edges(w, lvl.b_edges);
    lvl.elimination.save(w);
    w.f64(lvl.kappa);
    w.f64(lvl.avg_stretch);
  }
  w.boolean(chain.bottom.has_value());
  if (chain.bottom) chain.bottom->save(w);
}

namespace {

bool edges_in_bounds(const EdgeList& edges, std::uint32_t n) {
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n) return false;
  }
  return true;
}

}  // namespace

SolverChain load_chain(serialize::Reader& r) {
  SolverChain chain;
  std::uint64_t depth = r.varint();
  for (std::uint64_t i = 0; i < depth && r.status().ok(); ++i) {
    ChainLevel lvl;
    lvl.n = r.u32();
    lvl.edges = load_edges(r);
    lvl.laplacian = CsrMatrix::load(r);
    lvl.has_preconditioner = r.boolean();
    lvl.b_edges = load_edges(r);
    lvl.elimination = GreedyEliminationResult::load(r, lvl.n);
    lvl.kappa = r.f64();
    lvl.avg_stretch = r.f64();
    if (!r.status().ok()) break;
    // The solve path trusts these invariants without rechecking: the
    // level's Laplacian multiplies lvl.n-sized vectors, and each level's
    // input is the previous elimination's reduced graph.
    if (!edges_in_bounds(lvl.edges, lvl.n) ||
        !edges_in_bounds(lvl.b_edges, lvl.n) ||
        lvl.laplacian.dimension() != lvl.n) {
      r.fail("chain level " + std::to_string(i) +
             " indexes out of bounds for its vertex count");
      break;
    }
    if (!chain.levels.empty() &&
        chain.levels.back().elimination.reduced_n != lvl.n) {
      r.fail("chain level " + std::to_string(i) +
             " does not continue the previous elimination");
      break;
    }
    chain.levels.push_back(std::move(lvl));
  }
  if (r.status().ok() && !chain.levels.empty()) {
    // The recursion descends exactly while has_preconditioner holds, so
    // every level but the last must recurse, and a preconditioned last
    // level is legal only when its elimination emptied the graph (the
    // tree-like case) — anything else would step past the level array.
    for (std::size_t i = 0; i + 1 < chain.levels.size(); ++i) {
      if (!chain.levels[i].has_preconditioner) {
        r.fail("chain level " + std::to_string(i) +
               " is a non-terminal bottom level");
      }
    }
    const ChainLevel& last = chain.levels.back();
    if (last.has_preconditioner && last.elimination.reduced_n != 0) {
      r.fail("last chain level recurses past the end of the chain");
    }
  }
  if (r.boolean()) chain.bottom = DenseLdlt::load(r);
  if (r.status().ok() && chain.bottom && !chain.levels.empty() &&
      chain.bottom->dimension() != chain.levels.back().n) {
    r.fail("bottom factor dimension disagrees with the last chain level");
  }
  return chain;
}

}  // namespace parsdd
