// Clang Thread Safety Analysis vocabulary for parsdd, plus the annotated
// Mutex / MutexLock / CondVar wrappers the concurrent layers are written
// against.
//
// The concurrency in this library (fork-join pool, task FIFO, service
// dispatcher) is guarded by a handful of mutexes whose discipline used to be
// enforced only dynamically (the TSan CI lane) and by comment ("guarded by
// mu_").  These macros make the discipline machine-checked: under clang the
// library builds with -Wthread-safety -Werror=thread-safety (see
// PARSDD_THREAD_SAFETY in CMakeLists.txt), so touching a PARSDD_GUARDED_BY
// member without its mutex, or calling a PARSDD_REQUIRES function unlocked,
// is a compile error.  Under gcc (which has no thread-safety analysis) every
// macro expands to nothing and the wrappers are zero-cost shims over
// std::mutex / std::condition_variable.
//
// Why wrappers at all: the analysis only tracks types that declare a
// capability, and std::mutex does not.  Mutex re-exports std::mutex under a
// CAPABILITY("mutex") attribute; MutexLock is the scoped guard (with
// explicit Unlock()/Lock() for the dispatcher's hand-off pattern, which the
// analysis tracks as a scoped capability release/reacquire); CondVar wraps
// std::condition_variable against MutexLock.  Condition waits are written as
// explicit `while (!pred) cv.wait(lock);` loops rather than the predicate
// overload — the analysis treats a lambda as a separate unannotated function
// and cannot see that the predicate runs under the lock.
//
// Annotation reference:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PARSDD_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef PARSDD_THREAD_ANNOTATION__
#define PARSDD_THREAD_ANNOTATION__(x)  // not clang: annotations are comments
#endif

/// Declares that a type is a lockable capability (mutexes).
#define PARSDD_CAPABILITY(x) PARSDD_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PARSDD_SCOPED_CAPABILITY PARSDD_THREAD_ANNOTATION__(scoped_lockable)

/// Data member is protected by the given capability: reads require the
/// capability shared, writes require it exclusive.
#define PARSDD_GUARDED_BY(x) PARSDD_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define PARSDD_PT_GUARDED_BY(x) PARSDD_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability to be held on entry and exit.
#define PARSDD_REQUIRES(...) \
  PARSDD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define PARSDD_ACQUIRE(...) \
  PARSDD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define PARSDD_RELEASE(...) \
  PARSDD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given value.
#define PARSDD_TRY_ACQUIRE(...) \
  PARSDD_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention on re-entry).
#define PARSDD_EXCLUDES(...) PARSDD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Escape hatch; every use carries a justification comment.
#define PARSDD_NO_THREAD_SAFETY_ANALYSIS \
  PARSDD_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace parsdd {

/// std::mutex re-exported as a clang capability.  Same cost, same semantics;
/// the attribute is the only addition.
class PARSDD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARSDD_ACQUIRE() { mu_.lock(); }
  void unlock() PARSDD_RELEASE() { mu_.unlock(); }
  bool try_lock() PARSDD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped guard over Mutex.  Beyond plain RAII it supports the dispatcher's
/// hand-off pattern — release the service mutex to post a block, reacquire to
/// keep scanning — which the analysis tracks because Unlock()/Lock() are
/// annotated as scoped-capability release/reacquire.
class PARSDD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PARSDD_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PARSDD_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily release the mutex (it must be held).
  void Unlock() PARSDD_RELEASE() { lock_.unlock(); }
  /// Reacquire after Unlock().
  void Lock() PARSDD_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable against MutexLock.  wait() atomically releases and
/// reacquires the underlying mutex; from the analysis's point of view the
/// capability is held across the call, which is sound because the caller
/// re-checks its predicate under the lock (all waits in this library are
/// `while (!pred) cv.wait(lock);` loops).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename TimePoint>
  std::cv_status wait_until(MutexLock& lock, const TimePoint& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace parsdd
