// Status / StatusOr: recoverable-error results for the public API.
//
// The solver grew up as a research library where a bad input was a
// programmer error worth an assert or a throw.  A serving system cannot
// afford that: a malformed request from one client must become a clean,
// typed rejection, never a crash or an exception unwinding through the
// dispatcher.  Every public entry point of SolverSetup/SddSolver, the
// query apps, and SolverService therefore reports failure as a Status:
//
//   kInvalidArgument    — the request itself is malformed (dimension
//                         mismatch, empty batch, out-of-range vertex id);
//   kNotFound           — a stale/unknown SetupHandle;
//   kResourceExhausted  — queue backpressure: the service is full and the
//                         caller should retry or shed load;
//   kUnavailable        — the service is shutting down;
//   kInternal           — a bug (never expected from valid inputs).
//
// StatusOr<T> carries either a value or a non-OK Status.  value() on an
// error aborts with the status printed — the moral equivalent of the old
// assert, but opt-in at the call site instead of buried in the kernel.
#pragma once

#include <cstddef>
#include <new>
#include <string>
#include <utility>

namespace parsdd {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kResourceExhausted = 3,
  kUnavailable = 4,
  kInternal = 5,
};

/// Human-readable name of a code ("OK", "INVALID_ARGUMENT", ...).
const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default is OK: `return Status();` and `return OkStatus();` agree.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "INVALID_ARGUMENT: dimension mismatch (...)".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // messages are diagnostics, not identity
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

namespace internal_status {
/// Prints the status and aborts; the only non-returning path in the API.
[[noreturn]] void die_on_bad_access(const Status& status);
}  // namespace internal_status

/// A value or the Status explaining its absence.  Deliberately small: the
/// accessors the library needs, nothing speculative.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from Status so call sites write `return InvalidArgumentError(...)`.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK Status");
    }
  }
  /// Implicit from T so call sites write `return value;`.
  StatusOr(T value) : status_(OkStatus()) {
    ::new (static_cast<void*>(&storage_)) T(std::move(value));
  }

  StatusOr(const StatusOr& other) : status_(other.status_) {
    if (status_.ok()) {
      ::new (static_cast<void*>(&storage_)) T(*other.ptr());
    }
  }
  StatusOr(StatusOr&& other) noexcept : status_(std::move(other.status_)) {
    if (status_.ok()) {
      ::new (static_cast<void*>(&storage_)) T(std::move(*other.ptr()));
    }
  }
  StatusOr& operator=(const StatusOr& other) {
    if (this != &other) {
      destroy();
      // Hold an error status while the value is under construction: if T's
      // copy constructor throws, this object must not claim to hold a value
      // (the destructor would tear down raw storage).
      status_ = InternalError("StatusOr assignment interrupted");
      if (other.status_.ok()) {
        ::new (static_cast<void*>(&storage_)) T(*other.ptr());
      }
      status_ = other.status_;
    }
    return *this;
  }
  StatusOr& operator=(StatusOr&& other) noexcept {
    if (this != &other) {
      destroy();
      status_ = InternalError("StatusOr assignment interrupted");
      if (other.status_.ok()) {
        ::new (static_cast<void*>(&storage_)) T(std::move(*other.ptr()));
      }
      status_ = std::move(other.status_);
    }
    return *this;
  }
  ~StatusOr() { destroy(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Aborts (with the status printed) when not ok.
  const T& value() const& {
    check_ok();
    return *ptr();
  }
  T& value() & {
    check_ok();
    return *ptr();
  }
  T&& value() && {
    check_ok();
    return std::move(*ptr());
  }

  /// Unchecked access; only after ok() has been tested.
  const T& operator*() const& { return *ptr(); }
  T& operator*() & { return *ptr(); }
  const T* operator->() const { return ptr(); }
  T* operator->() { return ptr(); }

 private:
  void check_ok() const {
    if (!status_.ok()) internal_status::die_on_bad_access(status_);
  }
  T* ptr() { return std::launder(reinterpret_cast<T*>(&storage_)); }
  const T* ptr() const {
    return std::launder(reinterpret_cast<const T*>(&storage_));
  }
  void destroy() {
    if (status_.ok()) ptr()->~T();
  }

  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
};

/// Propagates a non-OK Status out of a function returning Status/StatusOr.
#define PARSDD_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::parsdd::Status parsdd_status_tmp = (expr);     \
    if (!parsdd_status_tmp.ok()) return parsdd_status_tmp; \
  } while (0)

}  // namespace parsdd
