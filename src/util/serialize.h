// Versioned binary snapshots for the setup-persistence subsystem.
//
// The expensive half of the setup/solve split — low-stretch trees,
// incremental sparsify, greedy elimination, the dense bottom factor — is
// RHS-independent and deterministic, so it is worth shipping between
// processes: build once, Save(), and every later server restart Load()s the
// chain instead of rebuilding it (bench_persistence measures the gap).
// Writer/Reader are the one encoding every serialized type shares, so the
// format has a single definition of truth:
//
//   * fixed-width scalars (u8..u64, f64) are written in native byte order;
//     the file header carries an endianness mark and a format version, and
//     Reader::check_header refuses a mismatch up front (InvalidArgument)
//     rather than decoding garbage;
//   * variable-length counts use LEB128 varints, so small graphs pay small
//     headers and 64-bit sizes never truncate;
//   * bulk data (edge endpoints, CSR arrays, factor entries) is written as
//     length-prefixed POD spans — one varint count, then the raw bytes —
//     which load as a single bounds-checked memcpy;
//   * Writer::to_file appends a lane-parallel FNV-1a-style checksum of
//     everything before it;
//     Reader::from_file verifies and strips it, so any byte corruption or
//     truncation surfaces as a clean Status instead of a crash or a
//     silently wrong chain.
//
// Reader errors are sticky: the first out-of-bounds or malformed read
// latches a non-OK status() and every later read returns zeros/empties, so
// decoding code reads straight through and checks status() once at the end.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace parsdd::serialize {

/// "PSDD" — identifies a parsdd snapshot regardless of payload type.
inline constexpr std::uint32_t kMagic = 0x50534444u;
/// Written as a native u16; reads back byte-swapped on the wrong endianness.
inline constexpr std::uint16_t kEndianMark = 0x0102u;
/// Bumped whenever the payload layout changes; readers refuse any version
/// they were not built for (see DESIGN.md, "Snapshot format").
/// v2: SddSolverOptions gained the Precision field (mixed-precision solve).
/// v3: dynamic updates — SolverSetup carries update_seq, the quality-monitor
///     iteration counters, and a per-component chain_stale marker, so a
///     snapshot taken after update() calls reloads bitwise.
inline constexpr std::uint16_t kFormatVersion = 3;

/// 64-bit FNV-1a-style hash over a byte range (the snapshot trailer
/// checksum; also the mixer behind the service's SetupCache fingerprints).
/// Large inputs are folded four 64-bit lanes at a time so the multiply
/// chain pipelines — the digest is NOT byte-standard FNV-1a, it is this
/// format's own checksum (stable for a given kFormatVersion).
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

class Writer {
 public:
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u16(std::uint16_t v) { bytes(&v, sizeof(v)); }
  void u32(std::uint32_t v) { bytes(&v, sizeof(v)); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) { bytes(&v, sizeof(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void varint(std::uint64_t v);
  void bytes(const void* data, std::size_t size);

  /// varint count, then count raw elements.  T must be trivially copyable
  /// and padding-free (use parallel field arrays for padded structs, so the
  /// byte stream never contains indeterminate padding).
  template <typename T>
  void pod_span(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    varint(count);
    bytes(data, count * sizeof(T));
  }
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    pod_span(v.data(), v.size());
  }
  /// std::size_t vectors are widened to u64 so 32- and 64-bit builds agree.
  void size_vec(const std::vector<std::size_t>& v);

  /// Magic + version + endianness mark.  `version` is overridable only so
  /// tests can forge mismatched files.
  void header(std::uint16_t version = kFormatVersion);

  /// Writes buffer + checksum trailer to `path` via a unique tmp file,
  /// fsync, then rename: a crash mid-write never leaves a half-snapshot at
  /// the target name, and concurrent saves to one target cannot interleave.
  Status to_file(const std::string& path) const;

  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Longest frame either side of the dist wire protocol will accept; a
/// length prefix beyond it means a desynchronized or hostile peer, and the
/// connection is torn down instead of allocating the claimed bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 30;

/// Writes one length-prefixed frame (u32 payload size, then the payload)
/// to a stream socket, retrying short writes and EINTR.  Uses send() with
/// MSG_NOSIGNAL so a dead peer surfaces as Unavailable, never SIGPIPE.
Status write_frame(int fd, const std::uint8_t* data, std::size_t size);
inline Status write_frame(int fd, const Writer& w) {
  return write_frame(fd, w.buffer().data(), w.buffer().size());
}

/// Reads one frame written by write_frame.  Unavailable when the peer
/// closed the stream (EOF before or mid-frame) or on a read error;
/// InvalidArgument for a length prefix beyond kMaxFrameBytes.
StatusOr<std::vector<std::uint8_t>> read_frame(int fd);

class Reader {
 public:
  explicit Reader(std::vector<std::uint8_t> data)
      : buf_(std::move(data)), data_(buf_.data()), size_(buf_.size()) {}

  /// Maps (or, where mmap is unavailable, reads) the whole file, verifies
  /// and logically strips the checksum trailer.  NotFound when the file
  /// cannot be opened; InvalidArgument when it is shorter than a trailer
  /// or the checksum does not match.  Mapping instead of copying is what
  /// keeps warm-start load time at page-cache speed: the payload is
  /// decoded straight out of the mapping (E13 measures the difference).
  static StatusOr<Reader> from_file(const std::string& path);

  /// Validates magic, endianness, and version; each failure is a distinct
  /// InvalidArgument message.
  Status check_header();

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  bool boolean();
  std::uint64_t varint();

  template <typename T>
  std::vector<T> pod_vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t count = varint();
    std::vector<T> out;
    if (!status_.ok()) return out;
    // The count itself bounds the allocation: a corrupt length that claims
    // more elements than the remaining bytes is rejected before reserving.
    if (count > (size_ - pos_) / sizeof(T)) {
      fail("element count " + std::to_string(count) +
           " exceeds remaining bytes");
      return out;
    }
    out.resize(static_cast<std::size_t>(count));
    raw(out.data(), out.size() * sizeof(T));
    return out;
  }
  std::vector<std::size_t> size_vec();

  /// True once every payload byte has been consumed.
  bool exhausted() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  const Status& status() const { return status_; }
  /// Latches the first failure; later reads return zeros/empties.
  void fail(const std::string& message);

 private:
  // A read-only mmap of a snapshot file; unmapped on destruction.  Held by
  // unique_ptr so Reader stays movable with the view pointers unchanged.
  struct MappedFile {
    MappedFile(void* a, std::size_t l) : addr(a), len(l) {}
    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;
    ~MappedFile();
    void* addr;
    std::size_t len;
  };

  Reader() = default;
  void raw(void* out, std::size_t size);

  // The payload view: data_/size_ reference either buf_ (in-memory or
  // fallback read path) or map_ (mmap path), with the checksum trailer
  // already excluded from size_.
  std::vector<std::uint8_t> buf_;
  std::unique_ptr<MappedFile> map_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  Status status_;
};

}  // namespace parsdd::serialize
