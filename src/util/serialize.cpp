#include "util/serialize.h"

#include <atomic>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#define PARSDD_SERIALIZE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace parsdd::serialize {

std::uint64_t fnv1a64(const void* data, std::size_t size, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  std::size_t i = 0;
  // Four independent lanes over 32-byte blocks: the FNV multiply is a serial
  // dependency chain, so a single lane caps throughput at one multiply
  // latency per word; four lanes keep the multiplier pipeline full, which is
  // what makes checksumming a multi-megabyte snapshot cheaper than reading
  // it from the page cache.
  if (size >= 64) {
    std::uint64_t lane[4] = {h, h ^ 0x9e3779b97f4a7c15ull,
                             h ^ 0xc2b2ae3d27d4eb4full, h ^ 0x165667b19e3779f9ull};
    for (; i + 32 <= size; i += 32) {
      std::uint64_t w[4];
      std::memcpy(w, p + i, 32);
      for (int l = 0; l < 4; ++l) {
        lane[l] ^= w[l];
        lane[l] *= kPrime;
      }
    }
    h = lane[0];
    for (int l = 1; l < 4; ++l) {
      h ^= lane[l];
      h *= kPrime;
    }
  }
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= kPrime;
  }
  for (; i < size; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void Writer::bytes(const void* data, std::size_t size) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void Writer::size_vec(const std::vector<std::size_t>& v) {
  varint(v.size());
  if constexpr (sizeof(std::size_t) == sizeof(std::uint64_t)) {
    // Same byte stream as the element loop below, minus the per-element
    // call overhead (CSR row offsets are the largest arrays in a snapshot).
    bytes(v.data(), v.size() * sizeof(std::uint64_t));
  } else {
    for (std::size_t x : v) u64(static_cast<std::uint64_t>(x));
  }
}

void Writer::header(std::uint16_t version) {
  u32(kMagic);
  u16(version);
  u16(kEndianMark);
}

Status Writer::to_file(const std::string& path) const {
  std::uint64_t checksum = fnv1a64(buf_.data(), buf_.size());
  // The scratch name must be unique per writer: concurrent saves to the
  // same target (e.g. two service threads snapshotting one handle) would
  // otherwise interleave writes in a shared tmp file and rename a corrupt
  // image into place.
  static std::atomic<std::uint64_t> tmp_counter{0};
  std::string tmp = path + ".tmp." +
#ifdef PARSDD_SERIALIZE_HAVE_MMAP
                    std::to_string(::getpid()) + "." +
#endif
                    std::to_string(tmp_counter.fetch_add(1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    return InternalError("serialize: cannot open " + tmp + " for writing");
  }
  bool ok = std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size() &&
            std::fwrite(&checksum, 1, sizeof(checksum), f) == sizeof(checksum);
  // Flush user-space and kernel buffers before the rename: publishing the
  // name before the bytes are durable would let a power loss leave a
  // garbage file at the final path, which is the one thing the
  // tmp-then-rename dance exists to prevent.
  ok = ok && std::fflush(f) == 0;
#ifdef PARSDD_SERIALIZE_HAVE_MMAP
  ok = ok && ::fsync(::fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return InternalError("serialize: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("serialize: cannot rename " + tmp + " to " + path);
  }
  return OkStatus();
}

Reader::MappedFile::~MappedFile() {
#ifdef PARSDD_SERIALIZE_HAVE_MMAP
  ::munmap(addr, len);
#endif
}

namespace {

// Checksum-verifies a complete snapshot image and returns the payload size
// (the image minus its trailer), or an error Status.
StatusOr<std::size_t> verify_trailer(const std::uint8_t* data,
                                     std::size_t size,
                                     const std::string& path) {
  if (size < sizeof(std::uint64_t)) {
    return InvalidArgumentError("serialize: " + path +
                                " is too short to be a snapshot");
  }
  std::size_t payload = size - sizeof(std::uint64_t);
  std::uint64_t stored;
  std::memcpy(&stored, data + payload, sizeof(stored));
  if (fnv1a64(data, payload) != stored) {
    // The word-folded checksum is endian-dependent, so a foreign-byte-order
    // snapshot fails here before check_header can see the endian mark;
    // peek at the mark's bytes so the user hears "wrong byte order", not
    // "corrupt file".
    if (payload >= 8) {
      std::uint16_t mark;
      std::memcpy(&mark, data + 6, sizeof(mark));
      if (mark == static_cast<std::uint16_t>((kEndianMark >> 8) |
                                             (kEndianMark << 8))) {
        return InvalidArgumentError(
            "serialize: " + path +
            " was written on a foreign byte order (endianness mismatch)");
      }
    }
    return InvalidArgumentError("serialize: checksum mismatch in " + path +
                                " (truncated or corrupt snapshot)");
  }
  return payload;
}

}  // namespace

StatusOr<Reader> Reader::from_file(const std::string& path) {
#ifdef PARSDD_SERIALIZE_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return NotFoundError("serialize: cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return InternalError("serialize: cannot stat " + path);
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  void* addr =
      size > 0 ? ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0) : nullptr;
  ::close(fd);
  if (size > 0 && addr != MAP_FAILED) {
    auto map = std::make_unique<MappedFile>(addr, size);
    const std::uint8_t* data = static_cast<const std::uint8_t*>(addr);
    StatusOr<std::size_t> payload = verify_trailer(data, size, path);
    if (!payload.ok()) return payload.status();
    Reader r;
    r.map_ = std::move(map);
    r.data_ = data;
    r.size_ = *payload;
    return r;
  }
  // size == 0 or mmap failure (exotic filesystem): fall through to stdio.
#endif
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    return NotFoundError("serialize: cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long fsize = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (fsize < static_cast<long>(sizeof(std::uint64_t))) {
    std::fclose(f);
    return InvalidArgumentError("serialize: " + path +
                                " is too short to be a snapshot");
  }
  std::vector<std::uint8_t> data(static_cast<std::size_t>(fsize));
  bool ok = std::fread(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!ok) {
    return InternalError("serialize: short read from " + path);
  }
  StatusOr<std::size_t> payload =
      verify_trailer(data.data(), data.size(), path);
  if (!payload.ok()) return payload.status();
  data.resize(*payload);
  return Reader(std::move(data));
}

Status Reader::check_header() {
  std::uint32_t magic = u32();
  std::uint16_t version = u16();
  std::uint16_t endian = u16();
  if (!status_.ok()) return status_;
  if (magic != kMagic) {
    fail("bad magic (not a parsdd snapshot)");
  } else if (endian != kEndianMark) {
    fail("endianness mismatch (snapshot written on a foreign byte order)");
  } else if (version != kFormatVersion) {
    fail("format version " + std::to_string(version) +
         " unsupported (this build reads version " +
         std::to_string(kFormatVersion) + ")");
  }
  return status_;
}

void Reader::raw(void* out, std::size_t size) {
  if (size == 0) return;  // empty spans may hand us a null destination
  if (!status_.ok() || size > size_ - pos_) {
    if (status_.ok()) fail("read past end of snapshot");
    std::memset(out, 0, size);
    return;
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}
std::uint16_t Reader::u16() {
  std::uint16_t v = 0;
  raw(&v, sizeof(v));
  return v;
}
std::uint32_t Reader::u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof(v));
  return v;
}
std::uint64_t Reader::u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof(v));
  return v;
}
double Reader::f64() {
  double v = 0;
  raw(&v, sizeof(v));
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (status_.ok() && v > 1) {
    fail("malformed boolean byte " + std::to_string(v));
  }
  return v == 1;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = u8();
    if (!status_.ok()) return 0;
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7e) != 0) break;  // overflows 64 bits
      return v;
    }
  }
  fail("malformed varint");
  return 0;
}

std::vector<std::size_t> Reader::size_vec() {
  std::uint64_t count = varint();
  std::vector<std::size_t> out;
  if (!status_.ok()) return out;
  if (count > remaining() / sizeof(std::uint64_t)) {
    fail("element count " + std::to_string(count) +
         " exceeds remaining bytes");
    return out;
  }
  out.resize(static_cast<std::size_t>(count));
  if constexpr (sizeof(std::size_t) == sizeof(std::uint64_t)) {
    raw(out.data(), out.size() * sizeof(std::uint64_t));
  } else {
    for (std::size_t& x : out) x = static_cast<std::size_t>(u64());
  }
  return out;
}

void Reader::fail(const std::string& message) {
  if (status_.ok()) {
    status_ = InvalidArgumentError("serialize: " + message);
  }
}

#ifdef PARSDD_SERIALIZE_HAVE_MMAP

namespace {

// Full-buffer send loop.  MSG_NOSIGNAL turns a write to a half-closed
// socket into EPIPE instead of terminating the process with SIGPIPE — the
// coordinator must observe a dead worker as a Status, never as a signal.
Status send_all(int fd, const void* data, std::size_t size) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::send(fd, p + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError("serialize: frame send failed (peer gone?)");
    }
    done += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

// Full-buffer read loop; distinguishes clean EOF at a frame boundary
// (`*eof_at_start`) from truncation mid-frame.
Status recv_all(int fd, void* data, std::size_t size, bool* eof_at_start) {
  std::uint8_t* p = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, p + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError("serialize: frame read failed");
    }
    if (n == 0) {
      if (eof_at_start != nullptr) *eof_at_start = (done == 0);
      return UnavailableError(done == 0
                                  ? "serialize: peer closed the stream"
                                  : "serialize: peer closed mid-frame");
    }
    done += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

}  // namespace

Status write_frame(int fd, const std::uint8_t* data, std::size_t size) {
  if (size > kMaxFrameBytes) {
    return InvalidArgumentError("serialize: frame of " + std::to_string(size) +
                                " bytes exceeds kMaxFrameBytes");
  }
  std::uint32_t len = static_cast<std::uint32_t>(size);
  PARSDD_RETURN_IF_ERROR(send_all(fd, &len, sizeof(len)));
  return send_all(fd, data, size);
}

StatusOr<std::vector<std::uint8_t>> read_frame(int fd) {
  std::uint32_t len = 0;
  PARSDD_RETURN_IF_ERROR(recv_all(fd, &len, sizeof(len), nullptr));
  if (len > kMaxFrameBytes) {
    return InvalidArgumentError("serialize: frame length prefix " +
                                std::to_string(len) +
                                " exceeds kMaxFrameBytes (desynchronized "
                                "stream?)");
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0) {
    PARSDD_RETURN_IF_ERROR(recv_all(fd, payload.data(), len, nullptr));
  }
  return payload;
}

#else  // !PARSDD_SERIALIZE_HAVE_MMAP

Status write_frame(int, const std::uint8_t*, std::size_t) {
  return InternalError("serialize: socket framing requires a POSIX platform");
}

StatusOr<std::vector<std::uint8_t>> read_frame(int) {
  return InternalError("serialize: socket framing requires a POSIX platform");
}

#endif  // PARSDD_SERIALIZE_HAVE_MMAP

}  // namespace parsdd::serialize
