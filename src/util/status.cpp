#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace parsdd {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

namespace internal_status {

void die_on_bad_access(const Status& status) {
  std::fprintf(stderr, "parsdd: StatusOr::value() on error status: %s\n",
               status.to_string().c_str());
  std::abort();
}

}  // namespace internal_status

}  // namespace parsdd
