#include "partition/split_graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <limits>

#include "parallel/primitives.h"
#include "parallel/rng.h"

namespace parsdd {

namespace {

constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

// Atomic fetch-min; returns the previous value.
std::uint32_t fetch_min(std::atomic<std::uint32_t>& a, std::uint32_t v) {
  std::uint32_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  return cur;
}

}  // namespace

Decomposition split_graph(const Graph& g, std::uint32_t rho,
                          const SplitGraphOptions& opts) {
  const std::uint32_t n = g.num_vertices();
  Decomposition out;
  out.component.assign(n, kUnset);
  if (n == 0) return out;

  const double ln_n = std::log(std::max<double>(n, 2.0));
  const std::uint32_t log2_n =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     std::ceil(std::log2(std::max(n, 2u)))));
  const std::uint32_t T = 2 * log2_n;
  const std::uint32_t R = std::max<std::uint32_t>(1, rho / (2 * log2_n));

  Rng rng(opts.seed);

  // comp_center[v]: center id claiming v (center's vertex id); claimed[v]
  // is the iteration stamp.
  std::vector<std::uint32_t> comp_center(n, kUnset);
  std::vector<std::uint32_t> claimed(n, kUnset);
  std::vector<std::atomic<std::uint32_t>> cand(n);
  parallel_for(0, n, [&](std::size_t v) {
    cand[v].store(kUnset, std::memory_order_relaxed);
  });

  std::size_t num_alive = n;
  std::vector<std::uint32_t> alive(n);
  for (std::uint32_t v = 0; v < n; ++v) alive[v] = v;

  for (std::uint32_t t = 1; t <= T && num_alive > 0; ++t) {
    out.iterations = t;
    Rng iter_rng = rng.child(t);

    // |S^(t)| = ceil(c * n^(t/T - 1) * |V^(t)| * ln n), or everything in the
    // final iterations once the formula exceeds |V^(t)| (this also
    // guarantees termination: at t = T the exponent is 0 and c*ln n >= 1).
    double frac = std::pow(static_cast<double>(n),
                           static_cast<double>(t) / T - 1.0);
    double sigma_d = opts.center_constant * frac *
                     static_cast<double>(num_alive) * ln_n;
    std::size_t sigma = static_cast<std::size_t>(std::ceil(sigma_d));
    bool take_all = sigma >= num_alive;

    // Sample centers without replacement (partial Fisher–Yates on the alive
    // list; sequential but O(sigma + |alive|) total).
    std::vector<std::uint32_t> centers;
    if (take_all) {
      centers = alive;
    } else {
      for (std::size_t i = 0; i < sigma; ++i) {
        std::size_t j = i + iter_rng.below(i, num_alive - i);
        std::swap(alive[i], alive[j]);
        centers.push_back(alive[i]);
      }
    }

    // Jitters, grouped by activation round.  The cap at rho matters when
    // rho < 2 log n (the paper implicitly assumes R = rho/(2 log n) >= 1);
    // the claim-round bound r_t <= rho is what gives property (P2).
    const std::uint32_t r_t = std::min((T - t + 1) * R, rho);
    std::vector<std::vector<std::uint32_t>> activate(R + 1);
    Rng jit_rng = iter_rng.child(0x9d);
    for (std::size_t i = 0; i < centers.size(); ++i) {
      std::uint32_t delta =
          static_cast<std::uint32_t>(jit_rng.below(i, R + 1));
      activate[delta].push_back(centers[i]);
    }

    // Staggered BFS for rounds 0..r_t (claim round = dist + delta).
    std::vector<std::uint32_t> frontier;
    std::vector<std::uint32_t> touched;
    for (std::uint32_t round = 0; round <= r_t; ++round) {
      touched.clear();
      // Expand the previous round's frontier.
      if (!frontier.empty()) {
        std::size_t f = frontier.size();
        // Oracular gate (was a static f < 256 cutoff): the site learns this
        // loop's ns-per-frontier-vertex and spawns only when the expansion
        // amortizes a pool dispatch.  Bitwise-safe either way — claims are
        // resolved by fetch_min, a partition-invariant free-for-all
        // (DESIGN.md §6), so the schedule never touches results.  The block
        // size is derived from the executed nb, fixing a latent bug where
        // the sequential path inherited a multi-block `block` and silently
        // expanded only the first ceil(f/nb) frontier vertices.
        static GranularitySite expand_site("split_graph.expand",
                                           /*init_ns_per_unit=*/4.0);
        const bool pool = expand_site.should_parallelize(f * 4);
        std::size_t nb = pool ? num_blocks_for(f, 64) : 1;
        std::vector<std::vector<std::uint32_t>> local(nb);
        std::size_t block = (f + nb - 1) / nb;
        auto expand = [&](std::size_t b) {
          std::size_t s = b * block, e = std::min(f, s + block);
          auto& loc = local[b];
          for (std::size_t i = s; i < e; ++i) {
            std::uint32_t u = frontier[i];
            std::uint32_t cu = comp_center[u];
            for (std::uint32_t v : g.neighbors(u)) {
              if (claimed[v] != kUnset) continue;  // already assigned
              if (fetch_min(cand[v], cu) == kUnset) loc.push_back(v);
            }
          }
        };
        if (pool) {
          ThreadPool::instance().run_blocks(nb, expand);
        } else {
          detail::SeqTimer timer(expand_site, f * 4);
          expand(0);
        }
        for (auto& loc : local) {
          touched.insert(touched.end(), loc.begin(), loc.end());
        }
      }
      // Inject centers activating this round (if still unclaimed and not
      // already a candidate from an earlier arrival... candidates at this
      // same round compete by min id, matching the tie-break).
      if (round <= R) {
        for (std::uint32_t s : activate[round]) {
          if (claimed[s] != kUnset) continue;
          if (fetch_min(cand[s], s) == kUnset) touched.push_back(s);
        }
      }
      if (touched.empty()) {
        frontier.clear();      // nothing claimed: all balls are exhausted
        if (round >= R) break;  // and no future activations remain
        continue;
      }
      ++out.total_rounds;
      // Finalize claims for this round.
      parallel_for(0, touched.size(), [&](std::size_t i) {
        std::uint32_t v = touched[i];
        comp_center[v] = cand[v].load(std::memory_order_relaxed);
        claimed[v] = t;
        cand[v].store(kUnset, std::memory_order_relaxed);
      });
      frontier.swap(touched);
    }

    // Remove claimed vertices from the alive set.
    alive = pack(alive, [&](std::size_t i) {
      return claimed[alive[i]] == kUnset;
    });
    num_alive = alive.size();
  }

  assert(num_alive == 0);

  // Densify component labels: components are identified by their center id.
  std::vector<std::uint32_t> is_center(n, 0);
  parallel_for(0, n, [&](std::size_t v) {
    // A vertex is a live center iff some vertex is assigned to it; centers
    // always claim themselves if they claim anything (ball growth starts at
    // the center), so checking self-assignment suffices.
    if (comp_center[v] == v) is_center[v] = 1;
  });
  std::vector<std::uint32_t> center_ids =
      pack_index(n, [&](std::size_t v) { return is_center[v] != 0; });
  std::vector<std::uint32_t> dense(n, kUnset);
  parallel_for(0, center_ids.size(), [&](std::size_t i) {
    dense[center_ids[i]] = static_cast<std::uint32_t>(i);
  });
  out.center = center_ids;
  out.num_components = static_cast<std::uint32_t>(center_ids.size());
  parallel_for(0, n, [&](std::size_t v) {
    out.component[v] = dense[comp_center[v]];
  });
  return out;
}

}  // namespace parsdd
