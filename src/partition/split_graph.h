// Algorithm 4.1 (splitGraph): parallel low-diameter decomposition of a
// simple unweighted graph.
//
// The algorithm runs T = 2 log₂ n iterations.  Iteration t samples a
// progressively larger center set S^(t) (|S^(t)| = c·n^{t/T-1}|V^(t)| log n,
// Cohen-style repeated sampling), draws an integer "jitter" δ_s ∈ [0, R]
// per center (R = ρ / (2 log n)), and grows balls B(s, r^(t) - δ_s) with
// r^(t) = (T-t+1)·R.  Every reached vertex joins the center minimizing
// dist(u, s) + δ_s, ties broken by smallest center id; reached vertices are
// removed and the next iteration continues on the rest.
//
// Implementation: one staggered level-synchronous multi-source BFS per
// iteration.  Center s is injected at round δ_s, so a vertex is claimed at
// round dist(u,s) + δ_s; running the BFS for r^(t) rounds enforces
// dist ≤ r^(t) - δ_s exactly.  Ball growth proceeds only through vertices
// already claimed by the same center, which makes components connected with
// BFS-tree radius ≤ r^(t) *inside the component* — the strong-diameter
// property (P2) holds by construction (this is the standard realization of
// the paper's ball growing; Lemma 4.3 proves the equivalent consistency for
// the arg-min formulation).  Claims within a round are resolved by an atomic
// min on center id, so the output is deterministic for a fixed seed
// regardless of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace parsdd {

struct SplitGraphOptions {
  std::uint64_t seed = 1;
  /// Multiplier c in |S^(t)| = ceil(c * n^{t/T-1} * |V^(t)| * ln n).
  /// The paper's analysis uses 12; smaller values give larger components
  /// (still respecting the radius bound, which is structural).
  double center_constant = 12.0;
};

struct Decomposition {
  /// Dense component label per vertex, in [0, num_components).
  std::vector<std::uint32_t> component;
  /// Center vertex of each component (property P1: center lies inside).
  std::vector<std::uint32_t> center;
  std::uint32_t num_components = 0;
  /// Iterations of the outer loop actually executed (<= 2 log2 n).
  std::uint32_t iterations = 0;
  /// Total BFS rounds across iterations — the depth surrogate; Theorem 4.1
  /// bounds the expected depth by O(rho log^2 n).
  std::uint32_t total_rounds = 0;
};

/// Splits g into components of strong BFS-radius at most rho.
Decomposition split_graph(const Graph& g, std::uint32_t rho,
                          const SplitGraphOptions& opts = {});

}  // namespace parsdd
