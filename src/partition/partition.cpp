#include "partition/partition.h"

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "parallel/primitives.h"

namespace parsdd {

std::vector<std::size_t> count_cut_edges(
    const std::vector<ClassedEdge>& edges, std::uint32_t num_classes,
    const std::vector<std::uint32_t>& component) {
  std::vector<std::atomic<std::size_t>> counts(num_classes);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  parallel_for(0, edges.size(), [&](std::size_t i) {
    const ClassedEdge& e = edges[i];
    if (component[e.u] != component[e.v]) {
      counts[e.cls].fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::size_t> out(num_classes);
  for (std::uint32_t j = 0; j < num_classes; ++j) {
    out[j] = counts[j].load(std::memory_order_relaxed);
  }
  return out;
}

PartitionResult partition(std::uint32_t n,
                          const std::vector<ClassedEdge>& edges,
                          std::uint32_t num_classes, std::uint32_t rho,
                          const PartitionOptions& opts) {
  if (rho == 0) throw std::invalid_argument("partition: rho must be >= 1");
  Graph g = Graph::from_classed_edges(n, edges);

  const double log2n = std::log2(std::max<double>(n, 2.0));
  PartitionResult result;
  result.threshold =
      std::min(1.0, opts.cut_constant * num_classes * log2n * log2n * log2n /
                        static_cast<double>(rho));

  std::vector<std::size_t> class_size(num_classes, 0);
  for (const ClassedEdge& e : edges) ++class_size[e.cls];

  for (std::uint32_t attempt = 1; attempt <= opts.max_attempts; ++attempt) {
    SplitGraphOptions sg;
    sg.seed = opts.seed + 0x1000003ull * attempt;
    sg.center_constant = opts.center_constant;
    Decomposition d = split_graph(g, rho, sg);

    std::vector<std::size_t> cut =
        count_cut_edges(edges, num_classes, d.component);
    bool ok = true;
    result.cut_fraction.assign(num_classes, 0.0);
    for (std::uint32_t j = 0; j < num_classes; ++j) {
      double frac = class_size[j] == 0
                        ? 0.0
                        : static_cast<double>(cut[j]) /
                              static_cast<double>(class_size[j]);
      result.cut_fraction[j] = frac;
      if (static_cast<double>(cut[j]) >
          result.threshold * static_cast<double>(class_size[j])) {
        ok = false;
      }
    }
    if (ok) {
      result.decomposition = std::move(d);
      result.attempts = attempt;
      return result;
    }
  }
  throw std::runtime_error("partition: validation failed repeatedly");
}

}  // namespace parsdd
