// Algorithm 4.2 (Partition): low-diameter decomposition with per-class cut
// guarantees (Theorem 4.1).
//
// Runs splitGraph treating all k edge classes as one, then validates that
// every class j has at most |E_j| * c₁ * k * log³n / ρ cut edges; if any
// class fails, the whole decomposition is redrawn with a fresh seed.
// Corollary 4.8 makes each attempt succeed with probability >= 1/4, so the
// attempt count is geometric (validated by the E2 bench).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "partition/split_graph.h"

namespace parsdd {

struct PartitionOptions {
  std::uint64_t seed = 1;
  /// Center-sampling multiplier forwarded to splitGraph.
  double center_constant = 12.0;
  /// c₁ in the cut-fraction bound.  The paper's analysis gives c₁ = 272;
  /// the measured cut fractions are far below it (see EXPERIMENTS.md), so
  /// tests exercise the retry path by lowering this.
  double cut_constant = 272.0;
  /// Safety valve on the geometric retry loop.
  std::uint32_t max_attempts = 64;
};

struct PartitionResult {
  Decomposition decomposition;
  /// Attempts used (1 = first try accepted).
  std::uint32_t attempts = 0;
  /// Fraction of each class's edges cut by the accepted decomposition.
  std::vector<double> cut_fraction;
  /// The per-class acceptance threshold c₁·k·log³n/ρ (capped at 1).
  double threshold = 0.0;
};

/// Partitions (V=[0,n), edges with classes in [0, num_classes)) into
/// components of strong hop-radius <= rho.  Throws std::runtime_error if
/// max_attempts decompositions all fail validation.
PartitionResult partition(std::uint32_t n,
                          const std::vector<ClassedEdge>& edges,
                          std::uint32_t num_classes, std::uint32_t rho,
                          const PartitionOptions& opts = {});

/// Counts, for each class, how many edges straddle two components.
std::vector<std::size_t> count_cut_edges(
    const std::vector<ClassedEdge>& edges, std::uint32_t num_classes,
    const std::vector<std::uint32_t>& component);

}  // namespace parsdd
