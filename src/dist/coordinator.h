// Coordinator: the sharded multi-process front door (DESIGN.md §8).
//
// SolverService scales a single address space; the ROADMAP north star —
// heavy traffic from many clients — needs more processes.  Coordinator
// supervises N local parsdd_worker processes (dist/process_supervisor.h),
// each hosting the unchanged in-process SolverService, and exposes the
// same register_* / submit -> future<StatusOr<SolveResult>> surface, so a
// client ports from SolverService with one type change.
//
// Shard placement: every registered setup is backed by a snapshot file
// (PR 5 format), and the snapshot's trailer checksum — a content digest of
// the complete setup — is the shard key: worker = digest % N.  Shipping
// the snapshot *path* (workers share a filesystem with the coordinator;
// they mmap the file themselves) makes registration, migration, and
// post-crash re-registration all the same ~50 ms warm-start instead of a
// ~1 s rebuild.  register_laplacian / register_sdd build once in the
// coordinator process, save the snapshot into `snapshot_dir`, and then
// take the same shipping path.  rebalance() migrates a handle to an
// explicit worker (load gauges from worker_stats() are the signal).
//
// Fault recovery: each worker has a receiver thread whose blocking read
// observes worker death (stream EOF / reset) the instant it happens.  The
// receiver fails every in-flight request on that worker with a clean
// Unavailable (accepted requests are never silently dropped), reaps the
// corpse, respawns the binary, replays every owned handle's
// register-from-snapshot, and only then reopens the shard for submits.
// Requests submitted while the shard is down are refused Unavailable
// up front.  See DESIGN.md §8 for the full state machine.
//
// Backpressure mirrors the in-process dispatcher: a global max_pending
// bound over accepted-but-unanswered requests sheds load at the door with
// ResourceExhausted; per-worker fairness is delegated to each worker's own
// dispatcher (stale-ticket FIFO + linger), which this layer feeds the
// moment requests arrive so cross-client coalescing still happens.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "linalg/csr_matrix.h"
#include "service/solver_service.h"
#include "util/status.h"

namespace parsdd::dist {

struct CoordinatorOptions {
  /// Worker processes to spawn.
  std::uint32_t workers = 2;
  /// Path to the parsdd_worker binary; when empty, the PARSDD_WORKER_BIN
  /// environment variable is consulted.
  std::string worker_binary;
  /// Directory where register_laplacian / register_sdd persist the
  /// snapshots that back shard placement and crash recovery.  Registration
  /// by build fails InvalidArgument when unset; register_from_snapshot
  /// works regardless (the caller's path is the recovery medium).
  std::string snapshot_dir;
  /// Accepted-but-unanswered cap across all workers; beyond it submits are
  /// rejected ResourceExhausted (same load-shedding contract as the
  /// in-process service).
  std::size_t max_pending = 4096;
  /// Respawn dead workers and re-register their handles from snapshots.
  /// Off, a dead worker's shard stays down (tests use this).
  bool respawn = true;
  /// Forwarded to each worker's embedded SolverService (executor threads,
  /// micro-batch shape, per-worker backpressure).  coalesce and the setup
  /// cache are worker-local concerns and keep their defaults.
  std::uint32_t worker_threads = 1;
  std::uint32_t worker_max_batch = 64;
  std::uint32_t worker_linger_us = 200;
  std::size_t worker_max_pending = 4096;
};

/// Aggregated coordinator counters plus per-worker health; stats() samples
/// the gauges under the coordinator mutex.
struct DistWorkerInfo {
  bool up = false;
  std::uint64_t deaths = 0;     // stream-death events observed
  std::uint64_t handles = 0;    // setups currently placed on this worker
  std::uint64_t in_flight = 0;  // requests awaiting this worker's answer
};

struct DistStats {
  std::uint64_t submitted = 0;      // accepted (single + batch + RPCs)
  std::uint64_t rejected = 0;       // backpressure rejections
  std::uint64_t completed = 0;      // answered, incl. typed errors
  std::uint64_t worker_deaths = 0;  // across all shards
  std::uint64_t respawns = 0;       // successful recoveries
  /// Wall-clock of the most recent recovery: stream death -> shard
  /// reopened with every handle re-registered.  0 before any recovery.
  double last_recovery_ms = 0.0;
  std::uint64_t in_flight = 0;  // gauge: accepted, not yet answered
  std::vector<DistWorkerInfo> workers;
  /// Handles whose setup could not be restored during recovery (typically
  /// the backing snapshot was deleted from snapshot_dir), with the typed
  /// reason: submits against them fail Unavailable (never NotFound — the
  /// handle is still registered) until they are unregistered.
  std::vector<std::pair<std::uint64_t, std::string>> lost_handles;
};

class Coordinator {
 public:
  /// Spawns the workers and validates their kHello handshakes.  Fails
  /// (Internal / InvalidArgument) when the binary cannot be spawned or
  /// speaks the wrong wire version; no half-started coordinator escapes.
  static StatusOr<std::unique_ptr<Coordinator>> Start(
      const CoordinatorOptions& opts);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;
  /// Stops intake, asks every worker to drain (each answers everything it
  /// accepted), fails anything unanswerable with Unavailable, reaps the
  /// processes.  Never hangs on a wedged worker: SIGKILL backstop.
  ~Coordinator();

  /// Builds the setup in this process, snapshots it into snapshot_dir, and
  /// ships it to its shard.  InvalidArgument on malformed input or a
  /// fingerprint collision with an already-registered setup.
  StatusOr<SetupHandle> register_laplacian(std::uint32_t n,
                                           const EdgeList& edges,
                                           const SddSolverOptions& opts = {});
  StatusOr<SetupHandle> register_sdd(const CsrMatrix& a,
                                     const SddSolverOptions& opts = {});

  /// Ships an existing snapshot (by path) to its shard, which warm-starts
  /// it through its SetupCache-backed register_from_snapshot.  NotFound for
  /// a missing file; InvalidArgument for a truncated/corrupt one (the
  /// worker's load validation travels back as the same typed Status) or
  /// for a fingerprint collision; Unavailable while the target shard is
  /// respawning.
  StatusOr<SetupHandle> register_from_snapshot(const std::string& path);

  /// Forgets the handle and tells its worker.  In-flight requests still
  /// complete.  NotFound for stale handles.
  Status unregister(SetupHandle handle);

  /// Shape of a registered setup, served locally from the registration
  /// acknowledgement.
  StatusOr<SetupInfo> info(SetupHandle handle) const;

  /// Enqueues one right-hand side on the handle's worker.  Same future
  /// contract as SolverService::submit; answers are bitwise identical to
  /// an in-process solve against the same snapshot.  `require` pins the
  /// arithmetic contract exactly as in SolverService::submit: the worker
  /// refuses up front (InvalidArgument) when the setup's Precision does
  /// not match (nullopt accepts any).
  std::future<StatusOr<SolveResult>> submit(
      SetupHandle handle, Vec b,
      std::optional<Precision> require = std::nullopt);
  std::future<StatusOr<BatchSolveResult>> submit_batch(
      SetupHandle handle, MultiVec b,
      std::optional<Precision> require = std::nullopt);

  /// Forwards a dynamic edge-delta batch (solver_setup.h) to the worker
  /// owning the handle and blocks for its acknowledgement.  On success the
  /// batch is appended to the handle's update log, which the coordinator
  /// replays after the snapshot registration whenever the setup must be
  /// reconstructed — worker respawn and rebalance — so a recovered shard
  /// serves the *updated* graph, never the stale snapshot.  Same error
  /// contract as SolverService::update, plus Unavailable while the owning
  /// shard is down.
  StatusOr<UpdateAck> update(SetupHandle handle,
                             const std::vector<EdgeDelta>& deltas);

  /// Blocks until every accepted request and RPC has been answered.
  void drain();

  DistStats stats() const;
  /// The worker's own ServiceStats (counters + live load gauges), fetched
  /// over the wire — the rebalancing signal.
  StatusOr<ServiceStats> worker_stats(std::uint32_t worker);

  std::uint32_t num_workers() const;
  /// Which worker currently serves the handle.
  StatusOr<std::uint32_t> worker_of(SetupHandle handle) const;
  /// Explicitly migrates a handle: registers its snapshot on `worker`,
  /// then unregisters it from the old shard.  On any failure the original
  /// placement is untouched.
  Status rebalance(SetupHandle handle, std::uint32_t worker);

  /// Fault injection for tests and bench_dist: SIGKILLs the worker
  /// process.  Recovery (when opts.respawn) proceeds exactly as for a real
  /// crash.
  Status kill_worker(std::uint32_t worker);

 private:
  Coordinator();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace parsdd::dist
